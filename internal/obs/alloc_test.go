package obs

import "testing"

// TestInstrumentAllocs: the unlabeled instrument hot paths — the methods the
// serving loop calls per request — are allocation-free.
//
//pgmor:alloctest Counter.Inc
//pgmor:alloctest Counter.Add
//pgmor:alloctest Gauge.Set
//pgmor:alloctest Gauge.Add
//pgmor:alloctest Histogram.Observe
func TestInstrumentAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("allocguard_count_total", "fixture")
	g := reg.Gauge("allocguard_level", "fixture")
	h := reg.Histogram("allocguard_latency_seconds", "fixture", []float64{0.01, 0.1, 1})
	cases := map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(42) },
		"Gauge.Add":         func() { g.Add(-1) },
		"Histogram.Observe": func() { h.Observe(0.05) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, allocs)
		}
	}
}
