package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// Trace is the request-scoped identity carried through a request's
// context.Context: the request ID (generated, or propagated from an
// X-Request-Id header) plus annotations handlers attach for the access log.
// A Trace lives on one request's goroutine: handlers write annotations
// before returning, the middleware reads them after — no locking needed.
type Trace struct {
	// ID is the request identifier attached to every log line and error
	// response of this request.
	ID string
	// Model is the model ID the request resolved, when it resolved one —
	// annotated by handlers so per-request log lines are greppable by model.
	Model string
}

// SetModel annotates the trace with the model a request operates on.
// Nil-safe so handlers need not care whether tracing is wired.
func (t *Trace) SetModel(id string) {
	if t != nil {
		t.Model = id
	}
}

// maxRequestIDLen bounds propagated request IDs: anything longer is hostile
// or broken and is replaced rather than amplified into logs.
const maxRequestIDLen = 64

// ValidRequestID reports whether a client-supplied request ID is safe to
// propagate: non-empty, bounded, and drawn from a log-and-header-safe
// charset (letters, digits, '.', '_', '-').
func ValidRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// NewRequestID returns a fresh 64-bit random hex request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a clock-derived ID
		// only weakens uniqueness, not correctness.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// NewTrace builds a Trace from a propagated request ID, generating a fresh
// ID when the supplied one is absent or invalid.
func NewTrace(propagated string) *Trace {
	if !ValidRequestID(propagated) {
		return &Trace{ID: NewRequestID()}
	}
	return &Trace{ID: propagated}
}

type traceKey struct{}

// ContextWithTrace attaches a trace to a context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when none is attached.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// RequestID returns the context's request ID, or "" when untraced.
func RequestID(ctx context.Context) string {
	if t := TraceFrom(ctx); t != nil {
		return t.ID
	}
	return ""
}
