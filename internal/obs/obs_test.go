package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildTestRegistry populates one of every metric shape the exporter emits.
func buildTestRegistry() (*Registry, *Histogram) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests served.")
	c.Add(41)
	c.Inc()
	cv := reg.CounterVec("test_by_route_total", "Per-route requests.", "route", "status")
	cv.With("/eval", "200").Add(3)
	cv.With("/eval", "400").Inc()
	cv.With(`/we"ird\path`, "200").Inc() // exercises label escaping
	g := reg.Gauge("test_in_flight", "In-flight requests.")
	g.Set(7)
	g.Dec()
	gv := reg.GaugeVec("test_replica_up", "Per-replica health.", "replica")
	gv.With("http://a:8080").Set(1)
	gv.With("http://b:8080").Set(0)
	reg.GaugeFunc("test_func_gauge", "Func-backed gauge.", func() float64 { return 2.5 })
	reg.CounterFunc("test_func_counter_total", "Func-backed counter.", func() int64 { return 9 })
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // overflow bucket
	hv := reg.HistogramVec("test_route_seconds", "Per-route latency.", ExpBuckets(1e-4, 10, 4), "route")
	hv.With("/sweep").Observe(0.002)
	return reg, h
}

// TestExporterRoundTrip renders the registry and re-parses it with the
// strict parser: every format invariant (name charset, HELP/TYPE pairing,
// monotone cumulative buckets, le="+Inf" terminal bucket == _count) is
// checked by ParseText itself; the assertions below pin the recorded values.
func TestExporterRoundTrip(t *testing.T) {
	reg, _ := buildTestRegistry()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	sc, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText rejected our own exposition:\n%s\nerr: %v", b.String(), err)
	}
	want := []struct {
		name  string
		pairs []string
		value float64
	}{
		{"test_requests_total", nil, 42},
		{"test_by_route_total", []string{"route", "/eval", "status", "200"}, 3},
		{"test_by_route_total", []string{"route", "/eval", "status", "400"}, 1},
		{"test_by_route_total", []string{"route", `/we"ird\path`}, 1},
		{"test_in_flight", nil, 6},
		{"test_replica_up", []string{"replica", "http://a:8080"}, 1},
		{"test_replica_up", []string{"replica", "http://b:8080"}, 0},
		{"test_func_gauge", nil, 2.5},
		{"test_func_counter_total", nil, 9},
		{"test_latency_seconds_count", nil, 3},
		{"test_latency_seconds_bucket", []string{"le", "0.001"}, 1},
		{"test_latency_seconds_bucket", []string{"le", "0.1"}, 2},
		{"test_latency_seconds_bucket", []string{"le", "+Inf"}, 3},
		{"test_route_seconds_bucket", []string{"route", "/sweep", "le", "+Inf"}, 1},
	}
	for _, w := range want {
		got, ok := sc.Value(w.name, w.pairs...)
		if !ok {
			t.Fatalf("series %s %v missing from scrape:\n%s", w.name, w.pairs, b.String())
		}
		if got != w.value {
			t.Errorf("%s %v = %g, want %g", w.name, w.pairs, got, w.value)
		}
	}
	if sum, _ := sc.Value("test_latency_seconds_sum"); math.Abs(sum-5.0505) > 1e-12 {
		t.Errorf("histogram sum = %g, want 5.0505", sum)
	}
	if typ := sc.Types["test_latency_seconds"]; typ != "histogram" {
		t.Errorf("TYPE of test_latency_seconds = %q, want histogram", typ)
	}
}

// TestParserRejectsMalformed pins the failure modes the CI smoke check
// relies on catching.
func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":             "# HELP x h\nx 1\n",
		"no HELP":             "# TYPE x counter\nx 1\n",
		"bad metric name":     "# HELP 9x h\n# TYPE 9x counter\n9x 1\n",
		"bad value":           "# HELP x h\n# TYPE x counter\nx nope\n",
		"unterminated labels": "# HELP x h\n# TYPE x counter\nx{a=\"b 1\n",
		"duplicate TYPE":      "# TYPE x counter\n# TYPE x gauge\n",
		"non-cumulative buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf bucket": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
	}
	for name, payload := range cases {
		if _, err := ParseText(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: parser accepted malformed payload:\n%s", name, payload)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 108 {
		t.Fatalf("sum = %g, want 108", h.Sum())
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	sc, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []struct {
		le string
		n  float64
	}{{"1", 2}, {"2", 4}, {"4", 5}, {"+Inf", 6}} {
		if got, _ := sc.Value("h_seconds_bucket", "le", w.le); got != w.n {
			t.Errorf("bucket le=%s = %g, want %g", w.le, got, w.n)
		}
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	cases := map[string]func(*Registry){
		"bad name":        func(r *Registry) { r.Counter("9bad", "h") },
		"duplicate":       func(r *Registry) { r.Counter("x_total", "h"); r.Counter("x_total", "h") },
		"bad label":       func(r *Registry) { r.CounterVec("x_total", "h", "9bad") },
		"reserved le":     func(r *Registry) { r.HistogramVec("x_seconds", "h", []float64{1}, "le") },
		"unsorted bounds": func(r *Registry) { r.Histogram("x_seconds", "h", []float64{2, 1}) },
		"no bounds":       func(r *Registry) { r.Histogram("x_seconds", "h", nil) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", name)
				}
			}()
			fn(NewRegistry())
		}()
	}
}

// TestConcurrentRecordAndScrape hammers every instrument from many
// goroutines while scraping continuously; run under -race this is the
// exporter's data-race proof, and the final scrape must account for every
// recorded event.
func TestConcurrentRecordAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "c")
	cv := reg.CounterVec("cv_total", "cv", "k")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h_seconds", "h", ExpBuckets(1e-6, 10, 8))
	hv := reg.HistogramVec("hv_seconds", "hv", []float64{0.5}, "k")

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // continuous scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if _, err := ParseText(strings.NewReader(b.String())); err != nil {
				t.Errorf("mid-storm scrape is malformed: %v", err)
				return
			}
		}
	}()
	keys := []string{"a", "b", "c"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := cv.With(keys[w%len(keys)])
			for i := 0; i < iters; i++ {
				c.Inc()
				child.Inc()
				g.Add(1)
				h.Observe(float64(i%1000) * 1e-6)
				hv.With(keys[i%len(keys)]).Observe(0.1)
			}
		}(w)
	}
	// Stop the scraper once every recorder's writes are visible, then wait
	// for everything (recorders + scraper) to finish.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		for c.Value() < workers*iters {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	<-done

	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	sc, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	if v, _ := sc.Value("h_seconds_bucket", "le", "+Inf"); v != workers*iters {
		t.Fatalf("final +Inf bucket = %g, want %d", v, workers*iters)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Dec()
	h.Observe(1)
	h.ObserveSince(time.Now())
	cv.With("x").Inc()
	hv.With("x").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported nonzero values")
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace("")
	if tr.ID == "" || !ValidRequestID(tr.ID) {
		t.Fatalf("generated ID %q is invalid", tr.ID)
	}
	if got := NewTrace("client-id_1.2"); got.ID != "client-id_1.2" {
		t.Fatalf("valid propagated ID replaced: %q", got.ID)
	}
	for _, bad := range []string{"", "has space", "semi;colon", "quote\"", strings.Repeat("a", 65), "newline\n"} {
		if got := NewTrace(bad); got.ID == bad {
			t.Fatalf("invalid propagated ID %q accepted", bad)
		}
	}
	ctx := ContextWithTrace(context.Background(), tr)
	if RequestID(ctx) != tr.ID {
		t.Fatal("RequestID did not round-trip through context")
	}
	TraceFrom(ctx).SetModel("m1")
	if tr.Model != "m1" {
		t.Fatal("SetModel did not annotate the trace")
	}
	if RequestID(context.Background()) != "" {
		t.Fatal("untraced context reported a request ID")
	}
	var nilTrace *Trace
	nilTrace.SetModel("x") // must not panic
}
