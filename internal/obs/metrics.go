// Package obs is the serving fleet's observability core: a dependency-free
// metrics library (atomic counters, gauges, and fixed-bucket histograms with
// a Prometheus-text-format exporter) plus request-scoped tracing (request
// IDs carried in context.Context and attached to logs and error responses).
//
// Design constraints, in priority order:
//
//   - Recording must be safe on the evaluation hot path: every instrument is
//     lock-free (atomic adds; the histogram sum is a CAS loop on float bits)
//     and allocation-free, so instrumenting the modal sweep kernel keeps it
//     at 0 allocs/op.
//   - Nil instruments record nothing: every method tolerates a nil receiver,
//     so a component can be constructed uninstrumented (tests, benchmarks,
//     library use) and share the exact serving code path.
//   - Scrapes never block recorders: the exporter reads atomics and takes
//     only the short registry/vector map locks, so a scrape concurrent with
//     heavy recording observes a merely-approximate cut, not a pause.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//pgmor:noalloc
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are ignored (counters are monotone).
//
//pgmor:noalloc
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic value that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//pgmor:noalloc
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative allowed).
//
//pgmor:noalloc
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: each bucket is an atomic counter (recorded non-cumulatively;
// the exporter accumulates), the total count an atomic add, and the sum a
// compare-and-swap loop over float64 bits. The bucket bound slice is
// immutable after construction, so Observe never allocates or locks.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64 // len(bounds)+1, last is the overflow (+Inf) bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one value.
//
//pgmor:noalloc
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Latency-shaped data lands in the low buckets almost always, so a
	// forward linear scan beats binary search on the hot path.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newV := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(newV)) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since t0 — the common shape of a
// duration histogram sample.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n ascending bucket bounds starting at start, each
// factor× the previous — the standard way to cover several latency decades
// with a fixed bucket count.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// metricKind is the exported TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// sample is one exportable series: exactly one of the value sources is set.
type sample struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fnInt       func() int64
	fnFloat     func() float64
}

// family is one metric name: its metadata plus every labeled child.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histogram families share one bucket layout

	mu       sync.Mutex
	children map[string]*sample // key: label values joined by \xff
}

// child returns (creating if needed) the sample for the given label values.
func (f *family) child(values []string) *sample {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.children[key]
	if !ok {
		s = &sample{labelValues: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.children[key] = s
	}
	return s
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values, creating it on
// first use. The lookup takes the family lock and allocates the key — cheap
// at request granularity; resolve children once for per-item hot loops.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).counter
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values).gauge
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).hist
}

// Registry owns a set of metric families and exports them in Prometheus
// text format. Registration panics on invalid or duplicate names
// (programmer error, caught at startup); recording and scraping are
// concurrency-safe.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and installs a family.
func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	if kind == kindHistogram {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
		}
		for i := 1; i < len(bounds); i++ {
			if !(bounds[i] > bounds[i-1]) {
				panic(fmt.Sprintf("obs: histogram %s bucket bounds must be strictly ascending", name))
			}
		}
		for _, l := range labels {
			if l == "le" {
				panic(fmt.Sprintf("obs: histogram %s may not declare the reserved label le", name))
			}
		}
	}
	f := &family{name: name, help: help, kind: kind, labels: labels,
		bounds: bounds, children: make(map[string]*sample)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.families[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).child(nil).counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the zero-overhead way to export a counter a subsystem already
// maintains as its own atomic.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, kindCounter, nil, nil).child(nil).fnInt = fn
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).child(nil).gauge
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil).child(nil).fnFloat = fn
}

// Histogram registers and returns an unlabeled histogram over the given
// ascending bucket upper bounds (an +Inf terminal bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, bounds).child(nil).hist
}

// HistogramVec registers a labeled histogram family; every child shares the
// bucket layout.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// WritePrometheus exports every family in Prometheus text exposition format
// (version 0.0.4), sorted by family name and label values so scrapes are
// deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as a GET /metrics scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// write renders one family: HELP/TYPE header plus every child's samples.
func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*sample, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range children {
		switch f.kind {
		case kindCounter, kindGauge:
			v := sampleValue(s)
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.labelValues, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatValue(v))
			b.WriteByte('\n')
		case kindHistogram:
			h := s.hist
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labels, s.labelValues, "le", bound)
				fmt.Fprintf(b, " %d\n", cum)
			}
			// The terminal +Inf bucket equals the total count by definition;
			// read count once and reuse so the invariant holds even mid-scrape.
			total := h.count.Load()
			if over := cum + h.counts[len(h.bounds)].Load(); over > total {
				// A racing Observe bumped a bucket before the count; clamp so
				// cumulative buckets stay ≤ count for strict parsers.
				total = over
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, s.labelValues, "le", math.Inf(1))
			fmt.Fprintf(b, " %d\n", total)
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, s.labelValues, "", 0)
			fmt.Fprintf(b, " %s\n", formatValue(h.Sum()))
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, s.labelValues, "", 0)
			fmt.Fprintf(b, " %d\n", total)
		}
	}
}

// sampleValue reads a counter/gauge sample from whichever source it has.
func sampleValue(s *sample) float64 {
	switch {
	case s.fnInt != nil:
		return float64(s.fnInt())
	case s.fnFloat != nil:
		return s.fnFloat()
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	}
	return 0
}

// writeLabels renders {a="x",b="y"} (plus an optional le bound), or nothing
// when the sample has no labels.
func writeLabels(b *strings.Builder, names, values []string, extraName string, extraBound float64) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		if math.IsInf(extraBound, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatValue(extraBound))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders a float the shortest round-trippable way.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
