package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the consumer side of the exposition format: a strict parser
// used by the exporter's own tests, by serving-layer tests that assert
// counters move, and by cmd/promcheck (the CI scrape smoke check). It
// validates the invariants a real Prometheus scrape relies on — metric name
// charset, HELP/TYPE pairing, monotone cumulative histogram buckets with an
// le="+Inf" terminal bucket matching _count — and rejects anything
// malformed instead of guessing.

// Sample is one parsed series sample.
type Sample struct {
	// Name is the sample's full name (histogram samples keep their _bucket /
	// _sum / _count suffix).
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed and validated exposition payload.
type Scrape struct {
	Samples []Sample
	// Types maps each declared family name to its TYPE.
	Types map[string]string
}

// Value returns the value of the first sample matching name and every given
// label pair, and whether one exists. Pairs are label, value, label, value…
func (s *Scrape) Value(name string, pairs ...string) (float64, bool) {
	if len(pairs)%2 != 0 {
		panic("obs: Scrape.Value wants label/value pairs")
	}
next:
	for _, sm := range s.Samples {
		if sm.Name != name {
			continue
		}
		for i := 0; i < len(pairs); i += 2 {
			if sm.Labels[pairs[i]] != pairs[i+1] {
				continue next
			}
		}
		return sm.Value, true
	}
	return 0, false
}

// Has reports whether at least one sample of the series exists.
func (s *Scrape) Has(name string, pairs ...string) bool {
	_, ok := s.Value(name, pairs...)
	return ok
}

// ParseText parses one Prometheus text-format payload, validating format
// and histogram invariants. It returns an error on the first violation.
func ParseText(r io.Reader) (*Scrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := &Scrape{Types: make(map[string]string)}
	help := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, out.Types, help); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		sm, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(sm.Name, out.Types)
		if out.Types[fam] == "" {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, sm.Name)
		}
		if !help[fam] {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # HELP", lineNo, sm.Name)
		}
		out.Samples = append(out.Samples, sm)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := validateHistograms(out); err != nil {
		return nil, err
	}
	return out, nil
}

// familyOf strips histogram sample suffixes when the base name is a
// declared histogram family.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// parseComment handles # HELP and # TYPE lines.
func parseComment(line string, types map[string]string, help map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		help[fields[2]] = true
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("TYPE line has invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		if prev, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s (%s then %s)", name, prev, typ)
		}
		types[name] = typ
	}
	return nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	sm := Sample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return sm, fmt.Errorf("malformed sample %q", line)
	}
	sm.Name = rest[:i]
	if !validMetricName(sm.Name) {
		return sm, fmt.Errorf("invalid metric name %q", sm.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, sm.Labels)
		if err != nil {
			return sm, fmt.Errorf("%s: %w", sm.Name, err)
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// The format allows an optional trailing timestamp; the exporter never
	// writes one, so reject it here to keep the contract tight.
	if strings.ContainsAny(rest, " \t") {
		return sm, fmt.Errorf("%s: unexpected trailing fields in %q", sm.Name, line)
	}
	v, err := parseFloat(rest)
	if err != nil {
		return sm, fmt.Errorf("%s: bad value %q", sm.Name, rest)
	}
	sm.Value = v
	return sm, nil
}

// parseLabels parses a {a="x",b="y"} block, returning the index just past
// the closing brace.
func parseLabels(s string, into map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		name := s[i:j]
		if name != "le" && !validLabelName(name) || name == "" {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := into[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return 0, fmt.Errorf("label %q value is not quoted", name)
		}
		val, end, err := parseQuoted(s[j+1:])
		if err != nil {
			return 0, err
		}
		into[name] = val
		i = j + 1 + end
	}
}

// parseQuoted parses a leading quoted string with \\, \" and \n escapes,
// returning the decoded value and the index just past the closing quote.
func parseQuoted(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c in label value", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parseFloat accepts the exposition format's value grammar, including +Inf,
// -Inf, and NaN.
func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// histKey groups one histogram child's samples: name plus its non-le labels.
type histKey struct {
	name   string
	labels string
}

// validateHistograms checks every declared histogram family: cumulative
// buckets must be non-decreasing in le, the terminal bucket must be
// le="+Inf", and _count must equal that terminal bucket.
func validateHistograms(s *Scrape) error {
	type hist struct {
		bounds []float64
		counts map[float64]float64
		count  float64
		hasCnt bool
		hasSum bool
	}
	hists := make(map[histKey]*hist)
	get := func(k histKey) *hist {
		h, ok := hists[k]
		if !ok {
			h = &hist{counts: map[float64]float64{}}
			hists[k] = h
		}
		return h
	}
	for _, sm := range s.Samples {
		base := familyOf(sm.Name, s.Types)
		if s.Types[base] != "histogram" || base == sm.Name {
			continue
		}
		k := histKey{name: base, labels: labelsKeyExceptLe(sm.Labels)}
		h := get(k)
		switch {
		case strings.HasSuffix(sm.Name, "_bucket"):
			leStr, ok := sm.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le label", sm.Name)
			}
			le, err := parseFloat(leStr)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", sm.Name, leStr)
			}
			if _, dup := h.counts[le]; dup {
				return fmt.Errorf("%s: duplicate bucket le=%q", sm.Name, leStr)
			}
			h.bounds = append(h.bounds, le)
			h.counts[le] = sm.Value
		case strings.HasSuffix(sm.Name, "_sum"):
			h.hasSum = true
		case strings.HasSuffix(sm.Name, "_count"):
			h.count = sm.Value
			h.hasCnt = true
		}
	}
	for k, h := range hists {
		if len(h.bounds) == 0 {
			return fmt.Errorf("histogram %s{%s} has no buckets", k.name, k.labels)
		}
		sorted := append([]float64(nil), h.bounds...)
		sort.Float64s(sorted)
		last := sorted[len(sorted)-1]
		if !math.IsInf(last, 1) {
			return fmt.Errorf("histogram %s{%s} has no le=\"+Inf\" terminal bucket", k.name, k.labels)
		}
		prevCount := -1.0
		for _, le := range sorted {
			c := h.counts[le]
			if c < prevCount {
				return fmt.Errorf("histogram %s{%s}: bucket le=%g count %g < preceding %g (not cumulative)",
					k.name, k.labels, le, c, prevCount)
			}
			prevCount = c
		}
		if !h.hasCnt || !h.hasSum {
			return fmt.Errorf("histogram %s{%s} is missing _sum or _count", k.name, k.labels)
		}
		if h.counts[math.Inf(1)] != h.count {
			return fmt.Errorf("histogram %s{%s}: le=\"+Inf\" bucket %g != _count %g",
				k.name, k.labels, h.counts[math.Inf(1)], h.count)
		}
	}
	return nil
}

// labelsKeyExceptLe renders a stable key of every label but le.
func labelsKeyExceptLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}
