package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization meets a
// non-positive pivot — the matrix is not (numerically) symmetric positive
// definite.
var ErrNotPositiveDefinite = errors.New("dense: matrix is not positive definite")

// Chol is a dense Cholesky factorization A = L·Lᵀ of a symmetric positive
// definite matrix, storing the lower-triangular factor.
type Chol struct {
	l *Mat[float64]
}

// FactorChol computes the Cholesky factorization of the symmetric positive
// definite matrix a. Only the lower triangle of a is read; a non-positive
// pivot reports ErrNotPositiveDefinite.
func FactorChol(a *Mat[float64]) (*Chol, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, fmt.Errorf("dense: cannot Cholesky-factor non-square %d×%d matrix", a.Rows, a.Cols)
	}
	l := NewMat[float64](n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if !(d > 0) { // catches non-positive and NaN pivots alike
			return nil, fmt.Errorf("%w: pivot %g at column %d", ErrNotPositiveDefinite, d, j)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return &Chol{l: l}, nil
}

// N returns the system dimension.
func (c *Chol) N() int { return c.l.Rows }

// SolveLower solves L y = b in place (forward substitution).
func (c *Chol) SolveLower(b []float64) {
	n := c.N()
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
}

// SolveLowerT solves Lᵀ y = b in place (back substitution).
func (c *Chol) SolveLowerT(b []float64) {
	n := c.N()
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * b[k]
		}
		b[i] = s / c.l.At(i, i)
	}
}

// Solve solves A x = b into dst (dst and b may alias).
func (c *Chol) Solve(dst, b []float64) error {
	n := c.N()
	if len(dst) != n || len(b) != n {
		return fmt.Errorf("dense: Chol Solve length mismatch (n=%d)", n)
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	c.SolveLower(dst)
	c.SolveLowerT(dst)
	return nil
}

// EigSymGen solves the generalized symmetric-definite eigenproblem
// A·v = λ·B·v with A symmetric and B symmetric positive definite, by
// Cholesky reduction to a standard symmetric problem: with B = L·Lᵀ,
// Ã = L⁻¹·A·L⁻ᵀ is symmetric and shares the eigenvalues; eigenvectors map
// back as V = L⁻ᵀ·Q. The returned eigenvector columns are B-orthonormal
// (Vᵀ·B·V = I, Vᵀ·A·V = diag(vals)) — the congruence that diagonalizes a
// projected RC-grid pencil once and for all. Eigenvalues ascend. Only the
// lower triangles of a and b are read; a B that is not positive definite
// reports ErrNotPositiveDefinite.
func EigSymGen(a, b *Mat[float64]) (vals []float64, vecs *Mat[float64], err error) {
	n := a.Rows
	if n != a.Cols || b.Rows != n || b.Cols != n {
		return nil, nil, fmt.Errorf("dense: EigSymGen wants equal square matrices, got %d×%d and %d×%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	chol, err := FactorChol(b)
	if err != nil {
		return nil, nil, err
	}
	// Ã = L⁻¹ A L⁻ᵀ, built column-by-column from the symmetrized lower
	// triangle of A so roundoff asymmetry in the input cannot leak through.
	at := NewMat[float64](n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i >= j {
				col[i] = a.At(i, j)
			} else {
				col[i] = a.At(j, i)
			}
		}
		chol.SolveLower(col)
		at.SetCol(j, col)
	}
	// Ã ← Ã L⁻ᵀ, i.e. solve L · (row of result)ᵀ per row.
	for i := 0; i < n; i++ {
		chol.SolveLower(at.Row(i))
	}
	vals, q, err := EigSym(at)
	if err != nil {
		return nil, nil, err
	}
	// V = L⁻ᵀ Q.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = q.At(i, j)
		}
		chol.SolveLowerT(col)
		q.SetCol(j, col)
	}
	return vals, q, nil
}
