// Package dense implements the dense linear algebra kernel used by the
// model reduction library: generic real/complex matrices, LU and QR
// factorizations, modified Gram–Schmidt orthonormalization with deflation,
// eigenvalue decompositions (symmetric Jacobi and complex QR iteration on a
// Hessenberg form), and a one-sided Jacobi SVD.
//
// Reduced-order models are small (q = m·l in the hundreds), so clarity and
// numerical robustness are preferred over blocking and cache tricks.
package dense

import (
	"fmt"

	"repro/internal/sparse"
)

// Mat is a dense row-major matrix over float64 or complex128.
type Mat[T sparse.Scalar] struct {
	Rows, Cols int
	Data       []T // len Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMat returns a zero-initialized rows×cols matrix.
func NewMat[T sparse.Scalar](rows, cols int) *Mat[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimensions %d×%d", rows, cols))
	}
	return &Mat[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// Eye returns the n×n identity.
func Eye[T sparse.Scalar](n int) *Mat[T] {
	m := NewMat[T](n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, sparse.FromFloat[T](1))
	}
	return m
}

// FromRows builds a matrix from row slices (copied).
func FromRows[T sparse.Scalar](rows [][]T) *Mat[T] {
	if len(rows) == 0 {
		return NewMat[T](0, 0)
	}
	m := NewMat[T](len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("dense: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Mat[T]) At(i, j int) T { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat[T]) Set(i, j int, v T) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Mat[T]) Row(i int) []T { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Mat[T]) Col(j int) []T {
	c := make([]T, m.Rows)
	for i := range c {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}

// SetCol assigns column j from x.
func (m *Mat[T]) SetCol(j int, x []T) {
	if len(x) != m.Rows {
		panic("dense: SetCol length mismatch")
	}
	for i := range x {
		m.Data[i*m.Cols+j] = x[i]
	}
}

// Clone returns a deep copy.
func (m *Mat[T]) Clone() *Mat[T] {
	return &Mat[T]{Rows: m.Rows, Cols: m.Cols, Data: append([]T(nil), m.Data...)}
}

// T returns the transpose as a new matrix (no conjugation).
func (m *Mat[T]) T() *Mat[T] {
	t := NewMat[T](m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// H returns the conjugate transpose as a new matrix.
func (m *Mat[T]) H() *Mat[T] {
	t := NewMat[T](m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = sparse.Conj(m.Data[i*m.Cols+j])
		}
	}
	return t
}

// Mul returns a*b.
func (a *Mat[T]) Mul(b *Mat[T]) *Mat[T] {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMat[T](a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if sparse.IsZero(av) {
				continue
			}
			brow := b.Row(k)
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// MulVec returns A*x.
func (a *Mat[T]) MulVec(x []T) []T {
	if len(x) != a.Cols {
		panic("dense: MulVec dimension mismatch")
	}
	y := make([]T, a.Rows)
	for i := 0; i < a.Rows; i++ {
		y[i] = sparse.Dot(a.Row(i), x)
	}
	return y
}

// Add returns a + b.
func (a *Mat[T]) Add(b *Mat[T]) *Mat[T] {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("dense: Add dimension mismatch")
	}
	c := a.Clone()
	for i := range c.Data {
		c.Data[i] += b.Data[i]
	}
	return c
}

// Sub returns a - b.
func (a *Mat[T]) Sub(b *Mat[T]) *Mat[T] {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("dense: Sub dimension mismatch")
	}
	c := a.Clone()
	for i := range c.Data {
		c.Data[i] -= b.Data[i]
	}
	return c
}

// Scale multiplies all elements by alpha in place and returns the receiver.
func (m *Mat[T]) Scale(alpha T) *Mat[T] {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
	return m
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Mat[T]) MaxAbs() float64 {
	return sparse.InfNorm(m.Data)
}

// FrobNorm returns the Frobenius norm.
func (m *Mat[T]) FrobNorm() float64 {
	return sparse.Nrm2(m.Data)
}

// NNZ returns the number of exactly nonzero elements — used to measure ROM
// sparsity structure (Fig. 4 of the paper).
func (m *Mat[T]) NNZ() int {
	n := 0
	for _, v := range m.Data {
		if !sparse.IsZero(v) {
			n++
		}
	}
	return n
}

// ToComplex widens a real matrix to complex128.
func ToComplex(m *Mat[float64]) *Mat[complex128] {
	z := NewMat[complex128](m.Rows, m.Cols)
	for i, v := range m.Data {
		z.Data[i] = complex(v, 0)
	}
	return z
}

// Real extracts the real part of a complex matrix.
func Real(m *Mat[complex128]) *Mat[float64] {
	r := NewMat[float64](m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = real(v)
	}
	return r
}
