package dense

import (
	"errors"
	"fmt"

	"repro/internal/sparse"
)

// ErrSingular is returned when a dense factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("dense: matrix is numerically singular")

// LU is a dense LU factorization with partial pivoting: P·A = L·U.
type LU[T sparse.Scalar] struct {
	lu   *Mat[T] // packed L (unit diagonal, below) and U (on and above)
	piv  []int   // row interchanges: row i was swapped with piv[i]
	sign float64
}

// FactorLU computes the LU factorization of the square matrix a.
func FactorLU[T sparse.Scalar](a *Mat[T]) (*LU[T], error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: cannot LU-factor non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below the diagonal.
		p := k
		maxAbs := sparse.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if av := sparse.Abs(lu.At(i, k)); av > maxAbs {
				maxAbs = av
				p = i
			}
		}
		piv[k] = p
		if maxAbs == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if sparse.IsZero(m) {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU[T]{lu: lu, piv: piv, sign: sign}, nil
}

// N returns the system dimension.
func (f *LU[T]) N() int { return f.lu.Rows }

// Solve solves A x = b into dst (dst and b may alias).
func (f *LU[T]) Solve(dst, b []T) error {
	n := f.N()
	if len(dst) != n || len(b) != n {
		return fmt.Errorf("dense: LU Solve length mismatch (n=%d)", n)
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Apply row interchanges.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			dst[k], dst[p] = dst[p], dst[k]
		}
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		var sum T
		for j := 0; j < i; j++ {
			sum += row[j] * dst[j]
		}
		dst[i] -= sum
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		var sum T
		for j := i + 1; j < n; j++ {
			sum += row[j] * dst[j]
		}
		dst[i] = (dst[i] - sum) / row[i]
	}
	return nil
}

// SolveMat solves A X = B and returns X.
func (f *LU[T]) SolveMat(b *Mat[T]) (*Mat[T], error) {
	if b.Rows != f.N() {
		return nil, fmt.Errorf("dense: SolveMat dimension mismatch")
	}
	x := NewMat[T](b.Rows, b.Cols)
	col := make([]T, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		if err := f.Solve(col, col); err != nil {
			return nil, err
		}
		x.SetCol(j, col)
	}
	return x, nil
}

// Det returns the determinant.
func (f *LU[T]) Det() T {
	det := sparse.FromFloat[T](f.sign)
	for i := 0; i < f.N(); i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// Inverse returns A⁻¹. Intended for small ROM-sized systems.
func (f *LU[T]) Inverse() (*Mat[T], error) {
	return f.SolveMat(Eye[T](f.N()))
}

// Solve is a convenience wrapper: factor a and solve a single system.
func Solve[T sparse.Scalar](a *Mat[T], b []T) ([]T, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	x := make([]T, len(b))
	if err := f.Solve(x, b); err != nil {
		return nil, err
	}
	return x, nil
}
