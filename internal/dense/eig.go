package dense

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrEigNoConvergence is returned when QR iteration fails to deflate all
// eigenvalues within its sweep budget.
var ErrEigNoConvergence = errors.New("dense: eigenvalue iteration did not converge")

// EigSym computes the eigendecomposition of a symmetric real matrix using
// cyclic Jacobi rotations: A = V·diag(vals)·Vᵀ. Eigenvalues are returned in
// ascending order with matching eigenvector columns. Only the lower triangle
// of a is read.
func EigSym(a *Mat[float64]) (vals []float64, vecs *Mat[float64], err error) {
	n := a.Rows
	if n != a.Cols {
		return nil, nil, errors.New("dense: EigSym requires a square matrix")
	}
	w := NewMat[float64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			w.Set(i, j, a.At(i, j))
			w.Set(j, i, a.At(i, j))
		}
	}
	v := Eye[float64](n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				off += math.Abs(w.At(p, q))
			}
		}
		if off < 1e-14*(1+w.MaxAbs()) {
			vals = make([]float64, n)
			for i := range vals {
				vals[i] = w.At(i, i)
			}
			sortEigSym(vals, v)
			return vals, v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (w.At(q, q) - w.At(p, p)) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < n; i++ {
					wip, wiq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wip-s*wiq)
					w.Set(i, q, s*wip+c*wiq)
				}
				for j := 0; j < n; j++ {
					wpj, wqj := w.At(p, j), w.At(q, j)
					w.Set(p, j, c*wpj-s*wqj)
					w.Set(q, j, s*wpj+c*wqj)
				}
				for i := 0; i < n; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}
	return nil, nil, ErrEigNoConvergence
}

func sortEigSym(vals []float64, v *Mat[float64]) {
	n := len(vals)
	for i := 1; i < n; i++ {
		for k := i; k > 0 && vals[k] < vals[k-1]; k-- {
			vals[k], vals[k-1] = vals[k-1], vals[k]
			for r := 0; r < v.Rows; r++ {
				a, b := v.At(r, k), v.At(r, k-1)
				v.Set(r, k, b)
				v.Set(r, k-1, a)
			}
		}
	}
}

// Eig computes the eigenvalues and right eigenvectors of a general real
// matrix by complex Hessenberg reduction followed by shifted QR iteration
// to Schur form. Eigenvector columns are normalized to unit 2-norm.
func Eig(a *Mat[float64]) (vals []complex128, vecs *Mat[complex128], err error) {
	return EigComplex(ToComplex(a))
}

// Eigenvalues returns only the eigenvalues of a general real matrix.
func Eigenvalues(a *Mat[float64]) ([]complex128, error) {
	h, _, err := schur(ToComplex(a), false)
	if err != nil {
		return nil, err
	}
	vals := make([]complex128, h.Rows)
	for i := range vals {
		vals[i] = h.At(i, i)
	}
	return vals, nil
}

// EigComplex computes eigenvalues and right eigenvectors of a general
// complex matrix.
func EigComplex(a *Mat[complex128]) (vals []complex128, vecs *Mat[complex128], err error) {
	n := a.Rows
	if n != a.Cols {
		return nil, nil, errors.New("dense: Eig requires a square matrix")
	}
	if n == 0 {
		return nil, NewMat[complex128](0, 0), nil
	}
	t, z, err := schur(a, true)
	if err != nil {
		return nil, nil, err
	}
	vals = make([]complex128, n)
	for i := range vals {
		vals[i] = t.At(i, i)
	}
	// Right eigenvectors of triangular T via back substitution, then
	// rotate back through the accumulated unitary Z.
	y := NewMat[complex128](n, n)
	for k := 0; k < n; k++ {
		lambda := vals[k]
		y.Set(k, k, 1)
		for i := k - 1; i >= 0; i-- {
			var sum complex128
			for j := i + 1; j <= k; j++ {
				sum += t.At(i, j) * y.At(j, k)
			}
			den := t.At(i, i) - lambda
			if cmplx.Abs(den) < 1e-300 {
				den = complex(1e-300, 0) // defective direction guard
			}
			y.Set(i, k, -sum/den)
		}
	}
	vecs = z.Mul(y)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < n; i++ {
			norm += real(vecs.At(i, j) * cmplx.Conj(vecs.At(i, j)))
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			inv := complex(1/norm, 0)
			for i := 0; i < n; i++ {
				vecs.Set(i, j, vecs.At(i, j)*inv)
			}
		}
	}
	return vals, vecs, nil
}

// schur reduces a to upper triangular (complex Schur) form T = Qᴴ A Q via
// Hessenberg reduction and shifted QR with Givens rotations. If wantZ, the
// unitary Q is accumulated and returned.
func schur(a *Mat[complex128], wantZ bool) (t, z *Mat[complex128], err error) {
	n := a.Rows
	h := a.Clone()
	if wantZ {
		z = Eye[complex128](n)
	}

	// Householder reduction to upper Hessenberg form.
	for k := 0; k < n-2; k++ {
		x := make([]complex128, n-k-1)
		for i := k + 1; i < n; i++ {
			x[i-k-1] = h.At(i, k)
		}
		alpha := nrm2c(x)
		if alpha == 0 {
			continue
		}
		s := complex(1, 0)
		if x[0] != 0 {
			s = x[0] / complex(cmplx.Abs(x[0]), 0)
		}
		x[0] += s * complex(alpha, 0)
		vn := nrm2c(x)
		if vn == 0 {
			continue
		}
		for i := range x {
			x[i] /= complex(vn, 0)
		}
		// H ← P H P with P = I - 2 v vᴴ acting on rows/cols k+1..n-1.
		for j := 0; j < n; j++ {
			var hsum complex128
			for i := k + 1; i < n; i++ {
				hsum += cmplx.Conj(x[i-k-1]) * h.At(i, j)
			}
			hsum *= 2
			for i := k + 1; i < n; i++ {
				h.Set(i, j, h.At(i, j)-x[i-k-1]*hsum)
			}
		}
		for i := 0; i < n; i++ {
			var hsum complex128
			for j := k + 1; j < n; j++ {
				hsum += h.At(i, j) * x[j-k-1]
			}
			hsum *= 2
			for j := k + 1; j < n; j++ {
				h.Set(i, j, h.At(i, j)-hsum*cmplx.Conj(x[j-k-1]))
			}
		}
		if wantZ {
			for i := 0; i < n; i++ {
				var hsum complex128
				for j := k + 1; j < n; j++ {
					hsum += z.At(i, j) * x[j-k-1]
				}
				hsum *= 2
				for j := k + 1; j < n; j++ {
					z.Set(i, j, z.At(i, j)-hsum*cmplx.Conj(x[j-k-1]))
				}
			}
		}
	}

	// Shifted QR iteration with deflation.
	const maxIterPerEig = 60
	hi := n - 1
	iter := 0
	cs := make([]complex128, n) // Givens cosines (real in principle, kept complex)
	ss := make([]complex128, n)
	for hi > 0 {
		// Deflate tiny subdiagonals.
		deflated := false
		for k := hi; k > 0; k-- {
			if cmplx.Abs(h.At(k, k-1)) <= 1e-15*(cmplx.Abs(h.At(k-1, k-1))+cmplx.Abs(h.At(k, k))) {
				h.Set(k, k-1, 0)
				if k == hi {
					hi--
					iter = 0
					deflated = true
					break
				}
			}
		}
		if deflated {
			continue
		}
		if hi == 0 {
			break
		}
		// Active block [lo..hi]: walk up to the nearest zero subdiagonal.
		lo := hi
		for lo > 0 && h.At(lo, lo-1) != 0 {
			lo--
		}
		iter++
		if iter > maxIterPerEig {
			return nil, nil, ErrEigNoConvergence
		}
		// Wilkinson shift from the trailing 2×2 of the active block.
		var mu complex128
		{
			a11 := h.At(hi-1, hi-1)
			a12 := h.At(hi-1, hi)
			a21 := h.At(hi, hi-1)
			a22 := h.At(hi, hi)
			tr := a11 + a22
			det := a11*a22 - a12*a21
			disc := cmplx.Sqrt(tr*tr - 4*det)
			l1 := (tr + disc) / 2
			l2 := (tr - disc) / 2
			if cmplx.Abs(l1-a22) < cmplx.Abs(l2-a22) {
				mu = l1
			} else {
				mu = l2
			}
			if iter%20 == 0 {
				// Exceptional shift to break symmetry cycles.
				ex := cmplx.Abs(h.At(hi, hi-1))
				if hi >= 2 {
					ex += cmplx.Abs(h.At(hi-1, hi-2))
				}
				mu = complex(ex, 0)
			}
		}
		// Explicit single-shift QR step on [lo..hi] via Givens rotations.
		for i := lo; i <= hi; i++ {
			h.Set(i, i, h.At(i, i)-mu)
		}
		for i := lo; i < hi; i++ {
			// Rotation zeroing h[i+1][i] against h[i][i].
			f, g := h.At(i, i), h.At(i+1, i)
			r := math.Hypot(cmplx.Abs(f), cmplx.Abs(g))
			if r == 0 {
				cs[i], ss[i] = 1, 0
				continue
			}
			c := complex(cmplx.Abs(f)/r, 0)
			var sgn complex128 = 1
			if f != 0 {
				sgn = f / complex(cmplx.Abs(f), 0)
			}
			s := sgn * cmplx.Conj(g) / complex(r, 0)
			cs[i], ss[i] = c, s
			for j := i; j < n; j++ {
				hij, hi1j := h.At(i, j), h.At(i+1, j)
				h.Set(i, j, c*hij+s*hi1j)
				h.Set(i+1, j, -cmplx.Conj(s)*hij+c*hi1j)
			}
		}
		for i := lo; i < hi; i++ {
			c, s := cs[i], ss[i]
			top := i + 2
			if top > hi {
				top = hi
			}
			for r := 0; r <= top; r++ {
				hri, hri1 := h.At(r, i), h.At(r, i+1)
				h.Set(r, i, c*hri+cmplx.Conj(s)*hri1)
				h.Set(r, i+1, -s*hri+c*hri1)
			}
			if wantZ {
				for r := 0; r < n; r++ {
					zri, zri1 := z.At(r, i), z.At(r, i+1)
					z.Set(r, i, c*zri+cmplx.Conj(s)*zri1)
					z.Set(r, i+1, -s*zri+c*zri1)
				}
			}
		}
		for i := lo; i <= hi; i++ {
			h.Set(i, i, h.At(i, i)+mu)
		}
	}
	// Zero the strict lower triangle (numerically negligible by now).
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			h.Set(i, j, 0)
		}
	}
	return h, z, nil
}

func nrm2c(x []complex128) float64 {
	s := 0.0
	for _, v := range x {
		a := cmplx.Abs(v)
		s += a * a
	}
	return math.Sqrt(s)
}
