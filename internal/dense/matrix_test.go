package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, rows, cols int) *Mat[float64] {
	m := NewMat[float64](rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func matApproxEq(a, b *Mat[float64], tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatBasics(t *testing.T) {
	m := NewMat[float64](2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 || m.At(0, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	if got := m.Col(1); got[0] != 5 || got[1] != 0 {
		t.Fatal("Col broken")
	}
	m.SetCol(0, []float64{7, 8})
	if m.At(0, 0) != 7 || m.At(1, 0) != 8 {
		t.Fatal("SetCol broken")
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 5 {
		t.Fatal("T broken")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		b := randMat(rng, a.Cols, 1+rng.Intn(6))
		c := randMat(rng, b.Cols, 1+rng.Intn(6))
		lhs := a.Mul(b).Mul(c)
		rhs := a.Mul(b.Mul(c))
		return matApproxEq(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 4, 4)
	if !matApproxEq(a.Mul(Eye[float64](4)), a, 1e-15) {
		t.Error("A·I ≠ A")
	}
	if !matApproxEq(Eye[float64](4).Mul(a), a, 1e-15) {
		t.Error("I·A ≠ A")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 5, 3)
	x := []float64{1, -2, 3}
	xm := NewMat[float64](3, 1)
	xm.SetCol(0, x)
	want := a.Mul(xm)
	got := a.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-14 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestComplexHConjugates(t *testing.T) {
	m := NewMat[complex128](1, 2)
	m.Set(0, 0, 1+2i)
	m.Set(0, 1, 3-4i)
	h := m.H()
	if h.At(0, 0) != 1-2i || h.At(1, 0) != 3+4i {
		t.Fatal("H conjugation wrong")
	}
}

func TestDenseLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randMat(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+5) // well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestDenseLUDetAndInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {1, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-10) > 1e-12 {
		t.Errorf("Det = %g, want 10", d)
	}
	inv, err := f.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !matApproxEq(a.Mul(inv), Eye[float64](2), 1e-12) {
		t.Error("A·A⁻¹ ≠ I")
	}
}

func TestDenseLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("singular matrix not detected")
	}
}

func TestDenseLUComplex(t *testing.T) {
	a := NewMat[complex128](2, 2)
	a.Set(0, 0, 1+1i)
	a.Set(0, 1, 2)
	a.Set(1, 0, 0)
	a.Set(1, 1, 3-1i)
	want := []complex128{1 - 1i, 2 + 2i}
	b := a.MulVec(want)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if absC(got[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func absC(z complex128) float64 { return math.Hypot(real(z), imag(z)) }
