package dense

import (
	"math"
	"math/rand"
	"testing"
)

func randSym(rng *rand.Rand, n int) *Mat[float64] {
	a := NewMat[float64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := 2*rng.Float64() - 1
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func randSPD(rng *rand.Rand, n int) *Mat[float64] {
	m := NewMat[float64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 2*rng.Float64()-1)
		}
	}
	b := m.T().Mul(m)
	for i := 0; i < n; i++ {
		b.Set(i, i, b.At(i, i)+float64(n)) // diagonal shift: well-conditioned SPD
	}
	return b
}

func TestFactorCholRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 12} {
		b := randSPD(rng, n)
		ch, err := FactorChol(b)
		if err != nil {
			t.Fatalf("n=%d: FactorChol: %v", n, err)
		}
		x := make([]float64, n)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		if err := ch.Solve(x, rhs); err != nil {
			t.Fatal(err)
		}
		// Residual ‖Bx − rhs‖ must be tiny.
		var res float64
		for i := 0; i < n; i++ {
			s := -rhs[i]
			for j := 0; j < n; j++ {
				s += b.At(i, j) * x[j]
			}
			res += s * s
		}
		if math.Sqrt(res) > 1e-10 {
			t.Fatalf("n=%d: Cholesky solve residual %g", n, math.Sqrt(res))
		}
	}
}

func TestFactorCholRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := FactorChol(a); err == nil {
		t.Fatal("FactorChol accepted an indefinite matrix")
	}
}

// TestEigSymGen checks the defining identities of the generalized
// decomposition: A·vₖ = λₖ·B·vₖ, VᵀBV = I, eigenvalues ascending.
func TestEigSymGen(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 8, 15} {
		a := randSym(rng, n)
		b := randSPD(rng, n)
		vals, vecs, err := EigSymGen(a, b)
		if err != nil {
			t.Fatalf("n=%d: EigSymGen: %v", n, err)
		}
		if len(vals) != n || vecs.Rows != n || vecs.Cols != n {
			t.Fatalf("n=%d: wrong result shape", n)
		}
		for k := 1; k < n; k++ {
			if vals[k] < vals[k-1] {
				t.Fatalf("n=%d: eigenvalues not ascending", n)
			}
		}
		av := a.Mul(vecs)
		bv := b.Mul(vecs)
		for k := 0; k < n; k++ {
			var res, norm float64
			for i := 0; i < n; i++ {
				r := av.At(i, k) - vals[k]*bv.At(i, k)
				res += r * r
				norm += bv.At(i, k) * bv.At(i, k)
			}
			if math.Sqrt(res) > 1e-9*(1+math.Abs(vals[k]))*math.Sqrt(norm+1) {
				t.Fatalf("n=%d k=%d: residual ‖Av−λBv‖ = %g", n, k, math.Sqrt(res))
			}
		}
		vbv := vecs.T().Mul(bv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vbv.At(i, j)-want) > 1e-9 {
					t.Fatalf("n=%d: VᵀBV deviates from identity at (%d,%d): %g", n, i, j, vbv.At(i, j))
				}
			}
		}
	}
}

func TestEigSymGenRejectsIndefiniteB(t *testing.T) {
	a := Eye[float64](2)
	b := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, _, err := EigSymGen(a, b); err == nil {
		t.Fatal("EigSymGen accepted an indefinite B")
	}
}
