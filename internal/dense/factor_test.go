package dense

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(10)
		n := 1 + rng.Intn(m)
		a := randMat(rng, m, n)
		q, r := QR(a)
		if !matApproxEq(q.Mul(r), a, 1e-11) {
			t.Fatalf("trial %d: QR ≠ A", trial)
		}
		if !matApproxEq(q.T().Mul(q), Eye[float64](n), 1e-11) {
			t.Fatalf("trial %d: QᵀQ ≠ I", trial)
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-12 {
					t.Fatalf("trial %d: R not upper triangular", trial)
				}
			}
		}
	}
}

func TestQRComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 6, 4
	a := NewMat[complex128](m, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	q, r := QR(a)
	qr := q.Mul(r)
	for i := range qr.Data {
		if absC(qr.Data[i]-a.Data[i]) > 1e-11 {
			t.Fatal("complex QR ≠ A")
		}
	}
	qhq := q.H().Mul(q)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if absC(qhq.At(i, j)-want) > 1e-11 {
				t.Fatal("complex QᴴQ ≠ I")
			}
		}
	}
}

func TestSVDReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randMat(rng, m, n)
		u, s, v := SVD(a)
		// A = U diag(s) Vᵀ
		k := len(s)
		us := NewMat[float64](m, k)
		for j := 0; j < k; j++ {
			for i := 0; i < m; i++ {
				us.Set(i, j, u.At(i, j)*s[j])
			}
		}
		rec := us.Mul(v.T())
		if !matApproxEq(rec, a, 1e-9) {
			return false
		}
		// Singular values descending and nonnegative.
		for i := 1; i < k; i++ {
			if s[i] > s[i-1]+1e-12 || s[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSVDKnownRank1(t *testing.T) {
	// A = [1;2]·[3 4]: single nonzero singular value √5·5 = 5·√5? Compute:
	// ‖[1;2]‖·‖[3 4]‖ = √5·5.
	a := FromRows([][]float64{{3, 4}, {6, 8}})
	_, s, _ := SVD(a)
	want := math.Sqrt(5) * 5
	if math.Abs(s[0]-want) > 1e-10 {
		t.Errorf("σ₁ = %g, want %g", s[0], want)
	}
	if s[1] > 1e-10 {
		t.Errorf("σ₂ = %g, want 0 (rank-1 matrix)", s[1])
	}
}

func TestEigSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1, 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("eigenvalues %v, want [1 3]", vals)
	}
	// Verify A v = λ v.
	for k := 0; k < 2; k++ {
		v := vecs.Col(k)
		av := a.MulVec(v)
		for i := range av {
			if math.Abs(av[i]-vals[k]*v[i]) > 1e-12 {
				t.Fatalf("eigenpair %d violated", k)
			}
		}
	}
}

func TestEigSymRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := NewMat[float64](n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigSym(a)
		if err != nil {
			return false
		}
		// Residual ‖A V - V Λ‖ and orthogonality of V.
		av := a.Mul(vecs)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if math.Abs(av.At(i, j)-vals[j]*vecs.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return matApproxEq(vecs.T().Mul(vecs), Eye[float64](n), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEigGeneralKnownComplexPair(t *testing.T) {
	// Rotation-like matrix [[0,-1],[1,0]] has eigenvalues ±i.
	a := FromRows([][]float64{{0, -1}, {1, 0}})
	vals, _, err := Eig(a)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(vals, func(i, j int) bool { return imag(vals[i]) < imag(vals[j]) })
	if absC(vals[0]-(-1i)) > 1e-10 || absC(vals[1]-1i) > 1e-10 {
		t.Fatalf("eigenvalues %v, want ±i", vals)
	}
}

func TestEigGeneralResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randMat(rng, n, n)
		vals, vecs, err := Eig(a)
		if err != nil {
			return false
		}
		ac := ToComplex(a)
		for k := 0; k < n; k++ {
			v := vecs.Col(k)
			av := ac.MulVec(v)
			for i := range av {
				if cmplx.Abs(av[i]-vals[k]*v[i]) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEigenvaluesTraceDeterminantProperty(t *testing.T) {
	// Σλ = tr(A) and Πλ = det(A).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randMat(rng, n, n)
		vals, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		var sum, prod complex128 = 0, 1
		for _, l := range vals {
			sum += l
			prod *= l
		}
		tr := 0.0
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		f64, err := FactorLU(a)
		var det float64
		if err != nil {
			det = 0
		} else {
			det = f64.Det()
		}
		scale := 1 + math.Abs(tr)
		return cmplx.Abs(sum-complex(tr, 0)) < 1e-7*scale &&
			cmplx.Abs(prod-complex(det, 0)) < 1e-6*(1+math.Abs(det))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBasisOrthonormalityAndDeflation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 20
	var stats OrthoStats
	b := NewBasis[float64](n, &stats)
	for k := 0; k < 8; k++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if !b.Append(v) {
			t.Fatalf("random vector %d unexpectedly deflated", k)
		}
	}
	// A vector already in the span must deflate.
	inSpan := make([]float64, n)
	for k := 0; k < b.Len(); k++ {
		c := rng.NormFloat64()
		for i, q := range b.Col(k) {
			inSpan[i] += c * q
		}
	}
	if b.Append(inSpan) {
		t.Fatal("dependent vector not deflated")
	}
	if stats.Deflated != 1 {
		t.Errorf("Deflated = %d, want 1", stats.Deflated)
	}
	if stats.DotProducts == 0 {
		t.Error("DotProducts not counted")
	}
	// Orthonormality check.
	m := b.Mat()
	if !matApproxEq(m.T().Mul(m), Eye[float64](b.Len()), 1e-12) {
		t.Fatal("basis not orthonormal")
	}
}

func TestBasisZeroVectorDeflates(t *testing.T) {
	b := NewBasis[float64](5, nil)
	if b.Append(make([]float64, 5)) {
		t.Fatal("zero vector must deflate")
	}
}
