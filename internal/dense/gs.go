package dense

import (
	"repro/internal/sparse"
)

// DeflationTol is the default relative threshold below which a candidate
// basis vector is declared linearly dependent (deflated) during
// orthonormalization: if orthogonalization shrinks the vector's norm below
// DeflationTol times its original norm, the vector carries no new direction.
const DeflationTol = 1e-10

// OrthoStats counts the long vector–vector products spent in
// orthonormalization. The paper's central cost argument (Sec. III-B) is that
// BDSM needs m·l(l-1)/2 of these where PRIMA needs m·l(m·l-1)/2; the counters
// make that claim measurable.
type OrthoStats struct {
	// DotProducts counts inner products of length-n vectors (projections and
	// reorthogonalization passes both count).
	DotProducts int64
	// Deflated counts candidate vectors dropped as linearly dependent.
	Deflated int64
}

// Basis is a growing set of mutually orthonormal length-n column vectors,
// maintained with modified Gram–Schmidt and one reorthogonalization pass
// (the "twice is enough" rule of Kahan/Parlett).
type Basis[T sparse.Scalar] struct {
	n     int
	cols  [][]T
	stats *OrthoStats
}

// NewBasis returns an empty basis for vectors of length n. If stats is
// non-nil, orthonormalization work is accumulated into it.
func NewBasis[T sparse.Scalar](n int, stats *OrthoStats) *Basis[T] {
	return &Basis[T]{n: n, stats: stats}
}

// Len returns the number of basis vectors.
func (b *Basis[T]) Len() int { return len(b.cols) }

// N returns the vector length.
func (b *Basis[T]) N() int { return b.n }

// Col returns the i-th basis vector (shared storage; callers must not
// modify it).
func (b *Basis[T]) Col(i int) []T { return b.cols[i] }

// Append orthonormalizes v against the basis and appends the result.
// It reports whether the vector was accepted; a vector that is (numerically)
// in the span of the basis is deflated and not appended. v is not modified.
func (b *Basis[T]) Append(v []T) bool {
	return b.AppendTol(v, DeflationTol)
}

// AppendTol is Append with a caller-chosen relative deflation threshold:
// the candidate is rejected when orthogonalization leaves less than
// tol·‖v‖ of new direction. Thresholds well above DeflationTol implement
// adaptive truncation — dropping directions that contribute little, not
// only exact linear dependence.
func (b *Basis[T]) AppendTol(v []T, tol float64) bool {
	if len(v) != b.n {
		panic("dense: Basis.Append length mismatch")
	}
	w := append([]T(nil), v...)
	norm0 := sparse.Nrm2(w)
	if norm0 == 0 {
		if b.stats != nil {
			b.stats.Deflated++
		}
		return false
	}
	// Two MGS passes for numerical orthogonality.
	for pass := 0; pass < 2; pass++ {
		for _, q := range b.cols {
			h := sparse.DotConj(q, w)
			sparse.Axpy(w, -h, q)
			if b.stats != nil {
				b.stats.DotProducts++
			}
		}
	}
	norm := sparse.Nrm2(w)
	if norm <= tol*norm0 {
		if b.stats != nil {
			b.stats.Deflated++
		}
		return false
	}
	sparse.ScaleVec(w, sparse.FromFloat[T](1/norm))
	b.cols = append(b.cols, w)
	return true
}

// Mat returns the basis as an n×k dense matrix (columns are basis vectors).
func (b *Basis[T]) Mat() *Mat[T] {
	m := NewMat[T](b.n, len(b.cols))
	for j, c := range b.cols {
		m.SetCol(j, c)
	}
	return m
}

// Cols returns the underlying column slices (shared storage).
func (b *Basis[T]) Cols() [][]T { return b.cols }
