package dense

import (
	"math"

	"repro/internal/sparse"
)

// QR computes a thin Householder QR factorization A = Q·R of an m×n matrix
// with m ≥ n: Q is m×n with orthonormal columns and R is n×n upper
// triangular.
func QR[T sparse.Scalar](a *Mat[T]) (q, r *Mat[T]) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("dense: QR requires rows ≥ cols")
	}
	work := a.Clone()
	vs := make([][]T, 0, n) // Householder vectors

	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		x := make([]T, m-k)
		for i := k; i < m; i++ {
			x[i-k] = work.At(i, k)
		}
		alpha := sparse.Nrm2(x)
		if alpha == 0 {
			vs = append(vs, nil)
			continue
		}
		// v = x + sign(x0)·‖x‖·e1 with complex sign x0/|x0|.
		var s T
		if sparse.IsZero(x[0]) {
			s = sparse.FromFloat[T](1)
		} else {
			s = x[0] * sparse.FromFloat[T](1/sparse.Abs(x[0]))
		}
		x[0] += s * sparse.FromFloat[T](alpha)
		vn := sparse.Nrm2(x)
		if vn == 0 {
			vs = append(vs, nil)
			continue
		}
		sparse.ScaleVec(x, sparse.FromFloat[T](1/vn))
		vs = append(vs, x)
		// Apply P = I - 2 v vᴴ to work[k:, k:].
		for j := k; j < n; j++ {
			var h T
			for i := k; i < m; i++ {
				h += sparse.Conj(x[i-k]) * work.At(i, j)
			}
			h *= sparse.FromFloat[T](2)
			for i := k; i < m; i++ {
				work.Set(i, j, work.At(i, j)-x[i-k]*h)
			}
		}
	}

	r = NewMat[T](n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}
	// Form thin Q by applying the Householder reflectors to the first n
	// columns of the identity, in reverse order.
	q = NewMat[T](m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, sparse.FromFloat[T](1))
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := 0; j < n; j++ {
			var h T
			for i := k; i < m; i++ {
				h += sparse.Conj(v[i-k]) * q.At(i, j)
			}
			h *= sparse.FromFloat[T](2)
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-v[i-k]*h)
			}
		}
	}
	return q, r
}

// SVD computes the full thin singular value decomposition A = U·diag(s)·Vᵀ
// of a real m×n matrix using one-sided Jacobi rotations. U is m×k and V is
// n×k with k = min(m, n); singular values are returned in descending order.
func SVD(a *Mat[float64]) (u *Mat[float64], s []float64, v *Mat[float64]) {
	if a.Rows < a.Cols {
		// Factor the transpose and swap factors: A = U S Vᵀ ⇔ Aᵀ = V S Uᵀ.
		vt, st, ut := SVD(a.T())
		return ut, st, vt
	}
	m, n := a.Rows, a.Cols
	w := a.Clone()
	vm := Eye[float64](n)

	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					wp, wq := w.At(i, p), w.At(i, q)
					app += wp * wp
					aqq += wq * wq
					apq += wp * wq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				off += math.Abs(apq)
				// Jacobi rotation zeroing the (p,q) entry of AᵀA.
				zeta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < m; i++ {
					wp, wq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wp-sn*wq)
					w.Set(i, q, sn*wp+c*wq)
				}
				for i := 0; i < n; i++ {
					vp, vq := vm.At(i, p), vm.At(i, q)
					vm.Set(i, p, c*vp-sn*vq)
					vm.Set(i, q, sn*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Column norms are the singular values.
	s = make([]float64, n)
	u = NewMat[float64](m, n)
	type sv struct {
		val float64
		idx int
	}
	svs := make([]sv, n)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			norm += w.At(i, j) * w.At(i, j)
		}
		svs[j] = sv{math.Sqrt(norm), j}
	}
	// Sort descending by singular value (insertion sort; n is small).
	for i := 1; i < n; i++ {
		for k := i; k > 0 && svs[k].val > svs[k-1].val; k-- {
			svs[k], svs[k-1] = svs[k-1], svs[k]
		}
	}
	v = NewMat[float64](n, n)
	for out, e := range svs {
		s[out] = e.val
		for i := 0; i < m; i++ {
			if e.val > 0 {
				u.Set(i, out, w.At(i, e.idx)/e.val)
			}
		}
		for i := 0; i < n; i++ {
			v.Set(i, out, vm.At(i, e.idx))
		}
	}
	return u, s, v
}
