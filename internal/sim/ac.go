package sim

import (
	"fmt"
	"math"

	"repro/internal/lti"
)

// ACPoint is one frequency sample of a transfer-function entry.
type ACPoint struct {
	// Omega is the angular frequency in rad/s.
	Omega float64
	// H is the complex transfer value at jω.
	H complex128
}

// LogGrid returns the logarithmic frequency grid from wMin to wMax with the
// given number of points — the sampling shared by every AC sweep in the
// library. Exposing the grid lets batched evaluators (the serving layer)
// align sweeps from independent requests on identical frequency points, so
// cached pencil factorizations are reused across requests.
// Degenerate inputs have defined behavior: a reversed range (wMin > wMax),
// a non-positive wMin, or points < 1 is a clean error; wMin == wMax is the
// constant grid (every point wMin); points == 1 is allowed only for that
// constant case — a single sample of a non-degenerate log range has no
// canonical position, so it is rejected rather than guessed (and would
// otherwise divide by points−1 = 0).
func LogGrid(wMin, wMax float64, points int) ([]float64, error) {
	if wMin <= 0 || wMax < wMin || points < 1 {
		return nil, fmt.Errorf("sim: bad AC sweep range [%g, %g] × %d", wMin, wMax, points)
	}
	if wMin == wMax {
		grid := make([]float64, points)
		for k := range grid {
			grid[k] = wMin
		}
		return grid, nil
	}
	if points == 1 {
		return nil, fmt.Errorf("sim: a 1-point sweep needs wmin == wmax, got [%g, %g]", wMin, wMax)
	}
	grid := make([]float64, points)
	l0, l1 := math.Log10(wMin), math.Log10(wMax)
	for k := 0; k < points; k++ {
		grid[k] = math.Pow(10, l0+(l1-l0)*float64(k)/float64(points-1))
	}
	return grid, nil
}

// ACSweepEntry evaluates H[row][col](jω) of any system over a logarithmic
// frequency grid from wMin to wMax with the given number of points.
func ACSweepEntry(sys lti.System, row, col int, wMin, wMax float64, points int) ([]ACPoint, error) {
	grid, err := LogGrid(wMin, wMax, points)
	if err != nil {
		return nil, err
	}
	out := make([]ACPoint, points)
	for k, w := range grid {
		h, err := lti.EvalEntry(sys, complex(0, w), row, col)
		if err != nil {
			return nil, fmt.Errorf("sim: AC sweep at ω=%g: %w", w, err)
		}
		out[k] = ACPoint{Omega: w, H: h}
	}
	return out, nil
}

// RelativeError returns |a-b|/|a| pointwise for two sweeps on the same grid,
// the quantity plotted in Fig. 5(b) of the paper.
func RelativeError(ref, approx []ACPoint) ([]float64, error) {
	if len(ref) != len(approx) {
		return nil, fmt.Errorf("sim: sweep length mismatch %d vs %d", len(ref), len(approx))
	}
	errs := make([]float64, len(ref))
	for i := range ref {
		den := cmplxAbs(ref[i].H)
		if den == 0 {
			den = 1
		}
		errs[i] = cmplxAbs(ref[i].H-approx[i].H) / den
	}
	return errs, nil
}

func cmplxAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }
