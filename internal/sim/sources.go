// Package sim provides the time- and frequency-domain simulation engine of
// the library: fixed-step backward-Euler and trapezoidal transient
// integration for full sparse models, dense ROMs and block-diagonal BDSM
// ROMs (with optional per-block parallelism), plus standard source
// waveforms and an AC sweep driver.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Source is a scalar waveform u(t).
type Source interface {
	// At returns the source value at time t ≥ 0.
	At(t float64) float64
}

// DC is a constant source.
type DC float64

// At returns the constant value.
func (d DC) At(float64) float64 { return float64(d) }

// Step switches from 0 to Amplitude at Delay.
type Step struct {
	Amplitude float64
	Delay     float64
}

// At returns the step waveform value.
func (s Step) At(t float64) float64 {
	if t >= s.Delay {
		return s.Amplitude
	}
	return 0
}

// Pulse is a SPICE-style trapezoidal pulse train.
type Pulse struct {
	Low, High         float64
	Delay, Rise, Fall float64
	Width, Period     float64
}

// At returns the pulse waveform value.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return p.Low
	}
	tt := t - p.Delay
	if p.Period > 0 {
		tt = math.Mod(tt, p.Period)
	}
	switch {
	case tt < p.Rise:
		if p.Rise == 0 {
			return p.High
		}
		return p.Low + (p.High-p.Low)*tt/p.Rise
	case tt < p.Rise+p.Width:
		return p.High
	case tt < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.Low
		}
		return p.High - (p.High-p.Low)*(tt-p.Rise-p.Width)/p.Fall
	default:
		return p.Low
	}
}

// Sine is a sinusoidal source with optional delay.
type Sine struct {
	Offset, Amplitude, Freq, Delay float64
}

// At returns the sine waveform value.
func (s Sine) At(t float64) float64 {
	if t < s.Delay {
		return s.Offset
	}
	return s.Offset + s.Amplitude*math.Sin(2*math.Pi*s.Freq*(t-s.Delay))
}

// PWL is a piecewise-linear waveform through (T[i], V[i]) breakpoints.
type PWL struct {
	T, V []float64
}

// NewPWL validates and constructs a piecewise-linear source.
func NewPWL(t, v []float64) (*PWL, error) {
	if len(t) != len(v) || len(t) == 0 {
		return nil, fmt.Errorf("sim: PWL needs equal-length nonempty breakpoints, got %d/%d", len(t), len(v))
	}
	if !sort.Float64sAreSorted(t) {
		return nil, fmt.Errorf("sim: PWL breakpoint times must be nondecreasing")
	}
	return &PWL{T: append([]float64(nil), t...), V: append([]float64(nil), v...)}, nil
}

// At returns the piecewise-linear waveform value (clamped at the ends).
func (p *PWL) At(t float64) float64 {
	if t <= p.T[0] {
		return p.V[0]
	}
	n := len(p.T)
	if t >= p.T[n-1] {
		return p.V[n-1]
	}
	i := sort.SearchFloat64s(p.T, t)
	// p.T[i-1] < t ≤ p.T[i]
	t0, t1 := p.T[i-1], p.T[i]
	if t1 == t0 {
		return p.V[i]
	}
	return p.V[i-1] + (p.V[i]-p.V[i-1])*(t-t0)/(t1-t0)
}

// Input drives all m ports: it fills u with the port values at time t.
type Input func(t float64, u []float64)

// Sources bundles one Source per port into an Input.
func Sources(srcs []Source) Input {
	return func(t float64, u []float64) {
		for i, s := range srcs {
			u[i] = s.At(t)
		}
	}
}

// UniformInput drives every port with the same waveform.
func UniformInput(s Source) Input {
	return func(t float64, u []float64) {
		v := s.At(t)
		for i := range u {
			u[i] = v
		}
	}
}
