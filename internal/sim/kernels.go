package sim

// Fused-group inner kernels over structure-of-arrays session state. The
// group advance splits the per-mode coordinates, drives, and residues into
// separate real/imaginary float64 arrays so the innermost loops stream
// contiguous same-type data across sessions — the layout SIMD wants.
//
// Numerical contract: every kernel performs, per session lane, exactly the
// multiply/add/subtract sequence written in the Go reference below — the
// same operation order the scalar Stepper uses per step — so fused results
// equal independent-advance results (the amd64 assembly versions use only
// per-lane IEEE mul/add/sub, never FMA contraction, for the same reason).
// Dropping a complex-arithmetic identity like x−0·w = x can flip the sign
// of an exact zero but never changes a value, which is why the group's
// equivalence tests compare values, not bit patterns.

// axpyRealRef: y[i] += zr[i]*a - zi[i]*c — the real part of accumulating
// residue·z across one mode row, sessions innermost.
//
//pgmor:noalloc
func axpyRealRef(y, zr, zi []float64, a, c float64) {
	zr = zr[:len(y)]
	zi = zi[:len(y)]
	for i := range y {
		y[i] += zr[i]*a - zi[i]*c
	}
}

// accumBlockRef accumulates one modal block's residue contributions into the
// row-major output batch: for every mode k and output row r,
// yb[r*ns+s] += zr[k*ns+s]*rr[k*p+r] - zi[k*ns+s]*ri[k*p+r]. Equivalent to
// p×q axpyReal calls; the fused form exists so the assembly version pays one
// call and one bounds check per block instead of per (mode, row).
//
//pgmor:noalloc
func accumBlockRef(yb, zr, zi, rr, ri []float64, q, p, ns int) {
	for k := 0; k < q; k++ {
		zrk := zr[k*ns : (k+1)*ns]
		zik := zi[k*ns : (k+1)*ns]
		for r := 0; r < p; r++ {
			axpyRealRef(yb[r*ns:(r+1)*ns], zrk, zik, rr[k*p+r], ri[k*p+r])
		}
	}
}

// stepModesRef advances one mode across all sessions:
//
//	zr' = er*zr − ei*zi + u0*f0r + u1*f1r
//	zi' = er*zi + ei*zr + u0*f0i + u1*f1i
//
// — the split form of z' = e^{λh}·z + cu0·fNow + cu1·fNxt with real-valued
// drives, accumulated strictly left to right.
//
//pgmor:noalloc
func stepModesRef(zr, zi, u0, u1 []float64, er, ei, f0r, f0i, f1r, f1i float64) {
	zi = zi[:len(zr)]
	u0 = u0[:len(zr)]
	u1 = u1[:len(zr)]
	for i := range zr {
		a, b := zr[i], zi[i]
		tr := er*a - ei*b
		tr += u0[i] * f0r
		tr += u1[i] * f1r
		ti := er*b + ei*a
		ti += u0[i] * f0i
		ti += u1[i] * f1i
		zr[i] = tr
		zi[i] = ti
	}
}
