package sim

import (
	"testing"

	"repro/internal/lti"
)

// groupFixtures builds S steppers over ms plus S identically-configured
// twins, each pair pre-advanced to its own step offset so the group members
// sit at different session clocks.
func groupFixtures(t *testing.T, ms *lti.ModalSystem, s int) (members, twins []*Stepper, inputs []Input) {
	t.Helper()
	for i := 0; i < s; i++ {
		input := UniformInput(Sine{Amplitude: 1 + 0.1*float64(i), Freq: 0.25 + 0.5*float64(i%3)})
		inputs = append(inputs, input)
		a, err := NewStepper(ms, StepperOptions{Dt: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewStepper(ms, StepperOptions{Dt: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if off := 5 * (i % 4); off > 0 {
			if _, err := a.Advance(off, input); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Advance(off, input); err != nil {
				t.Fatal(err)
			}
		}
		members = append(members, a)
		twins = append(twins, b)
	}
	return members, twins, inputs
}

// TestStepperGroupBitIdentical: the fused multi-session advance must produce
// rows bit-identical to each member advanced independently — distinct
// waveforms, distinct session clocks, repeated chunks.
func TestStepperGroupBitIdentical(t *testing.T) {
	_, ms := modalTestSystem(t)
	members, twins, inputs := groupFixtures(t, ms, 7)
	g, err := NewStepperGroup(members, GroupOptions{})
	if err != nil {
		t.Fatalf("NewStepperGroup: %v", err)
	}
	if g.Size() != 7 {
		t.Fatalf("Size = %d, want 7", g.Size())
	}
	for _, n := range []int{1, 13, 64} {
		got, err := g.Advance(n, inputs)
		if err != nil {
			t.Fatalf("group Advance(%d): %v", n, err)
		}
		for s := range twins {
			want, err := twins[s].Advance(n, inputs[s])
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, got[s], want, 0) // bit-exact
			if members[s].Step() != twins[s].Step() {
				t.Fatalf("member %d clock %d, independent %d", s, members[s].Step(), twins[s].Step())
			}
		}
	}
	// Members stay fully owned between group advances: an independent
	// Advance after group advances continues the exact trajectory.
	for s := range members {
		got, err := members[s].Advance(9, inputs[s])
		if err != nil {
			t.Fatal(err)
		}
		want, err := twins[s].Advance(9, inputs[s])
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, got, want, 0)
	}
}

// TestStepperGroupImplicitBlocks: groups over implicit-rule steppers fuse
// too (the per-session serial path), bit-identical as well.
func TestStepperGroupImplicitBlocks(t *testing.T) {
	bd, _ := modalTestSystem(t)
	input := UniformInput(Pulse{Low: 0, High: 1, Delay: 0.05, Rise: 0.02, Fall: 0.02, Width: 0.2, Period: 0.5})
	var members []*Stepper
	var inputs []Input
	for i := 0; i < 3; i++ {
		st, err := NewImplicitStepper(bd, StepperOptions{Method: Trapezoidal, Dt: 0.005})
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, st)
		inputs = append(inputs, input)
	}
	g, err := NewStepperGroup(members, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Advance(40, inputs)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := NewImplicitStepper(bd, StepperOptions{Method: Trapezoidal, Dt: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.Advance(40, input)
	if err != nil {
		t.Fatal(err)
	}
	for s := range got {
		requireSameResult(t, got[s], want, 0)
	}
}

// TestStepperGroupWorkers: sharding the sessions across persistent workers
// changes nothing about the per-session arithmetic.
func TestStepperGroupWorkers(t *testing.T) {
	_, ms := modalTestSystem(t)
	members, twins, inputs := groupFixtures(t, ms, 9)
	g, err := NewStepperGroup(members, GroupOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, n := range []int{17, 17, 32} {
		got, err := g.Advance(n, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for s := range twins {
			want, err := twins[s].Advance(n, inputs[s])
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, got[s], want, 0)
		}
	}
	g.Close()
	g.Close() // idempotent
}

// TestStepperGroupValidation: incompatible or malformed memberships are
// rejected at construction, bad advances at call time.
func TestStepperGroupValidation(t *testing.T) {
	bd, ms := modalTestSystem(t)
	mk := func(dt float64) *Stepper {
		st, err := NewStepper(ms, StepperOptions{Dt: dt})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if _, err := NewStepperGroup(nil, GroupOptions{}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewStepperGroup([]*Stepper{mk(0.01), nil}, GroupOptions{}); err == nil {
		t.Error("nil member accepted")
	}
	st := mk(0.01)
	if _, err := NewStepperGroup([]*Stepper{st, st}, GroupOptions{}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewStepperGroup([]*Stepper{mk(0.01), mk(0.02)}, GroupOptions{}); err == nil {
		t.Error("mismatched dt accepted")
	}
	other, err := bd.Modalize()
	if err != nil {
		t.Fatal(err)
	}
	stOther, err := NewStepper(other, StepperOptions{Dt: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStepperGroup([]*Stepper{mk(0.01), stOther}, GroupOptions{}); err == nil {
		t.Error("member over a different modal instance accepted")
	}
	imp, err := NewImplicitStepper(bd, StepperOptions{Dt: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStepperGroup([]*Stepper{mk(0.01), imp}, GroupOptions{}); err == nil {
		t.Error("mixed modal/implicit block kinds accepted")
	}

	g, err := NewStepperGroup([]*Stepper{mk(0.01), mk(0.01)}, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	input := UniformInput(DC(1))
	if _, err := g.Advance(-1, []Input{input, input}); err == nil {
		t.Error("negative step count accepted")
	}
	if _, err := g.Advance(1, []Input{input}); err == nil {
		t.Error("short input slice accepted")
	}
	if _, err := g.Advance(1, []Input{input, nil}); err == nil {
		t.Error("nil input accepted")
	}
	if res, err := g.Advance(0, []Input{input, input}); err != nil || len(res) != 2 || len(res[0].T) != 0 {
		t.Errorf("Advance(0) = %v, %v", res, err)
	}
}
