package sim

import (
	"math/cmplx"

	"repro/internal/lti"
)

// modalBlockState integrates one diagonalized block exactly: each modal
// coordinate obeys żₖ = λₖ·zₖ + u(t) (the input weight is folded into the
// residue rows), which for input linear on a step [t, t+h] has the closed
// form
//
//	zₖ(t+h) = e^{λₖh}·zₖ(t) + u(t)·(φ₁ₖ−φ₂ₖ) + u(t+h)·φ₂ₖ
//	φ₁ = (e^{λh}−1)/λ,   φ₂ = (e^{λh}−1−λh)/(λ²h)
//
// — no pencil factorization and no linear solve per step, and exact (not
// O(h)-accurate) for piecewise-linear drives. Outputs are y += Re(Σₖ Rₖ·zₖ)
// plus the direct term D·u(t); the imaginary parts cancel across conjugate
// pole pairs and are discarded.
type modalBlockState struct {
	z          []complex128 // modal coordinates
	expLH      []complex128 // e^{λₖh}
	fNow, fNxt []complex128 // φ₁−φ₂ and φ₂ per mode
	mb         *lti.ModalBlock
	input      int
}

// phi12 evaluates φ₁ and φ₂ at x = λh, switching to series near x = 0 where
// the closed forms cancel catastrophically.
func phi12(x complex128, h float64) (phi1, phi2 complex128) {
	if cmplx.Abs(x) < 1e-4 {
		// φ₁/h = 1 + x/2 + x²/6 + x³/24, φ₂/h = 1/2 + x/6 + x²/24 + x³/120.
		hx := complex(h, 0)
		phi1 = hx * (1 + x/2 + x*x/6 + x*x*x/24)
		phi2 = hx * (0.5 + x/6 + x*x/24 + x*x*x/120)
		return phi1, phi2
	}
	e := cmplx.Exp(x)
	phi1 = (e - 1) / x * complex(h, 0)
	phi2 = (e - 1 - x) / (x * x) * complex(h, 0)
	return phi1, phi2
}

func newModalBlockState(mb *lti.ModalBlock, h float64) *modalBlockState {
	q := len(mb.Poles)
	st := &modalBlockState{
		z:     make([]complex128, q),
		expLH: make([]complex128, q),
		fNow:  make([]complex128, q),
		fNxt:  make([]complex128, q),
		mb:    mb,
		input: mb.Input,
	}
	for k, lam := range mb.Poles {
		x := lam * complex(h, 0)
		st.expLH[k] = cmplx.Exp(x)
		phi1, phi2 := phi12(x, h)
		st.fNow[k] = phi1 - phi2
		st.fNxt[k] = phi2
	}
	return st
}

// step advances the block one exact step with endpoint inputs u0, u1.
func (st *modalBlockState) step(u0, u1 float64) {
	cu0, cu1 := complex(u0, 0), complex(u1, 0)
	for k := range st.z {
		st.z[k] = st.expLH[k]*st.z[k] + cu0*st.fNow[k] + cu1*st.fNxt[k]
	}
}

// addOutput accumulates y += Re(Σₖ Rₖ·zₖ + D·u).
func (st *modalBlockState) addOutput(y []float64, u float64) {
	for k, zk := range st.z {
		if zk == 0 {
			continue
		}
		row := st.mb.R.Row(k)
		for r := range y {
			y[r] += real(row[r] * zk)
		}
	}
	if st.mb.D != nil && u != 0 {
		for r := range y {
			y[r] += real(st.mb.D[r]) * u
		}
	}
}

// SimulateModal integrates a modal-form ROM. Modal blocks advance by exact
// per-mode exponentials (factorization-free, exact for piecewise-linear
// inputs); blocks without a modal form fall back to the implicit rule
// selected by opts.Method, exactly as SimulateBlockDiag steps them. With
// Workers > 1 the blocks are sharded across goroutines.
func SimulateModal(ms *lti.ModalSystem, opts TransientOptions) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	st, err := NewStepper(ms, StepperOptions{Method: opts.Method, Dt: opts.Dt, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	return runStepper(st, opts)
}
