package sim

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// AdaptiveOptions configures error-controlled transient integration with
// step doubling: each accepted step is computed once at h and once as two
// half steps; the difference estimates the local truncation error, and the
// step size follows the classical controller h ← h·(tol/err)^(1/2) for the
// first-order backward-Euler rule.
type AdaptiveOptions struct {
	// T is the end time (required).
	T float64
	// Input drives the ports (required).
	Input Input
	// Tol is the relative local error tolerance per step on the output
	// vector (max-norm). Default 1e-6.
	Tol float64
	// Atol is the absolute error floor, guarding the quiescent phase before
	// signals arrive at the outputs. Default 1e-12.
	Atol float64
	// HInit is the initial step; default T/1000.
	HInit float64
	// HMin aborts the run when the controller pushes below it; default
	// T·1e-12.
	HMin float64
	// MaxSteps bounds accepted steps; default 1e6.
	MaxSteps int
}

func (o *AdaptiveOptions) validate() error {
	if o.T <= 0 {
		return fmt.Errorf("sim: adaptive T must be positive")
	}
	if o.Input == nil {
		return fmt.Errorf("sim: adaptive Input is required")
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Atol <= 0 {
		o.Atol = 1e-12
	}
	if o.HInit <= 0 {
		o.HInit = o.T / 1000
	}
	if o.HMin <= 0 {
		o.HMin = o.T * 1e-12
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 1 << 20
	}
	return nil
}

// AdaptiveResult extends Result with step-size telemetry.
type AdaptiveResult struct {
	Result
	// Rejected counts rejected (halved) steps.
	Rejected int
	// MinStep and MaxStep are the extreme accepted step sizes.
	MinStep, MaxStep float64
}

// SimulateDenseAdaptive integrates a dense descriptor ROM with backward
// Euler under step-doubling local error control. Pencil factorizations are
// cached per step size, so runs with plateauing step sizes stay cheap.
func SimulateDenseAdaptive(d *lti.DenseSystem, opts AdaptiveOptions) (*AdaptiveResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	q, m, _ := d.Dims()

	type factor struct {
		h  float64
		lu *dense.LU[float64]
	}
	cache := make([]factor, 0, 8)
	factorFor := func(h float64) (*dense.LU[float64], error) {
		for i := range cache {
			if cache[i].h == h {
				return cache[i].lu, nil
			}
		}
		lhs := d.C.Clone().Add(d.G.Clone().Scale(-h))
		lu, err := dense.FactorLU(lhs)
		if err != nil {
			return nil, fmt.Errorf("sim: adaptive pencil singular at h=%g: %w", h, err)
		}
		if len(cache) == 16 {
			cache = cache[1:]
		}
		cache = append(cache, factor{h, lu})
		return lu, nil
	}

	// One BE step from (x, t) to t+h into dst.
	u := make([]float64, m)
	bu := make([]float64, q)
	rhs := make([]float64, q)
	step := func(dst, x []float64, t, h float64) error {
		lu, err := factorFor(h)
		if err != nil {
			return err
		}
		opts.Input(t+h, u)
		d.ApplyInput(bu, u)
		for i := 0; i < q; i++ {
			rhs[i] = sparse.Dot(d.C.Row(i), x) + h*bu[i]
		}
		return lu.Solve(dst, rhs)
	}

	x := make([]float64, q)
	x1 := make([]float64, q)
	x2 := make([]float64, q)
	xh := make([]float64, q)
	t := 0.0
	h := opts.HInit
	runScale := 0.0
	res := &AdaptiveResult{MinStep: math.Inf(1)}
	res.T = append(res.T, 0)
	res.Y = append(res.Y, d.ApplyOutput(x))

	for t < opts.T && len(res.T) < opts.MaxSteps {
		if t+h > opts.T {
			h = opts.T - t
		}
		// Full step and two half steps.
		if err := step(x1, x, t, h); err != nil {
			return nil, err
		}
		if err := step(xh, x, t, h/2); err != nil {
			return nil, err
		}
		if err := step(x2, xh, t+h/2, h/2); err != nil {
			return nil, err
		}
		// Local error estimate on the outputs (what users consume). The
		// scale tracks the largest output magnitude seen so far, so the
		// controller does not chase noise before signals reach the outputs.
		y1 := d.ApplyOutput(x1)
		y2 := d.ApplyOutput(x2)
		errEst := 0.0
		for i := range y1 {
			if e := math.Abs(y1[i] - y2[i]); e > errEst {
				errEst = e
			}
			if a := math.Abs(y2[i]); a > runScale {
				runScale = a
			}
		}
		tol := opts.Atol + opts.Tol*runScale
		if errEst <= tol || h <= opts.HMin {
			// Accept the more accurate two-half-step solution.
			copy(x, x2)
			t += h
			res.T = append(res.T, t)
			res.Y = append(res.Y, d.ApplyOutput(x))
			if h < res.MinStep {
				res.MinStep = h
			}
			if h > res.MaxStep {
				res.MaxStep = h
			}
			if errEst > 0 {
				h *= math.Min(4, math.Max(0.3, 0.9*math.Sqrt(tol/errEst)))
			} else {
				h *= 2
			}
		} else {
			res.Rejected++
			h /= 2
			if h < opts.HMin {
				return nil, fmt.Errorf("sim: adaptive step underflow at t=%g (err %.3e > tol %.3e)", t, errEst, tol)
			}
		}
	}
	if t < opts.T {
		return nil, fmt.Errorf("sim: adaptive run hit MaxSteps=%d at t=%g < T=%g", opts.MaxSteps, t, opts.T)
	}
	return res, nil
}

// SimulateBlockDiagAdaptive integrates a block-diagonal ROM adaptively by
// delegating to the dense integrator on the assembled model. For large m
// prefer the fixed-step SimulateBlockDiag, which preserves the O(m·l²)
// per-step structure.
func SimulateBlockDiagAdaptive(bd *lti.BlockDiagSystem, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return SimulateDenseAdaptive(bd.ToDense(), opts)
}
