package sim

import (
	"fmt"
	"math"
)

// WaveformMetrics summarizes a transient output channel, the quantities a
// power-integrity engineer reads off an IR-drop run.
type WaveformMetrics struct {
	// Peak is the maximum absolute value and PeakTime its time.
	Peak     float64
	PeakTime float64
	// RMS is the root-mean-square value over the run (trapezoidal in time).
	RMS float64
	// Settle is the last time the waveform leaves the ±Band around its
	// final value (0 if it never does).
	Settle float64
	// Final is the last sample.
	Final float64
}

// Metrics computes waveform metrics for output channel j of a transient
// result, with settle band given as a fraction of the peak (e.g. 0.02).
func (r *Result) Metrics(j int, settleBand float64) (WaveformMetrics, error) {
	if len(r.T) == 0 {
		return WaveformMetrics{}, fmt.Errorf("sim: empty result")
	}
	if j < 0 || j >= len(r.Y[0]) {
		return WaveformMetrics{}, fmt.Errorf("sim: output %d out of range %d", j, len(r.Y[0]))
	}
	var m WaveformMetrics
	for k, tt := range r.T {
		v := r.Y[k][j]
		if a := math.Abs(v); a > m.Peak {
			m.Peak = a
			m.PeakTime = tt
		}
	}
	// Trapezoidal RMS.
	if len(r.T) > 1 {
		acc := 0.0
		for k := 1; k < len(r.T); k++ {
			dt := r.T[k] - r.T[k-1]
			v0, v1 := r.Y[k-1][j], r.Y[k][j]
			acc += dt * (v0*v0 + v1*v1) / 2
		}
		total := r.T[len(r.T)-1] - r.T[0]
		if total > 0 {
			m.RMS = math.Sqrt(acc / total)
		}
	}
	m.Final = r.Y[len(r.Y)-1][j]
	band := settleBand * m.Peak
	for k := len(r.T) - 1; k >= 0; k-- {
		if math.Abs(r.Y[k][j]-m.Final) > band {
			m.Settle = r.T[k]
			break
		}
	}
	return m, nil
}

// WorstCase returns the channel index and metrics of the output with the
// largest peak magnitude — the worst IR-drop node of a power-grid run.
func (r *Result) WorstCase(settleBand float64) (int, WaveformMetrics, error) {
	if len(r.T) == 0 || len(r.Y[0]) == 0 {
		return 0, WaveformMetrics{}, fmt.Errorf("sim: empty result")
	}
	worst := 0
	var wm WaveformMetrics
	for j := 0; j < len(r.Y[0]); j++ {
		m, err := r.Metrics(j, settleBand)
		if err != nil {
			return 0, WaveformMetrics{}, err
		}
		if m.Peak > wm.Peak {
			wm = m
			worst = j
		}
	}
	return worst, wm, nil
}
