package sim

import "testing"

// kernelVectors builds SoA state shaped like a 2-mode, 3-output,
// 8-session block.
func kernelVectors() (y, zr, zi, rr, ri, u0, u1 []float64) {
	const q, p, ns = 2, 3, 8
	y = make([]float64, p*ns)
	zr = make([]float64, q*ns)
	zi = make([]float64, q*ns)
	rr = make([]float64, q*p)
	ri = make([]float64, q*p)
	u0 = make([]float64, ns)
	u1 = make([]float64, ns)
	for i := range zr {
		zr[i] = 0.25 * float64(i+1)
		zi[i] = -0.125 * float64(i+1)
	}
	for i := range rr {
		rr[i] = 1 / float64(i+2)
		ri[i] = 0.5 / float64(i+2)
	}
	for i := range u0 {
		u0[i] = float64(i)
		u1[i] = float64(i) + 0.5
	}
	return
}

// TestKernelRefAllocs: the pure-Go reference kernels are allocation-free.
//
//pgmor:alloctest axpyRealRef
//pgmor:alloctest accumBlockRef
//pgmor:alloctest stepModesRef
func TestKernelRefAllocs(t *testing.T) {
	y, zr, zi, rr, ri, u0, u1 := kernelVectors()
	const q, p, ns = 2, 3, 8
	cases := map[string]func(){
		"axpyRealRef":   func() { axpyRealRef(y[:ns], zr[:ns], zi[:ns], 1.5, -0.5) },
		"accumBlockRef": func() { accumBlockRef(y, zr, zi, rr, ri, q, p, ns) },
		"stepModesRef": func() {
			stepModesRef(zr[:ns], zi[:ns], u0, u1, 0.9, 0.1, 0.01, 0.02, 0.03, 0.04)
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, allocs)
		}
	}
}

// TestGroupAdvanceFusedAllocs pins the fused multi-session advance:
// per Advance the only allocations are the per-member Result containers —
// O(members), never O(steps) or O(modes).
//
//pgmor:alloctest advanceGroupShardFused
func TestGroupAdvanceFusedAllocs(t *testing.T) {
	_, ms := modalTestSystem(t)
	var members []*Stepper
	var inputs []Input
	for i := 0; i < 2; i++ {
		st, err := NewStepper(ms, StepperOptions{Dt: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, st)
		inputs = append(inputs, UniformInput(Sine{Amplitude: 1, Freq: 0.5}))
	}
	g, err := NewStepperGroup(members, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, n := range []int{16, 256} {
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := g.Advance(n, inputs); err != nil {
				t.Fatal(err)
			}
		})
		// results slice + 4 per member (Result, T, Y, row backing), with a
		// little slack for runtime noise; the bound must not move with n.
		if allocs > 12 {
			t.Fatalf("group Advance(%d) allocates %.1f times per call, want O(members) ≤ 12", n, allocs)
		}
	}
}
