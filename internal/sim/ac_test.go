package sim

import (
	"math"
	"testing"
)

// TestLogGridDegenerateInputs pins the behavior of every degenerate input
// class: no NaNs, no panics — a well-defined grid or a clean error.
func TestLogGridDegenerateInputs(t *testing.T) {
	cases := []struct {
		name       string
		wMin, wMax float64
		points     int
		want       []float64
		wantErr    bool
	}{
		{name: "normal", wMin: 1e2, wMax: 1e4, points: 3, want: []float64{1e2, 1e3, 1e4}},
		{name: "one point degenerate range", wMin: 1e9, wMax: 1e9, points: 1, want: []float64{1e9}},
		{name: "one point nondegenerate range", wMin: 1e5, wMax: 1e9, points: 1, wantErr: true},
		{name: "equal endpoints", wMin: 1e7, wMax: 1e7, points: 4, want: []float64{1e7, 1e7, 1e7, 1e7}},
		{name: "reversed range", wMin: 1e9, wMax: 1e5, points: 10, wantErr: true},
		{name: "zero points", wMin: 1e5, wMax: 1e9, points: 0, wantErr: true},
		{name: "negative points", wMin: 1e5, wMax: 1e9, points: -3, wantErr: true},
		{name: "zero wmin", wMin: 0, wMax: 1e9, points: 10, wantErr: true},
		{name: "negative wmin", wMin: -1, wMax: 1e9, points: 10, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := LogGrid(tc.wMin, tc.wMax, tc.points)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("LogGrid(%g, %g, %d) = %v, want error", tc.wMin, tc.wMax, tc.points, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("LogGrid(%g, %g, %d): %v", tc.wMin, tc.wMax, tc.points, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d points, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
					t.Fatalf("point %d is %g", i, got[i])
				}
				if d := math.Abs(got[i] - tc.want[i]); d > 1e-9*tc.want[i] {
					t.Fatalf("point %d = %g, want %g", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// The grid must stay monotone and hit both endpoints exactly enough for
// cache-key alignment across requests.
func TestLogGridEndpointsAndMonotonicity(t *testing.T) {
	grid, err := LogGrid(1e5, 1e15, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grid[0]-1e5) > 1e-6 || math.Abs(grid[59]-1e15) > 1e3 {
		t.Fatalf("endpoints %g, %g", grid[0], grid[59])
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatalf("grid not strictly increasing at %d: %g, %g", i, grid[i-1], grid[i])
		}
	}
}
