package sim

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary snapshot format for StepperState — the wire/disk form that lets a
// session migrate between processes: a replica persists its steppers' state
// through the ROM store, and a failover peer restores them without sharing
// memory. gob cannot carry complex128, so modal coordinates are interleaved
// as (re, im) float64 pairs, exactly like the lti modal ROM format.
//
// Layout (little-endian):
//
//	magic    [4]byte  "PGSS"
//	version  uint16   (1)
//	step     uint64   step counter
//	nblocks  uint32
//	per block:
//	  kind   uint8    1 = modal, 2 = implicit
//	  n      uint32   coordinate count (modes or state order)
//	  data   n×16B    (re, im) pairs   — modal
//	         n×8B     float64 state    — implicit
//
// The frame is deliberately checksum-free: both the store layer (sha256 over
// the whole file) and the HTTP layer that may carry it add their own
// integrity; decoding still validates structure exhaustively so a corrupt
// payload fails loudly instead of restoring garbage state.
const (
	snapshotMagic   = "PGSS"
	snapshotVersion = 1
)

const (
	snapKindModal    = 1
	snapKindImplicit = 2
)

// MarshalBinary encodes the snapshot for persistence or transfer.
func (s *StepperState) MarshalBinary() ([]byte, error) {
	if len(s.Modal) != len(s.Implicit) {
		return nil, fmt.Errorf("sim: snapshot has %d modal vs %d implicit block slots", len(s.Modal), len(s.Implicit))
	}
	if s.Step < 0 {
		return nil, fmt.Errorf("sim: snapshot step %d is negative", s.Step)
	}
	size := 4 + 2 + 8 + 4
	for i := range s.Modal {
		size += 1 + 4
		size += 16*len(s.Modal[i]) + 8*len(s.Implicit[i])
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Step))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Modal)))
	for i := range s.Modal {
		switch {
		case s.Modal[i] != nil && s.Implicit[i] == nil:
			buf = append(buf, snapKindModal)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Modal[i])))
			for _, z := range s.Modal[i] {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(z)))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(z)))
			}
		case s.Implicit[i] != nil && s.Modal[i] == nil:
			buf = append(buf, snapKindImplicit)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Implicit[i])))
			for _, v := range s.Implicit[i] {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		default:
			return nil, fmt.Errorf("sim: snapshot block %d must have exactly one of modal/implicit state", i)
		}
	}
	return buf, nil
}

// UnmarshalStepperState decodes a snapshot produced by MarshalBinary,
// validating the frame exhaustively: any structural damage (bad magic, wrong
// version, truncation, trailing bytes, absurd counts) is an error, never a
// silently wrong state.
func UnmarshalStepperState(data []byte) (*StepperState, error) {
	r := snapReader{data: data}
	if string(r.bytes(4)) != snapshotMagic {
		return nil, fmt.Errorf("sim: bad snapshot magic")
	}
	if v := r.u16(); v != snapshotVersion {
		return nil, fmt.Errorf("sim: snapshot format version %d, this build reads version %d", v, snapshotVersion)
	}
	step := r.u64()
	if step > math.MaxInt64/2 {
		return nil, fmt.Errorf("sim: snapshot step %d is absurd", step)
	}
	nblocks := r.u32()
	// Each block costs at least 5 bytes; reject counts the data cannot hold
	// before allocating.
	if uint64(nblocks) > uint64(len(data))/5 {
		return nil, fmt.Errorf("sim: snapshot block count %d exceeds payload", nblocks)
	}
	s := &StepperState{
		Step:     int(step),
		Modal:    make([][]complex128, nblocks),
		Implicit: make([][]float64, nblocks),
	}
	for i := 0; i < int(nblocks); i++ {
		kind := r.u8()
		n := r.u32()
		switch kind {
		case snapKindModal:
			if uint64(n)*16 > uint64(len(r.data)-r.off) {
				return nil, fmt.Errorf("sim: snapshot block %d: %d modes exceed payload", i, n)
			}
			z := make([]complex128, n)
			for k := range z {
				re := math.Float64frombits(r.u64())
				im := math.Float64frombits(r.u64())
				z[k] = complex(re, im)
			}
			s.Modal[i] = z
		case snapKindImplicit:
			if uint64(n)*8 > uint64(len(r.data)-r.off) {
				return nil, fmt.Errorf("sim: snapshot block %d: order %d exceeds payload", i, n)
			}
			x := make([]float64, n)
			for k := range x {
				x[k] = math.Float64frombits(r.u64())
			}
			s.Implicit[i] = x
		default:
			return nil, fmt.Errorf("sim: snapshot block %d has unknown kind %d", i, kind)
		}
		if r.failed {
			return nil, fmt.Errorf("sim: snapshot truncated in block %d", i)
		}
	}
	if r.failed {
		return nil, fmt.Errorf("sim: snapshot truncated")
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("sim: %d trailing bytes after snapshot", len(data)-r.off)
	}
	return s, nil
}

// snapReader is a bounds-checked little-endian cursor: reads past the end
// set failed and return zeros, so decode loops stay straight-line and check
// once per block.
type snapReader struct {
	data   []byte
	off    int
	failed bool
}

func (r *snapReader) bytes(n int) []byte {
	if r.off+n > len(r.data) {
		r.failed = true
		return make([]byte, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) u8() uint8   { return r.bytes(1)[0] }
func (r *snapReader) u16() uint16 { return binary.LittleEndian.Uint16(r.bytes(2)) }
func (r *snapReader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *snapReader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }
