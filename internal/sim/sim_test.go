package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lti"
	"repro/internal/sparse"
)

func TestSourceWaveforms(t *testing.T) {
	if DC(3).At(99) != 3 {
		t.Error("DC")
	}
	s := Step{Amplitude: 2, Delay: 1}
	if s.At(0.5) != 0 || s.At(1) != 2 {
		t.Error("Step")
	}
	p := Pulse{Low: 0, High: 1, Delay: 1, Rise: 1, Fall: 1, Width: 2, Period: 10}
	cases := map[float64]float64{0: 0, 1.5: 0.5, 2.5: 1, 4.5: 0.5, 6: 0, 11.5: 0.5}
	for tt, want := range cases {
		if got := p.At(tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("Pulse.At(%g) = %g, want %g", tt, got, want)
		}
	}
	sine := Sine{Offset: 1, Amplitude: 2, Freq: 0.25, Delay: 0}
	if got := sine.At(1); math.Abs(got-3) > 1e-12 {
		t.Errorf("Sine.At(1) = %g, want 3", got)
	}
	pwl, err := NewPWL([]float64{0, 1, 2}, []float64{0, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if pwl.At(-1) != 0 || pwl.At(0.5) != 5 || pwl.At(3) != 10 {
		t.Error("PWL interpolation")
	}
	if _, err := NewPWL([]float64{1, 0}, []float64{0, 1}); err == nil {
		t.Error("unsorted PWL accepted")
	}
	if _, err := NewPWL([]float64{1}, []float64{}); err == nil {
		t.Error("ragged PWL accepted")
	}
}

// rcAnalytic builds the 1-node RC system and checks the step response
// v(t) = R·I·(1 - e^{-t/RC}) for both integration methods.
func TestTransientRCAnalytic(t *testing.T) {
	r, c := 100.0, 1e-9
	cm := sparse.NewCOO[float64](1, 1)
	cm.Add(0, 0, c)
	gm := sparse.NewCOO[float64](1, 1)
	gm.Add(0, 0, -1/r)
	bm := sparse.NewCOO[float64](1, 1)
	bm.Add(0, 0, 1)
	lm := sparse.NewCOO[float64](1, 1)
	lm.Add(0, 0, 1)
	sys, err := lti.NewSparseSystem(cm.ToCSR(), gm.ToCSR(), bm.ToCSR(), lm.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	tau := r * c
	iAmp := 1e-3
	for _, method := range []Method{BackwardEuler, Trapezoidal} {
		res, err := SimulateSparse(sys, TransientOptions{
			Method: method,
			Dt:     tau / 100,
			T:      5 * tau,
			Input:  UniformInput(DC(iAmp)),
		})
		if err != nil {
			t.Fatal(err)
		}
		maxRel := 0.0
		for k, tt := range res.T {
			want := r * iAmp * (1 - math.Exp(-tt/tau))
			got := res.Y[k][0]
			if want > 1e-6 {
				if rel := math.Abs(got-want) / want; rel > maxRel {
					maxRel = rel
				}
			}
		}
		limit := 0.02 // BE first order at h = τ/100
		if method == Trapezoidal {
			limit = 0.001
		}
		if maxRel > limit {
			t.Errorf("%v: max relative error %.4f exceeds %.4f", method, maxRel, limit)
		}
	}
}

func gridSystem(t testing.TB) *lti.SparseSystem {
	t.Helper()
	cfg := grid.Config{Name: "t", NX: 8, NY: 8, Layers: 2, Ports: 5, Pads: 2,
		SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 3, NodeC: 50e-15,
		PadR: 0.1, PadL: 0.5e-9, Variation: 0.2, Seed: 7}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestROMTransientMatchesFull is the end-to-end IR-drop validation: a BDSM
// ROM's transient response under a load step must track the full model.
func TestROMTransientMatchesFull(t *testing.T) {
	sys := gridSystem(t)
	rom, err := core.Reduce(sys, core.Options{Moments: 6})
	if err != nil {
		t.Fatal(err)
	}
	opts := TransientOptions{
		Method: Trapezoidal,
		Dt:     5e-12,
		T:      3e-9,
		Input:  UniformInput(Pulse{Low: 0, High: 1e-3, Delay: 1e-10, Rise: 1e-10, Width: 1e-9, Fall: 1e-10, Period: 1}),
	}
	full, err := SimulateSparse(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	red, err := SimulateBlockDiag(rom, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.T) != len(red.T) {
		t.Fatal("step counts differ")
	}
	// Compare at the max |y| scale.
	scale := 0.0
	for k := range full.Y {
		for _, v := range full.Y[k] {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
	}
	maxErr := 0.0
	for k := range full.Y {
		for j := range full.Y[k] {
			if e := math.Abs(full.Y[k][j] - red.Y[k][j]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 0.01*scale {
		t.Fatalf("ROM transient error %.3e exceeds 1%% of signal scale %.3e", maxErr, scale)
	}
}

func TestBlockDiagParallelMatchesSerial(t *testing.T) {
	sys := gridSystem(t)
	rom, err := core.Reduce(sys, core.Options{Moments: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := TransientOptions{
		Dt:    1e-11,
		T:     5e-10,
		Input: UniformInput(Step{Amplitude: 1e-3, Delay: 1e-10}),
	}
	serialOpts := base
	serialOpts.Workers = 1
	parallelOpts := base
	parallelOpts.Workers = 4
	serial, err := SimulateBlockDiag(rom, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SimulateBlockDiag(rom, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range serial.Y {
		for j := range serial.Y[k] {
			if serial.Y[k][j] != parallel.Y[k][j] {
				t.Fatalf("parallel transient differs at step %d output %d", k, j)
			}
		}
	}
}

func TestDenseVsBlockDiagTransient(t *testing.T) {
	sys := gridSystem(t)
	rom, err := core.Reduce(sys, core.Options{Moments: 4})
	if err != nil {
		t.Fatal(err)
	}
	opts := TransientOptions{
		Dt:    1e-11,
		T:     5e-10,
		Input: UniformInput(Step{Amplitude: 1e-3, Delay: 5e-11}),
	}
	bd, err := SimulateBlockDiag(rom, opts)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := SimulateDense(rom.ToDense(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range bd.Y {
		for j := range bd.Y[k] {
			if math.Abs(bd.Y[k][j]-dn.Y[k][j]) > 1e-12+1e-8*math.Abs(dn.Y[k][j]) {
				t.Fatalf("block vs dense transient differ at step %d", k)
			}
		}
	}
}

func TestTransientOptionValidation(t *testing.T) {
	sys := gridSystem(t)
	if _, err := SimulateSparse(sys, TransientOptions{Dt: 0, T: 1, Input: UniformInput(DC(0))}); err == nil {
		t.Error("zero Dt accepted")
	}
	if _, err := SimulateSparse(sys, TransientOptions{Dt: 1, T: 1}); err == nil {
		t.Error("nil input accepted")
	}
}

func TestACSweepEntryAgainstAnalyticRC(t *testing.T) {
	r, c := 100.0, 1e-9
	cm := sparse.NewCOO[float64](1, 1)
	cm.Add(0, 0, c)
	gm := sparse.NewCOO[float64](1, 1)
	gm.Add(0, 0, -1/r)
	bm := sparse.NewCOO[float64](1, 1)
	bm.Add(0, 0, 1)
	lm := sparse.NewCOO[float64](1, 1)
	lm.Add(0, 0, 1)
	sys, err := lti.NewSparseSystem(cm.ToCSR(), gm.ToCSR(), bm.ToCSR(), lm.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ACSweepEntry(sys, 0, 0, 1e4, 1e10, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		want := complex(r, 0) / (1 + complex(0, pt.Omega*r*c))
		if cmplxAbs(pt.H-want) > 1e-10*cmplxAbs(want) {
			t.Fatalf("AC mismatch at ω=%g", pt.Omega)
		}
	}
	errs, err := RelativeError(pts, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errs {
		if e != 0 {
			t.Fatal("self relative error nonzero")
		}
	}
	if _, err := ACSweepEntry(sys, 0, 0, 1e4, 1e3, 10); err == nil {
		t.Error("bad range accepted")
	}
	if _, err := RelativeError(pts, pts[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
}
