package sim

import (
	"fmt"
	"sync"

	"repro/internal/lti"
)

// StepperOptions configures a resumable fixed-step integrator.
type StepperOptions struct {
	// Method is the implicit rule used by non-modal fallback blocks.
	// Default BackwardEuler. Modal blocks advance by exact per-mode
	// exponentials regardless.
	Method Method
	// Dt is the fixed time step (required, > 0). It is baked into the
	// per-block propagators at construction and cannot change mid-session.
	Dt float64
	// Workers shards the per-block stepping across goroutines; 0 or 1 means
	// serial.
	Workers int
}

// stepperBlock is one block of a Stepper: exactly one of the two states is
// non-nil.
type stepperBlock struct {
	modal    *modalBlockState
	implicit *implicitBlockState
}

// Stepper is a resumable fixed-step transient integrator over a
// block-diagonal (optionally modal) ROM: the pause/resume core that
// SimulateModal and SimulateBlockDiag run to completion in one call, exposed
// so long-lived sessions can advance incrementally, change the drive waveform
// between advances, and snapshot/restore their tiny per-mode state without
// ever recomputing from t = 0.
//
// The integration state is x(0) = 0 at step 0; Advance moves the clock
// forward n steps at a time. A Stepper is not safe for concurrent use — wrap
// it in a mutex when shared (serve.Session does).
type Stepper struct {
	blocks      []stepperBlock
	uNow, uNext []float64
	h           float64
	k           int // current step index; time = k·h
	m, p        int
	workers     int
}

func (o *StepperOptions) validate() error {
	if o.Dt <= 0 {
		return fmt.Errorf("sim: stepper Dt must be positive, got %g", o.Dt)
	}
	return nil
}

// methodBeta is the implicit-rule weight β (see TransientOptions.beta).
func methodBeta(m Method) float64 {
	if m == Trapezoidal {
		return 0.5
	}
	return 1
}

// NewStepper builds a resumable integrator over a modal system: modal blocks
// advance by exact per-mode exponentials (exact for piecewise-linear drives),
// the rest by the implicit rule of opts.Method — the same split SimulateModal
// makes.
func NewStepper(ms *lti.ModalSystem, opts StepperOptions) (*Stepper, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	_, m, p := ms.Dims()
	h, beta := opts.Dt, methodBeta(opts.Method)
	blocks := make([]stepperBlock, len(ms.Blocks))
	for i := range ms.Blocks {
		mb := &ms.Blocks[i]
		if mb.Modal {
			blocks[i] = stepperBlock{modal: newModalBlockState(mb, h)}
			continue
		}
		st, err := newImplicitBlockState(&ms.BD.Blocks[i], h, beta)
		if err != nil {
			return nil, fmt.Errorf("sim: block %d: %w", i, err)
		}
		blocks[i] = stepperBlock{implicit: st}
	}
	return newStepper(blocks, opts, m, p), nil
}

// NewImplicitStepper builds a resumable integrator that steps every block of
// a block-diagonal ROM with the implicit rule of opts.Method — the resumable
// form of SimulateBlockDiag.
func NewImplicitStepper(bd *lti.BlockDiagSystem, opts StepperOptions) (*Stepper, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	_, m, p := bd.Dims()
	h, beta := opts.Dt, methodBeta(opts.Method)
	blocks := make([]stepperBlock, len(bd.Blocks))
	for i := range bd.Blocks {
		st, err := newImplicitBlockState(&bd.Blocks[i], h, beta)
		if err != nil {
			return nil, fmt.Errorf("sim: block %d: %w", i, err)
		}
		blocks[i] = stepperBlock{implicit: st}
	}
	return newStepper(blocks, opts, m, p), nil
}

func newStepper(blocks []stepperBlock, opts StepperOptions, m, p int) *Stepper {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	return &Stepper{
		blocks:  blocks,
		uNow:    make([]float64, m),
		uNext:   make([]float64, m),
		h:       opts.Dt,
		m:       m,
		p:       p,
		workers: workers,
	}
}

// Step returns the current step index; the session clock is Step()·Dt.
func (st *Stepper) Step() int { return st.k }

// Time returns the current integration time.
func (st *Stepper) Time() float64 { return float64(st.k) * st.h }

// Dt returns the fixed step size.
func (st *Stepper) Dt() float64 { return st.h }

// Inputs returns the input port count the drive waveform must fill.
func (st *Stepper) Inputs() int { return st.m }

// Outputs returns the output row width.
func (st *Stepper) Outputs() int { return st.p }

// output accumulates the output row from the current block states and the
// current left-endpoint inputs.
func (st *Stepper) output() []float64 {
	y := make([]float64, st.p)
	for i := range st.blocks {
		if b := &st.blocks[i]; b.modal != nil {
			b.modal.addOutput(y, st.uNow[b.modal.input])
		} else {
			b.implicit.addOutput(y)
		}
	}
	return y
}

// stepOne advances block i one step with the staged endpoint inputs.
func (st *Stepper) stepOne(i int) {
	if b := &st.blocks[i]; b.modal != nil {
		b.modal.step(st.uNow[b.modal.input], st.uNext[b.modal.input])
	} else {
		b.implicit.step(st.uNow[b.implicit.input], st.uNext[b.implicit.input])
	}
}

// stepAll advances every block one step, sharded across workers when
// configured.
func (st *Stepper) stepAll() {
	if st.workers == 1 {
		for i := range st.blocks {
			st.stepOne(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(st.blocks) + st.workers - 1) / st.workers
	for w := 0; w < st.workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(st.blocks) {
			hi = len(st.blocks)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				st.stepOne(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Output evaluates input at the current time and returns the output row —
// the t = Step()·Dt sample a caller emits before (or between) Advances. The
// initial row of a run is Output at step 0.
func (st *Stepper) Output(input Input) ([]float64, error) {
	if input == nil {
		return nil, fmt.Errorf("sim: stepper Input waveform is required")
	}
	input(st.Time(), st.uNow)
	return st.output(), nil
}

// Advance integrates n further steps driven by input and returns one row per
// step, at times (k+1)·Dt … (k+n)·Dt. The waveform is evaluated at absolute
// session time and may differ between calls — a switch takes effect from the
// left endpoint of the next step, with the block states carrying over
// untouched, so a drive change never restarts the transient. Advancing in
// any chunking is exact: the concatenated rows are bit-identical to one
// uninterrupted run with the same (deterministic) waveform.
func (st *Stepper) Advance(n int, input Input) (*Result, error) {
	if n < 0 {
		return nil, fmt.Errorf("sim: cannot advance %d steps", n)
	}
	if input == nil {
		return nil, fmt.Errorf("sim: stepper Input waveform is required")
	}
	res := &Result{T: make([]float64, 0, n), Y: make([][]float64, 0, n)}
	if n == 0 {
		return res, nil
	}
	// Re-evaluate the left endpoint under the (possibly new) drive; for an
	// unchanged waveform this reproduces the value the previous Advance left
	// behind, because Input is a pure function of t.
	input(st.Time(), st.uNow)
	for i := 0; i < n; i++ {
		st.k++
		t := float64(st.k) * st.h
		input(t, st.uNext)
		st.stepAll()
		copy(st.uNow, st.uNext)
		res.T = append(res.T, t)
		res.Y = append(res.Y, st.output())
	}
	return res, nil
}

// StepperState is a deep snapshot of a Stepper's integration state: the step
// counter plus the per-block coordinates — a few complex numbers per modal
// block, one real vector per implicit block. Slots are indexed by block;
// exactly one of Modal[i]/Implicit[i] is non-nil per block.
type StepperState struct {
	Step     int
	Modal    [][]complex128
	Implicit [][]float64
}

// Snapshot captures the current integration state. The snapshot is
// independent of the Stepper: later Advances do not mutate it.
func (st *Stepper) Snapshot() *StepperState {
	snap := &StepperState{
		Step:     st.k,
		Modal:    make([][]complex128, len(st.blocks)),
		Implicit: make([][]float64, len(st.blocks)),
	}
	for i := range st.blocks {
		if b := &st.blocks[i]; b.modal != nil {
			snap.Modal[i] = append([]complex128(nil), b.modal.z...)
		} else {
			snap.Implicit[i] = append([]float64(nil), b.implicit.x...)
		}
	}
	return snap
}

// Restore rewinds (or fast-forwards) the Stepper to a snapshot taken from a
// stepper of the same model and options. The next Advance resumes from the
// snapshot's step as if the intervening calls never happened.
func (st *Stepper) Restore(snap *StepperState) error {
	if snap == nil {
		return fmt.Errorf("sim: nil stepper snapshot")
	}
	if len(snap.Modal) != len(st.blocks) || len(snap.Implicit) != len(st.blocks) {
		return fmt.Errorf("sim: snapshot has %d/%d block slots, want %d", len(snap.Modal), len(snap.Implicit), len(st.blocks))
	}
	if snap.Step < 0 {
		return fmt.Errorf("sim: snapshot step %d is negative", snap.Step)
	}
	for i := range st.blocks {
		b := &st.blocks[i]
		switch {
		case b.modal != nil:
			if snap.Implicit[i] != nil || len(snap.Modal[i]) != len(b.modal.z) {
				return fmt.Errorf("sim: snapshot block %d does not match a modal block of %d modes", i, len(b.modal.z))
			}
		default:
			if snap.Modal[i] != nil || len(snap.Implicit[i]) != len(b.implicit.x) {
				return fmt.Errorf("sim: snapshot block %d does not match an implicit block of order %d", i, len(b.implicit.x))
			}
		}
	}
	for i := range st.blocks {
		if b := &st.blocks[i]; b.modal != nil {
			copy(b.modal.z, snap.Modal[i])
		} else {
			copy(b.implicit.x, snap.Implicit[i])
		}
	}
	st.k = snap.Step
	return nil
}
