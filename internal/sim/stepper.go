package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/lti"
)

// StepperOptions configures a resumable fixed-step integrator.
type StepperOptions struct {
	// Method is the implicit rule used by non-modal fallback blocks.
	// Default BackwardEuler. Modal blocks advance by exact per-mode
	// exponentials regardless.
	Method Method
	// Dt is the fixed time step (required, > 0). It is baked into the
	// per-block propagators at construction and cannot change mid-session.
	Dt float64
	// Workers shards the per-block stepping across goroutines; 0 or 1 means
	// serial.
	Workers int
}

// stepperBlock is one block of a Stepper: exactly one of the two states is
// non-nil.
type stepperBlock struct {
	modal    *modalBlockState
	implicit *implicitBlockState
}

// Stepper is a resumable fixed-step transient integrator over a
// block-diagonal (optionally modal) ROM: the pause/resume core that
// SimulateModal and SimulateBlockDiag run to completion in one call, exposed
// so long-lived sessions can advance incrementally, change the drive waveform
// between advances, and snapshot/restore their tiny per-mode state without
// ever recomputing from t = 0.
//
// The integration state is x(0) = 0 at step 0; Advance moves the clock
// forward n steps at a time. A Stepper is not safe for concurrent use — wrap
// it in a mutex when shared (serve.Session does).
type Stepper struct {
	blocks      []stepperBlock
	uNow, uNext []float64
	h           float64
	k           int // current step index; time = k·h
	m, p        int
	workers     int
	// shards holds the persistent worker goroutines when workers > 1,
	// created lazily on the first sharded step. nil in the common
	// single-worker case, which spawns no goroutines at all.
	shards *shardWorkers
}

func (o *StepperOptions) validate() error {
	if o.Dt <= 0 {
		return fmt.Errorf("sim: stepper Dt must be positive, got %g", o.Dt)
	}
	return nil
}

// methodBeta is the implicit-rule weight β (see TransientOptions.beta).
func methodBeta(m Method) float64 {
	if m == Trapezoidal {
		return 0.5
	}
	return 1
}

// NewStepper builds a resumable integrator over a modal system: modal blocks
// advance by exact per-mode exponentials (exact for piecewise-linear drives),
// the rest by the implicit rule of opts.Method — the same split SimulateModal
// makes.
func NewStepper(ms *lti.ModalSystem, opts StepperOptions) (*Stepper, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	_, m, p := ms.Dims()
	h, beta := opts.Dt, methodBeta(opts.Method)
	blocks := make([]stepperBlock, len(ms.Blocks))
	for i := range ms.Blocks {
		mb := &ms.Blocks[i]
		if mb.Modal {
			blocks[i] = stepperBlock{modal: newModalBlockState(mb, h)}
			continue
		}
		st, err := newImplicitBlockState(&ms.BD.Blocks[i], h, beta)
		if err != nil {
			return nil, fmt.Errorf("sim: block %d: %w", i, err)
		}
		blocks[i] = stepperBlock{implicit: st}
	}
	return newStepper(blocks, opts, m, p), nil
}

// NewImplicitStepper builds a resumable integrator that steps every block of
// a block-diagonal ROM with the implicit rule of opts.Method — the resumable
// form of SimulateBlockDiag.
func NewImplicitStepper(bd *lti.BlockDiagSystem, opts StepperOptions) (*Stepper, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	_, m, p := bd.Dims()
	h, beta := opts.Dt, methodBeta(opts.Method)
	blocks := make([]stepperBlock, len(bd.Blocks))
	for i := range bd.Blocks {
		st, err := newImplicitBlockState(&bd.Blocks[i], h, beta)
		if err != nil {
			return nil, fmt.Errorf("sim: block %d: %w", i, err)
		}
		blocks[i] = stepperBlock{implicit: st}
	}
	return newStepper(blocks, opts, m, p), nil
}

func newStepper(blocks []stepperBlock, opts StepperOptions, m, p int) *Stepper {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	return &Stepper{
		blocks:  blocks,
		uNow:    make([]float64, m),
		uNext:   make([]float64, m),
		h:       opts.Dt,
		m:       m,
		p:       p,
		workers: workers,
	}
}

// Step returns the current step index; the session clock is Step()·Dt.
func (st *Stepper) Step() int { return st.k }

// Time returns the current integration time.
func (st *Stepper) Time() float64 { return float64(st.k) * st.h }

// Dt returns the fixed step size.
func (st *Stepper) Dt() float64 { return st.h }

// Inputs returns the input port count the drive waveform must fill.
func (st *Stepper) Inputs() int { return st.m }

// Outputs returns the output row width.
func (st *Stepper) Outputs() int { return st.p }

// outputInto accumulates the output row from the current block states and
// the current left-endpoint inputs into y (length p), zeroing it first.
//
//pgmor:noalloc
func (st *Stepper) outputInto(y []float64) {
	for r := range y {
		y[r] = 0
	}
	for i := range st.blocks {
		if b := &st.blocks[i]; b.modal != nil {
			b.modal.addOutput(y, st.uNow[b.modal.input])
		} else {
			b.implicit.addOutput(y)
		}
	}
}

// output is the allocating form of outputInto, for the once-per-session
// Output call.
func (st *Stepper) output() []float64 {
	y := make([]float64, st.p)
	st.outputInto(y)
	return y
}

// stepBlock advances one block one step with the staged endpoint inputs. A
// free function over the stepper's stable slices so shard workers can run it
// without holding the *Stepper itself alive (which would defeat the
// runtime.AddCleanup leak backstop).
//
//pgmor:noalloc
func stepBlock(b *stepperBlock, uNow, uNext []float64) {
	if b.modal != nil {
		b.modal.step(uNow[b.modal.input], uNext[b.modal.input])
	} else {
		b.implicit.step(uNow[b.implicit.input], uNext[b.implicit.input])
	}
}

// shardWorkers is a set of persistent goroutines, each owning a fixed block
// range, signaled once per step. Spawning fresh goroutines per step (the old
// scheme) costs a goroutine create + schedule + join per worker per step —
// at nanosecond-scale block work the overhead dwarfs the stepping; here the
// per-step cost is one channel send/receive pair per worker.
type shardWorkers struct {
	start []chan struct{}
	done  chan struct{}
	quit  chan struct{}
	once  sync.Once
}

func newShardWorkers(blocks []stepperBlock, uNow, uNext []float64, workers int) *shardWorkers {
	sw := &shardWorkers{
		done: make(chan struct{}, workers),
		quit: make(chan struct{}),
	}
	chunk := (len(blocks) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(blocks) {
			hi = len(blocks)
		}
		if lo >= hi {
			break
		}
		start := make(chan struct{}, 1)
		sw.start = append(sw.start, start)
		go func(lo, hi int) {
			for {
				select {
				case <-sw.quit:
					return
				case <-start:
					for i := lo; i < hi; i++ {
						stepBlock(&blocks[i], uNow, uNext)
					}
					sw.done <- struct{}{}
				}
			}
		}(lo, hi)
	}
	return sw
}

// step signals every shard and waits for all of them; the channel
// send/receive pairs give the same happens-before edges the per-step
// WaitGroup used to.
func (sw *shardWorkers) step() {
	for _, c := range sw.start {
		c <- struct{}{}
	}
	for range sw.start {
		<-sw.done
	}
}

func (sw *shardWorkers) close() {
	sw.once.Do(func() { close(sw.quit) })
}

// stepAll advances every block one step, sharded across the persistent
// workers when configured.
//
//pgmor:noalloc
func (st *Stepper) stepAll() {
	if st.workers == 1 {
		for i := range st.blocks {
			stepBlock(&st.blocks[i], st.uNow, st.uNext)
		}
		return
	}
	if st.shards == nil {
		st.shards = newShardWorkers(st.blocks, st.uNow, st.uNext, st.workers) //pgmor:alloc one-time lazy shard-worker spawn on the first sharded step
		// Backstop for steppers dropped without Close: the workers hold
		// only the block/input slices, so an unreachable Stepper triggers
		// the cleanup and the goroutines exit.
		//pgmor:alloc one-time leak-backstop registration alongside the shard spawn
		runtime.AddCleanup(st, func(sw *shardWorkers) { sw.close() }, st.shards)
	}
	st.shards.step()
}

// Close stops the persistent shard workers, if any were started. It is safe
// to call multiple times and to keep using the Stepper afterwards — the next
// sharded step simply restarts the workers. Single-worker steppers have
// nothing to release.
func (st *Stepper) Close() {
	if st.shards != nil {
		st.shards.close()
		st.shards = nil
	}
}

// Output evaluates input at the current time and returns the output row —
// the t = Step()·Dt sample a caller emits before (or between) Advances. The
// initial row of a run is Output at step 0.
func (st *Stepper) Output(input Input) ([]float64, error) {
	if input == nil {
		return nil, fmt.Errorf("sim: stepper Input waveform is required")
	}
	input(st.Time(), st.uNow)
	return st.output(), nil
}

// Advance integrates n further steps driven by input and returns one row per
// step, at times (k+1)·Dt … (k+n)·Dt. The waveform is evaluated at absolute
// session time and may differ between calls — a switch takes effect from the
// left endpoint of the next step, with the block states carrying over
// untouched, so a drive change never restarts the transient. Advancing in
// any chunking is exact: the concatenated rows are bit-identical to one
// uninterrupted run with the same (deterministic) waveform.
func (st *Stepper) Advance(n int, input Input) (*Result, error) {
	if n < 0 {
		return nil, fmt.Errorf("sim: cannot advance %d steps", n)
	}
	if input == nil {
		return nil, fmt.Errorf("sim: stepper Input waveform is required")
	}
	res := &Result{T: make([]float64, n), Y: make([][]float64, n)}
	if n == 0 {
		return res, nil
	}
	// One backing array for all n rows: Advance performs O(1) allocations
	// regardless of step count, where the old per-step make([]float64, p)
	// put n short-lived rows on the heap per call.
	yback := make([]float64, n*st.p)
	// Re-evaluate the left endpoint under the (possibly new) drive; for an
	// unchanged waveform this reproduces the value the previous Advance left
	// behind, because Input is a pure function of t.
	input(st.Time(), st.uNow)
	for i := 0; i < n; i++ {
		st.k++
		t := float64(st.k) * st.h
		input(t, st.uNext)
		st.stepAll()
		copy(st.uNow, st.uNext)
		row := yback[i*st.p : (i+1)*st.p : (i+1)*st.p]
		st.outputInto(row)
		res.T[i] = t
		res.Y[i] = row
	}
	return res, nil
}

// StepperState is a deep snapshot of a Stepper's integration state: the step
// counter plus the per-block coordinates — a few complex numbers per modal
// block, one real vector per implicit block. Slots are indexed by block;
// exactly one of Modal[i]/Implicit[i] is non-nil per block.
type StepperState struct {
	Step     int
	Modal    [][]complex128
	Implicit [][]float64
}

// Snapshot captures the current integration state. The snapshot is
// independent of the Stepper: later Advances do not mutate it.
func (st *Stepper) Snapshot() *StepperState {
	snap := &StepperState{
		Step:     st.k,
		Modal:    make([][]complex128, len(st.blocks)),
		Implicit: make([][]float64, len(st.blocks)),
	}
	for i := range st.blocks {
		if b := &st.blocks[i]; b.modal != nil {
			snap.Modal[i] = append([]complex128(nil), b.modal.z...)
		} else {
			snap.Implicit[i] = append([]float64(nil), b.implicit.x...)
		}
	}
	return snap
}

// Restore rewinds (or fast-forwards) the Stepper to a snapshot taken from a
// stepper of the same model and options. The next Advance resumes from the
// snapshot's step as if the intervening calls never happened.
func (st *Stepper) Restore(snap *StepperState) error {
	if snap == nil {
		return fmt.Errorf("sim: nil stepper snapshot")
	}
	if len(snap.Modal) != len(st.blocks) || len(snap.Implicit) != len(st.blocks) {
		return fmt.Errorf("sim: snapshot has %d/%d block slots, want %d", len(snap.Modal), len(snap.Implicit), len(st.blocks))
	}
	if snap.Step < 0 {
		return fmt.Errorf("sim: snapshot step %d is negative", snap.Step)
	}
	for i := range st.blocks {
		b := &st.blocks[i]
		switch {
		case b.modal != nil:
			if snap.Implicit[i] != nil || len(snap.Modal[i]) != len(b.modal.z) {
				return fmt.Errorf("sim: snapshot block %d does not match a modal block of %d modes", i, len(b.modal.z))
			}
		default:
			if snap.Modal[i] != nil || len(snap.Implicit[i]) != len(b.implicit.x) {
				return fmt.Errorf("sim: snapshot block %d does not match an implicit block of order %d", i, len(b.implicit.x))
			}
		}
	}
	for i := range st.blocks {
		if b := &st.blocks[i]; b.modal != nil {
			copy(b.modal.z, snap.Modal[i])
		} else {
			copy(b.implicit.x, snap.Implicit[i])
		}
	}
	st.k = snap.Step
	return nil
}
