package sim

import (
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/lti"
)

// modalTestSystem is a small RC-flavored ROM (symmetric C SPD, symmetric G
// negative definite) that modalizes fully.
func modalTestSystem(t *testing.T) (*lti.BlockDiagSystem, *lti.ModalSystem) {
	t.Helper()
	bd := &lti.BlockDiagSystem{
		M: 2,
		P: 2,
		Blocks: []lti.Block{
			{
				C:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{1, 0.2, 0.2, 2}},
				G:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{-3, 1, 1, -4}},
				B:     []float64{1, -0.5},
				L:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{1, 0, 0.25, 1}},
				Input: 0,
			},
			{
				C:     &dense.Mat[float64]{Rows: 3, Cols: 3, Data: []float64{1.5, 0, 0.1, 0, 1, 0, 0.1, 0, 2}},
				G:     &dense.Mat[float64]{Rows: 3, Cols: 3, Data: []float64{-2, 0.5, 0, 0.5, -3, 0.5, 0, 0.5, -5}},
				B:     []float64{0.5, 1, -1},
				L:     &dense.Mat[float64]{Rows: 2, Cols: 3, Data: []float64{0, 1, 0.5, 1, 0, -0.25}},
				Input: 1,
			},
		},
	}
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatalf("Modalize: %v", err)
	}
	if modal, fb := ms.ModalCount(); fb != 0 || modal != 2 {
		t.Fatalf("test system did not fully modalize (%d modal, %d fallback)", modal, fb)
	}
	return bd, ms
}

// TestSimulateModalExactStep: for a step input (piecewise-linear between
// samples, and constant after the first step), the modal integrator is exact
// at every sample regardless of step size — compare against the analytic
// modal solution z(t) = (e^{λt}−1)/λ·u.
func TestSimulateModalExactStep(t *testing.T) {
	_, ms := modalTestSystem(t)
	opts := TransientOptions{Dt: 0.05, T: 2, Input: UniformInput(DC(1))}
	res, err := SimulateModal(ms, opts)
	if err != nil {
		t.Fatalf("SimulateModal: %v", err)
	}
	for k, tm := range res.T {
		want := make([]float64, 2)
		for i := range ms.Blocks {
			mb := &ms.Blocks[i]
			for j, lam := range mb.Poles {
				l := real(lam) // symmetric path: poles are real
				z := (math.Exp(l*tm) - 1) / l
				row := mb.R.Row(j)
				for r := range want {
					want[r] += real(row[r]) * z
				}
			}
		}
		for r := range want {
			if d := math.Abs(res.Y[k][r] - want[r]); d > 1e-12*(1+math.Abs(want[r])) {
				t.Fatalf("t=%g output %d: modal %g vs analytic %g (Δ=%g)", tm, r, res.Y[k][r], want[r], d)
			}
		}
	}
}

// TestSimulateModalMatchesImplicit: on a smooth sine drive the trapezoidal
// integrator at a fine step must converge to the modal-exact result at a
// coarse step — the modal integrator is the reference, not the approximation.
func TestSimulateModalMatchesImplicit(t *testing.T) {
	bd, ms := modalTestSystem(t)
	input := UniformInput(Sine{Amplitude: 1, Freq: 0.5})
	modal, err := SimulateModal(ms, TransientOptions{Dt: 0.01, T: 2, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := SimulateBlockDiag(bd, TransientOptions{Method: Trapezoidal, Dt: 0.0005, T: 2, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	// Compare at the coarse samples (every 20th fine sample).
	var maxErr, scale float64
	for k, tm := range modal.T {
		fk := k * 20
		if fk >= len(fine.T) {
			break
		}
		if math.Abs(fine.T[fk]-tm) > 1e-12 {
			t.Fatalf("sample mismatch: %g vs %g", fine.T[fk], tm)
		}
		for r := range modal.Y[k] {
			if d := math.Abs(modal.Y[k][r] - fine.Y[fk][r]); d > maxErr {
				maxErr = d
			}
			if a := math.Abs(fine.Y[fk][r]); a > scale {
				scale = a
			}
		}
	}
	// The sine is sampled piecewise-linearly at Dt=0.01 (relative chord
	// error ~(ωh)²/8 ≈ 1e-6); the fine trapezoidal run resolves the same
	// drive much more finely, so agreement is bounded by the coarse
	// sampling, not the integrators.
	if maxErr > 1e-4*scale {
		t.Fatalf("modal vs fine trapezoidal max error %g (scale %g)", maxErr, scale)
	}
}

// TestSimulateModalMixedFallback: a system with one modal and one
// non-diagonalizable block must integrate the fallback block implicitly and
// still converge to the all-implicit reference.
func TestSimulateModalMixedFallback(t *testing.T) {
	bd := &lti.BlockDiagSystem{
		M: 2,
		P: 1,
		Blocks: []lti.Block{
			{
				C:     &dense.Mat[float64]{Rows: 1, Cols: 1, Data: []float64{1}},
				G:     &dense.Mat[float64]{Rows: 1, Cols: 1, Data: []float64{-2}},
				B:     []float64{1},
				L:     &dense.Mat[float64]{Rows: 1, Cols: 1, Data: []float64{1}},
				Input: 0,
			},
			{
				// Jordan block: stays on the implicit fallback.
				C:     dense.Eye[float64](3),
				G:     &dense.Mat[float64]{Rows: 3, Cols: 3, Data: []float64{-1, 1, 0, 0, -1, 1, 0, 0, -1}},
				B:     []float64{0, 0, 1},
				L:     &dense.Mat[float64]{Rows: 1, Cols: 3, Data: []float64{1, 0, 0}},
				Input: 1,
			},
		},
	}
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatal(err)
	}
	if modal, fb := ms.ModalCount(); modal != 1 || fb != 1 {
		t.Fatalf("ModalCount = (%d, %d), want (1, 1)", modal, fb)
	}
	input := UniformInput(Step{Amplitude: 1, Delay: 0.1})
	h := 0.002
	mixed, err := SimulateModal(ms, TransientOptions{Method: Trapezoidal, Dt: h, T: 1, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SimulateBlockDiag(bd, TransientOptions{Method: Trapezoidal, Dt: h, T: 1, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	var maxErr, scale float64
	for k := range mixed.T {
		for r := range mixed.Y[k] {
			if d := math.Abs(mixed.Y[k][r] - ref.Y[k][r]); d > maxErr {
				maxErr = d
			}
			if a := math.Abs(ref.Y[k][r]); a > scale {
				scale = a
			}
		}
	}
	// The fallback block integrates identically; the modal block differs
	// from trapezoidal by its O(h²) local error.
	if maxErr > 1e-4*scale {
		t.Fatalf("mixed vs implicit max error %g (scale %g)", maxErr, scale)
	}
}

// TestSimulateModalWorkers: sharding blocks across goroutines must not
// change the result bit-for-bit.
func TestSimulateModalWorkers(t *testing.T) {
	_, ms := modalTestSystem(t)
	input := UniformInput(Pulse{Low: 0, High: 1, Delay: 0.1, Rise: 0.05, Fall: 0.05, Width: 0.3, Period: 1})
	serial, err := SimulateModal(ms, TransientOptions{Dt: 0.01, T: 1, Input: input, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SimulateModal(ms, TransientOptions{Dt: 0.01, T: 1, Input: input, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := range serial.Y {
		for r := range serial.Y[k] {
			if serial.Y[k][r] != parallel.Y[k][r] {
				t.Fatalf("worker sharding changed the result at step %d output %d", k, r)
			}
		}
	}
}
