package sim

import (
	"math"
	"testing"
)

// advanceChunked drives st through the same schedule as one full run: the
// t = 0 row, then the remaining steps split into chunks of at most n.
func advanceChunked(t *testing.T, st *Stepper, steps, n int, input Input) *Result {
	t.Helper()
	res := &Result{}
	y0, err := st.Output(input)
	if err != nil {
		t.Fatalf("Output: %v", err)
	}
	res.T = append(res.T, st.Time())
	res.Y = append(res.Y, y0)
	for steps > 0 {
		c := n
		if c > steps {
			c = steps
		}
		chunk, err := st.Advance(c, input)
		if err != nil {
			t.Fatalf("Advance(%d): %v", c, err)
		}
		if len(chunk.T) != c {
			t.Fatalf("Advance(%d) returned %d rows", c, len(chunk.T))
		}
		res.T = append(res.T, chunk.T...)
		res.Y = append(res.Y, chunk.Y...)
		steps -= c
	}
	return res
}

func requireSameResult(t *testing.T, got, want *Result, tol float64) {
	t.Helper()
	if len(got.T) != len(want.T) {
		t.Fatalf("row count %d, want %d", len(got.T), len(want.T))
	}
	for k := range want.T {
		if got.T[k] != want.T[k] {
			t.Fatalf("row %d: t=%g, want %g", k, got.T[k], want.T[k])
		}
		for r := range want.Y[k] {
			if d := math.Abs(got.Y[k][r] - want.Y[k][r]); d > tol*(1+math.Abs(want.Y[k][r])) {
				t.Fatalf("row %d output %d: %g vs %g (Δ=%g)", k, r, got.Y[k][r], want.Y[k][r], d)
			}
		}
	}
}

// TestStepperChunkedMatchesSimulateModal: a session advanced in N chunks of
// any size must match a single SimulateModal run to ≤1e-12 (in fact
// bit-exactly: the arithmetic is identical).
func TestStepperChunkedMatchesSimulateModal(t *testing.T) {
	_, ms := modalTestSystem(t)
	input := UniformInput(Pulse{Low: 0, High: 1, Delay: 0.1, Rise: 0.05, Fall: 0.05, Width: 0.3, Period: 1})
	opts := TransientOptions{Dt: 0.01, T: 2, Input: input}
	full, err := SimulateModal(ms, opts)
	if err != nil {
		t.Fatalf("SimulateModal: %v", err)
	}
	for _, chunk := range []int{1, 7, 50, 200, 1000} {
		st, err := NewStepper(ms, StepperOptions{Dt: opts.Dt})
		if err != nil {
			t.Fatalf("NewStepper: %v", err)
		}
		got := advanceChunked(t, st, opts.Steps(), chunk, input)
		requireSameResult(t, got, full, 1e-12)
	}
}

// TestStepperChunkedMatchesImplicit: the implicit-fallback path resumes to
// integrator tolerance too (bit-exact as well — same LU, same solves).
func TestStepperChunkedMatchesImplicit(t *testing.T) {
	bd, _ := modalTestSystem(t)
	input := UniformInput(Sine{Amplitude: 1, Freq: 0.5})
	opts := TransientOptions{Method: Trapezoidal, Dt: 0.005, T: 1, Input: input}
	full, err := SimulateBlockDiag(bd, opts)
	if err != nil {
		t.Fatalf("SimulateBlockDiag: %v", err)
	}
	st, err := NewImplicitStepper(bd, StepperOptions{Method: Trapezoidal, Dt: opts.Dt})
	if err != nil {
		t.Fatalf("NewImplicitStepper: %v", err)
	}
	got := advanceChunked(t, st, opts.Steps(), 13, input)
	requireSameResult(t, got, full, 1e-12)
}

// TestStepperWaveformSwitch: changing the drive between advances must equal
// one uninterrupted run under the equivalent composite waveform — the state
// carries over, nothing restarts. The waveforms agree at the switch instant
// (both 1 at t = 0.5); only then does a single composite run exist at all,
// since the boundary sample is the right endpoint of the last old-drive step
// and the left endpoint of the first new-drive step.
func TestStepperWaveformSwitch(t *testing.T) {
	_, ms := modalTestSystem(t)
	const dt, tSwitch = 0.01, 0.5
	first := UniformInput(Step{Amplitude: 1})
	second := UniformInput(Sine{Offset: 1, Amplitude: 0.5, Freq: 2, Delay: tSwitch})
	composite := func(tm float64, u []float64) {
		if tm < tSwitch {
			first(tm, u)
		} else {
			second(tm, u)
		}
	}

	full, err := SimulateModal(ms, TransientOptions{Dt: dt, T: 2, Input: composite})
	if err != nil {
		t.Fatalf("SimulateModal: %v", err)
	}

	st, err := NewStepper(ms, StepperOptions{Dt: dt})
	if err != nil {
		t.Fatalf("NewStepper: %v", err)
	}
	res := &Result{}
	y0, err := st.Output(first)
	if err != nil {
		t.Fatal(err)
	}
	res.T = append(res.T, 0)
	res.Y = append(res.Y, y0)
	a, err := st.Advance(50, first) // up to t = 0.5
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Advance(150, second) // switched drive from t = 0.5 on
	if err != nil {
		t.Fatal(err)
	}
	res.T = append(append(res.T, a.T...), b.T...)
	res.Y = append(append(res.Y, a.Y...), b.Y...)
	requireSameResult(t, res, full, 1e-12)
}

// TestStepperSnapshotRestore: restoring a snapshot replays the exact same
// trajectory, and snapshots are isolated from later advances.
func TestStepperSnapshotRestore(t *testing.T) {
	bd, ms := modalTestSystem(t)
	input := UniformInput(Sine{Amplitude: 1, Freq: 1})
	for name, mk := range map[string]func() (*Stepper, error){
		"modal":    func() (*Stepper, error) { return NewStepper(ms, StepperOptions{Dt: 0.01}) },
		"implicit": func() (*Stepper, error) { return NewImplicitStepper(bd, StepperOptions{Dt: 0.01}) },
	} {
		st, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := st.Advance(37, input); err != nil {
			t.Fatal(err)
		}
		snap := st.Snapshot()
		if snap.Step != 37 {
			t.Fatalf("%s: snapshot step %d, want 37", name, snap.Step)
		}
		want, err := st.Advance(25, input)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Restore(snap); err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		if st.Step() != 37 || st.Time() != 37*0.01 {
			t.Fatalf("%s: restored to step %d t=%g", name, st.Step(), st.Time())
		}
		got, err := st.Advance(25, input)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, got, want, 0) // bit-exact replay
	}
}

// TestStepperRestoreMismatch: snapshots from a different model shape are
// rejected, never silently applied.
func TestStepperRestoreMismatch(t *testing.T) {
	_, ms := modalTestSystem(t)
	st, err := NewStepper(ms, StepperOptions{Dt: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Restore(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	snap := st.Snapshot()
	snap.Modal = snap.Modal[:1]
	if err := st.Restore(snap); err == nil {
		t.Fatal("short snapshot accepted")
	}
	snap = st.Snapshot()
	snap.Modal[0] = snap.Modal[0][:1]
	if err := st.Restore(snap); err == nil {
		t.Fatal("wrong-width snapshot accepted")
	}
	snap = st.Snapshot()
	snap.Step = -1
	if err := st.Restore(snap); err == nil {
		t.Fatal("negative step accepted")
	}
}

// TestStepperValidation: constructor and Advance argument errors.
func TestStepperValidation(t *testing.T) {
	_, ms := modalTestSystem(t)
	if _, err := NewStepper(ms, StepperOptions{Dt: 0}); err == nil {
		t.Fatal("Dt=0 accepted")
	}
	if _, err := NewStepper(ms, StepperOptions{Dt: -1}); err == nil {
		t.Fatal("Dt<0 accepted")
	}
	st, err := NewStepper(ms, StepperOptions{Dt: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Advance(-1, UniformInput(DC(1))); err == nil {
		t.Fatal("negative step count accepted")
	}
	if _, err := st.Advance(1, nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := st.Output(nil); err == nil {
		t.Fatal("nil input accepted by Output")
	}
	if got, err := st.Advance(0, UniformInput(DC(1))); err != nil || len(got.T) != 0 {
		t.Fatalf("Advance(0) = %v rows, err %v", len(got.T), err)
	}
	if st.Inputs() != 2 || st.Outputs() != 2 || st.Dt() != 0.01 {
		t.Fatalf("dims/dt accessors wrong: %d %d %g", st.Inputs(), st.Outputs(), st.Dt())
	}
}

// TestStepperWorkersExact: sharded stepping is bit-identical to serial, also
// when resumed mid-run.
func TestStepperWorkersExact(t *testing.T) {
	_, ms := modalTestSystem(t)
	input := UniformInput(Sine{Amplitude: 1, Freq: 0.5})
	serial, err := NewStepper(ms, StepperOptions{Dt: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewStepper(ms, StepperOptions{Dt: 0.01, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.Close()
	a := advanceChunked(t, serial, 100, 17, input)
	b := advanceChunked(t, parallel, 100, 23, input)
	requireSameResult(t, b, a, 0)
}

// TestStepperCloseRestart: Close stops the persistent shard workers but does
// not poison the stepper — the next Advance restarts them and the trajectory
// stays bit-identical to an uninterrupted serial run.
func TestStepperCloseRestart(t *testing.T) {
	_, ms := modalTestSystem(t)
	input := UniformInput(Sine{Amplitude: 1, Freq: 0.5})
	serial, err := NewStepper(ms, StepperOptions{Dt: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewStepper(ms, StepperOptions{Dt: 0.01, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := advanceChunked(t, serial, 80, 80, input)
	res := &Result{}
	y0, err := parallel.Output(input)
	if err != nil {
		t.Fatal(err)
	}
	res.T = append(res.T, 0)
	res.Y = append(res.Y, y0)
	a, err := parallel.Advance(40, input)
	if err != nil {
		t.Fatal(err)
	}
	parallel.Close()
	parallel.Close()                      // idempotent
	b, err := parallel.Advance(40, input) // restarts the shards
	if err != nil {
		t.Fatal(err)
	}
	parallel.Close()
	res.T = append(append(res.T, a.T...), b.T...)
	res.Y = append(append(res.Y, a.Y...), b.Y...)
	requireSameResult(t, res, want, 0)
}

// TestStepperAdvanceAllocs pins the hot-loop allocation fix: Advance(n)
// performs O(1) allocations — one Result, its T and Y headers, one shared
// row backing array — independent of n, where it used to allocate one row
// per step.
//
//pgmor:alloctest Stepper.stepAll
//pgmor:alloctest stepBlock
//pgmor:alloctest Stepper.outputInto
func TestStepperAdvanceAllocs(t *testing.T) {
	_, ms := modalTestSystem(t)
	st, err := NewStepper(ms, StepperOptions{Dt: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	input := UniformInput(Sine{Amplitude: 1, Freq: 0.5})
	for _, n := range []int{16, 256} {
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := st.Advance(n, input); err != nil {
				t.Fatal(err)
			}
		})
		// 4 fixed allocations (Result, T, Y, row backing); allow one of
		// slack for runtime noise but never anything that scales with n.
		if allocs > 5 {
			t.Fatalf("Advance(%d) allocates %.1f times per call, want O(1) ≤ 5", n, allocs)
		}
	}
}
