//go:build amd64 && !purego

package sim

// AVX2 versions of the fused-group kernels, selected at startup when the
// CPU and OS support 256-bit vector state. The vector code uses only
// VMULPD/VADDPD/VSUBPD — per-lane IEEE 754 operations in the exact order of
// the Go reference, never fused multiply-add — so each session lane
// computes bit-for-bit what the scalar loop computes.

//go:noescape
func axpyRealAVX2(y, zr, zi []float64, a, c float64)

//go:noescape
func stepModesAVX2(zr, zi, u0, u1 []float64, er, ei, f0r, f0i, f1r, f1i float64)

//go:noescape
func accumBlockAVX2(yb, zr, zi, rr, ri []float64, q, p, ns int)

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// hasAVX2 reports AVX2 plus OS-enabled YMM state (OSXSAVE, XCR0 SSE|AVX).
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0
}

var useAVX2 = hasAVX2()

//pgmor:noalloc
func axpyReal(y, zr, zi []float64, a, c float64) {
	if useAVX2 && len(y) >= 8 {
		axpyRealAVX2(y, zr, zi, a, c)
		return
	}
	axpyRealRef(y, zr, zi, a, c)
}

//pgmor:noalloc
func stepModes(zr, zi, u0, u1 []float64, er, ei, f0r, f0i, f1r, f1i float64) {
	if useAVX2 && len(zr) >= 4 {
		stepModesAVX2(zr, zi, u0, u1, er, ei, f0r, f0i, f1r, f1i)
		return
	}
	stepModesRef(zr, zi, u0, u1, er, ei, f0r, f0i, f1r, f1i)
}

//pgmor:noalloc
func accumBlock(yb, zr, zi, rr, ri []float64, q, p, ns int) {
	if useAVX2 && ns >= 4 {
		// The assembly walks raw pointers; keep the slice-shape invariants
		// it assumes checked in one place.
		if len(zr) < q*ns || len(zi) < q*ns || len(yb) < p*ns || len(rr) < q*p || len(ri) < q*p {
			panic("sim: accumBlock: short slice")
		}
		accumBlockAVX2(yb, zr, zi, rr, ri, q, p, ns)
		return
	}
	accumBlockRef(yb, zr, zi, rr, ri, q, p, ns)
}
