package sim

import (
	"bytes"
	"testing"
)

// TestSnapshotBinaryRoundTrip: marshal → unmarshal → Restore must reproduce
// the exact integration future: rows after a restored snapshot are
// bit-identical to the uninterrupted run.
func TestSnapshotBinaryRoundTrip(t *testing.T) {
	bd, ms := modalTestSystem(t)
	input := UniformInput(Sine{Amplitude: 1, Freq: 0.5})
	for name, mk := range map[string]func() (*Stepper, error){
		"modal":    func() (*Stepper, error) { return NewStepper(ms, StepperOptions{Dt: 0.01}) },
		"implicit": func() (*Stepper, error) { return NewImplicitStepper(bd, StepperOptions{Dt: 0.01}) },
	} {
		st, err := mk()
		if err != nil {
			t.Fatalf("%s: new stepper: %v", name, err)
		}
		if _, err := st.Advance(37, input); err != nil {
			t.Fatalf("%s: advance: %v", name, err)
		}
		snap := st.Snapshot()
		data, err := snap.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := UnmarshalStepperState(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if back.Step != snap.Step {
			t.Fatalf("%s: step %d, want %d", name, back.Step, snap.Step)
		}

		// The future from the original and from the decoded snapshot must
		// match bit-exactly.
		want, err := st.Advance(21, input)
		if err != nil {
			t.Fatalf("%s: reference advance: %v", name, err)
		}
		st2, err := mk()
		if err != nil {
			t.Fatalf("%s: second stepper: %v", name, err)
		}
		if err := st2.Restore(back); err != nil {
			t.Fatalf("%s: restore decoded snapshot: %v", name, err)
		}
		got, err := st2.Advance(21, input)
		if err != nil {
			t.Fatalf("%s: resumed advance: %v", name, err)
		}
		requireSameResult(t, got, want, 0)

		// Marshaling is deterministic: same state, same bytes.
		again, err := back.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("%s: re-marshaled snapshot differs", name)
		}
	}
}

// TestSnapshotBinaryRejectsCorruption: every structural damage mode fails
// loudly — no panic, no silently wrong state.
func TestSnapshotBinaryRejectsCorruption(t *testing.T) {
	_, ms := modalTestSystem(t)
	st, err := NewStepper(ms, StepperOptions{Dt: 0.01})
	if err != nil {
		t.Fatalf("NewStepper: %v", err)
	}
	if _, err := st.Advance(5, UniformInput(DC(1))); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	data, err := st.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), data...))
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      mutate(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"bad version":    mutate(func(b []byte) []byte { b[4] = 99; return b }),
		"truncated head": data[:5],
		"truncated body": data[:len(data)-3],
		"trailing bytes": append(append([]byte(nil), data...), 0),
		"bad kind":       mutate(func(b []byte) []byte { b[18] = 7; return b }),
		"absurd blocks": mutate(func(b []byte) []byte {
			b[14], b[15], b[16], b[17] = 0xff, 0xff, 0xff, 0xff
			return b
		}),
		"absurd count": mutate(func(b []byte) []byte {
			b[19], b[20], b[21], b[22] = 0xff, 0xff, 0xff, 0xff
			return b
		}),
	}
	for name, corrupt := range cases {
		if _, err := UnmarshalStepperState(corrupt); err == nil {
			t.Errorf("%s: corrupt snapshot decoded without error", name)
		}
	}
}

// TestSnapshotMarshalRejectsMalformedState: a hand-built state with both (or
// neither) block kinds set cannot be encoded.
func TestSnapshotMarshalRejectsMalformedState(t *testing.T) {
	bad := []*StepperState{
		{Step: 1, Modal: [][]complex128{{1}}, Implicit: [][]float64{{1}}},
		{Step: 1, Modal: [][]complex128{nil}, Implicit: [][]float64{nil}},
		{Step: -1, Modal: [][]complex128{}, Implicit: [][]float64{}},
		{Step: 1, Modal: [][]complex128{{1}}, Implicit: [][]float64{}},
	}
	for i, s := range bad {
		if _, err := s.MarshalBinary(); err == nil {
			t.Errorf("case %d: malformed state marshaled without error", i)
		}
	}
}
