package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// GroupOptions configures a StepperGroup.
type GroupOptions struct {
	// Workers shards the member sessions across persistent goroutines,
	// signaled once per Advance; 0 or 1 means serial.
	Workers int
}

// StepperGroup advances N compatible Steppers — same model, same Dt — through
// one fused per-mode pass instead of N independent block loops. Per step and
// modal block the propagator constants e^{λₖh}, φ-weights, and residue rows
// are loaded once and applied to every member session, with the per-mode
// coordinates gathered into a mode-major structure-of-arrays (z[k·S+s]) so
// the inner session loop streams contiguously. Independent advance touches
// N scattered copies of the same constants and pays the per-session
// per-block call overhead N times.
//
// The trajectories are bit-identical to calling Advance on each member
// independently: per session, every floating-point operation runs in the
// same order with the same operands — the fusion only reorders work across
// sessions, which share no state. Members keep full ownership of their state
// between group advances: Snapshot, Restore, and independent Advance all
// remain valid, and members may sit at different step indices.
//
// A StepperGroup is not safe for concurrent use; callers serialize Advance
// the same way they serialize a Stepper.
type StepperGroup struct {
	members []*Stepper
	h       float64
	p       int
	shards  []*groupShard
	pool    *groupPool
}

// groupBlockData is the read-only split form of one modal block's output
// data, shared by every shard: residues and direct term separated into real
// and imaginary float64 arrays so the output kernel streams same-type lanes.
type groupBlockData struct {
	rr, ri []float64 // residues, mode-major [k*p+r]
	dre    []float64 // Re(D), nil when the block has no direct term
}

// groupShard owns a contiguous member range and its SoA staging buffers.
// Fully-modal groups run the vectorized split-float path (zr/zi, uNow/uNxt,
// ybatch); groups containing implicit blocks use the complex staging.
type groupShard struct {
	lo, hi   int
	allModal bool
	data     []groupBlockData // shared split residues; zero-valued for implicit blocks

	// Split-float path (allModal).
	zr, zi     [][]float64 // per block: mode-major z parts [k*S+s]
	uNow, uNxt []float64   // endpoint drives, port-major [port*S+s]
	ybatch     []float64   // output staging, row-major [r*S+s]

	// Complex path (mixed modal/implicit groups).
	z        [][]complex128 // per block: mode-major z[k*S+s]; nil for implicit blocks
	cu0, cu1 []complex128   // per-session endpoint inputs of the block being stepped
}

// NewStepperGroup validates that every member is advanceable by one fused
// kernel and builds the staging buffers. Members must be distinct steppers
// over the same modal data (same ModalBlock pointers — i.e. the same model)
// with identical Dt; the propagator tables are verified bit-equal, which is
// what lets the kernel read member 0's copy for everyone.
func NewStepperGroup(members []*Stepper, opts GroupOptions) (*StepperGroup, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("sim: stepper group needs at least one member")
	}
	seen := make(map[*Stepper]bool, len(members))
	ref := members[0]
	for i, st := range members {
		if st == nil {
			return nil, fmt.Errorf("sim: group member %d is nil", i)
		}
		if seen[st] {
			return nil, fmt.Errorf("sim: group member %d appears more than once", i)
		}
		seen[st] = true
		if err := groupCompatible(ref, st); err != nil {
			return nil, fmt.Errorf("sim: group member %d: %w", i, err)
		}
	}
	g := &StepperGroup{members: members, h: ref.h, p: ref.p}
	allModal := true
	for b := range ref.blocks {
		if ref.blocks[b].modal == nil {
			allModal = false
			break
		}
	}
	// Split residues and direct terms once; every shard reads the same
	// arrays.
	data := make([]groupBlockData, len(ref.blocks))
	if allModal {
		for b := range ref.blocks {
			mb := ref.blocks[b].modal.mb
			q := mb.R.Rows
			d := groupBlockData{
				rr: make([]float64, q*g.p),
				ri: make([]float64, q*g.p),
			}
			for k := 0; k < q; k++ {
				row := mb.R.Row(k)
				for r := 0; r < g.p; r++ {
					d.rr[k*g.p+r] = real(row[r])
					d.ri[k*g.p+r] = imag(row[r])
				}
			}
			if mb.D != nil {
				d.dre = make([]float64, g.p)
				for r := 0; r < g.p; r++ {
					d.dre[r] = real(mb.D[r])
				}
			}
			data[b] = d
		}
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(members) {
		workers = len(members)
	}
	chunk := (len(members) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(members) {
			hi = len(members)
		}
		if lo >= hi {
			break
		}
		g.shards = append(g.shards, newGroupShard(ref, lo, hi, allModal, data))
	}
	return g, nil
}

func newGroupShard(ref *Stepper, lo, hi int, allModal bool, data []groupBlockData) *groupShard {
	s := hi - lo
	sh := &groupShard{lo: lo, hi: hi, allModal: allModal, data: data}
	if allModal {
		sh.zr = make([][]float64, len(ref.blocks))
		sh.zi = make([][]float64, len(ref.blocks))
		for b := range ref.blocks {
			q := len(ref.blocks[b].modal.z)
			sh.zr[b] = make([]float64, q*s)
			sh.zi[b] = make([]float64, q*s)
		}
		sh.uNow = make([]float64, ref.m*s)
		sh.uNxt = make([]float64, ref.m*s)
		sh.ybatch = make([]float64, ref.p*s)
		return sh
	}
	sh.z = make([][]complex128, len(ref.blocks))
	sh.cu0 = make([]complex128, s)
	sh.cu1 = make([]complex128, s)
	for b := range ref.blocks {
		if m := ref.blocks[b].modal; m != nil {
			sh.z[b] = make([]complex128, len(m.z)*s)
		}
	}
	return sh
}

// groupCompatible reports whether b can be fused with a: the kernel shares
// a's propagator tables and residue rows across all members, so they must be
// the same model at the same step size — and the derived tables must be
// bit-equal, which is checked rather than assumed.
func groupCompatible(a, b *Stepper) error {
	if a.h != b.h {
		return fmt.Errorf("dt %g differs from group dt %g", b.h, a.h)
	}
	if a.m != b.m || a.p != b.p {
		return fmt.Errorf("port shape %d×%d differs from group %d×%d", b.m, b.p, a.m, a.p)
	}
	if len(a.blocks) != len(b.blocks) {
		return fmt.Errorf("%d blocks differ from group %d", len(b.blocks), len(a.blocks))
	}
	for i := range a.blocks {
		ab, bb := &a.blocks[i], &b.blocks[i]
		switch {
		case ab.modal != nil && bb.modal != nil:
			if ab.modal.mb != bb.modal.mb {
				return fmt.Errorf("block %d is not backed by the same modal data", i)
			}
			for k := range ab.modal.expLH {
				if ab.modal.expLH[k] != bb.modal.expLH[k] ||
					ab.modal.fNow[k] != bb.modal.fNow[k] ||
					ab.modal.fNxt[k] != bb.modal.fNxt[k] {
					return fmt.Errorf("block %d propagator tables are not bit-equal", i)
				}
			}
		case ab.implicit != nil && bb.implicit != nil:
			if ab.implicit.input != bb.implicit.input ||
				ab.implicit.beta != bb.implicit.beta ||
				len(ab.implicit.x) != len(bb.implicit.x) {
				return fmt.Errorf("block %d implicit state shape differs", i)
			}
		default:
			return fmt.Errorf("block %d kind differs", i)
		}
	}
	return nil
}

// Size returns the member count.
func (g *StepperGroup) Size() int { return len(g.members) }

// Advance integrates every member n further steps, member s driven by
// inputs[s] at its own absolute session time, and returns one Result per
// member — each bit-identical to what members[s].Advance(n, inputs[s]) would
// have produced.
func (g *StepperGroup) Advance(n int, inputs []Input) ([]*Result, error) {
	if n < 0 {
		return nil, fmt.Errorf("sim: cannot advance %d steps", n)
	}
	if len(inputs) != len(g.members) {
		return nil, fmt.Errorf("sim: group advance got %d inputs for %d members", len(inputs), len(g.members))
	}
	for s, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("sim: group member %d input waveform is required", s)
		}
	}
	results := make([]*Result, len(g.members))
	for s := range results {
		res := &Result{T: make([]float64, n), Y: make([][]float64, n)}
		yback := make([]float64, n*g.p)
		for i := 0; i < n; i++ {
			res.Y[i] = yback[i*g.p : (i+1)*g.p : (i+1)*g.p]
		}
		results[s] = res
	}
	if n == 0 {
		return results, nil
	}
	if len(g.shards) == 1 {
		advanceGroupShard(g.members, g.shards[0], n, inputs, results)
		return results, nil
	}
	g.ensurePool()
	g.pool.run(groupJob{n: n, inputs: inputs, results: results})
	return results, nil
}

// Close stops the persistent shard workers, if any were started. The group
// remains usable; the next multi-shard Advance restarts them.
func (g *StepperGroup) Close() {
	if g.pool != nil {
		g.pool.close()
		g.pool = nil
	}
}

// advanceGroupShard runs the fused kernel over the shard's member range. It
// deliberately takes the members slice rather than the *StepperGroup so the
// persistent workers do not keep the group reachable (see ensurePool).
func advanceGroupShard(members []*Stepper, sh *groupShard, n int, inputs []Input, results []*Result) {
	if sh.allModal {
		advanceGroupShardFused(members, sh, n, inputs, results)
		return
	}
	s0 := sh.lo
	ns := sh.hi - sh.lo
	ref := members[s0]
	// Gather the per-mode coordinates into the mode-major SoA staging; the
	// member slices go stale for the duration of the advance and are
	// refreshed by the scatter below.
	for b := range ref.blocks {
		zb := sh.z[b]
		if zb == nil {
			continue
		}
		for s := 0; s < ns; s++ {
			for k, zk := range members[s0+s].blocks[b].modal.z {
				zb[k*ns+s] = zk
			}
		}
	}
	// Left endpoints under the (possibly new) drives, exactly as Advance.
	for s := s0; s < sh.hi; s++ {
		inputs[s](members[s].Time(), members[s].uNow)
	}
	for i := 0; i < n; i++ {
		for s := s0; s < sh.hi; s++ {
			st := members[s]
			st.k++
			t := float64(st.k) * st.h
			results[s].T[i] = t
			inputs[s](t, st.uNext)
		}
		for b := range ref.blocks {
			if zb := sh.z[b]; zb != nil {
				mst := ref.blocks[b].modal
				port := mst.input
				for s := 0; s < ns; s++ {
					st := members[s0+s]
					sh.cu0[s] = complex(st.uNow[port], 0)
					sh.cu1[s] = complex(st.uNext[port], 0)
				}
				for k := range mst.expLH {
					e, f0, f1 := mst.expLH[k], mst.fNow[k], mst.fNxt[k]
					zrow := zb[k*ns : (k+1)*ns]
					for s := range zrow {
						zrow[s] = e*zrow[s] + sh.cu0[s]*f0 + sh.cu1[s]*f1
					}
				}
			} else {
				for s := s0; s < sh.hi; s++ {
					st := members[s]
					im := st.blocks[b].implicit
					im.step(st.uNow[im.input], st.uNext[im.input])
				}
			}
		}
		for s := s0; s < sh.hi; s++ {
			st := members[s]
			copy(st.uNow, st.uNext)
		}
		// Outputs: per session the accumulation order is block-ascending,
		// mode-ascending, row-ascending with the zₖ = 0 skip — the exact
		// order outputInto uses, so the sums round identically.
		for b := range ref.blocks {
			if zb := sh.z[b]; zb != nil {
				mst := ref.blocks[b].modal
				for k := range mst.expLH {
					row := mst.mb.R.Row(k)
					zrow := zb[k*ns : (k+1)*ns]
					for s := range zrow {
						zk := zrow[s]
						if zk == 0 {
							continue
						}
						y := results[s0+s].Y[i]
						for r := range y {
							y[r] += real(row[r] * zk)
						}
					}
				}
				if mst.mb.D != nil {
					port := mst.input
					for s := s0; s < sh.hi; s++ {
						if u := members[s].uNow[port]; u != 0 {
							y := results[s].Y[i]
							for r := range y {
								y[r] += real(mst.mb.D[r]) * u
							}
						}
					}
				}
			} else {
				for s := s0; s < sh.hi; s++ {
					members[s].blocks[b].implicit.addOutput(results[s].Y[i])
				}
			}
		}
	}
	// Scatter the advanced coordinates back into the members.
	for b := range ref.blocks {
		zb := sh.z[b]
		if zb == nil {
			continue
		}
		for s := 0; s < ns; s++ {
			z := members[s0+s].blocks[b].modal.z
			for k := range z {
				z[k] = zb[k*ns+s]
			}
		}
	}
}

// advanceGroupShardFused is the vectorized path for fully-modal groups: the
// per-mode coordinates and endpoint drives live in split real/imaginary
// float arrays with sessions innermost, and the mode-update and
// residue-accumulation inner loops run through the SIMD-dispatched kernels
// (kernels.go). Per session the operation sequence is the split-complex form
// of exactly what the scalar Stepper computes per step, accumulated in the
// same block/mode/row order, so the trajectories match independent advances
// (see the numerical contract in kernels.go: a dropped ±0·x term can flip a
// zero's sign but never a value).
//
//pgmor:noalloc
func advanceGroupShardFused(members []*Stepper, sh *groupShard, n int, inputs []Input, results []*Result) {
	s0 := sh.lo
	ns := sh.hi - sh.lo
	ref := members[s0]
	p := ref.p
	// Gather the per-mode coordinates into the split mode-major staging.
	for b := range ref.blocks {
		zrb, zib := sh.zr[b], sh.zi[b]
		for s := 0; s < ns; s++ {
			for k, zk := range members[s0+s].blocks[b].modal.z {
				zrb[k*ns+s] = real(zk)
				zib[k*ns+s] = imag(zk)
			}
		}
	}
	// Left endpoints under the (possibly new) drives, exactly as Advance.
	for s := s0; s < sh.hi; s++ {
		inputs[s](members[s].Time(), members[s].uNow) //pgmor:alloc caller-provided input callback; its allocation budget is the caller's
	}
	// Stage the left-endpoint drives port-major once; after each step the
	// staged right endpoint becomes the next left endpoint by buffer swap,
	// so steady state restages only one endpoint per step.
	for s := 0; s < ns; s++ {
		st := members[s0+s]
		for port, u := range st.uNow {
			sh.uNow[port*ns+s] = u
		}
	}
	for i := 0; i < n; i++ {
		for s := s0; s < sh.hi; s++ {
			st := members[s]
			st.k++
			t := float64(st.k) * st.h
			results[s].T[i] = t
			inputs[s](t, st.uNext) //pgmor:alloc caller-provided input callback; its allocation budget is the caller's
		}
		for s := 0; s < ns; s++ {
			st := members[s0+s]
			for port, u := range st.uNext {
				sh.uNxt[port*ns+s] = u
			}
		}
		for b := range ref.blocks {
			mst := ref.blocks[b].modal
			port := mst.input
			u0 := sh.uNow[port*ns : (port+1)*ns]
			u1 := sh.uNxt[port*ns : (port+1)*ns]
			zrb, zib := sh.zr[b], sh.zi[b]
			for k := range mst.expLH {
				e, f0, f1 := mst.expLH[k], mst.fNow[k], mst.fNxt[k]
				stepModes(zrb[k*ns:(k+1)*ns], zib[k*ns:(k+1)*ns], u0, u1,
					real(e), imag(e), real(f0), imag(f0), real(f1), imag(f1))
			}
		}
		for s := s0; s < sh.hi; s++ {
			st := members[s]
			copy(st.uNow, st.uNext)
		}
		// Outputs into the row-major batch: per session the accumulation
		// order is block-ascending, mode-ascending, row-ascending with the
		// direct term after each block's modes — the exact order outputInto
		// uses.
		yb := sh.ybatch
		clear(yb)
		for b := range ref.blocks {
			mst := ref.blocks[b].modal
			d := &sh.data[b]
			accumBlock(yb, sh.zr[b], sh.zi[b], d.rr, d.ri, len(mst.expLH), p, ns)
			if d.dre != nil {
				// uNow has been advanced to the right endpoint, i.e. the
				// staged uNxt row.
				u := sh.uNxt[mst.input*ns : (mst.input+1)*ns]
				for r := 0; r < p; r++ {
					dr := d.dre[r]
					yrow := yb[r*ns : (r+1)*ns]
					for s := range yrow {
						yrow[s] += dr * u[s]
					}
				}
			}
		}
		for s := 0; s < ns; s++ {
			y := results[s0+s].Y[i]
			for r := 0; r < p; r++ {
				y[r] = yb[r*ns+s]
			}
		}
		sh.uNow, sh.uNxt = sh.uNxt, sh.uNow
	}
	// Scatter the advanced coordinates back into the members.
	for b := range ref.blocks {
		zrb, zib := sh.zr[b], sh.zi[b]
		for s := 0; s < ns; s++ {
			z := members[s0+s].blocks[b].modal.z
			for k := range z {
				z[k] = complex(zrb[k*ns+s], zib[k*ns+s])
			}
		}
	}
}

// groupJob is one Advance handed to the persistent shard workers.
type groupJob struct {
	n       int
	inputs  []Input
	results []*Result
}

// groupPool runs one persistent goroutine per shard, signaled once per
// Advance — not per step, and not respawned per call.
type groupPool struct {
	start []chan groupJob
	done  chan struct{}
	quit  chan struct{}
	once  sync.Once
}

func (g *StepperGroup) ensurePool() {
	if g.pool != nil {
		return
	}
	pool := &groupPool{done: make(chan struct{}, len(g.shards)), quit: make(chan struct{})}
	members := g.members
	for _, sh := range g.shards {
		start := make(chan groupJob, 1)
		pool.start = append(pool.start, start)
		go func(sh *groupShard) {
			for {
				select {
				case <-pool.quit:
					return
				case job := <-start:
					advanceGroupShard(members, sh, job.n, job.inputs, job.results)
					pool.done <- struct{}{}
				}
			}
		}(sh)
	}
	g.pool = pool
	// Backstop for groups dropped without Close: the workers hold only the
	// member slice and shard buffers, so an unreachable group triggers the
	// cleanup and the goroutines exit.
	runtime.AddCleanup(g, func(p *groupPool) { p.close() }, pool)
}

func (p *groupPool) run(job groupJob) {
	for _, c := range p.start {
		c <- job
	}
	for range p.start {
		<-p.done
	}
}

func (p *groupPool) close() {
	p.once.Do(func() { close(p.quit) })
}
