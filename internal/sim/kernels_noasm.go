//go:build !amd64 || purego

package sim

func axpyReal(y, zr, zi []float64, a, c float64) {
	axpyRealRef(y, zr, zi, a, c)
}

func stepModes(zr, zi, u0, u1 []float64, er, ei, f0r, f0i, f1r, f1i float64) {
	stepModesRef(zr, zi, u0, u1, er, ei, f0r, f0i, f1r, f1i)
}

func accumBlock(yb, zr, zi, rr, ri []float64, q, p, ns int) {
	accumBlockRef(yb, zr, zi, rr, ri, q, p, ns)
}
