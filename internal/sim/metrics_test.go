package sim

import (
	"math"
	"testing"
)

func TestMetricsKnownWaveform(t *testing.T) {
	// Triangle 0→1→0 over [0,2]: peak 1 at t=1, RMS = sqrt(1/3).
	res := &Result{}
	for k := 0; k <= 200; k++ {
		tt := float64(k) / 100
		v := tt
		if tt > 1 {
			v = 2 - tt
		}
		res.T = append(res.T, tt)
		res.Y = append(res.Y, []float64{v, -2 * v})
	}
	m, err := res.Metrics(0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Peak-1) > 1e-12 || math.Abs(m.PeakTime-1) > 1e-12 {
		t.Errorf("peak %g at %g, want 1 at 1", m.Peak, m.PeakTime)
	}
	if math.Abs(m.RMS-math.Sqrt(1.0/3)) > 1e-3 {
		t.Errorf("RMS %g, want %g", m.RMS, math.Sqrt(1.0/3))
	}
	if math.Abs(m.Final) > 1e-12 {
		t.Errorf("final %g, want 0", m.Final)
	}
	// Settle: last excursion beyond 2% of peak around final (0) is near t≈1.98.
	if m.Settle < 1.9 || m.Settle > 2 {
		t.Errorf("settle %g, want ≈1.98", m.Settle)
	}
	// Worst case must pick channel 1 (peak 2).
	j, wm, err := res.WorstCase(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 || math.Abs(wm.Peak-2) > 1e-12 {
		t.Errorf("worst channel %d peak %g, want 1 / 2", j, wm.Peak)
	}
}

func TestMetricsErrors(t *testing.T) {
	empty := &Result{}
	if _, err := empty.Metrics(0, 0.1); err == nil {
		t.Error("empty result accepted")
	}
	if _, _, err := empty.WorstCase(0.1); err == nil {
		t.Error("empty worst case accepted")
	}
	res := &Result{T: []float64{0}, Y: [][]float64{{1}}}
	if _, err := res.Metrics(5, 0.1); err == nil {
		t.Error("out-of-range channel accepted")
	}
}
