//go:build amd64 && !purego

#include "textflag.h"

// func axpyRealAVX2(y, zr, zi []float64, a, c float64)
// y[i] += zr[i]*a - zi[i]*c, 256-bit lanes, strict mul/mul/sub/add order —
// the per-lane sequence of the Go reference, no FMA contraction.
TEXT ·axpyRealAVX2(SB), NOSPLIT, $0-88
	MOVQ y_base+0(FP), DI
	MOVQ y_len+8(FP), CX
	MOVQ zr_base+24(FP), SI
	MOVQ zi_base+48(FP), DX
	VBROADCASTSD a+72(FP), Y0
	VBROADCASTSD c+80(FP), Y1
	XORQ AX, AX

axpy_blk8:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $8
	JL   axpy_blk4
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD (DX)(AX*8), Y3
	VMOVUPD 32(DX)(AX*8), Y6
	VMULPD  Y0, Y2, Y2
	VMULPD  Y0, Y5, Y5
	VMULPD  Y1, Y3, Y3
	VMULPD  Y1, Y6, Y6
	VSUBPD  Y3, Y2, Y2
	VSUBPD  Y6, Y5, Y5
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y7
	VADDPD  Y2, Y4, Y4
	VADDPD  Y5, Y7, Y7
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y7, 32(DI)(AX*8)
	ADDQ    $8, AX
	JMP     axpy_blk8

axpy_blk4:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JL   axpy_tail
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DX)(AX*8), Y3
	VMULPD  Y0, Y2, Y2
	VMULPD  Y1, Y3, Y3
	VSUBPD  Y3, Y2, Y2
	VMOVUPD (DI)(AX*8), Y4
	VADDPD  Y2, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX

axpy_tail:
	CMPQ AX, CX
	JGE  axpy_done
	VMOVSD (SI)(AX*8), X2
	VMOVSD (DX)(AX*8), X3
	VMULSD X0, X2, X2
	VMULSD X1, X3, X3
	VSUBSD X3, X2, X2
	VMOVSD (DI)(AX*8), X4
	VADDSD X2, X4, X4
	VMOVSD X4, (DI)(AX*8)
	INCQ   AX
	JMP    axpy_tail

axpy_done:
	VZEROUPPER
	RET

// func stepModesAVX2(zr, zi, u0, u1 []float64, er, ei, f0r, f0i, f1r, f1i float64)
// zr' = ((er*zr - ei*zi) + u0*f0r) + u1*f1r
// zi' = ((er*zi + ei*zr) + u0*f0i) + u1*f1i
TEXT ·stepModesAVX2(SB), NOSPLIT, $0-144
	MOVQ zr_base+0(FP), DI
	MOVQ zr_len+8(FP), CX
	MOVQ zi_base+24(FP), SI
	MOVQ u0_base+48(FP), DX
	MOVQ u1_base+72(FP), R8
	VBROADCASTSD er+96(FP), Y10
	VBROADCASTSD ei+104(FP), Y11
	VBROADCASTSD f0r+112(FP), Y12
	VBROADCASTSD f0i+120(FP), Y13
	VBROADCASTSD f1r+128(FP), Y14
	VBROADCASTSD f1i+136(FP), Y15
	XORQ AX, AX

step_blk4:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JL   step_tail
	VMOVUPD (DI)(AX*8), Y2  // a = zr
	VMOVUPD (SI)(AX*8), Y3  // b = zi
	VMOVUPD (DX)(AX*8), Y4  // u0
	VMOVUPD (R8)(AX*8), Y5  // u1
	VMULPD  Y10, Y2, Y6     // er*a
	VMULPD  Y11, Y3, Y7     // ei*b
	VSUBPD  Y7, Y6, Y6
	VMULPD  Y12, Y4, Y7     // u0*f0r
	VADDPD  Y7, Y6, Y6
	VMULPD  Y14, Y5, Y7     // u1*f1r
	VADDPD  Y7, Y6, Y6      // tr
	VMULPD  Y10, Y3, Y8     // er*b
	VMULPD  Y11, Y2, Y9     // ei*a
	VADDPD  Y9, Y8, Y8
	VMULPD  Y13, Y4, Y9     // u0*f0i
	VADDPD  Y9, Y8, Y8
	VMULPD  Y15, Y5, Y9     // u1*f1i
	VADDPD  Y9, Y8, Y8      // ti
	VMOVUPD Y6, (DI)(AX*8)
	VMOVUPD Y8, (SI)(AX*8)
	ADDQ    $4, AX
	JMP     step_blk4

step_tail:
	CMPQ AX, CX
	JGE  step_done
	VMOVSD (DI)(AX*8), X2
	VMOVSD (SI)(AX*8), X3
	VMOVSD (DX)(AX*8), X4
	VMOVSD (R8)(AX*8), X5
	VMULSD X10, X2, X6
	VMULSD X11, X3, X7
	VSUBSD X7, X6, X6
	VMULSD X12, X4, X7
	VADDSD X7, X6, X6
	VMULSD X14, X5, X7
	VADDSD X7, X6, X6
	VMULSD X10, X3, X8
	VMULSD X11, X2, X9
	VADDSD X9, X8, X8
	VMULSD X13, X4, X9
	VADDSD X9, X8, X8
	VMULSD X15, X5, X9
	VADDSD X9, X8, X8
	VMOVSD X6, (DI)(AX*8)
	VMOVSD X8, (SI)(AX*8)
	INCQ   AX
	JMP    step_tail

step_done:
	VZEROUPPER
	RET

// func accumBlockAVX2(yb, zr, zi, rr, ri []float64, q, p, ns int)
// for k < q, r < p: yb[r*ns:] += zr[k*ns:]*rr[k*p+r] - zi[k*ns:]*ri[k*p+r]
// Same per-lane op order as axpyRealAVX2, with the (mode, row) loops fused
// into the one call. Caller guarantees the slices cover q·ns / p·ns / q·p.
TEXT ·accumBlockAVX2(SB), NOSPLIT, $0-144
	MOVQ yb_base+0(FP), R9
	MOVQ zr_base+24(FP), SI
	MOVQ zi_base+48(FP), DX
	MOVQ rr_base+72(FP), R10
	MOVQ ri_base+96(FP), R11
	MOVQ q+120(FP), R12
	MOVQ ns+136(FP), CX

accum_k:
	TESTQ R12, R12
	JZ    accum_done
	MOVQ  R9, DI           // y row = yb
	MOVQ  p+128(FP), R13

accum_r:
	TESTQ R13, R13
	JZ    accum_k_next
	VBROADCASTSD (R10), Y0 // rr[k*p+r]
	VBROADCASTSD (R11), Y1 // ri[k*p+r]
	XORQ  AX, AX

accum_blk8:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $8
	JL   accum_blk4
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD (DX)(AX*8), Y3
	VMOVUPD 32(DX)(AX*8), Y6
	VMULPD  Y0, Y2, Y2
	VMULPD  Y0, Y5, Y5
	VMULPD  Y1, Y3, Y3
	VMULPD  Y1, Y6, Y6
	VSUBPD  Y3, Y2, Y2
	VSUBPD  Y6, Y5, Y5
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y7
	VADDPD  Y2, Y4, Y4
	VADDPD  Y5, Y7, Y7
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y7, 32(DI)(AX*8)
	ADDQ    $8, AX
	JMP     accum_blk8

accum_blk4:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JL   accum_tail
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DX)(AX*8), Y3
	VMULPD  Y0, Y2, Y2
	VMULPD  Y1, Y3, Y3
	VSUBPD  Y3, Y2, Y2
	VMOVUPD (DI)(AX*8), Y4
	VADDPD  Y2, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX

accum_tail:
	CMPQ AX, CX
	JGE  accum_r_next
	VMOVSD (SI)(AX*8), X2
	VMOVSD (DX)(AX*8), X3
	VMULSD X0, X2, X2
	VMULSD X1, X3, X3
	VSUBSD X3, X2, X2
	VMOVSD (DI)(AX*8), X4
	VADDSD X2, X4, X4
	VMOVSD X4, (DI)(AX*8)
	INCQ   AX
	JMP    accum_tail

accum_r_next:
	ADDQ $8, R10           // next residue entry
	ADDQ $8, R11
	LEAQ (DI)(CX*8), DI    // next output row
	DECQ R13
	JMP  accum_r

accum_k_next:
	LEAQ (SI)(CX*8), SI    // next mode row of zr/zi
	LEAQ (DX)(CX*8), DX
	DECQ R12
	JMP  accum_k

accum_done:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
