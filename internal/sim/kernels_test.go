package sim

import (
	"math/rand"
	"testing"
)

// TestKernelsMatchReference: the dispatched (possibly vectorized) kernels
// must produce exactly the reference results at every length, including odd
// tails.
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fill := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 100, 256} {
		a, c := rng.NormFloat64(), rng.NormFloat64()
		zr, zi := fill(n), fill(n)
		yGot, yWant := fill(n), []float64(nil)
		yWant = append(yWant, yGot...)
		axpyReal(yGot, zr, zi, a, c)
		axpyRealRef(yWant, zr, zi, a, c)
		for i := range yWant {
			if yGot[i] != yWant[i] {
				t.Fatalf("axpyReal n=%d i=%d: %v != %v", n, i, yGot[i], yWant[i])
			}
		}

		er, ei := rng.NormFloat64(), rng.NormFloat64()
		f0r, f0i := rng.NormFloat64(), rng.NormFloat64()
		f1r, f1i := rng.NormFloat64(), rng.NormFloat64()
		u0, u1 := fill(n), fill(n)
		zrGot, ziGot := fill(n), fill(n)
		zrWant := append([]float64(nil), zrGot...)
		ziWant := append([]float64(nil), ziGot...)
		stepModes(zrGot, ziGot, u0, u1, er, ei, f0r, f0i, f1r, f1i)
		stepModesRef(zrWant, ziWant, u0, u1, er, ei, f0r, f0i, f1r, f1i)
		for i := range zrWant {
			if zrGot[i] != zrWant[i] || ziGot[i] != ziWant[i] {
				t.Fatalf("stepModes n=%d i=%d: (%v,%v) != (%v,%v)", n, i, zrGot[i], ziGot[i], zrWant[i], ziWant[i])
			}
		}
	}

	// accumBlock over varied block shapes, including vector tails in ns.
	for _, shape := range []struct{ q, p, ns int }{
		{0, 3, 8}, {1, 1, 1}, {2, 3, 3}, {3, 2, 4}, {4, 5, 5},
		{6, 4, 7}, {6, 4, 8}, {5, 3, 9}, {7, 2, 15}, {6, 12, 17},
		{12, 12, 64}, {3, 7, 100}, {6, 12, 256},
	} {
		q, p, ns := shape.q, shape.p, shape.ns
		zr, zi := fill(q*ns), fill(q*ns)
		rr, ri := fill(q*p), fill(q*p)
		ybGot := fill(p * ns)
		ybWant := append([]float64(nil), ybGot...)
		accumBlock(ybGot, zr, zi, rr, ri, q, p, ns)
		accumBlockRef(ybWant, zr, zi, rr, ri, q, p, ns)
		for i := range ybWant {
			if ybGot[i] != ybWant[i] {
				t.Fatalf("accumBlock q=%d p=%d ns=%d i=%d: %v != %v", q, p, ns, i, ybGot[i], ybWant[i])
			}
		}
	}
}
