package sim

import "testing"

// TestKernelDispatchAllocs: the amd64 dispatch wrappers (AVX2 or reference,
// whichever this CPU selects) are allocation-free.
//
//pgmor:alloctest axpyReal
//pgmor:alloctest stepModes
//pgmor:alloctest accumBlock
func TestKernelDispatchAllocs(t *testing.T) {
	y, zr, zi, rr, ri, u0, u1 := kernelVectors()
	const q, p, ns = 2, 3, 8
	cases := map[string]func(){
		"axpyReal":   func() { axpyReal(y[:ns], zr[:ns], zi[:ns], 1.5, -0.5) },
		"accumBlock": func() { accumBlock(y, zr, zi, rr, ri, q, p, ns) },
		"stepModes": func() {
			stepModes(zr[:ns], zi[:ns], u0, u1, 0.9, 0.1, 0.01, 0.02, 0.03, 0.04)
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, allocs)
		}
	}
}
