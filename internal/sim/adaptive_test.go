package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/lti"
)

// scalarRCDense builds the 1-state RC ROM directly in dense form.
func scalarRCDense(t *testing.T, r, c float64) *lti.DenseSystem {
	t.Helper()
	cm := dense.NewMat[float64](1, 1)
	cm.Set(0, 0, c)
	gm := dense.NewMat[float64](1, 1)
	gm.Set(0, 0, -1/r)
	bm := dense.NewMat[float64](1, 1)
	bm.Set(0, 0, 1)
	lm := dense.NewMat[float64](1, 1)
	lm.Set(0, 0, 1)
	d, err := lti.NewDenseSystem(cm, gm, bm, lm)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAdaptiveRCMatchesAnalytic(t *testing.T) {
	r, c := 100.0, 1e-9
	d := scalarRCDense(t, r, c)
	tau := r * c
	res, err := SimulateDenseAdaptive(d, AdaptiveOptions{
		T:     5 * tau,
		Tol:   1e-6,
		Input: UniformInput(DC(1e-3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, tt := range res.T {
		want := r * 1e-3 * (1 - math.Exp(-tt/tau))
		if want > 1e-6 {
			if rel := math.Abs(res.Y[k][0]-want) / want; rel > 1e-3 {
				t.Fatalf("t=%g: rel err %.3e", tt, rel)
			}
		}
	}
	if res.MinStep <= 0 || res.MaxStep < res.MinStep {
		t.Errorf("step telemetry broken: min %g max %g", res.MinStep, res.MaxStep)
	}
}

func TestAdaptiveGrowsStepOnPlateau(t *testing.T) {
	// After the transient settles (t ≫ τ), the controller should take much
	// larger steps than during the initial edge.
	r, c := 100.0, 1e-9
	d := scalarRCDense(t, r, c)
	tau := r * c
	res, err := SimulateDenseAdaptive(d, AdaptiveOptions{
		T:     100 * tau,
		Tol:   1e-5,
		HInit: tau / 100,
		Input: UniformInput(Step{Amplitude: 1e-3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxStep < 20*res.MinStep {
		t.Errorf("controller did not grow the step: min %g max %g", res.MinStep, res.MaxStep)
	}
	// Far fewer steps than fixed-step at the same accuracy would need.
	if len(res.T) > 2000 {
		t.Errorf("adaptive run took %d steps on a plateau signal", len(res.T))
	}
}

func TestAdaptiveBlockDiagMatchesFixedStep(t *testing.T) {
	sys := gridSystem(t)
	rom, err := core.Reduce(sys, core.Options{Moments: 4})
	if err != nil {
		t.Fatal(err)
	}
	input := UniformInput(Pulse{Low: 0, High: 1e-3, Delay: 1e-10, Rise: 1e-10,
		Width: 5e-10, Fall: 1e-10, Period: 1})
	adaptive, err := SimulateBlockDiagAdaptive(rom, AdaptiveOptions{
		T: 2e-9, Tol: 1e-7, HInit: 1e-12, Input: input,
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := SimulateBlockDiag(rom, TransientOptions{
		Method: Trapezoidal, Dt: 1e-12, T: 2e-9, Input: input,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the adaptive samples against linear interpolation of the
	// (fine) fixed-step reference.
	scale := 0.0
	for k := range fixed.Y {
		for _, v := range fixed.Y[k] {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
	}
	for k, tt := range adaptive.T {
		idx := int(tt / 1e-12)
		if idx+1 >= len(fixed.T) {
			break
		}
		frac := (tt - fixed.T[idx]) / 1e-12
		for j := range adaptive.Y[k] {
			ref := fixed.Y[idx][j]*(1-frac) + fixed.Y[idx+1][j]*frac
			if math.Abs(adaptive.Y[k][j]-ref) > 0.02*scale+1e-9 {
				t.Fatalf("t=%g output %d: adaptive %g vs fixed %g", tt, j, adaptive.Y[k][j], ref)
			}
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	d := scalarRCDense(t, 1, 1)
	if _, err := SimulateDenseAdaptive(d, AdaptiveOptions{T: 0, Input: UniformInput(DC(1))}); err == nil {
		t.Error("zero T accepted")
	}
	if _, err := SimulateDenseAdaptive(d, AdaptiveOptions{T: 1}); err == nil {
		t.Error("nil input accepted")
	}
}
