package sim

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// Method selects the fixed-step integration rule.
type Method int

const (
	// BackwardEuler is L-stable first order — robust default for stiff
	// power-grid models.
	BackwardEuler Method = iota
	// Trapezoidal is A-stable second order — more accurate for smooth
	// waveforms at equal step.
	Trapezoidal
)

func (m Method) String() string {
	switch m {
	case BackwardEuler:
		return "be"
	case Trapezoidal:
		return "trap"
	}
	return "unknown"
}

// TransientOptions configures a fixed-step transient run of
// C dx/dt = G x + B u from x(0) = 0.
type TransientOptions struct {
	// Method is the integration rule. Default BackwardEuler.
	Method Method
	// Dt is the fixed time step (required, > 0).
	Dt float64
	// T is the end time (required, > 0); steps = round(T/Dt).
	T float64
	// Input drives the ports (required).
	Input Input
	// Workers parallelizes per-block solves for block-diagonal ROMs;
	// 0 means serial. Ignored by the other simulators.
	Workers int
}

func (o *TransientOptions) Validate() error {
	if o.Dt <= 0 || o.T <= 0 {
		return fmt.Errorf("sim: Dt and T must be positive, got %g, %g", o.Dt, o.T)
	}
	if o.Input == nil {
		return fmt.Errorf("sim: Input waveform is required")
	}
	return nil
}

// Result holds a transient waveform: Y[k] are the outputs at T[k].
type Result struct {
	T []float64
	Y [][]float64
}

// Steps computes the fixed step count of the run.
func (o *TransientOptions) Steps() int {
	n := int(o.T/o.Dt + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// integration constants: the step equation for C x' = G x + B u is
//
//	(C - β·h·G) x_{k+1} = (C + (h-β·h)·G) x_k + h·[β·B·u_{k+1} + (1-β)·B·u_k]
//
// with β = 1 (BE) or β = 1/2 (trapezoidal); see methodBeta.
func (o *TransientOptions) beta() float64 { return methodBeta(o.Method) }

// SimulateSparse integrates the full sparse descriptor model with one sparse
// LU factorization of (C - β·h·G) and one solve per step.
func SimulateSparse(sys *lti.SparseSystem, opts TransientOptions) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n, m, _ := sys.Dims()
	h, beta := opts.Dt, opts.beta()
	lhs := sys.C.Add(1, sys.G, -beta*h).ToCSC()
	lu, err := sparse.FactorLU(lhs, sparse.LUOptions{})
	if err != nil {
		return nil, fmt.Errorf("sim: transient pencil singular (C - βhG): %w", err)
	}
	rhsMat := sys.C.Add(1, sys.G, (1-beta)*h)

	x := make([]float64, n)
	rhs := make([]float64, n)
	w := make([]float64, n)
	uNow := make([]float64, m)
	uNext := make([]float64, m)
	bu := make([]float64, n)
	steps := opts.Steps()
	res := &Result{T: make([]float64, 0, steps+1), Y: make([][]float64, 0, steps+1)}
	record := func(t float64) {
		res.T = append(res.T, t)
		res.Y = append(res.Y, sys.ApplyL(x))
	}
	opts.Input(0, uNow)
	record(0)
	bcsr := sys.B.ToCSR()
	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		opts.Input(t, uNext)
		rhsMat.MatVec(rhs, x)
		// rhs += h·(β·B·u_{k+1} + (1-β)·B·u_k)
		for i := range bu {
			bu[i] = 0
		}
		for j := 0; j < m; j++ {
			c := h * (beta*uNext[j] + (1-beta)*uNow[j])
			if c == 0 {
				continue
			}
			for p := sys.B.ColPtr[j]; p < sys.B.ColPtr[j+1]; p++ {
				bu[sys.B.RowIdx[p]] += sys.B.Val[p] * c
			}
		}
		sparse.Axpy(rhs, 1, bu)
		lu.SolveBuf(x, rhs, w)
		record(t)
		copy(uNow, uNext)
	}
	_ = bcsr
	return res, nil
}

// SimulateDense integrates a dense descriptor ROM with one dense LU
// factorization and an O(q²) solve per step — the O(m³l³)-flavored cost the
// paper attributes to PRIMA ROM simulation.
func SimulateDense(d *lti.DenseSystem, opts TransientOptions) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	q, m, _ := d.Dims()
	h, beta := opts.Dt, opts.beta()
	lhs := d.C.Clone().Add(d.G.Clone().Scale(-beta * h))
	lu, err := dense.FactorLU(lhs)
	if err != nil {
		return nil, fmt.Errorf("sim: ROM transient pencil singular: %w", err)
	}
	rhsMat := d.C.Clone().Add(d.G.Clone().Scale((1 - beta) * h))

	x := make([]float64, q)
	rhs := make([]float64, q)
	uNow := make([]float64, m)
	uNext := make([]float64, m)
	bu := make([]float64, q)
	uw := make([]float64, m)
	steps := opts.Steps()
	res := &Result{T: make([]float64, 0, steps+1), Y: make([][]float64, 0, steps+1)}
	opts.Input(0, uNow)
	res.T = append(res.T, 0)
	res.Y = append(res.Y, d.ApplyOutput(x))
	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		opts.Input(t, uNext)
		for i := 0; i < q; i++ {
			rhs[i] = sparse.Dot(rhsMat.Row(i), x)
		}
		for j := 0; j < m; j++ {
			uw[j] = h * (beta*uNext[j] + (1-beta)*uNow[j])
		}
		d.ApplyInput(bu, uw)
		sparse.Axpy(rhs, 1, bu)
		if err := lu.Solve(x, rhs); err != nil {
			return nil, err
		}
		res.T = append(res.T, t)
		res.Y = append(res.Y, d.ApplyOutput(x))
		copy(uNow, uNext)
	}
	return res, nil
}

// implicitBlockState is the per-block fixed-step implicit integrator state
// shared by SimulateBlockDiag and (for non-modal fallback blocks)
// SimulateModal: one LU of (C − βhG) per run, one O(l²) solve per step.
type implicitBlockState struct {
	lu      *dense.LU[float64]
	rhsMat  *dense.Mat[float64]
	x, rhs  []float64
	b       []float64 // input vector
	l       *dense.Mat[float64]
	input   int
	h, beta float64
}

func newImplicitBlockState(blk *lti.Block, h, beta float64) (*implicitBlockState, error) {
	lhs := blk.C.Clone().Add(blk.G.Clone().Scale(-beta * h))
	lu, err := dense.FactorLU(lhs)
	if err != nil {
		return nil, fmt.Errorf("sim: transient pencil singular: %w", err)
	}
	lsz := blk.Order()
	return &implicitBlockState{
		lu:     lu,
		rhsMat: blk.C.Clone().Add(blk.G.Clone().Scale((1 - beta) * h)),
		x:      make([]float64, lsz),
		rhs:    make([]float64, lsz),
		b:      blk.B,
		l:      blk.L,
		input:  blk.Input,
		h:      h,
		beta:   beta,
	}, nil
}

// step advances one implicit step with endpoint inputs u0, u1.
func (st *implicitBlockState) step(u0, u1 float64) {
	for i := range st.rhs {
		st.rhs[i] = sparse.Dot(st.rhsMat.Row(i), st.x)
	}
	c := st.h * (st.beta*u1 + (1-st.beta)*u0)
	for i := range st.rhs {
		st.rhs[i] += c * st.b[i]
	}
	// Factored solve never fails after successful factorization.
	_ = st.lu.Solve(st.x, st.rhs)
}

// addOutput accumulates y += L·x.
func (st *implicitBlockState) addOutput(y []float64) {
	for r := range y {
		y[r] += sparse.Dot(st.l.Row(r), st.x)
	}
}

// SimulateBlockDiag integrates a BDSM block-diagonal ROM: each l×l block is
// factored once and solved independently per step, at O(m·l²) per step
// versus O(m²l²) for the dense ROM. With Workers > 1 the blocks are sharded
// across goroutines — the parallelism the block-diagonal structure buys.
func SimulateBlockDiag(bd *lti.BlockDiagSystem, opts TransientOptions) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	st, err := NewImplicitStepper(bd, StepperOptions{Method: opts.Method, Dt: opts.Dt, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	return runStepper(st, opts)
}

// runStepper drives a freshly built Stepper through one complete transient:
// the t = 0 row, then every remaining step in a single Advance.
func runStepper(st *Stepper, opts TransientOptions) (*Result, error) {
	defer st.Close()
	steps := opts.Steps()
	res := &Result{T: make([]float64, 0, steps+1), Y: make([][]float64, 0, steps+1)}
	y0, err := st.Output(opts.Input)
	if err != nil {
		return nil, err
	}
	res.T = append(res.T, 0)
	res.Y = append(res.Y, y0)
	chunk, err := st.Advance(steps, opts.Input)
	if err != nil {
		return nil, err
	}
	res.T = append(res.T, chunk.T...)
	res.Y = append(res.Y, chunk.Y...)
	return res, nil
}
