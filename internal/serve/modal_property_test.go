package serve

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
)

// TestModalMatchesFactoredAcrossBenchmarks is the acceptance property: on
// every shipped grid benchmark (RLC and RC-only), the modal evaluation must
// agree with the factored (LU) evaluation to ≤1e-9 relative error over the
// standard log frequency grid, with blocks that fail modal preconditions
// transparently falling back to LU.
func TestModalMatchesFactoredAcrossBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every benchmark")
	}
	repo := NewRepository(0)
	for _, name := range grid.Names() {
		for _, rcOnly := range []bool{false, true} {
			name, rcOnly := name, rcOnly
			label := name
			if rcOnly {
				label += "-rc"
			}
			t.Run(label, func(t *testing.T) {
				scale := 0.05
				if name == grid.Ckt1 {
					scale = 0.15 // ckt1 is small; keep a few dozen ports
				}
				m, _, err := repo.Get(ModelKey{Benchmark: name, Scale: scale, RCOnly: rcOnly})
				if err != nil {
					t.Fatalf("building %s: %v", label, err)
				}
				ms, err := m.ROM.Modalize()
				if err != nil {
					t.Fatalf("Modalize: %v", err)
				}
				modal, fb := ms.ModalCount()
				t.Logf("%s: %d modal blocks, %d fallback", label, modal, fb)
				if modal == 0 {
					t.Errorf("%s: no block modalized", label)
				}
				omegas, err := sim.LogGrid(DefaultWMin, DefaultWMax, 25)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range omegas {
					s := complex(0, w)
					want, err := m.ROM.Eval(s)
					if err != nil {
						t.Fatalf("factored Eval(ω=%g): %v", w, err)
					}
					got, err := ms.Eval(s)
					if err != nil {
						t.Fatalf("modal Eval(ω=%g): %v", w, err)
					}
					var num, den float64
					for i := range want.Data {
						d := got.Data[i] - want.Data[i]
						num += real(d)*real(d) + imag(d)*imag(d)
						v := want.Data[i]
						den += real(v)*real(v) + imag(v)*imag(v)
					}
					if den == 0 {
						den = 1
					}
					if rel := math.Sqrt(num / den); rel > 1e-9 {
						t.Fatalf("%s ω=%g: modal vs factored relative error %.3e > 1e-9", label, w, rel)
					}
				}
			})
		}
	}
}
