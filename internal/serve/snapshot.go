// Session snapshot + resume: what makes a replica's transient sessions
// survivable.
//
// A session's only unrecoverable state is its integrator position — the ROM
// itself is already in the content-addressed store. Persisting a
// sim.StepperState frame through the same store after every K completed
// advances (Config.SnapshotEvery) and on shutdown drain means any replica
// sharing the store directory can re-create the session under its original
// identity and continue the integration bit-exactly. With SnapshotEvery=1 the
// persisted state always matches the last advance the client saw complete, so
// a router can fail a session over to another replica with no client-visible
// position loss.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
)

// snapshotSession persists sess's integrator state through the store. The
// caller must hold sess.mu, so the stepper is quiescent and the snapshot is
// exactly the state the last completed advance left behind.
func (s *Server) snapshotSession(sess *Session) error {
	if s.cfg.Store == nil {
		return errors.New("serve: no persistent store attached")
	}
	snap := sess.stepper.Snapshot()
	payload, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	keyJSON, err := json.Marshal(sess.model.Key)
	if err != nil {
		return err
	}
	return s.cfg.Store.PutSnapshot(store.SnapshotMeta{
		SessionID: sess.ID,
		ModelID:   sess.model.ID,
		ModelKey:  keyJSON,
		Dt:        sess.dt,
		Method:    sess.method.String(),
		Step:      int64(snap.Step),
		Emitted0:  sess.emitted0,
		Advances:  sess.advances.Load(),
		Deadline:  sess.deadline,
		Created:   sess.created,
		Saved:     time.Now().UTC(),
	}, payload)
}

// maybeSnapshotSession applies the periodic snapshot policy after a completed
// advance (sess.mu held): every SnapshotEvery-th advance persists the state.
// Failures are counted, logged, and otherwise ignored — a broken disk must
// not fail the advance that already streamed successfully.
func (s *Server) maybeSnapshotSession(sess *Session) {
	every := s.cfg.SnapshotEvery
	if every <= 0 || s.cfg.Store == nil {
		return
	}
	if sess.advances.Load()%int64(every) != 0 {
		return
	}
	if err := s.snapshotSession(sess); err != nil {
		s.sessions.snapErrors.Add(1)
		s.log.Warn("session snapshot failed", "session", sess.ID, "err", err)
		return
	}
	s.sessions.snapSaved.Add(1)
}

// SnapshotSessions persists every live session's state — the drain hook: the
// daemon calls it after the listener stops (no advance can race) so each
// session can resume on a surviving replica. Returns how many sessions were
// persisted. Blocking Lock is correct here: an in-flight advance holds the
// lock only until its streaming run ends, and during a drain the HTTP server
// has already stopped accepting the next one.
func (s *Server) SnapshotSessions() int {
	if s.cfg.Store == nil {
		return 0
	}
	n := 0
	for _, sess := range s.sessions.live() {
		sess.mu.Lock()
		if sess.closed.Load() {
			sess.mu.Unlock()
			continue
		}
		err := s.snapshotSession(sess)
		sess.mu.Unlock()
		if err != nil {
			s.sessions.snapErrors.Add(1)
			s.log.Warn("drain snapshot failed", "session", sess.ID, "err", err)
			continue
		}
		s.sessions.snapSaved.Add(1)
		n++
	}
	return n
}

// handleSessionResume re-creates a session from its persisted snapshot under
// its original identity (id, creation time, TTL deadline — a resume must not
// extend the session's promised lifetime). step > 0 demands the state at
// exactly that integration step (either retained generation); a session
// whose snapshots exist but don't include that step answers 409, telling a
// router the session is alive but not replayable from there. Other unusable
// snapshots — missing, expired, corrupt payload, vanished model,
// incompatible state — all surface as 404: the client's recovery is the same
// in every case, open a fresh session. The session-capacity check already
// ran in handleSessionCreate.
func (s *Server) handleSessionResume(w http.ResponseWriter, r *http.Request, id string, step int64) {
	if s.cfg.Store == nil {
		writeErr(w, r, badRequest("session resume requires a persistent store"))
		return
	}
	notFound := func(format string, args ...any) {
		writeErr(w, r, &httpError{code: http.StatusNotFound, err: fmt.Errorf(format, args...)})
	}
	var meta store.SnapshotMeta
	var payload []byte
	var err error
	if step > 0 {
		meta, payload, err = s.cfg.Store.GetSnapshotAt(id, step)
		if errors.Is(err, store.ErrNoSnapshotAtStep) {
			writeErr(w, r, &httpError{code: http.StatusConflict, err: err})
			return
		}
	} else {
		meta, payload, err = s.cfg.Store.GetSnapshot(id)
	}
	if err != nil {
		notFound("no resumable snapshot for session %q: %v", id, err)
		return
	}
	now := time.Now()
	if now.After(meta.Deadline) {
		s.cfg.Store.DeleteSnapshot(id)
		notFound("session %q expired at %s", id, meta.Deadline.Format(time.RFC3339))
		return
	}
	state, err := sim.UnmarshalStepperState(payload)
	if err != nil {
		notFound("snapshot for session %q is unusable: %v", id, err)
		return
	}
	key, ok := keyFromMeta(meta.ModelKey, meta.ModelID)
	if !ok {
		notFound("snapshot for session %q names an invalid model key", id)
		return
	}
	m, _, err := s.repo.Get(key)
	switch {
	case errors.Is(err, ErrRepositoryFull):
		writeErr(w, r, overloaded(RetryAfterRepoFull, err))
		return
	case err != nil:
		writeErr(w, r, err)
		return
	}
	noteModel(r, m)
	method, err := parseMethod(meta.Method)
	if err != nil {
		notFound("snapshot for session %q has unknown method %q", id, meta.Method)
		return
	}
	st, err := s.ev.Stepper(m, method, meta.Dt)
	if err != nil {
		writeErr(w, r, err) // integrator pencil failure: server-side, 500
		return
	}
	if err := st.Restore(state); err != nil {
		notFound("snapshot for session %q does not fit model %s: %v", id, m.ID, err)
		return
	}
	sess := &Session{
		ID:       meta.SessionID,
		model:    m,
		dt:       meta.Dt,
		method:   method,
		stepper:  st,
		emitted0: meta.Emitted0,
		created:  meta.Created,
		deadline: meta.Deadline,
	}
	sess.steps.Store(meta.Step)
	sess.advances.Store(meta.Advances)
	sess.touch(now)
	if err := s.sessions.Adopt(sess); err != nil {
		if errors.Is(err, ErrSessionLimit) {
			writeErr(w, r, overloaded(RetryAfterSessionLimit, err))
		} else {
			writeErr(w, r, &httpError{code: http.StatusConflict, err: err})
		}
		return
	}
	writeJSON(w, s.sessionInfo(sess))
}
