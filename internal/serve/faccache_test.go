package serve

import (
	"testing"

	"repro/internal/dense"
	"repro/internal/lti"
)

func testModel(t testing.TB, scale float64) *Model {
	t.Helper()
	m, _, err := NewRepository(0).Get(ModelKey{Benchmark: "ckt1", Scale: scale})
	if err != nil {
		t.Fatalf("building test model: %v", err)
	}
	return m
}

func TestFactorCacheHit(t *testing.T) {
	m := testModel(t, 0.1)
	c := NewFactorCache(0)
	s := complex(0, 1e9)

	f1, hit, err := c.GetOrFactor(m.ID, m.ROM, s)
	if err != nil {
		t.Fatalf("first GetOrFactor: %v", err)
	}
	if hit {
		t.Fatalf("first access reported a hit")
	}
	f2, hit, err := c.GetOrFactor(m.ID, m.ROM, s)
	if err != nil {
		t.Fatalf("second GetOrFactor: %v", err)
	}
	if !hit {
		t.Fatalf("second access reported a miss")
	}
	if f1 != f2 {
		t.Fatalf("cache returned distinct factorizations for the same key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("resident factors report %d bytes", st.Bytes)
	}
	if st.BudgetBytes < DefaultCacheBytes {
		t.Fatalf("budget = %d, want ≥ default %d", st.BudgetBytes, DefaultCacheBytes)
	}
	if st.Bytes != f1.MemBytes() {
		t.Fatalf("accounted %d bytes, resident factors occupy %d", st.Bytes, f1.MemBytes())
	}

	// Distinct models must not share entries even at equal frequency.
	if _, hit, _ := c.GetOrFactor(m.ID+"-other", m.ROM, s); hit {
		t.Fatalf("different model id hit the same cache entry")
	}
}

func TestFactorCacheColumnEntries(t *testing.T) {
	m := testModel(t, 0.1)
	c := NewFactorCache(0)
	s := complex(0, 1e9)

	fc, hit, err := c.GetOrFactorColumn(m.ID, m.ROM, s, 0)
	if err != nil || hit {
		t.Fatalf("first column fetch: hit=%v err=%v", hit, err)
	}
	// Column and full factorizations are distinct cache entries.
	ff, hit, err := c.GetOrFactor(m.ID, m.ROM, s)
	if err != nil || hit {
		t.Fatalf("full fetch after column fetch: hit=%v err=%v", hit, err)
	}
	if _, hit, _ := c.GetOrFactorColumn(m.ID, m.ROM, s, 0); !hit {
		t.Fatalf("repeated column fetch missed")
	}
	// A column context is m× lighter and guards misuse.
	if fc.MemBytes() >= ff.MemBytes() {
		t.Fatalf("column factors (%d B) not smaller than full factors (%d B)", fc.MemBytes(), ff.MemBytes())
	}
	if _, err := fc.Eval(); err == nil {
		t.Fatalf("partial factorization evaluated the full matrix")
	}
	if _, err := fc.EvalColumn(1); err == nil {
		t.Fatalf("column-0 factorization evaluated column 1")
	}
	// Both paths agree on the column they share.
	want, err := ff.EvalColumn(0)
	if err != nil {
		t.Fatalf("full eval: %v", err)
	}
	got, err := fc.EvalColumn(0)
	if err != nil {
		t.Fatalf("column eval: %v", err)
	}
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("row %d: column path %v, full path %v", r, got[r], want[r])
		}
	}
}

func TestFactorCacheByteBudgetEviction(t *testing.T) {
	m := testModel(t, 0.1)
	// Size the budget to exactly one full factorization per shard: every
	// entry is the same size (MemBytes depends only on dimensions), so a
	// shard receiving a second key must evict its first.
	ref, err := m.ROM.Factorize(complex(0, 1e6))
	if err != nil {
		t.Fatalf("reference factorization: %v", err)
	}
	entryBytes := ref.MemBytes()
	c := NewFactorCache(entryBytes * facShards)

	const n = 3 * facShards
	for k := 0; k < n; k++ {
		w := 1e6 * float64(k+1)
		if _, _, err := c.GetOrFactor(m.ID, m.ROM, complex(0, w)); err != nil {
			t.Fatalf("GetOrFactor(ω=%g): %v", w, err)
		}
	}
	st := c.Stats()
	if st.Entries > facShards {
		t.Fatalf("cache holds %d entries, byte budget allows %d", st.Entries, facShards)
	}
	if st.Bytes > st.BudgetBytes {
		t.Fatalf("cache accounts %d bytes over budget %d", st.Bytes, st.BudgetBytes)
	}
	if st.Bytes != int64(st.Entries)*entryBytes {
		t.Fatalf("accounted %d bytes for %d entries of %d bytes each", st.Bytes, st.Entries, entryBytes)
	}
	if st.Evictions < int64(n-facShards) {
		t.Fatalf("evictions = %d, want ≥ %d after inserting %d into a %d-entry budget",
			st.Evictions, n-facShards, n, facShards)
	}
	if st.Rejects != 0 {
		t.Fatalf("rejects = %d for entries that fit the shard budget", st.Rejects)
	}
	// An evicted key is transparently refactored.
	f, _, err := c.GetOrFactor(m.ID, m.ROM, complex(0, 1e6))
	if err != nil || f == nil {
		t.Fatalf("re-fetch after eviction: %v", err)
	}
}

// TestFactorCacheAdmissionReject: a factorization larger than a whole shard
// budget is returned to its caller but never retained.
func TestFactorCacheAdmissionReject(t *testing.T) {
	m := testModel(t, 0.1)
	c := NewFactorCache(1) // 1-byte budget: nothing fits
	s := complex(0, 1e9)
	for i := 1; i <= 2; i++ {
		f, hit, err := c.GetOrFactor(m.ID, m.ROM, s)
		if err != nil || hit || f == nil {
			t.Fatalf("attempt %d: f=%v hit=%v err=%v, want fresh factors", i, f != nil, hit, err)
		}
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entries retained: %+v", st)
	}
	if st.Rejects != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 rejects / 2 misses", st)
	}
}

func TestFactorCacheErrorNotCached(t *testing.T) {
	// A 1×1 block with C = G = 0 has a singular pencil at every s.
	rom := &lti.BlockDiagSystem{M: 1, P: 1, Blocks: []lti.Block{{
		C: dense.NewMat[float64](1, 1),
		G: dense.NewMat[float64](1, 1),
		B: []float64{1},
		L: dense.NewMat[float64](1, 1),
	}}}
	c := NewFactorCache(0)
	for i := 0; i < 2; i++ {
		if _, _, err := c.GetOrFactor("bad", rom, complex(0, 1e9)); err == nil {
			t.Fatalf("attempt %d: expected singular-pencil error", i)
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 2 {
		t.Fatalf("failed factorizations left state %+v, want 0 entries / 2 misses", st)
	}
}
