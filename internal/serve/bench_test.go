package serve

import (
	"context"
	"testing"
)

// The cold/cached/modal triple documents the evaluation-path economics: cold
// pays the per-block O(l³) complex LU factorization on every evaluation,
// cached pays it once and then O(l²) triangular solves per evaluation, and
// modal pays a one-time diagonalization at build and then O(q) per
// evaluation — no factorization, no solves, no cache.

func BenchmarkEvalColdFactorization(b *testing.B) {
	m := testModel(b, 0.25)
	s := complex(0, 1e9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ROM.Eval(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCachedFactorization(b *testing.B) {
	m := testModel(b, 0.25)
	cache := NewFactorCache(0)
	s := complex(0, 1e9)
	if _, _, err := cache.GetOrFactor(m.ID, m.ROM, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _, err := cache.GetOrFactor(m.ID, m.ROM, s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Eval(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalModal is the BenchmarkEvalCachedFactorization-equivalent on
// the modal fast path: same ROM, same full-matrix evaluation, no cache and
// no factors.
func BenchmarkEvalModal(b *testing.B) {
	m := testModel(b, 0.25)
	if m.Modal == nil || m.ModalBlocks != m.Blocks {
		b.Fatalf("test model not fully modal (%d/%d blocks)", m.ModalBlocks, m.Blocks)
	}
	s := complex(0, 1e9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Modal.Eval(s); err != nil {
			b.Fatal(err)
		}
	}
}

// The column pair measures the single-entry hot path with pooled scratch —
// the per-point cost inside a sweep. Both are allocation-free; the modal one
// additionally performs no triangular solves.

func BenchmarkEvalColumnCached(b *testing.B) {
	m := testModel(b, 0.25)
	cache := NewFactorCache(0)
	s := complex(0, 1e9)
	f, _, err := cache.GetOrFactorColumn(m.ID, m.ROM, s, 0)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]complex128, m.Outputs)
	scratch := make([]complex128, f.ScratchLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _, err := cache.GetOrFactorColumn(m.ID, m.ROM, s, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.EvalColumnInto(dst, scratch, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalColumnModal(b *testing.B) {
	m := testModel(b, 0.25)
	if m.Modal == nil {
		b.Fatal("test model has no modal form")
	}
	s := complex(0, 1e9)
	dst := make([]complex128, m.Outputs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Modal.EvalColumnInto(dst, s, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// The sweep pair measures a full served sweep re-run at an identical grid —
// the serving layer's steady state. The factored variant hits the cache at
// every point; the modal variant is a single vectorized residue pass.

func BenchmarkSweepRepeatedFactored(b *testing.B) {
	m := testModel(b, 0.25)
	eng := NewEngine(0)
	defer eng.Close()
	ev := NewEvaluator(eng, NewFactorCache(0), false)
	if _, err := ev.Sweep(context.Background(), m, 0, 0, 1e5, 1e15, 200); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Sweep(context.Background(), m, 0, 0, 1e5, 1e15, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepRepeatedModal(b *testing.B) {
	m := testModel(b, 0.25)
	eng := NewEngine(0)
	defer eng.Close()
	ev := NewEvaluator(eng, NewFactorCache(0), true)
	if ev.modalFor(m) == nil {
		b.Fatal("test model not served modally")
	}
	if _, err := ev.Sweep(context.Background(), m, 0, 0, 1e5, 1e15, 200); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Sweep(context.Background(), m, 0, 0, 1e5, 1e15, 200); err != nil {
			b.Fatal(err)
		}
	}
}
