package serve

import (
	"testing"
)

// The cold/cached pair documents the factorization cache's payoff: cold pays
// the per-block O(l³) complex LU factorization on every evaluation, cached
// pays it once and then only the O(l²) triangular solves.

func BenchmarkEvalColdFactorization(b *testing.B) {
	m := testModel(b, 0.25)
	s := complex(0, 1e9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ROM.Eval(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCachedFactorization(b *testing.B) {
	m := testModel(b, 0.25)
	cache := NewFactorCache(0)
	s := complex(0, 1e9)
	if _, _, err := cache.GetOrFactor(m.ID, m.ROM, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _, err := cache.GetOrFactor(m.ID, m.ROM, s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Eval(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepRepeated measures a full served sweep re-run at an identical
// grid — the serving layer's steady state, where every frequency point hits
// the cache.
func BenchmarkSweepRepeated(b *testing.B) {
	m := testModel(b, 0.25)
	cache := NewFactorCache(0)
	eng := NewEngine(0)
	defer eng.Close()
	if _, err := Sweep(eng, cache, m, 0, 0, 1e5, 1e15, 200); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(eng, cache, m, 0, 0, 1e5, 1e15, 200); err != nil {
			b.Fatal(err)
		}
	}
}
