// Package serve is the ROM-serving subsystem: a long-running service layer
// that amortizes BDSM reduction and pencil factorization across many
// concurrent requests.
//
// The paper's central advantage over input-dependent schemes (EKS/TBS) is
// that the block-diagonal ROM is reusable — reduce once, evaluate under any
// excitation. This package operationalizes that: a Repository builds each
// (benchmark, scale, options) model exactly once and hands out immutable
// handles; a FactorCache keeps per-frequency block pencil LU factors behind
// a sharded LRU so repeated evaluations at common frequencies skip the
// O(l³) refactorization; and an Engine fans batched AC sweeps and
// transfer-matrix evaluations across a fixed worker pool. Server exposes the
// whole thing over HTTP with JSON/NDJSON responses.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// The standard sweep grid: the logarithmic frequency range every sweep
// defaults to when a request leaves wmin/wmax/points unset. Keeping one
// canonical grid maximizes factorization reuse — independent requests (and
// the post-reduction cache warmer) land on bit-identical frequencies.
const (
	DefaultWMin        = 1e5
	DefaultWMax        = 1e15
	DefaultSweepPoints = 60
)

// Config sizes a Server.
type Config struct {
	// Workers is the evaluation pool size; 0 means runtime.NumCPU().
	Workers int
	// CacheBytes budgets the factorization cache in bytes of retained
	// factors; 0 selects DefaultCacheBytes.
	CacheBytes int64
	// MaxModels bounds the model repository; 0 selects DefaultMaxModels.
	MaxModels int
	// MaxSweepPoints caps the per-request sweep/eval batch size; 0 means
	// the default of 10000.
	MaxSweepPoints int
	// MaxEvalEntries caps the total complex entries (frequencies × p × m)
	// one /eval request may return, bounding response memory for
	// many-port models; 0 means the default of 1<<22 (~128 MB of
	// complex128).
	MaxEvalEntries int
	// Store, when non-nil, is the persistent ROM store the repository reads
	// through on miss and writes through on build, enabling warm restarts.
	Store *store.Store
	// WarmPoints sizes the post-reduction cache warm-up: when a model is
	// built or loaded from disk, its per-column pencil factorizations over
	// the standard sweep grid are computed while the engine is idle, so the
	// first default sweep is all cache hits. 0 selects DefaultSweepPoints;
	// negative disables warming. Models fully covered by the modal fast
	// path skip warming entirely — they never factor on the serving path.
	WarmPoints int
	// DisableModal pins every model to the factored (LU + cache) path even
	// when a modal form is available — the operational escape hatch and the
	// benchmarking baseline.
	DisableModal bool
	// DisableWard turns off the Ward/Schur pre-reduction stage on builds.
	// The stage is exact and on by default; the flag exists to measure its
	// effect and as an operational escape hatch.
	DisableWard bool
	// DisableInterp turns off Δ-scale interpolation: /interp is rejected and
	// benchmark+scale resolution on /eval and /sweep reduces for real.
	DisableInterp bool
	// InterpTol is the Δ-scale error budget: the leave-one-out self-check
	// error above which an interpolation request falls back to a real
	// reduction. 0 selects DefaultInterpTol.
	InterpTol float64
	// MaxInterpModels bounds the resident interpolated-model LRU; 0 selects
	// DefaultMaxInterpModels.
	MaxInterpModels int
	// MaxBodyBytes caps the request body size every endpoint will read; 0
	// selects DefaultMaxBodyBytes. Oversized bodies get 413.
	MaxBodyBytes int64
	// MaxSessions bounds concurrently resident transient sessions; 0 selects
	// DefaultMaxSessions.
	MaxSessions int
	// SessionTTL is the hard lifetime bound of a transient session; 0
	// selects DefaultSessionTTL.
	SessionTTL time.Duration
	// SessionIdle evicts sessions untouched for this long; 0 selects
	// DefaultSessionIdle.
	SessionIdle time.Duration
	// Logger receives structured per-request and error logs; nil discards
	// them (tests and library embedders stay quiet by default).
	Logger *slog.Logger
	// SlowRequest, when positive, raises per-request log lines that exceed
	// it from Info to Warn.
	SlowRequest time.Duration
	// DisableMetrics skips all metrics registration and recording: no
	// registry, no /metrics endpoint, no histogram observation anywhere.
	// The benchmarking baseline for measuring instrumentation overhead.
	DisableMetrics bool
	// SnapshotEvery persists each session's integrator state through Store
	// every N completed advances (and on SnapshotSessions, the drain hook),
	// so a session can resume on any replica sharing the store directory.
	// 1 makes failover exact — the snapshot always matches the last advance
	// the client saw complete. 0 disables periodic snapshots.
	SnapshotEvery int
}

// Retry-After policies: every 429/503 the server emits carries a hint of
// when the condition will plausibly clear, so routers and clients back off
// for an informed interval instead of guessing.
const (
	// RetryAfterPreload: the store preload runs in milliseconds-to-seconds;
	// probe again almost immediately.
	RetryAfterPreload = 1 * time.Second
	// RetryAfterDrain: a draining replica is going away — stay away long
	// enough for the fleet to converge on the survivors.
	RetryAfterDrain = 10 * time.Second
	// RetryAfterSessionLimit: sessions churn on the idle window; a slot
	// likely frees within a couple of seconds.
	RetryAfterSessionLimit = 2 * time.Second
	// RetryAfterRepoFull: the model bound clears only by operator action or
	// restart; don't hammer.
	RetryAfterRepoFull = 10 * time.Second
)

// DefaultMaxBodyBytes caps request bodies when no explicit limit is given.
// The largest legitimate request (a PWL waveform with thousands of
// breakpoints) fits comfortably in 1 MiB.
const DefaultMaxBodyBytes int64 = 1 << 20

// Server wires the repository, factorization cache, and evaluation engine
// behind an http.Handler.
type Server struct {
	repo     *Repository
	cache    *FactorCache
	eng      *Engine
	ev       *Evaluator
	sweeps   *SweepCoalescer
	advances *advanceCoalescer
	sessions *SessionManager
	cfg      Config
	start    time.Time

	log     *slog.Logger
	reg     *obs.Registry
	metrics *serverMetrics
	// notReady holds the reason the server is not ready to serve (store
	// preload in progress, draining for shutdown); nil means ready. /healthz
	// reports 503 with the reason — and a Retry-After hint — so a router can
	// pull the replica and knows when to re-probe.
	notReady atomic.Pointer[notReadyState]
}

// notReadyState is the reason the server answers 503 plus how long callers
// should wait before retrying.
type notReadyState struct {
	reason     string
	retryAfter time.Duration
}

// New assembles a Server. Call Close to stop its worker pool.
func New(cfg Config) *Server {
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = 10000
	}
	if cfg.MaxEvalEntries <= 0 {
		cfg.MaxEvalEntries = 1 << 22
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		repo:     NewRepositoryWithStore(cfg.MaxModels, cfg.Store),
		cache:    NewFactorCache(cfg.CacheBytes),
		eng:      NewEngine(cfg.Workers),
		sessions: NewSessionManager(cfg.MaxSessions, cfg.SessionTTL, cfg.SessionIdle),
		cfg:      cfg,
		start:    time.Now(),
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.ev = NewEvaluator(s.eng, s.cache, !cfg.DisableModal)
	s.sweeps = NewSweepCoalescer(s.ev)
	s.advances = newAdvanceCoalescer(s.eng)
	if !cfg.DisableMetrics {
		s.reg = obs.NewRegistry()
		s.metrics = newServerMetrics(s.reg, s)
	}
	if cfg.DisableModal {
		// The escape hatch disables the diagonalization code end to end:
		// no Modalize on builds or legacy disk loads, no modal routing.
		s.repo.DisableModal()
	}
	if cfg.DisableWard {
		s.repo.DisableWard()
	}
	if cfg.InterpTol > 0 {
		s.repo.interpTol = cfg.InterpTol
	}
	if cfg.MaxInterpModels > 0 {
		s.repo.maxInterp = cfg.MaxInterpModels
	}
	return s
}

// Close stops the session janitor and the evaluation pool after draining
// in-flight tasks.
func (s *Server) Close() {
	s.sessions.Close()
	s.eng.Close()
}

// Sessions exposes the session manager (used by tests).
func (s *Server) Sessions() *SessionManager { return s.sessions }

// Repo exposes the model repository (used by preloading and tests).
func (s *Server) Repo() *Repository { return s.repo }

// Metrics exposes the server's metrics registry (nil when DisableMetrics).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SetNotReady marks the server unready: /healthz returns 503 with the
// reason until SetReady, hinting callers to retry after RetryAfterPreload.
// Use SetNotReadyFor when the condition has a different horizon (drains).
func (s *Server) SetNotReady(reason string) { s.SetNotReadyFor(reason, RetryAfterPreload) }

// SetNotReadyFor marks the server unready with an explicit Retry-After hint.
func (s *Server) SetNotReadyFor(reason string, retryAfter time.Duration) {
	s.notReady.Store(&notReadyState{reason: reason, retryAfter: retryAfter})
}

// SetReady marks the server ready to serve.
func (s *Server) SetReady() { s.notReady.Store(nil) }

// PreloadStore registers every valid ROM from the persistent store without
// reducing, then pre-factors the standard sweep grid for each — the full
// warm-restart path for a starting daemon. The anchor library is merged
// from the same store scan, so Δ-scale interpolation sees every stored
// Scale point immediately. Returns the number of models registered.
func (s *Server) PreloadStore() (int, error) {
	n, err := s.repo.Preload()
	if err != nil {
		return 0, err
	}
	for _, m := range s.repo.Models() {
		s.warmModel(m)
	}
	return n, nil
}

// warmModel pre-factors the per-column block pencils of m over the standard
// sweep grid through the factorization cache. It runs right after a model is
// reduced or loaded — the moment the engine is idle — so the first default
// sweep against the model skips every O(l³) factorization. Models the modal
// fast path fully covers never factor on the serving path, so there is
// nothing to warm. Best-effort: factorization failures surface on the
// serving path with proper errors.
func (s *Server) warmModel(m *Model) {
	pts := s.cfg.WarmPoints
	if pts < 0 {
		return
	}
	if s.ev.modalFor(m) != nil {
		return
	}
	if pts == 0 {
		pts = DefaultSweepPoints
	}
	freqs, err := sim.LogGrid(DefaultWMin, DefaultWMax, pts)
	if err != nil {
		return
	}
	s.eng.Map(len(freqs), func(k int) error {
		for col := 0; col < m.Ports; col++ {
			s.cache.GetOrFactorColumn(m.ID, m.ROM, complex(0, freqs[k]), col)
		}
		return nil
	})
}

// CacheStats merges the factorization cache's counters with the
// repository's persistent-store counters into one cache-effectiveness view.
func (s *Server) CacheStats() CacheStats {
	st := s.cache.Stats()
	rs := s.repo.Stats()
	st.DiskHits = rs.DiskHits
	st.DiskMisses = rs.DiskMisses
	st.ModalEvals, st.FactoredEvals = s.ev.PathStats()
	st.CanceledEvals = s.ev.CanceledEvals()
	return st
}

// Handler returns the HTTP API:
//
//	POST   /reduce               build (or fetch) a model           → model info JSON
//	POST   /interp               Δ-scale model via interpolation    → model info JSON
//	POST   /eval                 batch-evaluate H(jω) at points     → JSON
//	POST   /sweep                AC sweep of one entry              → JSON or NDJSON
//	POST   /transient            fixed-step transient run           → JSON or NDJSON
//	POST   /session              open a streaming transient session → session info JSON
//	POST   /session/{id}/advance advance + stream rows              → NDJSON
//	GET    /session/{id}         session state/metrics              → JSON
//	DELETE /session/{id}         close a session                    → JSON
//	GET    /models               list built models                  → JSON
//	GET    /healthz              liveness + cache/pool stats        → JSON
//
// /eval, /sweep, and /session accept benchmark+scale in place of a model
// id: an unstored Scale is then resolved through the Δ-scale interpolation
// path (or a real reduction when interpolation is disabled or falls back).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /reduce", s.handleReduce)
	mux.HandleFunc("POST /interp", s.handleInterp)
	mux.HandleFunc("POST /eval", s.handleEval)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("POST /transient", s.handleTransient)
	mux.HandleFunc("POST /session", s.handleSessionCreate)
	mux.HandleFunc("POST /session/{id}/advance", s.handleSessionAdvance)
	mux.HandleFunc("GET /session/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /session/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.reg != nil {
		mux.Handle("GET /metrics", s.reg.Handler())
	}
	return s.withObs(mux)
}

// withObs is the outermost middleware: it establishes the request's trace
// (generating or propagating the X-Request-Id), echoes the ID on the
// response, records per-route metrics, and emits one structured log line
// per request. It wraps the mux rather than each handler so even unmatched
// routes are traced and counted.
func (s *Server) withObs(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get("X-Request-Id"))
		w.Header().Set("X-Request-Id", tr.ID)
		r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		route := routeOf(mux, r)
		t0 := time.Now()
		s.metrics.requestStart()
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
		s.metrics.requestEnd()
		d := time.Since(t0)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.metrics.request(route, status, d, r.ContentLength, sw.bytes)
		lvl := slog.LevelInfo
		if s.cfg.SlowRequest > 0 && d > s.cfg.SlowRequest {
			lvl = slog.LevelWarn
		}
		attrs := []any{
			"request_id", tr.ID,
			"route", route,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"duration_ms", float64(d) / 1e6,
			"bytes", sw.bytes,
		}
		if tr.Model != "" {
			attrs = append(attrs, "model", tr.Model)
		}
		s.log.Log(r.Context(), lvl, "request", attrs...)
	})
}

// noteModel annotates the request's trace with the model it resolved, so
// the request log line is greppable by model ID.
func noteModel(r *http.Request, m *Model) {
	if m != nil {
		obs.TraceFrom(r.Context()).SetModel(m.ID)
	}
}

// httpError carries a status code through handler plumbing. retryAfter, when
// positive, emits a Retry-After header: every 429/503 tells its caller when
// the condition will plausibly clear, so router and client backoff are
// informed rather than blind.
type httpError struct {
	code       int
	err        error
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// overloaded builds a 429 with a Retry-After hint.
func overloaded(retryAfter time.Duration, err error) *httpError {
	return &httpError{code: http.StatusTooManyRequests, err: err, retryAfter: retryAfter}
}

// retryAfterSeconds renders a Retry-After duration as whole seconds,
// rounding up so "1ms" never becomes the header value 0 ("retry now").
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// writeErr renders an error response. The request's ID rides along in the
// body (and in the X-Request-Id header set by the middleware), so a failure
// a client reports is greppable in the server's logs.
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(he.retryAfter))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error()}
	if id := obs.RequestID(r.Context()); id != "" {
		body["request_id"] = id
	}
	json.NewEncoder(w).Encode(body)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody reads one JSON document from a size-capped request body.
// Oversized bodies surface as 413 (http.MaxBytesReader also closes the
// connection so the client stops uploading); trailing bytes after the
// document — concatenated JSON, smuggled garbage — are rejected as 400
// instead of silently ignored.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{code: http.StatusRequestEntityTooLarge,
				err: fmt.Errorf("request body exceeds %d bytes", mbe.Limit)}
		}
		return badRequest("bad request body: %v", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return badRequest("trailing data after JSON request body")
	}
	return nil
}

// lookupModel resolves the "model" field of a request, mapping repository
// misses to 404.
func (s *Server) lookupModel(id string) (*Model, error) {
	if id == "" {
		return nil, badRequest("missing model id")
	}
	m, err := s.repo.Lookup(id)
	if err != nil {
		return nil, &httpError{code: http.StatusNotFound, err: err}
	}
	return m, nil
}

// reduceResponse is the model info returned by /reduce and /models.
type reduceResponse struct {
	*Model
	ReduceMS float64 `json:"reduce_ms"`
	// Cached reports whether this request skipped the reduction (the model
	// was resident in memory or loaded from the persistent store).
	Cached bool `json:"cached"`
	// Source reports where the model came from: "memory", "disk", or
	// "built".
	Source string `json:"source"`
}

func modelInfo(m *Model, outcome Outcome) reduceResponse {
	return reduceResponse{
		Model:    m,
		ReduceMS: float64(m.ReduceTime) / 1e6,
		Cached:   outcome != OutcomeBuilt,
		Source:   outcome.String(),
	}
}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	var key ModelKey
	if err := s.decodeBody(w, r, &key); err != nil {
		writeErr(w, r, err)
		return
	}
	// Reject malformed keys (unknown benchmark, bad scale, degenerate
	// moments/s0) as client errors before committing to a build.
	if _, err := grid.Benchmark(key.Benchmark, key.Scale); err != nil {
		writeErr(w, r, badRequest("%v", err))
		return
	}
	if err := key.Validate(); err != nil {
		writeErr(w, r, badRequest("%v", err))
		return
	}
	m, outcome, err := s.repo.Get(key)
	switch {
	case errors.Is(err, ErrRepositoryFull):
		writeErr(w, r, overloaded(RetryAfterRepoFull, err))
		return
	case err != nil:
		writeErr(w, r, err) // build/reduction failure: server-side, 500
		return
	}
	noteModel(r, m)
	if outcome != OutcomeMemHit {
		// The model just became resident (reduced or read from disk):
		// pre-factor the standard sweep grid so the first sweeps are pure
		// cache hits. Deliberately synchronous — warming is small next to
		// the reduction this request already paid (or skipped via disk), and
		// a /reduce response then means "ready to sweep at full speed".
		s.warmModel(m)
	}
	writeJSON(w, modelInfo(m, outcome))
}

// interpRequest asks for a model at an arbitrary Scale, interpolated from
// the stored anchor library when possible.
type interpRequest struct {
	ModelKey
	// Tol overrides the server's error budget for this request (0 = server
	// default).
	Tol float64 `json:"tol,omitempty"`
}

func (s *Server) handleInterp(w http.ResponseWriter, r *http.Request) {
	var req interpRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	if s.cfg.DisableInterp {
		writeErr(w, r, badRequest("Δ-scale interpolation is disabled on this server"))
		return
	}
	if req.Tol < 0 {
		writeErr(w, r, badRequest("tol must be ≥ 0, got %g", req.Tol))
		return
	}
	m, outcome, err := s.resolveModel("", req.ModelKey, req.Tol)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	noteModel(r, m)
	writeJSON(w, modelInfo(m, outcome))
}

// resolveModel turns a request's model reference — an explicit id, or a
// benchmark+scale pair — into a servable model. The id wins when both are
// given; a benchmark+scale at an unstored Scale goes through Δ-scale
// interpolation (under the given error budget; 0 = server default) unless
// interpolation is disabled. Models that arrive via a reduction or a disk
// load are cache-warmed exactly like /reduce.
func (s *Server) resolveModel(id string, key ModelKey, tol float64) (*Model, Outcome, error) {
	if id != "" {
		m, err := s.lookupModel(id)
		return m, OutcomeMemHit, err
	}
	if key.Benchmark == "" {
		return nil, OutcomeMemHit, badRequest("missing model id (or benchmark+scale)")
	}
	if _, err := grid.Benchmark(key.Benchmark, key.Scale); err != nil {
		return nil, OutcomeMemHit, badRequest("%v", err)
	}
	if err := key.Validate(); err != nil {
		return nil, OutcomeMemHit, badRequest("%v", err)
	}
	var (
		m       *Model
		outcome Outcome
		err     error
	)
	if s.cfg.DisableInterp {
		m, outcome, err = s.repo.Get(key)
	} else {
		m, outcome, err = s.repo.GetInterpolated(key, tol)
	}
	switch {
	case errors.Is(err, ErrRepositoryFull):
		return nil, outcome, overloaded(RetryAfterRepoFull, err)
	case err != nil:
		return nil, outcome, err
	}
	if outcome == OutcomeBuilt || outcome == OutcomeDiskHit {
		s.warmModel(m)
	}
	return m, outcome, nil
}

type evalRequest struct {
	Model string `json:"model"`
	// ModelKey resolves the model when Model is empty — including Δ-scale
	// interpolation at unstored Scales.
	ModelKey
	Omegas []float64 `json:"omegas"`
}

// evalResponse holds, per frequency, the full p×m transfer matrix as
// H[row][col] = [re, im].
type evalResponse struct {
	Model  string       `json:"model"`
	Points []evalMatrix `json:"points"`
}

type evalMatrix struct {
	Omega float64        `json:"omega"`
	H     [][][2]float64 `json:"h"`
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req evalRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	m, _, err := s.resolveModel(req.Model, req.ModelKey, 0)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	noteModel(r, m)
	if len(req.Omegas) == 0 || len(req.Omegas) > s.cfg.MaxSweepPoints {
		writeErr(w, r, badRequest("omegas must have 1..%d entries, got %d", s.cfg.MaxSweepPoints, len(req.Omegas)))
		return
	}
	// Budget the response by total entries, not frequency count: each
	// frequency returns a full p×m matrix, which for many-port models
	// dominates the request size.
	if total := len(req.Omegas) * m.Outputs * m.Ports; total > s.cfg.MaxEvalEntries {
		writeErr(w, r, badRequest("%d omegas × %d×%d matrix = %d entries exceeds limit %d; request fewer frequencies",
			len(req.Omegas), m.Outputs, m.Ports, total, s.cfg.MaxEvalEntries))
		return
	}
	for _, omega := range req.Omegas {
		if omega <= 0 {
			writeErr(w, r, badRequest("omegas must be positive, got %g", omega))
			return
		}
	}
	mats, err := s.ev.EvalBatch(r.Context(), m, req.Omegas)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	resp := evalResponse{Model: m.ID, Points: make([]evalMatrix, len(mats))}
	for k, h := range mats {
		em := evalMatrix{Omega: req.Omegas[k], H: make([][][2]float64, h.Rows)}
		for i := 0; i < h.Rows; i++ {
			row := make([][2]float64, h.Cols)
			for j := 0; j < h.Cols; j++ {
				z := h.At(i, j)
				row[j] = [2]float64{real(z), imag(z)}
			}
			em.H[i] = row
		}
		resp.Points[k] = em
	}
	writeJSON(w, resp)
}

type sweepRequest struct {
	Model string `json:"model"`
	// ModelKey resolves the model when Model is empty — including Δ-scale
	// interpolation at unstored Scales.
	ModelKey
	Row int `json:"row"`
	Col int `json:"col"`
	// Entries, when non-empty, requests a batched multi-entry sweep: every
	// listed H[row][col] entry is evaluated from one pass over the grid
	// (Row/Col are then ignored). All entries share the frequency grid.
	Entries []Entry `json:"entries,omitempty"`
	WMin    float64 `json:"wmin"`
	WMax    float64 `json:"wmax"`
	Points  int     `json:"points"`
	// Format selects "json" (default, one array) or "ndjson" (streamed —
	// one SweepPoint object per line for single-entry sweeps, one
	// EntrySweep object per line for batched sweeps).
	Format string `json:"format,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	m, _, err := s.resolveModel(req.Model, req.ModelKey, 0)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	noteModel(r, m)
	// Zero range/points select the standard grid — the one the cache warmer
	// pre-factored, so defaulted sweeps skip every factorization.
	if req.WMin == 0 {
		req.WMin = DefaultWMin
	}
	if req.WMax == 0 {
		req.WMax = DefaultWMax
	}
	if req.Points == 0 {
		req.Points = DefaultSweepPoints
	}
	if req.Points > s.cfg.MaxSweepPoints {
		writeErr(w, r, badRequest("points %d exceeds limit %d", req.Points, s.cfg.MaxSweepPoints))
		return
	}
	if len(req.Entries) > 0 {
		// Batched multi-entry sweep: budget by total returned values, like
		// /eval, since entries × points is what sizes the response.
		if total := len(req.Entries) * req.Points; total > s.cfg.MaxEvalEntries {
			writeErr(w, r, badRequest("%d entries × %d points = %d values exceeds limit %d",
				len(req.Entries), req.Points, total, s.cfg.MaxEvalEntries))
			return
		}
		sweeps, err := s.sweeps.SweepEntries(r.Context(), m, req.Entries, req.WMin, req.WMax, req.Points)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		switch strings.ToLower(req.Format) {
		case "", "json":
			writeJSON(w, map[string]any{"model": m.ID, "entries": sweeps})
		case "ndjson":
			streamNDJSON(w, len(sweeps), func(enc *json.Encoder, i int) error { return enc.Encode(sweeps[i]) })
		default:
			writeErr(w, r, badRequest("unknown format %q (want json or ndjson)", req.Format))
		}
		return
	}
	// Sweep distinguishes validation errors (400) from evaluation
	// failures, which surface as 500. Single-entry sweeps also go through
	// the coalescer: concurrent clients hitting the same model and grid
	// merge into one batched kernel call.
	sweeps, err := s.sweeps.SweepEntries(r.Context(), m, []Entry{{Row: req.Row, Col: req.Col}}, req.WMin, req.WMax, req.Points)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	pts := sweeps[0].Points
	switch strings.ToLower(req.Format) {
	case "", "json":
		writeJSON(w, map[string]any{"model": m.ID, "points": pts})
	case "ndjson":
		streamNDJSON(w, len(pts), func(enc *json.Encoder, i int) error { return enc.Encode(pts[i]) })
	default:
		writeErr(w, r, badRequest("unknown format %q (want json or ndjson)", req.Format))
	}
}

// streamWriteTimeout is the rolling write deadline of every NDJSON stream
// (/sweep, /transient, session advances): generous enough for any live
// reader, finite so a stalled client (open connection, zero receive window)
// cannot pin a handler goroutine forever. Needed because the server's
// WriteTimeout is deliberately unset for streaming responses.
const streamWriteTimeout = 30 * time.Second

// armStreamDeadline pushes the connection's write deadline streamWriteTimeout
// into the future; clearStreamDeadline removes it. Every stream must clear on
// exit: with WriteTimeout unset, net/http never resets the deadline between
// requests, and a stale one would poison the next request on the same
// keep-alive connection.
func armStreamDeadline(rc *http.ResponseController) {
	rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
}
func clearStreamDeadline(rc *http.ResponseController) { rc.SetWriteDeadline(time.Time{}) }

// streamNDJSON writes n JSON lines, flushing as it goes so clients see rows
// as they are produced, under the rolling stream write deadline.
func streamNDJSON(w http.ResponseWriter, n int, row func(enc *json.Encoder, i int) error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	defer clearStreamDeadline(rc)
	for i := 0; i < n; i++ {
		if i%64 == 0 {
			armStreamDeadline(rc)
		}
		if err := row(enc, i); err != nil {
			return
		}
		if fl != nil && i%64 == 63 {
			fl.Flush()
		}
	}
	if fl != nil {
		fl.Flush()
	}
}

// sourceSpec describes a scalar waveform in a transient request.
type sourceSpec struct {
	Kind      string    `json:"kind"` // dc | step | pulse | sine | pwl
	Value     float64   `json:"value,omitempty"`
	Amplitude float64   `json:"amplitude,omitempty"`
	Delay     float64   `json:"delay,omitempty"`
	Low       float64   `json:"low,omitempty"`
	High      float64   `json:"high,omitempty"`
	Rise      float64   `json:"rise,omitempty"`
	Fall      float64   `json:"fall,omitempty"`
	Width     float64   `json:"width,omitempty"`
	Period    float64   `json:"period,omitempty"`
	Offset    float64   `json:"offset,omitempty"`
	Freq      float64   `json:"freq,omitempty"`
	T         []float64 `json:"t,omitempty"`
	V         []float64 `json:"v,omitempty"`
}

func (sp *sourceSpec) source() (sim.Source, error) {
	switch strings.ToLower(sp.Kind) {
	case "dc":
		return sim.DC(sp.Value), nil
	case "step":
		return sim.Step{Amplitude: sp.Amplitude, Delay: sp.Delay}, nil
	case "pulse":
		return sim.Pulse{Low: sp.Low, High: sp.High, Delay: sp.Delay,
			Rise: sp.Rise, Fall: sp.Fall, Width: sp.Width, Period: sp.Period}, nil
	case "sine":
		return sim.Sine{Offset: sp.Offset, Amplitude: sp.Amplitude, Freq: sp.Freq, Delay: sp.Delay}, nil
	case "pwl":
		return sim.NewPWL(sp.T, sp.V)
	default:
		return nil, fmt.Errorf("unknown source kind %q (want dc|step|pulse|sine|pwl)", sp.Kind)
	}
}

type transientRequest struct {
	Model string     `json:"model"`
	Dt    float64    `json:"dt"`
	T     float64    `json:"t"`
	Input sourceSpec `json:"input"`
	// Ports optionally restricts the excitation to a subset of input
	// ports; empty drives every port with the waveform.
	Ports []int `json:"ports,omitempty"`
	// Method selects "be" (default) or "trap".
	Method string `json:"method,omitempty"`
	Format string `json:"format,omitempty"`
}

// transientRow is one NDJSON row of a transient response.
type transientRow struct {
	T float64   `json:"t"`
	Y []float64 `json:"y"`
}

func (s *Server) handleTransient(w http.ResponseWriter, r *http.Request) {
	var req transientRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	m, err := s.lookupModel(req.Model)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	noteModel(r, m)
	input, err := buildInput(&req.Input, req.Ports, m.Ports)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if req.Dt <= 0 || req.T <= 0 {
		writeErr(w, r, badRequest("dt and t must be positive, got %g, %g", req.Dt, req.T))
		return
	}
	if req.T/req.Dt > float64(s.cfg.MaxSweepPoints) {
		writeErr(w, r, badRequest("step count %g exceeds limit %d", req.T/req.Dt, s.cfg.MaxSweepPoints))
		return
	}
	res, err := s.ev.Transient(r.Context(), m, sim.TransientOptions{
		Method: method, Dt: req.Dt, T: req.T, Input: input,
	})
	if err != nil {
		writeErr(w, r, err) // inputs were validated above: integrator failure, 500
		return
	}
	switch strings.ToLower(req.Format) {
	case "", "json":
		writeJSON(w, map[string]any{"model": m.ID, "t": res.T, "y": res.Y})
	case "ndjson":
		streamNDJSON(w, len(res.T), func(enc *json.Encoder, i int) error {
			return enc.Encode(transientRow{T: res.T[i], Y: res.Y[i]})
		})
	default:
		writeErr(w, r, badRequest("unknown format %q (want json or ndjson)", req.Format))
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	models := s.repo.Models()
	out := make([]reduceResponse, len(models))
	for i, m := range models {
		out[i] = modelInfo(m, OutcomeMemHit)
	}
	writeJSON(w, out)
}

// handleHealthz reports liveness plus readiness: while the store preload is
// still running, or once a shutdown drain has begun, it answers 503 with the
// reason so a health-aware router takes the replica out of rotation. The
// subsystem stats ride under a "stats" key in both states.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"uptime_s":   time.Since(s.start).Seconds(),
		"models":     len(s.repo.Models()),
		"cache":      s.CacheStats(),
		"repo":       s.repo.Stats(),
		"sessions":   s.sessions.Stats(),
		"workers":    s.eng.Workers(),
		"goroutines": runtime.NumGoroutine(),
	}
	if s.cfg.Store != nil {
		stats["store"] = s.cfg.Store.Stats()
	}
	if nr := s.notReady.Load(); nr != nil {
		w.Header().Set("Content-Type", "application/json")
		if nr.retryAfter > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(nr.retryAfter))
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{
			"status": "unavailable", "reason": nr.reason, "stats": stats,
		})
		return
	}
	writeJSON(w, map[string]any{"status": "ok", "stats": stats})
}
