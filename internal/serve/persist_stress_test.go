package serve

import (
	"reflect"
	"sync"
	"testing"
)

// TestStoreRestartContentionStress hammers one store directory the way a
// fleet of restarting servers would: two repositories write through
// concurrently while builds race, then successive "restarts" open fresh
// repositories whose concurrent Gets and Preloads must all be served from
// disk — zero reductions, no torn reads, every ROM bit-identical to the
// first build, and nothing quarantined. Run with -race.
func TestStoreRestartContentionStress(t *testing.T) {
	dir := t.TempDir()
	keys := []ModelKey{
		{Benchmark: "ckt1", Scale: 0.08},
		{Benchmark: "ckt1", Scale: 0.1},
	}

	// Round 0: two repositories on one directory, concurrent Gets on every
	// key from both — concurrent builds and write-throughs of the same
	// files collide at the rename level and must both survive.
	repoA := NewRepositoryWithStore(0, openStore(t, dir))
	repoB := NewRepositoryWithStore(0, openStore(t, dir))
	refs := make([]*Model, len(keys))
	var wg sync.WaitGroup
	for _, repo := range []*Repository{repoA, repoB} {
		for ki := range keys {
			for dup := 0; dup < 3; dup++ {
				repo, ki := repo, ki
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, _, err := repo.Get(keys[ki]); err != nil {
						t.Errorf("round 0 Get(%s): %v", keys[ki].ID(), err)
					}
				}()
			}
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for ki, k := range keys {
		m, _, err := repoA.Get(k)
		if err != nil {
			t.Fatalf("reference Get(%s): %v", k.ID(), err)
		}
		refs[ki] = m
	}

	// Rounds 1..n: simulated restarts. Fresh store handle + repository;
	// concurrent Gets race a concurrent Preload on the same directory.
	const rounds, goroutines = 3, 12
	for round := 1; round <= rounds; round++ {
		repo := NewRepositoryWithStore(0, openStore(t, dir))
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := repo.Preload(); err != nil {
				t.Errorf("round %d Preload: %v", round, err)
			}
		}()
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				ki := g % len(keys)
				m, _, err := repo.Get(keys[ki])
				if err != nil {
					t.Errorf("round %d Get(%s): %v", round, keys[ki].ID(), err)
					return
				}
				if !reflect.DeepEqual(m.ROM, refs[ki].ROM) {
					t.Errorf("round %d: restored ROM for %s differs from reference", round, keys[ki].ID())
				}
			}()
		}
		wg.Wait()
		if st := repo.Stats(); st.Builds != 0 {
			t.Fatalf("round %d performed %d reductions, want 0 (store should satisfy everything)", round, st.Builds)
		}
	}

	// Checksums held under all that contention: every file is still valid.
	final := openStore(t, dir)
	metas, err := final.Scan()
	if err != nil {
		t.Fatalf("final Scan: %v", err)
	}
	if len(metas) != len(keys) {
		t.Fatalf("store holds %d entries after stress, want %d", len(metas), len(keys))
	}
	if st := final.Stats(); st.Quarantined != 0 {
		t.Fatalf("store stats = %+v, want nothing quarantined", st)
	}
}
