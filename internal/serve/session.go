package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Session lifecycle defaults (see Config.MaxSessions / SessionTTL /
// SessionIdle).
const (
	DefaultMaxSessions = 64
	DefaultSessionTTL  = 15 * time.Minute
	DefaultSessionIdle = 2 * time.Minute
)

// sessionChunkSteps is how many integration steps an /advance computes
// between NDJSON flushes and context checks: the streaming granularity, and
// the bound on how long a dropped client keeps its session's integrator
// running.
const sessionChunkSteps = 64

// ErrSessionLimit is returned when creating a session would exceed the
// configured bound. Sessions hold live integrator state, so an unbounded
// manager would let idle clients grow memory without limit.
var ErrSessionLimit = errors.New("serve: session limit reached")

// errSessionGone marks lookups of closed, expired, or never-created
// sessions.
var errSessionGone = errors.New("serve: no such session")

// Session is one long-lived transient integration: a resumable Stepper plus
// the bookkeeping that lets many advances, state reads, and the eviction
// janitor observe it concurrently. The stepper itself is single-owner: an
// advance holds mu for its whole streaming run, concurrent advances are
// rejected (409) rather than queued, and every other reader uses the atomic
// counters instead of touching the stepper.
type Session struct {
	ID     string
	model  *Model
	dt     float64
	method sim.Method

	mu       sync.Mutex // owns stepper and emitted0
	stepper  *sim.Stepper
	emitted0 bool // the t = 0 row has been streamed

	created  time.Time
	deadline time.Time    // created + TTL: the hard lifetime bound
	lastUsed atomic.Int64 // unix nanos of the last create/advance/read
	closed   atomic.Bool  // evicted or deleted; in-flight advances stop at the next chunk

	steps    atomic.Int64 // integration steps completed
	advances atomic.Int64
	rows     atomic.Int64 // NDJSON rows streamed
}

// touch stamps the idle clock.
func (s *Session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// expired reports whether the session has outlived its hard TTL or its idle
// window.
func (s *Session) expired(now time.Time, idle time.Duration) bool {
	return now.After(s.deadline) || now.Sub(time.Unix(0, s.lastUsed.Load())) > idle
}

// SessionStats is the /healthz view of the session subsystem.
type SessionStats struct {
	Active  int   `json:"active"`
	Created int64 `json:"created"`
	// Expired counts TTL + idle evictions; Deleted counts explicit client
	// DELETEs; Denied counts creations rejected at the session bound.
	Expired int64 `json:"expired"`
	Deleted int64 `json:"deleted"`
	Denied  int64 `json:"denied"`
	// CanceledAdvances counts streaming advances cut short by client
	// disconnect (the integrator stopped within one chunk).
	CanceledAdvances int64 `json:"canceled_advances"`
	// StepsTotal is the total integration steps served across all sessions.
	StepsTotal int64 `json:"steps_total"`
	// Resumed counts sessions re-created from a persisted snapshot (failover
	// from another replica, or this one before a restart).
	Resumed int64 `json:"resumed"`
	// SnapshotsSaved / SnapshotErrors count session-state persistence through
	// the store (periodic per-advance snapshots plus drain snapshots).
	SnapshotsSaved int64   `json:"snapshots_saved"`
	SnapshotErrors int64   `json:"snapshot_errors"`
	MaxSessions    int     `json:"max_sessions"`
	TTLSeconds     float64 `json:"ttl_s"`
	IdleSeconds    float64 `json:"idle_s"`
}

// SessionManager owns the live sessions: bounded admission, TTL + idle
// eviction (a background janitor plus lazy checks on every lookup), and the
// counters /healthz reports.
type SessionManager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	max      int
	ttl      time.Duration
	idle     time.Duration

	created, expired, deleted, denied atomic.Int64
	canceledAdvances                  atomic.Int64
	stepsTotal                        atomic.Int64
	resumed                           atomic.Int64
	snapSaved, snapErrors             atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
}

// NewSessionManager starts a manager bounded to max sessions with the given
// hard TTL and idle timeout (non-positive values select the defaults) and
// spawns its eviction janitor. Call Close to stop it.
func NewSessionManager(max int, ttl, idle time.Duration) *SessionManager {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	if idle <= 0 {
		idle = DefaultSessionIdle
	}
	sm := &SessionManager{
		sessions: make(map[string]*Session),
		max:      max,
		ttl:      ttl,
		idle:     idle,
		stop:     make(chan struct{}),
	}
	go sm.janitor()
	return sm
}

// janitor sweeps expired sessions on a period derived from the idle window,
// so an abandoned session's integrator state is reclaimed promptly even if
// no request ever touches the manager again.
func (sm *SessionManager) janitor() {
	tick := sm.idle / 4
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	if tick > 10*time.Second {
		tick = 10 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-sm.stop:
			return
		case now := <-t.C:
			sm.Sweep(now)
		}
	}
}

// Close stops the janitor and closes every session. Safe to call twice.
func (sm *SessionManager) Close() {
	sm.stopOnce.Do(func() { close(sm.stop) })
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for id, s := range sm.sessions {
		s.closed.Store(true)
		delete(sm.sessions, id)
	}
}

// Sweep evicts every expired session and returns how many it removed.
// In-flight advances on evicted sessions observe the closed flag and stop at
// their next chunk; Sweep never blocks on a session's mutex.
func (sm *SessionManager) Sweep(now time.Time) int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	n := 0
	for id, s := range sm.sessions {
		if s.expired(now, sm.idle) {
			s.closed.Store(true)
			delete(sm.sessions, id)
			sm.expired.Add(1)
			n++
		}
	}
	return n
}

// newSessionID returns a 96-bit random hex id — unguessable, so one client
// cannot walk another's session by enumeration.
func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a non-random id
		// would only weaken isolation, not correctness.
		return fmt.Sprintf("s%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// CheckCapacity cheaply reports whether a create would currently be denied,
// evicting expired sessions first. Callers use it to refuse before paying
// for model resolution and stepper construction; Create re-checks
// authoritatively under its own lock.
func (sm *SessionManager) CheckCapacity() error {
	sm.Sweep(time.Now())
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.sessions) >= sm.max {
		sm.denied.Add(1)
		return fmt.Errorf("%w (%d sessions)", ErrSessionLimit, sm.max)
	}
	return nil
}

// Create admits a new session over the given stepper, evicting expired
// sessions first and failing with ErrSessionLimit at the bound.
func (sm *SessionManager) Create(m *Model, st *sim.Stepper, dt float64, method sim.Method) (*Session, error) {
	now := time.Now()
	sm.Sweep(now)
	s := &Session{
		ID:       newSessionID(),
		model:    m,
		dt:       dt,
		method:   method,
		stepper:  st,
		created:  now,
		deadline: now.Add(sm.ttl),
	}
	s.touch(now)
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.sessions) >= sm.max {
		sm.denied.Add(1)
		return nil, fmt.Errorf("%w (%d sessions)", ErrSessionLimit, sm.max)
	}
	sm.sessions[s.ID] = s
	sm.created.Add(1)
	return s, nil
}

// Adopt admits a fully-built session under its existing identity — the
// resume path, where the ID, creation time, and deadline were fixed when the
// session was first created (possibly on another replica). Fails with
// ErrSessionLimit at the bound and errSessionGone-style conflict if the ID is
// already live here.
func (sm *SessionManager) Adopt(s *Session) error {
	sm.Sweep(time.Now())
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if _, ok := sm.sessions[s.ID]; ok {
		return fmt.Errorf("serve: session %q is already live on this replica", s.ID)
	}
	if len(sm.sessions) >= sm.max {
		sm.denied.Add(1)
		return fmt.Errorf("%w (%d sessions)", ErrSessionLimit, sm.max)
	}
	sm.sessions[s.ID] = s
	sm.resumed.Add(1)
	return nil
}

// live snapshots the current session set — the drain hook iterates it
// without holding the manager's lock across per-session snapshot writes.
func (sm *SessionManager) live() []*Session {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]*Session, 0, len(sm.sessions))
	for _, s := range sm.sessions {
		out = append(out, s)
	}
	return out
}

// Get resolves a live session, lazily evicting it if it expired between
// janitor sweeps.
func (sm *SessionManager) Get(id string) (*Session, error) {
	now := time.Now()
	sm.mu.Lock()
	s, ok := sm.sessions[id]
	if ok && s.expired(now, sm.idle) {
		s.closed.Store(true)
		delete(sm.sessions, id)
		sm.expired.Add(1)
		ok = false
	}
	sm.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", errSessionGone, id)
	}
	s.touch(now)
	return s, nil
}

// Delete closes and removes a session, reporting whether it existed.
func (sm *SessionManager) Delete(id string) bool {
	sm.mu.Lock()
	s, ok := sm.sessions[id]
	if ok {
		s.closed.Store(true)
		delete(sm.sessions, id)
	}
	sm.mu.Unlock()
	if ok {
		sm.deleted.Add(1)
	}
	return ok
}

// Stats snapshots the manager's counters.
func (sm *SessionManager) Stats() SessionStats {
	sm.mu.Lock()
	active := len(sm.sessions)
	sm.mu.Unlock()
	return SessionStats{
		Active:           active,
		Created:          sm.created.Load(),
		Expired:          sm.expired.Load(),
		Deleted:          sm.deleted.Load(),
		Denied:           sm.denied.Load(),
		CanceledAdvances: sm.canceledAdvances.Load(),
		StepsTotal:       sm.stepsTotal.Load(),
		Resumed:          sm.resumed.Load(),
		SnapshotsSaved:   sm.snapSaved.Load(),
		SnapshotErrors:   sm.snapErrors.Load(),
		MaxSessions:      sm.max,
		TTLSeconds:       sm.ttl.Seconds(),
		IdleSeconds:      sm.idle.Seconds(),
	}
}

// ---- HTTP layer ----

// sessionCreateRequest opens a streaming transient session on any servable
// model: by id, or by benchmark+scale (resolved through the same Δ-scale
// interpolation path as /eval and /sweep).
type sessionCreateRequest struct {
	Model string `json:"model"`
	ModelKey
	Dt float64 `json:"dt"`
	// Method selects "be" (default) or "trap" for non-modal fallback blocks.
	Method string `json:"method,omitempty"`
	// Resume, when set, re-creates the session with this id from its
	// persisted snapshot instead of opening a fresh one; every other field
	// except ResumeStep must be unset (the snapshot pins model, dt, and
	// method).
	Resume string `json:"resume,omitempty"`
	// ResumeStep, when positive, requires the resume to restore the state at
	// exactly this integration step. The store retains two snapshot
	// generations, so a router can rewind one advance — the case where the
	// previous owner completed an advance whose response never reached the
	// client. 0 resumes from the latest snapshot.
	ResumeStep int64 `json:"resume_step,omitempty"`
}

// sessionAdvanceRequest advances a session by a step count under a drive
// waveform. The waveform (and port mask) may change between advances — the
// integrator state carries over, nothing restarts from t = 0.
type sessionAdvanceRequest struct {
	Steps int        `json:"steps"`
	Input sourceSpec `json:"input"`
	Ports []int      `json:"ports,omitempty"`
}

// sessionInfo is the JSON state of a session, returned by POST /session and
// GET /session/{id}.
type sessionInfo struct {
	Session  string    `json:"session"`
	Model    string    `json:"model"`
	Dt       float64   `json:"dt"`
	Method   string    `json:"method"`
	Step     int64     `json:"step"`
	Time     float64   `json:"time"`
	Advances int64     `json:"advances"`
	Rows     int64     `json:"rows"`
	Created  time.Time `json:"created_at"`
	// ExpiresAt is the hard TTL deadline; IdleExpiresAt the rolling idle
	// deadline (whichever comes first evicts).
	ExpiresAt     time.Time `json:"expires_at"`
	IdleExpiresAt time.Time `json:"idle_expires_at"`
}

func (s *Server) sessionInfo(sess *Session) sessionInfo {
	steps := sess.steps.Load()
	return sessionInfo{
		Session:       sess.ID,
		Model:         sess.model.ID,
		Dt:            sess.dt,
		Method:        sess.method.String(),
		Step:          steps,
		Time:          float64(steps) * sess.dt,
		Advances:      sess.advances.Load(),
		Rows:          sess.rows.Load(),
		Created:       sess.created,
		ExpiresAt:     sess.deadline,
		IdleExpiresAt: time.Unix(0, sess.lastUsed.Load()).Add(s.sessions.idle),
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	// Refuse at the bound before resolving the model: resolution may cost a
	// full reduction, and a denied request should be O(1), not O(reduce).
	if err := s.sessions.CheckCapacity(); err != nil {
		writeErr(w, r, overloaded(RetryAfterSessionLimit, err))
		return
	}
	if req.Resume != "" {
		if req.Model != "" || req.Benchmark != "" || req.Dt != 0 || req.Method != "" {
			writeErr(w, r, badRequest("resume takes no other fields: the snapshot pins model, dt, and method"))
			return
		}
		s.handleSessionResume(w, r, req.Resume, req.ResumeStep)
		return
	}
	if req.ResumeStep != 0 {
		writeErr(w, r, badRequest("resume_step requires resume"))
		return
	}
	m, _, err := s.resolveModel(req.Model, req.ModelKey, 0)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	noteModel(r, m)
	method, err := parseMethod(req.Method)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	if req.Dt <= 0 {
		writeErr(w, r, badRequest("dt must be positive, got %g", req.Dt))
		return
	}
	st, err := s.ev.Stepper(m, method, req.Dt)
	if err != nil {
		writeErr(w, r, err) // integrator pencil failure: server-side, 500
		return
	}
	sess, err := s.sessions.Create(m, st, req.Dt, method)
	if err != nil {
		if errors.Is(err, ErrSessionLimit) {
			err = overloaded(RetryAfterSessionLimit, err)
		}
		writeErr(w, r, err)
		return
	}
	writeJSON(w, s.sessionInfo(sess))
}

func (s *Server) lookupSession(id string) (*Session, error) {
	sess, err := s.sessions.Get(id)
	if err != nil {
		return nil, &httpError{code: http.StatusNotFound, err: err}
	}
	return sess, nil
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookupSession(r.PathValue("id"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	noteModel(r, sess.model)
	writeJSON(w, s.sessionInfo(sess))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.Delete(id) {
		writeErr(w, r, &httpError{code: http.StatusNotFound, err: fmt.Errorf("%w: %q", errSessionGone, id)})
		return
	}
	// An explicitly deleted session must not resurrect on another replica:
	// drop its persisted snapshot too (best-effort — a failed remove only
	// means the TTL check at resume time does the cleanup).
	if s.cfg.Store != nil {
		s.cfg.Store.DeleteSnapshot(id)
	}
	writeJSON(w, map[string]string{"deleted": id})
}

// handleSessionAdvance integrates the session forward and streams each
// computed row as an NDJSON line, flushing chunk by chunk. The very first
// advance of a session also emits the t = 0 row, so a session advanced in N
// chunks streams exactly the rows one /transient run of the same length
// returns. A dropped client cancels r.Context(), which stops the integrator
// at the next chunk boundary — the session itself stays live (at its
// pre-chunk position plus the completed chunks) and can be advanced again.
func (s *Server) handleSessionAdvance(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookupSession(r.PathValue("id"))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	noteModel(r, sess.model)
	t0 := time.Now()
	defer func() { s.metrics.advance(t0) }()
	var req sessionAdvanceRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	if req.Steps < 1 || req.Steps > s.cfg.MaxSweepPoints {
		writeErr(w, r, badRequest("steps must be in 1..%d, got %d", s.cfg.MaxSweepPoints, req.Steps))
		return
	}
	input, err := buildInput(&req.Input, req.Ports, sess.model.Ports)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	// One advance at a time per session: a second concurrent advance would
	// interleave two drives on one integrator. Reject instead of queueing so
	// a stuck client cannot pile up blocked handlers.
	if !sess.mu.TryLock() {
		writeErr(w, r, &httpError{code: http.StatusConflict,
			err: fmt.Errorf("serve: session %s has an advance in flight", sess.ID)})
		return
	}
	defer sess.mu.Unlock()
	if sess.closed.Load() {
		writeErr(w, r, &httpError{code: http.StatusNotFound, err: fmt.Errorf("%w: %q", errSessionGone, sess.ID)})
		return
	}

	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	// Guard each chunk's writes with the rolling stream deadline: a stalled
	// client — connected but not reading — fails the write within
	// streamWriteTimeout and frees this goroutine, rather than blocking in
	// enc.Encode forever (r.Context() fires on disconnect, not on a stall).
	rc := http.NewResponseController(w)
	armWriteDeadline := func() { armStreamDeadline(rc) }
	defer clearStreamDeadline(rc)
	armWriteDeadline()
	// A failed row write normally means the client is gone (broken or
	// stalled connection) — account it like a context cancellation. An
	// encode-side failure (NaN/Inf outputs from a diverging integrator) is
	// not a disconnect: surface the truncation marker so the still-connected
	// client cannot mistake the partial stream for a complete one.
	writeRow := func(t float64, y []float64) bool {
		if err := enc.Encode(transientRow{T: t, Y: y}); err != nil {
			var uve *json.UnsupportedValueError
			if errors.As(err, &uve) {
				armWriteDeadline()
				enc.Encode(map[string]string{"error": "row encoding failed: " + err.Error()})
			} else {
				s.sessions.canceledAdvances.Add(1)
			}
			return false
		}
		sess.rows.Add(1)
		return true
	}

	if !sess.emitted0 {
		y0, err := sess.stepper.Output(input)
		if err != nil {
			writeErr(w, r, err)
			return
		}
		if !writeRow(sess.stepper.Time(), y0) {
			return // client gone before the first row; emit t=0 on retry
		}
		sess.emitted0 = true
		flush()
	}

	sess.advances.Add(1)
	for remaining := req.Steps; remaining > 0; {
		// Touch before queueing, not just after completing: a chunk waiting
		// for a pool slot on a loaded server must not look idle to the
		// eviction janitor.
		sess.touch(time.Now())
		if ctx.Err() != nil {
			s.sessions.canceledAdvances.Add(1)
			return
		}
		if sess.closed.Load() {
			// Evicted (TTL) or deleted mid-advance: tell the still-connected
			// client its stream is truncated, not complete. Re-arm the write
			// deadline so the marker is not lost to one that expired while
			// the chunk waited.
			armWriteDeadline()
			enc.Encode(map[string]string{"error": "session closed during advance"})
			return
		}
		n := sessionChunkSteps
		if n > remaining {
			n = remaining
		}
		// Each chunk occupies one evaluation-pool slot, so total integration
		// concurrency across sessions, sweeps, and transients stays bounded
		// by the worker count. The coalescer fuses compatible chunks queued
		// behind the same (model, dt, method) into one StepperGroup pass.
		chunk, err := s.advances.Advance(ctx, sess.model, sess.dt, sess.method, sess.stepper, n, input)
		if err != nil {
			if ctx.Err() != nil {
				s.sessions.canceledAdvances.Add(1)
				return
			}
			// Mid-stream failure: the status line is long gone, so surface
			// the error as a final NDJSON line (under a fresh write deadline).
			armWriteDeadline()
			enc.Encode(map[string]string{"error": err.Error()})
			return
		}
		sess.steps.Add(int64(n))
		s.sessions.stepsTotal.Add(int64(n))
		armWriteDeadline()
		for i := range chunk.T {
			if !writeRow(chunk.T[i], chunk.Y[i]) {
				return
			}
		}
		flush()
		remaining -= n
		sess.touch(time.Now())
	}
	// The advance completed: persist the integrator state if the periodic
	// snapshot policy says so (sess.mu is still held here, so the stepper is
	// quiescent and the snapshot is exactly the state the client just saw).
	s.maybeSnapshotSession(sess)
}

// buildInput turns a waveform spec plus an optional port mask into a
// sim.Input, validating ports against the model.
func buildInput(spec *sourceSpec, portList []int, ports int) (sim.Input, error) {
	src, err := spec.source()
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if len(portList) == 0 {
		return sim.UniformInput(src), nil
	}
	for _, p := range portList {
		if p < 0 || p >= ports {
			return nil, badRequest("port %d out of range %d", p, ports)
		}
	}
	masked := append([]int(nil), portList...)
	return func(t float64, u []float64) {
		v := src.At(t)
		for i := range u {
			u[i] = 0
		}
		for _, p := range masked {
			u[p] = v
		}
	}, nil
}

// parseMethod maps the wire method name onto the integration rule.
func parseMethod(name string) (sim.Method, error) {
	switch strings.ToLower(name) {
	case "", "be":
		return sim.BackwardEuler, nil
	case "trap":
		return sim.Trapezoidal, nil
	}
	return 0, badRequest("unknown method %q (want be or trap)", name)
}
