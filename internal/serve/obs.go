package serve

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file wires the serving stack into the obs metrics registry. Two
// mechanisms, chosen by cost:
//
//   - Everything the subsystems already count with atomics (RepoStats,
//     CacheStats, SessionStats, evaluator path counters) is exported through
//     func-backed metrics read at scrape time — zero hot-path changes, zero
//     double counting.
//   - Latency distributions (HTTP requests, engine task wait/run, model
//     builds, reduction phases, session advances) are live lock-free
//     histograms, attached via the components' Instrument hooks. Components
//     without instruments attached record nothing and skip the time.Now
//     calls entirely, so library users and benchmarks that construct an
//     Engine or Repository directly are unaffected.
//
// The modal per-mode inner loops are deliberately not instrumented: the hard
// constraint is that the warm modal sweep path stays 0 allocs/op with
// metrics enabled, so recording happens at task and request granularity
// only.

// serverMetrics holds the live-recorded instruments of one Server. All
// methods are nil-receiver safe: a Server built with DisableMetrics carries
// a nil *serverMetrics and every record becomes a no-op.
type serverMetrics struct {
	reqTotal   *obs.CounterVec // route, status
	reqDur     *obs.HistogramVec
	inFlight   *obs.Gauge
	reqBytes   *obs.Counter
	respBytes  *obs.Counter
	advanceDur *obs.Histogram
}

// request records one finished HTTP request.
func (m *serverMetrics) request(route string, status int, d time.Duration, reqBytes, respBytes int64) {
	if m == nil {
		return
	}
	m.reqTotal.With(route, strconv.Itoa(status)).Inc()
	m.reqDur.With(route).Observe(d.Seconds())
	if reqBytes > 0 {
		m.reqBytes.Add(reqBytes)
	}
	if respBytes > 0 {
		m.respBytes.Add(respBytes)
	}
}

func (m *serverMetrics) requestStart() {
	if m != nil {
		m.inFlight.Inc()
	}
}

func (m *serverMetrics) requestEnd() {
	if m != nil {
		m.inFlight.Dec()
	}
}

// advance records one completed (or aborted) session advance.
func (m *serverMetrics) advance(t0 time.Time) {
	if m != nil {
		m.advanceDur.ObserveSince(t0)
	}
}

// Histogram bucket layouts, in seconds.
var (
	// httpBuckets spans 100µs (cached modal sweeps) to ~25s (cold reduces).
	httpBuckets = obs.ExpBuckets(1e-4, 4, 10)
	// taskBuckets spans 1µs (instant queue handoff) to ~16s.
	taskBuckets = obs.ExpBuckets(1e-6, 4, 12)
	// buildBuckets spans 1ms to ~250s — grid builds and BDSM reductions.
	buildBuckets = obs.ExpBuckets(1e-3, 4, 10)
	// sizeBuckets cover batch/group populations: 1, 2, 4, … 256.
	sizeBuckets = obs.ExpBuckets(1, 2, 9)
)

// newServerMetrics registers every pgserve metric on reg and attaches the
// live histograms to the server's components. Called once from New, before
// the server handles any request.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reqTotal: reg.CounterVec("pgserve_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "status"),
		reqDur: reg.HistogramVec("pgserve_http_request_seconds",
			"HTTP request duration from first byte to handler return.", httpBuckets, "route"),
		inFlight: reg.Gauge("pgserve_http_in_flight",
			"HTTP requests currently being handled."),
		reqBytes: reg.Counter("pgserve_http_request_bytes_total",
			"Request body bytes received (Content-Length sum)."),
		respBytes: reg.Counter("pgserve_http_response_bytes_total",
			"Response body bytes written."),
		advanceDur: reg.Histogram("pgserve_session_advance_seconds",
			"Session advance duration, including streaming.", httpBuckets),
	}

	// Engine: queue visibility plus task wait/run distributions.
	eng := s.eng
	reg.GaugeFunc("pgserve_engine_workers", "Evaluation worker pool size.",
		func() float64 { return float64(eng.Workers()) })
	reg.GaugeFunc("pgserve_engine_queue_depth", "Tasks submitted but not yet started.",
		func() float64 { return float64(eng.QueueDepth()) })
	reg.CounterFunc("pgserve_engine_tasks_completed_total", "Tasks run to completion.",
		func() int64 { c, _ := eng.TaskCounts(); return c })
	reg.CounterFunc("pgserve_engine_tasks_skipped_total",
		"Tasks skipped by context cancellation before running.",
		func() int64 { _, sk := eng.TaskCounts(); return sk })
	eng.Instrument(
		reg.Histogram("pgserve_engine_task_wait_seconds",
			"Time a task spends queued before a worker picks it up.", taskBuckets),
		reg.Histogram("pgserve_engine_task_run_seconds",
			"Time a task spends executing on a worker.", taskBuckets))

	// Repository: func-backed counters over RepoStats atomics, plus live
	// build and per-phase reduction histograms.
	repo := s.repo
	reg.GaugeFunc("pgserve_repo_models", "Reduced models resident in memory.",
		func() float64 { return float64(repo.Stats().Models) })
	reg.GaugeFunc("pgserve_repo_interp_models", "Interpolated models resident in the LRU.",
		func() float64 { return float64(repo.Stats().InterpModels) })
	reg.CounterFunc("pgserve_repo_builds_total", "Full grid build + BDSM reductions.",
		repo.builds.Load)
	reg.CounterFunc("pgserve_repo_mem_hits_total", "Model requests served from memory.",
		repo.memHits.Load)
	reg.CounterFunc("pgserve_repo_disk_hits_total", "Models loaded from the persistent store.",
		repo.diskHits.Load)
	reg.CounterFunc("pgserve_repo_disk_misses_total", "Store read-throughs that missed.",
		repo.diskMisses.Load)
	reg.CounterFunc("pgserve_repo_store_errors_total", "Persistent store write/encode failures.",
		repo.storeErrors.Load)
	reg.CounterFunc("pgserve_interp_served_total", "Requests served via Δ-scale interpolation.",
		repo.interpServed.Load)
	reg.CounterFunc("pgserve_interp_fallbacks_total",
		"Δ-scale requests that fell back to a real reduction.",
		repo.interpFallbacks.Load)
	reg.CounterFunc("pgserve_ward_reductions_total",
		"Model builds that ran the Ward/Schur pre-reduction stage.",
		repo.wardReductions.Load)
	reg.CounterFunc("pgserve_ward_eliminated_states_total",
		"Static states eliminated exactly by Ward pre-reduction across builds.",
		repo.wardEliminated.Load)
	repo.Instrument(
		reg.Histogram("pgserve_repo_build_seconds",
			"End-to-end model build duration (grid + reduction + modalize).", buildBuckets),
		reg.HistogramVec("pgserve_reduce_phase_seconds",
			"Per-phase reduction timing: grid_build, partition, schur, factor, krylov, modalize.",
			buildBuckets, "phase"))

	// Factorization cache: func-backed over its own atomics; byte totals
	// take the shard locks, which is fine at scrape cadence.
	cache := s.cache
	reg.CounterFunc("pgserve_faccache_hits_total", "Factorization cache hits.",
		cache.hits.Load)
	reg.CounterFunc("pgserve_faccache_misses_total", "Factorization cache misses.",
		cache.misses.Load)
	reg.CounterFunc("pgserve_faccache_evictions_total", "Factorizations evicted over budget.",
		cache.evictions.Load)
	reg.CounterFunc("pgserve_faccache_rejects_total",
		"Factorizations too large to retain.", cache.rejects.Load)
	reg.GaugeFunc("pgserve_faccache_bytes", "Bytes of retained factorizations.",
		func() float64 { return float64(cache.Stats().Bytes) })
	reg.GaugeFunc("pgserve_faccache_budget_bytes", "Factorization cache retention budget.",
		func() float64 { return float64(cache.Stats().BudgetBytes) })

	// Evaluator path counters.
	ev := s.ev
	reg.CounterFunc("pgserve_evals_modal_total",
		"Point evaluations served by the modal fast path.",
		func() int64 { mod, _ := ev.PathStats(); return mod })
	reg.CounterFunc("pgserve_evals_factored_total",
		"Point evaluations served through pencil factorization.",
		func() int64 { _, fac := ev.PathStats(); return fac })
	reg.CounterFunc("pgserve_evals_canceled_total",
		"Evaluations aborted by client disconnect.", ev.CanceledEvals)
	reg.CounterFunc("pgserve_batch_kernel_calls_total",
		"Multi-entry sweeps served by the packed batched kernel.",
		ev.BatchKernelCalls)
	ev.InstrumentBatch(
		reg.Histogram("pgserve_batch_kernel_entries",
			"Transfer-matrix entries per batched kernel call.", sizeBuckets))

	// Request coalescing: sweep batches and fused session advances.
	reg.CounterFunc("pgserve_sweep_coalesced_batches_total",
		"Sweep batches that merged more than one request.",
		s.sweeps.sharedBatches.Load)
	reg.CounterFunc("pgserve_sweep_coalesced_requests_total",
		"Sweep requests served by a shared batch.",
		s.sweeps.sharedRequests.Load)
	s.sweeps.Instrument(
		reg.Histogram("pgserve_sweep_batch_size",
			"Requests per executed sweep batch.", sizeBuckets))
	reg.CounterFunc("pgserve_session_group_advances_total",
		"Advance batches fused into a StepperGroup pass.",
		s.advances.groupedBatches.Load)
	reg.CounterFunc("pgserve_session_grouped_sessions_total",
		"Session chunks advanced via a fused pass.",
		s.advances.groupedSessions.Load)
	s.advances.Instrument(
		reg.Histogram("pgserve_session_group_size",
			"Session chunks per executed advance batch.", sizeBuckets))

	// Sessions.
	sm := s.sessions
	reg.GaugeFunc("pgserve_sessions_active", "Live transient sessions.",
		func() float64 { return float64(sm.Stats().Active) })
	reg.CounterFunc("pgserve_sessions_created_total", "Sessions created.", sm.created.Load)
	reg.CounterFunc("pgserve_sessions_expired_total", "Sessions evicted by TTL or idle timeout.",
		sm.expired.Load)
	reg.CounterFunc("pgserve_sessions_deleted_total", "Sessions deleted by clients.",
		sm.deleted.Load)
	reg.CounterFunc("pgserve_sessions_denied_total", "Session creations rejected at the bound.",
		sm.denied.Load)
	reg.CounterFunc("pgserve_session_canceled_advances_total",
		"Advances cut short by client disconnect.", sm.canceledAdvances.Load)
	reg.CounterFunc("pgserve_session_steps_total",
		"Integration steps served across all sessions.", sm.stepsTotal.Load)
	reg.CounterFunc("pgserve_sessions_resumed_total",
		"Sessions re-created from a persisted snapshot.", sm.resumed.Load)
	reg.CounterFunc("pgserve_session_snapshots_total",
		"Session state snapshots persisted to the store.", sm.snapSaved.Load)
	reg.CounterFunc("pgserve_session_snapshot_errors_total",
		"Session snapshot persistence failures.", sm.snapErrors.Load)

	// Process.
	reg.GaugeFunc("pgserve_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("pgserve_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })

	return m
}

// statusWriter captures the status code and body bytes of a response while
// preserving the streaming capabilities handlers rely on: Flush for NDJSON
// chunking and Unwrap for http.ResponseController write deadlines.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// routeOf resolves the mux pattern a request will match — without serving it
// — and strips the method prefix, so metric labels stay low-cardinality
// ("/session/{id}/advance", not one series per session ID). Unroutable
// requests share one label.
func routeOf(mux *http.ServeMux, r *http.Request) string {
	_, pattern := mux.Handler(r)
	if pattern == "" {
		return "unmatched"
	}
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		return pattern[i+1:]
	}
	return pattern
}
