package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// advanceSession POSTs one advance and decodes the NDJSON stream.
func advanceSession(t *testing.T, base, id string, steps int, input sourceSpec) []transientRow {
	t.Helper()
	resp := postJSON(t, base+"/session/"+id+"/advance", sessionAdvanceRequest{Steps: steps, Input: input})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/advance status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("advance content type = %q", ct)
	}
	var rows []transientRow
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row transientRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d: %v (%s)", len(rows), err, sc.Text())
		}
		rows = append(rows, row)
	}
	return rows
}

// TestSessionMatchesTransient is the tentpole acceptance check: a session
// advanced in N chunks must stream exactly the rows a single /transient run
// returns, to ≤1e-12.
func TestSessionMatchesTransient(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	input := sourceSpec{Kind: "pulse", Low: 0, High: 1e-3, Delay: 2e-10, Rise: 1e-10, Fall: 1e-10, Width: 5e-10, Period: 2e-9}
	const dt, steps = 1e-10, 40

	resp := postJSON(t, ts.URL+"/transient", transientRequest{
		Model: info.ID, Dt: dt, T: dt * steps, Input: input,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/transient status = %d", resp.StatusCode)
	}
	ref := decode[struct {
		T []float64   `json:"t"`
		Y [][]float64 `json:"y"`
	}](t, resp)

	sess := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: dt}))
	if sess.Session == "" || sess.Model != info.ID || sess.Step != 0 {
		t.Fatalf("bad session info: %+v", sess)
	}
	var rows []transientRow
	for _, chunk := range []int{13, 20, 7} { // 40 steps total, uneven chunks
		rows = append(rows, advanceSession(t, ts.URL, sess.Session, chunk, input)...)
	}
	if len(rows) != steps+1 {
		t.Fatalf("streamed %d rows, want %d (incl. t=0)", len(rows), steps+1)
	}
	for k, row := range rows {
		if math.Abs(row.T-ref.T[k]) > 1e-18 {
			t.Fatalf("row %d: t=%g, want %g", k, row.T, ref.T[k])
		}
		for r := range row.Y {
			if d := math.Abs(row.Y[r] - ref.Y[k][r]); d > 1e-12*(1+math.Abs(ref.Y[k][r])) {
				t.Fatalf("row %d output %d: session %g vs transient %g (Δ=%g)", k, r, row.Y[r], ref.Y[k][r], d)
			}
		}
	}

	st := decode[sessionInfo](t, getResp(t, ts.URL+"/session/"+sess.Session))
	if st.Step != steps || st.Advances != 3 || st.Rows != int64(steps+1) {
		t.Fatalf("session state after 3 advances: %+v", st)
	}
	if math.Abs(st.Time-dt*steps) > 1e-18 {
		t.Fatalf("session time %g, want %g", st.Time, dt*steps)
	}
}

func getResp(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return resp
}

// TestSessionWaveformSwitch changes the input spec mid-session: the first
// advance runs under a DC source, the second under a PWL source describing
// the numerically identical waveform. If the integrator state carries over
// (no restart, no re-zeroing), the concatenated rows must equal one
// uninterrupted /transient run under the DC drive to ≤1e-12.
func TestSessionWaveformSwitch(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	const dt, steps = 1e-10, 40
	dc := sourceSpec{Kind: "dc", Value: 1e-3}
	samePWL := sourceSpec{Kind: "pwl", T: []float64{0, 1}, V: []float64{1e-3, 1e-3}}

	resp := postJSON(t, ts.URL+"/transient", transientRequest{Model: info.ID, Dt: dt, T: dt * steps, Input: dc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/transient status = %d", resp.StatusCode)
	}
	ref := decode[struct {
		T []float64   `json:"t"`
		Y [][]float64 `json:"y"`
	}](t, resp)

	sess := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: dt}))
	var rows []transientRow
	rows = append(rows, advanceSession(t, ts.URL, sess.Session, 20, dc)...)
	rows = append(rows, advanceSession(t, ts.URL, sess.Session, 20, samePWL)...)
	if len(rows) != steps+1 {
		t.Fatalf("streamed %d rows, want %d", len(rows), steps+1)
	}
	for k, row := range rows {
		for r := range row.Y {
			if d := math.Abs(row.Y[r] - ref.Y[k][r]); d > 1e-12*(1+math.Abs(ref.Y[k][r])) {
				t.Fatalf("row %d output %d: switched-drive session %g vs single run %g — state did not carry over", k, r, row.Y[r], ref.Y[k][r])
			}
		}
	}

	// A genuinely different second drive must diverge from the single run —
	// i.e. the switch is honored, not ignored.
	sess2 := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: dt}))
	other := sourceSpec{Kind: "sine", Offset: 1e-3, Amplitude: 5e-4, Freq: 5e8, Delay: 20 * dt}
	rows2 := advanceSession(t, ts.URL, sess2.Session, 20, dc)
	rows2 = append(rows2, advanceSession(t, ts.URL, sess2.Session, 20, other)...)
	diverged := false
	for k := 21; k < len(rows2) && !diverged; k++ {
		for r := range rows2[k].Y {
			if rows2[k].Y[r] != ref.Y[k][r] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("switching to a different waveform changed nothing")
	}
}

// TestSessionLifecycle: create → state → delete → gone, with manager stats
// tracking each transition.
func TestSessionLifecycle(t *testing.T) {
	srv, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	sess := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))

	if st := srv.Sessions().Stats(); st.Active != 1 || st.Created != 1 {
		t.Fatalf("stats after create: %+v", st)
	}
	resp := postJSON(t, ts.URL+"/session", sessionCreateRequest{ModelKey: ModelKey{Benchmark: "ckt1", Scale: 0.1}, Dt: 1e-10})
	bk := decode[sessionInfo](t, resp)
	if bk.Model != info.ID {
		t.Fatalf("benchmark+scale session resolved %q, want %q", bk.Model, info.ID)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+sess.Session, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", dresp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/session/" + sess.Session); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET deleted session status = %d, want 404", resp.StatusCode)
		}
	}
	aresp := postJSON(t, ts.URL+"/session/"+sess.Session+"/advance", sessionAdvanceRequest{Steps: 5, Input: sourceSpec{Kind: "dc", Value: 1}})
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusNotFound {
		t.Fatalf("advance on deleted session status = %d, want 404", aresp.StatusCode)
	}
	if st := srv.Sessions().Stats(); st.Active != 1 || st.Deleted != 1 {
		t.Fatalf("stats after delete: %+v", st)
	}
}

// TestSessionLimitAndExpiry: the bound denies with 429; idle sessions are
// evicted and report as expired.
func TestSessionLimitAndExpiry(t *testing.T) {
	srv := New(Config{Workers: 2, MaxSessions: 2, SessionIdle: 80 * time.Millisecond})
	ts := newServerForTest(t, srv)
	info := reduceTestModel(t, ts)

	mk := func() *http.Response {
		return postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10})
	}
	a := decode[sessionInfo](t, mk())
	decode[sessionInfo](t, mk())
	resp := mk()
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit create status = %d, want 429", resp.StatusCode)
	}
	if st := srv.Sessions().Stats(); st.Denied != 1 {
		t.Fatalf("denied = %d, want 1", st.Denied)
	}

	// Idle eviction frees both slots: polls avoid timing flakes.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions().Stats().Active > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions not evicted: %+v", srv.Sessions().Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp, err := http.Get(ts.URL + "/session/" + a.Session); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET expired session status = %d, want 404", resp.StatusCode)
		}
	}
	if st := srv.Sessions().Stats(); st.Expired < 2 {
		t.Fatalf("expired = %d, want ≥ 2", st.Expired)
	}
	// The freed slots admit new sessions again.
	decode[sessionInfo](t, mk())
}

func newServerForTest(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// TestSessionAdvanceConflict: a session whose advance is in flight rejects a
// second advance with 409 instead of queueing behind it.
func TestSessionAdvanceConflict(t *testing.T) {
	srv, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	si := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))
	sess, err := srv.Sessions().Get(si.Session)
	if err != nil {
		t.Fatal(err)
	}
	sess.mu.Lock() // simulate an advance holding the integrator
	resp := postJSON(t, ts.URL+"/session/"+si.Session+"/advance", sessionAdvanceRequest{Steps: 5, Input: sourceSpec{Kind: "dc", Value: 1}})
	resp.Body.Close()
	sess.mu.Unlock()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent advance status = %d, want 409", resp.StatusCode)
	}
}

// TestSessionValidation covers the request-shape rejections.
func TestSessionValidation(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	si := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))

	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"create without model", "/session", sessionCreateRequest{Dt: 1e-10}, 400},
		{"create bad dt", "/session", sessionCreateRequest{Model: info.ID, Dt: 0}, 400},
		{"create bad method", "/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10, Method: "rk4"}, 400},
		{"create unknown model", "/session", sessionCreateRequest{Model: "nope", Dt: 1e-10}, 404},
		{"advance zero steps", "/session/" + si.Session + "/advance", sessionAdvanceRequest{Steps: 0, Input: sourceSpec{Kind: "dc"}}, 400},
		{"advance too many steps", "/session/" + si.Session + "/advance", sessionAdvanceRequest{Steps: 1 << 30, Input: sourceSpec{Kind: "dc"}}, 400},
		{"advance bad source", "/session/" + si.Session + "/advance", sessionAdvanceRequest{Steps: 5, Input: sourceSpec{Kind: "laser"}}, 400},
		{"advance bad port", "/session/" + si.Session + "/advance", sessionAdvanceRequest{Steps: 5, Input: sourceSpec{Kind: "dc"}, Ports: []int{9999}}, 400},
		{"advance unknown session", "/session/nope/advance", sessionAdvanceRequest{Steps: 5, Input: sourceSpec{Kind: "dc"}}, 404},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+tc.path, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestSessionAdvanceCancellation: a client that disconnects mid-stream stops
// the integrator within one chunk, the abort is counted, and the session
// survives at its last completed position. The single pool worker is parked
// on a barrier task so the advance's first chunk provably queues until after
// the disconnect — the timing is deterministic, not a race against a fast
// integrator.
func TestSessionAdvanceCancellation(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := newServerForTest(t, srv)
	info := reduceTestModel(t, ts)
	si := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))

	started := make(chan struct{})
	release := make(chan struct{})
	barrierDone := make(chan struct{})
	go func() {
		defer close(barrierDone)
		srv.eng.Map(1, func(int) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started // the only worker is now occupied

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(sessionAdvanceRequest{Steps: 9000, Input: sourceSpec{Kind: "dc", Value: 1e-3}})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/session/"+si.Session+"/advance", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// The t = 0 row is emitted before any pool work; the first chunk is
	// queued behind the barrier. Read the row, then vanish.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first row")
	}
	cancel()
	resp.Body.Close()
	close(release)
	<-barrierDone

	deadline := time.Now().Add(10 * time.Second)
	for srv.Sessions().Stats().CanceledAdvances == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("advance never observed the disconnect: %+v", srv.Sessions().Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := decode[sessionInfo](t, getResp(t, ts.URL+"/session/"+si.Session))
	if st.Step >= 9000 {
		t.Fatalf("advance ran to completion (%d steps) despite disconnect", st.Step)
	}
	// The session is still usable after the aborted advance.
	rows := advanceSession(t, ts.URL, si.Session, 5, sourceSpec{Kind: "dc", Value: 1e-3})
	if len(rows) != 5 {
		t.Fatalf("post-abort advance returned %d rows, want 5", len(rows))
	}
}

// TestSessionClosedMidAdvance: deleting (or evicting) a session while an
// advance is streaming truncates the stream with an explicit error line —
// a still-connected client can tell truncation from completion. The single
// pool worker is parked so the delete provably lands before the first chunk.
func TestSessionClosedMidAdvance(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := newServerForTest(t, srv)
	info := reduceTestModel(t, ts)
	si := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))

	started := make(chan struct{})
	release := make(chan struct{})
	go srv.eng.Map(1, func(int) error { close(started); <-release; return nil })
	<-started

	type advanceOut struct {
		lines []string
		err   error
	}
	done := make(chan advanceOut, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/session/"+si.Session+"/advance",
			sessionAdvanceRequest{Steps: 500, Input: sourceSpec{Kind: "dc", Value: 1e-3}})
		defer resp.Body.Close()
		var out advanceOut
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			out.lines = append(out.lines, sc.Text())
		}
		out.err = sc.Err()
		done <- out
	}()

	// Wait until the t=0 row is out (the advance is inside its chunk loop,
	// queued behind the barrier), then delete the session and free the pool.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := srv.Sessions().Get(si.Session)
		if err != nil {
			t.Fatal(err)
		}
		if s.rows.Load() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("t=0 row never streamed")
		}
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+si.Session, nil)
	if dresp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		dresp.Body.Close()
	}
	close(release) // free the worker: the queued chunk runs, then the loop sees closed

	out := <-done
	if out.err != nil {
		t.Fatalf("stream read: %v", out.err)
	}
	if len(out.lines) == 0 {
		t.Fatal("no lines streamed")
	}
	last := out.lines[len(out.lines)-1]
	var errLine map[string]string
	if err := json.Unmarshal([]byte(last), &errLine); err != nil || errLine["error"] == "" {
		t.Fatalf("last line %q is not the truncation error marker", last)
	}
	if n := len(out.lines); n-1 >= 500 {
		t.Fatalf("advance streamed %d data rows despite mid-advance delete", n-1)
	}
}

// TestSessionStress hammers one model with concurrent session create /
// advance / delete under a short idle timeout so janitor eviction races the
// traffic — the -race exercise the CI stress step pins.
func TestSessionStress(t *testing.T) {
	srv := New(Config{Workers: 4, MaxSessions: 16, SessionIdle: 60 * time.Millisecond})
	ts := newServerForTest(t, srv)
	info := reduceTestModel(t, ts)

	var advanced atomic.Int64
	var wg sync.WaitGroup
	stop := time.Now().Add(1 * time.Second)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				resp := postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10})
				if resp.StatusCode == http.StatusTooManyRequests {
					resp.Body.Close()
					continue
				}
				si := decode[sessionInfo](t, resp)
				for i := 0; i < 3; i++ {
					aresp := postJSON(t, ts.URL+"/session/"+si.Session+"/advance",
						sessionAdvanceRequest{Steps: 64 + g, Input: sourceSpec{Kind: "dc", Value: 1}})
					if aresp.StatusCode == http.StatusOK {
						advanced.Add(1)
					}
					aresp.Body.Close()
					if g%2 == 0 {
						time.Sleep(time.Duration(g) * 5 * time.Millisecond) // let idle eviction race
					}
				}
				if g%3 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+si.Session, nil)
					if dresp, err := http.DefaultClient.Do(req); err == nil {
						dresp.Body.Close()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if advanced.Load() == 0 {
		t.Fatal("stress made no successful advances")
	}
	st := srv.Sessions().Stats()
	if st.Created == 0 || st.StepsTotal == 0 {
		t.Fatalf("implausible stress stats: %+v", st)
	}
	if st.Active > 16 {
		t.Fatalf("session bound violated: %d active", st.Active)
	}
}
