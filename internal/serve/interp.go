package serve

import (
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/grid"
	"repro/internal/lti"
	"repro/internal/param"
	"repro/internal/sim"
)

// DefaultMaxInterpModels bounds the resident interpolated-model cache.
// Interpolants are a few hundred kilobytes and rebuild in well under a
// millisecond, so the LRU can stay small even under continuum sweeps.
const DefaultMaxInterpModels = 64

// DefaultInterpTol is the serving error budget: the leave-one-out
// self-check error above which a Δ-scale request falls back to a real
// reduction. Within-plateau interpolation measures ~1e-3..1e-2 against
// direct reductions on the benchmark family; 0.05 accepts those while
// rejecting interpolation across a grid re-randomization boundary.
const DefaultInterpTol = 0.05

// InterpInfo is the serving-layer record of how an interpolated model was
// assembled, surfaced in model JSON so a Δ-scale response is auditable.
type InterpInfo struct {
	// Scales are the two anchor scales, ascending; T the log-scale
	// interpolation coordinate between them.
	Scales [2]float64 `json:"scales"`
	T      float64    `json:"t"`
	// MatchedPoles and MaxPoleShift summarize the pole matching.
	MatchedPoles int     `json:"matched_poles"`
	MaxPoleShift float64 `json:"max_pole_shift"`
	// CheckScale is the held-out anchor the leave-one-out self-check
	// predicted, and CheckErr the worst relative transfer error of that
	// prediction (the budgeted quantity). CheckErr is -1 when only two
	// anchors exist and no self-check was possible.
	CheckScale float64 `json:"check_scale,omitempty"`
	CheckErr   float64 `json:"check_err"`
	// Tol is the budget this model was admitted under.
	Tol float64 `json:"tol"`
}

// interpEntry is one resident interpolated model; seq orders the LRU.
type interpEntry struct {
	model *Model
	seq   int64
}

// libScanMinInterval rate-limits on-demand store rescans triggered by
// Δ-scale requests that found no anchors.
const libScanMinInterval = time.Second

// RefreshLibrary scans the persistent store's metadata (no ROM decoding) and
// merges every valid model's Scale point into the anchor library, so
// Δ-scale interpolation can draw on stored-but-not-yet-resident ROMs.
func (r *Repository) RefreshLibrary() error {
	r.lastLibScan.Store(time.Now().UnixNano())
	if r.store == nil {
		return nil
	}
	metas, err := r.store.Scan()
	if err != nil {
		return err
	}
	for _, meta := range metas {
		key, ok := keyFromMeta(meta.ModelKey, meta.ID)
		if !ok {
			continue
		}
		r.libraryAddFromMeta(key, meta.GridKey)
	}
	return nil
}

// libraryAddFromMeta merges one store-scanned model into the anchor library.
// A stored ROM is only an anchor if its grid fingerprint matches the current
// generator: a stale file (e.g. written before an electrical recalibration)
// would miss on read-through and turn "load an anchor" into a full
// reduction.
func (r *Repository) libraryAddFromMeta(key ModelKey, gridKey string) {
	cfg, err := grid.Benchmark(key.Benchmark, key.Scale)
	if err != nil {
		return
	}
	cfg.RCOnly = key.RCOnly
	if cfg.Key() != gridKey {
		return
	}
	r.mu.Lock()
	r.libraryAdd(key)
	r.mu.Unlock()
}

// refreshLibraryIfStale rescans the store at most once per
// libScanMinInterval — the slow path behind a Δ-scale request whose
// benchmark family has no (or not enough) known anchors.
func (r *Repository) refreshLibraryIfStale() {
	if r.store == nil {
		return
	}
	last := r.lastLibScan.Load()
	if time.Since(time.Unix(0, last)) < libScanMinInterval {
		return
	}
	if !r.lastLibScan.CompareAndSwap(last, time.Now().UnixNano()) {
		return // another request is already rescanning
	}
	r.RefreshLibrary()
}

// ScalePoints lists the known anchor scales of key's benchmark family
// (ignoring key.Scale), ascending.
func (r *Repository) ScalePoints(key ModelKey) []float64 {
	key.Normalize()
	lk := key
	lk.Scale = 0
	r.mu.Lock()
	set := r.library[lk]
	out := make([]float64, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Float64s(out)
	return out
}

// GetInterpolated serves key at an arbitrary Scale: an exact-scale model
// (resident, stored, or previously interpolated) is returned as-is;
// otherwise the model is interpolated from the two stored anchors bracketing
// the scale, provided the pole matching is unambiguous and the leave-one-out
// self-check stays within tol (0 selects the repository default). Any
// obstacle — no bracketing anchors, incompatible ROM structure, ambiguous
// matching, budget exceeded — falls back to a real reduction via Get, so the
// caller always receives a servable model; the fallback is merely slower and
// is counted in RepoStats.InterpFallbacks.
func (r *Repository) GetInterpolated(key ModelKey, tol float64) (*Model, Outcome, error) {
	if err := key.Validate(); err != nil {
		return nil, OutcomeMemHit, err
	}
	key.Normalize()
	if tol <= 0 {
		tol = r.interpTol
	}

	// Resident exact-scale model (or in-flight build): serve it.
	r.mu.Lock()
	_, resident := r.entries[key]
	if !resident {
		// A cached interpolant only satisfies this request if it was
		// admitted under the caller's budget: a stricter per-request tol
		// than the cached CheckErr must re-decide (and typically reduce for
		// real) rather than serve an out-of-budget model. Unchecked
		// interpolants (CheckErr < 0, two-anchor libraries) serve at any
		// tol, matching construction-time semantics.
		if ie, ok := r.interp[key]; ok && ie.model.Interp.CheckErr <= tol {
			r.interpTouch(ie)
			m := ie.model
			r.mu.Unlock()
			r.interpServed.Add(1)
			return m, OutcomeInterp, nil
		}
	}
	r.mu.Unlock()
	if resident {
		return r.Get(key)
	}

	// Stored exact-scale ROM: read it through (a disk hit, no reduction).
	// Errors — including a full repository — flow on to the interpolation
	// branch: an interpolant needs no repository slot (it lives in the
	// separate bounded LRU), so a full repo with resident anchors can still
	// serve Δ-scale traffic; only the final fallback reduction can surface
	// ErrRepositoryFull.
	m, outcome, err := r.get(key, false)
	if err == nil {
		return m, outcome, nil
	}

	// Interpolate between stored anchors; any failure reduces for real.
	if r.noModal {
		return r.interpFallback(key) // modal forms are disabled process-wide
	}
	scales := r.ScalePoints(key)
	lo, hi, ok := bracket(scales, key.Scale)
	if !ok {
		r.refreshLibraryIfStale()
		scales = r.ScalePoints(key)
		if lo, hi, ok = bracket(scales, key.Scale); !ok {
			return r.interpFallback(key)
		}
	}
	m, err = r.interpolate(key, scales, lo, hi, tol)
	if err != nil {
		return r.interpFallback(key)
	}
	r.interpServed.Add(1)
	return m, OutcomeInterp, nil
}

// interpFallback counts a Δ-scale miss and reduces the model for real.
func (r *Repository) interpFallback(key ModelKey) (*Model, Outcome, error) {
	r.interpFallbacks.Add(1)
	return r.Get(key)
}

// bracket finds the neighboring anchor indices with scales[lo] < s <
// scales[hi]. Exact anchor scales are handled by the read-through above and
// do not reach here under normal operation; if one does (e.g. the stored
// file vanished), it brackets against its neighbors like any other scale.
func bracket(scales []float64, s float64) (lo, hi int, ok bool) {
	hi = sort.SearchFloat64s(scales, s)
	if hi <= 0 || hi >= len(scales) {
		return 0, 0, false
	}
	return hi - 1, hi, true
}

// interpolate assembles the model at key.Scale from the bracketing anchors
// scales[lo], scales[hi], self-checking against a held-out third anchor when
// one exists.
func (r *Repository) interpolate(key ModelKey, scales []float64, lo, hi int, tol float64) (*Model, error) {
	a, err := r.anchor(key, scales[lo])
	if err != nil {
		return nil, err
	}
	b, err := r.anchor(key, scales[hi])
	if err != nil {
		return nil, err
	}

	info := InterpInfo{CheckErr: -1, Tol: tol}
	// Leave-one-out self-check: predict a held-out anchor from a wider pair
	// and measure the worst relative transfer error against its stored ROM —
	// an upper-bound proxy for the served interpolant's error (the held-out
	// span is strictly wider) that costs zero reductions. Both outer-anchor
	// candidates are tried, narrower span first: a single far-away (or
	// structurally incompatible) anchor elsewhere in the library must not
	// defeat interpolation between two perfectly good bracketing anchors.
	type looCandidate struct {
		outerScale float64 // third anchor completing the wider pair
		outerWith  *Model  // bracket anchor kept in the pair
		heldOut    *Model  // bracket anchor being predicted
	}
	var cands []looCandidate
	if hi+1 < len(scales) {
		cands = append(cands, looCandidate{scales[hi+1], a, b})
	}
	if lo > 0 {
		cands = append(cands, looCandidate{scales[lo-1], b, a})
	}
	if len(cands) == 2 {
		upSpan := math.Log(scales[hi+1] / scales[lo])
		downSpan := math.Log(scales[hi] / scales[lo-1])
		if downSpan < upSpan {
			cands[0], cands[1] = cands[1], cands[0]
		}
	}
	var checkErr error
	for _, c := range cands {
		outer, err := r.anchor(key, c.outerScale)
		if err != nil {
			checkErr = err
			continue
		}
		pred, _, err := param.Interpolate(
			param.Anchor{Scale: outer.Key.Scale, Modal: outer.Modal},
			param.Anchor{Scale: c.outerWith.Key.Scale, Modal: c.outerWith.Modal},
			c.heldOut.Key.Scale, param.Config{})
		if err != nil {
			checkErr = err
			continue
		}
		e, err := relTransferErr(pred, c.heldOut.Modal)
		if err != nil {
			checkErr = err
			continue
		}
		if info.CheckErr < 0 || e < info.CheckErr {
			info.CheckScale, info.CheckErr = c.heldOut.Key.Scale, e
		}
		if e <= tol {
			break // this check admits the bracket; no need to try the wider one
		}
		checkErr = errBudgetExceeded
	}
	if info.CheckErr >= 0 && info.CheckErr > tol {
		return nil, errBudgetExceeded
	}
	if info.CheckErr < 0 && checkErr != nil {
		// Candidates existed but none produced a usable check: treat as
		// ambiguous rather than serving unchecked.
		return nil, checkErr
	}

	t0 := time.Now()
	ms, rep, err := param.Interpolate(
		param.Anchor{Scale: a.Key.Scale, Modal: a.Modal},
		param.Anchor{Scale: b.Key.Scale, Modal: b.Modal},
		key.Scale, param.Config{})
	if err != nil {
		return nil, err
	}
	info.Scales, info.T = rep.Scales, rep.T
	info.MatchedPoles, info.MaxPoleShift = rep.MatchedPoles, rep.MaxPoleShift

	cfg, err := grid.Benchmark(key.Benchmark, key.Scale)
	if err != nil {
		return nil, err
	}
	cfg.RCOnly = key.RCOnly
	order, _, _ := ms.Dims()
	modalBlocks, _ := ms.ModalCount()
	m := &Model{
		ID:          key.ID(),
		Key:         key,
		Nodes:       cfg.NumNodes(),
		Ports:       ms.BD.M,
		Outputs:     ms.BD.P,
		Order:       order,
		Blocks:      len(ms.BD.Blocks),
		ReduceTime:  time.Since(t0),
		Created:     time.Now(),
		ModalBlocks: modalBlocks,
		Interp:      &info,
		ROM:         ms.BD,
		Modal:       ms,
		Packed:      ms.Pack(),
		GridKey:     cfg.Key(),
	}
	r.interpInsert(key, m)
	return m, nil
}

// errBudgetExceeded marks a leave-one-out check above the serving budget.
var errBudgetExceeded = errors.New("serve: interpolation error budget exceeded")

// anchor loads one library anchor — resident or stored, never built: a
// request on the interpolation path must cost zero reductions until it
// explicitly falls back (where exactly one reduction, of the requested
// model, is paid). A library entry whose backing file vanished or went
// stale simply fails the load, and insists on full modal coverage — the
// representation interpolation operates on.
func (r *Repository) anchor(key ModelKey, scale float64) (*Model, error) {
	key.Scale = scale
	m, _, err := r.get(key, false)
	if err != nil {
		return nil, err
	}
	if m.Modal == nil || m.ModalBlocks != m.Blocks {
		return nil, errors.New("serve: anchor lacks full modal coverage")
	}
	return m, nil
}

// interpCheckPoints sizes the leave-one-out probe grid. Modal evaluation is
// O(order·ports) per point, so the whole check costs microseconds.
const interpCheckPoints = 15

// interpCheckOmegas is the standard-band probe grid shared by every
// leave-one-out check.
var interpCheckOmegas = func() []float64 {
	omegas, err := sim.LogGrid(DefaultWMin, DefaultWMax, interpCheckPoints)
	if err != nil {
		panic(err) // constants: cannot fail
	}
	return omegas
}()

// relTransferErr measures two modal systems against each other over the
// standard sweep band, in the repo-wide budget metric.
func relTransferErr(a, b *lti.ModalSystem) (float64, error) {
	return param.MaxRelTransferErr(a, b, interpCheckOmegas)
}

// interpTouch bumps an entry to the LRU head. Caller holds mu.
func (r *Repository) interpTouch(e *interpEntry) {
	r.interpSeq++
	e.seq = r.interpSeq
}

// interpInsert caches an interpolated model, evicting the least recently
// used entry beyond the bound. An existing entry for the same key is kept
// unless the new model carries a strictly better self-check (a stricter-tol
// request may have forced a narrower-span check).
func (r *Repository) interpInsert(key ModelKey, m *Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[key]; ok {
		// A real model for this key became resident (or is building) while
		// this interpolant was assembled: the real one wins, and caching the
		// interpolant would double-list the ID and pin a shadowed LRU slot.
		return
	}
	if e, ok := r.interp[key]; ok {
		if m.Interp.CheckErr >= 0 && (e.model.Interp.CheckErr < 0 || m.Interp.CheckErr < e.model.Interp.CheckErr) {
			e.model = m
		}
		r.interpTouch(e)
		return
	}
	e := &interpEntry{model: m}
	r.interpTouch(e)
	r.interp[key] = e
	r.interpByID[key.ID()] = e
	for len(r.interp) > r.maxInterp {
		var victimKey ModelKey
		var victim *interpEntry
		for k, cand := range r.interp {
			if victim == nil || cand.seq < victim.seq {
				victimKey, victim = k, cand
			}
		}
		delete(r.interp, victimKey)
		delete(r.interpByID, victimKey.ID())
	}
}
