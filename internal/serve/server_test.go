package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"math/cmplx"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func reduceTestModel(t *testing.T, ts *httptest.Server) reduceResponse {
	t.Helper()
	resp := postJSON(t, ts.URL+"/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/reduce status = %d", resp.StatusCode)
	}
	return decode[reduceResponse](t, resp)
}

func TestReduceRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	if info.Cached {
		t.Fatalf("first /reduce reported cached")
	}
	if info.Order <= 0 || info.Blocks <= 0 || info.Ports <= 0 {
		t.Fatalf("implausible model info: %+v", info)
	}
	again := reduceTestModel(t, ts)
	if !again.Cached {
		t.Fatalf("second /reduce rebuilt the model")
	}
	if again.ID != info.ID {
		t.Fatalf("model id changed across identical requests: %q vs %q", info.ID, again.ID)
	}
}

func TestSweepMatchesDirectEval(t *testing.T) {
	srv, ts := newTestServer(t)
	info := reduceTestModel(t, ts)

	req := sweepRequest{Model: info.ID, Row: 0, Col: 0, WMin: 1e6, WMax: 1e12, Points: 25}
	resp := postJSON(t, ts.URL+"/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sweep status = %d", resp.StatusCode)
	}
	var out struct {
		Model  string       `json:"model"`
		Points []SweepPoint `json:"points"`
	}
	out = decode[struct {
		Model  string       `json:"model"`
		Points []SweepPoint `json:"points"`
	}](t, resp)
	if len(out.Points) != req.Points {
		t.Fatalf("got %d points, want %d", len(out.Points), req.Points)
	}

	m, err := srv.Repo().Lookup(info.ID)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	for _, pt := range out.Points {
		col, err := m.ROM.EvalColumn(complex(0, pt.Omega), req.Col)
		if err != nil {
			t.Fatalf("direct eval at ω=%g: %v", pt.Omega, err)
		}
		want := col[req.Row]
		if d := cmplx.Abs(complex(pt.Re, pt.Im) - want); d > 1e-12*(1+cmplx.Abs(want)) {
			t.Fatalf("ω=%g: served %g%+gi, direct %v", pt.Omega, pt.Re, pt.Im, want)
		}
	}
}

func TestSweepNDJSONStreams(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	resp := postJSON(t, ts.URL+"/sweep", sweepRequest{
		Model: info.ID, Row: 0, Col: 0, WMin: 1e6, WMax: 1e12, Points: 17, Format: "ndjson",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sweep status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	rows := 0
	for sc.Scan() {
		var pt SweepPoint
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			t.Fatalf("row %d: %v", rows, err)
		}
		if pt.Omega <= 0 {
			t.Fatalf("row %d has ω=%g", rows, pt.Omega)
		}
		rows++
	}
	if rows != 17 {
		t.Fatalf("streamed %d rows, want 17", rows)
	}
}

func TestEvalBatch(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	resp := postJSON(t, ts.URL+"/eval", evalRequest{Model: info.ID, Omegas: []float64{1e7, 1e9, 1e11}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/eval status = %d", resp.StatusCode)
	}
	out := decode[evalResponse](t, resp)
	if len(out.Points) != 3 {
		t.Fatalf("got %d matrices, want 3", len(out.Points))
	}
	for _, pt := range out.Points {
		if len(pt.H) != info.Outputs || len(pt.H[0]) != info.Ports {
			t.Fatalf("H at ω=%g is %d×%d, want %d×%d",
				pt.Omega, len(pt.H), len(pt.H[0]), info.Outputs, info.Ports)
		}
	}
}

func TestTransientEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	req := transientRequest{
		Model: info.ID, Dt: 1e-10, T: 5e-9,
		Input: sourceSpec{Kind: "step", Amplitude: 1e-3, Delay: 1e-10},
	}
	resp := postJSON(t, ts.URL+"/transient", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/transient status = %d", resp.StatusCode)
	}
	out := decode[struct {
		T []float64   `json:"t"`
		Y [][]float64 `json:"y"`
	}](t, resp)
	wantSteps := int(req.T/req.Dt+0.5) + 1
	if len(out.T) != wantSteps || len(out.Y) != wantSteps {
		t.Fatalf("got %d samples, want %d", len(out.T), wantSteps)
	}
	// A step current drive must produce a nonzero late-time response.
	last := out.Y[len(out.Y)-1]
	var norm float64
	for _, v := range last {
		norm += v * v
	}
	if math.Sqrt(norm) == 0 {
		t.Fatalf("transient response identically zero")
	}
}

func TestModelsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	postJSON(t, ts.URL+"/sweep", sweepRequest{
		Model: info.ID, Row: 0, Col: 0, WMin: 1e6, WMax: 1e12, Points: 10,
	}).Body.Close()

	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatalf("GET /models: %v", err)
	}
	models := decode[[]reduceResponse](t, resp)
	if len(models) != 1 || models[0].ID != info.ID {
		t.Fatalf("/models = %+v, want exactly %q", models, info.ID)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	health := decode[map[string]any](t, resp)
	if health["status"] != "ok" {
		t.Fatalf("healthz status = %v", health["status"])
	}
	stats, _ := health["stats"].(map[string]any)
	if stats == nil {
		t.Fatalf("healthz stats payload missing: %v", health)
	}
	cache, _ := stats["cache"].(map[string]any)
	if cache == nil {
		t.Fatalf("healthz cache stats missing: %v", stats["cache"])
	}
	// The sweep above rode the modal fast path; the stats must say so.
	if cache["modal_evals"].(float64) < 1 {
		t.Fatalf("healthz reports no modal evaluations: %v", stats["cache"])
	}
}

func TestEvalEntryBudget(t *testing.T) {
	srv := New(Config{Workers: 2, MaxEvalEntries: 30})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	info := reduceTestModel(t, ts)
	// One matrix already exceeds a 30-entry budget for this p×m.
	resp := postJSON(t, ts.URL+"/eval", evalRequest{Model: info.ID, Omegas: []float64{1e9, 1e10}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-budget /eval status = %d, want 400", resp.StatusCode)
	}
}

func TestReduceRepositoryFull(t *testing.T) {
	srv := New(Config{Workers: 2, MaxModels: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	resp := postJSON(t, ts.URL+"/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first /reduce status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.08})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity /reduce status = %d, want 429", resp.StatusCode)
	}
	// The resident model keeps serving.
	resp = postJSON(t, ts.URL+"/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resident /reduce status = %d", resp.StatusCode)
	}
	if info := decode[reduceResponse](t, resp); !info.Cached {
		t.Fatalf("resident model reported rebuilt")
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)

	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"unknown benchmark", "/reduce", ModelKey{Benchmark: "ckt9", Scale: 0.1}, 400},
		{"bad scale", "/reduce", ModelKey{Benchmark: "ckt1", Scale: 7}, 400},
		{"negative moments", "/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.1, Moments: -3}, 400},
		{"huge moments", "/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.1, Moments: 5000}, 400},
		{"negative s0", "/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.1, S0: -1e9}, 400},
		{"unknown model", "/sweep", sweepRequest{Model: "nope", WMin: 1, WMax: 2, Points: 3}, 404},
		{"row out of range", "/sweep", sweepRequest{Model: info.ID, Row: 9999, WMin: 1, WMax: 2, Points: 3}, 400},
		{"bad range", "/sweep", sweepRequest{Model: info.ID, WMin: 10, WMax: 1, Points: 3}, 400},
		{"empty omegas", "/eval", evalRequest{Model: info.ID}, 400},
		{"negative omega", "/eval", evalRequest{Model: info.ID, Omegas: []float64{-1}}, 400},
		{"bad source kind", "/transient", transientRequest{Model: info.ID, Dt: 1e-10, T: 1e-9, Input: sourceSpec{Kind: "laser"}}, 400},
		{"bad method", "/transient", transientRequest{Model: info.ID, Dt: 1e-10, T: 1e-9, Input: sourceSpec{Kind: "dc", Value: 1}, Method: "rk9"}, 400},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+tc.path, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Unknown fields are rejected, catching client typos.
	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"model":"x","pionts":5}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown field: status = %d, want 400", resp.StatusCode)
	}
}

// Degenerate sweep grids must surface as client errors (400), never 500 —
// and the legal degenerate case (one point at wmin == wmax) must serve.
func TestSweepDegenerateGridStatus(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)

	bad := []map[string]any{
		{"model": info.ID, "wmin": 1e9, "wmax": 1e5, "points": 10}, // reversed
		{"model": info.ID, "wmin": 1e5, "wmax": 1e9, "points": 1},  // 1 point, real range
		{"model": info.ID, "wmin": -1.0, "wmax": 1e9, "points": 10},
		{"model": info.ID, "wmin": 1e5, "wmax": 1e9, "points": -4},
	}
	for _, body := range bad {
		resp := postJSON(t, ts.URL+"/sweep", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%v: status %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp := postJSON(t, ts.URL+"/sweep", map[string]any{"model": info.ID, "wmin": 1e9, "wmax": 1e9, "points": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("1-point degenerate sweep: status %d", resp.StatusCode)
	}
	out := decode[struct {
		Points []SweepPoint `json:"points"`
	}](t, resp)
	if len(out.Points) != 1 || out.Points[0].Omega != 1e9 {
		t.Fatalf("points = %+v", out.Points)
	}
}
