package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrape fetches /metrics and parses it with the strict exposition-format
// parser, so every scrape in this file doubles as a format-validity check.
func scrape(t *testing.T, ts *httptest.Server) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v", err)
	}
	return sc
}

// TestMetricsCoverAllSubsystems reduces a model, sweeps, evals, and runs a
// session advance, then asserts the scrape covers every subsystem with
// moving counters and the three required duration histograms.
func TestMetricsCoverAllSubsystems(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)

	postJSON(t, ts.URL+"/sweep", sweepRequest{
		Model: info.ID, Row: 0, Col: 0, WMin: 1e6, WMax: 1e12, Points: 10,
	}).Body.Close()
	postJSON(t, ts.URL+"/eval", evalRequest{
		Model: info.ID, Omegas: []float64{1e8, 1e9},
	}).Body.Close()
	sess := decode[sessionInfo](t, postJSON(t, ts.URL+"/session",
		map[string]any{"model": info.ID, "dt": 1e-12}))
	postJSON(t, ts.URL+"/session/"+sess.Session+"/advance", map[string]any{
		"steps": 8, "input": map[string]any{"kind": "step", "amplitude": 1.0},
	}).Body.Close()

	sc := scrape(t, ts)

	// Counters that must have moved after the traffic above.
	moved := []struct {
		name  string
		pairs []string
	}{
		{"pgserve_http_requests_total", []string{"route", "/reduce", "status", "200"}},
		{"pgserve_http_requests_total", []string{"route", "/sweep", "status", "200"}},
		{"pgserve_http_requests_total", []string{"route", "/eval", "status", "200"}},
		{"pgserve_http_requests_total", []string{"route", "/session/{id}/advance", "status", "200"}},
		{"pgserve_repo_builds_total", nil},
		{"pgserve_ward_reductions_total", nil},
		{"pgserve_ward_eliminated_states_total", nil},
		{"pgserve_evals_modal_total", nil},
		{"pgserve_sessions_created_total", nil},
		{"pgserve_session_steps_total", nil},
		{"pgserve_engine_tasks_completed_total", nil},
		{"pgserve_http_response_bytes_total", nil},
	}
	for _, m := range moved {
		v, ok := sc.Value(m.name, m.pairs...)
		if !ok {
			t.Errorf("series %s %v missing from scrape", m.name, m.pairs)
		} else if v < 1 {
			t.Errorf("%s %v = %g, want ≥ 1", m.name, m.pairs, v)
		}
	}

	// Series that must exist (zero is fine), covering every subsystem the
	// acceptance criteria list: repository, factor cache, engine, evaluator,
	// session, interp, and HTTP.
	present := []string{
		"pgserve_repo_models", "pgserve_repo_mem_hits_total", "pgserve_repo_disk_hits_total",
		"pgserve_faccache_hits_total", "pgserve_faccache_misses_total", "pgserve_faccache_bytes",
		"pgserve_engine_queue_depth", "pgserve_engine_workers", "pgserve_engine_tasks_skipped_total",
		"pgserve_evals_factored_total", "pgserve_evals_canceled_total",
		"pgserve_sessions_active", "pgserve_sessions_expired_total",
		"pgserve_interp_served_total", "pgserve_interp_fallbacks_total",
		"pgserve_http_in_flight", "pgserve_uptime_seconds",
	}
	for _, name := range present {
		if !sc.Has(name) {
			t.Errorf("series %s missing from scrape", name)
		}
	}

	// The three required duration histograms, each with at least one sample.
	for _, h := range []struct {
		name  string
		pairs []string
	}{
		{"pgserve_http_request_seconds", []string{"route", "/sweep"}},
		{"pgserve_engine_task_wait_seconds", nil},
		{"pgserve_session_advance_seconds", nil},
		{"pgserve_repo_build_seconds", nil},
		{"pgserve_reduce_phase_seconds", []string{"phase", "grid_build"}},
		{"pgserve_reduce_phase_seconds", []string{"phase", "partition"}},
		{"pgserve_reduce_phase_seconds", []string{"phase", "schur"}},
		{"pgserve_reduce_phase_seconds", []string{"phase", "factor"}},
		{"pgserve_reduce_phase_seconds", []string{"phase", "krylov"}},
		{"pgserve_reduce_phase_seconds", []string{"phase", "modalize"}},
	} {
		count, ok := sc.Value(h.name+"_count", h.pairs...)
		if !ok {
			t.Errorf("histogram %s %v missing from scrape", h.name, h.pairs)
		} else if count < 1 {
			t.Errorf("histogram %s %v has no observations", h.name, h.pairs)
		}
		if sc.Types[h.name] != "histogram" {
			t.Errorf("TYPE of %s = %q, want histogram", h.name, sc.Types[h.name])
		}
	}
}

// TestRequestIDPropagation injects an X-Request-Id and verifies the same ID
// comes back in the response header, in the error body, and on the
// structured request log line.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	srv := New(Config{Workers: 2, Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	const reqID = "test-req-id-42"
	// A request that fails (unknown model → 404) so the error body is
	// exercised too.
	body := bytes.NewReader([]byte(`{"model":"nope","omegas":[1e9]}`))
	req, _ := http.NewRequest("POST", ts.URL+"/eval", body)
	req.Header.Set("X-Request-Id", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /eval: %v", err)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Errorf("response X-Request-Id = %q, want %q", got, reqID)
	}
	errBody := decode[map[string]string](t, resp)
	if errBody["request_id"] != reqID {
		t.Errorf("error body request_id = %q, want %q", errBody["request_id"], reqID)
	}
	if errBody["error"] == "" {
		t.Errorf("error body has no error field: %v", errBody)
	}

	// The log line for this request must carry the same ID.
	var found bool
	scanner := bufio.NewScanner(bytes.NewReader(logBuf.Bytes()))
	for scanner.Scan() {
		var line map[string]any
		if json.Unmarshal(scanner.Bytes(), &line) != nil {
			continue
		}
		if line["request_id"] == reqID {
			found = true
			if line["route"] != "/eval" {
				t.Errorf("log line route = %v, want /eval", line["route"])
			}
			if line["status"] != float64(http.StatusNotFound) {
				t.Errorf("log line status = %v, want 404", line["status"])
			}
			if _, ok := line["duration_ms"]; !ok {
				t.Errorf("log line has no duration_ms: %v", line)
			}
		}
	}
	if !found {
		t.Fatalf("no log line with request_id %q; log:\n%s", reqID, logBuf.Bytes())
	}

	// A hostile propagated ID must be replaced, not echoed.
	req, _ = http.NewRequest("GET", ts.URL+"/models", nil)
	req.Header.Set("X-Request-Id", "bad id; with junk")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /models: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" || strings.Contains(got, " ") {
		t.Errorf("invalid client ID not replaced with a generated one: %q", got)
	}
}

// TestRequestLogCarriesModelID verifies per-request log lines include the
// resolved model ID.
func TestRequestLogCarriesModelID(t *testing.T) {
	var logBuf syncBuffer
	srv := New(Config{Workers: 2, Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	info := reduceTestModel(t, ts)
	postJSON(t, ts.URL+"/sweep", sweepRequest{
		Model: info.ID, Row: 0, Col: 0, WMin: 1e6, WMax: 1e12, Points: 5,
	}).Body.Close()

	var sweepLine map[string]any
	scanner := bufio.NewScanner(bytes.NewReader(logBuf.Bytes()))
	for scanner.Scan() {
		var line map[string]any
		if json.Unmarshal(scanner.Bytes(), &line) != nil {
			continue
		}
		if line["route"] == "/sweep" {
			sweepLine = line
		}
	}
	if sweepLine == nil {
		t.Fatalf("no /sweep log line; log:\n%s", logBuf.Bytes())
	}
	if sweepLine["model"] != info.ID {
		t.Errorf("sweep log line model = %v, want %q", sweepLine["model"], info.ID)
	}
}

// TestHealthzReadiness drives the readiness state machine: ready → 503 with
// reason → ready again; the stats payload must ride along in both states.
func TestHealthzReadiness(t *testing.T) {
	srv, ts := newTestServer(t)

	get := func() (*http.Response, map[string]any) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		return resp, decode[map[string]any](t, resp)
	}

	resp, body := get()
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("ready healthz = %d %v", resp.StatusCode, body["status"])
	}
	if _, ok := body["stats"].(map[string]any); !ok {
		t.Fatalf("ready healthz has no stats payload: %v", body)
	}

	srv.SetNotReady("store preload in progress")
	resp, body = get()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unready healthz status = %d, want 503", resp.StatusCode)
	}
	if body["status"] != "unavailable" || body["reason"] != "store preload in progress" {
		t.Fatalf("unready healthz body = %v", body)
	}
	if _, ok := body["stats"].(map[string]any); !ok {
		t.Fatalf("unready healthz has no stats payload: %v", body)
	}

	srv.SetReady()
	resp, body = get()
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("re-ready healthz = %d %v", resp.StatusCode, body["status"])
	}
}

// TestMetricsDisabled verifies the benchmarking baseline: DisableMetrics
// serves no /metrics endpoint and everything else still works.
func TestMetricsDisabled(t *testing.T) {
	srv := New(Config{Workers: 2, DisableMetrics: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	if srv.Metrics() != nil {
		t.Fatalf("DisableMetrics left a registry attached")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with metrics disabled = %d, want 404", resp.StatusCode)
	}
	// Requests still carry IDs and healthz still works.
	if resp.Header.Get("X-Request-Id") == "" {
		t.Errorf("no X-Request-Id with metrics disabled")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with metrics disabled = %d", resp.StatusCode)
	}
}

// TestMetricsStress hammers the serving endpoints from many goroutines while
// concurrently scraping /metrics, validating every mid-storm scrape. Run
// under -race in CI, this is the proof that lock-free recording and the
// exporter's snapshotting coexist.
func TestMetricsStress(t *testing.T) {
	srv, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	_ = srv

	const clients = 4
	iters := 20
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // continuous scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			scrape(t, ts)
			time.Sleep(time.Millisecond)
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				postJSON(t, ts.URL+"/sweep", sweepRequest{
					Model: info.ID, Row: 0, Col: 0, WMin: 1e6, WMax: 1e12, Points: 10,
				}).Body.Close()
				postJSON(t, ts.URL+"/eval", evalRequest{
					Model: info.ID, Omegas: []float64{1e8, 1e9, 1e10},
				}).Body.Close()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Let clients finish, then stop the scraper.
	go func() {
		deadline := time.After(2 * time.Minute)
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		want := float64(clients * iters)
		for {
			select {
			case <-deadline:
				close(stop)
				return
			case <-ticker.C:
				sc := scrape(t, ts)
				if v, ok := sc.Value("pgserve_http_requests_total", "route", "/sweep", "status", "200"); ok && v >= want {
					close(stop)
					return
				}
			}
		}
	}()
	<-done

	// The middleware records a request's metrics after the handler returns,
	// which may be an instant after the client saw the response — poll
	// briefly before asserting exact totals.
	want := float64(clients * iters)
	var sweepN, evalN float64
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		sc := scrape(t, ts)
		sweepN, _ = sc.Value("pgserve_http_requests_total", "route", "/sweep", "status", "200")
		evalN, _ = sc.Value("pgserve_http_requests_total", "route", "/eval", "status", "200")
		if sweepN == want && evalN == want {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sweepN != want {
		t.Errorf("sweep request counter = %g, want %g", sweepN, want)
	}
	if evalN != want {
		t.Errorf("eval request counter = %g, want %g", evalN, want)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: slog handlers are called from
// request goroutines while tests read the log.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) Bytes() []byte {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return append([]byte(nil), sb.b.Bytes()...)
}
