package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lti"
)

// ErrRepositoryFull is returned by Repository.Get when admitting another
// model would exceed the configured bound. Built ROMs are retained for the
// process lifetime, so an unbounded repository would let arbitrary request
// traffic grow memory without limit.
var ErrRepositoryFull = errors.New("serve: model repository is full")

// DefaultMaxModels bounds the repository when no explicit limit is given.
const DefaultMaxModels = 64

// maxConcurrentBuilds caps simultaneous grid builds + reductions; each build
// already parallelizes internally across cores, and a reduction is the most
// expensive operation a request can trigger.
const maxConcurrentBuilds = 2

// ModelKey identifies one reduced model in the repository: a Table II
// benchmark analogue at a geometric scale, reduced with the given BDSM
// parameters. Zero Moments/S0 select the paper's defaults for the benchmark
// (grid.MatchedMoments, core.DefaultS0), so requests that spell the defaults
// out and requests that omit them share one entry.
type ModelKey struct {
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	Moments   int     `json:"moments,omitempty"`
	S0        float64 `json:"s0,omitempty"`
	RCOnly    bool    `json:"rc_only,omitempty"`
}

// MaxMoments bounds the per-column moment count a request may ask for. The
// paper never uses more than 10; 64 leaves generous headroom while keeping
// a hostile request from demanding an enormous reduction.
const MaxMoments = 64

// Normalize resolves defaulted fields to their effective values.
func (k *ModelKey) Normalize() {
	if k.Moments == 0 {
		k.Moments = grid.MatchedMoments(k.Benchmark)
	}
	opts := core.Options{S0: k.S0, Moments: k.Moments}
	opts.Normalize()
	k.S0 = opts.S0
}

// Validate rejects parameter values that would silently build a degenerate
// or abusive model (negative moment counts reduce to order-1 blocks;
// non-positive expansion points have no meaning for this scheme). Benchmark
// name and scale are validated by grid.Benchmark at build time.
func (k *ModelKey) Validate() error {
	if k.Moments < 0 || k.Moments > MaxMoments {
		return fmt.Errorf("serve: moments must be in [0, %d] (0 = benchmark default), got %d", MaxMoments, k.Moments)
	}
	if k.S0 < 0 {
		return fmt.Errorf("serve: s0 must be ≥ 0 (0 = default %g), got %g", core.DefaultS0, k.S0)
	}
	return nil
}

// ID returns the stable, URL-safe identifier of the normalized key.
func (k ModelKey) ID() string {
	k.Normalize()
	id := fmt.Sprintf("%s-%g-l%d-s0%g", k.Benchmark, k.Scale, k.Moments, k.S0)
	if k.RCOnly {
		id += "-rc"
	}
	// %g renders 1e9 as "1e+09"; '+' is not query-string safe.
	return strings.ReplaceAll(id, "+", "")
}

// Model is an immutable, share-everything handle to a reduced model. The ROM
// and all metadata are read-only after construction, so one Model serves any
// number of concurrent requests without locking.
type Model struct {
	ID  string   `json:"id"`
	Key ModelKey `json:"key"`

	// Nodes, Ports, Outputs are the dimensions of the unreduced grid model.
	Nodes   int `json:"nodes"`
	Ports   int `json:"ports"`
	Outputs int `json:"outputs"`
	// Order and Blocks describe the block-diagonal ROM.
	Order  int `json:"order"`
	Blocks int `json:"blocks"`

	BuildTime  time.Duration `json:"build_ns"`
	ReduceTime time.Duration `json:"reduce_ns"`
	Created    time.Time     `json:"created"`

	// ROM is the block-diagonal reduced model (immutable).
	ROM *lti.BlockDiagSystem `json:"-"`
	// GridKey fingerprints the generated grid configuration.
	GridKey string `json:"-"`
}

// Repository builds and caches reduced models. Each distinct normalized
// ModelKey is built exactly once — concurrent requests for the same key
// coalesce onto a single grid build + BDSM reduction and all block until it
// completes (single-flight). Successful builds are retained for the life of
// the process, so admission is bounded by maxModels; failed builds are
// dropped so callers can retry. At most maxConcurrentBuilds reductions run
// at once — further distinct keys queue.
type Repository struct {
	mu        sync.Mutex
	entries   map[ModelKey]*repoEntry
	byID      map[string]*repoEntry
	maxModels int
	buildSem  chan struct{}
}

type repoEntry struct {
	ready chan struct{} // closed when model/err are set
	model *Model
	err   error
}

// NewRepository returns an empty model repository bounded to maxModels
// entries; maxModels <= 0 selects DefaultMaxModels.
func NewRepository(maxModels int) *Repository {
	if maxModels <= 0 {
		maxModels = DefaultMaxModels
	}
	return &Repository{
		entries:   make(map[ModelKey]*repoEntry),
		byID:      make(map[string]*repoEntry),
		maxModels: maxModels,
		buildSem:  make(chan struct{}, maxConcurrentBuilds),
	}
}

// Get returns the model for key, building it if absent. The second return
// reports whether this call performed the build (false for cache hits and
// for callers that waited on another in-flight build). Get fails with
// ErrRepositoryFull when the model bound is reached.
func (r *Repository) Get(key ModelKey) (*Model, bool, error) {
	if err := key.Validate(); err != nil {
		return nil, false, err
	}
	key.Normalize()
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.mu.Unlock()
		<-e.ready
		return e.model, false, e.err
	}
	if len(r.entries) >= r.maxModels {
		r.mu.Unlock()
		return nil, false, fmt.Errorf("%w (%d models)", ErrRepositoryFull, r.maxModels)
	}
	e := &repoEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.byID[key.ID()] = e
	r.mu.Unlock()

	e.model, e.err = safeBuild(key, r.buildSem)
	close(e.ready)
	if e.err != nil {
		r.mu.Lock()
		if r.entries[key] == e {
			delete(r.entries, key)
			delete(r.byID, key.ID())
		}
		r.mu.Unlock()
		return nil, false, e.err
	}
	return e.model, true, nil
}

// Lookup resolves a model by its ID without triggering a build. It blocks if
// the model is still reducing.
func (r *Repository) Lookup(id string) (*Model, error) {
	r.mu.Lock()
	e, ok := r.byID[id]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q (POST /reduce first)", id)
	}
	<-e.ready
	return e.model, e.err
}

// Models lists all successfully built models, sorted by ID. In-flight builds
// are skipped rather than waited for.
func (r *Repository) Models() []*Model {
	r.mu.Lock()
	entries := make([]*repoEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	out := make([]*Model, 0, len(entries))
	for _, e := range entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, e.model)
			}
		default:
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// safeBuild runs buildModel under the build semaphore, releasing the slot
// and converting panics to errors on every exit path — a panicking build
// must not strand a semaphore slot or leave single-flight waiters blocked
// on a ready channel that never closes.
func safeBuild(key ModelKey, sem chan struct{}) (m *Model, err error) {
	sem <- struct{}{}
	defer func() { <-sem }()
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("serve: building %s panicked: %v", key.ID(), r)
		}
	}()
	return buildModel(key)
}

// buildModel runs the full pipeline for one key: generate the synthetic
// grid, stamp it into a descriptor system, and reduce it with BDSM.
func buildModel(key ModelKey) (*Model, error) {
	cfg, err := grid.Benchmark(key.Benchmark, key.Scale)
	if err != nil {
		return nil, err
	}
	cfg.RCOnly = key.RCOnly

	tBuild := time.Now()
	gm, err := cfg.Build()
	if err != nil {
		return nil, fmt.Errorf("serve: building %s: %w", key.ID(), err)
	}
	sys, err := lti.NewSparseSystem(gm.C, gm.G, gm.B, gm.L)
	if err != nil {
		return nil, fmt.Errorf("serve: wrapping %s: %w", key.ID(), err)
	}
	buildTime := time.Since(tBuild)

	tReduce := time.Now()
	rom, err := core.Reduce(sys, core.Options{S0: key.S0, Moments: key.Moments})
	if err != nil {
		return nil, fmt.Errorf("serve: reducing %s: %w", key.ID(), err)
	}
	reduceTime := time.Since(tReduce)

	n, m, p := sys.Dims()
	order, _, _ := rom.Dims()
	return &Model{
		ID:         key.ID(),
		Key:        key,
		Nodes:      n,
		Ports:      m,
		Outputs:    p,
		Order:      order,
		Blocks:     len(rom.Blocks),
		BuildTime:  buildTime,
		ReduceTime: reduceTime,
		Created:    time.Now(),
		ROM:        rom,
		GridKey:    cfg.Key(),
	}, nil
}
