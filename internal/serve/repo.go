package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/lti"
	"repro/internal/obs"
	"repro/internal/store"
)

// ErrRepositoryFull is returned by Repository.Get when admitting another
// model would exceed the configured bound. Built ROMs are retained for the
// process lifetime, so an unbounded repository would let arbitrary request
// traffic grow memory without limit.
var ErrRepositoryFull = errors.New("serve: model repository is full")

// DefaultMaxModels bounds the repository when no explicit limit is given.
const DefaultMaxModels = 64

// maxConcurrentBuilds caps simultaneous grid builds + reductions; each build
// already parallelizes internally across cores, and a reduction is the most
// expensive operation a request can trigger.
const maxConcurrentBuilds = 2

// ModelKey identifies one reduced model in the repository: a Table II
// benchmark analogue at a geometric scale, reduced with the given BDSM
// parameters. Zero Moments/S0 select the paper's defaults for the benchmark
// (grid.MatchedMoments, core.DefaultS0), so requests that spell the defaults
// out and requests that omit them share one entry.
type ModelKey struct {
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	Moments   int     `json:"moments,omitempty"`
	S0        float64 `json:"s0,omitempty"`
	RCOnly    bool    `json:"rc_only,omitempty"`
}

// MaxMoments bounds the per-column moment count a request may ask for. The
// paper never uses more than 10; 64 leaves generous headroom while keeping
// a hostile request from demanding an enormous reduction.
const MaxMoments = 64

// Normalize resolves defaulted fields to their effective values.
func (k *ModelKey) Normalize() {
	if k.Moments == 0 {
		k.Moments = grid.MatchedMoments(k.Benchmark)
	}
	opts := core.Options{S0: k.S0, Moments: k.Moments}
	opts.Normalize()
	k.S0 = opts.S0
}

// Validate rejects parameter values that would silently build a degenerate
// or abusive model (negative moment counts reduce to order-1 blocks;
// non-positive expansion points have no meaning for this scheme). Benchmark
// name and scale are validated by grid.Benchmark at build time.
func (k *ModelKey) Validate() error {
	if k.Moments < 0 || k.Moments > MaxMoments {
		return fmt.Errorf("serve: moments must be in [0, %d] (0 = benchmark default), got %d", MaxMoments, k.Moments)
	}
	if k.S0 < 0 {
		return fmt.Errorf("serve: s0 must be ≥ 0 (0 = default %g), got %g", core.DefaultS0, k.S0)
	}
	return nil
}

// idEscaper makes the benchmark field of an ID self-delimiting. The raw
// encoding "%s-%g-…" was ambiguous: a hostile benchmark name containing '-'
// and digit runs (e.g. "ckt1-0.25") could collide with a different key's
// encoding. Escaping '-' (the field separator), '+' (stripped below), and
// '%' (the escape head) leaves the first bare '-' as an unambiguous field
// boundary, and the remaining fields are delimited by the literals "-l",
// "-s0", "-rc", whose letters never occur in %g/%d output — so the encoding
// is injective over all key values.
//
// Store-key compatibility: the standard benchmarks (ckt1..ckt5) contain none
// of the escaped characters, so their IDs — and therefore their persistent
// store addresses — are byte-identical to the previous encoding. Only keys
// with exotic benchmark names (which grid.Benchmark refuses to build anyway)
// change encoding.
var idEscaper = strings.NewReplacer("%", "%25", "-", "%2D", "+", "%2B")

// ID returns the stable, URL-safe identifier of the normalized key. Distinct
// normalized keys always produce distinct IDs.
func (k ModelKey) ID() string {
	k.Normalize()
	id := fmt.Sprintf("%s-%g-l%d-s0%g", idEscaper.Replace(k.Benchmark), k.Scale, k.Moments, k.S0)
	if k.RCOnly {
		id += "-rc"
	}
	// %g renders 1e9 as "1e+09"; '+' is not query-string safe. After
	// escaping, every remaining '+' is a %g exponent sign, whose removal
	// cannot merge two distinct renderings.
	return strings.ReplaceAll(id, "+", "")
}

// Model is an immutable, share-everything handle to a reduced model. The ROM
// and all metadata are read-only after construction, so one Model serves any
// number of concurrent requests without locking.
type Model struct {
	ID  string   `json:"id"`
	Key ModelKey `json:"key"`

	// Nodes, Ports, Outputs are the dimensions of the unreduced grid model.
	Nodes   int `json:"nodes"`
	Ports   int `json:"ports"`
	Outputs int `json:"outputs"`
	// Order and Blocks describe the block-diagonal ROM.
	Order  int `json:"order"`
	Blocks int `json:"blocks"`

	BuildTime  time.Duration `json:"build_ns"`
	ReduceTime time.Duration `json:"reduce_ns"`
	Created    time.Time     `json:"created"`

	// ModalBlocks counts the ROM blocks carrying a pole–residue (modal)
	// form — the blocks every evaluation serves without factorization. The
	// remaining Blocks − ModalBlocks fall back to LU pencils.
	ModalBlocks int `json:"modal_blocks"`

	// WardEliminated counts the static states the Ward/Schur pre-reduction
	// removed exactly before the Krylov projection ran. Zero for RC-only
	// grids (no eliminable states), for builds with the stage disabled, and
	// for models loaded from a store written before the field existed.
	WardEliminated int `json:"ward_eliminated,omitempty"`

	// FromStore reports that this process loaded the ROM from the persistent
	// store instead of reducing it (BuildTime/ReduceTime then record what the
	// original reduction cost, Created when it ran).
	FromStore bool `json:"from_store,omitempty"`

	// Interp describes how this model was interpolated from stored library
	// anchors instead of reduced; nil for reduced or stored models.
	// ReduceTime then records the interpolation cost.
	Interp *InterpInfo `json:"interp,omitempty"`

	// ROM is the block-diagonal reduced model (immutable).
	ROM *lti.BlockDiagSystem `json:"-"`
	// Modal is the diagonalize-once fast path of ROM; nil only if
	// modalization failed outright (evaluation then stays on the factored
	// path).
	Modal *lti.ModalSystem `json:"-"`
	// Packed is the structure-of-arrays form of Modal, built once alongside
	// it and used by the batched sweep kernel; nil whenever Modal is.
	Packed *lti.ModalPacked `json:"-"`
	// GridKey fingerprints the generated grid configuration.
	GridKey string `json:"-"`
}

// Outcome classifies how a Repository.Get call obtained its model. It is
// meaningful only when the accompanying error is nil.
type Outcome int

const (
	// OutcomeMemHit: the model was already resident (or this call waited on
	// another caller's in-flight build).
	OutcomeMemHit Outcome = iota
	// OutcomeDiskHit: this call loaded the ROM from the persistent store,
	// skipping the grid build and reduction entirely.
	OutcomeDiskHit
	// OutcomeBuilt: this call paid the full grid build + BDSM reduction.
	OutcomeBuilt
	// OutcomeInterp: this call assembled the model by interpolating stored
	// library anchors — no grid build, no reduction.
	OutcomeInterp
)

func (o Outcome) String() string {
	switch o {
	case OutcomeMemHit:
		return "memory"
	case OutcomeDiskHit:
		return "disk"
	case OutcomeBuilt:
		return "built"
	case OutcomeInterp:
		return "interp"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// RepoStats is a point-in-time snapshot of repository activity. Builds
// counts full reductions; DiskHits counts models served from the persistent
// store instead — the warm-restart economy, made observable.
type RepoStats struct {
	Models      int   `json:"models"`
	Builds      int64 `json:"builds"`
	MemHits     int64 `json:"mem_hits"`
	DiskHits    int64 `json:"disk_hits"`
	DiskMisses  int64 `json:"disk_misses"`
	StoreErrors int64 `json:"store_errors"`
	// InterpModels counts interpolated models currently resident;
	// InterpServed counts requests served through interpolation (zero
	// reductions each); InterpFallbacks counts Δ-scale requests that fell
	// back to a real reduction (no anchors, incompatible structure,
	// ambiguous matching, or error budget exceeded).
	InterpModels    int   `json:"interp_models"`
	InterpServed    int64 `json:"interp_served"`
	InterpFallbacks int64 `json:"interp_fallbacks"`
	// WardReductions counts builds that ran the Ward/Schur pre-reduction
	// stage; WardEliminatedStates sums the static states it removed exactly
	// across those builds.
	WardReductions       int64 `json:"ward_reductions"`
	WardEliminatedStates int64 `json:"ward_eliminated_states"`
}

// Repository builds and caches reduced models. Each distinct normalized
// ModelKey is built exactly once — concurrent requests for the same key
// coalesce onto a single grid build + BDSM reduction and all block until it
// completes (single-flight). Successful builds are retained for the life of
// the process, so admission is bounded by maxModels; failed builds are
// dropped so callers can retry. At most maxConcurrentBuilds reductions run
// at once — further distinct keys queue.
//
// With a persistent store attached, the repository reads through it before
// reducing (a disk hit skips the build entirely) and writes every fresh
// reduction back, so the next process restart starts warm. Store failures
// are never fatal to a request: a corrupt file is quarantined by the store
// and the model is rebuilt; a failed write-through is counted and dropped.
type Repository struct {
	mu        sync.Mutex
	entries   map[ModelKey]*repoEntry
	byID      map[string]*repoEntry
	maxModels int
	buildSem  chan struct{}
	store     *store.Store
	// noModal skips block diagonalization entirely (builds and legacy disk
	// loads) — the full extent of the -no-modal escape hatch, guarding
	// against the diagonalization code itself, not just its use at serve
	// time.
	noModal bool
	// noWard disables the Ward/Schur pre-reduction stage in builds — the
	// -no-ward escape hatch. The stage is exact and on by default.
	noWard bool

	// library indexes the Scale points known per benchmark family (resident
	// models plus store-scanned metadata) — the anchor set Δ-scale
	// interpolation draws from. Keys are normalized ModelKeys with Scale
	// zeroed. Guarded by mu.
	library map[ModelKey]map[float64]struct{}
	// lastLibScan (unix nanos) rate-limits on-demand store rescans.
	lastLibScan atomic.Int64

	// interp is the bounded LRU of interpolated models (see interp.go);
	// interpolants are cheap to rebuild, so eviction is harmless. Guarded
	// by mu.
	interp     map[ModelKey]*interpEntry
	interpByID map[string]*interpEntry
	interpSeq  int64
	maxInterp  int
	interpTol  float64

	builds, memHits, diskHits, diskMisses, storeErrors atomic.Int64
	interpServed, interpFallbacks                      atomic.Int64
	wardReductions, wardEliminated                     atomic.Int64

	// buildHist / phases, when set via Instrument, receive end-to-end build
	// durations and per-phase reduction timings (grid_build, partition,
	// schur, factor, krylov, modalize). Nil by default: an uninstrumented
	// repository records nothing and pays nothing.
	buildHist *obs.Histogram
	phases    *obs.HistogramVec
}

type repoEntry struct {
	ready chan struct{} // closed when model/err are set
	model *Model
	err   error
}

// NewRepository returns an empty, memory-only model repository bounded to
// maxModels entries; maxModels <= 0 selects DefaultMaxModels.
func NewRepository(maxModels int) *Repository {
	return NewRepositoryWithStore(maxModels, nil)
}

// DisableModal makes the repository skip block diagonalization for every
// model it builds or loads. Must be called before the repository serves
// requests.
func (r *Repository) DisableModal() { r.noModal = true }

// DisableWard makes the repository skip the Ward/Schur pre-reduction stage
// for every model it builds. Must be called before the repository serves
// requests.
func (r *Repository) DisableWard() { r.noWard = true }

// Instrument attaches a build-duration histogram and a per-phase reduction
// timing histogram vector (label: phase). Must be called before the
// repository serves requests.
func (r *Repository) Instrument(build *obs.Histogram, phases *obs.HistogramVec) {
	r.buildHist = build
	r.phases = phases
}

// phaseFunc returns the per-phase timing callback builds thread into the
// reduction pipeline, or nil when uninstrumented.
func (r *Repository) phaseFunc() func(string, time.Duration) {
	phases := r.phases
	if phases == nil {
		return nil
	}
	return func(phase string, d time.Duration) {
		phases.With(phase).Observe(d.Seconds())
	}
}

// NewRepositoryWithStore returns a repository backed by the given persistent
// ROM store (nil for memory-only): reductions write through to it and misses
// read through it before building.
func NewRepositoryWithStore(maxModels int, st *store.Store) *Repository {
	if maxModels <= 0 {
		maxModels = DefaultMaxModels
	}
	return &Repository{
		entries:    make(map[ModelKey]*repoEntry),
		byID:       make(map[string]*repoEntry),
		maxModels:  maxModels,
		buildSem:   make(chan struct{}, maxConcurrentBuilds),
		store:      st,
		library:    make(map[ModelKey]map[float64]struct{}),
		interp:     make(map[ModelKey]*interpEntry),
		interpByID: make(map[string]*interpEntry),
		maxInterp:  DefaultMaxInterpModels,
		interpTol:  DefaultInterpTol,
	}
}

// errNotInStore marks a preload-only miss: a store entry vanished (e.g. was
// quarantined) between Scan and load. It must never escape to Get callers —
// they fall back to building.
var errNotInStore = errors.New("serve: model is not in the store")

// Get returns the model for key, building it if absent (first trying the
// persistent store, then the full reduction pipeline). The Outcome reports
// where the model came from; it is meaningful only on success. Get fails
// with ErrRepositoryFull when the model bound is reached.
func (r *Repository) Get(key ModelKey) (*Model, Outcome, error) {
	for {
		m, outcome, err := r.get(key, true)
		if !errors.Is(err, errNotInStore) {
			return m, outcome, err
		}
		// This call coalesced onto a concurrent Preload's entry just as its
		// store file vanished. The preload owner is deleting the failed
		// entry; yield and retry so this request builds the model instead of
		// inheriting preload's build suppression.
		runtime.Gosched()
	}
}

// get is Get with build control: preloading passes allowBuild=false so a
// store entry that vanished mid-scan is skipped instead of triggering the
// reduction preload exists to avoid.
func (r *Repository) get(key ModelKey, allowBuild bool) (*Model, Outcome, error) {
	if err := key.Validate(); err != nil {
		return nil, OutcomeMemHit, err
	}
	key.Normalize()
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.mu.Unlock()
		<-e.ready
		if e.err == nil {
			r.memHits.Add(1)
		}
		return e.model, OutcomeMemHit, e.err
	}
	if len(r.entries) >= r.maxModels {
		r.mu.Unlock()
		return nil, OutcomeMemHit, fmt.Errorf("%w (%d models)", ErrRepositoryFull, r.maxModels)
	}
	e := &repoEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.byID[key.ID()] = e
	r.mu.Unlock()

	outcome := OutcomeDiskHit
	e.model = r.loadFromStore(key)
	if e.model == nil {
		if !allowBuild {
			e.err = fmt.Errorf("%w: %s", errNotInStore, key.ID())
		} else {
			outcome = OutcomeBuilt
			var elapsed time.Duration
			e.model, elapsed, e.err = safeBuild(key, r.buildSem, r.noModal, r.noWard, r.phaseFunc())
			if e.err == nil {
				// elapsed is measured inside the build slot, so the histogram
				// records build cost, not semaphore queueing.
				r.buildHist.Observe(elapsed.Seconds())
				r.builds.Add(1)
				if !r.noWard {
					r.wardReductions.Add(1)
					r.wardEliminated.Add(int64(e.model.WardEliminated))
				}
				r.writeThrough(key, e.model)
			}
		}
	}
	close(e.ready)
	if e.err != nil {
		r.mu.Lock()
		if r.entries[key] == e {
			delete(r.entries, key)
			delete(r.byID, key.ID())
		}
		r.mu.Unlock()
		return nil, outcome, e.err
	}
	r.mu.Lock()
	r.libraryAdd(key)
	// A real (reduced or stored) model supersedes any interpolant cached
	// under the same key: keeping both would double-list the ID in Models()
	// and pin a permanently shadowed LRU slot.
	if ie, ok := r.interp[key]; ok {
		delete(r.interp, key)
		if r.interpByID[key.ID()] == ie {
			delete(r.interpByID, key.ID())
		}
	}
	r.mu.Unlock()
	return e.model, outcome, nil
}

// libraryAdd records key's Scale as a known anchor point of its benchmark
// family. Caller holds mu.
func (r *Repository) libraryAdd(key ModelKey) {
	lk := key
	lk.Scale = 0
	set, ok := r.library[lk]
	if !ok {
		set = make(map[float64]struct{})
		r.library[lk] = set
	}
	set[key.Scale] = struct{}{}
}

// loadFromStore attempts a read-through of the persistent store, returning
// nil on any miss or failure (corrupt files are quarantined inside the
// store; the caller falls back to building). The stored ROM is addressed by
// the model identity and the exact grid fingerprint, so a benchmark whose
// generation parameters changed since the ROM was written simply misses.
func (r *Repository) loadFromStore(key ModelKey) *Model {
	if r.store == nil {
		return nil
	}
	cfg, err := grid.Benchmark(key.Benchmark, key.Scale)
	if err != nil {
		return nil
	}
	cfg.RCOnly = key.RCOnly
	gridKey := cfg.Key()
	rom, modal, meta, err := r.store.Get(key.ID(), gridKey)
	if err != nil {
		r.diskMisses.Add(1)
		return nil
	}
	r.diskHits.Add(1)
	rediagonalized := false
	if modal == nil && !r.noModal {
		// Stored before modal persistence (or stripped): diagonalize now so
		// this process still serves through the fast path.
		modal = modalize(rom)
		rediagonalized = modal != nil
	}
	m := &Model{
		ID:         key.ID(),
		Key:        key,
		Nodes:      meta.Nodes,
		Ports:      meta.Ports,
		Outputs:    meta.Outputs,
		Order:      meta.Order,
		Blocks:     meta.Blocks,
		BuildTime:  time.Duration(meta.BuildNS),
		ReduceTime: time.Duration(meta.ReduceNS),
		Created:    meta.Created,
		FromStore:  true,
		ROM:        rom,
		Modal:      modal,
		GridKey:    gridKey,
	}
	if modal != nil {
		m.ModalBlocks, _ = modal.ModalCount()
		m.Packed = modal.Pack()
	}
	if rediagonalized {
		// Upgrade the stored file in place so the diagonalization is paid
		// once, not on every restart.
		r.writeThrough(key, m)
	}
	return m
}

// modalize wraps Modalize with a nil-on-failure policy: a model without a
// modal form is merely slower, never broken.
func modalize(rom *lti.BlockDiagSystem) *lti.ModalSystem {
	ms, err := rom.Modalize()
	if err != nil {
		return nil
	}
	return ms
}

// writeThrough persists a freshly reduced model. Failures are counted, not
// surfaced: the request already holds a valid in-memory model.
func (r *Repository) writeThrough(key ModelKey, m *Model) {
	if r.store == nil {
		return
	}
	keyJSON, err := json.Marshal(key)
	if err != nil {
		r.storeErrors.Add(1)
		return
	}
	meta := store.Meta{
		ID:          m.ID,
		GridKey:     m.GridKey,
		ModelKey:    keyJSON,
		Nodes:       m.Nodes,
		Ports:       m.Ports,
		Outputs:     m.Outputs,
		Order:       m.Order,
		Blocks:      m.Blocks,
		ModalBlocks: m.ModalBlocks,
		BuildNS:     int64(m.BuildTime),
		ReduceNS:    int64(m.ReduceTime),
		Created:     m.Created,
	}
	if err := r.store.Put(meta, m.ROM, m.Modal); err != nil {
		r.storeErrors.Add(1)
	}
}

// Preload scans the persistent store and registers every valid ROM without
// reducing anything — the warm-restart path. Entries that fail to load
// (quarantined mid-scan, repository full, malformed keys) are skipped; the
// returned count is the number of models resident after their preload
// attempt. Safe to run concurrently with request traffic: registration goes
// through the same single-flight path as Get.
func (r *Repository) Preload() (int, error) {
	if r.store == nil {
		return 0, nil
	}
	metas, err := r.store.Scan()
	if err != nil {
		return 0, err
	}
	// This scan doubles as a library refresh; stamp it so the first Δ-scale
	// request does not immediately rescan the directory.
	r.lastLibScan.Store(time.Now().UnixNano())
	loaded := 0
	for _, meta := range metas {
		key, ok := keyFromMeta(meta.ModelKey, meta.ID)
		if !ok {
			continue
		}
		// Merge the anchor library from this same scan (models that fail to
		// register below — e.g. repository full — still anchor Δ-scale
		// interpolation, which loads them read-only on demand).
		r.libraryAddFromMeta(key, meta.GridKey)
		if _, _, err := r.get(key, false); err == nil {
			loaded++
		}
	}
	return loaded, nil
}

// keyFromMeta recovers and vets the ModelKey a store metadata record claims
// to describe: it must unmarshal, validate, and normalize back to the ID it
// is stored under.
func keyFromMeta(raw json.RawMessage, id string) (ModelKey, bool) {
	if len(raw) == 0 {
		return ModelKey{}, false
	}
	var key ModelKey
	if json.Unmarshal(raw, &key) != nil || key.Validate() != nil {
		return ModelKey{}, false
	}
	key.Normalize()
	if key.ID() != id {
		return ModelKey{}, false // metadata does not describe the key it claims
	}
	return key, true
}

// Store returns the attached persistent store (nil for memory-only).
func (r *Repository) Store() *store.Store { return r.store }

// Stats reports repository activity counters.
func (r *Repository) Stats() RepoStats {
	r.mu.Lock()
	models := len(r.entries)
	interpModels := len(r.interp)
	r.mu.Unlock()
	return RepoStats{
		Models:               models,
		Builds:               r.builds.Load(),
		MemHits:              r.memHits.Load(),
		DiskHits:             r.diskHits.Load(),
		DiskMisses:           r.diskMisses.Load(),
		StoreErrors:          r.storeErrors.Load(),
		InterpModels:         interpModels,
		InterpServed:         r.interpServed.Load(),
		InterpFallbacks:      r.interpFallbacks.Load(),
		WardReductions:       r.wardReductions.Load(),
		WardEliminatedStates: r.wardEliminated.Load(),
	}
}

// Lookup resolves a model by its ID without triggering a build. It blocks if
// the model is still reducing. Interpolated models resolve like reduced ones.
// On an in-memory miss the persistent store is consulted, so a replica that
// never reduced a model can still serve by-id requests after a sibling wrote
// it through a shared store — the failover path a router tier relies on.
func (r *Repository) Lookup(id string) (*Model, error) {
	r.mu.Lock()
	e, ok := r.byID[id]
	if !ok {
		if ie, iok := r.interpByID[id]; iok {
			r.interpTouch(ie)
			r.mu.Unlock()
			return ie.model, nil
		}
	}
	r.mu.Unlock()
	if !ok {
		if m := r.lookupStoreByID(id); m != nil {
			return m, nil
		}
		return nil, fmt.Errorf("serve: unknown model %q (POST /reduce first)", id)
	}
	<-e.ready
	return e.model, e.err
}

// lookupStoreByID read-throughs the persistent store for a model known only
// by ID: scan the metadata, recover the ModelKey it claims, and register the
// model store-only (never building — an unknown id must not trigger a
// reduction). Returns nil on any miss.
func (r *Repository) lookupStoreByID(id string) *Model {
	if r.store == nil {
		return nil
	}
	metas, err := r.store.Scan()
	if err != nil {
		return nil
	}
	for _, meta := range metas {
		if meta.ID != id {
			continue
		}
		key, ok := keyFromMeta(meta.ModelKey, meta.ID)
		if !ok {
			return nil
		}
		m, _, err := r.get(key, false)
		if err != nil {
			return nil
		}
		return m
	}
	return nil
}

// Models lists all successfully built models plus the resident interpolated
// ones (identifiable by Model.Interp), sorted by ID. In-flight builds are
// skipped rather than waited for.
func (r *Repository) Models() []*Model {
	r.mu.Lock()
	entries := make([]*repoEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	interp := make([]*Model, 0, len(r.interp))
	for _, ie := range r.interp {
		interp = append(interp, ie.model)
	}
	r.mu.Unlock()
	out := make([]*Model, 0, len(entries)+len(interp))
	for _, e := range entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, e.model)
			}
		default:
		}
	}
	out = append(out, interp...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// safeBuild runs buildModel under the build semaphore, releasing the slot
// and converting panics to errors on every exit path — a panicking build
// must not strand a semaphore slot or leave single-flight waiters blocked
// on a ready channel that never closes. The returned duration is measured
// after the semaphore is acquired, so it reflects build cost alone, not the
// time spent queued behind other builds.
func safeBuild(key ModelKey, sem chan struct{}, noModal, noWard bool, phase func(string, time.Duration)) (m *Model, elapsed time.Duration, err error) {
	sem <- struct{}{}
	defer func() { <-sem }()
	t0 := time.Now()
	defer func() {
		elapsed = time.Since(t0)
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("serve: building %s panicked: %v", key.ID(), r)
		}
	}()
	m, err = buildModel(key, noModal, noWard, phase)
	return m, 0, err // elapsed is stamped by the deferred closure
}

// buildModel runs the full pipeline for one key: generate the synthetic
// grid, stamp it into a descriptor system, and reduce it with BDSM (Ward
// pre-reduction on unless noWard). phase, when non-nil, receives per-phase
// wall-clock timings (grid_build, partition, schur, factor, krylov,
// modalize) so slow reductions are decomposable; every label is reported
// exactly once per build, as zero when its stage is skipped.
func buildModel(key ModelKey, noModal, noWard bool, phase func(string, time.Duration)) (*Model, error) {
	cfg, err := grid.Benchmark(key.Benchmark, key.Scale)
	if err != nil {
		return nil, err
	}
	cfg.RCOnly = key.RCOnly

	tBuild := time.Now()
	gm, err := cfg.Build()
	if err != nil {
		return nil, fmt.Errorf("serve: building %s: %w", key.ID(), err)
	}
	sys, err := lti.NewSparseSystem(gm.C, gm.G, gm.B, gm.L)
	if err != nil {
		return nil, fmt.Errorf("serve: wrapping %s: %w", key.ID(), err)
	}
	buildTime := time.Since(tBuild)
	if phase != nil {
		phase("grid_build", buildTime)
	}

	var stats core.Stats
	tReduce := time.Now()
	rom, err := core.Reduce(sys, core.Options{
		S0:         key.S0,
		Moments:    key.Moments,
		Backend:    krylov.BackendAuto,
		WardReduce: !noWard,
		Stats:      &stats,
		OnPhase:    phase,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: reducing %s: %w", key.ID(), err)
	}
	reduceTime := time.Since(tReduce)

	// Diagonalize each block once, right after the reduction — every
	// subsequent evaluation of this model rides the modal fast path. A
	// skipped stage still reports its phase, as zero, per the OnPhase
	// contract.
	var modal *lti.ModalSystem
	if !noModal {
		tModal := time.Now()
		modal = modalize(rom)
		if phase != nil {
			phase("modalize", time.Since(tModal))
		}
	} else if phase != nil {
		phase("modalize", 0)
	}

	n, m, p := sys.Dims()
	order, _, _ := rom.Dims()
	mdl := &Model{
		ID:             key.ID(),
		Key:            key,
		Nodes:          n,
		Ports:          m,
		Outputs:        p,
		Order:          order,
		Blocks:         len(rom.Blocks),
		BuildTime:      buildTime,
		ReduceTime:     reduceTime,
		Created:        time.Now(),
		WardEliminated: stats.Ward.External,
		ROM:            rom,
		Modal:          modal,
		GridKey:        cfg.Key(),
	}
	if modal != nil {
		mdl.ModalBlocks, _ = modal.ModalCount()
		mdl.Packed = modal.Pack()
	}
	return mdl, nil
}
