package serve

import (
	"context"
	"sync"
	"testing"
)

// TestEvaluatorConcurrentSweepStress hammers one model from many goroutines
// through every evaluation entry point, on both the modal and the factored
// path, with overlapping entry sets. Its job is to let -race catch any
// unsound sharing of the pooled evalScratch buffers or modal read paths;
// results are also cross-checked against a serial baseline so a data race
// that corrupts output without tripping the detector still fails the test.
func TestEvaluatorConcurrentSweepStress(t *testing.T) {
	key := ModelKey{Benchmark: "ckt1", Scale: 0.1}
	m, err := buildModel(key, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{0, 0}, {1, 0}, {0, 1}, {2, 3}, {3, 3}}
	const points = 20
	omegas := []float64{1e6, 1e9, 3e11, 1e13}

	for _, useModal := range []bool{true, false} {
		eng := NewEngine(4)
		ev := NewEvaluator(eng, NewFactorCache(0), useModal)

		// Serial baselines computed before the stampede.
		wantSweep, err := ev.SweepEntries(context.Background(), m, entries, DefaultWMin, DefaultWMax, points)
		if err != nil {
			t.Fatal(err)
		}
		wantEval, err := ev.EvalBatch(context.Background(), m, omegas)
		if err != nil {
			t.Fatal(err)
		}

		const goroutines = 12
		const rounds = 6
		var wg sync.WaitGroup
		errc := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					sw, err := ev.SweepEntries(context.Background(), m, entries, DefaultWMin, DefaultWMax, points)
					if err != nil {
						errc <- err
						return
					}
					for i := range sw {
						for k := range sw[i].Points {
							if sw[i].Points[k] != wantSweep[i].Points[k] {
								t.Errorf("goroutine %d round %d: sweep entry %d point %d diverged", g, r, i, k)
								return
							}
						}
					}
					hm, err := ev.EvalBatch(context.Background(), m, omegas)
					if err != nil {
						errc <- err
						return
					}
					for k := range hm {
						for i := range hm[k].Data {
							if hm[k].Data[i] != wantEval[k].Data[i] {
								t.Errorf("goroutine %d round %d: eval point %d entry %d diverged", g, r, k, i)
								return
							}
						}
					}
					if _, err := ev.Sweep(context.Background(), m, g%m.Outputs, g%m.Ports, 1e6, 1e12, 10); err != nil {
						errc <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatalf("useModal=%v: %v", useModal, err)
		}
		eng.Close()
	}
}
