package serve

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/lti"
)

// facShards is the shard count of the factorization cache. Sharding keeps
// lock hold times short under concurrent sweeps: two requests at different
// frequencies almost always land on different shards.
const facShards = 16

// DefaultCacheBytes is the factorization cache budget when none is given.
// Factorizations are the dominant steady-state memory consumer of a serving
// process, so the budget is expressed in bytes (via BlockDiagFactors.
// MemBytes), not entries: a full-matrix factorization of a large model and a
// single-column factorization of a small one differ by orders of magnitude.
const DefaultCacheBytes int64 = 256 << 20

// facKey identifies one cached factorization: a model, a complex frequency
// point, and either the full block set (col = -1) or the blocks of a single
// input column. Sweeps over the shared log grid (sim.LogGrid) produce
// bit-identical frequencies across requests, so common points collide on
// purpose. Single-entry sweeps cache per column: factoring (and retaining)
// all m blocks for a request that reads one column would cost m× more.
type facKey struct {
	model string
	s     complex128
	col   int
}

func (k facKey) shard() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.model))
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(real(k.s)))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(imag(k.s)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(k.col)))
	h.Write(buf[:])
	return h.Sum64() % facShards
}

// facEntry is one cache slot. ready is closed once factors/err are set;
// waiters that arrive while the factorization is in flight block on it
// instead of refactoring (single-flight). An entry evicted while still in
// flight keeps working for the goroutines already holding it.
type facEntry struct {
	key     facKey
	ready   chan struct{}
	factors *lti.BlockDiagFactors
	err     error
	// bytes is the entry's accounted size; written under the shard lock once
	// the factorization completes. Zero means in-flight (not yet accounted),
	// so the eviction scan can tell residents from pending entries without
	// blocking on ready.
	bytes int64
}

type facShard struct {
	mu    sync.Mutex
	items map[facKey]*list.Element
	order *list.List // front = most recently used
	bytes int64      // sum of accounted entry sizes
}

// FactorCache is a byte-budgeted, sharded LRU cache of per-frequency block
// pencil factorizations. It amortizes the O(l³) factor cost of
// BlockDiagSystem evaluation across requests: an AC sweep re-run at the same
// grid, or many concurrent requests touching a common frequency, pay the
// factorization once and the O(l²) solves every time after.
//
// Admission is byte-budgeted: each completed factorization is charged its
// MemBytes against a per-shard budget, evicting least-recently-used entries
// to make room; a single factorization larger than a shard's whole budget is
// handed to its caller but never retained (counted in Rejects).
type FactorCache struct {
	shards      [facShards]facShard
	shardBudget int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	rejects   atomic.Int64
}

// NewFactorCache returns a cache bounded to roughly budgetBytes of retained
// factorizations (split evenly across shards). budgetBytes <= 0 selects
// DefaultCacheBytes.
func NewFactorCache(budgetBytes int64) *FactorCache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultCacheBytes
	}
	per := budgetBytes / facShards
	if per < 1 {
		per = 1
	}
	c := &FactorCache{shardBudget: per}
	for i := range c.shards {
		c.shards[i].items = make(map[facKey]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// GetOrFactor returns the full factorization of rom's block pencils at s,
// keyed by modelID, factoring at most once per resident key. The boolean
// reports a cache hit (including waiting on another goroutine's in-flight
// factorization). Errors are not cached: a failed entry is removed so a
// later call retries.
func (c *FactorCache) GetOrFactor(modelID string, rom *lti.BlockDiagSystem, s complex128) (*lti.BlockDiagFactors, bool, error) {
	return c.getOrFactor(facKey{model: modelID, s: s, col: -1}, rom)
}

// GetOrFactorColumn is GetOrFactor for a single input column: only the
// blocks driven by col are factored and cached. The returned context
// evaluates column col exclusively.
func (c *FactorCache) GetOrFactorColumn(modelID string, rom *lti.BlockDiagSystem, s complex128, col int) (*lti.BlockDiagFactors, bool, error) {
	return c.getOrFactor(facKey{model: modelID, s: s, col: col}, rom)
}

func (c *FactorCache) getOrFactor(k facKey, rom *lti.BlockDiagSystem) (*lti.BlockDiagFactors, bool, error) {
	sh := &c.shards[k.shard()]

	sh.mu.Lock()
	if el, ok := sh.items[k]; ok {
		sh.order.MoveToFront(el)
		e := el.Value.(*facEntry)
		sh.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The owner removes failed entries; just report the error.
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.factors, true, nil
	}
	e := &facEntry{key: k, ready: make(chan struct{})}
	el := sh.order.PushFront(e)
	sh.items[k] = el
	sh.mu.Unlock()

	c.misses.Add(1)
	e.factors, e.err = safeFactorize(rom, k)
	if e.err != nil {
		close(e.ready)
		sh.mu.Lock()
		if cur, ok := sh.items[k]; ok && cur == el {
			sh.order.Remove(el)
			delete(sh.items, k)
		}
		sh.mu.Unlock()
		return nil, false, e.err
	}

	// Admission: account the completed entry against the shard budget, or
	// drop it if it alone exceeds the budget. Either way the caller keeps
	// the factors it paid for. A degenerate factorization (a column that
	// drives no blocks) reports zero bytes; charge it one so it never
	// masquerades as the in-flight sentinel (bytes == 0) and stays evictable.
	size := e.factors.MemBytes()
	if size <= 0 {
		size = 1
	}
	sh.mu.Lock()
	if cur, ok := sh.items[k]; ok && cur == el { // still resident (not evicted mid-flight)
		if size > c.shardBudget {
			sh.order.Remove(el)
			delete(sh.items, k)
			c.rejects.Add(1)
		} else {
			e.bytes = size
			sh.bytes += size
			c.evictOverBudget(sh, el)
		}
	}
	sh.mu.Unlock()
	close(e.ready)
	return e.factors, false, nil
}

// evictOverBudget removes least-recently-used accounted entries until the
// shard fits its budget, never evicting keep (the entry that triggered the
// pass) or in-flight entries (bytes == 0), which account themselves on
// completion. Caller holds sh.mu.
func (c *FactorCache) evictOverBudget(sh *facShard, keep *list.Element) {
	for sh.bytes > c.shardBudget {
		var victim *list.Element
		for el := sh.order.Back(); el != nil; el = el.Prev() {
			if el == keep {
				continue
			}
			if el.Value.(*facEntry).bytes > 0 {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		ve := victim.Value.(*facEntry)
		sh.order.Remove(victim)
		delete(sh.items, ve.key)
		sh.bytes -= ve.bytes
		c.evictions.Add(1)
	}
}

// safeFactorize converts a panic anywhere under Factorize into an error, so
// a single poisoned evaluation cannot wedge the entry's waiters (ready would
// never close) or take down the process.
func safeFactorize(rom *lti.BlockDiagSystem, k facKey) (f *lti.BlockDiagFactors, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, err = nil, fmt.Errorf("serve: factorization at s=%v panicked: %v", k.s, r)
		}
	}()
	if k.col < 0 {
		return rom.Factorize(k.s)
	}
	return rom.FactorizeColumn(k.s, k.col)
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Rejects counts factorizations that completed but were too large to
	// retain under the byte budget.
	Rejects int64 `json:"rejects"`
	// BudgetBytes is the effective retention budget; Bytes is the memory
	// currently accounted to resident, completed factorizations.
	BudgetBytes int64 `json:"budget_bytes"`
	Bytes       int64 `json:"bytes"`
	// DiskHits and DiskMisses mirror the model repository's persistent-store
	// counters; the Server fills them in when reporting merged stats.
	DiskHits   int64 `json:"disk_hits"`
	DiskMisses int64 `json:"disk_misses"`
	// ModalEvals and FactoredEvals count entry evaluations served by the
	// modal fast path versus the factored (LU + cache) path; the Server
	// fills them in from its Evaluator when reporting merged stats.
	ModalEvals    int64 `json:"modal_evals"`
	FactoredEvals int64 `json:"factored_evals"`
	// CanceledEvals counts requests aborted mid-evaluation because their
	// context was canceled (client disconnect, deadline) — pool time handed
	// back instead of burned; the Server fills it in from its Evaluator.
	CanceledEvals int64 `json:"canceled_evals"`
}

// Stats reports cache occupancy and hit/miss/eviction counters.
func (c *FactorCache) Stats() CacheStats {
	st := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Rejects:     c.rejects.Load(),
		BudgetBytes: c.shardBudget * facShards,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += sh.order.Len()
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}
