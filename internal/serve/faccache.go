package serve

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/lti"
)

// facShards is the shard count of the factorization cache. Sharding keeps
// lock hold times short under concurrent sweeps: two requests at different
// frequencies almost always land on different shards.
const facShards = 16

// facKey identifies one cached factorization: a model, a complex frequency
// point, and either the full block set (col = -1) or the blocks of a single
// input column. Sweeps over the shared log grid (sim.LogGrid) produce
// bit-identical frequencies across requests, so common points collide on
// purpose. Single-entry sweeps cache per column: factoring (and retaining)
// all m blocks for a request that reads one column would cost m× more.
type facKey struct {
	model string
	s     complex128
	col   int
}

func (k facKey) shard() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.model))
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(real(k.s)))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(imag(k.s)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(k.col)))
	h.Write(buf[:])
	return h.Sum64() % facShards
}

// facEntry is one cache slot. ready is closed once factors/err are set;
// waiters that arrive while the factorization is in flight block on it
// instead of refactoring (single-flight). An entry evicted while still in
// flight keeps working for the goroutines already holding it.
type facEntry struct {
	key     facKey
	ready   chan struct{}
	factors *lti.BlockDiagFactors
	err     error
}

type facShard struct {
	mu    sync.Mutex
	items map[facKey]*list.Element
	order *list.List // front = most recently used
}

// FactorCache is a bounded, sharded LRU cache of per-frequency block pencil
// factorizations. It amortizes the O(l³) factor cost of BlockDiagSystem
// evaluation across requests: an AC sweep re-run at the same grid, or many
// concurrent requests touching a common frequency, pay the factorization
// once and the O(l²) solves every time after.
type FactorCache struct {
	shards   [facShards]facShard
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewFactorCache returns a cache bounded to roughly capacity entries
// (rounded up to a multiple of the shard count). capacity <= 0 selects the
// default of 4096 entries.
func NewFactorCache(capacity int) *FactorCache {
	if capacity <= 0 {
		capacity = 4096
	}
	per := (capacity + facShards - 1) / facShards
	if per < 1 {
		per = 1
	}
	c := &FactorCache{perShard: per}
	for i := range c.shards {
		c.shards[i].items = make(map[facKey]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// GetOrFactor returns the full factorization of rom's block pencils at s,
// keyed by modelID, factoring at most once per resident key. The boolean
// reports a cache hit (including waiting on another goroutine's in-flight
// factorization). Errors are not cached: a failed entry is removed so a
// later call retries.
func (c *FactorCache) GetOrFactor(modelID string, rom *lti.BlockDiagSystem, s complex128) (*lti.BlockDiagFactors, bool, error) {
	return c.getOrFactor(facKey{model: modelID, s: s, col: -1}, rom)
}

// GetOrFactorColumn is GetOrFactor for a single input column: only the
// blocks driven by col are factored and cached. The returned context
// evaluates column col exclusively.
func (c *FactorCache) GetOrFactorColumn(modelID string, rom *lti.BlockDiagSystem, s complex128, col int) (*lti.BlockDiagFactors, bool, error) {
	return c.getOrFactor(facKey{model: modelID, s: s, col: col}, rom)
}

func (c *FactorCache) getOrFactor(k facKey, rom *lti.BlockDiagSystem) (*lti.BlockDiagFactors, bool, error) {
	sh := &c.shards[k.shard()]

	sh.mu.Lock()
	if el, ok := sh.items[k]; ok {
		sh.order.MoveToFront(el)
		e := el.Value.(*facEntry)
		sh.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The owner removes failed entries; just report the error.
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.factors, true, nil
	}
	e := &facEntry{key: k, ready: make(chan struct{})}
	el := sh.order.PushFront(e)
	sh.items[k] = el
	if sh.order.Len() > c.perShard {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.items, oldest.Value.(*facEntry).key)
		c.evictions.Add(1)
	}
	sh.mu.Unlock()

	c.misses.Add(1)
	e.factors, e.err = safeFactorize(rom, k)
	close(e.ready)
	if e.err != nil {
		sh.mu.Lock()
		if cur, ok := sh.items[k]; ok && cur == el {
			sh.order.Remove(el)
			delete(sh.items, k)
		}
		sh.mu.Unlock()
		return nil, false, e.err
	}
	return e.factors, false, nil
}

// safeFactorize converts a panic anywhere under Factorize into an error, so
// a single poisoned evaluation cannot wedge the entry's waiters (ready would
// never close) or take down the process.
func safeFactorize(rom *lti.BlockDiagSystem, k facKey) (f *lti.BlockDiagFactors, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, err = nil, fmt.Errorf("serve: factorization at s=%v panicked: %v", k.s, r)
		}
	}()
	if k.col < 0 {
		return rom.Factorize(k.s)
	}
	return rom.FactorizeColumn(k.s, k.col)
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Bytes approximates the memory retained by resident, completed
	// factorizations.
	Bytes int64 `json:"bytes"`
}

// Stats reports cache occupancy and hit/miss/eviction counters.
func (c *FactorCache) Stats() CacheStats {
	var st CacheStats
	st.Hits = c.hits.Load()
	st.Misses = c.misses.Load()
	st.Evictions = c.evictions.Load()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += sh.order.Len()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*facEntry)
			select {
			case <-e.ready:
				if e.err == nil {
					st.Bytes += e.factors.MemBytes()
				}
			default: // still factoring; skip rather than block
			}
		}
		sh.mu.Unlock()
	}
	return st
}
