package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
)

func TestModelKeyNormalize(t *testing.T) {
	cases := []struct {
		name        string
		in          ModelKey
		wantMoments int
		wantS0      float64
	}{
		{"all defaulted ckt1", ModelKey{Benchmark: "ckt1", Scale: 0.25}, grid.MatchedMoments("ckt1"), core.DefaultS0},
		{"all defaulted ckt2", ModelKey{Benchmark: "ckt2", Scale: 0.1}, grid.MatchedMoments("ckt2"), core.DefaultS0},
		{"all defaulted ckt4", ModelKey{Benchmark: "ckt4", Scale: 0.1}, grid.MatchedMoments("ckt4"), core.DefaultS0},
		{"explicit moments kept", ModelKey{Benchmark: "ckt1", Scale: 0.25, Moments: 9}, 9, core.DefaultS0},
		{"explicit s0 kept", ModelKey{Benchmark: "ckt1", Scale: 0.25, S0: 5e8}, grid.MatchedMoments("ckt1"), 5e8},
		{"spelled-out defaults", ModelKey{Benchmark: "ckt1", Scale: 0.25, Moments: 6, S0: core.DefaultS0}, 6, core.DefaultS0},
		{"unknown benchmark gets fallback", ModelKey{Benchmark: "nope", Scale: 0.25}, grid.MatchedMoments("nope"), core.DefaultS0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := tc.in
			k.Normalize()
			if k.Moments != tc.wantMoments || k.S0 != tc.wantS0 {
				t.Fatalf("Normalize(%+v) = moments %d, s0 %g; want %d, %g",
					tc.in, k.Moments, k.S0, tc.wantMoments, tc.wantS0)
			}
			// Normalize is idempotent.
			again := k
			again.Normalize()
			if again != k {
				t.Fatalf("Normalize not idempotent: %+v then %+v", k, again)
			}
		})
	}
}

func TestModelKeyValidate(t *testing.T) {
	cases := []struct {
		name    string
		in      ModelKey
		wantErr string // empty = valid
	}{
		{"defaults valid", ModelKey{Benchmark: "ckt1", Scale: 0.25}, ""},
		{"explicit valid", ModelKey{Benchmark: "ckt2", Scale: 0.1, Moments: 10, S0: 1e9, RCOnly: true}, ""},
		{"max moments valid", ModelKey{Benchmark: "ckt1", Scale: 0.25, Moments: MaxMoments}, ""},
		{"negative moments", ModelKey{Benchmark: "ckt1", Scale: 0.25, Moments: -3}, "moments"},
		{"excessive moments", ModelKey{Benchmark: "ckt1", Scale: 0.25, Moments: MaxMoments + 1}, "moments"},
		{"negative s0", ModelKey{Benchmark: "ckt1", Scale: 0.25, S0: -1e9}, "s0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.in.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate(%+v) = %v, want nil", tc.in, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate(%+v) = %v, want error mentioning %q", tc.in, err, tc.wantErr)
			}
		})
	}
	// Bad benchmark names and scales are rejected at build time with
	// specific errors (Validate leaves them to grid.Benchmark).
	for _, key := range []ModelKey{
		{Benchmark: "ckt9", Scale: 0.25},
		{Benchmark: "ckt1", Scale: 0},
		{Benchmark: "ckt1", Scale: -1},
		{Benchmark: "ckt1", Scale: 1.5},
	} {
		if _, _, err := NewRepository(0).Get(key); err == nil {
			t.Errorf("Get(%+v) succeeded, want benchmark/scale rejection", key)
		}
	}
}

func TestModelKeyIDCollisions(t *testing.T) {
	// Defaulted and spelled-out keys must collide onto one ID (one model,
	// one store entry).
	collide := [][2]ModelKey{
		{{Benchmark: "ckt1", Scale: 0.25}, {Benchmark: "ckt1", Scale: 0.25, Moments: 6}},
		{{Benchmark: "ckt1", Scale: 0.25}, {Benchmark: "ckt1", Scale: 0.25, S0: core.DefaultS0}},
		{{Benchmark: "ckt1", Scale: 0.25}, {Benchmark: "ckt1", Scale: 0.25, Moments: 6, S0: 1e9}},
		{{Benchmark: "ckt4", Scale: 0.1}, {Benchmark: "ckt4", Scale: 0.1, Moments: 8}},
	}
	for i, pair := range collide {
		if a, b := pair[0].ID(), pair[1].ID(); a != b {
			t.Errorf("pair %d: %q != %q, want defaulted and spelled-out keys to collide", i, a, b)
		}
	}

	// Distinct keys must never collide.
	distinct := []ModelKey{
		{Benchmark: "ckt1", Scale: 0.25},
		{Benchmark: "ckt2", Scale: 0.25},
		{Benchmark: "ckt1", Scale: 0.1},
		{Benchmark: "ckt1", Scale: 0.25, Moments: 7},
		{Benchmark: "ckt1", Scale: 0.25, S0: 2e9},
		{Benchmark: "ckt1", Scale: 0.25, RCOnly: true},
		{Benchmark: "ckt1", Scale: 0.25, Moments: 7, S0: 2e9},
		{Benchmark: "ckt2", Scale: 0.1, RCOnly: true},
	}
	seen := make(map[string]ModelKey, len(distinct))
	for _, k := range distinct {
		id := k.ID()
		if prev, ok := seen[id]; ok {
			t.Errorf("keys %+v and %+v collide on ID %q", prev, k, id)
		}
		seen[id] = k
		// IDs are URL/query-safe: no '+', no spaces.
		if strings.ContainsAny(id, "+ /?&#%") {
			t.Errorf("ID %q contains URL-unsafe characters", id)
		}
	}
	// ID is stable against pre-normalized input.
	k := ModelKey{Benchmark: "ckt1", Scale: 0.25}
	k.Normalize()
	if k.ID() != (ModelKey{Benchmark: "ckt1", Scale: 0.25}).ID() {
		t.Error("ID differs between normalized and raw key")
	}
}

// TestModelKeyIDAdversarialNames pins the injectivity of the ID encoding
// against hostile benchmark names. The previous "%s-%g-…" encoding collided
// for names containing '+' (stripped away: "a+b" and "ab" shared an ID) and
// left '-'-laden names free to mimic other keys' field boundaries; the
// escaped encoding must keep every distinct normalized key on a distinct ID.
func TestModelKeyIDAdversarialNames(t *testing.T) {
	// The historical collision: '+' was stripped after formatting.
	plus := ModelKey{Benchmark: "a+b", Scale: 0.25}
	flat := ModelKey{Benchmark: "ab", Scale: 0.25}
	if plus.ID() == flat.ID() {
		t.Fatalf("%q and %q still collide on %q", plus.Benchmark, flat.Benchmark, plus.ID())
	}

	benches := []string{
		"ckt1", "ckt1-0.25", "ckt1-0.25-l6-s01e09", "ckt1-0.25-l6-s01e09-rc",
		"a", "a-b", "a+b", "ab", "a%b", "a%2Db", "x-1e", "x", "a-0.25-l6",
		"-", "--", "rc", "-rc", "l6", "s01e09",
	}
	scales := []float64{0.25, 1e-7, 2.5}
	moments := []int{0, 7}
	seen := make(map[string]ModelKey)
	for _, b := range benches {
		for _, s := range scales {
			for _, l := range moments {
				for _, rc := range []bool{false, true} {
					k := ModelKey{Benchmark: b, Scale: s, Moments: l, RCOnly: rc}
					id := k.ID()
					norm := k
					norm.Normalize()
					if prev, ok := seen[id]; ok && prev != norm {
						t.Fatalf("distinct keys share ID %q:\n  %+v\n  %+v", id, prev, norm)
					}
					seen[id] = norm
				}
			}
		}
	}

	// Store-key compatibility: the standard benchmarks contain no escaped
	// characters, so their IDs (and store addresses) are unchanged from the
	// previous encoding.
	if id := (ModelKey{Benchmark: "ckt1", Scale: 0.25}).ID(); id != "ckt1-0.25-l6-s01e09" {
		t.Fatalf("standard ID changed: %q", id)
	}
	if id := (ModelKey{Benchmark: "ckt2", Scale: 0.1, RCOnly: true}).ID(); id != "ckt2-0.1-l10-s01e09-rc" {
		t.Fatalf("standard RC ID changed: %q", id)
	}
}

// TestBuildPhaseContract pins the serving layer's OnPhase contract: every
// build reports each of the six phase labels exactly once — grid_build, the
// four core phases, and modalize — with explicit zeros for skipped stages
// (modalize under noModal, partition/schur under noWard) rather than a
// missing or stale observation.
func TestBuildPhaseContract(t *testing.T) {
	key := ModelKey{Benchmark: "ckt1", Scale: 0.1}
	key.Normalize()
	for _, tc := range []struct {
		name            string
		noModal, noWard bool
	}{
		{"default", false, false},
		{"noModal", true, false},
		{"noWard", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			counts := map[string]int{}
			durs := map[string]time.Duration{}
			m, err := buildModel(key, tc.noModal, tc.noWard, func(ph string, d time.Duration) {
				counts[ph]++
				durs[ph] += d
			})
			if err != nil {
				t.Fatal(err)
			}
			want := append([]string{"grid_build"}, core.Phases...)
			want = append(want, "modalize")
			for _, ph := range want {
				if counts[ph] != 1 {
					t.Errorf("phase %q reported %d times, want exactly 1 (counts: %v)", ph, counts[ph], counts)
				}
			}
			if len(counts) != len(want) {
				t.Errorf("got %d phase labels %v, want exactly %v", len(counts), counts, want)
			}
			if tc.noModal && durs["modalize"] != 0 {
				t.Errorf("noModal build reported modalize = %v, want 0", durs["modalize"])
			}
			if tc.noWard {
				if durs["partition"] != 0 || durs["schur"] != 0 {
					t.Errorf("noWard build reported partition=%v schur=%v, want 0", durs["partition"], durs["schur"])
				}
				if m.WardEliminated != 0 {
					t.Errorf("noWard build has WardEliminated = %d, want 0", m.WardEliminated)
				}
			} else if m.WardEliminated <= 0 {
				t.Errorf("RLC benchmark build eliminated %d states via Ward, want > 0", m.WardEliminated)
			}
		})
	}
}

// TestRepositoryWardCounters verifies builds feed the ward counters exposed
// through RepoStats (and from there pgserve_ward_*_total).
func TestRepositoryWardCounters(t *testing.T) {
	r := NewRepository(4)
	m, outcome, err := r.Get(ModelKey{Benchmark: "ckt1", Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeBuilt {
		t.Fatalf("outcome = %v, want built", outcome)
	}
	st := r.Stats()
	if st.WardReductions != 1 {
		t.Errorf("WardReductions = %d, want 1", st.WardReductions)
	}
	if st.WardEliminatedStates != int64(m.WardEliminated) || m.WardEliminated <= 0 {
		t.Errorf("WardEliminatedStates = %d, model WardEliminated = %d, want equal and > 0",
			st.WardEliminatedStates, m.WardEliminated)
	}

	rw := NewRepository(4)
	rw.DisableWard()
	if _, _, err := rw.Get(ModelKey{Benchmark: "ckt1", Scale: 0.1}); err != nil {
		t.Fatal(err)
	}
	if st := rw.Stats(); st.WardReductions != 0 || st.WardEliminatedStates != 0 {
		t.Errorf("DisableWard repository counted ward activity: %+v", st)
	}
}
