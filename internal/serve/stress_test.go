package serve

import (
	"errors"
	"math/cmplx"
	"sync"
	"testing"
)

// TestRepositorySingleFlight hammers Get with identical and distinct keys
// from many goroutines and checks every caller of a key receives the same
// immutable *Model, built exactly once.
func TestRepositorySingleFlight(t *testing.T) {
	repo := NewRepository(0)
	keys := []ModelKey{
		{Benchmark: "ckt1", Scale: 0.08},
		{Benchmark: "ckt1", Scale: 0.08, Moments: 6}, // normalizes to the same entry
		{Benchmark: "ckt1", Scale: 0.12},
	}
	const goroutines = 24
	models := make([]*Model, goroutines)
	built := make([]bool, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, outcome, err := repo.Get(keys[g%len(keys)])
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			models[g] = m
			built[g] = outcome == OutcomeBuilt
		}()
	}
	wg.Wait()
	byID := make(map[string]*Model)
	builds := 0
	for g := 0; g < goroutines; g++ {
		if models[g] == nil {
			t.Fatalf("goroutine %d got no model", g)
		}
		if prev, ok := byID[models[g].ID]; ok && prev != models[g] {
			t.Fatalf("model %s has two distinct handles", models[g].ID)
		}
		byID[models[g].ID] = models[g]
		if built[g] {
			builds++
		}
	}
	if len(byID) != 2 {
		t.Fatalf("got %d distinct models, want 2 (keys 0 and 1 normalize together)", len(byID))
	}
	if builds != 2 {
		t.Fatalf("%d goroutines performed builds, want exactly 2", builds)
	}
	if got := len(repo.Models()); got != 2 {
		t.Fatalf("repository lists %d models, want 2", got)
	}
}

// TestRepositoryBound checks the admission limit: the repository refuses new
// keys once full but keeps serving the models it holds.
func TestRepositoryBound(t *testing.T) {
	repo := NewRepository(2)
	for _, scale := range []float64{0.08, 0.1} {
		if _, _, err := repo.Get(ModelKey{Benchmark: "ckt1", Scale: scale}); err != nil {
			t.Fatalf("admitting scale %g: %v", scale, err)
		}
	}
	if _, _, err := repo.Get(ModelKey{Benchmark: "ckt1", Scale: 0.12}); !errors.Is(err, ErrRepositoryFull) {
		t.Fatalf("third model: err = %v, want ErrRepositoryFull", err)
	}
	if _, outcome, err := repo.Get(ModelKey{Benchmark: "ckt1", Scale: 0.1}); err != nil || outcome != OutcomeMemHit {
		t.Fatalf("resident model after full: outcome=%v err=%v", outcome, err)
	}
}

// TestFactorCacheStress drives the cache from many goroutines over a small
// frequency set, twice: once with room for every entry (pure hit path) and
// once with a cache far smaller than the working set, forcing continuous
// eviction and refactorization. Results must match the single-threaded
// reference bit for bit either way. Run with -race.
func TestFactorCacheStress(t *testing.T) {
	m := testModel(t, 0.1)
	freqs := make([]complex128, 8)
	refs := make([][]complex128, 8)
	var entryBytes int64
	for k := range freqs {
		freqs[k] = complex(0, 1e6*float64(k+1))
		f, err := m.ROM.Factorize(freqs[k])
		if err != nil {
			t.Fatalf("reference factorization %d: %v", k, err)
		}
		entryBytes = f.MemBytes()
		if refs[k], err = f.EvalColumn(0); err != nil {
			t.Fatalf("reference eval %d: %v", k, err)
		}
	}

	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"roomy", 0}, // default budget: room for every entry
		// One full entry per shard: colliding keys evict continuously.
		{"thrashing", entryBytes * facShards},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cache := NewFactorCache(tc.budget)
			const goroutines, iters = 16, 60
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						k := (g + i) % len(freqs)
						f, _, err := cache.GetOrFactor(m.ID, m.ROM, freqs[k])
						if err != nil {
							t.Errorf("goroutine %d iter %d: %v", g, i, err)
							return
						}
						col, err := f.EvalColumn(0)
						if err != nil {
							t.Errorf("goroutine %d iter %d: eval: %v", g, i, err)
							return
						}
						for r := range col {
							if cmplx.Abs(col[r]-refs[k][r]) != 0 {
								t.Errorf("goroutine %d iter %d: row %d: got %v want %v",
									g, i, r, col[r], refs[k][r])
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			st := cache.Stats()
			if st.Hits+st.Misses < goroutines*iters {
				t.Fatalf("stats lost accesses: %+v", st)
			}
		})
	}
}
