package serve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sim"
)

// This file implements request coalescing — the serving half of the batched
// kernels. Two independent coalescers, one per workload:
//
//   - SweepCoalescer merges concurrent /sweep requests against the same
//     (model, grid) into one batched kernel call.
//   - advanceCoalescer merges concurrent session-advance chunks of compatible
//     sessions (same model, dt, method) into one fused sim.StepperGroup pass.
//
// Both use natural batching (group commit): the first request under a key
// executes immediately — an idle server adds no latency window — and
// requests arriving while an execution is in flight queue up and are taken
// as one batch by whichever waiter acquires the execution lock next. Batch
// size adapts to load by itself: idle traffic runs batches of one, a burst
// of N compatible requests collapses into a handful of kernel calls.
//
// A batch of one executes under the requester's context, preserving
// per-request cancellation exactly as before. A shared batch executes
// detached (context.WithoutCancel): one member disconnecting must not abort
// work the other members still want, and the work is bounded by the same
// per-request budgets either way.

// coalesceState is the per-key queue shared by both coalescers: mu guards
// the ticket list, execMu serializes executors. A waiter blocked on execMu
// either finds its ticket already served by the previous executor, or takes
// everything queued meanwhile and executes the next batch itself.
type coalesceState struct {
	refs   int // guarded by the owning coalescer's map lock
	mu     sync.Mutex
	execMu sync.Mutex
}

// ---- sweep coalescing ----

// sweepKey identifies sweeps that can share one kernel call: same model
// instance, same frequency grid.
type sweepKey struct {
	model      *Model
	wMin, wMax float64
	points     int
}

// sweepTicket is one request's slot in a batch.
type sweepTicket struct {
	entries []Entry
	done    bool
	out     []EntrySweep
	err     error
}

type sweepState struct {
	coalesceState
	tickets []*sweepTicket
}

// SweepCoalescer fronts Evaluator.SweepEntries with per-(model, grid)
// natural batching.
type SweepCoalescer struct {
	ev *Evaluator

	mu   sync.Mutex
	keys map[sweepKey]*sweepState

	// batches counts executed kernel batches; sharedBatches those that
	// served more than one request; sharedRequests the requests served by
	// shared batches. batchSize, when instrumented, records requests per
	// executed batch.
	batches        atomic.Int64
	sharedBatches  atomic.Int64
	sharedRequests atomic.Int64
	batchSize      *obs.Histogram
}

func NewSweepCoalescer(ev *Evaluator) *SweepCoalescer {
	return &SweepCoalescer{ev: ev, keys: make(map[sweepKey]*sweepState)}
}

// Instrument attaches the batch-size histogram.
func (c *SweepCoalescer) Instrument(batchSize *obs.Histogram) { c.batchSize = batchSize }

func (c *SweepCoalescer) acquire(key sweepKey) *sweepState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.keys[key]
	if st == nil {
		st = &sweepState{}
		c.keys[key] = st
	}
	st.refs++
	return st
}

func (c *SweepCoalescer) release(key sweepKey, st *sweepState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st.refs--
	if st.refs == 0 {
		delete(c.keys, key)
	}
}

// SweepEntries behaves exactly like Evaluator.SweepEntries, but concurrent
// calls for the same model and grid are merged: their entry sets are
// deduplicated into one union and served by a single batched kernel call,
// each caller receiving its own entries in its own order.
func (c *SweepCoalescer) SweepEntries(ctx context.Context, m *Model, entries []Entry, wMin, wMax float64, points int) ([]EntrySweep, error) {
	if len(entries) == 0 {
		return nil, badRequest("no entries requested")
	}
	// Validate per-request entries before joining a batch, so one malformed
	// request cannot fail a batch it shares with well-formed ones. The grid
	// parameters need no such care: they are part of the key, so a bad grid
	// fails only requests asking for that same bad grid.
	for _, e := range entries {
		if e.Row < 0 || e.Row >= m.Outputs || e.Col < 0 || e.Col >= m.Ports {
			return nil, badRequest("entry (%d,%d) out of range %d×%d", e.Row, e.Col, m.Outputs, m.Ports)
		}
	}
	key := sweepKey{model: m, wMin: wMin, wMax: wMax, points: points}
	st := c.acquire(key)
	defer c.release(key, st)

	t := &sweepTicket{entries: entries}
	st.mu.Lock()
	st.tickets = append(st.tickets, t)
	st.mu.Unlock()

	// Yield once between publishing the ticket and contending for the
	// executor lock. Under saturation the executing goroutine and the engine
	// worker otherwise ping-pong through the scheduler's run-next slot and
	// re-acquire the lock before concurrently arriving requests ever run far
	// enough to enqueue — batches of one, no coalescing. One yield moves this
	// goroutine behind those peers, costing well under a microsecond against
	// kernel calls of tens to hundreds of microseconds.
	runtime.Gosched()

	st.execMu.Lock()
	defer st.execMu.Unlock()
	st.mu.Lock()
	if t.done {
		// A previous executor took this ticket into its batch.
		st.mu.Unlock()
		return t.out, t.err
	}
	batch := st.tickets
	st.tickets = nil
	st.mu.Unlock()

	// Union the batch's entries, deduplicated: entries requested by several
	// members are evaluated once.
	var union []Entry
	pos := make(map[Entry]int)
	for _, tk := range batch {
		for _, e := range tk.entries {
			if _, ok := pos[e]; !ok {
				pos[e] = len(union)
				union = append(union, e)
			}
		}
	}
	execCtx := ctx
	if len(batch) > 1 {
		//pgmor:detach a coalesced batch serves many requests; one caller's cancellation must not fail the rest
		execCtx = context.WithoutCancel(ctx)
		c.sharedBatches.Add(1)
		c.sharedRequests.Add(int64(len(batch)))
	}
	c.batches.Add(1)
	if c.batchSize != nil {
		c.batchSize.Observe(float64(len(batch)))
	}
	out, err := c.ev.SweepEntries(execCtx, m, union, wMin, wMax, points)

	st.mu.Lock()
	for _, tk := range batch {
		tk.done = true
		if err != nil {
			tk.err = err
			continue
		}
		tk.out = make([]EntrySweep, len(tk.entries))
		for i, e := range tk.entries {
			tk.out[i] = out[pos[e]]
		}
	}
	st.mu.Unlock()
	return t.out, t.err
}

// ---- session advance coalescing ----

// advanceKey identifies session chunks that one fused StepperGroup pass can
// serve: same model instance, same step size, same integration rule.
type advanceKey struct {
	model  *Model
	dt     float64
	method sim.Method
}

// advanceTicket is one session's chunk in a batch. The stepper is owned by
// the requesting handler (which holds the session lock); handing it to
// another member's executor is safe because the owner blocks until the
// ticket is done, and the ticket state is published under the state mutex.
type advanceTicket struct {
	stepper *sim.Stepper
	n       int
	input   sim.Input
	done    bool
	res     *sim.Result
	err     error
}

type advanceState struct {
	coalesceState
	tickets []*advanceTicket
}

// advanceCoalescer merges concurrent same-model session advances into fused
// StepperGroup passes, each batch occupying a single engine slot.
type advanceCoalescer struct {
	eng *Engine

	mu   sync.Mutex
	keys map[advanceKey]*advanceState

	batches         atomic.Int64
	groupedBatches  atomic.Int64 // batches that fused more than one session
	groupedSessions atomic.Int64 // sessions advanced via a fused pass
	groupSize       *obs.Histogram
}

func newAdvanceCoalescer(eng *Engine) *advanceCoalescer {
	return &advanceCoalescer{eng: eng, keys: make(map[advanceKey]*advanceState)}
}

// Instrument attaches the group-size histogram.
func (c *advanceCoalescer) Instrument(groupSize *obs.Histogram) { c.groupSize = groupSize }

func (c *advanceCoalescer) acquire(key advanceKey) *advanceState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.keys[key]
	if st == nil {
		st = &advanceState{}
		c.keys[key] = st
	}
	st.refs++
	return st
}

func (c *advanceCoalescer) release(key advanceKey, st *advanceState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st.refs--
	if st.refs == 0 {
		delete(c.keys, key)
	}
}

// Advance integrates one session chunk, opportunistically fused with other
// compatible chunks in flight. Exactly one engine slot is occupied per
// executed batch, so total integration concurrency stays bounded by the
// worker count just as with per-session dispatch — a batch simply carries
// more sessions through the slot.
func (c *advanceCoalescer) Advance(ctx context.Context, m *Model, dt float64, method sim.Method, stepper *sim.Stepper, n int, input sim.Input) (*sim.Result, error) {
	key := advanceKey{model: m, dt: dt, method: method}
	st := c.acquire(key)
	defer c.release(key, st)

	t := &advanceTicket{stepper: stepper, n: n, input: input}
	st.mu.Lock()
	st.tickets = append(st.tickets, t)
	st.mu.Unlock()

	// Same cooperative yield as SweepEntries: let concurrently arriving
	// compatible chunks enqueue before the next executor takes its batch.
	runtime.Gosched()

	st.execMu.Lock()
	defer st.execMu.Unlock()
	st.mu.Lock()
	if t.done {
		st.mu.Unlock()
		return t.res, t.err
	}
	batch := st.tickets
	st.tickets = nil
	st.mu.Unlock()

	execCtx := ctx
	if len(batch) > 1 {
		//pgmor:detach a grouped advance serves many sessions; one caller's cancellation must not fail the rest
		execCtx = context.WithoutCancel(ctx)
		c.groupedBatches.Add(1)
		c.groupedSessions.Add(int64(len(batch)))
	}
	c.batches.Add(1)
	if c.groupSize != nil {
		c.groupSize.Observe(float64(len(batch)))
	}

	// Chunks of equal length fuse into one StepperGroup pass; stragglers
	// (short final chunks) advance individually inside the same slot.
	err := c.eng.MapCtx(execCtx, 1, func(int) error {
		byN := make(map[int][]*advanceTicket)
		for _, tk := range batch {
			byN[tk.n] = append(byN[tk.n], tk)
		}
		for steps, group := range byN {
			if len(group) == 1 {
				tk := group[0]
				tk.res, tk.err = tk.stepper.Advance(steps, tk.input)
				continue
			}
			members := make([]*sim.Stepper, len(group))
			inputs := make([]sim.Input, len(group))
			for i, tk := range group {
				members[i] = tk.stepper
				inputs[i] = tk.input
			}
			g, gerr := sim.NewStepperGroup(members, sim.GroupOptions{})
			if gerr != nil {
				// Incompatible despite the key (distinct stepper shapes are
				// possible if a model was rebuilt): advance independently.
				for _, tk := range group {
					tk.res, tk.err = tk.stepper.Advance(steps, tk.input)
				}
				continue
			}
			results, gerr := g.Advance(steps, inputs)
			for i, tk := range group {
				if gerr != nil {
					tk.err = gerr
					continue
				}
				tk.res = results[i]
			}
		}
		return nil
	})

	st.mu.Lock()
	for _, tk := range batch {
		if err != nil && tk.err == nil && tk.res == nil {
			// The engine task itself failed (context canceled before it
			// ran): every unserved ticket sees that error.
			tk.err = err
		}
		tk.done = true
	}
	st.mu.Unlock()
	return t.res, t.err
}
