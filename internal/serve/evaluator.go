package serve

import (
	"context"
	"math/cmplx"
	"sync"
	"sync/atomic"

	"repro/internal/dense"
	"repro/internal/lti"
	"repro/internal/obs"
	"repro/internal/sim"
)

// SweepPoint is one frequency sample of a batched AC sweep.
type SweepPoint struct {
	Omega float64 `json:"omega"`
	Re    float64 `json:"re"`
	Im    float64 `json:"im"`
	Mag   float64 `json:"mag"`
}

// Entry addresses one transfer-matrix entry H[Row][Col] in a batched sweep.
type Entry struct {
	Row int `json:"row"`
	Col int `json:"col"`
}

// EntrySweep is the result of sweeping one entry over a frequency grid.
type EntrySweep struct {
	Row    int          `json:"row"`
	Col    int          `json:"col"`
	Points []SweepPoint `json:"points"`
}

// Evaluator routes evaluation requests onto the fastest applicable path and
// accounts which path served them. Models whose every block carries a modal
// (pole–residue) form evaluate factorization-free in O(q) per entry — no
// cache lookups, no locks, no allocations on the hot loop; everything else
// goes through the factorization cache exactly as before. Per-request
// scratch for the factored path is pooled so steady-state column evaluations
// allocate nothing either.
type Evaluator struct {
	eng      *Engine
	cache    *FactorCache
	useModal bool

	modalEvals    atomic.Int64
	factoredEvals atomic.Int64
	canceled      atomic.Int64

	// batchKernelCalls counts multi-entry sweeps served by one fused
	// ModalPacked pass; batchEntriesObs, when instrumented, records how
	// many entries each such call carried.
	batchKernelCalls atomic.Int64
	batchEntriesObs  *obs.Histogram

	scratch sync.Pool // *evalScratch
}

// InstrumentBatch attaches the batched-kernel entry-count histogram.
func (ev *Evaluator) InstrumentBatch(entries *obs.Histogram) { ev.batchEntriesObs = entries }

// BatchKernelCalls reports how many fused multi-entry kernel calls ran.
func (ev *Evaluator) BatchKernelCalls() int64 { return ev.batchKernelCalls.Load() }

// evalScratch is the reusable per-task buffer set of the factored path:
// col holds one output column (p), x one block solve (max block order).
type evalScratch struct {
	col []complex128
	x   []complex128
}

// NewEvaluator wires an evaluator over the shared engine and cache.
// useModal=false pins every model to the factored path (the operational
// escape hatch and the benchmark baseline).
func NewEvaluator(eng *Engine, cache *FactorCache, useModal bool) *Evaluator {
	return &Evaluator{eng: eng, cache: cache, useModal: useModal}
}

// modalFor returns the model's modal system when the modal fast path fully
// covers it — every block diagonalized. Partially covered models stay on the
// factored path: their fallback blocks would otherwise pay an uncached LU
// per frequency, which the cache serves cheaper.
func (ev *Evaluator) modalFor(m *Model) *lti.ModalSystem {
	if !ev.useModal || m.Modal == nil || m.ModalBlocks != m.Blocks {
		return nil
	}
	return m.Modal
}

// PathStats reports how many entry evaluations each path has served.
func (ev *Evaluator) PathStats() (modal, factored int64) {
	return ev.modalEvals.Load(), ev.factoredEvals.Load()
}

// CanceledEvals reports how many requests were aborted mid-evaluation by
// context cancellation (client disconnects, deadlines).
func (ev *Evaluator) CanceledEvals() int64 { return ev.canceled.Load() }

// finish folds a request's terminal error through the abort counter: work
// cut short by its context is accounted so /healthz shows how much pool time
// disconnected clients released.
func (ev *Evaluator) finish(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		ev.canceled.Add(1)
	}
	return err
}

// getScratch hands out a buffer set sized for model m.
func (ev *Evaluator) getScratch(m *Model) *evalScratch {
	sc, _ := ev.scratch.Get().(*evalScratch)
	if sc == nil {
		sc = &evalScratch{}
	}
	if cap(sc.col) < m.Outputs {
		sc.col = make([]complex128, m.Outputs)
	}
	return sc
}

// sizeSolveBuf grows the solve buffer to the factorization's need.
func (sc *evalScratch) sizeSolveBuf(f *lti.BlockDiagFactors) []complex128 {
	if n := f.ScratchLen(); cap(sc.x) < n {
		sc.x = make([]complex128, n)
	}
	return sc.x[:cap(sc.x)]
}

// Sweep evaluates H[row][col](jω) of the model's ROM over a logarithmic
// grid. On the modal path the whole sweep is a single vectorized residue
// pass; on the factored path every point goes through the factorization
// cache, so sweeps from concurrent requests on the same grid share pencil
// factors. Cancelling ctx aborts between per-frequency tasks.
func (ev *Evaluator) Sweep(ctx context.Context, m *Model, row, col int, wMin, wMax float64, points int) ([]SweepPoint, error) {
	sweeps, err := ev.SweepEntries(ctx, m, []Entry{{Row: row, Col: col}}, wMin, wMax, points)
	if err != nil {
		return nil, err
	}
	return sweeps[0].Points, nil
}

// SweepEntries evaluates several transfer-matrix entries over one shared
// frequency grid in a single pass: the modal path replays its residue data
// per entry with zero factorizations, and the factored path factors each
// (frequency, column) pencil once no matter how many entries read it.
// Cancelling ctx skips the tasks not yet started.
func (ev *Evaluator) SweepEntries(ctx context.Context, m *Model, entries []Entry, wMin, wMax float64, points int) ([]EntrySweep, error) {
	if len(entries) == 0 {
		return nil, badRequest("no entries requested")
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= m.Outputs || e.Col < 0 || e.Col >= m.Ports {
			return nil, badRequest("entry (%d,%d) out of range %d×%d", e.Row, e.Col, m.Outputs, m.Ports)
		}
	}
	grid, err := sim.LogGrid(wMin, wMax, points)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	out := make([]EntrySweep, len(entries))
	for i, e := range entries {
		out[i] = EntrySweep{Row: e.Row, Col: e.Col, Points: make([]SweepPoint, points)}
	}

	if ms := ev.modalFor(m); ms != nil {
		if len(entries) > 1 && m.Packed != nil {
			// Fused path: every entry in one pole-major kernel pass, as a
			// single engine task. The per-pole reciprocal grid — the
			// expensive part of a residue sweep — is computed once and
			// shared by all entries on the same input column.
			ents := make([][2]int, len(entries))
			for i, e := range entries {
				ents[i] = [2]int{e.Row, e.Col}
			}
			dst := make([]complex128, len(entries)*points)
			err := ev.eng.MapCtx(ctx, 1, func(int) error {
				return m.Packed.SweepEntriesInto(dst, ents, grid)
			})
			if err != nil {
				return nil, ev.finish(ctx, err)
			}
			ev.batchKernelCalls.Add(1)
			if ev.batchEntriesObs != nil {
				ev.batchEntriesObs.Observe(float64(len(entries)))
			}
			for i := range entries {
				for k, h := range dst[i*points : (i+1)*points] {
					out[i].Points[k] = SweepPoint{Omega: grid[k], Re: real(h), Im: imag(h), Mag: cmplx.Abs(h)}
				}
			}
			ev.modalEvals.Add(int64(len(entries) * points))
			return out, nil
		}
		// Single entry: the scalar per-entry sweep divides directly instead
		// of multiplying by a shared reciprocal — measurably faster when
		// nothing shares the pass, so lone sweeps stay on it.
		err := ev.eng.MapCtx(ctx, len(entries), func(i int) error {
			dst := make([]complex128, points)
			if err := ms.SweepEntryInto(dst, entries[i].Row, entries[i].Col, grid); err != nil {
				return err
			}
			for k, h := range dst {
				out[i].Points[k] = SweepPoint{Omega: grid[k], Re: real(h), Im: imag(h), Mag: cmplx.Abs(h)}
			}
			return nil
		})
		if err != nil {
			return nil, ev.finish(ctx, err)
		}
		ev.modalEvals.Add(int64(len(entries) * points))
		return out, nil
	}

	// Factored path: one task per frequency; each needed column is factored
	// (through the cache) and evaluated once, then every entry reading that
	// column picks its row out of the shared buffer.
	byCol := make(map[int][]int, len(entries)) // column → indices into entries
	for i, e := range entries {
		byCol[e.Col] = append(byCol[e.Col], i)
	}
	err = ev.eng.MapCtx(ctx, points, func(k int) error {
		sc := ev.getScratch(m)
		defer ev.scratch.Put(sc)
		s := complex(0, grid[k])
		for col, idxs := range byCol {
			f, _, err := ev.cache.GetOrFactorColumn(m.ID, m.ROM, s, col)
			if err != nil {
				return err
			}
			colBuf := sc.col[:m.Outputs]
			if err := f.EvalColumnInto(colBuf, sc.sizeSolveBuf(f), col); err != nil {
				return err
			}
			for _, i := range idxs {
				h := colBuf[entries[i].Row]
				out[i].Points[k] = SweepPoint{Omega: grid[k], Re: real(h), Im: imag(h), Mag: cmplx.Abs(h)}
			}
		}
		return nil
	})
	if err != nil {
		return nil, ev.finish(ctx, err)
	}
	ev.factoredEvals.Add(int64(len(entries) * points))
	return out, nil
}

// EvalBatch computes the full p×m transfer matrix at each requested angular
// frequency, one engine task per frequency — modal when available, through
// the factorization cache otherwise. Cancelling ctx skips the frequencies
// not yet started.
func (ev *Evaluator) EvalBatch(ctx context.Context, m *Model, omegas []float64) ([]*dense.Mat[complex128], error) {
	out := make([]*dense.Mat[complex128], len(omegas))
	ms := ev.modalFor(m)
	err := ev.eng.MapCtx(ctx, len(omegas), func(k int) error {
		s := complex(0, omegas[k])
		if ms != nil {
			h, err := ms.Eval(s)
			if err != nil {
				return err
			}
			out[k] = h
			return nil
		}
		f, _, err := ev.cache.GetOrFactor(m.ID, m.ROM, s)
		if err != nil {
			return err
		}
		sc := ev.getScratch(m)
		defer ev.scratch.Put(sc)
		h := dense.NewMat[complex128](m.Outputs, m.Ports)
		if err := f.EvalInto(h, sc.sizeSolveBuf(f)); err != nil {
			return err
		}
		out[k] = h
		return nil
	})
	if err != nil {
		return nil, ev.finish(ctx, err)
	}
	n := int64(len(omegas) * m.Ports)
	if ms != nil {
		ev.modalEvals.Add(n)
	} else {
		ev.factoredEvals.Add(n)
	}
	return out, nil
}

// transientChunkSteps is how many integration steps a transient advances
// between context checks: small enough that a disconnected client frees its
// pool slot within one chunk, large enough that the check is noise.
const transientChunkSteps = 256

// Stepper builds a resumable integrator for the model, routed exactly like
// Transient: modal when the fast path fully covers the model, implicit
// otherwise. Sessions call this once and then Advance incrementally.
func (ev *Evaluator) Stepper(m *Model, method sim.Method, dt float64) (*sim.Stepper, error) {
	if ms := ev.modalFor(m); ms != nil {
		return sim.NewStepper(ms, sim.StepperOptions{Method: method, Dt: dt})
	}
	return sim.NewImplicitStepper(m.ROM, sim.StepperOptions{Method: method, Dt: dt})
}

// Transient runs a transient on the model's ROM as a single engine task, so
// the pool's worker count bounds total evaluation concurrency across sweeps,
// evals, and transients alike. Fully modal models integrate each mode
// exactly (per-mode exponentials, no implicit solves); the rest run the
// fixed-step implicit integrator. The block work inside the occupied slot
// runs serially, advancing in chunks so a canceled ctx (client disconnect)
// releases the slot within transientChunkSteps steps instead of integrating
// to completion.
func (ev *Evaluator) Transient(ctx context.Context, m *Model, opts sim.TransientOptions) (*sim.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ms := ev.modalFor(m)
	var res *sim.Result
	err := ev.eng.MapCtx(ctx, 1, func(int) error {
		st, err := ev.Stepper(m, opts.Method, opts.Dt)
		if err != nil {
			return err
		}
		steps := opts.Steps()
		r := &sim.Result{T: make([]float64, 0, steps+1), Y: make([][]float64, 0, steps+1)}
		y0, err := st.Output(opts.Input)
		if err != nil {
			return err
		}
		r.T = append(r.T, 0)
		r.Y = append(r.Y, y0)
		for remaining := steps; remaining > 0; {
			if err := ctx.Err(); err != nil {
				return err
			}
			n := transientChunkSteps
			if n > remaining {
				n = remaining
			}
			chunk, err := st.Advance(n, opts.Input)
			if err != nil {
				return err
			}
			r.T = append(r.T, chunk.T...)
			r.Y = append(r.Y, chunk.Y...)
			remaining -= n
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, ev.finish(ctx, err)
	}
	if ms != nil {
		ev.modalEvals.Add(1)
	} else {
		ev.factoredEvals.Add(1)
	}
	return res, nil
}
