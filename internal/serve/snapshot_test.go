package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/store"
)

// newStoreServer builds a server backed by a persistent store in dir with the
// given snapshot cadence.
func newStoreServer(t *testing.T, dir string, snapshotEvery int) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	srv := New(Config{Workers: 2, Store: st, SnapshotEvery: snapshotEvery})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, st
}

// TestRetryAfterHeaders: every 429/503 the server can emit carries a
// Retry-After header with the policy's whole-second value — session cap,
// repository full, preload 503, and drain 503.
func TestRetryAfterHeaders(t *testing.T) {
	t.Run("session cap", func(t *testing.T) {
		srv := New(Config{Workers: 2, MaxSessions: 1})
		ts := newServerForTest(t, srv)
		info := reduceTestModel(t, ts)
		resp := postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first create status = %d", resp.StatusCode)
		}
		resp = postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10})
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-cap create status = %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("session-cap Retry-After = %q, want \"2\"", ra)
		}
	})

	t.Run("repository full", func(t *testing.T) {
		srv := New(Config{Workers: 2, MaxModels: 1, DisableInterp: true})
		ts := newServerForTest(t, srv)
		resp := postJSON(t, ts.URL+"/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.1})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first reduce status = %d", resp.StatusCode)
		}
		resp = postJSON(t, ts.URL+"/reduce", ModelKey{Benchmark: "ckt1", Scale: 0.2})
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-bound reduce status = %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "10" {
			t.Fatalf("repo-full Retry-After = %q, want \"10\"", ra)
		}
		// The same policy applies on the resolveModel path (/eval by key).
		resp = postJSON(t, ts.URL+"/eval", evalRequest{
			ModelKey: ModelKey{Benchmark: "ckt1", Scale: 0.3}, Omegas: []float64{1e9},
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "10" {
			t.Fatalf("/eval repo-full status %d Retry-After %q, want 429 / \"10\"",
				resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	})

	t.Run("healthz preload and drain", func(t *testing.T) {
		srv, ts := newTestServer(t)
		healthz := func() *http.Response {
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatalf("GET /healthz: %v", err)
			}
			resp.Body.Close()
			return resp
		}
		srv.SetNotReady("store preload in progress")
		resp := healthz()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("preload healthz status = %d, want 503", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("preload Retry-After = %q, want \"1\"", ra)
		}

		srv.SetNotReadyFor("draining: shutdown in progress", RetryAfterDrain)
		resp = healthz()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("drain healthz status = %d, want 503", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "10" {
			t.Fatalf("drain Retry-After = %q, want \"10\"", ra)
		}

		srv.SetReady()
		resp = healthz()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("Retry-After") != "" {
			t.Fatalf("ready healthz status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	})
}

// TestSessionSnapshotOnAdvance: with SnapshotEvery=1, every completed advance
// leaves a persisted snapshot at exactly the step the client saw.
func TestSessionSnapshotOnAdvance(t *testing.T) {
	srv, ts, st := newStoreServer(t, t.TempDir(), 1)
	info := reduceTestModel(t, ts)
	sess := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))
	input := sourceSpec{Kind: "sine", Amplitude: 1e-3, Freq: 1e9}

	advanceSession(t, ts.URL, sess.Session, 10, input)
	meta, _, err := st.GetSnapshot(sess.Session)
	if err != nil {
		t.Fatalf("GetSnapshot after first advance: %v", err)
	}
	if meta.Step != 10 || !meta.Emitted0 || meta.Advances != 1 {
		t.Fatalf("snapshot meta %+v, want step 10, emitted0, 1 advance", meta)
	}
	if meta.ModelID != info.ID || meta.Method != "be" || meta.Dt != 1e-10 {
		t.Fatalf("snapshot meta %+v does not pin the session config", meta)
	}

	advanceSession(t, ts.URL, sess.Session, 7, input)
	meta, _, err = st.GetSnapshot(sess.Session)
	if err != nil {
		t.Fatalf("GetSnapshot after second advance: %v", err)
	}
	if meta.Step != 17 || meta.Advances != 2 {
		t.Fatalf("snapshot meta %+v, want step 17 after 2 advances", meta)
	}
	if s := srv.Sessions().Stats(); s.SnapshotsSaved != 2 || s.SnapshotErrors != 0 {
		t.Fatalf("session stats %+v, want 2 snapshots saved", s)
	}

	// Deleting the session deletes its snapshot: no resurrection elsewhere.
	resp, err := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+sess.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := http.DefaultClient.Do(resp)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", dr.StatusCode)
	}
	if _, _, err := st.GetSnapshot(sess.Session); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("snapshot survived session delete: %v", err)
	}
}

// TestSessionResumeAcrossServers is the failover acceptance check: a session
// advanced on one server resumes on a second server sharing the store
// directory and streams bit-identical rows to an uninterrupted session.
func TestSessionResumeAcrossServers(t *testing.T) {
	dir := t.TempDir()
	_, ts1, _ := newStoreServer(t, dir, 1)
	info := reduceTestModel(t, ts1)
	input := sourceSpec{Kind: "pulse", Low: 0, High: 1e-3, Delay: 2e-10, Rise: 1e-10, Fall: 1e-10, Width: 5e-10, Period: 2e-9}
	const dt = 1e-10

	// Uninterrupted reference on server 1.
	ref := decode[sessionInfo](t, postJSON(t, ts1.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: dt}))
	refRows := advanceSession(t, ts1.URL, ref.Session, 30, input)
	refRows = append(refRows, advanceSession(t, ts1.URL, ref.Session, 40, input)...)

	// Failover path: advance 30 on server 1, then resume on server 2 (its
	// own Server over the same store — the model loads from disk, the
	// session state from its snapshot).
	sess := decode[sessionInfo](t, postJSON(t, ts1.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: dt}))
	got := advanceSession(t, ts1.URL, sess.Session, 30, input)

	_, ts2, _ := newStoreServer(t, dir, 1)
	resp := postJSON(t, ts2.URL+"/session", sessionCreateRequest{Resume: sess.Session})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume status = %d", resp.StatusCode)
	}
	resumed := decode[sessionInfo](t, resp)
	if resumed.Session != sess.Session || resumed.Step != 30 {
		t.Fatalf("resumed info %+v, want same id at step 30", resumed)
	}
	if !resumed.Created.Equal(sess.Created) || !resumed.ExpiresAt.Equal(sess.ExpiresAt) {
		t.Fatalf("resume changed the session lifetime: %+v vs %+v", resumed, sess)
	}
	got = append(got, advanceSession(t, ts2.URL, sess.Session, 40, input)...)

	if len(got) != len(refRows) {
		t.Fatalf("failover streamed %d rows, reference %d", len(got), len(refRows))
	}
	for i := range refRows {
		if got[i].T != refRows[i].T {
			t.Fatalf("row %d: t=%g, want %g", i, got[i].T, refRows[i].T)
		}
		for j := range refRows[i].Y {
			if got[i].Y[j] != refRows[i].Y[j] {
				t.Fatalf("row %d output %d: %g, want %g (not bit-exact)", i, j, got[i].Y[j], refRows[i].Y[j])
			}
		}
	}

	// The resumed t=0 row is not re-emitted: 31 + 40 rows total.
	if want := 30 + 1 + 40; len(got) != want {
		t.Fatalf("row count %d, want %d", len(got), want)
	}
}

// TestSessionResumeAtStep: resume_step pins the resume to an exact retained
// step — the lost-response failover path. After two advances the store holds
// generations at steps 30 and 50; a router that only saw the first advance
// complete resumes at 30 on another replica and replays the second advance
// bit-exactly.
func TestSessionResumeAtStep(t *testing.T) {
	dir := t.TempDir()
	_, ts1, _ := newStoreServer(t, dir, 1)
	info := reduceTestModel(t, ts1)
	input := sourceSpec{Kind: "sine", Amplitude: 1e-3, Freq: 2e9}
	const dt = 1e-10

	sess := decode[sessionInfo](t, postJSON(t, ts1.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: dt}))
	advanceSession(t, ts1.URL, sess.Session, 30, input)
	second := advanceSession(t, ts1.URL, sess.Session, 20, input)

	// Model the crash: the second advance's response never reached the
	// client, so the client-observed step is 30 while the latest snapshot is
	// at 50. A pinned resume rewinds to the previous generation.
	_, ts2, _ := newStoreServer(t, dir, 1)
	resp := postJSON(t, ts2.URL+"/session", sessionCreateRequest{Resume: sess.Session, ResumeStep: 30})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned resume status = %d, want 200", resp.StatusCode)
	}
	resumed := decode[sessionInfo](t, resp)
	if resumed.Session != sess.Session || resumed.Step != 30 {
		t.Fatalf("pinned resume info %+v, want same id at step 30", resumed)
	}
	replayed := advanceSession(t, ts2.URL, sess.Session, 20, input)
	if len(replayed) != len(second) {
		t.Fatalf("replay streamed %d rows, original %d", len(replayed), len(second))
	}
	for i := range second {
		if replayed[i].T != second[i].T {
			t.Fatalf("replay row %d: t=%g, want %g", i, replayed[i].T, second[i].T)
		}
		for j := range second[i].Y {
			if replayed[i].Y[j] != second[i].Y[j] {
				t.Fatalf("replay row %d output %d: %g, want %g (not bit-exact)", i, j, replayed[i].Y[j], second[i].Y[j])
			}
		}
	}

	// A step no retained generation captures is 409 (session alive, not
	// replayable from there), distinct from the 404 of a missing session.
	_, ts3, _ := newStoreServer(t, dir, 1)
	resp = postJSON(t, ts3.URL+"/session", sessionCreateRequest{Resume: sess.Session, ResumeStep: 7})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unreachable-step resume status = %d, want 409", resp.StatusCode)
	}

	// resume_step without resume is malformed.
	resp = postJSON(t, ts3.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: dt, ResumeStep: 30})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("resume_step without resume status = %d, want 400", resp.StatusCode)
	}
}

// TestSnapshotSessionsDrain: the drain hook persists every live session even
// when periodic snapshots are disabled.
func TestSnapshotSessionsDrain(t *testing.T) {
	srv, ts, st := newStoreServer(t, t.TempDir(), 0)
	info := reduceTestModel(t, ts)
	input := sourceSpec{Kind: "dc", Value: 1e-3}
	s1 := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))
	s2 := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))
	advanceSession(t, ts.URL, s1.Session, 12, input)
	advanceSession(t, ts.URL, s2.Session, 5, input)

	// Periodic snapshots are off: nothing persisted yet.
	if _, _, err := st.GetSnapshot(s1.Session); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("unexpected snapshot before drain: %v", err)
	}
	if n := srv.SnapshotSessions(); n != 2 {
		t.Fatalf("SnapshotSessions = %d, want 2", n)
	}
	m1, _, err := st.GetSnapshot(s1.Session)
	if err != nil || m1.Step != 12 {
		t.Fatalf("drained snapshot 1: %+v, %v", m1, err)
	}
	m2, _, err := st.GetSnapshot(s2.Session)
	if err != nil || m2.Step != 5 {
		t.Fatalf("drained snapshot 2: %+v, %v", m2, err)
	}
}

// TestSessionResumeRejections: unusable resumes are 404 (fresh-session
// recovery), malformed resume requests are 400.
func TestSessionResumeRejections(t *testing.T) {
	_, ts, st := newStoreServer(t, t.TempDir(), 1)
	info := reduceTestModel(t, ts)

	resp := postJSON(t, ts.URL+"/session", sessionCreateRequest{Resume: "no-such-session"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("resume of missing snapshot status = %d, want 404", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/session", sessionCreateRequest{Resume: "x", Model: info.ID, Dt: 1e-10})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("resume with extra fields status = %d, want 400", resp.StatusCode)
	}

	// A session still live on this replica cannot be resumed again: 409.
	sess := decode[sessionInfo](t, postJSON(t, ts.URL+"/session", sessionCreateRequest{Model: info.ID, Dt: 1e-10}))
	advanceSession(t, ts.URL, sess.Session, 3, sourceSpec{Kind: "dc", Value: 1})
	resp = postJSON(t, ts.URL+"/session", sessionCreateRequest{Resume: sess.Session})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume of live session status = %d, want 409", resp.StatusCode)
	}

	// An expired snapshot is deleted on the resume attempt.
	meta, payload, err := st.GetSnapshot(sess.Session)
	if err != nil {
		t.Fatalf("GetSnapshot: %v", err)
	}
	meta.Deadline = time.Now().Add(-time.Minute)
	if err := st.PutSnapshot(meta, payload); err != nil {
		t.Fatalf("PutSnapshot: %v", err)
	}
	srv2 := New(Config{Workers: 2, Store: st})
	ts2 := newServerForTest(t, srv2)
	resp = postJSON(t, ts2.URL+"/session", sessionCreateRequest{Resume: sess.Session})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("resume of expired snapshot status = %d, want 404", resp.StatusCode)
	}
	if _, _, err := st.GetSnapshot(sess.Session); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("expired snapshot not cleaned up: %v", err)
	}

	// A server without a store cannot resume at all.
	srv3, ts3 := newTestServer(t)
	_ = srv3
	resp = postJSON(t, ts3.URL+"/session", sessionCreateRequest{Resume: "whatever"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("storeless resume status = %d, want 400", resp.StatusCode)
	}
}
