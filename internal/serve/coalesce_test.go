package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// sameSweepPoint compares two sweep samples to relative tolerance: a request
// coalesced into a shared batch may be served by the packed kernel while its
// uncoalesced baseline ran scalar, and the two kernels differ in the last
// ulps (shared reciprocal vs direct division).
func sameSweepPoint(a, b SweepPoint) bool {
	const tol = 1e-12
	close := func(x, y float64) bool {
		scale := math.Max(math.Abs(x), math.Abs(y))
		return math.Abs(x-y) <= tol*math.Max(scale, 1)
	}
	return a.Omega == b.Omega && close(a.Re, b.Re) && close(a.Im, b.Im) && close(a.Mag, b.Mag)
}

// coalesceFixture builds a modal-capable model plus an engine/evaluator pair
// sized like a small server.
func coalesceFixture(t testing.TB) (*Model, *Engine, *Evaluator) {
	t.Helper()
	m, err := buildModel(ModelKey{Benchmark: "ckt1", Scale: 0.1}, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Packed == nil {
		t.Fatal("test model has no packed modal form")
	}
	eng := NewEngine(4)
	t.Cleanup(eng.Close)
	return m, eng, NewEvaluator(eng, NewFactorCache(0), true)
}

// TestSweepCoalescerPassThrough: an uncontended request behaves exactly like
// calling the evaluator directly, and malformed requests fail fast without
// executing a batch.
func TestSweepCoalescerPassThrough(t *testing.T) {
	m, _, ev := coalesceFixture(t)
	c := NewSweepCoalescer(ev)
	entries := []Entry{{0, 0}, {1, 2}, {0, 0}} // duplicates preserved
	const points = 16

	want, err := ev.SweepEntries(context.Background(), m, entries, DefaultWMin, DefaultWMax, points)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SweepEntries(context.Background(), m, entries, DefaultWMin, DefaultWMax, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entry sweeps, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Row != want[i].Row || got[i].Col != want[i].Col {
			t.Fatalf("entry %d = (%d,%d), want (%d,%d)", i, got[i].Row, got[i].Col, want[i].Row, want[i].Col)
		}
		for k := range got[i].Points {
			if got[i].Points[k] != want[i].Points[k] {
				t.Fatalf("entry %d point %d diverged", i, k)
			}
		}
	}
	if n := c.batches.Load(); n != 1 {
		t.Fatalf("batches = %d, want 1", n)
	}
	if n := c.sharedBatches.Load(); n != 0 {
		t.Fatalf("sharedBatches = %d, want 0", n)
	}

	if _, err := c.SweepEntries(context.Background(), m, nil, DefaultWMin, DefaultWMax, points); err == nil {
		t.Error("empty entry list accepted")
	}
	if _, err := c.SweepEntries(context.Background(), m, []Entry{{-1, 0}}, DefaultWMin, DefaultWMax, points); err == nil {
		t.Error("out-of-range entry accepted")
	}
	var httpErr *httpError
	_, err = c.SweepEntries(context.Background(), m, []Entry{{0, 99}}, DefaultWMin, DefaultWMax, points)
	if !errors.As(err, &httpErr) || httpErr.code != 400 {
		t.Errorf("out-of-range entry produced %v, want a 400", err)
	}
	if n := c.batches.Load(); n != 1 {
		t.Fatalf("invalid requests executed batches: batches = %d, want 1", n)
	}
	if len(c.keys) != 0 {
		t.Fatalf("%d key states leaked", len(c.keys))
	}
}

// TestSweepCoalescerSharedBatch forces a deterministic shared batch: the
// executor lock is held while N requests queue up, so releasing it makes one
// request execute all N in a single kernel call, each caller receiving its
// own entries in its own order.
func TestSweepCoalescerSharedBatch(t *testing.T) {
	m, _, ev := coalesceFixture(t)
	c := NewSweepCoalescer(ev)
	const points = 12
	reqs := [][]Entry{
		{{0, 0}, {1, 1}},
		{{1, 1}, {2, 2}, {0, 0}},
		{{3, 3}},
		{{0, 0}},
	}
	want := make([][]EntrySweep, len(reqs))
	for i, entries := range reqs {
		w, err := ev.SweepEntries(context.Background(), m, entries, DefaultWMin, DefaultWMax, points)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	kernelBefore := ev.BatchKernelCalls()

	key := sweepKey{model: m, wMin: DefaultWMin, wMax: DefaultWMax, points: points}
	st := c.acquire(key)
	st.execMu.Lock()

	got := make([][]EntrySweep, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, entries := range reqs {
		wg.Add(1)
		go func(i int, entries []Entry) {
			defer wg.Done()
			got[i], errs[i] = c.SweepEntries(context.Background(), m, entries, DefaultWMin, DefaultWMax, points)
		}(i, entries)
	}
	// Wait for every request to enqueue its ticket, then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st.mu.Lock()
		n := len(st.tickets)
		st.mu.Unlock()
		if n == len(reqs) {
			break
		}
		if time.Now().After(deadline) {
			st.execMu.Unlock()
			t.Fatalf("only %d/%d tickets queued", n, len(reqs))
		}
		time.Sleep(time.Millisecond)
	}
	st.execMu.Unlock()
	wg.Wait()
	c.release(key, st)

	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d sweeps, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j].Row != want[i][j].Row || got[i][j].Col != want[i][j].Col {
				t.Fatalf("request %d entry %d misprojected", i, j)
			}
			for k := range got[i][j].Points {
				if !sameSweepPoint(got[i][j].Points[k], want[i][j].Points[k]) {
					t.Fatalf("request %d entry %d point %d diverged", i, j, k)
				}
			}
		}
	}
	if n := c.batches.Load(); n != 1 {
		t.Fatalf("batches = %d, want 1", n)
	}
	if n := c.sharedBatches.Load(); n != 1 {
		t.Fatalf("sharedBatches = %d, want 1", n)
	}
	if n := c.sharedRequests.Load(); n != int64(len(reqs)) {
		t.Fatalf("sharedRequests = %d, want %d", n, len(reqs))
	}
	// The union has several entries, so the shared batch must have gone
	// through the packed kernel.
	if ev.BatchKernelCalls() == kernelBefore {
		t.Error("shared batch did not use the batched kernel")
	}
	if len(c.keys) != 0 {
		t.Fatalf("%d key states leaked", len(c.keys))
	}
}

// TestAdvanceCoalescerFusedBatch forces a deterministic fused advance: N
// compatible session chunks queue behind a held executor lock, then advance
// as one StepperGroup pass that must be bit-identical to independent
// steppers.
func TestAdvanceCoalescerFusedBatch(t *testing.T) {
	m, eng, ev := coalesceFixture(t)
	c := newAdvanceCoalescer(eng)
	const dt = 1e-12
	const n = 32
	const sessions = 5

	steppers := make([]*sim.Stepper, sessions)
	twins := make([]*sim.Stepper, sessions)
	inputs := make([]sim.Input, sessions)
	for i := range steppers {
		var err error
		if steppers[i], err = ev.Stepper(m, sim.Trapezoidal, dt); err != nil {
			t.Fatal(err)
		}
		if twins[i], err = ev.Stepper(m, sim.Trapezoidal, dt); err != nil {
			t.Fatal(err)
		}
		inputs[i] = sim.UniformInput(sim.Sine{Amplitude: 1 + 0.1*float64(i), Freq: 1e9 * float64(1+i%3)})
	}

	key := advanceKey{model: m, dt: dt, method: sim.Trapezoidal}
	st := c.acquire(key)
	st.execMu.Lock()

	results := make([]*sim.Result, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Advance(context.Background(), m, dt, sim.Trapezoidal, steppers[i], n, inputs[i])
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st.mu.Lock()
		queued := len(st.tickets)
		st.mu.Unlock()
		if queued == sessions {
			break
		}
		if time.Now().After(deadline) {
			st.execMu.Unlock()
			t.Fatalf("only %d/%d tickets queued", queued, sessions)
		}
		time.Sleep(time.Millisecond)
	}
	st.execMu.Unlock()
	wg.Wait()
	c.release(key, st)

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		want, err := twins[i].Advance(n, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(results[i].T) != len(want.T) {
			t.Fatalf("session %d: %d rows, want %d", i, len(results[i].T), len(want.T))
		}
		for k := range want.T {
			if results[i].T[k] != want.T[k] {
				t.Fatalf("session %d row %d: time diverged", i, k)
			}
			for r := range want.Y[k] {
				if results[i].Y[k][r] != want.Y[k][r] {
					t.Fatalf("session %d row %d output %d: fused %v, independent %v",
						i, k, r, results[i].Y[k][r], want.Y[k][r])
				}
			}
		}
	}
	if n := c.batches.Load(); n != 1 {
		t.Fatalf("batches = %d, want 1", n)
	}
	if n := c.groupedBatches.Load(); n != 1 {
		t.Fatalf("groupedBatches = %d, want 1", n)
	}
	if got := c.groupedSessions.Load(); got != sessions {
		t.Fatalf("groupedSessions = %d, want %d", got, sessions)
	}
	if len(c.keys) != 0 {
		t.Fatalf("%d key states leaked", len(c.keys))
	}
}

// TestCoalesceStress hammers both coalescers from many goroutines with -race
// in CI: overlapping sweep entry sets against one (model, grid) key, and
// per-goroutine session steppers advancing in chunks that opportunistically
// fuse. Every result is cross-checked against an uncoalesced baseline, so a
// batch that merges or projects wrongly fails even when the race detector
// stays quiet.
func TestCoalesceStress(t *testing.T) {
	m, eng, ev := coalesceFixture(t)
	sweeps := NewSweepCoalescer(ev)
	advances := newAdvanceCoalescer(eng)
	const points = 10

	entrySets := [][]Entry{
		{{0, 0}},
		{{0, 0}, {1, 1}},
		{{2, 2}, {0, 0}, {3, 3}},
		{{1, 0}, {0, 1}},
	}
	wantSweeps := make([][]EntrySweep, len(entrySets))
	for i, entries := range entrySets {
		w, err := ev.SweepEntries(context.Background(), m, entries, DefaultWMin, DefaultWMax, points)
		if err != nil {
			t.Fatal(err)
		}
		wantSweeps[i] = w
	}

	const goroutines = 8
	const rounds = 5
	const dt = 1e-12
	const chunk = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stepper, err := ev.Stepper(m, sim.Trapezoidal, dt)
			if err != nil {
				t.Error(err)
				return
			}
			twin, err := ev.Stepper(m, sim.Trapezoidal, dt)
			if err != nil {
				t.Error(err)
				return
			}
			input := sim.UniformInput(sim.Sine{Amplitude: 1 + 0.01*float64(g), Freq: 1e9})
			for r := 0; r < rounds; r++ {
				entries := entrySets[(g+r)%len(entrySets)]
				got, err := sweeps.SweepEntries(context.Background(), m, entries, DefaultWMin, DefaultWMax, points)
				if err != nil {
					t.Error(err)
					return
				}
				want := wantSweeps[(g+r)%len(entrySets)]
				for i := range got {
					for k := range got[i].Points {
						if !sameSweepPoint(got[i].Points[k], want[i].Points[k]) {
							t.Errorf("goroutine %d round %d: sweep entry %d point %d diverged", g, r, i, k)
							return
						}
					}
				}

				res, err := advances.Advance(context.Background(), m, dt, sim.Trapezoidal, stepper, chunk, input)
				if err != nil {
					t.Error(err)
					return
				}
				wantRes, err := twin.Advance(chunk, input)
				if err != nil {
					t.Error(err)
					return
				}
				for k := range wantRes.T {
					if res.T[k] != wantRes.T[k] {
						t.Errorf("goroutine %d round %d: time row %d diverged", g, r, k)
						return
					}
					for c := range wantRes.Y[k] {
						if res.Y[k][c] != wantRes.Y[k][c] {
							t.Errorf("goroutine %d round %d: output row %d col %d diverged", g, r, k, c)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if sweeps.batches.Load() == 0 || advances.batches.Load() == 0 {
		t.Fatalf("no batches recorded: sweeps %d, advances %d",
			sweeps.batches.Load(), advances.batches.Load())
	}
	if len(sweeps.keys) != 0 || len(advances.keys) != 0 {
		t.Fatalf("leaked key states: sweeps %d, advances %d", len(sweeps.keys), len(advances.keys))
	}
}
