package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestBodyTooLarge: bodies over the configured cap are rejected with 413,
// not read to completion.
func TestBodyTooLarge(t *testing.T) {
	srv := New(Config{Workers: 2, MaxBodyBytes: 512})
	ts := newServerForTest(t, srv)
	big := `{"benchmark":"` + strings.Repeat("x", 2048) + `"}`
	resp, err := http.Post(ts.URL+"/reduce", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
	// A within-limit request still serves.
	resp, err = http.Post(ts.URL+"/reduce", "application/json",
		strings.NewReader(`{"benchmark":"ckt1","scale":0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("normal body status = %d, want 200", resp.StatusCode)
	}
}

// TestBodyTrailingGarbage: bytes after the JSON document are a client error,
// whether they are garbage or a second JSON value.
func TestBodyTrailingGarbage(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"benchmark":"ckt1","scale":0.1} trailing`,
		`{"benchmark":"ckt1","scale":0.1}{"benchmark":"ckt2"}`,
		`{"benchmark":"ckt1","scale":0.1}]`,
	} {
		resp, err := http.Post(ts.URL+"/reduce", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	// Trailing whitespace/newline remains fine (curl -d adds none, but
	// pretty-printers do).
	resp, err := http.Post(ts.URL+"/reduce", "application/json",
		strings.NewReader("{\"benchmark\":\"ckt1\",\"scale\":0.1}\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trailing whitespace status = %d, want 200", resp.StatusCode)
	}
}

// TestSlowHeaderTimeout: a client that dribbles its request header is
// disconnected once ReadHeaderTimeout elapses — the slowloris guard pgserve
// configures.
func TestSlowHeaderTimeout(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 100 * time.Millisecond}
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request line, then stall.
	if _, err := conn.Write([]byte("POST /reduce HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	// The server must give up on us well before our own 5s read deadline:
	// either by closing the connection (EOF) or by answering 408. If our
	// read times out instead, the slowloris guard is not working.
	_, err = conn.Read(buf)
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		t.Fatal("server kept the stalled connection open past ReadHeaderTimeout")
	}
}

// TestMapCtxCancellation: a canceled context skips unstarted tasks and
// surfaces the cancellation; without cancellation MapCtx behaves like Map.
func TestMapCtxCancellation(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()

	if err := eng.MapCtx(context.Background(), 8, func(int) error { return nil }); err != nil {
		t.Fatalf("uncanceled MapCtx: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := eng.MapCtx(ctx, 16, func(int) error { ran++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled MapCtx error = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d tasks ran despite pre-canceled context", ran)
	}

	// A harder error from a task that did run wins over the skip marker.
	ctx2, cancel2 := context.WithCancel(context.Background())
	boom := errors.New("boom")
	var first atomic.Bool
	first.Store(true)
	err = eng.MapCtx(ctx2, 4, func(int) error {
		if first.CompareAndSwap(true, false) {
			cancel2()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("MapCtx error = %v, want boom", err)
	}
}

// TestEvalCanceledCounts: a canceled /eval-style batch aborts and is counted
// in the evaluator's abort telemetry (surfaced via /healthz).
func TestEvalCanceledCounts(t *testing.T) {
	srv, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	m, err := srv.Repo().Lookup(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.ev.EvalBatch(ctx, m, []float64{1e8, 1e9, 1e10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalBatch error = %v, want context.Canceled", err)
	}
	if _, err := srv.ev.SweepEntries(ctx, m, []Entry{{0, 0}}, 1e6, 1e12, 50); !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepEntries error = %v, want context.Canceled", err)
	}
	if got := srv.ev.CanceledEvals(); got != 2 {
		t.Fatalf("CanceledEvals = %d, want 2", got)
	}
	if st := srv.CacheStats(); st.CanceledEvals != 2 {
		t.Fatalf("CacheStats.CanceledEvals = %d, want 2", st.CanceledEvals)
	}
}

// TestTransientCanceledMidRun: cancellation mid-integration stops the
// transient at the next chunk boundary — the pool slot frees within one
// chunk instead of integrating the full horizon.
func TestTransientCanceledMidRun(t *testing.T) {
	srv, ts := newTestServer(t)
	info := reduceTestModel(t, ts)
	m, err := srv.Repo().Lookup(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	input := sim.Input(func(tm float64, u []float64) {
		calls++
		if calls == transientChunkSteps+10 { // inside the second chunk
			cancel()
		}
		for i := range u {
			u[i] = 1e-3
		}
	})
	const steps = 8 * transientChunkSteps
	_, err = srv.ev.Transient(ctx, m, sim.TransientOptions{Dt: 1e-10, T: 1e-10 * steps, Input: input})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Transient error = %v, want context.Canceled", err)
	}
	// The integrator stopped within one chunk of the cancellation: the input
	// was sampled for at most the first two chunks, not the full horizon.
	if calls > 3*transientChunkSteps {
		t.Fatalf("input sampled %d times after cancellation (full run = %d) — did not stop within a chunk", calls, steps)
	}
	if srv.ev.CanceledEvals() == 0 {
		t.Fatal("canceled transient not counted")
	}
}
