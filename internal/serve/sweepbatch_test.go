package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"math/cmplx"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestSweepEntriesMatchesSingle pins the batched multi-entry sweep against
// per-entry single sweeps, on both evaluation paths.
func TestSweepEntriesMatchesSingle(t *testing.T) {
	for _, disableModal := range []bool{false, true} {
		name := "modal"
		if disableModal {
			name = "factored"
		}
		t.Run(name, func(t *testing.T) {
			srv := New(Config{Workers: 4, DisableModal: disableModal})
			defer srv.Close()
			m, _, err := srv.Repo().Get(ModelKey{Benchmark: "ckt1", Scale: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			entries := []Entry{{0, 0}, {1, 0}, {0, 2}, {2, 2}, {1, 1}}
			sweeps, err := srv.ev.SweepEntries(context.Background(), m, entries, 1e6, 1e12, 25)
			if err != nil {
				t.Fatalf("SweepEntries: %v", err)
			}
			if len(sweeps) != len(entries) {
				t.Fatalf("got %d sweeps, want %d", len(sweeps), len(entries))
			}
			for i, e := range entries {
				single, err := srv.ev.Sweep(context.Background(), m, e.Row, e.Col, 1e6, 1e12, 25)
				if err != nil {
					t.Fatal(err)
				}
				if sweeps[i].Row != e.Row || sweeps[i].Col != e.Col {
					t.Fatalf("sweep %d labeled (%d,%d), want (%d,%d)", i, sweeps[i].Row, sweeps[i].Col, e.Row, e.Col)
				}
				for k := range single {
					a := complex(sweeps[i].Points[k].Re, sweeps[i].Points[k].Im)
					b := complex(single[k].Re, single[k].Im)
					if d := cmplx.Abs(a - b); d > 1e-12*(1+cmplx.Abs(b)) {
						t.Fatalf("entry (%d,%d) point %d: batched %v vs single %v", e.Row, e.Col, k, a, b)
					}
				}
			}
		})
	}
}

// TestSweepEntriesAgreeAcrossPaths: the two evaluation paths must produce
// the same numbers for the same batched request.
func TestSweepEntriesAgreeAcrossPaths(t *testing.T) {
	srv := New(Config{Workers: 2})
	defer srv.Close()
	m, _, err := srv.Repo().Get(ModelKey{Benchmark: "ckt2", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{0, 0}, {1, 1}, {0, 1}}
	modal, err := NewEvaluator(srv.eng, srv.cache, true).SweepEntries(context.Background(), m, entries, 1e5, 1e15, 40)
	if err != nil {
		t.Fatal(err)
	}
	factored, err := NewEvaluator(srv.eng, NewFactorCache(0), false).SweepEntries(context.Background(), m, entries, 1e5, 1e15, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		for k := range modal[i].Points {
			a := complex(modal[i].Points[k].Re, modal[i].Points[k].Im)
			b := complex(factored[i].Points[k].Re, factored[i].Points[k].Im)
			if d := cmplx.Abs(a - b); d > 1e-9*(1+cmplx.Abs(b)) {
				t.Fatalf("entry %d point %d: modal %v vs factored %v", i, k, a, b)
			}
		}
	}
}

// TestSweepEntriesHTTP exercises the /sweep entries field end to end, in
// JSON and NDJSON framing, including the response budget.
func TestSweepEntriesHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	info := reduceTestModel(t, ts)

	resp := postJSON(t, ts.URL+"/sweep", sweepRequest{
		Model:   info.ID,
		Entries: []Entry{{Row: 0, Col: 0}, {Row: 1, Col: 1}},
		WMin:    1e6, WMax: 1e12, Points: 13,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sweep entries status = %d", resp.StatusCode)
	}
	out := decode[struct {
		Model   string       `json:"model"`
		Entries []EntrySweep `json:"entries"`
	}](t, resp)
	if len(out.Entries) != 2 {
		t.Fatalf("got %d entry sweeps, want 2", len(out.Entries))
	}
	for _, es := range out.Entries {
		if len(es.Points) != 13 {
			t.Fatalf("entry (%d,%d) has %d points, want 13", es.Row, es.Col, len(es.Points))
		}
	}

	// NDJSON: one EntrySweep per line.
	resp = postJSON(t, ts.URL+"/sweep", sweepRequest{
		Model:   info.ID,
		Entries: []Entry{{Row: 0, Col: 0}, {Row: 1, Col: 0}, {Row: 2, Col: 0}},
		WMin:    1e6, WMax: 1e12, Points: 7, Format: "ndjson",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sweep entries ndjson status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	rows := 0
	for sc.Scan() {
		var es EntrySweep
		if err := json.Unmarshal(sc.Bytes(), &es); err != nil {
			t.Fatalf("row %d: %v", rows, err)
		}
		if len(es.Points) != 7 {
			t.Fatalf("row %d has %d points", rows, len(es.Points))
		}
		rows++
	}
	resp.Body.Close()
	if rows != 3 {
		t.Fatalf("streamed %d entry rows, want 3", rows)
	}

	// Out-of-range entry → 400.
	resp = postJSON(t, ts.URL+"/sweep", sweepRequest{
		Model: info.ID, Entries: []Entry{{Row: 0, Col: 9999}}, WMin: 1e6, WMax: 1e12, Points: 5,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range entry status = %d, want 400", resp.StatusCode)
	}
}

func TestSweepEntriesBudget(t *testing.T) {
	srv := New(Config{Workers: 2, MaxEvalEntries: 50})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	info := reduceTestModel(t, ts)
	resp := postJSON(t, ts.URL+"/sweep", sweepRequest{
		Model:   info.ID,
		Entries: []Entry{{0, 0}, {1, 0}, {2, 0}},
		WMin:    1e6, WMax: 1e12, Points: 20, // 60 values > 50
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-budget batched sweep status = %d, want 400", resp.StatusCode)
	}
}

// TestModalServeStress hammers one fully modal model with concurrent mixed
// traffic — single sweeps, batched sweeps, full-matrix evals — and checks
// under -race that the lock-free modal path is in fact data-race-free and
// that every evaluation was served modally.
func TestModalServeStress(t *testing.T) {
	srv := New(Config{Workers: 4})
	defer srv.Close()
	m, _, err := srv.Repo().Get(ModelKey{Benchmark: "ckt1", Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if srv.ev.modalFor(m) == nil {
		t.Fatal("test model not modal-covered")
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*3)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 10; it++ {
				switch (g + it) % 3 {
				case 0:
					if _, err := srv.ev.Sweep(context.Background(), m, it%m.Outputs, it%m.Ports, 1e5, 1e15, 30); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := srv.ev.SweepEntries(context.Background(), m, []Entry{{0, 0}, {it % m.Outputs, it % m.Ports}}, 1e5, 1e15, 15); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := srv.ev.EvalBatch(context.Background(), m, []float64{1e8, 1e9 * float64(1+it)}); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	modalN, factoredN := srv.ev.PathStats()
	if modalN == 0 || factoredN != 0 {
		t.Fatalf("PathStats = (%d modal, %d factored), want all modal", modalN, factoredN)
	}
	if st := srv.cache.Stats(); st.Misses != 0 {
		t.Fatalf("modal stress touched the factor cache: %+v", st)
	}
}
