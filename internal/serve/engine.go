package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Engine is the shared fixed-size worker pool that batched evaluations fan
// out on. One pool serves every request, so total evaluation concurrency is
// bounded by the worker count regardless of how many HTTP requests are in
// flight — requests queue at the task level, not the goroutine level.
type Engine struct {
	tasks     chan func()
	done      chan struct{}
	wg        sync.WaitGroup
	workers   int
	closeOnce sync.Once

	// queued tracks tasks submitted but not yet picked up by a worker — the
	// queue-depth gauge. completed and skipped are lifetime totals; skipped
	// counts tasks abandoned by context cancellation before running.
	queued    atomic.Int64
	completed atomic.Int64
	skipped   atomic.Int64

	// waitHist / runHist, when set via Instrument, receive per-task
	// queue-wait and run durations. Both nil by default so uninstrumented
	// engines (library use, benchmarks) never call time.Now per task.
	waitHist *obs.Histogram
	runHist  *obs.Histogram
}

// NewEngine starts a pool of the given size; workers <= 0 selects
// runtime.NumCPU().
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := &Engine{tasks: make(chan func()), done: make(chan struct{}), workers: workers}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for {
				select {
				case f := <-e.tasks:
					f()
				case <-e.done:
					return
				}
			}
		}()
	}
	return e
}

// Instrument attaches task wait-time and run-time histograms. Must be called
// before the engine receives work: the histogram fields are read without
// synchronization on the task path.
func (e *Engine) Instrument(wait, run *obs.Histogram) {
	e.waitHist = wait
	e.runHist = run
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// QueueDepth reports tasks submitted but not yet started.
func (e *Engine) QueueDepth() int64 { return e.queued.Load() }

// TaskCounts reports lifetime completed and skipped (canceled before
// running) task totals.
func (e *Engine) TaskCounts() (completed, skipped int64) {
	return e.completed.Load(), e.skipped.Load()
}

// Close stops the pool. Safe to call with Maps still in flight (a graceful
// HTTP shutdown that timed out may leave handlers running): their remaining
// tasks fall back to the submitting goroutine, so every Map still completes.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	e.wg.Wait()
}

// submit hands f to a pool worker, or runs it on the calling goroutine if
// the pool is shutting down.
func (e *Engine) submit(f func()) {
	select {
	case e.tasks <- f:
	case <-e.done:
		f()
	}
}

// Map runs fn(0..n-1) across the pool and blocks until every call returns.
// All n calls run even after a failure; the first error (by completion
// order) is returned. Map must not be called from inside a pool task — that
// would deadlock a fully-loaded pool.
func (e *Engine) Map(n int, fn func(i int) error) error {
	//pgmor:detach Map is the explicitly non-cancelable variant; callers that have a request context use MapCtx
	return e.MapCtx(context.Background(), n, fn)
}

// MapCtx is Map with cooperative cancellation: tasks that have not started
// when ctx is canceled are skipped (they still occupy the queue, but return
// immediately when a worker picks them up), so a disconnected client's
// remaining work drains in O(queue) channel operations instead of running
// every evaluation to completion. A task already inside fn finishes — fn
// should check ctx itself between chunks when its own work is long. When any
// task was skipped and no harder error occurred, the context's error is
// returned.
func (e *Engine) MapCtx(ctx context.Context, n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var skipped bool
	done := ctx.Done()
	// One timestamp for the whole batch, taken only when timing is on: tasks
	// submitted together share their enqueue instant, so the wait histogram
	// costs one time.Now per Map, not per task.
	instrumented := e.waitHist != nil || e.runHist != nil
	var enqueued time.Time
	if instrumented {
		enqueued = time.Now()
	}
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		e.queued.Add(1)
		e.submit(func() {
			defer wg.Done()
			e.queued.Add(-1)
			// One clock read serves both histograms: the instant a worker
			// picks the task up ends its queue wait and starts its run.
			var start time.Time
			if instrumented {
				start = time.Now()
			}
			if e.waitHist != nil {
				e.waitHist.Observe(start.Sub(enqueued).Seconds())
			}
			// A panicking task must not kill the shared worker (and with
			// it the process); surface it as this Map's error instead.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("serve: task %d panicked: %v", i, r)
					}
					mu.Unlock()
				}
			}()
			if done != nil {
				select {
				case <-done:
					e.skipped.Add(1)
					mu.Lock()
					skipped = true
					mu.Unlock()
					return
				default:
				}
			}
			err := fn(i)
			if e.runHist != nil {
				e.runHist.ObserveSince(start)
			}
			e.completed.Add(1)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	if firstErr == nil && skipped {
		firstErr = context.Cause(ctx)
	}
	return firstErr
}
