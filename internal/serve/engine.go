package serve

import (
	"fmt"
	"math/cmplx"
	"runtime"
	"sync"

	"repro/internal/dense"
	"repro/internal/sim"
)

// Engine is the shared fixed-size worker pool that batched evaluations fan
// out on. One pool serves every request, so total evaluation concurrency is
// bounded by the worker count regardless of how many HTTP requests are in
// flight — requests queue at the task level, not the goroutine level.
type Engine struct {
	tasks     chan func()
	done      chan struct{}
	wg        sync.WaitGroup
	workers   int
	closeOnce sync.Once
}

// NewEngine starts a pool of the given size; workers <= 0 selects
// runtime.NumCPU().
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := &Engine{tasks: make(chan func()), done: make(chan struct{}), workers: workers}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for {
				select {
				case f := <-e.tasks:
					f()
				case <-e.done:
					return
				}
			}
		}()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close stops the pool. Safe to call with Maps still in flight (a graceful
// HTTP shutdown that timed out may leave handlers running): their remaining
// tasks fall back to the submitting goroutine, so every Map still completes.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	e.wg.Wait()
}

// submit hands f to a pool worker, or runs it on the calling goroutine if
// the pool is shutting down.
func (e *Engine) submit(f func()) {
	select {
	case e.tasks <- f:
	case <-e.done:
		f()
	}
}

// Map runs fn(0..n-1) across the pool and blocks until every call returns.
// All n calls run even after a failure; the first error (by completion
// order) is returned. Map must not be called from inside a pool task — that
// would deadlock a fully-loaded pool.
func (e *Engine) Map(n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		e.submit(func() {
			defer wg.Done()
			// A panicking task must not kill the shared worker (and with
			// it the process); surface it as this Map's error instead.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("serve: task %d panicked: %v", i, r)
					}
					mu.Unlock()
				}
			}()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	return firstErr
}

// SweepPoint is one frequency sample of a batched AC sweep.
type SweepPoint struct {
	Omega float64 `json:"omega"`
	Re    float64 `json:"re"`
	Im    float64 `json:"im"`
	Mag   float64 `json:"mag"`
}

// Sweep evaluates H[row][col](jω) of the model's ROM over the standard
// logarithmic grid, fanning the frequency points across the engine. Every
// point goes through the factorization cache, so sweeps from concurrent
// requests on the same grid share pencil factors.
func Sweep(eng *Engine, cache *FactorCache, m *Model, row, col int, wMin, wMax float64, points int) ([]SweepPoint, error) {
	if row < 0 || row >= m.Outputs || col < 0 || col >= m.Ports {
		return nil, badRequest("entry (%d,%d) out of range %d×%d", row, col, m.Outputs, m.Ports)
	}
	grid, err := sim.LogGrid(wMin, wMax, points)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	out := make([]SweepPoint, points)
	err = eng.Map(points, func(k int) error {
		f, _, err := cache.GetOrFactorColumn(m.ID, m.ROM, complex(0, grid[k]), col)
		if err != nil {
			return err
		}
		c, err := f.EvalColumn(col)
		if err != nil {
			return err
		}
		h := c[row]
		out[k] = SweepPoint{Omega: grid[k], Re: real(h), Im: imag(h), Mag: cmplx.Abs(h)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvalBatch computes the full p×m transfer matrix at each requested angular
// frequency, one engine task per frequency, through the factorization cache.
func EvalBatch(eng *Engine, cache *FactorCache, m *Model, omegas []float64) ([]*dense.Mat[complex128], error) {
	out := make([]*dense.Mat[complex128], len(omegas))
	err := eng.Map(len(omegas), func(k int) error {
		f, _, err := cache.GetOrFactor(m.ID, m.ROM, complex(0, omegas[k]))
		if err != nil {
			return err
		}
		h, err := f.Eval()
		if err != nil {
			return err
		}
		out[k] = h
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Transient runs a fixed-step transient on the model's ROM as a single
// engine task, so the pool's worker count bounds total evaluation
// concurrency across sweeps, evals, and transients alike: concurrent
// transient requests queue for slots instead of each spawning its own
// goroutine fan-out. The block solves inside the occupied slot run
// serially (Workers = 1).
func Transient(eng *Engine, m *Model, opts sim.TransientOptions) (*sim.Result, error) {
	opts.Workers = 1
	var res *sim.Result
	err := eng.Map(1, func(int) error {
		var err error
		res, err = sim.SimulateBlockDiag(m.ROM, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
