package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Engine is the shared fixed-size worker pool that batched evaluations fan
// out on. One pool serves every request, so total evaluation concurrency is
// bounded by the worker count regardless of how many HTTP requests are in
// flight — requests queue at the task level, not the goroutine level.
type Engine struct {
	tasks     chan func()
	done      chan struct{}
	wg        sync.WaitGroup
	workers   int
	closeOnce sync.Once
}

// NewEngine starts a pool of the given size; workers <= 0 selects
// runtime.NumCPU().
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := &Engine{tasks: make(chan func()), done: make(chan struct{}), workers: workers}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for {
				select {
				case f := <-e.tasks:
					f()
				case <-e.done:
					return
				}
			}
		}()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close stops the pool. Safe to call with Maps still in flight (a graceful
// HTTP shutdown that timed out may leave handlers running): their remaining
// tasks fall back to the submitting goroutine, so every Map still completes.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	e.wg.Wait()
}

// submit hands f to a pool worker, or runs it on the calling goroutine if
// the pool is shutting down.
func (e *Engine) submit(f func()) {
	select {
	case e.tasks <- f:
	case <-e.done:
		f()
	}
}

// Map runs fn(0..n-1) across the pool and blocks until every call returns.
// All n calls run even after a failure; the first error (by completion
// order) is returned. Map must not be called from inside a pool task — that
// would deadlock a fully-loaded pool.
func (e *Engine) Map(n int, fn func(i int) error) error {
	return e.MapCtx(context.Background(), n, fn)
}

// MapCtx is Map with cooperative cancellation: tasks that have not started
// when ctx is canceled are skipped (they still occupy the queue, but return
// immediately when a worker picks them up), so a disconnected client's
// remaining work drains in O(queue) channel operations instead of running
// every evaluation to completion. A task already inside fn finishes — fn
// should check ctx itself between chunks when its own work is long. When any
// task was skipped and no harder error occurred, the context's error is
// returned.
func (e *Engine) MapCtx(ctx context.Context, n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var skipped bool
	done := ctx.Done()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		e.submit(func() {
			defer wg.Done()
			// A panicking task must not kill the shared worker (and with
			// it the process); surface it as this Map's error instead.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("serve: task %d panicked: %v", i, r)
					}
					mu.Unlock()
				}
			}()
			if done != nil {
				select {
				case <-done:
					mu.Lock()
					skipped = true
					mu.Unlock()
					return
				default:
				}
			}
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	if firstErr == nil && skipped {
		firstErr = context.Cause(ctx)
	}
	return firstErr
}
