package serve

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

// corruptStoreFile flips a byte in the middle of every .rom file under dir.
func corruptStoreFile(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".rom") {
			continue
		}
		p := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no .rom files to corrupt")
	}
}

// TestWarmRestartSkipsReduction is the acceptance test for the persistent
// store: build a model in one repository, reopen a fresh repository on the
// same directory, and the model must be served from disk with zero
// reductions performed.
func TestWarmRestartSkipsReduction(t *testing.T) {
	dir := t.TempDir()
	key := ModelKey{Benchmark: "ckt1", Scale: 0.1}

	repo1 := NewRepositoryWithStore(0, openStore(t, dir))
	m1, outcome, err := repo1.Get(key)
	if err != nil {
		t.Fatalf("cold Get: %v", err)
	}
	if outcome != OutcomeBuilt {
		t.Fatalf("cold Get outcome = %v, want built", outcome)
	}
	if st := repo1.Store().Stats(); st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("after write-through: store stats = %+v, want 1 write / 1 entry", st)
	}

	// "Restart": a brand-new repository and store handle on the same dir.
	repo2 := NewRepositoryWithStore(0, openStore(t, dir))
	m2, outcome, err := repo2.Get(key)
	if err != nil {
		t.Fatalf("warm Get: %v", err)
	}
	if outcome != OutcomeDiskHit {
		t.Fatalf("warm Get outcome = %v, want disk", outcome)
	}
	if !m2.FromStore {
		t.Fatal("warm model not marked FromStore")
	}
	stats := repo2.Stats()
	if stats.Builds != 0 {
		t.Fatalf("warm restart performed %d reductions, want 0", stats.Builds)
	}
	if stats.DiskHits != 1 || stats.DiskMisses != 0 {
		t.Fatalf("repo stats = %+v, want 1 disk hit / 0 disk misses", stats)
	}

	// The restored model is bit-identical and metadata survived.
	if !reflect.DeepEqual(m1.ROM, m2.ROM) {
		t.Fatal("restored ROM differs from the built ROM")
	}
	if m1.Nodes != m2.Nodes || m1.Order != m2.Order || m1.Blocks != m2.Blocks ||
		m1.Ports != m2.Ports || m1.Outputs != m2.Outputs {
		t.Fatalf("metadata changed across restart: built %+v, restored %+v", m1, m2)
	}
	if m2.ReduceTime != m1.ReduceTime || !m2.Created.Equal(m1.Created) {
		t.Fatalf("provenance changed across restart: %v/%v vs %v/%v",
			m1.ReduceTime, m1.Created, m2.ReduceTime, m2.Created)
	}

	// Same key again: now a memory hit, still zero builds.
	if _, outcome, err := repo2.Get(key); err != nil || outcome != OutcomeMemHit {
		t.Fatalf("resident Get: outcome=%v err=%v, want memory hit", outcome, err)
	}
	if repo2.Stats().Builds != 0 {
		t.Fatal("resident Get triggered a build")
	}
}

// TestWarmRestartCorruptStoreRebuilds: a corrupted store file is
// quarantined and the model silently rebuilt — the server stays healthy and
// the store heals via write-through.
func TestWarmRestartCorruptStoreRebuilds(t *testing.T) {
	dir := t.TempDir()
	key := ModelKey{Benchmark: "ckt1", Scale: 0.1}

	repo1 := NewRepositoryWithStore(0, openStore(t, dir))
	m1, _, err := repo1.Get(key)
	if err != nil {
		t.Fatalf("cold Get: %v", err)
	}
	corruptStoreFile(t, dir)

	repo2 := NewRepositoryWithStore(0, openStore(t, dir))
	m2, outcome, err := repo2.Get(key)
	if err != nil {
		t.Fatalf("Get over corrupt store: %v", err)
	}
	if outcome != OutcomeBuilt {
		t.Fatalf("outcome = %v, want rebuild after quarantine", outcome)
	}
	if !reflect.DeepEqual(m1.ROM, m2.ROM) {
		t.Fatal("rebuilt ROM differs (generation is seeded and must be deterministic)")
	}
	st := repo2.Store().Stats()
	if st.Quarantined != 1 || st.CorruptDropped != 1 {
		t.Fatalf("store stats = %+v, want 1 quarantined", st)
	}
	// Write-through healed the store: the next restart is warm again.
	if st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("store stats = %+v, want healed entry", st)
	}
	repo3 := NewRepositoryWithStore(0, openStore(t, dir))
	if _, outcome, err := repo3.Get(key); err != nil || outcome != OutcomeDiskHit {
		t.Fatalf("post-heal Get: outcome=%v err=%v, want disk hit", outcome, err)
	}
}

// TestRepositoryPreload: Preload registers every stored model without
// reducing, skips corrupt files, and respects the admission bound.
func TestRepositoryPreload(t *testing.T) {
	dir := t.TempDir()
	keys := []ModelKey{
		{Benchmark: "ckt1", Scale: 0.08},
		{Benchmark: "ckt1", Scale: 0.1},
	}
	repo1 := NewRepositoryWithStore(0, openStore(t, dir))
	for _, k := range keys {
		if _, _, err := repo1.Get(k); err != nil {
			t.Fatalf("seeding %s: %v", k.ID(), err)
		}
	}

	repo2 := NewRepositoryWithStore(0, openStore(t, dir))
	n, err := repo2.Preload()
	if err != nil {
		t.Fatalf("Preload: %v", err)
	}
	if n != len(keys) {
		t.Fatalf("Preload registered %d models, want %d", n, len(keys))
	}
	if st := repo2.Stats(); st.Builds != 0 || st.DiskHits != int64(len(keys)) {
		t.Fatalf("repo stats after preload = %+v, want 0 builds / %d disk hits", st, len(keys))
	}
	models := repo2.Models()
	if len(models) != len(keys) {
		t.Fatalf("%d models resident after preload, want %d", len(models), len(keys))
	}
	for _, m := range models {
		if !m.FromStore {
			t.Fatalf("preloaded model %s not marked FromStore", m.ID)
		}
	}
	// Lookup by ID works without any build.
	if _, err := repo2.Lookup(keys[0].ID()); err != nil {
		t.Fatalf("Lookup after preload: %v", err)
	}

	// A corrupt file is skipped (and quarantined), not fatal.
	corruptStoreFile(t, dir)
	repo3 := NewRepositoryWithStore(0, openStore(t, dir))
	if n, err := repo3.Preload(); err != nil || n != 0 {
		t.Fatalf("Preload over corrupt store = %d, %v; want 0, nil", n, err)
	}
	if st := repo3.Store().Stats(); st.Quarantined != len(keys) {
		t.Fatalf("store stats = %+v, want %d quarantined", st, len(keys))
	}

	// Preload respects the repository bound: with room for one model it
	// registers exactly one and skips the rest.
	repo4 := NewRepositoryWithStore(1, openStore(t, dir2(t, keys)))
	if n, err := repo4.Preload(); err != nil || n != 1 {
		t.Fatalf("bounded Preload = %d, %v; want 1, nil", n, err)
	}
}

// dir2 seeds a fresh store directory with the given models and returns it.
func dir2(t *testing.T, keys []ModelKey) string {
	t.Helper()
	dir := t.TempDir()
	repo := NewRepositoryWithStore(0, openStore(t, dir))
	for _, k := range keys {
		if _, _, err := repo.Get(k); err != nil {
			t.Fatalf("seeding %s: %v", k.ID(), err)
		}
	}
	return dir
}

// TestServerWarmRestart drives the whole stack over HTTP: reduce on one
// server, preload a second server from the same store directory, and serve
// without reducing.
func TestServerWarmRestart(t *testing.T) {
	dir := t.TempDir()

	srv1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	ts1 := httptest.NewServer(srv1.Handler())
	info := reduceTestModel(t, ts1)
	if info.Source != "built" || info.Cached {
		t.Fatalf("first /reduce = source %q cached %v, want fresh build", info.Source, info.Cached)
	}
	ts1.Close()
	srv1.Close()

	srv2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})
	n, err := srv2.PreloadStore()
	if err != nil || n != 1 {
		t.Fatalf("PreloadStore = %d, %v; want 1, nil", n, err)
	}
	if st := srv2.Repo().Stats(); st.Builds != 0 {
		t.Fatalf("preload performed %d builds, want 0", st.Builds)
	}

	// The model serves immediately — /models lists it, /reduce reports a
	// cache hit, /sweep works — all without a reduction.
	resp, err := ts2.Client().Get(ts2.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	models := decode[[]reduceResponse](t, resp)
	if len(models) != 1 || models[0].ID != info.ID || !models[0].FromStore {
		t.Fatalf("/models after preload = %+v, want the stored model marked from_store", models)
	}
	again := reduceTestModel(t, ts2)
	if !again.Cached || again.Source != "memory" {
		t.Fatalf("warm /reduce = source %q cached %v, want memory hit", again.Source, again.Cached)
	}
	sweepResp := postJSON(t, ts2.URL+"/sweep", sweepRequest{Model: info.ID, Row: 0, Col: 0, WMin: 1e6, WMax: 1e12, Points: 10})
	sweepResp.Body.Close()
	if sweepResp.StatusCode != 200 {
		t.Fatalf("/sweep after preload: status %d", sweepResp.StatusCode)
	}
	if st := srv2.Repo().Stats(); st.Builds != 0 {
		t.Fatalf("serving after preload performed %d builds, want 0", st.Builds)
	}

	// Merged cache stats expose the disk traffic and which path served the
	// sweep: the preloaded model is fully modal, so the sweep rode the
	// factorization-free path and the factor cache stayed empty.
	cs := srv2.CacheStats()
	if cs.BudgetBytes <= 0 {
		t.Fatalf("cache stats missing byte budget: %+v", cs)
	}
	if cs.DiskHits < 1 {
		t.Fatalf("cache stats missing disk hits: %+v", cs)
	}
	if cs.ModalEvals < 10 {
		t.Fatalf("preloaded model did not serve modally: %+v", cs)
	}
	if cs.FactoredEvals != 0 || cs.Misses != 0 {
		t.Fatalf("modal-covered model touched the factored path: %+v", cs)
	}
}

// TestSweepWarmedByReduce is the cache-admission acceptance test for the
// factored path (modal disabled — a modal-covered model never factors, so
// there would be nothing to warm): /reduce pre-factors the standard LogGrid
// frequencies, so the first default-grid /sweep afterward performs zero
// factorizations — every point is a hit.
func TestSweepWarmedByReduce(t *testing.T) {
	srv := New(Config{Workers: 4, DisableModal: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	info := reduceTestModel(t, ts) // warms the standard grid on return

	before := srv.CacheStats()
	if before.Misses == 0 {
		t.Fatal("warming performed no factorizations")
	}

	// Default grid: wmin/wmax/points omitted.
	resp := postJSON(t, ts.URL+"/sweep", sweepRequest{Model: info.ID, Row: 0, Col: 0})
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/sweep status = %d", resp.StatusCode)
	}
	var out struct {
		Points []SweepPoint `json:"points"`
	}
	out = decode[struct {
		Points []SweepPoint `json:"points"`
	}](t, resp)
	if len(out.Points) != DefaultSweepPoints {
		t.Fatalf("default sweep returned %d points, want %d", len(out.Points), DefaultSweepPoints)
	}

	after := srv.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("first default sweep factored %d points that warming should have covered",
			after.Misses-before.Misses)
	}
	if after.Hits-before.Hits < int64(DefaultSweepPoints) {
		t.Fatalf("sweep produced %d cache hits, want ≥ %d", after.Hits-before.Hits, DefaultSweepPoints)
	}
}

// TestLegacyStoreEntryUpgradedWithModal: a store file written without a
// modal section (pre-v2-modal producer) is re-diagonalized once on load and
// upgraded in place, so the next restart reads the modal form from disk.
func TestLegacyStoreEntryUpgradedWithModal(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)

	// Build a model once to obtain a valid ROM + metadata, then overwrite
	// its store entry with a modal-less file (what an old binary wrote).
	repo1 := NewRepositoryWithStore(0, st)
	key := ModelKey{Benchmark: "ckt1", Scale: 0.1}
	m, _, err := repo1.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	keyJSON, _ := json.Marshal(func() ModelKey { k := key; k.Normalize(); return k }())
	legacyMeta := store.Meta{
		ID: m.ID, GridKey: m.GridKey, ModelKey: keyJSON,
		Nodes: m.Nodes, Ports: m.Ports, Outputs: m.Outputs,
		Order: m.Order, Blocks: m.Blocks,
		Created: m.Created,
	}
	if err := st.Put(legacyMeta, m.ROM, nil); err != nil {
		t.Fatal(err)
	}
	if _, modal, _, err := st.Get(m.ID, m.GridKey); err != nil || modal != nil {
		t.Fatalf("precondition: store entry should be modal-less (modal=%v, err=%v)", modal != nil, err)
	}

	// A fresh repository loads the legacy entry, diagonalizes, and must
	// write the upgraded file back.
	repo2 := NewRepositoryWithStore(0, openStore(t, dir))
	m2, outcome, err := repo2.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeDiskHit {
		t.Fatalf("outcome = %v, want disk hit", outcome)
	}
	if m2.Modal == nil || m2.ModalBlocks != m2.Blocks {
		t.Fatalf("legacy load did not produce a modal form (%d/%d)", m2.ModalBlocks, m2.Blocks)
	}
	if _, modal, meta, err := st.Get(m.ID, m.GridKey); err != nil || modal == nil {
		t.Fatalf("store entry was not upgraded with the modal form (err=%v)", err)
	} else if meta.ModalBlocks != m2.ModalBlocks {
		t.Fatalf("upgraded meta.ModalBlocks = %d, want %d", meta.ModalBlocks, m2.ModalBlocks)
	}
}
