package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// interpAnchorScales sit inside one grid-size plateau of ckt1 (NX plateau
// [18/77, 19/77), ports plateau [12/51, 13/51)), so only the continuously
// scaled electrical parameters vary between them — the regime Δ-scale
// interpolation targets.
var interpAnchorScales = []float64{0.236, 0.241, 0.246}

// reduceAnchors builds the library anchors through the repository.
func reduceAnchors(t *testing.T, repo *Repository, rcOnly bool) {
	t.Helper()
	for _, s := range interpAnchorScales {
		if _, _, err := repo.Get(ModelKey{Benchmark: "ckt1", Scale: s, RCOnly: rcOnly}); err != nil {
			t.Fatalf("anchor %g: %v", s, err)
		}
	}
}

// The acceptance scenario: with anchors stored, an unstored Scale is served
// purely by interpolation — zero new reductions, asserted via
// RepoStats.Builds — and repeat requests hit the interpolated-model cache.
func TestGetInterpolatedZeroBuilds(t *testing.T) {
	repo := NewRepository(0)
	reduceAnchors(t, repo, false)
	base := repo.Stats()
	if base.Builds != int64(len(interpAnchorScales)) {
		t.Fatalf("anchor builds = %d", base.Builds)
	}

	key := ModelKey{Benchmark: "ckt1", Scale: 0.2385}
	m, outcome, err := repo.GetInterpolated(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeInterp {
		t.Fatalf("outcome = %v, want interp", outcome)
	}
	if m.Interp == nil || m.Interp.Scales != [2]float64{0.236, 0.241} {
		t.Fatalf("interp info = %+v", m.Interp)
	}
	if m.Interp.CheckErr < 0 || m.Interp.CheckErr > DefaultInterpTol {
		t.Fatalf("leave-one-out check err = %g (budget %g)", m.Interp.CheckErr, DefaultInterpTol)
	}
	if m.Modal == nil || m.ModalBlocks != m.Blocks {
		t.Fatalf("interpolated model not fully modal: %d/%d", m.ModalBlocks, m.Blocks)
	}

	// Second request: resident interpolant, still zero new reductions.
	m2, outcome2, err := repo.GetInterpolated(key, 0)
	if err != nil || outcome2 != OutcomeInterp || m2 != m {
		t.Fatalf("repeat: m2==m %v outcome %v err %v", m2 == m, outcome2, err)
	}

	st := repo.Stats()
	if st.Builds != base.Builds {
		t.Fatalf("interpolation triggered %d reductions", st.Builds-base.Builds)
	}
	if st.InterpServed != 2 || st.InterpFallbacks != 0 || st.InterpModels != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// The interpolant is resolvable by ID like any model.
	got, err := repo.Lookup(key.ID())
	if err != nil || got != m {
		t.Fatalf("Lookup(%q) = %v, %v", key.ID(), got, err)
	}
}

// Exact anchor scales must be served as themselves, not interpolated.
func TestGetInterpolatedExactScalePassesThrough(t *testing.T) {
	repo := NewRepository(0)
	reduceAnchors(t, repo, false)
	m, outcome, err := repo.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.241}, 0)
	if err != nil || outcome != OutcomeMemHit || m.Interp != nil {
		t.Fatalf("outcome %v err %v interp %v", outcome, err, m.Interp)
	}
}

// Property test (RC and RLC): the interpolant at a held-out Scale stays
// within the configured budget of a direct reduction, and an unmeetable
// budget falls back to a real build, counted in RepoStats.
func TestInterpolationAccuracyWithinBudgetElseFallback(t *testing.T) {
	const budget = 0.03
	for _, rcOnly := range []bool{false, true} {
		repo := NewRepository(0)
		reduceAnchors(t, repo, rcOnly)
		base := repo.Stats()

		key := ModelKey{Benchmark: "ckt1", Scale: 0.2435, RCOnly: rcOnly}
		m, outcome, err := repo.GetInterpolated(key, budget)
		if err != nil {
			t.Fatalf("rc=%v: %v", rcOnly, err)
		}
		if outcome != OutcomeInterp {
			t.Fatalf("rc=%v: outcome = %v", rcOnly, outcome)
		}
		if st := repo.Stats(); st.Builds != base.Builds {
			t.Fatalf("rc=%v: interpolation reduced", rcOnly)
		}

		// Reference: a direct reduction of the same key in a fresh repository
		// (so the comparison itself cannot perturb the build counters).
		ref := NewRepository(0)
		direct, _, err := ref.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		e, err := relTransferErr(m.Modal, direct.Modal)
		if err != nil {
			t.Fatal(err)
		}
		if e > budget {
			t.Errorf("rc=%v: interpolant vs direct reduction: %g > budget %g", rcOnly, e, budget)
		}

		// An impossible budget must reduce for real instead of serving an
		// out-of-budget interpolant.
		key2 := ModelKey{Benchmark: "ckt1", Scale: 0.2445, RCOnly: rcOnly}
		m2, outcome2, err := repo.GetInterpolated(key2, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if outcome2 != OutcomeBuilt || m2.Interp != nil {
			t.Fatalf("rc=%v: tiny budget served outcome %v", rcOnly, outcome2)
		}
		st := repo.Stats()
		if st.InterpFallbacks != 1 || st.Builds != base.Builds+1 {
			t.Fatalf("rc=%v: fallback stats = %+v", rcOnly, st)
		}
	}
}

// Without bracketing anchors — or with dimension-incompatible ones — the
// request falls back to a real reduction and still succeeds.
func TestGetInterpolatedFallsBackWithoutUsableAnchors(t *testing.T) {
	repo := NewRepository(0)
	// One anchor only: nothing to bracket with.
	if _, _, err := repo.Get(ModelKey{Benchmark: "ckt1", Scale: 0.236}); err != nil {
		t.Fatal(err)
	}
	m, outcome, err := repo.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.24}, 0)
	if err != nil || outcome != OutcomeBuilt {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if m.Interp != nil {
		t.Fatal("fallback model carries interp info")
	}

	// Anchors at 0.2 and 0.3 have different port counts (10 vs 15): the
	// structures cannot be matched, so interpolation must refuse and reduce.
	repo2 := NewRepository(0)
	for _, s := range []float64{0.2, 0.3} {
		if _, _, err := repo2.Get(ModelKey{Benchmark: "ckt1", Scale: s}); err != nil {
			t.Fatal(err)
		}
	}
	_, outcome2, err := repo2.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.25}, 0)
	if err != nil || outcome2 != OutcomeBuilt {
		t.Fatalf("incompatible anchors: outcome %v err %v", outcome2, err)
	}
	if st := repo2.Stats(); st.InterpFallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// The interpolated-model cache is bounded: a continuum sweep cannot grow
// memory without limit.
func TestInterpCacheEviction(t *testing.T) {
	repo := NewRepository(0)
	repo.maxInterp = 2
	reduceAnchors(t, repo, false)
	scales := []float64{0.2372, 0.2384, 0.2396, 0.2408}
	for _, s := range scales {
		if _, _, err := repo.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: s}, 0); err != nil {
			t.Fatalf("scale %g: %v", s, err)
		}
	}
	st := repo.Stats()
	if st.InterpModels != 2 {
		t.Fatalf("resident interpolants = %d, want 2", st.InterpModels)
	}
	if st.Builds != int64(len(interpAnchorScales)) {
		t.Fatalf("continuum sweep reduced: builds = %d", st.Builds)
	}
	// The two oldest were evicted; their IDs no longer resolve.
	if _, err := repo.Lookup(ModelKey{Benchmark: "ckt1", Scale: scales[0]}.ID()); err == nil {
		t.Fatal("evicted interpolant still resolvable")
	}
	if _, err := repo.Lookup(ModelKey{Benchmark: "ckt1", Scale: scales[3]}.ID()); err != nil {
		t.Fatalf("fresh interpolant not resolvable: %v", err)
	}
}

// Warm restart: a second process over the same store directory serves a
// Δ-scale continuum with zero reductions ever — anchors preload from disk,
// interpolation covers the gaps.
func TestInterpWarmRestartZeroBuilds(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Workers: 2, Store: st1})
	reduceAnchors(t, srv1.Repo(), false)
	srv1.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Workers: 2, Store: st2})
	defer srv2.Close()
	n, err := srv2.PreloadStore()
	if err != nil || n != len(interpAnchorScales) {
		t.Fatalf("preload = %d, %v", n, err)
	}
	m, outcome, err := srv2.Repo().GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.2443}, 0)
	if err != nil || outcome != OutcomeInterp {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if m.Interp == nil || m.Interp.Scales != [2]float64{0.241, 0.246} {
		t.Fatalf("interp info = %+v", m.Interp)
	}
	if got := srv2.Repo().Stats(); got.Builds != 0 {
		t.Fatalf("warm restart reduced %d times", got.Builds)
	}
}

// HTTP: /interp serves an unstored scale, reports the interpolation record,
// and the model is immediately usable by /sweep and /eval; benchmark+scale
// on /sweep resolves through the same path.
func TestInterpHTTPEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t)
	for _, s := range interpAnchorScales {
		resp := postJSON(t, ts.URL+"/reduce", ModelKey{Benchmark: "ckt1", Scale: s})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/reduce %g: %d", s, resp.StatusCode)
		}
		resp.Body.Close()
	}
	builds := srv.Repo().Stats().Builds

	resp := postJSON(t, ts.URL+"/interp", map[string]any{"benchmark": "ckt1", "scale": 0.2389})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/interp status = %d", resp.StatusCode)
	}
	info := decode[reduceResponse](t, resp)
	if info.Source != "interp" || !info.Cached {
		t.Fatalf("source = %q cached = %v", info.Source, info.Cached)
	}
	if info.Interp == nil || info.Interp.CheckErr < 0 {
		t.Fatalf("interp record missing: %+v", info.Interp)
	}

	// The interpolant serves sweeps by ID…
	resp = postJSON(t, ts.URL+"/sweep", map[string]any{"model": info.ID, "points": 20})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sweep by id: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// …and by benchmark+scale, at yet another unstored scale.
	resp = postJSON(t, ts.URL+"/sweep", map[string]any{"benchmark": "ckt1", "scale": 0.2401, "points": 20})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sweep by key: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/eval", map[string]any{"benchmark": "ckt1", "scale": 0.2401, "omegas": []float64{1e9}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/eval by key: %d", resp.StatusCode)
	}
	resp.Body.Close()

	if got := srv.Repo().Stats(); got.Builds != builds {
		t.Fatalf("Δ-scale HTTP traffic reduced %d times", got.Builds-builds)
	}

	// Bad inputs are client errors.
	for _, body := range []map[string]any{
		{"benchmark": "nope", "scale": 0.24},
		{"benchmark": "ckt1", "scale": 7.0},
		{"benchmark": "ckt1", "scale": 0.24, "tol": -1.0},
	} {
		resp := postJSON(t, ts.URL+"/interp", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%v: status %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestInterpDisabled(t *testing.T) {
	srv := New(Config{Workers: 1, DisableInterp: true})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	resp := postJSON(t, ts.URL+"/interp", map[string]any{"benchmark": "ckt1", "scale": 0.24})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("disabled /interp status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// benchmark+scale on /sweep still works — it just reduces for real.
	resp = postJSON(t, ts.URL+"/sweep", map[string]any{"benchmark": "ckt1", "scale": 0.1, "points": 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sweep with interp disabled: %d", resp.StatusCode)
	}
	resp.Body.Close()
	if st := srv.Repo().Stats(); st.Builds != 1 || st.InterpServed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A cached interpolant admitted under the default budget must not satisfy a
// later request with a stricter budget: the stricter request re-decides and
// reduces for real.
func TestInterpCacheHonorsPerRequestTol(t *testing.T) {
	repo := NewRepository(0)
	reduceAnchors(t, repo, false)
	key := ModelKey{Benchmark: "ckt1", Scale: 0.2389}
	m, outcome, err := repo.GetInterpolated(key, 0)
	if err != nil || outcome != OutcomeInterp {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if m.Interp.CheckErr <= 1e-9 {
		t.Fatalf("check err %g unexpectedly tiny; test needs a stricter budget", m.Interp.CheckErr)
	}
	m2, outcome2, err := repo.GetInterpolated(key, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if outcome2 != OutcomeBuilt || m2.Interp != nil {
		t.Fatalf("strict-tol request served cached interpolant (outcome %v)", outcome2)
	}
	if st := repo.Stats(); st.InterpFallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// One structurally incompatible anchor elsewhere in the library (different
// port count at scale 0.3) must not defeat interpolation between two good
// bracketing anchors: the leave-one-out check falls back to the other outer
// candidate.
func TestInterpSurvivesIncompatibleOuterAnchor(t *testing.T) {
	repo := NewRepository(0)
	reduceAnchors(t, repo, false)
	if _, _, err := repo.Get(ModelKey{Benchmark: "ckt1", Scale: 0.3}); err != nil {
		t.Fatal(err)
	}
	base := repo.Stats()
	// Bracket (0.241, 0.246): the upper outer anchor is the incompatible
	// 0.3; the lower outer candidate (0.236) must carry the check.
	m, outcome, err := repo.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.2442}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeInterp {
		t.Fatalf("outcome = %v, want interp", outcome)
	}
	if m.Interp.CheckScale != 0.241 || m.Interp.CheckErr < 0 {
		t.Fatalf("check used %g (err %g), want held-out 0.241", m.Interp.CheckScale, m.Interp.CheckErr)
	}
	if st := repo.Stats(); st.Builds != base.Builds || st.InterpFallbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Anchors are loaded read-only: a library entry whose backing store file is
// gone (or stale) must cost exactly the one fallback reduction of the
// requested model — never hidden anchor rebuilds.
func TestInterpStaleLibraryCostsOneBuild(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed := NewRepositoryWithStore(0, st1)
	reduceAnchors(t, seed, false)

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewRepositoryWithStore(0, st2)
	if err := repo.RefreshLibrary(); err != nil {
		t.Fatal(err)
	}
	if got := len(repo.ScalePoints(ModelKey{Benchmark: "ckt1", Scale: 1})); got != len(interpAnchorScales) {
		t.Fatalf("library scales = %d", got)
	}

	// Disk-backed anchors: interpolation reads them through, zero builds.
	if _, outcome, err := repo.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.2385}, 0); err != nil || outcome != OutcomeInterp {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if st := repo.Stats(); st.Builds != 0 {
		t.Fatalf("disk-backed interpolation built %d models", st.Builds)
	}

	// Now the store vanishes out from under the library: the Δ-scale request
	// must fall back with exactly one reduction (the requested model).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		os.Remove(filepath.Join(dir, ent.Name()))
	}
	repo2 := NewRepositoryWithStore(0, st2)
	repo2.RefreshLibrary() // scans the now-empty dir: empty library
	// Re-point a poisoned library at the empty store: inject the stale
	// scales directly, as a pre-wipe RefreshLibrary would have left them.
	repo2.mu.Lock()
	for _, s := range interpAnchorScales {
		repo2.libraryAdd(ModelKey{Benchmark: "ckt1", Scale: s, Moments: 6, S0: 1e9})
	}
	repo2.mu.Unlock()
	m, outcome, err := repo2.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.2385}, 0)
	if err != nil || outcome != OutcomeBuilt || m.Interp != nil {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if st := repo2.Stats(); st.Builds != 1 || st.InterpFallbacks != 1 {
		t.Fatalf("stale library stats = %+v", st)
	}
}

// Resident interpolants appear in Models() alongside reduced models.
func TestModelsListsInterpolants(t *testing.T) {
	repo := NewRepository(0)
	reduceAnchors(t, repo, false)
	key := ModelKey{Benchmark: "ckt1", Scale: 0.2385}
	if _, _, err := repo.GetInterpolated(key, 0); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range repo.Models() {
		if m.ID == key.ID() {
			found = m.Interp != nil
		}
	}
	if !found {
		t.Fatal("interpolated model missing from Models()")
	}
}

// A real reduction of a key that was previously interpolated supersedes the
// cached interpolant: one ID, one model, no shadowed LRU slot.
func TestReduceSupersedesInterpolant(t *testing.T) {
	repo := NewRepository(0)
	reduceAnchors(t, repo, false)
	key := ModelKey{Benchmark: "ckt1", Scale: 0.2385}
	if _, _, err := repo.GetInterpolated(key, 0); err != nil {
		t.Fatal(err)
	}
	real1, outcome, err := repo.Get(key)
	if err != nil || outcome != OutcomeBuilt {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if st := repo.Stats(); st.InterpModels != 0 {
		t.Fatalf("shadowed interpolant still resident: %+v", st)
	}
	seen := 0
	for _, m := range repo.Models() {
		if m.ID == key.ID() {
			seen++
			if m != real1 {
				t.Fatal("Models() lists the superseded interpolant")
			}
		}
	}
	if seen != 1 {
		t.Fatalf("ID listed %d times", seen)
	}
	// Lookup and GetInterpolated now resolve to the real model.
	if m, _, err := repo.GetInterpolated(key, 0); err != nil || m != real1 {
		t.Fatalf("GetInterpolated after reduce: %v %v", m, err)
	}
}

// A full repository must still serve Δ-scale traffic: interpolants need no
// repository slot, so only the fallback reduction can hit the bound.
func TestInterpServesWhenRepositoryFull(t *testing.T) {
	repo := NewRepository(len(interpAnchorScales)) // exactly the anchors
	reduceAnchors(t, repo, false)
	m, outcome, err := repo.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.2385}, 0)
	if err != nil || outcome != OutcomeInterp {
		t.Fatalf("full repo: outcome %v err %v", outcome, err)
	}
	if m.Interp == nil {
		t.Fatal("missing interp record")
	}
	// The fallback path (impossible budget) does need a slot and must
	// surface the bound.
	_, _, err = repo.GetInterpolated(ModelKey{Benchmark: "ckt1", Scale: 0.2443}, 1e-12)
	if err == nil {
		t.Fatal("fallback on a full repository must fail with ErrRepositoryFull")
	}
}
