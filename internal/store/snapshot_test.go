package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testSnapMeta(id string) SnapshotMeta {
	return SnapshotMeta{
		SessionID: id,
		ModelID:   "ckt1-0.25-l6-s01e09",
		ModelKey:  json.RawMessage(`{"benchmark":"ckt1","scale":0.25}`),
		Dt:        0.01,
		Method:    "backward-euler",
		Step:      37,
		Emitted0:  true,
		Advances:  3,
		Deadline:  time.Now().Add(10 * time.Minute).UTC().Truncate(time.Microsecond),
		Created:   time.Now().UTC().Truncate(time.Microsecond),
		Saved:     time.Now().UTC().Truncate(time.Microsecond),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	meta := testSnapMeta("sess-abc")
	payload := []byte("opaque stepper state bytes")
	if err := s.PutSnapshot(meta, payload); err != nil {
		t.Fatalf("PutSnapshot: %v", err)
	}
	got, gotPayload, err := s.GetSnapshot("sess-abc")
	if err != nil {
		t.Fatalf("GetSnapshot: %v", err)
	}
	if string(gotPayload) != string(payload) {
		t.Fatalf("payload %q, want %q", gotPayload, payload)
	}
	if got.SessionID != meta.SessionID || got.ModelID != meta.ModelID ||
		got.Dt != meta.Dt || got.Method != meta.Method || got.Step != meta.Step ||
		got.Emitted0 != meta.Emitted0 || got.Advances != meta.Advances {
		t.Fatalf("metadata %+v, want %+v", got, meta)
	}
	if st := s.Stats(); st.Snapshots != 1 || st.SnapshotWrites != 1 {
		t.Fatalf("stats %+v, want 1 snapshot / 1 write", st)
	}

	// A newer snapshot atomically supersedes the old one.
	meta.Step = 74
	if err := s.PutSnapshot(meta, []byte("newer")); err != nil {
		t.Fatalf("PutSnapshot (update): %v", err)
	}
	got, gotPayload, err = s.GetSnapshot("sess-abc")
	if err != nil {
		t.Fatalf("GetSnapshot (update): %v", err)
	}
	if got.Step != 74 || string(gotPayload) != "newer" {
		t.Fatalf("updated snapshot step %d payload %q", got.Step, gotPayload)
	}
	if st := s.Stats(); st.Snapshots != 1 {
		t.Fatalf("stats after update: %+v, want 1 snapshot file", st)
	}

	if err := s.DeleteSnapshot("sess-abc"); err != nil {
		t.Fatalf("DeleteSnapshot: %v", err)
	}
	if _, _, err := s.GetSnapshot("sess-abc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetSnapshot after delete: %v, want ErrNotFound", err)
	}
	if err := s.DeleteSnapshot("sess-abc"); err != nil {
		t.Fatalf("DeleteSnapshot (missing): %v", err)
	}
}

// TestSnapshotTwoGenerations: PutSnapshot rotates the current file into the
// .prev slot, so the last two advance states stay addressable — GetSnapshotAt
// can pin either step, and GetSnapshot falls back to the previous generation
// when the latest is damaged.
func TestSnapshotTwoGenerations(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	meta := testSnapMeta("sess-gen")
	meta.Step = 100
	if err := s.PutSnapshot(meta, []byte("state-100")); err != nil {
		t.Fatalf("PutSnapshot 100: %v", err)
	}
	meta.Step = 200
	if err := s.PutSnapshot(meta, []byte("state-200")); err != nil {
		t.Fatalf("PutSnapshot 200: %v", err)
	}

	// Latest wins for an unpinned get.
	got, payload, err := s.GetSnapshot("sess-gen")
	if err != nil || got.Step != 200 || string(payload) != "state-200" {
		t.Fatalf("GetSnapshot: step %d payload %q err %v, want 200/state-200", got.Step, payload, err)
	}
	// Both retained steps are pinnable.
	for _, want := range []struct {
		step    int64
		payload string
	}{{200, "state-200"}, {100, "state-100"}} {
		got, payload, err := s.GetSnapshotAt("sess-gen", want.step)
		if err != nil || got.Step != want.step || string(payload) != want.payload {
			t.Fatalf("GetSnapshotAt(%d): step %d payload %q err %v", want.step, got.Step, payload, err)
		}
	}
	// A step neither generation captures is ErrNoSnapshotAtStep, not
	// ErrNotFound — the session is resumable, just not from there.
	if _, _, err := s.GetSnapshotAt("sess-gen", 150); !errors.Is(err, ErrNoSnapshotAtStep) {
		t.Fatalf("GetSnapshotAt(150): %v, want ErrNoSnapshotAtStep", err)
	}
	if _, _, err := s.GetSnapshotAt("sess-none", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetSnapshotAt on missing session: %v, want ErrNotFound", err)
	}

	// A third put retires step 100: only the newest two generations survive.
	meta.Step = 300
	if err := s.PutSnapshot(meta, []byte("state-300")); err != nil {
		t.Fatalf("PutSnapshot 300: %v", err)
	}
	if _, _, err := s.GetSnapshotAt("sess-gen", 100); !errors.Is(err, ErrNoSnapshotAtStep) {
		t.Fatalf("GetSnapshotAt(100) after third put: %v, want ErrNoSnapshotAtStep", err)
	}

	// Corrupt the latest: GetSnapshot falls back to the previous generation.
	p := s.snapPath("sess-gen")
	data, _ := os.ReadFile(p)
	data[len(data)-1] ^= 1
	os.WriteFile(p, data, 0o644)
	got, payload, err = s.GetSnapshot("sess-gen")
	if err != nil || got.Step != 200 || string(payload) != "state-200" {
		t.Fatalf("GetSnapshot with corrupt latest: step %d payload %q err %v, want prev generation (200)", got.Step, payload, err)
	}

	// DeleteSnapshot removes both generations.
	if err := s.DeleteSnapshot("sess-gen"); err != nil {
		t.Fatalf("DeleteSnapshot: %v", err)
	}
	if _, _, err := s.GetSnapshot("sess-gen"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetSnapshot after delete: %v, want ErrNotFound", err)
	}
	if _, _, err := s.GetSnapshotAt("sess-gen", 200); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetSnapshotAt after delete: %v, want ErrNotFound", err)
	}
}

func TestSnapshotMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := s.GetSnapshot("never-created"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetSnapshot: %v, want ErrNotFound", err)
	}
	if err := s.PutSnapshot(SnapshotMeta{}, nil); err == nil {
		t.Fatal("PutSnapshot accepted an empty session id")
	}
}

// TestSnapshotCorruptionQuarantined: every damaged file is moved aside and
// reported as ErrNotFound — same policy as ROM entries.
func TestSnapshotCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	meta := testSnapMeta("sess-corrupt")
	if err := s.PutSnapshot(meta, []byte("payload")); err != nil {
		t.Fatalf("PutSnapshot: %v", err)
	}
	p := s.snapPath("sess-corrupt")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("reading snapshot file: %v", err)
	}

	corruptions := map[string]func([]byte) []byte{
		"bit flip":    func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"truncation":  func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":   func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version": func(b []byte) []byte { b[8] = 0xee; return b },
	}
	for name, corrupt := range corruptions {
		if err := os.WriteFile(p, corrupt(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatalf("%s: planting corrupt file: %v", name, err)
		}
		if _, _, err := s.GetSnapshot("sess-corrupt"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: GetSnapshot: %v, want ErrNotFound", name, err)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt file was not quarantined", name)
		}
		// Clean quarantined files so the next round plants fresh.
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), quarantineExt) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}

	// A snapshot stored under a mismatched id (cross-linked file) is also
	// rejected: copy a valid file to another session's address.
	if err := s.PutSnapshot(meta, []byte("payload")); err != nil {
		t.Fatalf("PutSnapshot (refresh): %v", err)
	}
	data, _ = os.ReadFile(p)
	other := s.snapPath("sess-other")
	if err := os.WriteFile(other, data, 0o644); err != nil {
		t.Fatalf("planting cross-linked file: %v", err)
	}
	if _, _, err := s.GetSnapshot("sess-other"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-linked snapshot: %v, want ErrNotFound", err)
	}
}

// TestSnapshotScan: valid snapshots enumerate; corrupt and cross-linked ones
// are quarantined during the scan; ROM files are untouched.
func TestSnapshotScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := s.PutSnapshot(testSnapMeta(id), []byte("state-"+id)); err != nil {
			t.Fatalf("PutSnapshot %s: %v", id, err)
		}
	}
	// Corrupt one.
	p := s.snapPath("b")
	data, _ := os.ReadFile(p)
	data[len(data)-1] ^= 1
	os.WriteFile(p, data, 0o644)

	metas, err := s.ScanSnapshots()
	if err != nil {
		t.Fatalf("ScanSnapshots: %v", err)
	}
	ids := map[string]bool{}
	for _, m := range metas {
		ids[m.SessionID] = true
	}
	if len(metas) != 2 || !ids["a"] || !ids["c"] {
		t.Fatalf("scanned %v, want sessions a and c", ids)
	}
	if st := s.Stats(); st.Snapshots != 2 || st.Quarantined != 1 {
		t.Fatalf("stats %+v, want 2 snapshots + 1 quarantined", st)
	}
}
