// Package store is the persistent ROM store: a content-addressed, disk-backed
// library of block-diagonal reduced models keyed by the serving layer's model
// identity (ModelKey.ID()) together with the exact grid configuration
// fingerprint (grid.Config.Key()).
//
// The paper's central economy is "reduce once, evaluate forever" — a ROM is a
// reusable artifact. Persisting it lets a restarted server skip the grid
// build and BDSM reduction entirely: a warm restart reads the ROM back in
// milliseconds instead of re-running the most expensive operation in the
// system. Keying on the grid fingerprint (not just the model name) makes the
// store self-invalidating: if a benchmark's generation parameters change
// between binary versions, the address changes with them and the stale file
// is simply never found.
//
// On-disk format (little-endian), one file per ROM, named by the first 24
// hex digits of SHA-256(id NUL gridKey) with extension ".rom":
//
//	magic    [8]byte  "PGROMST1"
//	version  uint32   store format version (1)
//	metaLen  uint32   length of the metadata JSON
//	meta     []byte   Meta as JSON
//	romLen   uint64   length of the ROM payload
//	rom      []byte   lti.SaveBlockDiag stream (itself versioned + checksummed)
//	sha256   [32]byte digest of every preceding byte
//
// Writes are atomic: the file is assembled in a temp file in the same
// directory, fsynced, and renamed into place, so a reader never observes a
// torn file — it sees the old ROM, the new ROM, or nothing. Any file that
// fails validation on read (bad magic, version, checksum, metadata mismatch,
// or ROM decode error) is quarantined — renamed aside with a ".quarantined"
// suffix — and reported as a miss, so one corrupt file costs one rebuild
// rather than a crash or a silently wrong model.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lti"
)

// FormatVersion is the store file format version this package reads and
// writes. Files with any other version are quarantined, never half-decoded.
// Version 2 switched the ROM payload to the lti format that embeds the
// modal (diagonalize-once) form; version-1 files are quarantined and their
// models rebuilt on first request.
const FormatVersion = 2

// magic opens every store file; it doubles as a human-greppable signature.
const magic = "PGROMST1"

// romExt and quarantineExt are the extensions of live and quarantined files.
const (
	romExt        = ".rom"
	quarantineExt = ".quarantined"
)

// ErrNotFound reports that no (valid) ROM exists at the requested address.
// Corrupt files surface as ErrNotFound too (wrapped with the reason), after
// being quarantined: the caller's recovery — rebuild the model — is the same.
var ErrNotFound = errors.New("store: ROM not found")

// Meta is the sidecar metadata persisted with each ROM — everything the
// serving layer needs to register a model without touching the grid
// generator or the reducer.
type Meta struct {
	// ID is the serving-layer model identity (ModelKey.ID()).
	ID string `json:"id"`
	// GridKey fingerprints every generation parameter of the source grid.
	GridKey string `json:"grid_key"`
	// ModelKey is the serving layer's key, stored opaquely so this package
	// does not depend on the serve package.
	ModelKey json.RawMessage `json:"model_key,omitempty"`

	Nodes   int `json:"nodes"`
	Ports   int `json:"ports"`
	Outputs int `json:"outputs"`
	Order   int `json:"order"`
	Blocks  int `json:"blocks"`

	// ModalBlocks counts the blocks of the stored modal form that carry a
	// usable pole–residue decomposition (0 when no modal form is stored).
	ModalBlocks int `json:"modal_blocks,omitempty"`

	// BuildNS and ReduceNS record what the original build cost — the time a
	// warm restart saves.
	BuildNS  int64     `json:"build_ns"`
	ReduceNS int64     `json:"reduce_ns"`
	Created  time.Time `json:"created"`
}

// Stats is a point-in-time snapshot of store activity since Open.
type Stats struct {
	// Entries counts live .rom files on disk; Quarantined counts
	// .quarantined files (from this and previous processes).
	Entries     int   `json:"entries"`
	Quarantined int   `json:"quarantined"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	// CorruptDropped counts files this process quarantined.
	CorruptDropped int64 `json:"corrupt_dropped"`
	// Snapshots counts live session-snapshot files on disk; SnapshotWrites
	// counts snapshot persists by this process.
	Snapshots      int   `json:"snapshots"`
	SnapshotWrites int64 `json:"snapshot_writes"`
}

// Store is a handle on one store directory. All methods are safe for
// concurrent use, including by multiple Store handles (or processes) on the
// same directory: writes are atomic renames and reads verify checksums.
type Store struct {
	dir string

	// quarantineMu serializes quarantine renames so two readers hitting the
	// same corrupt file don't race each other's rename.
	quarantineMu sync.Mutex

	hits, misses, writes, writeErrors, corrupt atomic.Int64
	snapWrites                                 atomic.Int64
}

// Open creates (if necessary) and opens a store directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// addr maps a (model id, grid key) pair to its content address: the file
// name is derived from the full key material, so lookups are O(1) path
// computations and arbitrary key characters never reach the filesystem.
func addr(id, gridKey string) string {
	sum := sha256.Sum256([]byte(id + "\x00" + gridKey))
	return hex.EncodeToString(sum[:12]) + romExt
}

func (s *Store) path(id, gridKey string) string {
	return filepath.Join(s.dir, addr(id, gridKey))
}

// encode assembles the framed file image for one ROM, embedding the modal
// form when one is given.
func encode(meta Meta, rom *lti.BlockDiagSystem, modal *lti.ModalSystem) ([]byte, error) {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: encoding metadata: %w", err)
	}
	var romBuf bytes.Buffer
	if modal != nil {
		err = lti.SaveModal(&romBuf, modal)
	} else {
		err = lti.SaveBlockDiag(&romBuf, rom)
	}
	if err != nil {
		return nil, err
	}
	romBytes := romBuf.Bytes()

	buf := make([]byte, 0, len(magic)+16+len(metaJSON)+len(romBytes)+sha256.Size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(metaJSON)))
	buf = append(buf, metaJSON...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(romBytes)))
	buf = append(buf, romBytes...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...), nil
}

// decodeMeta verifies the frame (magic, version, lengths, checksum) and
// returns the metadata and the ROM payload bytes without decoding the ROM.
func decodeMeta(data []byte) (Meta, []byte, error) {
	const headerLen = len(magic) + 8 // magic + version + metaLen
	if len(data) < headerLen+8+sha256.Size {
		return Meta{}, nil, fmt.Errorf("store: file too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return Meta{}, nil, errors.New("store: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != FormatVersion {
		return Meta{}, nil, fmt.Errorf("store: file format version %d, this build reads version %d", v, FormatVersion)
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if computed := sha256.Sum256(body); string(computed[:]) != string(sum) {
		return Meta{}, nil, errors.New("store: checksum mismatch")
	}
	metaLen := int(binary.LittleEndian.Uint32(data[len(magic)+4:]))
	rest := body[headerLen:]
	if metaLen < 0 || metaLen > len(rest)-8 {
		return Meta{}, nil, fmt.Errorf("store: metadata length %d exceeds file", metaLen)
	}
	var meta Meta
	if err := json.Unmarshal(rest[:metaLen], &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("store: decoding metadata: %w", err)
	}
	rest = rest[metaLen:]
	romLen := binary.LittleEndian.Uint64(rest)
	if romLen != uint64(len(rest)-8) {
		return Meta{}, nil, fmt.Errorf("store: ROM length %d disagrees with file (%d remaining)", romLen, len(rest)-8)
	}
	return meta, rest[8:], nil
}

// Put persists one ROM at its content address, atomically replacing any
// previous version. meta.ID and meta.GridKey must be set — they are the
// address. A non-nil modal form (whose BD must be rom) is embedded so a warm
// restart recovers the factorization-free fast path without recomputing the
// eigendecompositions.
func (s *Store) Put(meta Meta, rom *lti.BlockDiagSystem, modal *lti.ModalSystem) error {
	if meta.ID == "" || meta.GridKey == "" {
		s.writeErrors.Add(1)
		return errors.New("store: Put requires meta.ID and meta.GridKey")
	}
	if modal != nil && modal.BD != rom {
		s.writeErrors.Add(1)
		return errors.New("store: modal form does not belong to the ROM being stored")
	}
	data, err := encode(meta, rom, modal)
	if err != nil {
		s.writeErrors.Add(1)
		return err
	}
	if err := s.writeAtomic(s.path(meta.ID, meta.GridKey), data); err != nil {
		s.writeErrors.Add(1)
		return err
	}
	s.writes.Add(1)
	return nil
}

// Get loads the ROM stored for (id, gridKey), together with its modal form
// when the file embeds one (nil otherwise). A missing file returns
// ErrNotFound; a file that fails any validation step is quarantined and also
// reported as (wrapped) ErrNotFound, so callers rebuild either way.
func (s *Store) Get(id, gridKey string) (*lti.BlockDiagSystem, *lti.ModalSystem, Meta, error) {
	p := s.path(id, gridKey)
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		s.misses.Add(1)
		return nil, nil, Meta{}, ErrNotFound
	}
	if err != nil {
		s.misses.Add(1)
		return nil, nil, Meta{}, fmt.Errorf("store: reading %s: %w", p, err)
	}
	meta, romBytes, err := decodeMeta(data)
	if err == nil && (meta.ID != id || meta.GridKey != gridKey) {
		err = fmt.Errorf("store: file addresses %q/%q, requested %q/%q", meta.ID, meta.GridKey, id, gridKey)
	}
	var rom *lti.BlockDiagSystem
	var modal *lti.ModalSystem
	if err == nil {
		rom, modal, err = loadROM(romBytes)
	}
	if err == nil {
		if n, m, p2 := rom.Dims(); n != meta.Order || m != meta.Ports || p2 != meta.Outputs || len(rom.Blocks) != meta.Blocks {
			err = fmt.Errorf("store: ROM dims (order %d, %d×%d, %d blocks) disagree with metadata (order %d, %d×%d, %d blocks)",
				n, p2, m, len(rom.Blocks), meta.Order, meta.Outputs, meta.Ports, meta.Blocks)
		}
	}
	if err != nil {
		s.quarantine(p, data)
		s.misses.Add(1)
		return nil, nil, Meta{}, fmt.Errorf("%w (quarantined %s: %v)", ErrNotFound, filepath.Base(p), err)
	}
	s.hits.Add(1)
	return rom, modal, meta, nil
}

// loadROM decodes the payload, converting any panic in the decode path into
// an error: a corrupt file must never take the server down.
func loadROM(romBytes []byte) (rom *lti.BlockDiagSystem, modal *lti.ModalSystem, err error) {
	defer func() {
		if r := recover(); r != nil {
			rom, modal, err = nil, nil, fmt.Errorf("store: ROM decode panicked: %v", r)
		}
	}()
	return lti.LoadROM(bytes.NewReader(romBytes))
}

// quarantine moves a corrupt file aside so it is never re-read (and remains
// available for post-mortem inspection). The rename is conditional on the
// file still holding the bytes we judged corrupt: a concurrent Put may have
// already replaced it with a fresh, valid ROM, which must not be destroyed.
func (s *Store) quarantine(p string, observed []byte) {
	s.quarantineMu.Lock()
	defer s.quarantineMu.Unlock()
	current, err := os.ReadFile(p)
	if err != nil || !bytes.Equal(current, observed) {
		return // already quarantined, removed, or overwritten
	}
	if err := os.Rename(p, p+quarantineExt); err == nil {
		s.corrupt.Add(1)
	} else {
		// Renaming failed (exotic filesystem?); removal still protects
		// future reads.
		if os.Remove(p) == nil {
			s.corrupt.Add(1)
		}
	}
}

// Scan enumerates the metadata of every valid ROM in the store, quarantining
// corrupt files as it encounters them. It reads and checksums each file but
// does not decode ROM payloads, so startup preloading can decide what to
// register before paying any gob decode.
func (s *Store) Scan() ([]Meta, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", s.dir, err)
	}
	var metas []Meta
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), romExt) {
			continue
		}
		p := filepath.Join(s.dir, ent.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			continue // racing Put/quarantine; skip
		}
		meta, _, err := decodeMeta(data)
		if err == nil && addr(meta.ID, meta.GridKey) != ent.Name() {
			err = fmt.Errorf("store: file %s does not match its address", ent.Name())
		}
		if err != nil {
			s.quarantine(p, data)
			continue
		}
		metas = append(metas, meta)
	}
	return metas, nil
}

// Stats reports store activity and current directory occupancy.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Writes:         s.writes.Load(),
		WriteErrors:    s.writeErrors.Load(),
		CorruptDropped: s.corrupt.Load(),
		SnapshotWrites: s.snapWrites.Load(),
	}
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, ent := range entries {
			switch {
			case ent.IsDir():
			case strings.HasSuffix(ent.Name(), romExt):
				st.Entries++
			case strings.HasSuffix(ent.Name(), snapExt):
				st.Snapshots++
			case strings.HasSuffix(ent.Name(), quarantineExt):
				st.Quarantined++
			}
		}
	}
	return st
}
