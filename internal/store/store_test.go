package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dense"
	"repro/internal/lti"
)

// testROM builds a small deterministic block-diagonal ROM.
func testROM() *lti.BlockDiagSystem {
	return &lti.BlockDiagSystem{
		M: 2,
		P: 1,
		Blocks: []lti.Block{
			{
				C:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{1, 0, 0, 2}},
				G:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{3, 1, 1, 4}},
				B:     []float64{1, -1},
				L:     &dense.Mat[float64]{Rows: 1, Cols: 2, Data: []float64{0.5, 0.25}},
				Input: 0,
			},
			{
				C:     &dense.Mat[float64]{Rows: 1, Cols: 1, Data: []float64{1.5}},
				G:     &dense.Mat[float64]{Rows: 1, Cols: 1, Data: []float64{2.5}},
				B:     []float64{2},
				L:     &dense.Mat[float64]{Rows: 1, Cols: 1, Data: []float64{-1}},
				Input: 1,
			},
		},
	}
}

func testMeta(id, gridKey string) Meta {
	return Meta{
		ID: id, GridKey: gridKey,
		Nodes: 100, Ports: 2, Outputs: 1, Order: 3, Blocks: 2,
		BuildNS: 1e6, ReduceNS: 2e6,
		Created: time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC),
	}
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, meta Meta) {
	t.Helper()
	if err := s.Put(meta, testROM(), nil); err != nil {
		t.Fatalf("Put(%s): %v", meta.ID, err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTestStore(t)
	meta := testMeta("m1", "g1")

	if _, _, _, err := s.Get("m1", "g1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get before Put: err = %v, want ErrNotFound", err)
	}
	mustPut(t, s, meta)
	rom, modal, got, err := s.Get("m1", "g1")
	if err != nil {
		t.Fatalf("Get after Put: %v", err)
	}
	if !reflect.DeepEqual(rom, testROM()) {
		t.Fatal("loaded ROM differs from stored ROM")
	}
	if modal != nil {
		t.Fatal("Put without a modal form loaded one")
	}
	if !reflect.DeepEqual(got, meta) {
		t.Fatalf("loaded meta = %+v, want %+v", got, meta)
	}
	// Different grid key = different address, even for the same model id.
	if _, _, _, err := s.Get("m1", "g2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get with other grid key: err = %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 2 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want 1 entry / 1 hit / 2 misses / 1 write", st)
	}
}

func TestPutOverwritesAtomically(t *testing.T) {
	s := openTestStore(t)
	meta := testMeta("m1", "g1")
	mustPut(t, s, meta)
	meta.Nodes = 999
	mustPut(t, s, meta)
	_, _, got, err := s.Get("m1", "g1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Nodes != 999 {
		t.Fatalf("Nodes = %d after overwrite, want 999", got.Nodes)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after overwrite, want 1", st.Entries)
	}
	// No temp-file litter.
	entries, _ := os.ReadDir(s.Dir())
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// storeFile returns the single .rom path in the store directory.
func storeFile(t *testing.T, s *Store) string {
	t.Helper()
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), romExt) {
			return filepath.Join(s.Dir(), e.Name())
		}
	}
	t.Fatal("no .rom file in store")
	return ""
}

func TestCorruptFileQuarantined(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"wrong version", func(b []byte) []byte { b[8] = 99; return b }},
		{"payload bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }},
		{"checksum bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openTestStore(t)
			mustPut(t, s, testMeta("m1", "g1"))
			p := storeFile(t, s)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, _, err = s.Get("m1", "g1")
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on corrupt file: err = %v, want wrapped ErrNotFound", err)
			}
			if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt file still live: %v", err)
			}
			if _, err := os.Stat(p + quarantineExt); err != nil {
				t.Fatalf("no quarantined copy: %v", err)
			}
			st := s.Stats()
			if st.CorruptDropped != 1 || st.Quarantined != 1 || st.Entries != 0 {
				t.Fatalf("stats = %+v, want 1 corrupt / 1 quarantined / 0 entries", st)
			}
			// The store stays usable: a fresh Put at the same address works.
			mustPut(t, s, testMeta("m1", "g1"))
			if _, _, _, err := s.Get("m1", "g1"); err != nil {
				t.Fatalf("Get after re-Put: %v", err)
			}
		})
	}
}

func TestMetaROMDimensionMismatchQuarantined(t *testing.T) {
	s := openTestStore(t)
	meta := testMeta("m1", "g1")
	meta.Order = 17 // lies about the ROM inside
	mustPut(t, s, meta)
	if _, _, _, err := s.Get("m1", "g1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get with lying metadata: err = %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
}

func TestMovedFileQuarantined(t *testing.T) {
	// A valid file copied to the wrong address must not serve the wrong key.
	s := openTestStore(t)
	mustPut(t, s, testMeta("m1", "g1"))
	data, err := os.ReadFile(storeFile(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("m2", "g1"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Get("m2", "g1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of mis-addressed file: err = %v, want ErrNotFound", err)
	}
	// The original is untouched.
	if _, _, _, err := s.Get("m1", "g1"); err != nil {
		t.Fatalf("Get of original: %v", err)
	}
}

func TestScan(t *testing.T) {
	s := openTestStore(t)
	for _, id := range []string{"a", "b", "c"} {
		mustPut(t, s, testMeta(id, "g"))
	}
	// Corrupt one file; Scan must skip and quarantine it, returning the rest.
	p := s.path("b", "g")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Stray non-ROM files are ignored.
	if err := os.WriteFile(filepath.Join(s.Dir(), "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	metas, err := s.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	ids := map[string]bool{}
	for _, m := range metas {
		ids[m.ID] = true
	}
	if len(metas) != 2 || !ids["a"] || !ids["c"] {
		t.Fatalf("Scan returned %v, want exactly a and c", ids)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 2 {
		t.Fatalf("stats after scan = %+v, want 1 quarantined / 2 entries", st)
	}
}

func TestPutValidation(t *testing.T) {
	s := openTestStore(t)
	if err := s.Put(Meta{GridKey: "g"}, testROM(), nil); err == nil {
		t.Fatal("Put without ID succeeded")
	}
	if err := s.Put(Meta{ID: "m"}, testROM(), nil); err == nil {
		t.Fatal("Put without GridKey succeeded")
	}
	// An invalid ROM is rejected by the lti layer before touching disk.
	bad := testROM()
	bad.Blocks[0].Input = 5
	if err := s.Put(testMeta("m1", "g1"), bad, nil); err == nil {
		t.Fatal("Put of invalid ROM succeeded")
	}
	// A modal form for a different ROM must be rejected too.
	other, err := testROM().Modalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testMeta("m1", "g1"), testROM(), other); err == nil {
		t.Fatal("Put with a foreign modal form succeeded")
	}
	if st := s.Stats(); st.WriteErrors != 4 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 4 write errors / 0 entries", st)
	}
}

// TestPutGetModalRoundTrip: a stored modal form comes back intact, so a warm
// restart recovers the factorization-free path without re-diagonalizing.
func TestPutGetModalRoundTrip(t *testing.T) {
	s := openTestStore(t)
	rom := testROM()
	ms, err := rom.Modalize()
	if err != nil {
		t.Fatalf("Modalize: %v", err)
	}
	meta := testMeta("m1", "g1")
	meta.ModalBlocks, _ = ms.ModalCount()
	if err := s.Put(meta, rom, ms); err != nil {
		t.Fatalf("Put with modal: %v", err)
	}
	gotROM, gotMS, gotMeta, err := s.Get("m1", "g1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if gotMS == nil {
		t.Fatal("stored modal form was not returned")
	}
	if !reflect.DeepEqual(gotROM, rom) {
		t.Fatal("loaded ROM differs")
	}
	if !reflect.DeepEqual(gotMS.Blocks, ms.Blocks) {
		t.Fatal("loaded modal blocks differ")
	}
	if gotMS.BD != gotROM {
		t.Fatal("loaded modal form does not reference the loaded ROM")
	}
	if gotMeta.ModalBlocks != meta.ModalBlocks {
		t.Fatalf("meta.ModalBlocks = %d, want %d", gotMeta.ModalBlocks, meta.ModalBlocks)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
