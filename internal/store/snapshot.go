// Session-snapshot persistence: a second payload kind alongside ROMs.
//
// A transient session's integrator state is a few complex numbers per modal
// block — tiny, but the only thing a replica owns that the content-addressed
// ROM store does not already make recoverable. Persisting snapshots through
// the same store directory makes replicas stateless: a session created on one
// replica can resume on any other that shares the directory, which is what
// lets a router tier route around a dead or draining replica without losing
// client state.
//
// On-disk format (little-endian), one file per session, named by the first
// 24 hex digits of SHA-256("snap" NUL session id) with extension ".snap":
//
//	magic    [8]byte  "PGSNAPS1"
//	version  uint32   snapshot file format version (1)
//	metaLen  uint32   length of the metadata JSON
//	meta     []byte   SnapshotMeta as JSON
//	payLen   uint64   length of the payload
//	payload  []byte   sim.StepperState binary frame (opaque to this package)
//	sha256   [32]byte digest of every preceding byte
//
// Writes are atomic (temp + fsync + rename) and corrupt files are
// quarantined exactly like ROM entries: a snapshot that fails any validation
// step is renamed aside and reported as ErrNotFound, so the worst a corrupt
// file costs is one lost resume, never a crash or a wrong state.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// SnapshotFormatVersion is the snapshot file format version this package
// reads and writes.
const SnapshotFormatVersion = 1

const (
	snapMagic = "PGSNAPS1"
	snapExt   = ".snap"
)

// SnapshotMeta is the sidecar metadata persisted with each session snapshot —
// everything a resuming replica needs to rebuild the session's stepper
// (through the model repository) before restoring the state payload.
type SnapshotMeta struct {
	// SessionID is the session identity; it addresses the snapshot.
	SessionID string `json:"session_id"`
	// ModelID and ModelKey identify the model the session integrates;
	// ModelKey is stored opaquely (the serve layer's key JSON) so resume can
	// re-resolve the model even when it is not resident.
	ModelID  string          `json:"model_id"`
	ModelKey json.RawMessage `json:"model_key,omitempty"`
	// Dt and Method pin the integrator configuration; a snapshot only
	// restores onto a stepper built with the same pair.
	Dt     float64 `json:"dt"`
	Method string  `json:"method"`
	// Step is the integration step the payload captures; Emitted0 records
	// whether the session already streamed its t = 0 row; Advances counts
	// completed advances.
	Step     int64 `json:"step"`
	Emitted0 bool  `json:"emitted0"`
	Advances int64 `json:"advances"`
	// Deadline is the session's hard TTL deadline: a resume must not extend
	// the session's life beyond what its creator was promised.
	Deadline time.Time `json:"deadline"`
	Created  time.Time `json:"created"`
	Saved    time.Time `json:"saved"`
}

// snapAddr maps a session id to its snapshot file name. The "snap" prefix
// keeps the hash domain disjoint from ROM addresses.
func snapAddr(sessionID string) string {
	sum := sha256.Sum256([]byte("snap\x00" + sessionID))
	return hex.EncodeToString(sum[:12]) + snapExt
}

func (s *Store) snapPath(sessionID string) string {
	return filepath.Join(s.dir, snapAddr(sessionID))
}

// snapPrevPath is the previous-generation slot: PutSnapshot rotates the
// current snapshot here before publishing a new one. The ".prev" suffix
// keeps these files out of ScanSnapshots (which matches the ".snap" suffix).
func (s *Store) snapPrevPath(sessionID string) string {
	return s.snapPath(sessionID) + ".prev"
}

// ErrNoSnapshotAtStep reports that snapshots exist for the session but none
// captures the requested step — the caller wanted to rewind further than the
// two retained generations reach.
var ErrNoSnapshotAtStep = errors.New("store: no snapshot at requested step")

// encodeSnapshot assembles the framed file image for one snapshot.
func encodeSnapshot(meta SnapshotMeta, payload []byte) ([]byte, error) {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: encoding snapshot metadata: %w", err)
	}
	buf := make([]byte, 0, len(snapMagic)+16+len(metaJSON)+len(payload)+sha256.Size)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, SnapshotFormatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(metaJSON)))
	buf = append(buf, metaJSON...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...), nil
}

// decodeSnapshot verifies the frame (magic, version, lengths, checksum) and
// returns the metadata and state payload.
func decodeSnapshot(data []byte) (SnapshotMeta, []byte, error) {
	const headerLen = len(snapMagic) + 8 // magic + version + metaLen
	if len(data) < headerLen+8+sha256.Size {
		return SnapshotMeta{}, nil, fmt.Errorf("store: snapshot file too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return SnapshotMeta{}, nil, errors.New("store: bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint32(data[len(snapMagic):]); v != SnapshotFormatVersion {
		return SnapshotMeta{}, nil, fmt.Errorf("store: snapshot format version %d, this build reads version %d", v, SnapshotFormatVersion)
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if computed := sha256.Sum256(body); string(computed[:]) != string(sum) {
		return SnapshotMeta{}, nil, errors.New("store: snapshot checksum mismatch")
	}
	metaLen := int(binary.LittleEndian.Uint32(data[len(snapMagic)+4:]))
	rest := body[headerLen:]
	if metaLen < 0 || metaLen > len(rest)-8 {
		return SnapshotMeta{}, nil, fmt.Errorf("store: snapshot metadata length %d exceeds file", metaLen)
	}
	var meta SnapshotMeta
	if err := json.Unmarshal(rest[:metaLen], &meta); err != nil {
		return SnapshotMeta{}, nil, fmt.Errorf("store: decoding snapshot metadata: %w", err)
	}
	rest = rest[metaLen:]
	payLen := binary.LittleEndian.Uint64(rest)
	if payLen != uint64(len(rest)-8) {
		return SnapshotMeta{}, nil, fmt.Errorf("store: snapshot payload length %d disagrees with file (%d remaining)", payLen, len(rest)-8)
	}
	return meta, rest[8:], nil
}

// PutSnapshot persists one session snapshot at its address, rotating the
// current snapshot (if any) into the previous-generation slot first. Keeping
// two generations is what makes router-tier failover exact even when a
// replica dies after completing an advance whose response never reached the
// client: the latest snapshot is then one advance AHEAD of what the client
// observed, and the previous generation still captures the step the client
// last saw, so the lost advance can be replayed from it.
func (s *Store) PutSnapshot(meta SnapshotMeta, payload []byte) error {
	if meta.SessionID == "" {
		s.writeErrors.Add(1)
		return errors.New("store: PutSnapshot requires meta.SessionID")
	}
	data, err := encodeSnapshot(meta, payload)
	if err != nil {
		s.writeErrors.Add(1)
		return err
	}
	p := s.snapPath(meta.SessionID)
	// Rotate before publishing: rename is atomic, and if the new write fails
	// the previous state survives in the .prev slot (GetSnapshot falls back
	// to it).
	if err := os.Rename(p, s.snapPrevPath(meta.SessionID)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: rotating snapshot: %w", err)
	}
	if err := s.writeAtomic(p, data); err != nil {
		s.writeErrors.Add(1)
		return err
	}
	s.snapWrites.Add(1)
	return nil
}

// readSnapshotFile loads and validates one snapshot file, quarantining it on
// any failure. Missing files return ErrNotFound un-wrapped.
func (s *Store) readSnapshotFile(p, sessionID string) (SnapshotMeta, []byte, error) {
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return SnapshotMeta{}, nil, ErrNotFound
	}
	if err != nil {
		return SnapshotMeta{}, nil, fmt.Errorf("store: reading %s: %w", p, err)
	}
	meta, payload, err := decodeSnapshot(data)
	if err == nil && meta.SessionID != sessionID {
		err = fmt.Errorf("store: snapshot addresses session %q, requested %q", meta.SessionID, sessionID)
	}
	if err != nil {
		s.quarantine(p, data)
		return SnapshotMeta{}, nil, fmt.Errorf("%w (quarantined %s: %v)", ErrNotFound, filepath.Base(p), err)
	}
	return meta, payload, nil
}

// GetSnapshot loads the latest snapshot persisted for a session, falling
// back to the previous generation when the latest is missing or corrupt. A
// session with no usable snapshot returns (wrapped) ErrNotFound — the
// caller's recovery (the session is unrecoverable, create a fresh one) is
// the same for missing and quarantined files.
func (s *Store) GetSnapshot(sessionID string) (SnapshotMeta, []byte, error) {
	meta, payload, err := s.readSnapshotFile(s.snapPath(sessionID), sessionID)
	if err == nil {
		return meta, payload, nil
	}
	if pm, pp, perr := s.readSnapshotFile(s.snapPrevPath(sessionID), sessionID); perr == nil {
		return pm, pp, nil
	}
	return SnapshotMeta{}, nil, err
}

// GetSnapshotAt loads the snapshot capturing exactly the given step,
// checking the latest generation first, then the previous one. When
// snapshots exist but neither matches, the error wraps ErrNoSnapshotAtStep
// (distinct from ErrNotFound: the session IS resumable, just not from that
// step).
func (s *Store) GetSnapshotAt(sessionID string, step int64) (SnapshotMeta, []byte, error) {
	var have []int64
	for _, p := range []string{s.snapPath(sessionID), s.snapPrevPath(sessionID)} {
		meta, payload, err := s.readSnapshotFile(p, sessionID)
		if err != nil {
			continue
		}
		if meta.Step == step {
			return meta, payload, nil
		}
		have = append(have, meta.Step)
	}
	if len(have) == 0 {
		return SnapshotMeta{}, nil, ErrNotFound
	}
	return SnapshotMeta{}, nil, fmt.Errorf("%w: want step %d, have %v", ErrNoSnapshotAtStep, step, have)
}

// DeleteSnapshot removes both generations of a session's persisted snapshot
// (explicit session deletion, or cleanup after a successful resume handoff).
// Missing files are not an error.
func (s *Store) DeleteSnapshot(sessionID string) error {
	var firstErr error
	for _, p := range []string{s.snapPath(sessionID), s.snapPrevPath(sessionID)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) && firstErr == nil {
			firstErr = fmt.Errorf("store: deleting snapshot: %w", err)
		}
	}
	return firstErr
}

// ScanSnapshots enumerates the metadata of every valid snapshot in the
// store, quarantining corrupt files as it goes. Used by operators and tests;
// resume looks snapshots up directly by session id.
func (s *Store) ScanSnapshots() ([]SnapshotMeta, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", s.dir, err)
	}
	var metas []SnapshotMeta
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), snapExt) {
			continue
		}
		p := filepath.Join(s.dir, ent.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			continue // racing write/quarantine; skip
		}
		meta, _, err := decodeSnapshot(data)
		if err == nil && snapAddr(meta.SessionID) != ent.Name() {
			err = fmt.Errorf("store: snapshot %s does not match its address", ent.Name())
		}
		if err != nil {
			s.quarantine(p, data)
			continue
		}
		metas = append(metas, meta)
	}
	return metas, nil
}

// writeAtomic publishes data at path via the store's temp + fsync + rename
// discipline, shared by ROM and snapshot writers.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: chmod %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publishing %s: %w", filepath.Base(path), err)
	}
	return nil
}
