// Package core implements BDSM — the block-diagonal structured model order
// reduction scheme for power grid networks of Zhang, Hu, Cheng and Wong
// (DATE 2011) — the primary contribution reproduced by this library.
//
// BDSM splits the input matrix B column-by-column into m rank-one splitted
// systems Σᵢ = (C, G, Bᵢ, L) (eq. 6), reduces each with a thin n×l Krylov
// basis V⁽ⁱ⁾ = K_l((s0C-G)⁻¹C, (s0C-G)⁻¹bᵢ) (eq. 13), and reassembles the
// reduced blocks into one block-diagonal ROM (eq. 14) whose transfer matrix
// matches the first l moments of H(s) column by column (eq. 15). Compared
// with PRIMA at equal ROM size ml it:
//
//   - clusters orthonormalization per splitted system — m·l(l-1)/2 long
//     vector products instead of m·l(m·l-1)/2;
//   - produces sparse block-diagonal system matrices (m·l² nonzeros instead
//     of O(m²l²)) that simulate in O(m·l³) instead of O(m³l³);
//   - is input-signal independent, so the ROM is reusable across excitation
//     patterns (unlike EKS/TBS);
//   - matches true transfer-matrix moments (unlike terminal-reduction
//     schemes such as SVDMOR).
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/dense"
	"repro/internal/krylov"
	"repro/internal/lti"
	"repro/internal/sparse"
	"repro/internal/ward"
)

// DefaultS0 is the default real expansion point. Power-grid signal content
// concentrates below a few GHz, so the pencil is expanded at 10⁹ rad/s.
const DefaultS0 = 1e9

// DefaultMoments is the default number of matched moments per column,
// matching the paper's ckt1 experiment (Table II).
const DefaultMoments = 6

// Options configures a BDSM reduction.
type Options struct {
	// S0 is the (real) Krylov expansion point. Default DefaultS0.
	S0 float64
	// Moments is l, the number of matched moments per column. Default
	// DefaultMoments.
	Moments int
	// Points optionally selects multi-point projection: when non-empty it
	// overrides S0 and the basis of every splitted system is the union of
	// the Krylov spaces at each point ("the multi-point scheme
	// straightforwardly follows", Sec. III).
	Points []float64
	// Backend selects LU or iterative pencil solves. The iterative backend
	// reproduces the paper's memory-saving mode for the largest grids.
	Backend krylov.Backend
	// LU configures the direct backend.
	LU sparse.LUOptions
	// Iter configures the iterative backend.
	Iter sparse.IterOptions
	// Workers bounds the number of concurrent splitted-system reductions;
	// 0 means GOMAXPROCS. The block decomposition makes this embarrassingly
	// parallel — the structural property the paper highlights.
	Workers int
	// TruncTol, when positive, enables adaptive per-block order: a splitted
	// system's Krylov chain stops early once orthogonalization leaves less
	// than TruncTol of new direction (relative), producing blocks smaller
	// than l for ports whose response is captured by fewer vectors. Zero
	// keeps the paper's fixed order-l blocks (only exact deflation stops a
	// chain).
	TruncTol float64
	// WardReduce enables the Ward/Schur pre-reduction stage: static states
	// (no C, B, or L entries) are eliminated exactly by a sparse Schur
	// complement before the Krylov projection runs, so BDSM cost scales
	// with the dynamic part of the grid rather than the full netlist. The
	// stage is exact (the pre-reduced system has the same transfer matrix)
	// and falls back to the unreduced system when nothing is eliminable, so
	// it is safe to enable unconditionally.
	WardReduce bool
	// Stats, when non-nil, receives cost accounting for the reduction.
	Stats *Stats
	// OnPhase, when non-nil, is called once per completed reduction phase
	// with its wall-clock duration. Every reduction reports each label
	// exactly once — "partition" and "schur" (Ward pre-reduction), "factor"
	// (pencil factorization, step 2), and "krylov" (basis construction +
	// congruence, steps 3–5) — with a zero duration for stages that were
	// skipped or fell back, never a stale clock inherited from the previous
	// stage. Serving layers use it to feed per-phase latency histograms
	// without coupling this package to any metrics system.
	OnPhase func(phase string, d time.Duration)
}

// Phases lists every OnPhase label this package reports, in pipeline order.
// Serving layers pre-register histogram series from it so skipped stages
// still show an explicit zero observation.
var Phases = []string{"partition", "schur", "factor", "krylov"}

// Normalize applies the documented defaults in place (S0, Moments, Workers).
// Reduce calls it internally; callers that key caches or model repositories
// on reduction parameters should normalize first so that "moments unset" and
// "moments = DefaultMoments" map to the same entry.
func (o *Options) Normalize() {
	if o.S0 == 0 {
		o.S0 = DefaultS0
	}
	if o.Moments == 0 {
		o.Moments = DefaultMoments
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Stats reports the measured cost of a reduction, making the paper's
// complexity claims observable.
type Stats struct {
	// Ortho counts long vector-vector products and deflations across all
	// splitted systems (paper: m·l(l-1)/2 single-pass equivalents).
	Ortho dense.OrthoStats
	// PencilSolves counts sparse pencil solves.
	PencilSolves int
	// FactorNNZ is the total LU fill over all expansion points (0 for the
	// iterative backend).
	FactorNNZ int
	// FactorTime is the time spent factoring pencils.
	FactorTime time.Duration
	// ReduceTime is the time spent in Krylov iteration + congruence.
	ReduceTime time.Duration
	// BasisColumns is the total number of accepted basis vectors Σᵢ lᵢ.
	BasisColumns int
	// PeakBasisBytes estimates the peak memory held in Krylov bases:
	// BDSM streams one splitted system per worker, so the peak is
	// workers·n·l·8 bytes — independent of the port count m.
	PeakBasisBytes int64
	// Ward reports the pre-reduction stage's shape and cost. Zero-valued
	// when Options.WardReduce is off.
	Ward ward.Stats
}

// Reduce runs BDSM (Algorithm 1) on the descriptor system and returns the
// block-diagonal ROM. Splitted systems whose input column is zero contribute
// nothing to H(s) and are skipped; columns whose Krylov space deflates early
// yield blocks smaller than l (exact reduction of that column).
func Reduce(sys *lti.SparseSystem, opts Options) (*lti.BlockDiagSystem, error) {
	opts.Normalize()
	if _, m, _ := sys.Dims(); m == 0 {
		return nil, fmt.Errorf("core: system has no input ports")
	}
	phase := func(name string, d time.Duration) {
		if opts.OnPhase != nil {
			opts.OnPhase(name, d)
		}
	}

	// Step 0 (this library's extension): Ward/Schur pre-reduction. Exact,
	// so downstream moment matching is unaffected; a disabled or no-op
	// stage still reports its phases, as zero, per the OnPhase contract.
	if opts.WardReduce {
		wres, err := ward.Reduce(sys, ward.Options{LU: opts.LU, Workers: opts.Workers})
		if err != nil {
			return nil, fmt.Errorf("core: ward pre-reduction: %w", err)
		}
		sys = wres.Sys
		phase("partition", wres.Stats.PartitionTime)
		phase("schur", wres.Stats.SchurTime)
		if opts.Stats != nil {
			opts.Stats.Ward = wres.Stats
		}
	} else {
		phase("partition", 0)
		phase("schur", 0)
	}

	n, m, p := sys.Dims()
	points := opts.Points
	if len(points) == 0 {
		points = []float64{opts.S0}
	}

	// Step 2 of Algorithm 1: one sparse factorization per expansion point,
	// shared by all m splitted systems.
	tFactor := time.Now()
	ops := make([]*krylov.Operator, len(points))
	factorNNZ := 0
	for k, s0 := range points {
		op, err := krylov.NewOperator(sys, s0, krylov.OperatorOptions{
			Backend: opts.Backend, LU: opts.LU, Iter: opts.Iter,
		})
		if err != nil {
			return nil, fmt.Errorf("core: expansion point %g: %w", s0, err)
		}
		ops[k] = op
		factorNNZ += op.FactorNNZ
	}
	factorTime := time.Since(tFactor)
	phase("factor", factorTime)

	// Steps 3–5: per splitted system, build the thin basis V⁽ⁱ⁾ and project.
	// Each splitted system is independent — BDSM's cluster-and-
	// orthonormalize flow (Fig. 2) — so they are sharded across workers.
	tReduce := time.Now()
	type result struct {
		block lti.Block
		cols  int
		skip  bool
		err   error
	}
	results := make([]result, m)
	statsPerWorker := make([]dense.OrthoStats, opts.Workers)

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wks := make([]*krylov.Worker, len(ops))
			for k := range ops {
				wks[k] = ops[k].Worker()
			}
			st := &statsPerWorker[worker]
			for i := range next {
				blk, cols, skip, err := reduceColumn(sys, wks, i, opts.Moments, opts.TruncTol, st)
				results[i] = result{block: blk, cols: cols, skip: skip, err: err}
			}
		}(w)
	}
	for i := 0; i < m; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	bd := &lti.BlockDiagSystem{M: m, P: p}
	basisCols := 0
	for i := range results {
		if err := results[i].err; err != nil {
			return nil, fmt.Errorf("core: splitted system %d: %w", i, err)
		}
		if results[i].skip {
			continue
		}
		bd.Blocks = append(bd.Blocks, results[i].block)
		basisCols += results[i].cols
	}
	if len(bd.Blocks) == 0 {
		return nil, fmt.Errorf("core: input matrix B is zero; nothing to reduce")
	}
	reduceTime := time.Since(tReduce)
	phase("krylov", reduceTime)

	if opts.Stats != nil {
		st := opts.Stats
		for i := range statsPerWorker {
			st.Ortho.DotProducts += statsPerWorker[i].DotProducts
			st.Ortho.Deflated += statsPerWorker[i].Deflated
		}
		solves := 0
		for _, op := range ops {
			solves += op.Solves()
		}
		st.PencilSolves += solves
		st.FactorNNZ += factorNNZ
		st.FactorTime += factorTime
		st.ReduceTime += reduceTime
		st.BasisColumns += basisCols
		st.PeakBasisBytes = int64(opts.Workers) * int64(n) *
			int64(opts.Moments*len(points)) * 8
	}
	return bd, nil
}

// reduceColumn builds the Krylov basis of splitted system Σᵢ across all
// expansion points and projects it into a diagonal block. It streams: the
// basis is dropped as soon as the block is formed, so peak memory is one
// n×l panel per worker regardless of the port count.
func reduceColumn(sys *lti.SparseSystem, wks []*krylov.Worker, i, l int,
	truncTol float64, st *dense.OrthoStats) (blk lti.Block, cols int, skip bool, err error) {

	chainTol := dense.DeflationTol
	if truncTol > chainTol {
		chainTol = truncTol
	}
	n, _, _ := sys.Dims()
	basis := dense.NewBasis[float64](n, st)
	w := make([]float64, n)
	for _, wk := range wks {
		// r = (s0C - G)⁻¹ bᵢ; a zero bᵢ yields a zero start vector which
		// deflates immediately.
		r, err := wk.StartColumn(i)
		if err != nil {
			return lti.Block{}, 0, false, err
		}
		// Arnoldi-style chain: iterate A on the last accepted orthonormal
		// vector. Algorithm 1 iterates the raw vectors A^j r; both span the
		// same Krylov subspace in exact arithmetic, and the orthonormalized
		// recurrence is the numerically robust realization of it. The start
		// vector always uses the exact-deflation threshold; chain vectors
		// honor the adaptive truncation tolerance.
		accepted := basis.Append(r)
		last := basis.Len() - 1
		for j := 1; j < l && accepted; j++ {
			if err := wk.Apply(w, basis.Col(last)); err != nil {
				return lti.Block{}, 0, false, err
			}
			accepted = basis.AppendTol(w, chainTol)
			last = basis.Len() - 1
		}
	}
	if basis.Len() == 0 {
		return lti.Block{}, 0, true, nil
	}
	return krylov.CongruenceBlock(sys, basis, i), basis.Len(), false, nil
}
