package core

import (
	"testing"
)

// TestBDSMTruncTolShrinksBlocks exercises the adaptive-order extension: a
// loose truncation tolerance must produce a strictly smaller ROM while the
// transfer function stays close to the exact one near the expansion point.
func TestBDSMTruncTolShrinksBlocks(t *testing.T) {
	sys := testGrid(t, 9, 8, 2, 6)
	l := 8
	full, err := Reduce(sys, Options{Moments: l})
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := Reduce(sys, Options{Moments: l, TruncTol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	qf, _, _ := full.Dims()
	qt, _, _ := trunc.Dims()
	if qt >= qf {
		t.Fatalf("truncation did not engage: q=%d of %d", qt, qf)
	}
	// The truncated ROM must remain a tight approximation in-band.
	s := complex(0, 5e8)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	ht, err := trunc.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsDiff(hx, ht) / hx.MaxAbs(); e > 1e-4 {
		t.Fatalf("truncated ROM (q=%d of %d) error %.3e too large", qt, qf, e)
	}
	t.Logf("order %d → %d at in-band error < 1e-4", qf, qt)
}

// TestBDSMTruncTolZeroKeepsPaperBehaviour guards the default: without
// TruncTol every block has exactly l columns (no accidental truncation).
func TestBDSMTruncTolZeroKeepsPaperBehaviour(t *testing.T) {
	sys := testGrid(t, 8, 8, 1, 5)
	l := 6
	rom, err := Reduce(sys, Options{Moments: l})
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range rom.Blocks {
		if blk.Order() != l {
			t.Errorf("block %d order %d, want %d", i, blk.Order(), l)
		}
	}
}
