package core

import (
	"math/cmplx"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/lti"
)

// TestReducePhaseContract pins the OnPhase reporting rules: every label in
// Phases is reported exactly once per reduction, in pipeline order, with
// explicit zeros for the Ward stages when WardReduce is off — never a
// missing label and never a stale clock inherited from the previous stage.
func TestReducePhaseContract(t *testing.T) {
	sys := testGrid(t, 6, 5, 2, 3)
	for _, wardOn := range []bool{false, true} {
		var order []string
		durs := map[string]time.Duration{}
		counts := map[string]int{}
		_, err := Reduce(sys, Options{Moments: 3, WardReduce: wardOn,
			OnPhase: func(ph string, d time.Duration) {
				order = append(order, ph)
				durs[ph] += d
				counts[ph]++
			}})
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != len(Phases) {
			t.Fatalf("ward=%v: reported phases %v, want exactly %v", wardOn, order, Phases)
		}
		for i, ph := range Phases {
			if order[i] != ph {
				t.Fatalf("ward=%v: phase %d = %q, want %q (order %v)", wardOn, i, order[i], ph, order)
			}
			if counts[ph] != 1 {
				t.Fatalf("ward=%v: phase %q reported %d times", wardOn, ph, counts[ph])
			}
		}
		if !wardOn && (durs["partition"] != 0 || durs["schur"] != 0) {
			t.Errorf("disabled ward reported partition=%v schur=%v, want zeros",
				durs["partition"], durs["schur"])
		}
	}
}

// TestReduceWardMatchesPlain verifies the pre-reduction is transparent to
// the projection: the ROM built from the Ward-reduced system matches the
// plain BDSM ROM's transfer function (both match the same moments of the
// same exact transfer matrix) and Stats records a nontrivial elimination.
func TestReduceWardMatchesPlain(t *testing.T) {
	sys := testGrid(t, 7, 6, 2, 3)
	plain, err := Reduce(sys, Options{Moments: 6})
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	warded, err := Reduce(sys, Options{Moments: 6, WardReduce: true, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ward.External == 0 {
		t.Fatal("RLC grid eliminated no states; pad midpoints should be static")
	}
	_, m, p := sys.Dims()
	for _, w := range []float64{1e6, 1e8, 1e9, 1e10} {
		s := complex(0, w)
		hp, err := plain.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		hw, err := warded.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p; i++ {
			for j := 0; j < m; j++ {
				d := cmplx.Abs(hp.At(i, j)-hw.At(i, j)) / (1 + cmplx.Abs(hp.At(i, j)))
				if d > 1e-6 {
					t.Fatalf("ω=%g: ROM transfer differs by %g at (%d,%d)", w, d, i, j)
				}
			}
		}
	}
}

// TestReduceWardMultiscale drives the configuration the stage exists for: a
// multiscale grid whose entire transmission backbone is static. The
// elimination must cover the backbone and the ROM must stay usable.
func TestReduceWardMultiscale(t *testing.T) {
	cfg := grid.MultiscaleConfig{Name: "coretest", TNodes: 40, TChord: 8,
		TransR: 0.01, Substations: 2, SubstationR: 0.05, Grids: 3, GX: 5, GY: 4,
		DistR: 0.05, FeederR: 0.5, NodeC: 50e-15, PortsPerGrid: 2,
		Variation: 0.1, Seed: 9}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	rom, err := Reduce(sys, Options{Moments: 4, WardReduce: true, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ward.External < cfg.TNodes {
		t.Fatalf("eliminated %d states, want at least the %d-node backbone", stats.Ward.External, cfg.TNodes)
	}
	if romN, _, _ := rom.Dims(); romN == 0 {
		t.Fatal("empty ROM")
	}
	if _, err := rom.Eval(complex(0, 1e9)); err != nil {
		t.Fatal(err)
	}
}
