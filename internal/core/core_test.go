package core

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dense"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// testGrid builds a small RLC power grid descriptor system with m ports.
func testGrid(t testing.TB, nx, ny, layers, ports int) *lti.SparseSystem {
	t.Helper()
	cfg := grid.Config{Name: "t", NX: nx, NY: ny, Layers: layers, Ports: ports,
		Pads: 2, SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 3,
		NodeC: 50e-15, PadR: 0.1, PadL: 0.5e-9, Variation: 0.2, Seed: 11}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBDSMStructure(t *testing.T) {
	sys := testGrid(t, 9, 8, 2, 6)
	l := 4
	var st Stats
	rom, err := Reduce(sys, Options{Moments: l, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	q, m, p := rom.Dims()
	_, ms, ps := sys.Dims()
	if m != ms || p != ps {
		t.Fatalf("ROM port dims %d/%d, want %d/%d", m, p, ms, ps)
	}
	if q != m*l {
		t.Fatalf("ROM order %d, want m·l = %d", q, m*l)
	}
	if len(rom.Blocks) != m {
		t.Fatalf("blocks = %d, want %d", len(rom.Blocks), m)
	}
	for i, blk := range rom.Blocks {
		if blk.Order() != l {
			t.Errorf("block %d order %d, want %d", i, blk.Order(), l)
		}
		if blk.Input != i {
			t.Errorf("block %d input %d", i, blk.Input)
		}
	}
	// Sparsity claim: nnz(Gr) = m·l² exactly (each block dense l×l).
	_, gnnz, bnnz, _ := rom.NNZ()
	if gnnz > m*l*l {
		t.Errorf("Gr nnz %d exceeds m·l² = %d", gnnz, m*l*l)
	}
	if bnnz > m*l {
		t.Errorf("Br nnz %d exceeds m·l = %d", bnnz, m*l)
	}
	if st.BasisColumns != q {
		t.Errorf("stats basis columns %d, want %d", st.BasisColumns, q)
	}
	if st.PencilSolves == 0 || st.FactorNNZ == 0 {
		t.Error("stats not populated")
	}
}

// TestBDSMMomentMatching is the central correctness test: the ROM's first l
// moments must equal the original system's moments column by column (eq. 15).
func TestBDSMMomentMatching(t *testing.T) {
	sys := testGrid(t, 9, 8, 2, 6)
	s0 := DefaultS0
	l := 5
	rom, err := Reduce(sys, Options{S0: s0, Moments: l})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sys.Moments(s0, l)
	if err != nil {
		t.Fatal(err)
	}
	red, err := rom.ToDense().Moments(s0, l)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < l; k++ {
		scale := orig[k].MaxAbs()
		diff := orig[k].Sub(red[k]).MaxAbs()
		if diff > 1e-6*scale {
			t.Fatalf("moment %d: relative error %.3e", k, diff/scale)
		}
	}
	// The (l+1)-th moment must NOT match (order of approximation is exactly
	// l): guard against accidentally over-matching, which would indicate a
	// degenerate test system.
	origMore, err := sys.Moments(s0, l+1)
	if err != nil {
		t.Fatal(err)
	}
	redMore, err := rom.ToDense().Moments(s0, l+1)
	if err != nil {
		t.Fatal(err)
	}
	extra := origMore[l].Sub(redMore[l]).MaxAbs() / origMore[l].MaxAbs()
	if extra < 1e-9 {
		t.Logf("note: moment %d also matches (rel err %.3e); Krylov space may be exhausted", l, extra)
	}
}

func TestBDSMMatchesPRIMAAccuracy(t *testing.T) {
	// Fig. 5 claim: BDSM and PRIMA have comparable (near-identical) accuracy
	// at the same matched-moment count. Compare both ROMs' transfer matrices
	// against the exact H(s) at frequencies inside the matching band.
	sys := testGrid(t, 9, 8, 2, 5)
	s0 := DefaultS0
	l := 6
	bdsm, err := Reduce(sys, Options{S0: s0, Moments: l})
	if err != nil {
		t.Fatal(err)
	}
	// PRIMA equivalent: full block Arnoldi + congruence via krylov directly.
	op, err := krylov.NewOperator(sys, s0, krylov.OperatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := op.StartBlock()
	if err != nil {
		t.Fatal(err)
	}
	basis, err := krylov.BlockArnoldi(op, r, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	prima := krylov.Congruence(sys, basis)

	for _, w := range []float64{1e7, 1e8, 1e9} {
		s := complex(0, w)
		hx, err := sys.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := bdsm.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		hp, err := prima.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		scale := hx.MaxAbs()
		eb := maxAbsDiff(hx, hb) / scale
		ep := maxAbsDiff(hx, hp) / scale
		if eb > 1e-4 {
			t.Errorf("ω=%g: BDSM error %.3e too large", w, eb)
		}
		// Comparable accuracy: within two orders of magnitude of PRIMA
		// (both are tiny; exact ratios vary with conditioning).
		if eb > 100*ep && eb > 1e-8 {
			t.Errorf("ω=%g: BDSM error %.3e ≫ PRIMA error %.3e", w, eb, ep)
		}
	}
}

func maxAbsDiff(a, b *dense.Mat[complex128]) float64 {
	m := 0.0
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

func TestBDSMOrthoCostBelowPRIMA(t *testing.T) {
	// Cost claim (Sec. III-B): BDSM needs m·l(l-1)/2 long dot products,
	// PRIMA m·l(m·l-1)/2. With two-pass reorthogonalization both double, so
	// compare the measured ratio against the theoretical m·l(l-1)/2 vs
	// m·l(ml-1)/2 ratio within slack.
	sys := testGrid(t, 9, 8, 2, 6)
	l := 4
	var bdsmStats Stats
	if _, err := Reduce(sys, Options{Moments: l, Stats: &bdsmStats, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	op, err := krylov.NewOperator(sys, DefaultS0, krylov.OperatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := op.StartBlock()
	if err != nil {
		t.Fatal(err)
	}
	var primaOrtho dense.OrthoStats
	if _, err := krylov.BlockArnoldi(op, r, l, &primaOrtho); err != nil {
		t.Fatal(err)
	}
	_, m, _ := sys.Dims()
	wantBDSM := int64(2 * m * l * (l - 1) / 2)    // two MGS passes
	wantPRIMA := int64(2 * m * l * (m*l - 1) / 2) //
	if bdsmStats.Ortho.DotProducts != wantBDSM {
		t.Errorf("BDSM dot products = %d, want %d", bdsmStats.Ortho.DotProducts, wantBDSM)
	}
	if primaOrtho.DotProducts != wantPRIMA {
		t.Errorf("PRIMA dot products = %d, want %d", primaOrtho.DotProducts, wantPRIMA)
	}
	if bdsmStats.Ortho.DotProducts >= primaOrtho.DotProducts {
		t.Error("BDSM orthonormalization not cheaper than PRIMA")
	}
}

func TestBDSMParallelMatchesSerial(t *testing.T) {
	sys := testGrid(t, 9, 8, 2, 6)
	serial, err := Reduce(sys, Options{Moments: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Reduce(sys, Options{Moments: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 1e9)
	hs, err := serial.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := parallel.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(hs, hp); d > 1e-13*hs.MaxAbs() {
		t.Fatalf("parallel result differs: %.3e", d)
	}
}

func TestBDSMIterativeBackendMatchesLU(t *testing.T) {
	sys := testGrid(t, 7, 7, 1, 4)
	n, _, _ := sys.Dims()
	lu, err := Reduce(sys, Options{Moments: 3})
	if err != nil {
		t.Fatal(err)
	}
	it, err := Reduce(sys, Options{Moments: 3, Backend: krylov.BackendIterative,
		Iter: sparse.IterOptions{Tol: 1e-13, MaxIter: 30 * n}})
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 1e9)
	h1, err := lu.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := it.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(h1, h2) / h1.MaxAbs(); d > 1e-5 {
		t.Fatalf("iterative backend differs: rel %.3e", d)
	}
}

func TestBDSMMultipointImprovesWideband(t *testing.T) {
	sys := testGrid(t, 9, 8, 2, 5)
	single, err := Reduce(sys, Options{S0: 1e9, Moments: 3})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Reduce(sys, Options{Points: []float64{1e8, 1e10, 1e12}, Moments: 3})
	if err != nil {
		t.Fatal(err)
	}
	// At a frequency far from the single expansion point, the multi-point
	// ROM must be at least as accurate.
	s := complex(0, 3e11)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := single.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := multi.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	es := maxAbsDiff(hx, hs)
	em := maxAbsDiff(hx, hm)
	if em > es {
		t.Errorf("multi-point error %.3e worse than single-point %.3e at ω=3e11", em, es)
	}
	// Multi-point blocks are larger (l per point).
	q1, _, _ := single.Dims()
	q3, _, _ := multi.Dims()
	if q3 <= q1 {
		t.Errorf("multi-point ROM order %d not larger than single %d", q3, q1)
	}
}

func TestBDSMZeroColumnSkipped(t *testing.T) {
	// Build a system with a zero input column: BDSM must skip the block and
	// the remaining columns must still match moments.
	sys := testGrid(t, 7, 7, 1, 3)
	n, m, _ := sys.Dims()
	// Zero out column 1 of B.
	bc := sys.B.ToCSR().ToDense()
	newB := sparse.NewCOO[float64](n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if j != 1 && bc[i][j] != 0 {
				newB.Add(i, j, bc[i][j])
			}
		}
	}
	sys2, err := lti.NewSparseSystem(sys.C, sys.G, newB.ToCSR(), sys.L)
	if err != nil {
		t.Fatal(err)
	}
	rom, err := Reduce(sys2, Options{Moments: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rom.Blocks) != m-1 {
		t.Fatalf("blocks = %d, want %d (zero column skipped)", len(rom.Blocks), m-1)
	}
	h, err := rom.Eval(complex(0, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	_, _, p := rom.Dims()
	for i := 0; i < p; i++ {
		if h.At(i, 1) != 0 {
			t.Fatal("zero input column produced nonzero transfer")
		}
	}
}

func TestBDSMAllZeroBFails(t *testing.T) {
	sys := testGrid(t, 6, 6, 1, 2)
	n, m, _ := sys.Dims()
	sys2, err := lti.NewSparseSystem(sys.C, sys.G,
		sparse.NewCOO[float64](n, m).ToCSR(), sys.L)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce(sys2, Options{Moments: 3}); err == nil {
		t.Fatal("all-zero B accepted")
	}
}

// TestBDSMReusability demonstrates Table I's "reusable: yes": one ROM
// evaluated under two different excitation patterns agrees with the full
// model under both, with no rebuild.
func TestBDSMReusability(t *testing.T) {
	sys := testGrid(t, 9, 8, 2, 5)
	_, m, _ := sys.Dims()
	rom, err := Reduce(sys, Options{Moments: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 5e8)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := rom.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		u := make([]complex128, m)
		for j := range u {
			u[j] = complex(float64((trial+1)*(j+1)), 0) // two distinct patterns
		}
		yx := hx.MulVec(u)
		yr := hr.MulVec(u)
		for i := range yx {
			if cmplx.Abs(yx[i]-yr[i]) > 1e-4*(1+cmplx.Abs(yx[i])) {
				t.Fatalf("pattern %d output %d: %v vs %v", trial, i, yx[i], yr[i])
			}
		}
	}
}

func TestBDSMStreamingMemoryIndependentOfPorts(t *testing.T) {
	// PeakBasisBytes must not grow with m (workers and l fixed): the
	// scalability column of Table I.
	sys4 := testGrid(t, 9, 9, 1, 4)
	sys12 := testGrid(t, 9, 9, 1, 12)
	var st4, st12 Stats
	if _, err := Reduce(sys4, Options{Moments: 3, Workers: 2, Stats: &st4}); err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce(sys12, Options{Moments: 3, Workers: 2, Stats: &st12}); err != nil {
		t.Fatal(err)
	}
	if st12.PeakBasisBytes != st4.PeakBasisBytes {
		t.Errorf("peak basis memory grew with ports: %d vs %d", st12.PeakBasisBytes, st4.PeakBasisBytes)
	}
}

func TestBDSMInvalidInputs(t *testing.T) {
	sys := testGrid(t, 6, 6, 1, 2)
	if _, err := Reduce(sys, Options{Moments: -1}); err == nil {
		// Moments < 0 falls into defaults()? Moments=0 → default; negative
		// should reach BlockArnoldi's validation via the chain.
		t.Skip("negative moments handled by defaulting")
	}
}

func TestBDSMMomentsMatchPRIMAExactly(t *testing.T) {
	// Column-by-column: the BDSM ROM and PRIMA ROM must produce the same
	// first-l moments (both equal the original's). Checked via math.Abs on
	// each entry with a tight relative tolerance.
	sys := testGrid(t, 8, 7, 1, 4)
	s0, l := DefaultS0, 4
	bdsm, err := Reduce(sys, Options{S0: s0, Moments: l})
	if err != nil {
		t.Fatal(err)
	}
	mo, err := sys.Moments(s0, l)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := bdsm.ToDense().Moments(s0, l)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < l; k++ {
		scale := mo[k].MaxAbs()
		for i := range mo[k].Data {
			if math.Abs(mo[k].Data[i]-mb[k].Data[i]) > 1e-6*scale {
				t.Fatalf("moment %d entry %d: %g vs %g", k, i, mo[k].Data[i], mb[k].Data[i])
			}
		}
	}
}
