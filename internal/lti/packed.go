package lti

import "fmt"

// ModalPacked is a structure-of-arrays packing of a ModalSystem, built for
// batched evaluation. The AoS []ModalBlock layout is right for constructing
// and validating the modal form, but a batched kernel — many transfer-matrix
// entries × many frequencies, or one model at many s-points — wants the pole
// and residue data of each input column contiguous, so one pole-major pass
// streams straight through memory and the expensive per-(pole, frequency)
// complex reciprocal is computed once and shared by every entry reading that
// column.
//
// Per input column the packing holds the concatenated poles of every modal
// block driven by that input (in block order), the residues twice — pole-major
// (res[k·p+r], the layout EvalColumnsInto streams) and entry-major
// (resT[r·q+k], the layout SweepEntriesInto streams) — the block direct terms
// summed into one vector, and the indices of fallback (non-modal) blocks,
// which batched kernels still evaluate per frequency through a one-shot LU.
// The duplication costs 2× the residue bytes of the source modal form, which
// is a few kilobytes per model — nothing next to the ROM itself.
//
// A ModalPacked is immutable after construction and safe for concurrent use.
type ModalPacked struct {
	ms   *ModalSystem
	m, p int
	cols []packedColumn
	// fullyModal reports no column carries a fallback block: every batched
	// kernel call is then factorization-free.
	fullyModal bool
}

// packedColumn is the SoA modal data of one input column.
type packedColumn struct {
	poles []complex128 // q' concatenated finite poles, block order
	res   []complex128 // pole-major residues: res[k*p+r]
	resT  []complex128 // entry-major residues: resT[r*q'+k]
	d     []complex128 // summed direct term (length p), nil when absent
	// fallback indexes the source blocks on this column without a modal
	// form.
	fallback []int
}

// Pack builds the structure-of-arrays form of the modal system. The source
// system is shared, not copied; fallback blocks keep evaluating through it.
func (ms *ModalSystem) Pack() *ModalPacked {
	_, m, p := ms.Dims()
	mp := &ModalPacked{ms: ms, m: m, p: p, cols: make([]packedColumn, m), fullyModal: true}
	for j := 0; j < m; j++ {
		q := 0
		for i := range ms.Blocks {
			if mb := &ms.Blocks[i]; mb.Input == j && mb.Modal {
				q += len(mb.Poles)
			}
		}
		pc := &mp.cols[j]
		pc.poles = make([]complex128, 0, q)
		pc.res = make([]complex128, 0, q*p)
		for i := range ms.Blocks {
			mb := &ms.Blocks[i]
			if mb.Input != j {
				continue
			}
			if !mb.Modal {
				pc.fallback = append(pc.fallback, i)
				mp.fullyModal = false
				continue
			}
			pc.poles = append(pc.poles, mb.Poles...)
			for k := range mb.Poles {
				pc.res = append(pc.res, mb.R.Row(k)...)
			}
			if mb.D != nil {
				if pc.d == nil {
					pc.d = make([]complex128, p)
				}
				for r, dv := range mb.D {
					pc.d[r] += dv
				}
			}
		}
		pc.resT = make([]complex128, q*p)
		for k := 0; k < q; k++ {
			for r := 0; r < p; r++ {
				pc.resT[r*q+k] = pc.res[k*p+r]
			}
		}
	}
	return mp
}

// Dims returns (Σ block orders, M, P) of the source system.
func (mp *ModalPacked) Dims() (n, m, p int) { return mp.ms.Dims() }

// FullyModal reports whether every block of every column carries a modal
// form — batched kernels then perform zero factorizations.
func (mp *ModalPacked) FullyModal() bool { return mp.fullyModal }

// MemBytes estimates the memory retained by the packed data (the source
// system is shared, not counted).
func (mp *ModalPacked) MemBytes() int64 {
	var n int64
	for j := range mp.cols {
		pc := &mp.cols[j]
		n += 16 * int64(len(pc.poles)+len(pc.res)+len(pc.resT)+len(pc.d))
		n += 8 * int64(len(pc.fallback))
	}
	return n
}

// SweepEntriesInto evaluates H[row][col](jωₖ) for every requested (row, col)
// entry over one shared frequency grid, into dst laid out entry-major:
// dst[e·len(omegas)+k] is entry e at ωₖ. Entries are (row, col) pairs.
//
// The kernel makes one pole-major pass per column: each pole's reciprocal
// denominators 1/(jωₖ−λ) are computed once — the division is the expensive
// part of a residue evaluation — and reused by every entry reading that
// column, so e entries on one column cost one division pass plus e
// multiply-accumulate passes instead of e division passes. Fallback blocks
// pay one LU per frequency, shared across the entries of their column.
//
// Telemetry counts the work actually performed: each modal block contributes
// len(omegas) modal evals once per call no matter how many entries share it —
// the batching win made visible — and each fallback block len(omegas)
// factored evals.
//
//pgmor:noalloc
func (mp *ModalPacked) SweepEntriesInto(dst []complex128, entries [][2]int, omegas []float64) error {
	nw := len(omegas)
	if len(dst) != len(entries)*nw {
		return fmt.Errorf("lti: packed sweep dst length %d, want %d entries × %d freqs = %d",
			len(dst), len(entries), nw, len(entries)*nw)
	}
	for _, e := range entries {
		if e[0] < 0 || e[0] >= mp.p || e[1] < 0 || e[1] >= mp.m {
			return fmt.Errorf("lti: entry (%d,%d) out of range %d×%d", e[0], e[1], mp.p, mp.m)
		}
	}
	for i := range dst {
		dst[i] = 0
	}
	if nw == 0 || len(entries) == 0 {
		return nil
	}
	// Group entry indices by column so each column's pole data is walked
	// exactly once.
	byCol := make(map[int][]int, len(entries)) //pgmor:alloc per-call column grouping, O(entries); amortized over the whole batch
	for i, e := range entries {
		byCol[e[1]] = append(byCol[e[1]], i) //pgmor:alloc builds the column grouping above
	}
	recip := make([]complex128, nw) //pgmor:alloc one reciprocal row per call, O(omegas); amortized over the whole batch
	var colBuf []complex128         // lazily sized; only fallback blocks need it
	var modalEvals int64
	for col, idxs := range byCol {
		pc := &mp.cols[col]
		q := len(pc.poles)
		for k := 0; k < q; k++ {
			lam := pc.poles[k]
			for w, omega := range omegas {
				recip[w] = 1 / (complex(0, omega) - lam)
			}
			for _, e := range idxs {
				r := pc.resT[entries[e][0]*q+k]
				out := dst[e*nw : (e+1)*nw]
				for w := range out {
					out[w] += r * recip[w]
				}
			}
		}
		if pc.d != nil {
			for _, e := range idxs {
				dv := pc.d[entries[e][0]]
				out := dst[e*nw : (e+1)*nw]
				for w := range out {
					out[w] += dv
				}
			}
		}
		if modalBlocks := mp.modalBlocksOn(col); modalBlocks > 0 {
			modalEvals += int64(modalBlocks) * int64(nw)
		}
		for _, bi := range pc.fallback {
			if colBuf == nil {
				colBuf = make([]complex128, mp.p) //pgmor:alloc lazy fallback scratch; never taken on fully-modal systems
			}
			for w, omega := range omegas {
				for r := range colBuf {
					colBuf[r] = 0
				}
				//pgmor:alloc non-modal blocks fall back to one LU per frequency; cold by construction
				if err := mp.ms.fallbackColumn(colBuf, bi, complex(0, omega)); err != nil {
					return err
				}
				for _, e := range idxs {
					dst[e*nw+w] += colBuf[entries[e][0]]
				}
			}
		}
	}
	if modalEvals > 0 {
		ctrModalEvals.Add(modalEvals)
	}
	return nil
}

// modalBlocksOn counts the modal blocks driven by input col.
func (mp *ModalPacked) modalBlocksOn(col int) int {
	n := 0
	for i := range mp.ms.Blocks {
		if mb := &mp.ms.Blocks[i]; mb.Input == col && mb.Modal {
			n++
		}
	}
	return n
}

// EvalColumnsInto evaluates column col of H at every requested s-point into
// dst laid out point-major: dst[k·P+r] is output r at svals[k]. One
// pole-major pass streams each residue row once across all s-points, so the
// per-pole data is loaded O(1) times instead of O(len(svals)) times.
//
//pgmor:noalloc
func (mp *ModalPacked) EvalColumnsInto(dst []complex128, col int, svals []complex128) error {
	if col < 0 || col >= mp.m {
		return fmt.Errorf("lti: column %d out of range %d", col, mp.m)
	}
	if len(dst) != len(svals)*mp.p {
		return fmt.Errorf("lti: packed column-batch dst length %d, want %d points × %d outputs = %d",
			len(dst), len(svals), mp.p, len(svals)*mp.p)
	}
	for i := range dst {
		dst[i] = 0
	}
	if len(svals) == 0 {
		return nil
	}
	pc := &mp.cols[col]
	p := mp.p
	for k, lam := range pc.poles {
		row := pc.res[k*p : (k+1)*p]
		for si, s := range svals {
			c := 1 / (s - lam)
			out := dst[si*p : (si+1)*p]
			for r := range out {
				out[r] += c * row[r]
			}
		}
	}
	if pc.d != nil {
		for si := range svals {
			out := dst[si*p : (si+1)*p]
			for r, dv := range pc.d {
				out[r] += dv
			}
		}
	}
	if modalBlocks := mp.modalBlocksOn(col); modalBlocks > 0 {
		ctrModalEvals.Add(int64(modalBlocks) * int64(len(svals)))
	}
	for _, bi := range pc.fallback {
		for si, s := range svals {
			//pgmor:alloc non-modal blocks fall back to one LU per point; cold by construction
			if err := mp.ms.fallbackColumn(dst[si*p:(si+1)*p], bi, s); err != nil {
				return err
			}
		}
	}
	return nil
}
