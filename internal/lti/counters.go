package lti

import "sync/atomic"

// Package-wide evaluation telemetry. The counters are batched atomic adds on
// paths that each do at least O(l²) arithmetic, so the overhead is noise;
// they exist so benchmarks (cmd/pgbench -exp perf) and operators can see how
// much work the modal fast path removes — pencil factorizations performed,
// and evaluations served modally versus through LU factors.
//
// The unit of ModalEvals and FactoredEvals is one (block, frequency)
// evaluation, attributed to the path that actually served it. A partially
// modal model therefore splits a single column evaluation across both
// counters — the modal blocks count as modal evals, the LU-fallback blocks as
// factored evals — and the two always sum exactly to the number of block
// evaluations performed.
var (
	ctrFactorizations atomic.Int64
	ctrFactoredEvals  atomic.Int64
	ctrModalEvals     atomic.Int64
)

// EvalCounters is a snapshot of the package's evaluation telemetry.
type EvalCounters struct {
	// Factorizations counts block pencil LU factorizations (the O(l³)
	// step the modal form eliminates).
	Factorizations int64 `json:"factorizations"`
	// FactoredEvals counts per-(block, frequency) evaluations through LU
	// factors (cached or one-shot); ModalEvals counts per-(block, frequency)
	// evaluations through pole–residue forms. Each block is attributed to
	// the path that actually evaluated it, so the two sum exactly to the
	// block evaluations performed even on partially modal models.
	FactoredEvals int64 `json:"factored_evals"`
	ModalEvals    int64 `json:"modal_evals"`
}

// Counters returns the current telemetry snapshot.
func Counters() EvalCounters {
	return EvalCounters{
		Factorizations: ctrFactorizations.Load(),
		FactoredEvals:  ctrFactoredEvals.Load(),
		ModalEvals:     ctrModalEvals.Load(),
	}
}

// ResetCounters zeroes the telemetry, returning the snapshot from before the
// reset. Benchmark harnesses bracket timed sections with it.
func ResetCounters() EvalCounters {
	c := EvalCounters{
		Factorizations: ctrFactorizations.Swap(0),
		FactoredEvals:  ctrFactoredEvals.Swap(0),
		ModalEvals:     ctrModalEvals.Swap(0),
	}
	return c
}
