package lti

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

func TestBlockDiagPolesMatchAssembled(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bd := randomBlockDiag(rng, 3, 2, 3)
	pb, err := bd.Poles()
	if err != nil {
		t.Fatal(err)
	}
	pd, err := bd.ToDense().Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(pb) != len(pd) {
		t.Fatalf("pole counts differ: %d vs %d", len(pb), len(pd))
	}
	sortPoles(pd)
	for i := range pb {
		if d := pb[i] - pd[i]; math.Hypot(real(d), imag(d)) > 1e-7*(1+math.Hypot(real(pd[i]), imag(pd[i]))) {
			t.Fatalf("pole %d differs: %v vs %v", i, pb[i], pd[i])
		}
	}
}

func TestBlockDiagStable(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	bd := randomBlockDiag(rng, 2, 2, 2)
	ok, err := bd.Stable()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("random system happened to be unstable; stability covered below")
	}
	// Force instability in one block.
	bd.Blocks[0].G = dense.Eye[float64](2) // positive eigenvalues
	ok, err = bd.Stable()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unstable block not detected")
	}
}

func TestDCGainMatchesAnalytic(t *testing.T) {
	// Scalar RC: H(0) = r.
	r, c := 75.0, 1e-9
	sys := rcSystem(t, r, c)
	g, err := sys.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.At(0, 0)-r) > 1e-9*r {
		t.Fatalf("DC gain %g, want %g", g.At(0, 0), r)
	}
	// Block-diag ROM of the same system must agree.
	bd := &BlockDiagSystem{M: 1, P: 1}
	cm := dense.NewMat[float64](1, 1)
	cm.Set(0, 0, c)
	gm := dense.NewMat[float64](1, 1)
	gm.Set(0, 0, -1/r)
	lm := dense.NewMat[float64](1, 1)
	lm.Set(0, 0, 1)
	bd.Blocks = append(bd.Blocks, Block{C: cm, G: gm, B: []float64{1}, L: lm, Input: 0})
	gr, err := bd.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gr.At(0, 0)-r) > 1e-9*r {
		t.Fatalf("ROM DC gain %g, want %g", gr.At(0, 0), r)
	}
}
