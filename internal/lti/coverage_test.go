package lti

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestBlockDiagEvalColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	bd := randomBlockDiag(rng, 4, 3, 2)
	s := complex(0.1, 2.0)
	h, err := bd.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		col, err := bd.EvalColumn(s, j)
		if err != nil {
			t.Fatal(err)
		}
		for i := range col {
			if cmplx.Abs(col[i]-h.At(i, j)) > 1e-12*(1+cmplx.Abs(h.At(i, j))) {
				t.Fatalf("EvalColumn(%d)[%d] = %v, want %v", j, i, col[i], h.At(i, j))
			}
		}
	}
	// EvalEntry must route through the column evaluator.
	got, err := EvalEntry(bd, s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got-h.At(1, 2)) > 1e-12*(1+cmplx.Abs(h.At(1, 2))) {
		t.Fatalf("EvalEntry = %v, want %v", got, h.At(1, 2))
	}
}

func TestDenseSystemDims(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := randomBlockDiag(rng, 2, 3, 2).ToDense()
	n, m, p := d.Dims()
	if n != 4 || m != 2 || p != 3 {
		t.Fatalf("Dims = %d/%d/%d", n, m, p)
	}
}

func TestImpedanceViewNegatesTransfer(t *testing.T) {
	sys := rcSystem(t, 50, 1e-9)
	neg := sys.ImpedanceView()
	s := complex(0, 1e7)
	h1, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := neg.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h1.At(0, 0)+h2.At(0, 0)) > 1e-15 {
		t.Fatalf("ImpedanceView did not negate: %v vs %v", h1.At(0, 0), h2.At(0, 0))
	}
	// Original system untouched.
	h3, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if h3.At(0, 0) != h1.At(0, 0) {
		t.Fatal("ImpedanceView mutated the original system")
	}
}
