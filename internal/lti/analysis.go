package lti

import (
	"fmt"
	"sort"

	"repro/internal/dense"
)

// Poles returns the finite generalized eigenvalues of the descriptor pencil
// (G, C) of a dense ROM — its poles — computed as eigenvalues of C⁻¹G.
func (d *DenseSystem) Poles() ([]complex128, error) {
	f, err := dense.FactorLU(d.C)
	if err != nil {
		return nil, fmt.Errorf("lti: singular C; descriptor has impulsive modes: %w", err)
	}
	a, err := f.SolveMat(d.G)
	if err != nil {
		return nil, err
	}
	return dense.Eigenvalues(a)
}

// Poles returns all poles of a block-diagonal ROM by aggregating per-block
// eigenvalues — O(m·l³) instead of O(q³) on the assembled model, one more
// payoff of the structure.
func (bd *BlockDiagSystem) Poles() ([]complex128, error) {
	var poles []complex128
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		f, err := dense.FactorLU(blk.C)
		if err != nil {
			return nil, fmt.Errorf("lti: block %d has singular C: %w", i, err)
		}
		a, err := f.SolveMat(blk.G)
		if err != nil {
			return nil, err
		}
		vals, err := dense.Eigenvalues(a)
		if err != nil {
			return nil, fmt.Errorf("lti: block %d eigenvalues: %w", i, err)
		}
		poles = append(poles, vals...)
	}
	sortPoles(poles)
	return poles, nil
}

func sortPoles(p []complex128) {
	sort.Slice(p, func(i, j int) bool {
		if real(p[i]) != real(p[j]) {
			return real(p[i]) < real(p[j])
		}
		return imag(p[i]) < imag(p[j])
	})
}

// Stable reports whether every pole of the block-diagonal ROM lies in the
// open left half plane.
func (bd *BlockDiagSystem) Stable() (bool, error) {
	poles, err := bd.Poles()
	if err != nil {
		return false, err
	}
	for _, p := range poles {
		if real(p) >= 0 {
			return false, nil
		}
	}
	return true, nil
}

// DCGain returns H(0) = -L·G⁻¹·B of the sparse descriptor system — the
// static IR-drop sensitivity matrix of a power grid.
func (s *SparseSystem) DCGain() (*dense.Mat[float64], error) {
	h, err := s.Eval(0)
	if err != nil {
		return nil, err
	}
	return dense.Real(h), nil
}

// DCGain returns H(0) of the block-diagonal ROM.
func (bd *BlockDiagSystem) DCGain() (*dense.Mat[float64], error) {
	h, err := bd.Eval(0)
	if err != nil {
		return nil, err
	}
	return dense.Real(h), nil
}
