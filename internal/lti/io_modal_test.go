package lti

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dense"
)

const goldenModalROMPath = "testdata/modal_v2.rom"

// goldenModalSystem is a hand-written modal form over the golden ROM — the
// values are arbitrary, deliberately NOT produced by Modalize, so the wire
// format is pinned independently of eigensolver numerics. It covers the
// format's degrees of freedom: a general (complex-pole) block, a fallback
// block, and a symmetric block with a direct term.
func goldenModalSystem() *ModalSystem {
	bd := goldenBlockDiag()
	return &ModalSystem{
		BD: bd,
		Blocks: []ModalBlock{
			{
				Input: 0, Modal: true,
				Poles: []complex128{complex(-1.5, 2.25), complex(-1.5, -2.25)},
				R: &dense.Mat[complex128]{Rows: 2, Cols: 2, Data: []complex128{
					complex(0.5, -0.125), complex(1, 0.25),
					complex(0.5, 0.125), complex(1, -0.25),
				}},
			},
			{Input: 1}, // LU fallback
			{
				Input: 0, Modal: true, Sym: true,
				Poles: []complex128{complex(-0.75, 0)},
				R:     &dense.Mat[complex128]{Rows: 1, Cols: 2, Data: []complex128{complex(-0.3, 0), complex(-0.6, 0)}},
				D:     []complex128{complex(0.01, 0), complex(-0.02, 0)},
			},
		},
	}
}

func encodeGoldenModal(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModal(&buf, goldenModalSystem()); err != nil {
		t.Fatalf("SaveModal: %v", err)
	}
	return buf.Bytes()
}

// TestModalGoldenFile pins the modal wire format exactly like the system
// golden file pins the block format.
func TestModalGoldenFile(t *testing.T) {
	enc := encodeGoldenModal(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenModalROMPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenModalROMPath, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fixture, err := os.ReadFile(goldenModalROMPath)
	if err != nil {
		t.Fatalf("reading golden modal fixture (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(enc, fixture) {
		t.Fatalf("SaveModal output diverged from %s (%d vs %d bytes): the on-disk format changed; bump BlockDiagFormatVersion and regenerate with -update", goldenModalROMPath, len(enc), len(fixture))
	}
	bd, ms, err := LoadROM(bytes.NewReader(fixture))
	if err != nil {
		t.Fatalf("LoadROM(fixture): %v", err)
	}
	if !reflect.DeepEqual(bd, goldenBlockDiag()) {
		t.Fatalf("fixture decoded to a different system")
	}
	if !reflect.DeepEqual(ms, goldenModalSystem()) {
		t.Fatalf("fixture decoded to a different modal form:\n got %+v\nwant %+v", ms, goldenModalSystem())
	}
}

// TestModalRoundTripFromModalize round-trips a Modalize-produced form (the
// production path) and checks evaluation equivalence of the reloaded system.
func TestModalRoundTripFromModalize(t *testing.T) {
	ms, err := rcBlockDiag().Modalize()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModal(&buf, ms); err != nil {
		t.Fatal(err)
	}
	_, got, err := LoadROM(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("LoadROM dropped the modal section")
	}
	if !reflect.DeepEqual(got.Blocks, ms.Blocks) {
		t.Fatal("modal blocks changed across the round trip")
	}
}

// TestLoadROMWithoutModalSection: a SaveBlockDiag stream loads with a nil
// modal form.
func TestLoadROMWithoutModalSection(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveBlockDiag(&buf, goldenBlockDiag()); err != nil {
		t.Fatal(err)
	}
	bd, ms, err := LoadROM(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if bd == nil || ms != nil {
		t.Fatalf("LoadROM = (%v, %v), want (system, nil)", bd != nil, ms)
	}
}

// TestLoadModalBitFlips: one-bit corruptions of a modal stream must never
// load to a silently different ROM or modal form.
func TestLoadModalBitFlips(t *testing.T) {
	enc := encodeGoldenModal(t)
	wantBD, wantMS := goldenBlockDiag(), goldenModalSystem()
	for pos := 0; pos < len(enc); pos += 3 { // every 3rd byte keeps the test fast
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 1 << (pos % 8)
		bd, ms, err := func() (bd *BlockDiagSystem, ms *ModalSystem, err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at byte %d: LoadROM panicked: %v", pos, r)
				}
			}()
			return LoadROM(bytes.NewReader(mut))
		}()
		if err == nil && (!reflect.DeepEqual(bd, wantBD) || !reflect.DeepEqual(ms, wantMS)) {
			t.Fatalf("flip at byte %d loaded a silently different modal ROM", pos)
		}
	}
}

// goldenModalWire returns the golden modal stream in wire form with a valid
// checksum, ready for adversarial mutation.
func goldenModalWire(t *testing.T) *gobBlockDiag {
	t.Helper()
	ms := goldenModalSystem()
	g := goldenWire(t)
	g.Modal = nil
	for i := range ms.Blocks {
		g.Modal = append(g.Modal, toGobModal(&ms.Blocks[i]))
	}
	g.Checksum = 0
	g.Checksum = checksumBlockDiag(g)
	return g
}

// TestLoadModalBadShapes crafts checksum-valid streams whose modal sections
// are structurally inconsistent; every one must be rejected without panic.
func TestLoadModalBadShapes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*gobBlockDiag)
	}{
		{"modal count mismatch", func(g *gobBlockDiag) { g.Modal = g.Modal[:2] }},
		{"odd pole floats", func(g *gobBlockDiag) { g.Modal[0].Poles = g.Modal[0].Poles[:3] }},
		{"residue rows disagree with poles", func(g *gobBlockDiag) { g.Modal[0].R.Rows = 1; g.Modal[0].R.Data = g.Modal[0].R.Data[:4] }},
		{"odd residue width", func(g *gobBlockDiag) {
			g.Modal[0].R = gobMat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
		}},
		{"residue data short", func(g *gobBlockDiag) { g.Modal[0].R.Data = g.Modal[0].R.Data[:2] }},
		{"residue cols disagree with outputs", func(g *gobBlockDiag) {
			g.Modal[2].R = gobMat{Rows: 1, Cols: 6, Data: []float64{1, 2, 3, 4, 5, 6}}
		}},
		{"direct term wrong length", func(g *gobBlockDiag) { g.Modal[2].D = []float64{1, 2, 3, 4, 5, 6} }},
		{"fallback with data", func(g *gobBlockDiag) { g.Modal[1].Poles = []float64{1, 2} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadROM panicked: %v", r)
				}
			}()
			g := goldenModalWire(t)
			tc.mutate(g)
			g.Checksum = 0
			g.Checksum = checksumBlockDiag(g)
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(g); err != nil {
				t.Fatal(err)
			}
			if _, ms, err := LoadROM(bytes.NewReader(buf.Bytes())); err == nil {
				t.Fatalf("crafted modal stream loaded: %+v", ms)
			}
		})
	}
}

// TestChecksumCoversModalSection: mutating any modal payload changes the
// digest.
func TestChecksumCoversModalSection(t *testing.T) {
	base := goldenModalWire(t).Checksum
	mutations := []struct {
		name   string
		mutate func(*gobBlockDiag)
	}{
		{"pole value", func(g *gobBlockDiag) { g.Modal[0].Poles[0]++ }},
		{"residue value", func(g *gobBlockDiag) { g.Modal[0].R.Data[0]++ }},
		{"direct value", func(g *gobBlockDiag) { g.Modal[2].D[1]++ }},
		{"sym flag", func(g *gobBlockDiag) { g.Modal[2].Sym = false }},
		{"modal flag", func(g *gobBlockDiag) { g.Modal[1].Modal = true }},
		{"drop section", func(g *gobBlockDiag) { g.Modal = nil }},
	}
	for _, tc := range mutations {
		g := goldenModalWire(t)
		g.Checksum = 0
		tc.mutate(g)
		if checksumBlockDiag(g) == base {
			t.Errorf("%s: mutation did not change the checksum", tc.name)
		}
	}
}

// TestSaveModalRejectsInvalid keeps the save path honest.
func TestSaveModalRejectsInvalid(t *testing.T) {
	ms := goldenModalSystem()
	ms.Blocks[0].R = &dense.Mat[complex128]{Rows: 1, Cols: 2, Data: make([]complex128, 2)} // rows ≠ poles
	err := SaveModal(&bytes.Buffer{}, ms)
	if err == nil || !strings.Contains(err.Error(), "residue") {
		t.Fatalf("err = %v, want residue inconsistency", err)
	}
}
