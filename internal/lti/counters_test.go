package lti

import (
	"testing"
)

// demoteBlock strips block i's modal form, forcing every evaluation that
// touches it onto the LU fallback path — the partially-modal shape the
// telemetry attribution bug misbooked (modal_evals inflated, factored_evals
// undercounted).
func demoteBlock(ms *ModalSystem, i int) {
	ms.Blocks[i] = ModalBlock{Input: ms.BD.Blocks[i].Input}
}

// TestCountersFallbackAttribution pins the per-(block, frequency) counter
// semantics on a partially modal system: one modal block on input 0, one
// forced-fallback block on input 1. Every path — column eval, full-matrix
// eval, entry sweep — must attribute each block to the path that actually
// evaluated it, and modal + factored must sum exactly to the block
// evaluations performed.
func TestCountersFallbackAttribution(t *testing.T) {
	bd := rcBlockDiag()
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatal(err)
	}
	demoteBlock(ms, 1)
	if err := ms.Validate(); err != nil {
		t.Fatalf("demoted system invalid: %v", err)
	}
	if modal, fb := ms.ModalCount(); modal != 1 || fb != 1 {
		t.Fatalf("ModalCount = (%d, %d), want (1, 1)", modal, fb)
	}

	s := complex(0, 3)
	dst := make([]complex128, bd.P)

	// Column 0 is covered by the modal block alone.
	ResetCounters()
	if err := ms.EvalColumnInto(dst, s, 0); err != nil {
		t.Fatal(err)
	}
	c := Counters()
	if c.ModalEvals != 1 || c.FactoredEvals != 0 {
		t.Errorf("modal column: (modal, factored) = (%d, %d), want (1, 0)", c.ModalEvals, c.FactoredEvals)
	}

	// Column 1 is served entirely by the LU fallback: it must count as a
	// factored eval, not a modal one.
	ResetCounters()
	if err := ms.EvalColumnInto(dst, s, 1); err != nil {
		t.Fatal(err)
	}
	c = Counters()
	if c.ModalEvals != 0 || c.FactoredEvals != 1 {
		t.Errorf("fallback column: (modal, factored) = (%d, %d), want (0, 1)", c.ModalEvals, c.FactoredEvals)
	}
	if c.Factorizations != 1 {
		t.Errorf("fallback column: Factorizations = %d, want 1", c.Factorizations)
	}

	// A full-matrix eval splits: one block modal, one factored.
	ResetCounters()
	if _, err := ms.Eval(s); err != nil {
		t.Fatal(err)
	}
	c = Counters()
	if c.ModalEvals != 1 || c.FactoredEvals != 1 {
		t.Errorf("full eval: (modal, factored) = (%d, %d), want (1, 1)", c.ModalEvals, c.FactoredEvals)
	}
	if got, want := c.ModalEvals+c.FactoredEvals, int64(len(bd.Blocks)); got != want {
		t.Errorf("full eval: counters sum to %d block evaluations, want %d", got, want)
	}

	// Sweeps count per (block, frequency): a fallback-column sweep is all
	// factored, a modal-column sweep all modal — never both, never inflated.
	omegas := logOmegas(1e-2, 1e2, 7)
	sw := make([]complex128, len(omegas))
	ResetCounters()
	if err := ms.SweepEntryInto(sw, 0, 1, omegas); err != nil {
		t.Fatal(err)
	}
	c = Counters()
	if c.ModalEvals != 0 || c.FactoredEvals != int64(len(omegas)) {
		t.Errorf("fallback sweep: (modal, factored) = (%d, %d), want (0, %d)", c.ModalEvals, c.FactoredEvals, len(omegas))
	}
	ResetCounters()
	if err := ms.SweepEntryInto(sw, 0, 0, omegas); err != nil {
		t.Fatal(err)
	}
	c = Counters()
	if c.ModalEvals != int64(len(omegas)) || c.FactoredEvals != 0 {
		t.Errorf("modal sweep: (modal, factored) = (%d, %d), want (%d, 0)", c.ModalEvals, c.FactoredEvals, len(omegas))
	}

	// The demoted system must still evaluate exactly like the source.
	checkModalAgrees(t, bd, ms, logOmegas(1e-2, 1e2, 9), 1e-10)
}

// TestCountersFactoredColumnPerBlock pins the factored-context counters to
// the same per-block unit: a column evaluation counts the blocks it actually
// solved, a full-matrix evaluation counts every factored block.
func TestCountersFactoredColumnPerBlock(t *testing.T) {
	bd := rcBlockDiag()
	s := complex(0, 2)
	f, err := bd.Factorize(s)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, bd.P)
	scratch := make([]complex128, f.ScratchLen())

	ResetCounters()
	if err := f.EvalColumnInto(dst, scratch, 0); err != nil {
		t.Fatal(err)
	}
	if c := Counters(); c.FactoredEvals != 1 {
		t.Errorf("column 0 evaluates one block, FactoredEvals = %d", c.FactoredEvals)
	}

	ResetCounters()
	if _, err := f.Eval(); err != nil {
		t.Fatal(err)
	}
	if c := Counters(); c.FactoredEvals != int64(len(bd.Blocks)) {
		t.Errorf("full eval evaluates %d blocks, FactoredEvals = %d", len(bd.Blocks), c.FactoredEvals)
	}
}
