package lti

import (
	"testing"

	"repro/internal/dense"
)

// modalFixture builds the fully-modal RC system every alloc test shares.
func modalFixture(t *testing.T) *ModalSystem {
	t.Helper()
	ms, err := rcBlockDiag().Modalize()
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// TestModalEvalAllocBound pins Eval's deliberate allocations: the result
// matrix and one column of scratch, a fixed count that must not scale with
// the number of blocks or frequencies evaluated.
//
//pgmor:alloctest ModalSystem.Eval
func TestModalEvalAllocBound(t *testing.T) {
	ms := modalFixture(t)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ms.Eval(complex(0, 3)); err != nil {
			t.Fatal(err)
		}
	})
	// NewMat (header + backing) plus the scratch column; one of slack for
	// runtime noise.
	if allocs > 4 {
		t.Fatalf("Eval allocates %.1f times per call, want the fixed result+scratch count ≤ 4", allocs)
	}
}

// TestModalSweepEntryIntoAllocs: the vectorized per-entry sweep is
// allocation-free on a fully-modal system (the lazy scratch is only for
// fallback blocks).
//
//pgmor:alloctest ModalSystem.SweepEntryInto
func TestModalSweepEntryIntoAllocs(t *testing.T) {
	ms := modalFixture(t)
	omegas := []float64{0.1, 1, 10, 100}
	dst := make([]complex128, len(omegas))
	allocs := testing.AllocsPerRun(100, func() {
		if err := ms.SweepEntryInto(dst, 0, 0, omegas); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SweepEntryInto allocates %.1f times per call, want 0", allocs)
	}
}

// TestPackedSweepEntriesIntoAllocBound: the batched sweep's deliberate
// allocations (column grouping map, reciprocal row) are O(columns), never
// O(entries × frequencies) — the same bound must hold as the grid grows.
//
//pgmor:alloctest ModalPacked.SweepEntriesInto
func TestPackedSweepEntriesIntoAllocBound(t *testing.T) {
	ms := modalFixture(t)
	mp := ms.Pack()
	_, m, p := ms.Dims()
	var entries [][2]int
	for r := 0; r < p; r++ {
		for c := 0; c < m; c++ {
			entries = append(entries, [2]int{r, c})
		}
	}
	for _, nw := range []int{8, 128} {
		omegas := make([]float64, nw)
		for i := range omegas {
			omegas[i] = 0.1 * float64(i+1)
		}
		dst := make([]complex128, len(entries)*nw)
		allocs := testing.AllocsPerRun(50, func() {
			if err := mp.SweepEntriesInto(dst, entries, omegas); err != nil {
				t.Fatal(err)
			}
		})
		// Map + per-column index slices + reciprocal row, independent of
		// the frequency count.
		if allocs > 10 {
			t.Fatalf("SweepEntriesInto(%d freqs) allocates %.1f times per call, want O(columns) ≤ 10", nw, allocs)
		}
	}
}

// TestPackedEvalColumnsIntoAllocs: the point-batched column kernel is
// allocation-free on a fully-modal system.
//
//pgmor:alloctest ModalPacked.EvalColumnsInto
func TestPackedEvalColumnsIntoAllocs(t *testing.T) {
	ms := modalFixture(t)
	mp := ms.Pack()
	_, _, p := ms.Dims()
	svals := []complex128{complex(0, 0.5), complex(0, 5), complex(0, 50)}
	dst := make([]complex128, len(svals)*p)
	allocs := testing.AllocsPerRun(100, func() {
		if err := mp.EvalColumnsInto(dst, 0, svals); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalColumnsInto allocates %.1f times per call, want 0", allocs)
	}
}

// TestFactoredEvalIntoAllocs: the full-matrix factored evaluation with
// caller-provided storage is allocation-free.
//
//pgmor:alloctest BlockDiagFactors.EvalInto
//pgmor:alloctest blockFactor.addMatColumn
func TestFactoredEvalIntoAllocs(t *testing.T) {
	bd := rcBlockDiag()
	f, err := bd.Factorize(complex(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	h := dense.NewMat[complex128](bd.P, bd.M)
	scratch := make([]complex128, f.ScratchLen())
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.EvalInto(h, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalInto allocates %.1f times per call, want 0", allocs)
	}
}
