package lti

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// TestSplittingAdditivityProperty verifies eq. (7) of the paper on random
// systems: H(s) = Σᵢ Hᵢ(s), where Hᵢ is the transfer matrix of the splitted
// system Σᵢ = (C, G, Bᵢ, L) whose input matrix keeps only column i of B.
// This is the identity that makes column-by-column moment matching exact.
func TestSplittingAdditivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 3+rng.Intn(8), 1+rng.Intn(4), 1+rng.Intn(3)
		sys := randomStableSparse(rng, n, m, p)
		s := complex(rng.NormFloat64(), cmplxFreq(rng))

		h, err := sys.Eval(s)
		if err != nil {
			return false
		}
		// Sum of splitted-system transfer matrices.
		bcsr := sys.B.ToCSR()
		sum := make([]complex128, p*m)
		for i := 0; i < m; i++ {
			bi := sparse.NewCOO[float64](n, m)
			for r := 0; r < n; r++ {
				v := bcsr.At(r, i)
				if v != 0 {
					bi.Add(r, i, v)
				}
			}
			split, err := NewSparseSystem(sys.C, sys.G, bi.ToCSR(), sys.L)
			if err != nil {
				return false
			}
			hi, err := split.Eval(s)
			if err != nil {
				return false
			}
			// Hᵢ must be zero outside column i.
			for r := 0; r < p; r++ {
				for c := 0; c < m; c++ {
					if c != i && hi.At(r, c) != 0 {
						return false
					}
					sum[r*m+c] += hi.At(r, c)
				}
			}
		}
		for k, v := range h.Data {
			if cmplx.Abs(v-sum[k]) > 1e-9*(1+cmplx.Abs(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func cmplxFreq(rng *rand.Rand) float64 {
	return 1e6 * (1 + 9*rng.Float64())
}
