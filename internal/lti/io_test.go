package lti

import (
	"bytes"
	"encoding/gob"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dense"
)

var updateGolden = flag.Bool("update", false, "rewrite golden ROM fixtures under testdata/")

// goldenBlockDiag is a small, fully deterministic ROM covering the format's
// degrees of freedom: blocks of different orders, multiple blocks on one
// input, irrational values (exact float64 bit patterns), and zeros.
func goldenBlockDiag() *BlockDiagSystem {
	return &BlockDiagSystem{
		M: 2,
		P: 2,
		Blocks: []Block{
			{
				C:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{1.5, 0.25, 0, 2}},
				G:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{1, -0.5, 0.125, 3}},
				B:     []float64{1, -2},
				L:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{0.5, 1, -1, 0.25}},
				Input: 0,
			},
			{
				C:     &dense.Mat[float64]{Rows: 3, Cols: 3, Data: []float64{math.Pi, 0, 0, 0, math.Sqrt2, 1e-12, 0, -1e-12, math.E}},
				G:     &dense.Mat[float64]{Rows: 3, Cols: 3, Data: []float64{2, 1, 0, 1, 2, 1, 0, 1, 2}},
				B:     []float64{1e9, -1e-9, 0},
				L:     &dense.Mat[float64]{Rows: 2, Cols: 3, Data: []float64{1, 0, -1, 0.5, 0.5, 0.5}},
				Input: 1,
			},
			{
				C:     &dense.Mat[float64]{Rows: 1, Cols: 1, Data: []float64{1}},
				G:     &dense.Mat[float64]{Rows: 1, Cols: 1, Data: []float64{0.75}},
				B:     []float64{-3},
				L:     &dense.Mat[float64]{Rows: 2, Cols: 1, Data: []float64{0.1, 0.2}},
				Input: 0,
			},
		},
	}
}

func encodeGolden(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveBlockDiag(&buf, goldenBlockDiag()); err != nil {
		t.Fatalf("SaveBlockDiag: %v", err)
	}
	return buf.Bytes()
}

const (
	goldenROMPath = "testdata/blockdiag_v2.rom"
	// goldenV1ROMPath is the format-1 fixture kept from before the modal
	// section existed; current loaders must reject it by version, cleanly.
	goldenV1ROMPath = "testdata/blockdiag_v1.rom"
)

// TestBlockDiagGoldenFile pins the serialized format: the committed fixture
// must decode to exactly the in-code golden ROM, and today's encoder must
// reproduce the fixture byte for byte. A format change that silently breaks
// previously written stores fails here instead of corrupting warm restarts.
func TestBlockDiagGoldenFile(t *testing.T) {
	enc := encodeGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenROMPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenROMPath, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fixture, err := os.ReadFile(goldenROMPath)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(enc, fixture) {
		t.Fatalf("SaveBlockDiag output diverged from %s (%d vs %d bytes): the on-disk format changed; bump BlockDiagFormatVersion and regenerate with -update", goldenROMPath, len(enc), len(fixture))
	}
	got, err := LoadBlockDiag(bytes.NewReader(fixture))
	if err != nil {
		t.Fatalf("LoadBlockDiag(fixture): %v", err)
	}
	if !reflect.DeepEqual(got, goldenBlockDiag()) {
		t.Fatalf("fixture decoded to a different ROM:\n got %+v\nwant %+v", got, goldenBlockDiag())
	}
}

// TestLoadBlockDiagTruncated feeds prefixes of a valid stream: every
// truncation must fail cleanly.
func TestLoadBlockDiagTruncated(t *testing.T) {
	enc := encodeGolden(t)
	for _, n := range []int{0, 1, 7, len(enc) / 4, len(enc) / 2, len(enc) - 1} {
		if _, err := LoadBlockDiag(bytes.NewReader(enc[:n])); err == nil {
			t.Errorf("LoadBlockDiag of %d/%d-byte prefix succeeded", n, len(enc))
		}
	}
}

// TestLoadBlockDiagBitFlips flips one bit at every byte position of a valid
// stream. Each corrupted stream must either fail to load or (if the flip
// landed on redundant encoding) load to exactly the original ROM — a
// silently wrong ROM is the one unacceptable outcome.
func TestLoadBlockDiagBitFlips(t *testing.T) {
	enc := encodeGolden(t)
	want := goldenBlockDiag()
	for pos := range enc {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 1 << (pos % 8)
		got, err := func() (bd *BlockDiagSystem, err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at byte %d: LoadBlockDiag panicked: %v", pos, r)
				}
			}()
			return LoadBlockDiag(bytes.NewReader(mut))
		}()
		if err == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("flip at byte %d loaded a silently different ROM", pos)
		}
	}
}

// encodeWire gob-encodes a raw wire struct, bypassing SaveBlockDiag's
// validation, to craft adversarial streams.
func encodeWire(t *testing.T, g *gobBlockDiag) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		t.Fatalf("encoding crafted stream: %v", err)
	}
	return buf.Bytes()
}

// goldenWire returns the golden ROM in wire form with a correct checksum,
// ready to be mutated by adversarial tests.
func goldenWire(t *testing.T) *gobBlockDiag {
	t.Helper()
	bd := goldenBlockDiag()
	g := &gobBlockDiag{Version: BlockDiagFormatVersion, M: bd.M, P: bd.P}
	for i := range bd.Blocks {
		b := &bd.Blocks[i]
		g.Blocks = append(g.Blocks, gobBlock{
			C: toGobMat(b.C), G: toGobMat(b.G), L: toGobMat(b.L),
			B: b.B, Input: b.Input,
		})
	}
	g.Checksum = checksumBlockDiag(g)
	return g
}

// TestLoadBlockDiagV1Rejected pins the migration story: a store written by a
// format-1 binary is rejected by version (and then rebuilt by the caller),
// never half-decoded.
func TestLoadBlockDiagV1Rejected(t *testing.T) {
	fixture, err := os.ReadFile(goldenV1ROMPath)
	if err != nil {
		t.Fatalf("reading v1 fixture: %v", err)
	}
	_, err = LoadBlockDiag(bytes.NewReader(fixture))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("loading a v1 stream: err = %v, want version mismatch", err)
	}
}

func TestLoadBlockDiagWrongVersion(t *testing.T) {
	for _, version := range []int{0, 1, 99, -1} {
		g := goldenWire(t)
		g.Version = version
		g.Checksum = 0
		g.Checksum = checksumBlockDiag(g)
		_, err := LoadBlockDiag(bytes.NewReader(encodeWire(t, g)))
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("version %d: err = %v, want version mismatch", version, err)
		}
	}
}

func TestLoadBlockDiagChecksumMismatch(t *testing.T) {
	g := goldenWire(t)
	g.Blocks[0].G.Data[1] = 12345 // corrupt content without refreshing the checksum
	_, err := LoadBlockDiag(bytes.NewReader(encodeWire(t, g)))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

// TestLoadBlockDiagBadDimensions crafts streams with valid checksums but
// dimensionally inconsistent blocks; all must be rejected without panicking.
func TestLoadBlockDiagBadDimensions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*gobBlockDiag)
	}{
		{"short matrix data", func(g *gobBlockDiag) { g.Blocks[0].C.Data = g.Blocks[0].C.Data[:2] }},
		{"negative rows", func(g *gobBlockDiag) { g.Blocks[0].C.Rows = -2 }},
		{"non-square C", func(g *gobBlockDiag) { g.Blocks[0].C.Rows, g.Blocks[0].C.Cols = 1, 4 }},
		{"G shape mismatch", func(g *gobBlockDiag) { g.Blocks[1].G = gobMat{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}} }},
		{"B length mismatch", func(g *gobBlockDiag) { g.Blocks[0].B = []float64{1} }},
		{"L row mismatch", func(g *gobBlockDiag) { g.Blocks[2].L = gobMat{Rows: 3, Cols: 1, Data: []float64{1, 2, 3}} }},
		{"input out of range", func(g *gobBlockDiag) { g.Blocks[1].Input = 7 }},
		{"negative input", func(g *gobBlockDiag) { g.Blocks[1].Input = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadBlockDiag panicked: %v", r)
				}
			}()
			g := goldenWire(t)
			tc.mutate(g)
			g.Checksum = 0
			g.Checksum = checksumBlockDiag(g)
			bd, err := LoadBlockDiag(bytes.NewReader(encodeWire(t, g)))
			if err == nil {
				t.Fatalf("crafted stream loaded: %+v", bd)
			}
		})
	}
}

// TestSaveBlockDiagRejectsInvalid keeps the save path honest too: an
// in-memory ROM that fails validation must not reach disk.
func TestSaveBlockDiagRejectsInvalid(t *testing.T) {
	bd := goldenBlockDiag()
	bd.Blocks[0].Input = 9
	if err := SaveBlockDiag(&bytes.Buffer{}, bd); err == nil {
		t.Fatal("saved a ROM with an out-of-range input index")
	}
}

// TestChecksumCoversEveryField documents what the digest protects: any
// change to dims, inputs, or values changes the checksum.
func TestChecksumCoversEveryField(t *testing.T) {
	base := checksumBlockDiag(goldenWire(t))
	mutations := []func(*gobBlockDiag){
		func(g *gobBlockDiag) { g.M = 3 },
		func(g *gobBlockDiag) { g.P = 3 },
		func(g *gobBlockDiag) { g.Blocks = g.Blocks[:2] },
		func(g *gobBlockDiag) { g.Blocks[0].Input = 1 },
		func(g *gobBlockDiag) { g.Blocks[0].C.Data[0] = math.Nextafter(g.Blocks[0].C.Data[0], 2) },
		func(g *gobBlockDiag) { g.Blocks[1].B[2] = math.Copysign(0, -1) }, // -0 vs +0: distinct bits
		func(g *gobBlockDiag) { g.Blocks[2].L.Rows, g.Blocks[2].L.Cols = 1, 2 },
	}
	for i, mutate := range mutations {
		g := goldenWire(t)
		g.Checksum = 0
		mutate(g)
		if checksumBlockDiag(g) == base {
			t.Errorf("mutation %d did not change the checksum", i)
		}
	}
}
