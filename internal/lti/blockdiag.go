package lti

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Block is one diagonal block of a BDSM reduced-order model: the size-l
// reduction of the i-th splitted system Σᵢ (eq. 11 of the paper). Its input
// matrix has a single nonzero column (the Input-th), stored as the vector B.
type Block struct {
	C *dense.Mat[float64] // l×l
	G *dense.Mat[float64] // l×l
	B []float64           // length l: (V⁽ⁱ⁾)ᵀ bᵢ
	L *dense.Mat[float64] // p×l: L·V⁽ⁱ⁾
	// Input is the index i of the input port driving this block.
	Input int
}

// Order returns the block size l.
func (b *Block) Order() int { return b.C.Rows }

// BlockDiagSystem is the block-diagonal structured ROM produced by BDSM
// (eq. 14): Cr = blkdiag(C₁ᵣ…C_mᵣ), Gr = blkdiag(G₁ᵣ…G_mᵣ), Br with one
// nonzero column per block, Lr the horizontal concatenation of the L·V⁽ⁱ⁾.
// Its transfer matrix is Hr(s) = Σᵢ Hᵢᵣ(s), summed column-wise (eq. 15).
type BlockDiagSystem struct {
	Blocks []Block
	// M and P are the input and output counts of the original system.
	M, P int
}

// Dims returns (Σ block orders, M, P).
func (bd *BlockDiagSystem) Dims() (n, m, p int) {
	for i := range bd.Blocks {
		n += bd.Blocks[i].Order()
	}
	return n, bd.M, bd.P
}

// Validate checks internal consistency.
func (bd *BlockDiagSystem) Validate() error {
	for i := range bd.Blocks {
		b := &bd.Blocks[i]
		l := b.Order()
		if b.C.Cols != l || b.G.Rows != l || b.G.Cols != l {
			return fmt.Errorf("lti: block %d: inconsistent C/G sizes", i)
		}
		if len(b.B) != l {
			return fmt.Errorf("lti: block %d: B length %d, want %d", i, len(b.B), l)
		}
		if b.L.Rows != bd.P || b.L.Cols != l {
			return fmt.Errorf("lti: block %d: L is %d×%d, want %d×%d", i, b.L.Rows, b.L.Cols, bd.P, l)
		}
		if b.Input < 0 || b.Input >= bd.M {
			return fmt.Errorf("lti: block %d: input index %d out of range %d", i, b.Input, bd.M)
		}
	}
	return nil
}

// Eval computes Hr(s) block by block: column Input of Hr receives
// Lᵢ (sCᵢ - Gᵢ)⁻¹ bᵢ. Each block is a small l×l solve, so the total cost is
// O(m·l³) — the paper's headline simulation speedup over the O(m³l³) dense
// ROM (Sec. III-B).
func (bd *BlockDiagSystem) Eval(s complex128) (*dense.Mat[complex128], error) {
	h := dense.NewMat[complex128](bd.P, bd.M)
	for i := range bd.Blocks {
		col, err := bd.evalBlock(&bd.Blocks[i], s)
		if err != nil {
			return nil, err
		}
		for r := 0; r < bd.P; r++ {
			h.Set(r, bd.Blocks[i].Input, h.At(r, bd.Blocks[i].Input)+col[r])
		}
	}
	return h, nil
}

// EvalColumn evaluates one column of Hr(s), touching only the blocks driven
// by input j (normally exactly one).
func (bd *BlockDiagSystem) EvalColumn(s complex128, j int) ([]complex128, error) {
	col := make([]complex128, bd.P)
	for i := range bd.Blocks {
		if bd.Blocks[i].Input != j {
			continue
		}
		c, err := bd.evalBlock(&bd.Blocks[i], s)
		if err != nil {
			return nil, err
		}
		for r := range col {
			col[r] += c[r]
		}
	}
	return col, nil
}

func (bd *BlockDiagSystem) evalBlock(b *Block, s complex128) ([]complex128, error) {
	l := b.Order()
	pencil := dense.ToComplex(b.C).Scale(s).Sub(dense.ToComplex(b.G))
	f, err := dense.FactorLU(pencil)
	if err != nil {
		return nil, fmt.Errorf("lti: block pencil singular at s=%v: %w", s, err)
	}
	x := make([]complex128, l)
	for k := 0; k < l; k++ {
		x[k] = complex(b.B[k], 0)
	}
	if err := f.Solve(x, x); err != nil {
		return nil, err
	}
	return dense.ToComplex(b.L).MulVec(x), nil
}

// ToDense assembles the explicit block-diagonal matrices of eq. (14) into a
// DenseSystem. Used for structure inspection (Fig. 4) and cross-validation;
// simulation should stay on the block form.
func (bd *BlockDiagSystem) ToDense() *DenseSystem {
	q, m, p := bd.Dims()
	c := dense.NewMat[float64](q, q)
	g := dense.NewMat[float64](q, q)
	bmat := dense.NewMat[float64](q, m)
	lmat := dense.NewMat[float64](p, q)
	off := 0
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		l := blk.Order()
		for r := 0; r < l; r++ {
			for cc := 0; cc < l; cc++ {
				c.Set(off+r, off+cc, blk.C.At(r, cc))
				g.Set(off+r, off+cc, blk.G.At(r, cc))
			}
			bmat.Set(off+r, blk.Input, blk.B[r])
		}
		for r := 0; r < p; r++ {
			for cc := 0; cc < l; cc++ {
				lmat.Set(r, off+cc, blk.L.At(r, cc))
			}
		}
		off += l
	}
	return &DenseSystem{C: c, G: g, B: bmat, L: lmat}
}

// NNZ returns the nonzero counts of the assembled Cr, Gr, Br, Lr without
// materializing them: the paper's storage argument is m·l² nonzeros versus
// O(m²l²) for a dense ROM.
func (bd *BlockDiagSystem) NNZ() (c, g, b, l int) {
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		c += blk.C.NNZ()
		g += blk.G.NNZ()
		for _, v := range blk.B {
			if v != 0 {
				b++
			}
		}
		l += blk.L.NNZ()
	}
	return c, g, b, l
}

// ApplyInput computes dst = Br·u over the stacked block states.
func (bd *BlockDiagSystem) ApplyInput(dst, u []float64) {
	q, m, _ := bd.Dims()
	if len(dst) != q || len(u) != m {
		panic("lti: BlockDiag ApplyInput dimension mismatch")
	}
	off := 0
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		ui := u[blk.Input]
		for r, v := range blk.B {
			dst[off+r] = v * ui
		}
		off += blk.Order()
	}
}

// ApplyOutput computes y = Lr·x over the stacked block states.
func (bd *BlockDiagSystem) ApplyOutput(x []float64) []float64 {
	y := make([]float64, bd.P)
	off := 0
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		l := blk.Order()
		for r := 0; r < bd.P; r++ {
			y[r] += sparse.Dot(blk.L.Row(r), x[off:off+l])
		}
		off += l
	}
	return y
}
