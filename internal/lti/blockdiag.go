package lti

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Block is one diagonal block of a BDSM reduced-order model: the size-l
// reduction of the i-th splitted system Σᵢ (eq. 11 of the paper). Its input
// matrix has a single nonzero column (the Input-th), stored as the vector B.
type Block struct {
	C *dense.Mat[float64] // l×l
	G *dense.Mat[float64] // l×l
	B []float64           // length l: (V⁽ⁱ⁾)ᵀ bᵢ
	L *dense.Mat[float64] // p×l: L·V⁽ⁱ⁾
	// Input is the index i of the input port driving this block.
	Input int
}

// Order returns the block size l.
func (b *Block) Order() int { return b.C.Rows }

// BlockDiagSystem is the block-diagonal structured ROM produced by BDSM
// (eq. 14): Cr = blkdiag(C₁ᵣ…C_mᵣ), Gr = blkdiag(G₁ᵣ…G_mᵣ), Br with one
// nonzero column per block, Lr the horizontal concatenation of the L·V⁽ⁱ⁾.
// Its transfer matrix is Hr(s) = Σᵢ Hᵢᵣ(s), summed column-wise (eq. 15).
type BlockDiagSystem struct {
	Blocks []Block
	// M and P are the input and output counts of the original system.
	M, P int
}

// Dims returns (Σ block orders, M, P).
func (bd *BlockDiagSystem) Dims() (n, m, p int) {
	for i := range bd.Blocks {
		n += bd.Blocks[i].Order()
	}
	return n, bd.M, bd.P
}

// Validate checks internal consistency.
func (bd *BlockDiagSystem) Validate() error {
	for i := range bd.Blocks {
		b := &bd.Blocks[i]
		l := b.Order()
		if b.C.Cols != l || b.G.Rows != l || b.G.Cols != l {
			return fmt.Errorf("lti: block %d: inconsistent C/G sizes", i)
		}
		if len(b.B) != l {
			return fmt.Errorf("lti: block %d: B length %d, want %d", i, len(b.B), l)
		}
		if b.L.Rows != bd.P || b.L.Cols != l {
			return fmt.Errorf("lti: block %d: L is %d×%d, want %d×%d", i, b.L.Rows, b.L.Cols, bd.P, l)
		}
		if b.Input < 0 || b.Input >= bd.M {
			return fmt.Errorf("lti: block %d: input index %d out of range %d", i, b.Input, bd.M)
		}
	}
	return nil
}

// BlockDiagFactors is a reusable frequency-point factorization context: the
// complex LU factors of every block pencil (sCᵢ - Gᵢ) at one fixed s,
// together with complexified views of Bᵢ and Lᵢ. Factoring is the O(l³)
// part of an evaluation; with the factors in hand each extra Eval or
// EvalColumn at the same s costs only O(l²) triangular solves per block.
// A BlockDiagFactors is immutable after construction and safe for
// concurrent use — the property the serving layer's factorization cache
// relies on.
type BlockDiagFactors struct {
	// S is the complex frequency the pencils were factored at.
	S complex128
	// M and P mirror the source system's port and output counts.
	M, P int

	// col is -1 for a full factorization; otherwise only the blocks
	// driven by input col are factored and only that column can be
	// evaluated.
	col    int
	blocks []blockFactor
}

type blockFactor struct {
	lu    *dense.LU[complex128]
	b     []complex128           // complexified B
	l     *dense.Mat[complex128] // complexified L
	input int
}

// factorBlock builds the evaluation context of a single block at s.
func factorBlock(b *Block, s complex128) (blockFactor, error) {
	ctrFactorizations.Add(1)
	pencil := dense.ToComplex(b.C).Scale(s).Sub(dense.ToComplex(b.G))
	lu, err := dense.FactorLU(pencil)
	if err != nil {
		return blockFactor{}, fmt.Errorf("lti: block pencil singular at s=%v: %w", s, err)
	}
	bz := make([]complex128, len(b.B))
	for k, v := range b.B {
		bz[k] = complex(v, 0)
	}
	return blockFactor{lu: lu, b: bz, l: dense.ToComplex(b.L), input: b.Input}, nil
}

// column solves the factored block pencil against its input vector and maps
// through L: Lᵢ (sCᵢ - Gᵢ)⁻¹ bᵢ.
func (bf *blockFactor) column() ([]complex128, error) {
	x := make([]complex128, len(bf.b))
	if err := bf.lu.Solve(x, bf.b); err != nil {
		return nil, err
	}
	return bf.l.MulVec(x), nil
}

// columnInto is column with caller-provided buffers: the solve lands in
// x[:order] and Lᵢ·x is accumulated into dst. The allocation-free core of
// the serving layer's factored evaluation path.
//
//pgmor:noalloc
func (bf *blockFactor) columnInto(dst, x []complex128) error {
	x = x[:len(bf.b)]
	if err := bf.lu.Solve(x, bf.b); err != nil {
		return err
	}
	for r := range dst {
		row := bf.l.Row(r)
		var sum complex128
		for i, v := range x {
			sum += row[i] * v
		}
		dst[r] += sum
	}
	return nil
}

// addMatColumn is columnInto accumulating into column j of h instead of a
// contiguous slice, so full-matrix evaluation needs no per-call column
// temporary.
//
//pgmor:noalloc
func (bf *blockFactor) addMatColumn(h *dense.Mat[complex128], j int, x []complex128) error {
	x = x[:len(bf.b)]
	if err := bf.lu.Solve(x, bf.b); err != nil {
		return err
	}
	for r := 0; r < bf.l.Rows; r++ {
		row := bf.l.Row(r)
		var sum complex128
		for i, v := range x {
			sum += row[i] * v
		}
		h.Data[r*h.Cols+j] += sum
	}
	return nil
}

// Factorize factors every block pencil at s into a reusable evaluation
// context. Repeated evaluations at the same frequency — AC sweeps over
// shared grids, concurrent requests hitting common points — should factor
// once and evaluate through the returned context.
func (bd *BlockDiagSystem) Factorize(s complex128) (*BlockDiagFactors, error) {
	f := &BlockDiagFactors{S: s, M: bd.M, P: bd.P, col: -1, blocks: make([]blockFactor, len(bd.Blocks))}
	for i := range bd.Blocks {
		bf, err := factorBlock(&bd.Blocks[i], s)
		if err != nil {
			return nil, fmt.Errorf("lti: block %d: %w", i, err)
		}
		f.blocks[i] = bf
	}
	return f, nil
}

// FactorizeColumn factors only the blocks driven by input j (normally one
// block of m), producing a context that evaluates column j alone. Compared
// to Factorize this is m× cheaper to build and to retain — the right shape
// for caching single-entry sweeps over many-port grids.
func (bd *BlockDiagSystem) FactorizeColumn(s complex128, j int) (*BlockDiagFactors, error) {
	if j < 0 || j >= bd.M {
		return nil, fmt.Errorf("lti: column %d out of range %d", j, bd.M)
	}
	f := &BlockDiagFactors{S: s, M: bd.M, P: bd.P, col: j}
	for i := range bd.Blocks {
		if bd.Blocks[i].Input != j {
			continue
		}
		bf, err := factorBlock(&bd.Blocks[i], s)
		if err != nil {
			return nil, fmt.Errorf("lti: block %d: %w", i, err)
		}
		f.blocks = append(f.blocks, bf)
	}
	return f, nil
}

// ScratchLen returns the solve-buffer length EvalInto/EvalColumnInto need:
// the largest factored block order. Callers that pool scratch across models
// should size to the largest ScratchLen they serve.
func (f *BlockDiagFactors) ScratchLen() int {
	n := 0
	for i := range f.blocks {
		if l := len(f.blocks[i].b); l > n {
			n = l
		}
	}
	return n
}

// Eval computes the full p×m transfer matrix Hr(S) from the cached factors:
// column Input receives Lᵢ (sCᵢ - Gᵢ)⁻¹ bᵢ (eq. 15), at O(l²) per block.
func (f *BlockDiagFactors) Eval() (*dense.Mat[complex128], error) {
	h := dense.NewMat[complex128](f.P, f.M)
	if err := f.EvalInto(h, make([]complex128, f.ScratchLen())); err != nil {
		return nil, err
	}
	return h, nil
}

// EvalInto is Eval with caller-provided storage: h must be P×M (it is
// zeroed), scratch at least ScratchLen long. Zero allocations per call.
//
//pgmor:noalloc
func (f *BlockDiagFactors) EvalInto(h *dense.Mat[complex128], scratch []complex128) error {
	if f.col >= 0 {
		return fmt.Errorf("lti: column-%d factorization cannot evaluate the full matrix", f.col)
	}
	if h.Rows != f.P || h.Cols != f.M {
		return fmt.Errorf("lti: EvalInto matrix is %d×%d, want %d×%d", h.Rows, h.Cols, f.P, f.M)
	}
	for i := range h.Data {
		h.Data[i] = 0
	}
	ctrFactoredEvals.Add(int64(len(f.blocks)))
	for i := range f.blocks {
		if err := f.blocks[i].addMatColumn(h, f.blocks[i].input, scratch); err != nil {
			return err
		}
	}
	return nil
}

// EvalColumn computes column j of Hr(S) from the cached factors.
func (f *BlockDiagFactors) EvalColumn(j int) ([]complex128, error) {
	col := make([]complex128, f.P)
	if err := f.EvalColumnInto(col, make([]complex128, f.ScratchLen()), j); err != nil {
		return nil, err
	}
	return col, nil
}

// EvalColumnInto computes column j of Hr(S) into dst (length P, zeroed here)
// using scratch (at least ScratchLen long) for the block solves. Zero
// allocations per call — the factored fast path the serving layer pools
// buffers for.
//
//pgmor:noalloc
func (f *BlockDiagFactors) EvalColumnInto(dst, scratch []complex128, j int) error {
	if j < 0 || j >= f.M {
		return fmt.Errorf("lti: column %d out of range %d", j, f.M)
	}
	if f.col >= 0 && j != f.col {
		return fmt.Errorf("lti: factorization holds column %d, not %d", f.col, j)
	}
	if len(dst) != f.P {
		return fmt.Errorf("lti: EvalColumnInto dst length %d, want %d", len(dst), f.P)
	}
	for r := range dst {
		dst[r] = 0
	}
	var evaluated int64
	for i := range f.blocks {
		if f.blocks[i].input != j {
			continue
		}
		if err := f.blocks[i].columnInto(dst, scratch); err != nil {
			return err
		}
		evaluated++
	}
	if evaluated > 0 {
		ctrFactoredEvals.Add(evaluated)
	}
	return nil
}

// MemBytes estimates the memory retained by the factors — the quantity the
// serving layer's LRU cache budgets against.
func (f *BlockDiagFactors) MemBytes() int64 {
	var n int64
	for i := range f.blocks {
		bf := &f.blocks[i]
		l := int64(len(bf.b))
		// packed LU (l×l complex) + pivots + B + L, 16 bytes per complex128.
		n += 16*(l*l+l) + 8*l + 16*int64(bf.l.Rows)*int64(bf.l.Cols)
	}
	return n
}

// Eval computes Hr(s) block by block via a one-shot factorization context.
// Each block is a small l×l factor+solve, so the total cost is O(m·l³) —
// the paper's headline simulation speedup over the O(m³l³) dense ROM
// (Sec. III-B). Callers evaluating the same s repeatedly should Factorize
// once and reuse the context.
func (bd *BlockDiagSystem) Eval(s complex128) (*dense.Mat[complex128], error) {
	f, err := bd.Factorize(s)
	if err != nil {
		return nil, err
	}
	return f.Eval()
}

// EvalColumn evaluates one column of Hr(s), factoring only the blocks driven
// by input j (normally exactly one).
func (bd *BlockDiagSystem) EvalColumn(s complex128, j int) ([]complex128, error) {
	f, err := bd.FactorizeColumn(s, j)
	if err != nil {
		return nil, err
	}
	return f.EvalColumn(j)
}

// ToDense assembles the explicit block-diagonal matrices of eq. (14) into a
// DenseSystem. Used for structure inspection (Fig. 4) and cross-validation;
// simulation should stay on the block form.
func (bd *BlockDiagSystem) ToDense() *DenseSystem {
	q, m, p := bd.Dims()
	c := dense.NewMat[float64](q, q)
	g := dense.NewMat[float64](q, q)
	bmat := dense.NewMat[float64](q, m)
	lmat := dense.NewMat[float64](p, q)
	off := 0
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		l := blk.Order()
		for r := 0; r < l; r++ {
			for cc := 0; cc < l; cc++ {
				c.Set(off+r, off+cc, blk.C.At(r, cc))
				g.Set(off+r, off+cc, blk.G.At(r, cc))
			}
			bmat.Set(off+r, blk.Input, blk.B[r])
		}
		for r := 0; r < p; r++ {
			for cc := 0; cc < l; cc++ {
				lmat.Set(r, off+cc, blk.L.At(r, cc))
			}
		}
		off += l
	}
	return &DenseSystem{C: c, G: g, B: bmat, L: lmat}
}

// NNZ returns the nonzero counts of the assembled Cr, Gr, Br, Lr without
// materializing them: the paper's storage argument is m·l² nonzeros versus
// O(m²l²) for a dense ROM.
func (bd *BlockDiagSystem) NNZ() (c, g, b, l int) {
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		c += blk.C.NNZ()
		g += blk.G.NNZ()
		for _, v := range blk.B {
			if v != 0 {
				b++
			}
		}
		l += blk.L.NNZ()
	}
	return c, g, b, l
}

// ApplyInput computes dst = Br·u over the stacked block states.
func (bd *BlockDiagSystem) ApplyInput(dst, u []float64) {
	q, m, _ := bd.Dims()
	if len(dst) != q || len(u) != m {
		panic("lti: BlockDiag ApplyInput dimension mismatch")
	}
	off := 0
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		ui := u[blk.Input]
		for r, v := range blk.B {
			dst[off+r] = v * ui
		}
		off += blk.Order()
	}
}

// ApplyOutput computes y = Lr·x over the stacked block states.
func (bd *BlockDiagSystem) ApplyOutput(x []float64) []float64 {
	y := make([]float64, bd.P)
	off := 0
	for i := range bd.Blocks {
		blk := &bd.Blocks[i]
		l := blk.Order()
		for r := 0; r < bd.P; r++ {
			y[r] += sparse.Dot(blk.L.Row(r), x[off:off+l])
		}
		off += l
	}
	return y
}
