package lti

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dense"
)

// rcBlockDiag builds a small RC-flavored ROM: symmetric positive definite C,
// symmetric negative definite G — the structure a projected RC grid block
// has, which must take the symmetric modal path.
func rcBlockDiag() *BlockDiagSystem {
	return &BlockDiagSystem{
		M: 2,
		P: 2,
		Blocks: []Block{
			{
				C:     &dense.Mat[float64]{Rows: 3, Cols: 3, Data: []float64{2, 0.5, 0, 0.5, 3, 0.25, 0, 0.25, 1.5}},
				G:     &dense.Mat[float64]{Rows: 3, Cols: 3, Data: []float64{-4, 1, 0, 1, -5, 1, 0, 1, -3}},
				B:     []float64{1, 0.5, -0.25},
				L:     &dense.Mat[float64]{Rows: 2, Cols: 3, Data: []float64{1, 0, 0.5, 0, 1, -0.5}},
				Input: 0,
			},
			{
				C:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{1, 0.1, 0.1, 2}},
				G:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{-2, 0.5, 0.5, -1}},
				B:     []float64{0.75, -1.5},
				L:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{0.25, 1, 1, 0}},
				Input: 1,
			},
		},
	}
}

func relColErr(got, want []complex128) float64 {
	var num, den float64
	for i := range want {
		num += sqAbs(got[i] - want[i])
		den += sqAbs(want[i])
	}
	if den == 0 {
		den = 1
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// checkModalAgrees asserts ModalSystem.Eval matches BlockDiagSystem.Eval to
// tol at every probe frequency.
func checkModalAgrees(t *testing.T, bd *BlockDiagSystem, ms *ModalSystem, omegas []float64, tol float64) {
	t.Helper()
	for _, w := range omegas {
		s := complex(0, w)
		want, err := bd.Eval(s)
		if err != nil {
			t.Fatalf("factored Eval(%v): %v", s, err)
		}
		got, err := ms.Eval(s)
		if err != nil {
			t.Fatalf("modal Eval(%v): %v", s, err)
		}
		var num, den float64
		for i := range want.Data {
			num += sqAbs(got.Data[i] - want.Data[i])
			den += sqAbs(want.Data[i])
		}
		if den == 0 {
			den = 1
		}
		if rel := math.Sqrt(num) / math.Sqrt(den); rel > tol {
			t.Fatalf("ω=%g: modal vs factored relative error %.3e > %.3e", w, rel, tol)
		}
	}
}

func logOmegas(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := range out {
		out[i] = math.Pow(10, llo+(lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

func TestModalizeSymmetricPath(t *testing.T) {
	bd := rcBlockDiag()
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatalf("Modalize: %v", err)
	}
	modal, fb := ms.ModalCount()
	if fb != 0 || modal != len(bd.Blocks) {
		t.Fatalf("ModalCount = (%d, %d), want all %d blocks modal", modal, fb, len(bd.Blocks))
	}
	for i := range ms.Blocks {
		if !ms.Blocks[i].Sym {
			t.Errorf("block %d: symmetric-definite block did not take the symmetric path", i)
		}
		for _, lam := range ms.Blocks[i].Poles {
			if imag(lam) != 0 {
				t.Errorf("block %d: symmetric path produced complex pole %v", i, lam)
			}
			if real(lam) >= 0 {
				t.Errorf("block %d: dissipative block produced non-negative pole %v", i, lam)
			}
		}
	}
	checkModalAgrees(t, bd, ms, logOmegas(1e-3, 1e3, 41), 1e-12)
}

// TestModalizeGeneralPath covers the golden ROM from io_test: its blocks are
// deliberately non-symmetric (and block 1 has a symmetric G but non-symmetric
// C), so they must take the general diagonalization route — and still agree
// with the LU evaluation to well below the system-level 1e-9 bound.
func TestModalizeGeneralPath(t *testing.T) {
	bd := goldenBlockDiag()
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatalf("Modalize: %v", err)
	}
	modal, fb := ms.ModalCount()
	if modal == 0 {
		t.Fatalf("no block took the general modal path (fallbacks: %d)", fb)
	}
	checkModalAgrees(t, bd, ms, logOmegas(1e-2, 1e4, 41), 1e-9)
}

// TestModalizeFallback hands Modalize a defective block — a Jordan-type
// pencil that no similarity transform diagonalizes accurately — and expects
// the block to be kept on the LU fallback while evaluation stays correct.
func TestModalizeFallback(t *testing.T) {
	bd := &BlockDiagSystem{
		M: 1,
		P: 1,
		Blocks: []Block{{
			// C = I, G a 3×3 Jordan block: eigenvector matrix is rank 1, so
			// the general path's diagonalization must fail its self-check.
			C:     dense.Eye[float64](3),
			G:     &dense.Mat[float64]{Rows: 3, Cols: 3, Data: []float64{-1, 1, 0, 0, -1, 1, 0, 0, -1}},
			B:     []float64{0, 0, 1},
			L:     &dense.Mat[float64]{Rows: 1, Cols: 3, Data: []float64{1, 0, 0}},
			Input: 0,
		}},
	}
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatalf("Modalize: %v", err)
	}
	if _, fb := ms.ModalCount(); fb != 1 {
		t.Fatalf("defective block was not demoted to the LU fallback")
	}
	checkModalAgrees(t, bd, ms, logOmegas(1e-2, 1e2, 21), 1e-12)
}

// TestModalDirectTerm exercises a singular-C block (a mode at infinity): the
// transfer function then has a nonzero limit at s→∞ which the modal form
// must carry as a direct term.
func TestModalDirectTerm(t *testing.T) {
	bd := &BlockDiagSystem{
		M: 1,
		P: 1,
		Blocks: []Block{{
			// Second state has no dynamics: C = diag(1, 0). The pencil
			// sC−G is regular (G invertible), so LU evaluation works and
			// H(∞) = 0.5 ≠ 0.
			C:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{1, 0, 0, 0}},
			G:     &dense.Mat[float64]{Rows: 2, Cols: 2, Data: []float64{-1, 0.5, 0.25, -2}},
			B:     []float64{1, 1},
			L:     &dense.Mat[float64]{Rows: 1, Cols: 2, Data: []float64{1, 1}},
			Input: 0,
		}},
	}
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatalf("Modalize: %v", err)
	}
	if modal, _ := ms.ModalCount(); modal != 1 {
		t.Fatalf("singular-C block did not modalize")
	}
	if ms.Blocks[0].D == nil {
		t.Fatalf("singular-C block has no direct term")
	}
	checkModalAgrees(t, bd, ms, logOmegas(1e-3, 1e6, 41), 1e-11)
	// The direct term must match the s→∞ limit of the LU evaluation.
	far, err := bd.Eval(complex(0, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	if d := cmplx.Abs(ms.Blocks[0].D[0] - far.At(0, 0)); d > 1e-9 {
		t.Fatalf("direct term %v far from high-frequency limit %v (|Δ| = %g)", ms.Blocks[0].D[0], far.At(0, 0), d)
	}
}

// TestModalSweepEntryMatchesEval pins the vectorized sweep against
// point-by-point evaluation.
func TestModalSweepEntryMatchesEval(t *testing.T) {
	bd := rcBlockDiag()
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatal(err)
	}
	omegas := logOmegas(1e-2, 1e2, 33)
	for row := 0; row < bd.P; row++ {
		for col := 0; col < bd.M; col++ {
			sweep, err := ms.SweepEntry(row, col, omegas)
			if err != nil {
				t.Fatal(err)
			}
			for k, w := range omegas {
				want, err := ms.EvalColumn(complex(0, w), col)
				if err != nil {
					t.Fatal(err)
				}
				if d := cmplx.Abs(sweep[k] - want[row]); d > 1e-13*(1+cmplx.Abs(want[row])) {
					t.Fatalf("entry (%d,%d) ω=%g: sweep %v vs eval %v", row, col, w, sweep[k], want[row])
				}
			}
		}
	}
}

// TestModalEvalColumnIntoAllocs verifies the headline property: a modal
// column evaluation performs zero allocations.
//
//pgmor:alloctest ModalSystem.EvalColumnInto
//pgmor:alloctest ModalBlock.accumulateColumn
func TestModalEvalColumnIntoAllocs(t *testing.T) {
	bd := rcBlockDiag()
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, bd.P)
	allocs := testing.AllocsPerRun(100, func() {
		if err := ms.EvalColumnInto(dst, complex(0, 3), 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("modal EvalColumnInto allocates %.1f times per call, want 0", allocs)
	}
}

// TestFactoredEvalColumnIntoAllocs pins the reduced-allocation factored
// path: with pooled buffers a cached-factor column evaluation is
// allocation-free too.
//
//pgmor:alloctest BlockDiagFactors.EvalColumnInto
//pgmor:alloctest blockFactor.columnInto
func TestFactoredEvalColumnIntoAllocs(t *testing.T) {
	bd := rcBlockDiag()
	f, err := bd.Factorize(complex(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, bd.P)
	scratch := make([]complex128, f.ScratchLen())
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.EvalColumnInto(dst, scratch, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("factored EvalColumnInto allocates %.1f times per call, want 0", allocs)
	}
}

func TestModalCounters(t *testing.T) {
	bd := rcBlockDiag()
	ms, err := bd.Modalize()
	if err != nil {
		t.Fatal(err)
	}
	ResetCounters()
	if _, err := ms.Eval(complex(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := bd.Eval(complex(0, 2)); err != nil {
		t.Fatal(err)
	}
	// The unit is one (block, frequency) evaluation: a fully modal Eval
	// counts every block as modal, a factored Eval counts every block as
	// factored.
	blocks := int64(len(bd.Blocks))
	c := Counters()
	if c.ModalEvals != blocks {
		t.Errorf("ModalEvals = %d, want %d", c.ModalEvals, blocks)
	}
	if c.FactoredEvals != blocks {
		t.Errorf("FactoredEvals = %d, want %d", c.FactoredEvals, blocks)
	}
	if c.Factorizations != blocks {
		t.Errorf("Factorizations = %d, want %d", c.Factorizations, blocks)
	}
}
