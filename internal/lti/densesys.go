package lti

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// DenseSystem is a small descriptor model with dense matrices — the natural
// container for PRIMA-style reduced-order models.
type DenseSystem struct {
	C *dense.Mat[float64] // q×q
	G *dense.Mat[float64] // q×q
	B *dense.Mat[float64] // q×m
	L *dense.Mat[float64] // p×q
}

// NewDenseSystem wraps dense descriptor matrices after checking dimensions.
func NewDenseSystem(c, g, b, l *dense.Mat[float64]) (*DenseSystem, error) {
	q := c.Rows
	if c.Cols != q || g.Rows != q || g.Cols != q {
		return nil, fmt.Errorf("lti: C and G must be square of equal size")
	}
	if b.Rows != q {
		return nil, fmt.Errorf("lti: B has %d rows, want %d", b.Rows, q)
	}
	if l.Cols != q {
		return nil, fmt.Errorf("lti: L has %d cols, want %d", l.Cols, q)
	}
	return &DenseSystem{C: c, G: g, B: b, L: l}, nil
}

// Dims returns (q, m, p).
func (d *DenseSystem) Dims() (n, m, p int) { return d.C.Rows, d.B.Cols, d.L.Rows }

// Eval computes H(s) = L (sC - G)^{-1} B by one dense complex factorization.
func (d *DenseSystem) Eval(s complex128) (*dense.Mat[complex128], error) {
	cz := dense.ToComplex(d.C)
	gz := dense.ToComplex(d.G)
	pencil := cz.Scale(s).Sub(gz)
	f, err := dense.FactorLU(pencil)
	if err != nil {
		return nil, fmt.Errorf("lti: dense pencil singular at s=%v: %w", s, err)
	}
	x, err := f.SolveMat(dense.ToComplex(d.B))
	if err != nil {
		return nil, err
	}
	return dense.ToComplex(d.L).Mul(x), nil
}

// Moments returns the first count moment matrices around real s0, the dense
// analogue of SparseSystem.Moments.
func (d *DenseSystem) Moments(s0 float64, count int) ([]*dense.Mat[float64], error) {
	pencil := d.C.Clone().Scale(s0).Sub(d.G)
	f, err := dense.FactorLU(pencil)
	if err != nil {
		return nil, fmt.Errorf("lti: dense pencil singular at s0=%g: %w", s0, err)
	}
	r, err := f.SolveMat(d.B)
	if err != nil {
		return nil, err
	}
	moments := make([]*dense.Mat[float64], 0, count)
	for k := 0; k < count; k++ {
		moments = append(moments, d.L.Mul(r))
		if k == count-1 {
			break
		}
		r, err = f.SolveMat(d.C.Mul(r))
		if err != nil {
			return nil, err
		}
	}
	return moments, nil
}

// NNZ reports the nonzero counts of the four system matrices, used for the
// ROM structure comparison of Fig. 4.
func (d *DenseSystem) NNZ() (c, g, b, l int) {
	return d.C.NNZ(), d.G.NNZ(), d.B.NNZ(), d.L.NNZ()
}

// StableDescriptor reports whether all finite generalized eigenvalues of the
// pencil (G, C) — i.e. poles of the system — have negative real part.
// Intended for ROM-sized systems.
func (d *DenseSystem) StableDescriptor() (bool, error) {
	// Poles are eigenvalues of C⁻¹G when C is invertible.
	f, err := dense.FactorLU(d.C)
	if err != nil {
		return false, fmt.Errorf("lti: singular C in stability check: %w", err)
	}
	a, err := f.SolveMat(d.G)
	if err != nil {
		return false, err
	}
	vals, err := dense.Eigenvalues(a)
	if err != nil {
		return false, err
	}
	for _, v := range vals {
		if real(v) >= 0 {
			return false, nil
		}
	}
	return true, nil
}

// Simulatable exposes the pieces the transient simulator needs; both dense
// and block-diagonal ROMs satisfy it.
type Simulatable interface {
	System
	// ApplyInput computes dst = B·u.
	ApplyInput(dst, u []float64)
	// ApplyOutput computes y = L·x.
	ApplyOutput(x []float64) []float64
}

// ApplyInput computes dst = B·u.
func (d *DenseSystem) ApplyInput(dst, u []float64) {
	if len(dst) != d.B.Rows || len(u) != d.B.Cols {
		panic("lti: ApplyInput dimension mismatch")
	}
	for i := 0; i < d.B.Rows; i++ {
		dst[i] = sparse.Dot(d.B.Row(i), u)
	}
}

// ApplyOutput computes y = L·x.
func (d *DenseSystem) ApplyOutput(x []float64) []float64 {
	return d.L.MulVec(x)
}
