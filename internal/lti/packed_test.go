package lti

import (
	"math/cmplx"
	"testing"
)

// packedSystems returns the fixture systems the batched kernels must agree
// with the scalar paths on: the symmetric RC ROM, the non-symmetric golden
// ROM, and a partially-modal variant with a forced fallback block.
func packedSystems(t *testing.T) map[string]*ModalSystem {
	t.Helper()
	out := make(map[string]*ModalSystem)
	for name, bd := range map[string]*BlockDiagSystem{
		"rc":     rcBlockDiag(),
		"golden": goldenBlockDiag(),
	} {
		ms, err := bd.Modalize()
		if err != nil {
			t.Fatalf("%s: Modalize: %v", name, err)
		}
		out[name] = ms
	}
	demoted, err := rcBlockDiag().Modalize()
	if err != nil {
		t.Fatal(err)
	}
	demoteBlock(demoted, 1)
	out["rc-fallback"] = demoted
	return out
}

func allEntries(m, p int) [][2]int {
	var entries [][2]int
	for r := 0; r < p; r++ {
		for c := 0; c < m; c++ {
			entries = append(entries, [2]int{r, c})
		}
	}
	return entries
}

// TestPackedSweepMatchesScalar pins the batched sweep kernel against the
// scalar per-entry sweep on every entry of every fixture — including the
// fallback-forced model — to 1e-12. The kernels differ only in rounding
// (shared reciprocal-then-multiply vs per-term division), so near machine
// precision is required, not merely modeling accuracy.
func TestPackedSweepMatchesScalar(t *testing.T) {
	omegas := logOmegas(1e-2, 1e3, 29)
	for name, ms := range packedSystems(t) {
		mp := ms.Pack()
		_, m, p := ms.Dims()
		entries := allEntries(m, p)
		dst := make([]complex128, len(entries)*len(omegas))
		if err := mp.SweepEntriesInto(dst, entries, omegas); err != nil {
			t.Fatalf("%s: SweepEntriesInto: %v", name, err)
		}
		want := make([]complex128, len(omegas))
		for e, ent := range entries {
			if err := ms.SweepEntryInto(want, ent[0], ent[1], omegas); err != nil {
				t.Fatalf("%s: SweepEntryInto(%d,%d): %v", name, ent[0], ent[1], err)
			}
			got := dst[e*len(omegas) : (e+1)*len(omegas)]
			for w := range want {
				if d := cmplx.Abs(got[w] - want[w]); d > 1e-12*(1+cmplx.Abs(want[w])) {
					t.Fatalf("%s: entry (%d,%d) ω=%g: packed %v vs scalar %v (|Δ| = %g)",
						name, ent[0], ent[1], omegas[w], got[w], want[w], d)
				}
			}
		}
	}
}

// TestPackedSweepSubsetAndDuplicates covers the shapes coalesced serving
// produces: an arbitrary subset of entries, including the same entry
// requested twice (two clients asking for the same sweep in one batch).
func TestPackedSweepSubsetAndDuplicates(t *testing.T) {
	ms := packedSystems(t)["rc-fallback"]
	mp := ms.Pack()
	omegas := logOmegas(1e-1, 1e2, 11)
	entries := [][2]int{{1, 0}, {0, 1}, {1, 0}}
	dst := make([]complex128, len(entries)*len(omegas))
	if err := mp.SweepEntriesInto(dst, entries, omegas); err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(omegas))
	for e, ent := range entries {
		if err := ms.SweepEntryInto(want, ent[0], ent[1], omegas); err != nil {
			t.Fatal(err)
		}
		got := dst[e*len(omegas) : (e+1)*len(omegas)]
		for w := range want {
			if d := cmplx.Abs(got[w] - want[w]); d > 1e-12*(1+cmplx.Abs(want[w])) {
				t.Fatalf("entry %d (%d,%d) ω=%g: packed %v vs scalar %v", e, ent[0], ent[1], omegas[w], got[w], want[w])
			}
		}
	}
	// Duplicate entries must come out bit-identical: same kernel pass, same
	// accumulation order.
	for w := 0; w < len(omegas); w++ {
		if dst[0*len(omegas)+w] != dst[2*len(omegas)+w] {
			t.Fatalf("duplicate entries disagree at ω index %d", w)
		}
	}
}

// TestPackedEvalColumnsMatchesScalar pins the s-point batch kernel against
// per-point EvalColumnInto on every column, fixtures including fallback.
func TestPackedEvalColumnsMatchesScalar(t *testing.T) {
	for name, ms := range packedSystems(t) {
		mp := ms.Pack()
		_, m, p := ms.Dims()
		svals := []complex128{complex(0, 0.01), complex(0, 3), complex(0.5, 40), complex(0, 900)}
		dst := make([]complex128, len(svals)*p)
		want := make([]complex128, p)
		for col := 0; col < m; col++ {
			if err := mp.EvalColumnsInto(dst, col, svals); err != nil {
				t.Fatalf("%s: EvalColumnsInto(col %d): %v", name, col, err)
			}
			for si, s := range svals {
				if err := ms.EvalColumnInto(want, s, col); err != nil {
					t.Fatal(err)
				}
				got := dst[si*p : (si+1)*p]
				for r := range want {
					if d := cmplx.Abs(got[r] - want[r]); d > 1e-12*(1+cmplx.Abs(want[r])) {
						t.Fatalf("%s: col %d s=%v row %d: packed %v vs scalar %v",
							name, col, s, r, got[r], want[r])
					}
				}
			}
		}
	}
}

// TestPackedCounters pins the batched-kernel telemetry: modal work is counted
// once per (block, frequency) no matter how many entries share the column,
// and fallback blocks count factored evals per frequency.
func TestPackedCounters(t *testing.T) {
	ms := packedSystems(t)["rc-fallback"]
	mp := ms.Pack()
	if mp.FullyModal() {
		t.Fatal("fallback fixture reports fully modal")
	}
	omegas := logOmegas(1e-1, 1e2, 7)
	w := int64(len(omegas))

	// Two entries on the modal column share one pole pass: W modal evals,
	// not 2W — that is the batching win the counters must make visible.
	entries := [][2]int{{0, 0}, {1, 0}}
	dst := make([]complex128, len(entries)*len(omegas))
	ResetCounters()
	if err := mp.SweepEntriesInto(dst, entries, omegas); err != nil {
		t.Fatal(err)
	}
	c := Counters()
	if c.ModalEvals != w || c.FactoredEvals != 0 {
		t.Errorf("shared modal column: (modal, factored) = (%d, %d), want (%d, 0)", c.ModalEvals, c.FactoredEvals, w)
	}

	// Two entries on the fallback column share one LU per frequency: W
	// factored evals and W factorizations, not 2W.
	entries = [][2]int{{0, 1}, {1, 1}}
	ResetCounters()
	if err := mp.SweepEntriesInto(dst, entries, omegas); err != nil {
		t.Fatal(err)
	}
	c = Counters()
	if c.ModalEvals != 0 || c.FactoredEvals != w {
		t.Errorf("shared fallback column: (modal, factored) = (%d, %d), want (0, %d)", c.ModalEvals, c.FactoredEvals, w)
	}
	if c.Factorizations != w {
		t.Errorf("shared fallback column: Factorizations = %d, want %d", c.Factorizations, w)
	}

	// Batched s-points on the modal column: one modal eval per point.
	_, _, p := ms.Dims()
	svals := []complex128{complex(0, 1), complex(0, 2), complex(0, 3)}
	cdst := make([]complex128, len(svals)*p)
	ResetCounters()
	if err := mp.EvalColumnsInto(cdst, 0, svals); err != nil {
		t.Fatal(err)
	}
	c = Counters()
	if c.ModalEvals != int64(len(svals)) || c.FactoredEvals != 0 {
		t.Errorf("batched modal column: (modal, factored) = (%d, %d), want (%d, 0)", c.ModalEvals, c.FactoredEvals, len(svals))
	}

	fully := packedSystems(t)["rc"].Pack()
	if !fully.FullyModal() {
		t.Error("fully modal fixture reports fallback blocks")
	}
	if fully.MemBytes() <= 0 {
		t.Error("MemBytes reports nothing retained")
	}
}

// TestPackedValidation covers the defensive paths: mis-sized destinations and
// out-of-range entries or columns must error, empty batches are no-ops.
func TestPackedValidation(t *testing.T) {
	ms := packedSystems(t)["rc"]
	mp := ms.Pack()
	omegas := logOmegas(1e-1, 1e1, 3)
	if err := mp.SweepEntriesInto(make([]complex128, 1), [][2]int{{0, 0}}, omegas); err == nil {
		t.Error("short sweep dst accepted")
	}
	if err := mp.SweepEntriesInto(make([]complex128, len(omegas)), [][2]int{{0, 99}}, omegas); err == nil {
		t.Error("out-of-range entry accepted")
	}
	if err := mp.SweepEntriesInto(make([]complex128, len(omegas)), [][2]int{{-1, 0}}, omegas); err == nil {
		t.Error("negative row accepted")
	}
	if err := mp.SweepEntriesInto(nil, nil, omegas); err != nil {
		t.Errorf("empty entry batch: %v", err)
	}
	if err := mp.EvalColumnsInto(make([]complex128, 1), 0, []complex128{1, 2}); err == nil {
		t.Error("short column-batch dst accepted")
	}
	if err := mp.EvalColumnsInto(nil, 99, nil); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := mp.EvalColumnsInto(nil, 0, nil); err != nil {
		t.Errorf("empty s-point batch: %v", err)
	}
}
