// Package lti defines the linear time-invariant descriptor system types the
// model reduction algorithms operate on, in the paper's sign convention
//
//	C dx/dt = G x + B u,   y = L x,   H(s) = L (sC - G)^{-1} B,
//
// together with transfer-function evaluation, moment computation, and the
// block-diagonal structured reduced-order model produced by BDSM.
package lti

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// System is any realization that can report its dimensions and evaluate its
// transfer matrix at a complex frequency.
type System interface {
	// Dims returns state, input, and output counts (n, m, p).
	Dims() (n, m, p int)
	// Eval returns the p×m transfer matrix H(s).
	Eval(s complex128) (*dense.Mat[complex128], error)
}

// EvalEntry evaluates a single transfer-function entry H[i][j](s) of any
// System. Implementations that can evaluate single columns cheaply satisfy
// columnEvaluator and are used preferentially.
func EvalEntry(sys System, s complex128, i, j int) (complex128, error) {
	_, m, p := sys.Dims()
	if i < 0 || i >= p || j < 0 || j >= m {
		return 0, fmt.Errorf("lti: entry (%d,%d) out of range %d×%d", i, j, p, m)
	}
	if ce, ok := sys.(columnEvaluator); ok {
		col, err := ce.EvalColumn(s, j)
		if err != nil {
			return 0, err
		}
		return col[i], nil
	}
	h, err := sys.Eval(s)
	if err != nil {
		return 0, err
	}
	return h.At(i, j), nil
}

// columnEvaluator is implemented by systems that can evaluate a single
// transfer-matrix column without forming all of H(s).
type columnEvaluator interface {
	EvalColumn(s complex128, j int) ([]complex128, error)
}

// SparseSystem is a large sparse descriptor model, typically produced by MNA
// stamping of a power grid.
type SparseSystem struct {
	C *sparse.CSR[float64] // n×n
	G *sparse.CSR[float64] // n×n
	B *sparse.CSC[float64] // n×m, column access for per-port splitting
	L *sparse.CSR[float64] // p×n, row access for outputs
}

// NewSparseSystem wraps descriptor matrices into a SparseSystem, converting
// B to column storage. Dimension consistency is checked.
func NewSparseSystem(c, g, b, l *sparse.CSR[float64]) (*SparseSystem, error) {
	n, nc := c.Dims()
	gn, gc := g.Dims()
	bn, _ := b.Dims()
	_, lc := l.Dims()
	if n != nc || gn != gc || n != gn {
		return nil, fmt.Errorf("lti: C and G must be square with equal size, got %d×%d and %d×%d", n, nc, gn, gc)
	}
	if bn != n {
		return nil, fmt.Errorf("lti: B has %d rows, want %d", bn, n)
	}
	if lc != n {
		return nil, fmt.Errorf("lti: L has %d cols, want %d", lc, n)
	}
	return &SparseSystem{C: c, G: g, B: b.ToCSC(), L: l}, nil
}

// Dims returns (n, m, p).
func (s *SparseSystem) Dims() (n, m, p int) {
	n, _ = s.C.Dims()
	_, m = s.B.Dims()
	p, _ = s.L.Dims()
	return n, m, p
}

// Pencil returns the real pencil s0·C - G in column format, ready for LU
// factorization at the Krylov expansion point s0.
func (s *SparseSystem) Pencil(s0 float64) *sparse.CSC[float64] {
	return s.C.Add(s0, s.G, -1).ToCSC()
}

// PencilComplex returns the complex pencil s·C - G for frequency-domain
// evaluation at s = jω.
func (s *SparseSystem) PencilComplex(z complex128) *sparse.CSC[complex128] {
	czc := sparse.ToComplex(s.C)
	gzc := sparse.ToComplex(s.G)
	return czc.Add(z, gzc, -1).ToCSC()
}

// ImpedanceView returns the same system with the input matrix negated.
// Power-grid load ports draw current out of their nodes (B = -selection),
// making H(s) = -Z(s); the negated view has H(s) = +Z(s), the immittance
// convention required by passivity analysis (Sec. III-D).
func (s *SparseSystem) ImpedanceView() *SparseSystem {
	b := s.B.Clone()
	for i := range b.Val {
		b.Val[i] = -b.Val[i]
	}
	return &SparseSystem{C: s.C, G: s.G, B: b, L: s.L}
}

// BColumn returns column j of B as a dense vector.
func (s *SparseSystem) BColumn(j int) []float64 {
	n, _ := s.B.Dims()
	col := make([]float64, n)
	for k := s.B.ColPtr[j]; k < s.B.ColPtr[j+1]; k++ {
		col[s.B.RowIdx[k]] = s.B.Val[k]
	}
	return col
}

// ApplyL computes y = L x.
func (s *SparseSystem) ApplyL(x []float64) []float64 {
	p, _ := s.L.Dims()
	y := make([]float64, p)
	s.L.MatVec(y, x)
	return y
}

// Eval computes the full p×m transfer matrix by one sparse complex LU
// factorization and m solves. Cost grows with the port count; use
// EvalColumn for single entries.
func (s *SparseSystem) Eval(z complex128) (*dense.Mat[complex128], error) {
	n, m, p := s.Dims()
	lu, err := sparse.FactorLU(s.PencilComplex(z), sparse.LUOptions{})
	if err != nil {
		return nil, fmt.Errorf("lti: pencil singular at s=%v: %w", z, err)
	}
	h := dense.NewMat[complex128](p, m)
	x := make([]complex128, n)
	lc := sparse.ToComplex(s.L)
	y := make([]complex128, p)
	for j := 0; j < m; j++ {
		sparse.ZeroVec(x)
		for k := s.B.ColPtr[j]; k < s.B.ColPtr[j+1]; k++ {
			x[s.B.RowIdx[k]] = complex(s.B.Val[k], 0)
		}
		if err := lu.Solve(x, x); err != nil {
			return nil, err
		}
		lc.MatVec(y, x)
		h.SetCol(j, y)
	}
	return h, nil
}

// EvalColumn computes column j of H(s) with a single factorization+solve.
func (s *SparseSystem) EvalColumn(z complex128, j int) ([]complex128, error) {
	n, m, p := s.Dims()
	if j < 0 || j >= m {
		return nil, fmt.Errorf("lti: column %d out of range %d", j, m)
	}
	lu, err := sparse.FactorLU(s.PencilComplex(z), sparse.LUOptions{})
	if err != nil {
		return nil, fmt.Errorf("lti: pencil singular at s=%v: %w", z, err)
	}
	x := make([]complex128, n)
	for k := s.B.ColPtr[j]; k < s.B.ColPtr[j+1]; k++ {
		x[s.B.RowIdx[k]] = complex(s.B.Val[k], 0)
	}
	if err := lu.Solve(x, x); err != nil {
		return nil, err
	}
	y := make([]complex128, p)
	sparse.ToComplex(s.L).MatVec(y, x)
	return y, nil
}

// Moments returns the first count moment matrices of H(s) around the real
// expansion point s0:
//
//	M_k = L · ((s0·C - G)⁻¹ C)^k · (s0·C - G)⁻¹ B,  k = 0..count-1,
//
// computed exactly with one sparse LU factorization. These are the
// quantities BDSM and PRIMA match (eq. 5/12 of the paper).
func (s *SparseSystem) Moments(s0 float64, count int) ([]*dense.Mat[float64], error) {
	n, m, p := s.Dims()
	lu, err := sparse.FactorLU(s.Pencil(s0), sparse.LUOptions{})
	if err != nil {
		return nil, fmt.Errorf("lti: pencil singular at s0=%g: %w", s0, err)
	}
	// R starts as (s0C - G)^{-1} B, iterated through A = (s0C - G)^{-1} C.
	r := make([][]float64, m)
	for j := 0; j < m; j++ {
		r[j] = s.BColumn(j)
	}
	if err := lu.SolveMany(r); err != nil {
		return nil, err
	}
	moments := make([]*dense.Mat[float64], 0, count)
	tmp := make([]float64, n)
	w := make([]float64, n)
	for k := 0; k < count; k++ {
		mk := dense.NewMat[float64](p, m)
		for j := 0; j < m; j++ {
			mk.SetCol(j, s.ApplyL(r[j]))
		}
		moments = append(moments, mk)
		if k == count-1 {
			break
		}
		for j := 0; j < m; j++ {
			s.C.MatVec(tmp, r[j])
			lu.SolveBuf(r[j], tmp, w)
		}
	}
	return moments, nil
}
