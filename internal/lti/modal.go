package lti

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dense"
)

// Modal-form construction tolerances. They are variables (not constants) so
// tests can tighten or loosen the acceptance band.
var (
	// modalSymTol is the relative asymmetry below which a block's C and G
	// are treated as symmetric, routing it through the exact generalized
	// symmetric eigendecomposition.
	modalSymTol = 1e-12
	// modalCheckTol is the per-block self-check bound: a diagonalized block
	// whose transfer column deviates from its LU evaluation by more than
	// this relative error at any probe frequency is demoted to the LU
	// fallback. Two orders of magnitude tighter than the 1e-9 the system
	// guarantees end to end.
	modalCheckTol = 1e-11
	// modalDropTol classifies eigenvalues of K = (s₀C−G)⁻¹C as "mode at
	// infinity" (relative to the largest |μ|): those directions carry no
	// dynamics and fold into the block's direct term.
	modalDropTol = 1e-14
	// modalStabTol rejects decompositions that manufacture unstable poles:
	// a passive grid block has Re λ ≤ 0, so a pole with significant
	// positive real part signals a bad diagonalization (and would detonate
	// the exact exponential integrator).
	modalStabTol = 1e-8
)

// ModalBlock is the diagonalized (pole–residue) form of one ROM block: the
// block's transfer column is
//
//	Hᵢ(s) = Σₖ Rₖ / (s − λₖ) + D
//
// with residue rows Rₖ = (Lᵢ·xₖ)·(input weight of mode k) already folded, so
// an evaluation is q divisions and a q×p accumulation — no factorization, no
// solves, no allocation. Poles come from the generalized eigenproblem
// Gᵢ·v = λ·Cᵢ·v (symmetric path) or from diagonalizing (s₀Cᵢ−Gᵢ)⁻¹Cᵢ
// (general path, covering the non-symmetric RLC pencils).
type ModalBlock struct {
	// Input is the index of the input port driving this block.
	Input int
	// Modal reports the block carries a usable pole–residue form; false
	// means evaluation must fall back to the per-frequency LU of the
	// source Block.
	Modal bool
	// Sym reports the symmetric generalized eigenproblem produced this
	// form (real poles, congruence-exact); false means the general
	// diagonalization path did.
	Sym bool
	// Poles holds the q' finite pole locations λₖ.
	Poles []complex128
	// R is q'×p: row k is the output residue vector of pole k.
	R *dense.Mat[complex128]
	// D is the direct (frequency-independent) term, length p; nil when the
	// block has no feedthrough (always, when Cᵢ is nonsingular).
	D []complex128
}

// ModalSystem is a BlockDiagSystem together with the per-block modal forms —
// the "diagonalize once, evaluate in O(q)" fast path. Blocks whose pencils
// defeat the diagonalization (or fail its accuracy self-check) keep Modal ==
// false and evaluate through a fresh LU, so a ModalSystem is always exactly
// as accurate as its source system, merely faster where structure allows.
// A ModalSystem is immutable after construction and safe for concurrent use.
type ModalSystem struct {
	// BD is the source system (used for fallback evaluation and dims).
	BD *BlockDiagSystem
	// Blocks parallels BD.Blocks.
	Blocks []ModalBlock
}

// Dims returns (Σ block orders, M, P) of the source system.
func (ms *ModalSystem) Dims() (n, m, p int) { return ms.BD.Dims() }

// ModalCount returns how many blocks carry a modal form and how many fall
// back to per-frequency LU.
func (ms *ModalSystem) ModalCount() (modal, fallback int) {
	for i := range ms.Blocks {
		if ms.Blocks[i].Modal {
			modal++
		} else {
			fallback++
		}
	}
	return modal, fallback
}

// Validate checks internal consistency of the modal data against the source
// system — the decode-time guard for persisted modal forms.
func (ms *ModalSystem) Validate() error {
	if ms.BD == nil {
		return fmt.Errorf("lti: modal system has no source system")
	}
	if err := ms.BD.Validate(); err != nil {
		return err
	}
	if len(ms.Blocks) != len(ms.BD.Blocks) {
		return fmt.Errorf("lti: %d modal blocks for %d source blocks", len(ms.Blocks), len(ms.BD.Blocks))
	}
	for i := range ms.Blocks {
		mb := &ms.Blocks[i]
		if mb.Input != ms.BD.Blocks[i].Input {
			return fmt.Errorf("lti: modal block %d input %d disagrees with source input %d", i, mb.Input, ms.BD.Blocks[i].Input)
		}
		if !mb.Modal {
			if len(mb.Poles) != 0 || mb.R != nil || mb.D != nil {
				return fmt.Errorf("lti: fallback modal block %d carries modal data", i)
			}
			continue
		}
		if mb.R == nil || mb.R.Rows != len(mb.Poles) || mb.R.Cols != ms.BD.P {
			return fmt.Errorf("lti: modal block %d residue matrix inconsistent", i)
		}
		if mb.D != nil && len(mb.D) != ms.BD.P {
			return fmt.Errorf("lti: modal block %d direct term has length %d, want %d", i, len(mb.D), ms.BD.P)
		}
	}
	return nil
}

// MemBytes estimates the memory retained by the modal data (the source
// system is shared, not counted).
func (ms *ModalSystem) MemBytes() int64 {
	var n int64
	for i := range ms.Blocks {
		mb := &ms.Blocks[i]
		n += 16 * int64(len(mb.Poles)+len(mb.D))
		if mb.R != nil {
			n += 16 * int64(mb.R.Rows) * int64(mb.R.Cols)
		}
	}
	return n
}

// Modalize diagonalizes every block pencil once, producing the ModalSystem
// fast path. Symmetric-definite blocks (RC-grid projections) go through the
// exact generalized symmetric eigendecomposition; other blocks through a
// general diagonalization of (s₀C−G)⁻¹C whose result must survive an
// accuracy self-check against the block's own LU evaluation. Blocks that
// fail either route are kept as LU fallbacks — Modalize degrades per block,
// never fails the whole system, so the only error is an invalid source.
func (bd *BlockDiagSystem) Modalize() (*ModalSystem, error) {
	if err := bd.Validate(); err != nil {
		return nil, err
	}
	ms := &ModalSystem{BD: bd, Blocks: make([]ModalBlock, len(bd.Blocks))}
	for i := range bd.Blocks {
		ms.Blocks[i] = modalizeBlock(&bd.Blocks[i], bd.P)
	}
	return ms, nil
}

// modalizeBlock attempts the symmetric then the general diagonalization,
// self-checking each candidate; any failure degrades to the LU fallback.
func modalizeBlock(b *Block, p int) ModalBlock {
	fallback := ModalBlock{Input: b.Input}
	if symmetricWithin(b.C, modalSymTol) && symmetricWithin(b.G, modalSymTol) {
		if mb, ok := modalizeSym(b, p); ok && selfCheck(b, &mb) {
			return mb
		}
	}
	if mb, ok := modalizeGeneral(b, p); ok {
		return mb
	}
	return fallback
}

// symmetricWithin reports max |A−Aᵀ| ≤ tol·max|A|.
func symmetricWithin(a *dense.Mat[float64], tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	bound := tol * (1 + a.MaxAbs())
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > bound {
				return false
			}
		}
	}
	return true
}

// modalizeSym handles the symmetric-definite case: G·v = λ·C·v with C SPD
// yields real poles λₖ and a C-orthonormal basis V (VᵀCV = I, VᵀGV = Λ), so
// (sC−G)⁻¹ = V·diag(1/(s−λₖ))·Vᵀ exactly. Residue row k is (L·vₖ)·(vₖᵀb).
func modalizeSym(b *Block, p int) (ModalBlock, bool) {
	vals, vecs, err := dense.EigSymGen(b.G, b.C)
	if err != nil {
		return ModalBlock{}, false
	}
	q := len(vals)
	r := dense.NewMat[complex128](q, p)
	keep := 0
	poles := make([]complex128, 0, q)
	for k := 0; k < q; k++ {
		// Input weight vₖᵀ·b folds straight into the residue row.
		var w float64
		for i := 0; i < q; i++ {
			w += vecs.At(i, k) * b.B[i]
		}
		if w == 0 {
			continue // uncontrollable mode: contributes nothing
		}
		for rr := 0; rr < p; rr++ {
			var lv float64
			for i := 0; i < q; i++ {
				lv += b.L.At(rr, i) * vecs.At(i, k)
			}
			r.Set(keep, rr, complex(lv*w, 0))
		}
		poles = append(poles, complex(vals[k], 0))
		keep++
	}
	return ModalBlock{
		Input: b.Input, Modal: true, Sym: true,
		Poles: poles, R: shrinkRows(r, keep),
	}, true
}

// modalShifts are the expansion points tried by the general path; the first
// invertible pencil wins. DefaultS0-adjacent first: the blocks came from a
// Krylov projection around 1e9 rad/s, where the pencil is provably regular.
var modalShifts = []float64{1e9, 1e6, 1e12, 1, 1e3}

// modalizeGeneral diagonalizes K = (s₀C−G)⁻¹C = X·diag(μ)·X⁻¹. Writing
// sC−G = (s₀C−G)·(I−(s₀−s)K) gives, per eigenvalue μₖ:
//
//	μₖ ≠ 0: a finite pole λₖ = s₀ − 1/μₖ with residue (L·xₖ)·(gₖ/μₖ)
//	μₖ ≈ 0: a mode at infinity — a frequency-independent direct term
//
// where g = X⁻¹(s₀C−G)⁻¹b. This works for singular C (the RLC pencils with
// inductor branch rows) where C⁻¹G does not exist. The result is only a
// candidate: non-symmetric eigenvector bases can be ill-conditioned, so the
// caller must self-check it against the LU evaluation before trusting it.
func modalizeGeneral(b *Block, p int) (ModalBlock, bool) {
	for _, s0 := range modalShifts {
		pencil := b.C.Clone().Scale(s0).Sub(b.G)
		lu, err := dense.FactorLU(pencil)
		if err != nil {
			continue
		}
		// Self-check inside the shift loop: an eigenbasis ill-conditioned at
		// one expansion point may be fine at the next, and a single demoted
		// block would push the whole model off the modal fast path.
		if mb, ok := modalizeGeneralAt(b, p, s0, lu); ok && selfCheck(b, &mb) {
			return mb, true
		}
	}
	return ModalBlock{}, false
}

func modalizeGeneralAt(b *Block, px int, s0 float64, lu *dense.LU[float64]) (ModalBlock, bool) {
	q := b.Order()
	k, err := lu.SolveMat(b.C)
	if err != nil {
		return ModalBlock{}, false
	}
	mus, x, err := dense.Eig(k)
	if err != nil {
		return ModalBlock{}, false
	}
	// g = X⁻¹·(s₀C−G)⁻¹·b.
	y := make([]float64, q)
	if err := lu.Solve(y, b.B); err != nil {
		return ModalBlock{}, false
	}
	xlu, err := dense.FactorLU(x)
	if err != nil {
		return ModalBlock{}, false // defective (non-diagonalizable) pencil
	}
	g := make([]complex128, q)
	for i, v := range y {
		g[i] = complex(v, 0)
	}
	if err := xlu.Solve(g, g); err != nil {
		return ModalBlock{}, false
	}
	var muMax float64
	for _, mu := range mus {
		if a := cmplx.Abs(mu); a > muMax {
			muMax = a
		}
	}
	lx := dense.ToComplex(b.L).Mul(x) // p×q: column k is L·xₖ
	r := dense.NewMat[complex128](q, px)
	poles := make([]complex128, 0, q)
	var d []complex128
	keep := 0
	for kk := 0; kk < q; kk++ {
		if g[kk] == 0 {
			continue
		}
		if cmplx.Abs(mus[kk]) <= modalDropTol*muMax || mus[kk] == 0 {
			// Mode at infinity: constant contribution (L·xₖ)·gₖ.
			if d == nil {
				d = make([]complex128, px)
			}
			for rr := 0; rr < px; rr++ {
				d[rr] += lx.At(rr, kk) * g[kk]
			}
			continue
		}
		lambda := complex(s0, 0) - 1/mus[kk]
		if real(lambda) > modalStabTol*(1+cmplx.Abs(lambda)) {
			return ModalBlock{}, false // spurious unstable pole
		}
		w := g[kk] / mus[kk]
		for rr := 0; rr < px; rr++ {
			r.Set(keep, rr, lx.At(rr, kk)*w)
		}
		poles = append(poles, lambda)
		keep++
	}
	return ModalBlock{
		Input: b.Input, Modal: true,
		Poles: poles, R: shrinkRows(r, keep), D: d,
	}, true
}

// shrinkRows returns the first keep rows of r as a tight matrix.
func shrinkRows(r *dense.Mat[complex128], keep int) *dense.Mat[complex128] {
	return &dense.Mat[complex128]{Rows: keep, Cols: r.Cols, Data: r.Data[:keep*r.Cols]}
}

// selfCheck compares the candidate modal column against the block's LU
// evaluation at probe frequencies spread around the block's own pole
// magnitudes (plus the serving sweep range). A block whose relative error
// exceeds modalCheckTol anywhere — or that cannot be compared at any probe
// at all — is rejected: correctness beats speed, and an unverifiable
// candidate is an unaccepted one.
func selfCheck(b *Block, mb *ModalBlock) bool {
	p := mb.R.Cols
	probes := probeFrequencies(mb.Poles)
	modal := make([]complex128, p)
	compared := 0
	for _, s := range probes {
		bf, err := factorBlock(b, s)
		if err != nil {
			continue // the pencil is singular at this probe; skip it
		}
		ref, err := bf.column()
		if err != nil {
			continue
		}
		for r := range modal {
			modal[r] = 0
		}
		mb.accumulateColumn(modal, s)
		var num, den float64
		for r := range ref {
			num += sqAbs(modal[r] - ref[r])
			den += sqAbs(ref[r])
		}
		if den == 0 {
			den = 1
		}
		if math.Sqrt(num) > modalCheckTol*math.Sqrt(den)+1e-300 {
			return false
		}
		compared++
	}
	return compared > 0
}

func sqAbs(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }

// probeFrequencies returns jω probes log-spaced over both the serving sweep
// range and the block's own pole magnitudes, so self-checks exercise the
// frequencies where the block's response actually lives.
func probeFrequencies(poles []complex128) []complex128 {
	lo, hi := 1e5, 1e15
	for _, lam := range poles {
		if a := cmplx.Abs(lam); a > 0 {
			if a/10 < lo {
				lo = a / 10
			}
			if a*10 > hi {
				hi = a * 10
			}
		}
	}
	const n = 7
	probes := make([]complex128, 0, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := 0; i < n; i++ {
		w := math.Pow(10, llo+(lhi-llo)*float64(i)/float64(n-1))
		probes = append(probes, complex(0, w))
	}
	return probes
}

// accumulateColumn adds this block's transfer column at s into dst
// (length p): dst += Σₖ Rₖ/(s−λₖ) + D. Zero allocations, O(q'·p) flops.
//
//pgmor:noalloc
func (mb *ModalBlock) accumulateColumn(dst []complex128, s complex128) {
	for k, lam := range mb.Poles {
		c := 1 / (s - lam)
		row := mb.R.Row(k)
		for r := range dst {
			dst[r] += c * row[r]
		}
	}
	for r, dv := range mb.D {
		dst[r] += dv
	}
}

// EvalColumnInto computes column j of H(s) into dst (length P), using the
// modal form for modal blocks and a fresh LU for fallback blocks. With all
// blocks modal the call performs zero allocations and takes zero locks.
//
//pgmor:noalloc
func (ms *ModalSystem) EvalColumnInto(dst []complex128, s complex128, j int) error {
	if j < 0 || j >= ms.BD.M {
		return fmt.Errorf("lti: column %d out of range %d", j, ms.BD.M)
	}
	if len(dst) != ms.BD.P {
		return fmt.Errorf("lti: modal EvalColumnInto dst length %d, want %d", len(dst), ms.BD.P)
	}
	for r := range dst {
		dst[r] = 0
	}
	var modalBlocks int64
	for i := range ms.Blocks {
		mb := &ms.Blocks[i]
		if mb.Input != j {
			continue
		}
		if mb.Modal {
			mb.accumulateColumn(dst, s)
			modalBlocks++
			continue
		}
		//pgmor:alloc non-modal blocks fall back to a one-shot LU; cold by construction
		if err := ms.fallbackColumn(dst, i, s); err != nil {
			return err
		}
	}
	if modalBlocks > 0 {
		ctrModalEvals.Add(modalBlocks)
	}
	return nil
}

// fallbackColumn adds block i's column at s into dst through a one-shot LU.
// It counts as one factored (block, frequency) evaluation — the serving-path
// telemetry for blocks the diagonalization could not cover.
func (ms *ModalSystem) fallbackColumn(dst []complex128, i int, s complex128) error {
	ctrFactoredEvals.Add(1)
	bf, err := factorBlock(&ms.BD.Blocks[i], s)
	if err != nil {
		return fmt.Errorf("lti: modal fallback block %d: %w", i, err)
	}
	col, err := bf.column()
	if err != nil {
		return err
	}
	for r := range dst {
		dst[r] += col[r]
	}
	return nil
}

// EvalColumn computes column j of H(s).
func (ms *ModalSystem) EvalColumn(s complex128, j int) ([]complex128, error) {
	dst := make([]complex128, ms.BD.P)
	if err := ms.EvalColumnInto(dst, s, j); err != nil {
		return nil, err
	}
	return dst, nil
}

// Eval computes the full p×m transfer matrix H(s) from the modal forms.
// The result matrix and one column of scratch are the only allocations; the
// per-block accumulation loop itself must stay allocation-free.
//
//pgmor:noalloc
func (ms *ModalSystem) Eval(s complex128) (*dense.Mat[complex128], error) {
	h := dense.NewMat[complex128](ms.BD.P, ms.BD.M) //pgmor:alloc the result matrix is the caller's to keep
	col := make([]complex128, ms.BD.P)              //pgmor:alloc one column of scratch per call, O(P)
	var modalBlocks int64
	for i := range ms.Blocks {
		mb := &ms.Blocks[i]
		for r := range col {
			col[r] = 0
		}
		if mb.Modal {
			mb.accumulateColumn(col, s)
			modalBlocks++
			//pgmor:alloc non-modal blocks fall back to a one-shot LU; cold by construction
		} else if err := ms.fallbackColumn(col, i, s); err != nil {
			return nil, err
		}
		j := mb.Input
		for r := 0; r < h.Rows; r++ {
			h.Set(r, j, h.At(r, j)+col[r])
		}
	}
	if modalBlocks > 0 {
		ctrModalEvals.Add(modalBlocks)
	}
	return h, nil
}

// SweepEntryInto evaluates H[row][col](jωₖ) for every ωₖ into dst — the
// vectorized residue pass that replaces per-frequency factorization: each
// pole contributes to all frequencies in one inner loop, O(q'·len(omegas))
// total, with fallback blocks paying one LU per frequency.
//
//pgmor:noalloc
func (ms *ModalSystem) SweepEntryInto(dst []complex128, row, col int, omegas []float64) error {
	if row < 0 || row >= ms.BD.P || col < 0 || col >= ms.BD.M {
		return fmt.Errorf("lti: entry (%d,%d) out of range %d×%d", row, col, ms.BD.P, ms.BD.M)
	}
	if len(dst) != len(omegas) {
		return fmt.Errorf("lti: modal sweep dst length %d, want %d", len(dst), len(omegas))
	}
	for k := range dst {
		dst[k] = 0
	}
	var modalBlocks int64
	var scratch []complex128 // lazily sized; only fallback blocks need it
	for i := range ms.Blocks {
		mb := &ms.Blocks[i]
		if mb.Input != col {
			continue
		}
		if mb.Modal {
			modalBlocks++
			for k := range mb.Poles {
				lam := mb.Poles[k]
				r := mb.R.At(k, row)
				for w, omega := range omegas {
					dst[w] += r / (complex(0, omega) - lam)
				}
			}
			if mb.D != nil {
				dv := mb.D[row]
				for w := range dst {
					dst[w] += dv
				}
			}
			continue
		}
		if scratch == nil {
			scratch = make([]complex128, ms.BD.P) //pgmor:alloc lazy fallback scratch; never taken on fully-modal systems
		}
		for w, omega := range omegas {
			for r := range scratch {
				scratch[r] = 0
			}
			//pgmor:alloc non-modal blocks fall back to one LU per frequency; cold by construction
			if err := ms.fallbackColumn(scratch, i, complex(0, omega)); err != nil {
				return err
			}
			dst[w] += scratch[row]
		}
	}
	if modalBlocks > 0 {
		ctrModalEvals.Add(modalBlocks * int64(len(omegas)))
	}
	return nil
}

// SweepEntry evaluates H[row][col](jωₖ) over the frequency list.
func (ms *ModalSystem) SweepEntry(row, col int, omegas []float64) ([]complex128, error) {
	dst := make([]complex128, len(omegas))
	if err := ms.SweepEntryInto(dst, row, col, omegas); err != nil {
		return nil, err
	}
	return dst, nil
}
