package lti

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// rcSystem builds the scalar RC system: C dx/dt = Gx + Bu with C = c,
// G = -1/r, B = L = 1, so H(s) = 1/(sc + 1/r) = r/(1 + src).
func rcSystem(t *testing.T, r, c float64) *SparseSystem {
	t.Helper()
	cm := sparse.NewCOO[float64](1, 1)
	cm.Add(0, 0, c)
	gm := sparse.NewCOO[float64](1, 1)
	gm.Add(0, 0, -1/r)
	bm := sparse.NewCOO[float64](1, 1)
	bm.Add(0, 0, 1)
	lm := sparse.NewCOO[float64](1, 1)
	lm.Add(0, 0, 1)
	sys, err := NewSparseSystem(cm.ToCSR(), gm.ToCSR(), bm.ToCSR(), lm.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSparseSystemRCAnalytic(t *testing.T) {
	r, c := 100.0, 1e-9
	sys := rcSystem(t, r, c)
	for _, w := range []float64{1e3, 1e6, 1e7 / 3, 1e9} {
		s := complex(0, w)
		h, err := sys.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		want := complex(r, 0) / (1 + s*complex(r*c, 0))
		if cmplx.Abs(h.At(0, 0)-want) > 1e-12*cmplx.Abs(want) {
			t.Fatalf("H(j%g) = %v, want %v", w, h.At(0, 0), want)
		}
		got, err := EvalEntry(sys, s, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(got-want) > 1e-12*cmplx.Abs(want) {
			t.Fatalf("EvalEntry = %v, want %v", got, want)
		}
	}
}

func TestSparseSystemRCMoments(t *testing.T) {
	r, c := 50.0, 2e-9
	sys := rcSystem(t, r, c)
	s0 := 1e8
	// Analytic: M_k = c^k / (s0 c + 1/r)^{k+1}.
	moments, err := sys.Moments(s0, 4)
	if err != nil {
		t.Fatal(err)
	}
	den := s0*c + 1/r
	for k, mk := range moments {
		want := math.Pow(c, float64(k)) / math.Pow(den, float64(k+1))
		if got := mk.At(0, 0); math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("M_%d = %g, want %g", k, got, want)
		}
	}
}

// randomStableSparse builds a small random RC-like descriptor system with m
// inputs and p outputs.
func randomStableSparse(rng *rand.Rand, n, m, p int) *SparseSystem {
	cm := sparse.NewCOO[float64](n, n)
	gm := sparse.NewCOO[float64](n, n)
	for i := 0; i < n; i++ {
		cm.Add(i, i, 1e-9*(1+rng.Float64()))
		gm.Add(i, i, -(1 + rng.Float64()))
	}
	// Random resistive coupling keeping -G diagonally dominant.
	for k := 0; k < 2*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		g := 0.3 * rng.Float64() / float64(2*n)
		gm.Add(i, j, g)
		gm.Add(j, i, g)
		gm.Add(i, i, -g)
		gm.Add(j, j, -g)
	}
	bm := sparse.NewCOO[float64](n, m)
	for j := 0; j < m; j++ {
		bm.Add(rng.Intn(n), j, 1)
	}
	lm := sparse.NewCOO[float64](p, n)
	for i := 0; i < p; i++ {
		lm.Add(i, rng.Intn(n), 1)
	}
	sys, err := NewSparseSystem(cm.ToCSR(), gm.ToCSR(), bm.ToCSR(), lm.ToCSR())
	if err != nil {
		panic(err)
	}
	return sys
}

func TestEvalColumnMatchesEvalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 3+rng.Intn(10), 1+rng.Intn(4), 1+rng.Intn(4)
		sys := randomStableSparse(rng, n, m, p)
		s := complex(0, math.Pow(10, 6+3*rng.Float64()))
		h, err := sys.Eval(s)
		if err != nil {
			return false
		}
		for j := 0; j < m; j++ {
			col, err := sys.EvalColumn(s, j)
			if err != nil {
				return false
			}
			for i := 0; i < p; i++ {
				if cmplx.Abs(col[i]-h.At(i, j)) > 1e-10*(1+cmplx.Abs(h.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDenseMatchesSparseEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sys := randomStableSparse(rng, 8, 3, 2)
	d, err := NewDenseSystem(
		dense.FromRows(sys.C.ToDense()),
		dense.FromRows(sys.G.ToDense()),
		dense.FromRows(sys.B.ToCSR().ToDense()),
		dense.FromRows(sys.L.ToDense()),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{1e5, 1e8, 1e10} {
		s := complex(0, w)
		hs, err := sys.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		hd, err := d.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hs.Data {
			if cmplx.Abs(hs.Data[i]-hd.Data[i]) > 1e-9*(1+cmplx.Abs(hs.Data[i])) {
				t.Fatalf("dense/sparse Eval mismatch at ω=%g", w)
			}
		}
	}
	// Moments must agree too.
	ms, err := sys.Moments(1e9, 3)
	if err != nil {
		t.Fatal(err)
	}
	md, err := d.Moments(1e9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ms {
		for i := range ms[k].Data {
			if math.Abs(ms[k].Data[i]-md[k].Data[i]) > 1e-9*(1+math.Abs(ms[k].Data[i])) {
				t.Fatalf("moment %d mismatch", k)
			}
		}
	}
}

// randomBlockDiag builds a random stable block-diagonal ROM.
func randomBlockDiag(rng *rand.Rand, m, p, l int) *BlockDiagSystem {
	bd := &BlockDiagSystem{M: m, P: p}
	for i := 0; i < m; i++ {
		c := dense.Eye[float64](l)
		g := dense.NewMat[float64](l, l)
		for r := 0; r < l; r++ {
			g.Set(r, r, -(1 + rng.Float64()))
			for cc := 0; cc < l; cc++ {
				if cc != r {
					g.Set(r, cc, 0.1*rng.NormFloat64())
				}
			}
		}
		b := make([]float64, l)
		for r := range b {
			b[r] = rng.NormFloat64()
		}
		lm := dense.NewMat[float64](p, l)
		for r := 0; r < p; r++ {
			for cc := 0; cc < l; cc++ {
				lm.Set(r, cc, rng.NormFloat64())
			}
		}
		bd.Blocks = append(bd.Blocks, Block{C: c, G: g, B: b, L: lm, Input: i})
	}
	return bd
}

func TestBlockDiagEvalMatchesDenseAssembly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, p, l := 1+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(4)
		bd := randomBlockDiag(rng, m, p, l)
		if err := bd.Validate(); err != nil {
			return false
		}
		s := complex(0.3*rng.NormFloat64(), 1+rng.Float64())
		hb, err := bd.Eval(s)
		if err != nil {
			return false
		}
		hd, err := bd.ToDense().Eval(s)
		if err != nil {
			return false
		}
		for i := range hb.Data {
			if cmplx.Abs(hb.Data[i]-hd.Data[i]) > 1e-8*(1+cmplx.Abs(hb.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBlockDiagNNZMatchesAssembly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bd := randomBlockDiag(rng, 5, 3, 4)
	c1, g1, b1, l1 := bd.NNZ()
	c2, g2, b2, l2 := bd.ToDense().NNZ()
	if c1 != c2 || g1 != g2 || b1 != b2 || l1 != l2 {
		t.Fatalf("NNZ mismatch: block (%d,%d,%d,%d) vs dense (%d,%d,%d,%d)",
			c1, g1, b1, l1, c2, g2, b2, l2)
	}
	// Structure claim of the paper: m·l² nonzeros in Gr for the block form.
	if g1 > 5*4*4 {
		t.Errorf("Gr nnz %d exceeds m·l² = %d", g1, 5*4*4)
	}
}

func TestBlockDiagApplyInputOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bd := randomBlockDiag(rng, 3, 2, 2)
	d := bd.ToDense()
	q, m, _ := bd.Dims()
	u := make([]float64, m)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	x := make([]float64, q)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, q)
	want := make([]float64, q)
	bd.ApplyInput(got, u)
	d.ApplyInput(want, u)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ApplyInput mismatch at %d", i)
		}
	}
	gy := bd.ApplyOutput(x)
	wy := d.ApplyOutput(x)
	for i := range gy {
		if math.Abs(gy[i]-wy[i]) > 1e-12 {
			t.Fatalf("ApplyOutput mismatch at %d", i)
		}
	}
}

func TestBlockDiagGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bd := randomBlockDiag(rng, 4, 2, 3)
	var buf bytes.Buffer
	if err := SaveBlockDiag(&buf, bd); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBlockDiag(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 2.0)
	h1, err := bd.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := got.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Data {
		if h1.Data[i] != h2.Data[i] {
			t.Fatal("round-trip changed transfer function")
		}
	}
}

func TestDenseGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bd := randomBlockDiag(rng, 2, 2, 2)
	d := bd.ToDense()
	var buf bytes.Buffer
	if err := SaveDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.C.At(0, 0) != d.C.At(0, 0) || got.B.Rows != d.B.Rows {
		t.Fatal("round-trip mismatch")
	}
}

func TestStableDescriptor(t *testing.T) {
	// Stable: C = I, G = -I. Unstable: G = +I.
	stable, err := NewDenseSystem(dense.Eye[float64](2), dense.Eye[float64](2).Scale(-1),
		dense.NewMat[float64](2, 1), dense.NewMat[float64](1, 2))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := stable.StableDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("stable system reported unstable")
	}
	unstable, err := NewDenseSystem(dense.Eye[float64](2), dense.Eye[float64](2),
		dense.NewMat[float64](2, 1), dense.NewMat[float64](1, 2))
	if err != nil {
		t.Fatal(err)
	}
	ok, err = unstable.StableDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unstable system reported stable")
	}
}

func TestEvalEntryRangeCheck(t *testing.T) {
	sys := rcSystem(t, 1, 1)
	if _, err := EvalEntry(sys, 1i, 1, 0); err == nil {
		t.Error("out-of-range entry accepted")
	}
}
