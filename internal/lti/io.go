package lti

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/dense"
)

// The gob wire types deliberately mirror the public structs field-for-field
// so the on-disk format is stable against internal refactors.

type gobMat struct {
	Rows, Cols int
	Data       []float64
}

func toGobMat(m *dense.Mat[float64]) gobMat {
	return gobMat{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func fromGobMat(g gobMat) *dense.Mat[float64] {
	return &dense.Mat[float64]{Rows: g.Rows, Cols: g.Cols, Data: g.Data}
}

type gobBlock struct {
	C, G, L gobMat
	B       []float64
	Input   int
}

type gobBlockDiag struct {
	Blocks []gobBlock
	M, P   int
}

// SaveBlockDiag serializes a block-diagonal ROM. A saved ROM is the paper's
// "reusable" artifact: build once, simulate under arbitrarily many input
// patterns later (Sec. I criterion 2).
func SaveBlockDiag(w io.Writer, bd *BlockDiagSystem) error {
	if err := bd.Validate(); err != nil {
		return fmt.Errorf("lti: refusing to save invalid ROM: %w", err)
	}
	g := gobBlockDiag{M: bd.M, P: bd.P}
	for i := range bd.Blocks {
		b := &bd.Blocks[i]
		g.Blocks = append(g.Blocks, gobBlock{
			C: toGobMat(b.C), G: toGobMat(b.G), L: toGobMat(b.L),
			B: b.B, Input: b.Input,
		})
	}
	return gob.NewEncoder(w).Encode(&g)
}

// LoadBlockDiag deserializes a block-diagonal ROM saved by SaveBlockDiag.
func LoadBlockDiag(r io.Reader) (*BlockDiagSystem, error) {
	var g gobBlockDiag
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("lti: decoding ROM: %w", err)
	}
	bd := &BlockDiagSystem{M: g.M, P: g.P}
	for i := range g.Blocks {
		gb := &g.Blocks[i]
		bd.Blocks = append(bd.Blocks, Block{
			C: fromGobMat(gb.C), G: fromGobMat(gb.G), L: fromGobMat(gb.L),
			B: gb.B, Input: gb.Input,
		})
	}
	if err := bd.Validate(); err != nil {
		return nil, fmt.Errorf("lti: loaded ROM invalid: %w", err)
	}
	return bd, nil
}

type gobDense struct {
	C, G, B, L gobMat
}

// SaveDense serializes a dense descriptor ROM.
func SaveDense(w io.Writer, d *DenseSystem) error {
	g := gobDense{C: toGobMat(d.C), G: toGobMat(d.G), B: toGobMat(d.B), L: toGobMat(d.L)}
	return gob.NewEncoder(w).Encode(&g)
}

// LoadDense deserializes a dense descriptor ROM saved by SaveDense.
func LoadDense(r io.Reader) (*DenseSystem, error) {
	var g gobDense
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("lti: decoding ROM: %w", err)
	}
	return NewDenseSystem(fromGobMat(g.C), fromGobMat(g.G), fromGobMat(g.B), fromGobMat(g.L))
}
