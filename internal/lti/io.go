package lti

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/dense"
)

// BlockDiagFormatVersion is the on-wire format version written by
// SaveBlockDiag and required by LoadBlockDiag. A persistent ROM store built
// on this format survives process restarts, so the version is checked
// strictly: a stream written by a different version is rejected rather than
// decoded on a best-effort basis, and a content checksum rejects streams
// whose bytes decoded but were corrupted in storage or transit. Bump this
// whenever the encoded shape or semantics change.
const BlockDiagFormatVersion = 1

// The gob wire types deliberately mirror the public structs field-for-field
// so the on-disk format is stable against internal refactors.

type gobMat struct {
	Rows, Cols int
	Data       []float64
}

func toGobMat(m *dense.Mat[float64]) gobMat {
	return gobMat{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func fromGobMat(g gobMat) *dense.Mat[float64] {
	return &dense.Mat[float64]{Rows: g.Rows, Cols: g.Cols, Data: g.Data}
}

// validate rejects decoded matrices whose data length disagrees with their
// declared shape. Mat methods index Data by Rows/Cols arithmetic, so a
// crafted or corrupted stream that lied about its shape would otherwise
// panic (or silently alias memory) on first use instead of failing decode.
func (g *gobMat) validate(what string) error {
	if g.Rows < 0 || g.Cols < 0 {
		return fmt.Errorf("lti: %s has negative shape %d×%d", what, g.Rows, g.Cols)
	}
	if len(g.Data) != g.Rows*g.Cols {
		return fmt.Errorf("lti: %s declares %d×%d but carries %d values", what, g.Rows, g.Cols, len(g.Data))
	}
	return nil
}

type gobBlock struct {
	C, G, L gobMat
	B       []float64
	Input   int
}

type gobBlockDiag struct {
	// Version pins the format; see BlockDiagFormatVersion.
	Version int
	Blocks  []gobBlock
	M, P    int
	// Checksum is an FNV-64a digest of the dimensions and raw float bits of
	// every block, computed by checksumBlockDiag. It detects storage-level
	// corruption (bit flips) that gob itself decodes without complaint.
	Checksum uint64
}

// checksumBlockDiag digests the structural and numeric content of the wire
// form: dimensions, input indices, and the IEEE-754 bit patterns of every
// matrix entry. Float bits (not values) make the digest exact — two ROMs
// differing in one ulp, or a NaN with a flipped payload bit, hash apart.
func checksumBlockDiag(g *gobBlockDiag) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wf := func(vs []float64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	wi(g.M)
	wi(g.P)
	wi(len(g.Blocks))
	for i := range g.Blocks {
		b := &g.Blocks[i]
		wi(b.Input)
		for _, m := range []*gobMat{&b.C, &b.G, &b.L} {
			wi(m.Rows)
			wi(m.Cols)
			wf(m.Data)
		}
		wi(len(b.B))
		wf(b.B)
	}
	return h.Sum64()
}

// SaveBlockDiag serializes a block-diagonal ROM. A saved ROM is the paper's
// "reusable" artifact: build once, simulate under arbitrarily many input
// patterns later (Sec. I criterion 2). The stream carries a format version
// and a content checksum so a loader can distinguish "written by other
// code" from "corrupted in storage" — the persistent ROM store depends on
// both signals to quarantine bad files instead of serving wrong models.
func SaveBlockDiag(w io.Writer, bd *BlockDiagSystem) error {
	if err := bd.Validate(); err != nil {
		return fmt.Errorf("lti: refusing to save invalid ROM: %w", err)
	}
	g := gobBlockDiag{Version: BlockDiagFormatVersion, M: bd.M, P: bd.P}
	for i := range bd.Blocks {
		b := &bd.Blocks[i]
		g.Blocks = append(g.Blocks, gobBlock{
			C: toGobMat(b.C), G: toGobMat(b.G), L: toGobMat(b.L),
			B: b.B, Input: b.Input,
		})
	}
	g.Checksum = checksumBlockDiag(&g)
	return gob.NewEncoder(w).Encode(&g)
}

// LoadBlockDiag deserializes a block-diagonal ROM saved by SaveBlockDiag.
// It rejects — with an error, never a panic and never a silently wrong
// model — streams written by a different format version, streams whose
// content checksum does not match, and streams whose decoded blocks are
// dimensionally inconsistent.
func LoadBlockDiag(r io.Reader) (*BlockDiagSystem, error) {
	var g gobBlockDiag
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("lti: decoding ROM: %w", err)
	}
	if g.Version != BlockDiagFormatVersion {
		return nil, fmt.Errorf("lti: ROM format version %d, this build reads version %d", g.Version, BlockDiagFormatVersion)
	}
	sum := g.Checksum
	g.Checksum = 0
	g.Checksum = checksumBlockDiag(&g)
	if g.Checksum != sum {
		return nil, fmt.Errorf("lti: ROM checksum mismatch (stored %016x, computed %016x): corrupt stream", sum, g.Checksum)
	}
	bd := &BlockDiagSystem{M: g.M, P: g.P}
	for i := range g.Blocks {
		gb := &g.Blocks[i]
		for _, m := range []struct {
			g    *gobMat
			what string
		}{
			{&gb.C, fmt.Sprintf("block %d C", i)},
			{&gb.G, fmt.Sprintf("block %d G", i)},
			{&gb.L, fmt.Sprintf("block %d L", i)},
		} {
			if err := m.g.validate(m.what); err != nil {
				return nil, err
			}
		}
		bd.Blocks = append(bd.Blocks, Block{
			C: fromGobMat(gb.C), G: fromGobMat(gb.G), L: fromGobMat(gb.L),
			B: gb.B, Input: gb.Input,
		})
	}
	if err := bd.Validate(); err != nil {
		return nil, fmt.Errorf("lti: loaded ROM invalid: %w", err)
	}
	return bd, nil
}

type gobDense struct {
	C, G, B, L gobMat
}

// SaveDense serializes a dense descriptor ROM.
func SaveDense(w io.Writer, d *DenseSystem) error {
	g := gobDense{C: toGobMat(d.C), G: toGobMat(d.G), B: toGobMat(d.B), L: toGobMat(d.L)}
	return gob.NewEncoder(w).Encode(&g)
}

// LoadDense deserializes a dense descriptor ROM saved by SaveDense.
func LoadDense(r io.Reader) (*DenseSystem, error) {
	var g gobDense
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("lti: decoding ROM: %w", err)
	}
	for _, m := range []struct {
		g    *gobMat
		what string
	}{{&g.C, "C"}, {&g.G, "G"}, {&g.B, "B"}, {&g.L, "L"}} {
		if err := m.g.validate(m.what); err != nil {
			return nil, err
		}
	}
	return NewDenseSystem(fromGobMat(g.C), fromGobMat(g.G), fromGobMat(g.B), fromGobMat(g.L))
}
