package lti

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/dense"
)

// BlockDiagFormatVersion is the on-wire format version written by
// SaveBlockDiag/SaveModal and required by the loaders. A persistent ROM
// store built on this format survives process restarts, so the version is
// checked strictly: a stream written by a different version is rejected
// rather than decoded on a best-effort basis, and a content checksum rejects
// streams whose bytes decoded but were corrupted in storage or transit. Bump
// this whenever the encoded shape or semantics change.
//
// Version history:
//
//	1: block-diagonal system only
//	2: optional per-block modal section (poles, residue rows, direct term)
//	   so a warm restart recovers the diagonalize-once fast path without
//	   re-running the eigendecompositions
const BlockDiagFormatVersion = 2

// The gob wire types deliberately mirror the public structs field-for-field
// so the on-disk format is stable against internal refactors.

type gobMat struct {
	Rows, Cols int
	Data       []float64
}

func toGobMat(m *dense.Mat[float64]) gobMat {
	return gobMat{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func fromGobMat(g gobMat) *dense.Mat[float64] {
	return &dense.Mat[float64]{Rows: g.Rows, Cols: g.Cols, Data: g.Data}
}

// validate rejects decoded matrices whose data length disagrees with their
// declared shape. Mat methods index Data by Rows/Cols arithmetic, so a
// crafted or corrupted stream that lied about its shape would otherwise
// panic (or silently alias memory) on first use instead of failing decode.
func (g *gobMat) validate(what string) error {
	if g.Rows < 0 || g.Cols < 0 {
		return fmt.Errorf("lti: %s has negative shape %d×%d", what, g.Rows, g.Cols)
	}
	if len(g.Data) != g.Rows*g.Cols {
		return fmt.Errorf("lti: %s declares %d×%d but carries %d values", what, g.Rows, g.Cols, len(g.Data))
	}
	return nil
}

type gobBlock struct {
	C, G, L gobMat
	B       []float64
	Input   int
}

// gobModalBlock is the wire form of one ModalBlock. encoding/gob has no
// complex kinds, so complex data travels as interleaved (re, im) float64
// pairs: Poles holds 2·q' values, R is q'×2p, D holds 2·p values or none.
// A fallback block is {Modal: false} with every slice empty.
type gobModalBlock struct {
	Modal bool
	Sym   bool
	Poles []float64
	R     gobMat
	D     []float64
}

type gobBlockDiag struct {
	// Version pins the format; see BlockDiagFormatVersion.
	Version int
	Blocks  []gobBlock
	M, P    int
	// Modal, when non-empty, parallels Blocks with the diagonalized forms
	// (format version 2). Empty means the stream carries no modal section.
	Modal []gobModalBlock
	// Checksum is an FNV-64a digest of the dimensions and raw float bits of
	// every block, computed by checksumBlockDiag. It detects storage-level
	// corruption (bit flips) that gob itself decodes without complaint.
	Checksum uint64
}

// checksumBlockDiag digests the structural and numeric content of the wire
// form: dimensions, input indices, and the IEEE-754 bit patterns of every
// matrix entry. Float bits (not values) make the digest exact — two ROMs
// differing in one ulp, or a NaN with a flipped payload bit, hash apart.
func checksumBlockDiag(g *gobBlockDiag) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wf := func(vs []float64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	wi(g.M)
	wi(g.P)
	wi(len(g.Blocks))
	for i := range g.Blocks {
		b := &g.Blocks[i]
		wi(b.Input)
		for _, m := range []*gobMat{&b.C, &b.G, &b.L} {
			wi(m.Rows)
			wi(m.Cols)
			wf(m.Data)
		}
		wi(len(b.B))
		wf(b.B)
	}
	wi(len(g.Modal))
	for i := range g.Modal {
		mb := &g.Modal[i]
		flag := 0
		if mb.Modal {
			flag |= 1
		}
		if mb.Sym {
			flag |= 2
		}
		wi(flag)
		wi(len(mb.Poles))
		wf(mb.Poles)
		wi(mb.R.Rows)
		wi(mb.R.Cols)
		wf(mb.R.Data)
		wi(len(mb.D))
		wf(mb.D)
	}
	return h.Sum64()
}

// cplxToFloats flattens complex values to interleaved (re, im) pairs.
func cplxToFloats(zs []complex128) []float64 {
	if len(zs) == 0 {
		return nil
	}
	out := make([]float64, 2*len(zs))
	for i, z := range zs {
		out[2*i] = real(z)
		out[2*i+1] = imag(z)
	}
	return out
}

// floatsToCplx reassembles interleaved (re, im) pairs.
func floatsToCplx(fs []float64, what string) ([]complex128, error) {
	if len(fs)%2 != 0 {
		return nil, fmt.Errorf("lti: %s carries %d floats, want an even count", what, len(fs))
	}
	if len(fs) == 0 {
		return nil, nil
	}
	out := make([]complex128, len(fs)/2)
	for i := range out {
		out[i] = complex(fs[2*i], fs[2*i+1])
	}
	return out, nil
}

// toGobModal flattens one modal block to wire form.
func toGobModal(mb *ModalBlock) gobModalBlock {
	g := gobModalBlock{Modal: mb.Modal, Sym: mb.Sym}
	if !mb.Modal {
		return g
	}
	g.Poles = cplxToFloats(mb.Poles)
	g.R = gobMat{Rows: mb.R.Rows, Cols: 2 * mb.R.Cols, Data: cplxToFloats(mb.R.Data)}
	g.D = cplxToFloats(mb.D)
	return g
}

// fromGobModal rebuilds one modal block; the input index comes from the
// source block (it is structural, not payload). Shape consistency against
// the source system is enforced afterwards by ModalSystem.Validate.
func fromGobModal(g *gobModalBlock, input, i int) (ModalBlock, error) {
	mb := ModalBlock{Input: input, Modal: g.Modal, Sym: g.Sym}
	if !g.Modal {
		if len(g.Poles) != 0 || len(g.R.Data) != 0 || len(g.D) != 0 {
			return ModalBlock{}, fmt.Errorf("lti: modal block %d is a fallback but carries data", i)
		}
		return mb, nil
	}
	var err error
	if mb.Poles, err = floatsToCplx(g.Poles, fmt.Sprintf("modal block %d poles", i)); err != nil {
		return ModalBlock{}, err
	}
	if err := g.R.validate(fmt.Sprintf("modal block %d residues", i)); err != nil {
		return ModalBlock{}, err
	}
	if g.R.Cols%2 != 0 {
		return ModalBlock{}, fmt.Errorf("lti: modal block %d residues have odd wire width %d", i, g.R.Cols)
	}
	rdata, err := floatsToCplx(g.R.Data, fmt.Sprintf("modal block %d residues", i))
	if err != nil {
		return ModalBlock{}, err
	}
	mb.R = &dense.Mat[complex128]{Rows: g.R.Rows, Cols: g.R.Cols / 2, Data: rdata}
	if mb.D, err = floatsToCplx(g.D, fmt.Sprintf("modal block %d direct term", i)); err != nil {
		return ModalBlock{}, err
	}
	return mb, nil
}

// SaveBlockDiag serializes a block-diagonal ROM. A saved ROM is the paper's
// "reusable" artifact: build once, simulate under arbitrarily many input
// patterns later (Sec. I criterion 2). The stream carries a format version
// and a content checksum so a loader can distinguish "written by other
// code" from "corrupted in storage" — the persistent ROM store depends on
// both signals to quarantine bad files instead of serving wrong models.
func SaveBlockDiag(w io.Writer, bd *BlockDiagSystem) error {
	return saveROM(w, bd, nil)
}

// SaveModal serializes a block-diagonal ROM together with its modal form, so
// a loader recovers the factorization-free fast path without re-running the
// per-block eigendecompositions.
func SaveModal(w io.Writer, ms *ModalSystem) error {
	if err := ms.Validate(); err != nil {
		return fmt.Errorf("lti: refusing to save invalid modal ROM: %w", err)
	}
	return saveROM(w, ms.BD, ms)
}

func saveROM(w io.Writer, bd *BlockDiagSystem, ms *ModalSystem) error {
	if err := bd.Validate(); err != nil {
		return fmt.Errorf("lti: refusing to save invalid ROM: %w", err)
	}
	g := gobBlockDiag{Version: BlockDiagFormatVersion, M: bd.M, P: bd.P}
	for i := range bd.Blocks {
		b := &bd.Blocks[i]
		g.Blocks = append(g.Blocks, gobBlock{
			C: toGobMat(b.C), G: toGobMat(b.G), L: toGobMat(b.L),
			B: b.B, Input: b.Input,
		})
	}
	if ms != nil {
		for i := range ms.Blocks {
			g.Modal = append(g.Modal, toGobModal(&ms.Blocks[i]))
		}
	}
	g.Checksum = checksumBlockDiag(&g)
	return gob.NewEncoder(w).Encode(&g)
}

// LoadBlockDiag deserializes a block-diagonal ROM saved by SaveBlockDiag or
// SaveModal, discarding any modal section. It rejects — with an error, never
// a panic and never a silently wrong model — streams written by a different
// format version, streams whose content checksum does not match, and streams
// whose decoded blocks are dimensionally inconsistent.
func LoadBlockDiag(r io.Reader) (*BlockDiagSystem, error) {
	bd, _, err := LoadROM(r)
	return bd, err
}

// LoadROM deserializes a ROM stream, returning the block-diagonal system and
// its modal form when the stream carries one (nil otherwise). Validation
// discipline matches LoadBlockDiag: wrong version, checksum mismatch, and
// shape inconsistencies — in the system or the modal section — are all
// rejected with errors.
func LoadROM(r io.Reader) (*BlockDiagSystem, *ModalSystem, error) {
	var g gobBlockDiag
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, nil, fmt.Errorf("lti: decoding ROM: %w", err)
	}
	if g.Version != BlockDiagFormatVersion {
		return nil, nil, fmt.Errorf("lti: ROM format version %d, this build reads version %d", g.Version, BlockDiagFormatVersion)
	}
	sum := g.Checksum
	g.Checksum = 0
	g.Checksum = checksumBlockDiag(&g)
	if g.Checksum != sum {
		return nil, nil, fmt.Errorf("lti: ROM checksum mismatch (stored %016x, computed %016x): corrupt stream", sum, g.Checksum)
	}
	bd := &BlockDiagSystem{M: g.M, P: g.P}
	for i := range g.Blocks {
		gb := &g.Blocks[i]
		for _, m := range []struct {
			g    *gobMat
			what string
		}{
			{&gb.C, fmt.Sprintf("block %d C", i)},
			{&gb.G, fmt.Sprintf("block %d G", i)},
			{&gb.L, fmt.Sprintf("block %d L", i)},
		} {
			if err := m.g.validate(m.what); err != nil {
				return nil, nil, err
			}
		}
		bd.Blocks = append(bd.Blocks, Block{
			C: fromGobMat(gb.C), G: fromGobMat(gb.G), L: fromGobMat(gb.L),
			B: gb.B, Input: gb.Input,
		})
	}
	if err := bd.Validate(); err != nil {
		return nil, nil, fmt.Errorf("lti: loaded ROM invalid: %w", err)
	}
	if len(g.Modal) == 0 {
		return bd, nil, nil
	}
	if len(g.Modal) != len(bd.Blocks) {
		return nil, nil, fmt.Errorf("lti: stream carries %d modal blocks for %d system blocks", len(g.Modal), len(bd.Blocks))
	}
	ms := &ModalSystem{BD: bd, Blocks: make([]ModalBlock, len(g.Modal))}
	for i := range g.Modal {
		mb, err := fromGobModal(&g.Modal[i], bd.Blocks[i].Input, i)
		if err != nil {
			return nil, nil, err
		}
		ms.Blocks[i] = mb
	}
	if err := ms.Validate(); err != nil {
		return nil, nil, fmt.Errorf("lti: loaded modal form invalid: %w", err)
	}
	return bd, ms, nil
}

type gobDense struct {
	C, G, B, L gobMat
}

// SaveDense serializes a dense descriptor ROM.
func SaveDense(w io.Writer, d *DenseSystem) error {
	g := gobDense{C: toGobMat(d.C), G: toGobMat(d.G), B: toGobMat(d.B), L: toGobMat(d.L)}
	return gob.NewEncoder(w).Encode(&g)
}

// LoadDense deserializes a dense descriptor ROM saved by SaveDense.
func LoadDense(r io.Reader) (*DenseSystem, error) {
	var g gobDense
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("lti: decoding ROM: %w", err)
	}
	for _, m := range []struct {
		g    *gobMat
		what string
	}{{&g.C, "C"}, {&g.G, "G"}, {&g.B, "B"}, {&g.L, "L"}} {
		if err := m.g.validate(m.what); err != nil {
			return nil, err
		}
	}
	return NewDenseSystem(fromGobMat(g.C), fromGobMat(g.G), fromGobMat(g.B), fromGobMat(g.L))
}
