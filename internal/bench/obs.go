package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

// ObsBench is one side of an instrumented-vs-uninstrumented comparison.
type ObsBench struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ObsPair compares one operation with metrics recording off and on.
// OverheadPct is (instrumented − baseline)/baseline in percent; small
// negative values are measurement noise.
type ObsPair struct {
	Name         string   `json:"name"`
	Baseline     ObsBench `json:"baseline"`
	Instrumented ObsBench `json:"instrumented"`
	OverheadPct  float64  `json:"overhead_pct"`
}

// ObsResult is the machine-readable record pgbench emits as BENCH_obs.json:
// what the observability layer costs on the serving hot paths. The contract
// it guards: the warm modal sweep kernel stays at 0 allocs/op with metrics
// enabled, and recording overhead stays within a few percent.
type ObsResult struct {
	Name        string  `json:"name"`
	Benchmark   string  `json:"benchmark"`
	Scale       float64 `json:"scale"`
	Order       int     `json:"order"`
	Blocks      int     `json:"blocks"`
	ModalBlocks int     `json:"modal_blocks"`
	Ports       int     `json:"ports"`
	Outputs     int     `json:"outputs"`
	SweepPoints int     `json:"sweep_points"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	GoVersion   string  `json:"go_version"`

	Pairs []ObsPair `json:"pairs"`

	// KernelAllocsInstrumented and KernelOverheadPct restate the headline
	// guarantee: the warm modal sweep kernel with full per-task recording.
	KernelAllocsInstrumented int64   `json:"kernel_allocs_instrumented"`
	KernelOverheadPct        float64 `json:"kernel_overhead_pct"`
}

// runObsBench runs one closure under testing.Benchmark once.
func runObsBench(fn func(b *testing.B)) ObsBench {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return ObsBench{
		N:           res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// obsPair measures one baseline/instrumented comparison. The two closures run
// interleaved, three reps each, and the fastest rep of each side wins: the
// deltas of interest are tens to hundreds of nanoseconds, well inside the
// drift between two non-adjacent single runs.
func obsPair(name string, baseFn, instrFn func(b *testing.B)) ObsPair {
	var base, instr ObsBench
	for rep := 0; rep < 3; rep++ {
		b := runObsBench(baseFn)
		in := runObsBench(instrFn)
		if rep == 0 || b.NsPerOp < base.NsPerOp {
			base = b
		}
		if rep == 0 || in.NsPerOp < instr.NsPerOp {
			instr = in
		}
	}
	p := ObsPair{Name: name, Baseline: base, Instrumented: instr}
	if base.NsPerOp > 0 {
		p.OverheadPct = (instr.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
	}
	return p
}

// Obs measures what metrics recording costs on the serving hot paths, by
// running each operation twice — against uninstrumented components and
// against components carrying live obs histograms — and reporting the delta:
//
//   - sweep_kernel: the warm modal single-entry sweep (SweepEntryInto into a
//     caller-owned buffer), bare vs wrapped in exactly the per-task recording
//     an instrumented Engine performs (queue-depth atomics, wait and run
//     histogram observations). This is the 0 allocs/op contract.
//   - sweep_serving: the end-to-end Evaluator.SweepEntries request through
//     the worker pool, against an engine with and without Instrument attached.
//   - session_advance: a resumable modal Stepper advancing one chunk, bare vs
//     with the advance-duration histogram observation the session handler adds.
func Obs(cfg Config) (*ObsResult, error) {
	cfg.defaults()
	const name = grid.Ckt1
	sys, _, err := buildSystem(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	sr, rom := runBDSM(sys, grid.MatchedMoments(name), cfg.Workers)
	if sr.Err != nil {
		return nil, sr.Err
	}
	ms, err := rom.Modalize()
	if err != nil {
		return nil, fmt.Errorf("bench: modalize: %w", err)
	}
	modalBlocks, _ := ms.ModalCount()
	order, m, p := rom.Dims()

	// The README's example /sweep request: one entry over a 300-point grid.
	// Each modal sweep is one engine task doing a full vectorized grid pass,
	// so the fixed per-task recording cost is judged against a real request's
	// worth of work.
	const points = 300
	omegas, err := sim.LogGrid(1e5, 1e15, points)
	if err != nil {
		return nil, err
	}

	out := &ObsResult{
		Name:        "obs",
		Benchmark:   name,
		Scale:       cfg.Scale,
		Order:       order,
		Blocks:      len(rom.Blocks),
		ModalBlocks: modalBlocks,
		Ports:       m,
		Outputs:     p,
		SweepPoints: points,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}

	// The live instruments, registered exactly as pgserve registers them.
	reg := obs.NewRegistry()
	taskBuckets := obs.ExpBuckets(1e-6, 4, 12)
	waitHist := reg.Histogram("bench_task_wait_seconds", "Task queue wait.", taskBuckets)
	runHist := reg.Histogram("bench_task_run_seconds", "Task run time.", taskBuckets)
	advHist := reg.Histogram("bench_session_advance_seconds", "Session advance.", taskBuckets)

	// Pair 1 — the warm modal sweep kernel. The instrumented side performs,
	// inline, the exact recording an instrumented Engine adds around a
	// single-task batch: the batch enqueue timestamp, the queue-depth
	// inc/dec, the shared wait-end/run-start clock read, both histogram
	// observations, and the completion counter. All of it is atomic
	// arithmetic on pre-registered instruments, so allocs/op must stay 0.
	dst := make([]complex128, points)
	var queued, completed atomic.Int64
	kernel := obsPair("sweep_kernel",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := ms.SweepEntryInto(dst, 0, 0, omegas); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enqueued := time.Now()
				queued.Add(1)
				queued.Add(-1)
				start := time.Now()
				waitHist.Observe(start.Sub(enqueued).Seconds())
				if err := ms.SweepEntryInto(dst, 0, 0, omegas); err != nil {
					b.Fatal(err)
				}
				runHist.ObserveSince(start)
				completed.Add(1)
			}
		})
	out.Pairs = append(out.Pairs, kernel)
	out.KernelAllocsInstrumented = kernel.Instrumented.AllocsPerOp
	out.KernelOverheadPct = kernel.OverheadPct

	// Pair 2 — the end-to-end /sweep request body: Evaluator.SweepEntries
	// through the worker pool, with and without engine instrumentation. The
	// request itself allocates its response (both sides equally); the delta
	// isolates what Instrument costs at task granularity.
	nodes, _, _ := sys.Dims()
	model := &serve.Model{
		ID: "obsbench", Nodes: nodes, Ports: m, Outputs: p,
		Order: order, Blocks: len(rom.Blocks), ModalBlocks: modalBlocks,
		ROM: rom, Modal: ms,
	}
	entries := []serve.Entry{{Row: 0, Col: 0}}
	ctx := context.Background()

	engBase := serve.NewEngine(cfg.Workers)
	defer engBase.Close()
	evBase := serve.NewEvaluator(engBase, serve.NewFactorCache(0), true)
	engInstr := serve.NewEngine(cfg.Workers)
	defer engInstr.Close()
	engInstr.Instrument(waitHist, runHist)
	evInstr := serve.NewEvaluator(engInstr, serve.NewFactorCache(0), true)
	out.Pairs = append(out.Pairs, obsPair("sweep_serving",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := evBase.SweepEntries(ctx, model, entries, 1e5, 1e15, points); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := evInstr.SweepEntries(ctx, model, entries, 1e5, 1e15, points); err != nil {
					b.Fatal(err)
				}
			}
		}))

	// Pair 3 — one session advance chunk, bare vs with the advance-duration
	// observation the /session/{id}/advance handler records.
	const dt = 1e-11
	chunk := sessionChunk
	input := sim.UniformInput(sim.Sine{Amplitude: 1e-3, Freq: 1e9})
	st, err := sim.NewStepper(ms, sim.StepperOptions{Dt: dt})
	if err != nil {
		return nil, err
	}
	out.Pairs = append(out.Pairs, obsPair("session_advance",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := st.Advance(chunk, input); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := st.Advance(chunk, input); err != nil {
					b.Fatal(err)
				}
				advHist.ObserveSince(t0)
			}
		}))

	return out, nil
}

// Render prints the instrumentation-overhead table.
func (r *ObsResult) Render(w io.Writer) {
	line(w, "%s @ scale %g: order %d, %d blocks (%d modal), %d-point sweeps, GOMAXPROCS %d",
		r.Benchmark, r.Scale, r.Order, r.Blocks, r.ModalBlocks, r.SweepPoints, r.GoMaxProcs)
	line(w, "%-16s %14s %14s %10s %12s %12s", "operation", "base ns/op", "instr ns/op", "overhead", "base allocs", "instr allocs")
	for _, p := range r.Pairs {
		line(w, "%-16s %14.0f %14.0f %9.2f%% %12d %12d",
			p.Name, p.Baseline.NsPerOp, p.Instrumented.NsPerOp, p.OverheadPct,
			p.Baseline.AllocsPerOp, p.Instrumented.AllocsPerOp)
	}
	line(w, "warm modal sweep kernel with metrics: %d allocs/op, %.2f%% ns/op overhead",
		r.KernelAllocsInstrumented, r.KernelOverheadPct)
}

// WriteJSON writes the machine-readable record (BENCH_obs.json).
func (r *ObsResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
