package bench

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"

	"repro/internal/baseline"
	"repro/internal/lti"
	"repro/internal/sim"
)

// Fig5Series is one curve of Fig. 5: |H₁₂(jω)| and its relative error
// against the exact model.
type Fig5Series struct {
	Label     string
	Magnitude []float64
	RelError  []float64
}

// Fig5Result holds the frequency sweep of Fig. 5 for the transfer entry
// port (1,2) — row 0, column 1 in zero-based indexing.
type Fig5Result struct {
	Omega    []float64
	Exact    []float64 // |H₁₂| of the full model
	Series   []Fig5Series
	Row, Col int
}

// MaxRelErrBelow returns a series' maximum relative error at frequencies
// below wLimit — the paper's headline accuracy statement is
// "relative error < 1e-6 for ω < 1e10 rad/s" for BDSM and PRIMA.
func (f *Fig5Result) MaxRelErrBelow(label string, wLimit float64) (float64, error) {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		maxErr := 0.0
		for k, w := range f.Omega {
			if w > wLimit {
				break
			}
			if s.RelError[k] > maxErr {
				maxErr = s.RelError[k]
			}
		}
		return maxErr, nil
	}
	return 0, fmt.Errorf("bench: no Fig5 series %q", label)
}

// Fig5 sweeps H₁₂(jω) over 10⁵–10¹⁵ rad/s for the exact ckt1 analogue and
// the four ROM families (BDSM, PRIMA, SVDMOR, EKS at order l and order m·l),
// reproducing both panels of Fig. 5.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg.defaults()
	sys, _, err := buildSystem("ckt1", cfg.Scale)
	if err != nil {
		return nil, err
	}
	_, m, _ := sys.Dims()
	l := 6
	row, col := 0, 1
	res := &Fig5Result{Row: row, Col: col}

	// Exact reference via sparse complex solves.
	exact, err := sim.ACSweepEntry(sys, row, col, 1e5, 1e15, cfg.SweepPoints)
	if err != nil {
		return nil, err
	}
	for _, pt := range exact {
		res.Omega = append(res.Omega, pt.Omega)
		res.Exact = append(res.Exact, cmplx.Abs(pt.H))
	}

	addSeries := func(label string, approx lti.System) error {
		sw, err := sim.ACSweepEntry(approx, row, col, 1e5, 1e15, cfg.SweepPoints)
		if err != nil {
			return fmt.Errorf("bench: Fig5 %s sweep: %w", label, err)
		}
		s := Fig5Series{Label: label}
		for k, pt := range sw {
			s.Magnitude = append(s.Magnitude, cmplx.Abs(pt.H))
			den := math.Max(cmplx.Abs(exact[k].H), 1e-300)
			s.RelError = append(s.RelError, cmplx.Abs(pt.H-exact[k].H)/den)
		}
		res.Series = append(res.Series, s)
		return nil
	}

	bd, bdsmROM := runBDSM(sys, l, cfg.Workers)
	if bd.Err != nil {
		return nil, bd.Err
	}
	if err := addSeries("BDSM", bdsmROM); err != nil {
		return nil, err
	}
	pr, primaROM := runPRIMA(sys, l, -1)
	if pr.Err != nil {
		return nil, pr.Err
	}
	if err := addSeries("PRIMA", primaROM); err != nil {
		return nil, err
	}
	sv, svdROM := runSVDMOR(sys, l, -1)
	if sv.Err != nil {
		return nil, sv.Err
	}
	if err := addSeries("SVDMOR", svdROM); err != nil {
		return nil, err
	}
	ek, eksROM := runEKS(sys, l)
	if ek.Err != nil {
		return nil, ek.Err
	}
	if err := addSeries(fmt.Sprintf("EKS-%d", l), eksROM); err != nil {
		return nil, err
	}
	// Larger EKS ROM at order m·l (paper: order-306 for ckt1) — still
	// inaccurate for individual transfer entries.
	ekBig, err := baseline.EKS(sys, nil, baseline.Options{Moments: m * l})
	if err != nil {
		return nil, err
	}
	if err := addSeries(fmt.Sprintf("EKS-%d", m*l), ekBig); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints a summary plus the full CSV series (magnitudes and relative
// errors per frequency), which regenerates both panels of Fig. 5.
func (f *Fig5Result) Render(w io.Writer) {
	line(w, "Fig. 5 (measured) — frequency response of port (%d,%d)", f.Row+1, f.Col+1)
	for _, s := range f.Series {
		e10, _ := f.MaxRelErrBelow(s.Label, 1e10)
		eAll, _ := f.MaxRelErrBelow(s.Label, math.Inf(1))
		line(w, "  %-10s max rel err (ω<1e10): %10.3e   overall: %10.3e", s.Label, e10, eAll)
	}
	// CSV panel (a): magnitudes.
	fmt.Fprint(w, "\nomega,exact")
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", s.Label)
	}
	fmt.Fprintln(w)
	for k, om := range f.Omega {
		fmt.Fprintf(w, "%.6e,%.6e", om, f.Exact[k])
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%.6e", s.Magnitude[k])
		}
		fmt.Fprintln(w)
	}
	// CSV panel (b): relative errors.
	fmt.Fprint(w, "\nomega")
	for _, s := range f.Series {
		fmt.Fprintf(w, ",err_%s", s.Label)
	}
	fmt.Fprintln(w)
	for k, om := range f.Omega {
		fmt.Fprintf(w, "%.6e", om)
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%.6e", s.RelError[k])
		}
		fmt.Fprintln(w)
	}
}
