package bench

import (
	"fmt"
	"io"

	"repro/internal/dense"
)

// Fig4Result captures the ROM matrix structure comparison of Fig. 4.
type Fig4Result struct {
	// Gr/Br density percentages for both schemes on the ckt1 analogue.
	BDSMGrPct, BDSMBrPct   float64
	PRIMAGrPct, PRIMABrPct float64
	// BDSMBrPctSquare is Br nonzeros normalized to a q×q canvas — the
	// convention under which the paper reports "0.3% nonzeros in Br".
	BDSMBrPctSquare float64
	ROMSize         int
	// Spy plots (ASCII) of the Gr patterns.
	BDSMSpy, PRIMASpy string
}

// Fig4 reduces the ckt1 analogue with BDSM and PRIMA and reports the ROM
// matrix structures: BDSM's Gr has m·l² nonzeros on a (m·l)² canvas
// (paper: 1.9% for ckt1) while PRIMA's is fully dense.
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg.defaults()
	sys, _, err := buildSystem("ckt1", cfg.Scale)
	if err != nil {
		return nil, err
	}
	l := 6
	bd, bdsmROM := runBDSM(sys, l, cfg.Workers)
	if bd.Err != nil {
		return nil, bd.Err
	}
	pr, primaROM := runPRIMA(sys, l, -1)
	if pr.Err != nil {
		return nil, pr.Err
	}
	q := bd.ROMSize
	_, m, _ := sys.Dims()
	_, _, bnnz, _ := bdsmROM.NNZ()
	res := &Fig4Result{
		BDSMGrPct:       bd.GrNNZPct,
		BDSMBrPct:       bd.BrNNZPct,
		BDSMBrPctSquare: 100 * float64(bnnz) / float64(q*q),
		PRIMAGrPct:      pr.GrNNZPct,
		PRIMABrPct:      pr.BrNNZPct,
		ROMSize:         q,
	}
	res.BDSMSpy = Spy(bdsmROM.ToDense().G, 48)
	res.PRIMASpy = Spy(primaROM.G, 48)
	_ = m
	return res, nil
}

// Render prints the Fig. 4 comparison.
func (f *Fig4Result) Render(w io.Writer) {
	line(w, "Fig. 4 (measured) — ROM matrix structure, ckt1 analogue, ROM size %d", f.ROMSize)
	line(w, "BDSM : Gr %.2f%% nonzeros, Br %.2f%% (of q×m) / %.2f%% (of q×q canvas)",
		f.BDSMGrPct, f.BDSMBrPct, f.BDSMBrPctSquare)
	line(w, "PRIMA: Gr %.2f%% nonzeros, Br %.2f%%", f.PRIMAGrPct, f.PRIMABrPct)
	line(w, "\nBDSM Gr spy:")
	fmt.Fprint(w, f.BDSMSpy)
	line(w, "\nPRIMA Gr spy:")
	fmt.Fprint(w, f.PRIMASpy)
}

// Spy renders the nonzero pattern of a dense matrix as an ASCII grid of at
// most size×size characters ('#' where any covered entry is nonzero).
func Spy(m *dense.Mat[float64], size int) string {
	rows, cols := m.Rows, m.Cols
	if rows == 0 || cols == 0 {
		return "(empty)\n"
	}
	h, w := size, size
	if rows < h {
		h = rows
	}
	if cols < w {
		w = cols
	}
	out := make([]byte, 0, (w+1)*h)
	for bi := 0; bi < h; bi++ {
		r0, r1 := bi*rows/h, (bi+1)*rows/h
		if r1 == r0 {
			r1 = r0 + 1
		}
		for bj := 0; bj < w; bj++ {
			c0, c1 := bj*cols/w, (bj+1)*cols/w
			if c1 == c0 {
				c1 = c0 + 1
			}
			ch := byte('.')
		scan:
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					if m.At(i, j) != 0 {
						ch = '#'
						break scan
					}
				}
			}
			out = append(out, ch)
		}
		out = append(out, '\n')
	}
	return string(out)
}
