package bench

import (
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lti"
)

// AblationRow measures both schemes' orthonormalization work and wall time
// at one port count, holding the grid fixed — the empirical form of the
// paper's m·l(l-1)/2 versus m·l(m·l-1)/2 analysis (Sec. III-B, Fig. 2).
type AblationRow struct {
	Ports          int
	BDSMDots       int64
	PRIMADots      int64
	BDSMTime       time.Duration
	PRIMATime      time.Duration
	TheoryBDSMDots int64 // 2·m·l(l-1)/2 (two MGS passes)
	TheoryPRIMA    int64 // 2·m·l(m·l-1)/2
}

// AblationResult is the orthonormalization-cost sweep.
type AblationResult struct {
	Rows []AblationRow
	L    int
}

// AblationOrthoCost sweeps the port count on a fixed ckt1-class grid and
// measures orthonormalization dot products plus reduction wall time for
// BDSM and PRIMA.
func AblationOrthoCost(cfg Config, portCounts []int) (*AblationResult, error) {
	cfg.defaults()
	if len(portCounts) == 0 {
		portCounts = []int{8, 16, 32}
	}
	l := 6
	res := &AblationResult{L: l}
	for _, ports := range portCounts {
		gcfg, err := grid.Benchmark("ckt1", cfg.Scale)
		if err != nil {
			return nil, err
		}
		gcfg.Ports = ports
		model, err := gcfg.Build()
		if err != nil {
			return nil, err
		}
		sys, err := lti.NewSparseSystem(model.C, model.G, model.B, model.L)
		if err != nil {
			return nil, err
		}
		var bst core.Stats
		t0 := time.Now()
		if _, err := core.Reduce(sys, core.Options{Moments: l, Workers: 1, Stats: &bst}); err != nil {
			return nil, err
		}
		bTime := time.Since(t0)
		var pst baseline.Stats
		t0 = time.Now()
		if _, err := baseline.PRIMA(sys, baseline.Options{Moments: l, MemoryBudget: -1, Stats: &pst}); err != nil {
			return nil, err
		}
		pTime := time.Since(t0)
		res.Rows = append(res.Rows, AblationRow{
			Ports:          ports,
			BDSMDots:       bst.Ortho.DotProducts,
			PRIMADots:      pst.Ortho.DotProducts,
			BDSMTime:       bTime,
			PRIMATime:      pTime,
			TheoryBDSMDots: int64(2 * ports * l * (l - 1) / 2),
			TheoryPRIMA:    int64(2 * ports * l * (ports*l - 1) / 2),
		})
	}
	return res, nil
}

// Render prints the ablation sweep.
func (a *AblationResult) Render(w io.Writer) {
	line(w, "Ablation (measured) — orthonormalization cost vs port count, l = %d", a.L)
	line(w, "%6s | %12s %12s %10s | %12s %12s %10s | %9s",
		"ports", "BDSM dots", "theory", "time", "PRIMA dots", "theory", "time", "dot ratio")
	for _, r := range a.Rows {
		ratio := float64(r.PRIMADots) / float64(r.BDSMDots)
		line(w, "%6d | %12d %12d %10s | %12d %12d %10s | %8.1fx",
			r.Ports, r.BDSMDots, r.TheoryBDSMDots, fmtDuration(r.BDSMTime),
			r.PRIMADots, r.TheoryPRIMA, fmtDuration(r.PRIMATime), ratio)
	}
	line(w, "theory: BDSM 2·m·l(l-1)/2, PRIMA 2·m·l(m·l-1)/2 (two MGS passes); ratio grows ~m.")
}
