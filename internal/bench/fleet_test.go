package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFleetRecord runs the router-tier benchmark harness at a small scale and
// checks the record carries the acceptance signal: zero client-visible errors
// on every point, including the degraded run where one replica flaps 503s and
// the router must absorb the failures with retries.
func TestFleetRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up replica fleets")
	}
	defer func(req, conc int, sizes []int, n int, flap time.Duration, scales []float64) {
		fleetRequests, fleetConcurrency, fleetSizes = req, conc, sizes
		fleetDegradedN, fleetFlapPeriod, fleetModelScales = n, flap, scales
	}(fleetRequests, fleetConcurrency, fleetSizes, fleetDegradedN, fleetFlapPeriod, fleetModelScales)
	fleetRequests = 120
	fleetConcurrency = 4
	fleetSizes = []int{1, 2}
	fleetDegradedN = 2
	fleetFlapPeriod = 20 * time.Millisecond
	fleetModelScales = []float64{0.10, 0.14}

	res, err := Fleet(Config{Scale: 0.1})
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if len(res.Scaling) != 2 {
		t.Fatalf("got %d scaling points, want 2", len(res.Scaling))
	}
	for _, pt := range res.Scaling {
		if pt.ReqPerSec <= 0 || pt.P99Ms <= 0 {
			t.Fatalf("empty measurement: %+v", pt)
		}
		if pt.Errors != 0 {
			t.Errorf("healthy fleet of %d saw %d client-visible errors, want 0", pt.Replicas, pt.Errors)
		}
	}
	if res.Healthy.Errors != 0 {
		t.Errorf("healthy baseline saw %d errors, want 0", res.Healthy.Errors)
	}
	// The router's whole contract: a flapping replica never surfaces to the
	// client, only to the retry counter.
	if res.Degraded.Errors != 0 {
		t.Errorf("degraded fleet saw %d client-visible errors, want 0 (retries %d)",
			res.Degraded.Errors, res.DegradedRetries)
	}

	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back FleetResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if len(back.Scaling) != len(res.Scaling) {
		t.Fatal("record round-trip lost points")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("Render produced nothing")
	}
}
