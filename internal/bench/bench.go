// Package bench regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark suite: Table I (qualitative
// scheme comparison, here backed by measurements), Table II (MOR CPU times
// and ROM sizes on ckt1–ckt5), Fig. 4 (ROM matrix structure), and Fig. 5
// (frequency-response accuracy). Each experiment has a typed result so the
// top-level Go benchmarks and tests can assert on the paper's qualitative
// claims, plus a renderer that prints the table/series.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/lti"
)

// Config controls experiment scale so the suite runs from laptop CI
// (Scale ≈ 0.15) to paper-scale reproduction (Scale = 1).
type Config struct {
	// Scale geometrically scales the ckt1–ckt5 analogues; see grid.Benchmark.
	Scale float64
	// MemoryBudget emulates the paper's 4 GB workstation for the schemes
	// that hold dense bases. 0 means baseline.DefaultMemoryBudget.
	MemoryBudget int64
	// Workers for BDSM's parallel splitted-system reduction (0 = GOMAXPROCS).
	Workers int
	// SweepPoints is the number of frequency samples for Fig. 5. Default 61.
	SweepPoints int
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 0.15
	}
	if c.SweepPoints <= 0 {
		c.SweepPoints = 61
	}
}

// buildSystem constructs the named benchmark at the configured scale.
func buildSystem(name string, scale float64) (*lti.SparseSystem, grid.Config, error) {
	cfg, err := grid.Benchmark(name, scale)
	if err != nil {
		return nil, cfg, err
	}
	model, err := cfg.Build()
	if err != nil {
		return nil, cfg, err
	}
	sys, err := lti.NewSparseSystem(model.C, model.G, model.B, model.L)
	if err != nil {
		return nil, cfg, err
	}
	return sys, cfg, nil
}

// SchemeResult is one scheme's outcome on one benchmark circuit.
type SchemeResult struct {
	Scheme    string
	MORTime   time.Duration
	ROMSize   int
	BrokeDown bool
	Err       error
	// GrNNZPct and BrNNZPct are the ROM matrix densities in percent
	// (Fig. 4's numbers). Zero when not measured.
	GrNNZPct, BrNNZPct float64
}

func fmtDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// runBDSM runs BDSM and reports timing/size.
func runBDSM(sys *lti.SparseSystem, l, workers int) (SchemeResult, *lti.BlockDiagSystem) {
	start := time.Now()
	rom, err := core.Reduce(sys, core.Options{Moments: l, Workers: workers})
	res := SchemeResult{Scheme: "BDSM", MORTime: time.Since(start), Err: err}
	if err != nil {
		return res, nil
	}
	q, _, _ := rom.Dims()
	res.ROMSize = q
	_, m, _ := sys.Dims()
	_, gnnz, bnnz, _ := rom.NNZ()
	res.GrNNZPct = 100 * float64(gnnz) / float64(q*q)
	res.BrNNZPct = 100 * float64(bnnz) / float64(q*m)
	return res, rom
}

// runPRIMA runs PRIMA under the memory budget.
func runPRIMA(sys *lti.SparseSystem, l int, budget int64) (SchemeResult, *lti.DenseSystem) {
	start := time.Now()
	rom, err := baseline.PRIMA(sys, baseline.Options{Moments: l, MemoryBudget: budget})
	res := SchemeResult{Scheme: "PRIMA", MORTime: time.Since(start), Err: err}
	if err != nil {
		res.BrokeDown = true
		return res, nil
	}
	q, _, _ := rom.Dims()
	res.ROMSize = q
	_, m, _ := sys.Dims()
	_, gnnz, bnnz, _ := rom.NNZ()
	res.GrNNZPct = 100 * float64(gnnz) / float64(q*q)
	res.BrNNZPct = 100 * float64(bnnz) / float64(q*m)
	return res, rom
}

// runSVDMOR runs SVDMOR with the paper's α ≈ 0.6.
func runSVDMOR(sys *lti.SparseSystem, l int, budget int64) (SchemeResult, *baseline.SVDMORROM) {
	start := time.Now()
	rom, err := baseline.SVDMOR(sys, 0.6, baseline.Options{Moments: l, MemoryBudget: budget})
	res := SchemeResult{Scheme: "SVDMOR", MORTime: time.Since(start), Err: err}
	if err != nil {
		res.BrokeDown = true
		return res, nil
	}
	res.ROMSize = rom.Order()
	return res, rom
}

// runEKS runs EKS with the paper's all-unit-impulse excitation.
func runEKS(sys *lti.SparseSystem, l int) (SchemeResult, *baseline.EKSROM) {
	start := time.Now()
	rom, err := baseline.EKS(sys, nil, baseline.Options{Moments: l})
	res := SchemeResult{Scheme: "EKS", MORTime: time.Since(start), Err: err}
	if err != nil {
		return res, nil
	}
	res.ROMSize = rom.Order()
	return res, rom
}

// primaDirect builds a PRIMA ROM without budget guard (helper for figures).
func primaDirect(sys *lti.SparseSystem, l int) (*lti.DenseSystem, error) {
	op, err := krylov.NewOperator(sys, core.DefaultS0, krylov.OperatorOptions{})
	if err != nil {
		return nil, err
	}
	r, err := op.StartBlock()
	if err != nil {
		return nil, err
	}
	basis, err := krylov.BlockArnoldi(op, r, l, nil)
	if err != nil {
		return nil, err
	}
	return krylov.Congruence(sys, basis), nil
}

// line prints a formatted row with a trailing newline.
func line(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}

// CountMatchedMoments numerically compares moments of a reduced system
// against the original around s0 and returns how many leading moments agree
// within relative tolerance tol.
func CountMatchedMoments(sys *lti.SparseSystem, red *lti.DenseSystem, s0 float64, maxCount int, tol float64) (int, error) {
	mo, err := sys.Moments(s0, maxCount)
	if err != nil {
		return 0, err
	}
	mr, err := red.Moments(s0, maxCount)
	if err != nil {
		return 0, err
	}
	count := 0
	for k := 0; k < maxCount; k++ {
		scale := mo[k].MaxAbs()
		if scale == 0 {
			break
		}
		if mo[k].Sub(mr[k]).MaxAbs() > tol*scale {
			break
		}
		count++
	}
	return count, nil
}

// relTransferError computes the Frobenius-relative transfer error of any
// system against the exact model at s = jω.
func relTransferError(sys *lti.SparseSystem, approx lti.System, w float64) (float64, error) {
	hx, err := sys.Eval(complex(0, w))
	if err != nil {
		return 0, err
	}
	ha, err := approx.Eval(complex(0, w))
	if err != nil {
		return 0, err
	}
	num, den := 0.0, 0.0
	for i := range hx.Data {
		d := hx.Data[i] - ha.Data[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(hx.Data[i])*real(hx.Data[i]) + imag(hx.Data[i])*imag(hx.Data[i])
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}
