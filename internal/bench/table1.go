package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/lti"
)

// Table1Row is one scheme's measured profile, the empirical counterpart of
// the paper's qualitative Table I.
type Table1Row struct {
	Scheme string
	// ROMSize is the reduced order q.
	ROMSize int
	// Pattern classifies the ROM system matrices ("block-diagonal" /
	// "full dense" / "full dense, compressed ports").
	Pattern string
	// GrDensityPct is the measured density of Gr in percent.
	GrDensityPct float64
	// MatchedMoments is the numerically verified count of exactly matched
	// transfer moments (0 when the scheme does not match true moments).
	MatchedMoments int
	// ReuseError is the relative output error under a fresh excitation
	// pattern the ROM was not built for (reusable ⇔ small).
	ReuseError float64
	// Reusable and Scalable summarize the measured behaviour.
	Reusable bool
	// MemGrowth is peak basis memory at 2×ports divided by peak at 1×ports
	// (≈1 ⇒ scalable streaming; ≈2 ⇒ memory grows with port count).
	MemGrowth float64
	Scalable  bool
}

// Table1Result collects all scheme rows.
type Table1Result struct {
	Rows []Table1Row
	// L is the matched moment count used.
	L int
}

// TableI measures the Table I comparison on a ckt1-class grid: ROM size and
// pattern, numerically verified moment matching, reuse error under an
// unseen excitation, and memory scaling with port count.
func TableI(cfg Config) (*Table1Result, error) {
	cfg.defaults()
	sys, gcfg, err := buildSystem("ckt1", cfg.Scale)
	if err != nil {
		return nil, err
	}
	l := 6
	s0 := core.DefaultS0
	_, m, p := sys.Dims()
	res := &Table1Result{L: l}

	// Reusability test: every scheme is built assuming nothing beyond its
	// own inputs (EKS bakes in the all-ones excitation). A ROM is reusable
	// when its error under a fresh pattern stays comparable to its error
	// under the build-time (all-ones) pattern, instead of degrading.
	newPattern := make([]complex128, m)
	onesPattern := make([]complex128, m)
	for j := range newPattern {
		newPattern[j] = complex(float64(1+j%3), 0)
		onesPattern[j] = 1
	}
	wTest := 3e8
	patternErr := func(approx lti.System, u []complex128) (float64, error) {
		hx, err := sys.Eval(complex(0, wTest))
		if err != nil {
			return 0, err
		}
		ha, err := approx.Eval(complex(0, wTest))
		if err != nil {
			return 0, err
		}
		yx := hx.MulVec(u)
		ya := ha.MulVec(u)
		num, den := 0.0, 0.0
		for i := 0; i < p; i++ {
			d := yx[i] - ya[i]
			num += real(d)*real(d) + imag(d)*imag(d)
			den += real(yx[i])*real(yx[i]) + imag(yx[i])*imag(yx[i])
		}
		return math.Sqrt(num / den), nil
	}
	// reuseErr returns the fresh-pattern error; reusable compares it to the
	// build-time-pattern error with 10× slack plus an absolute floor.
	reuseErr := func(approx lti.System) (float64, error) {
		return patternErr(approx, newPattern)
	}
	reusable := func(approx lti.System, errNew float64) (bool, error) {
		errBuild, err := patternErr(approx, onesPattern)
		if err != nil {
			return false, err
		}
		return errNew <= 10*errBuild+1e-6, nil
	}

	// Memory growth: rebuild the same grid with twice the ports and compare
	// peak basis bytes per scheme (measured for BDSM, analytic n·q·8-style
	// model for the full-basis schemes, identical to their budget check).
	gcfg2 := gcfg
	gcfg2.Ports = 2 * gcfg.Ports
	model2, err := gcfg2.Build()
	if err != nil {
		return nil, err
	}
	sys2, err := lti.NewSparseSystem(model2.C, model2.G, model2.B, model2.L)
	if err != nil {
		return nil, err
	}

	// --- BDSM ---
	var bdsmStats, bdsmStats2 core.Stats
	bdsmROM, err := core.Reduce(sys, core.Options{Moments: l, Workers: cfg.Workers, Stats: &bdsmStats})
	if err != nil {
		return nil, fmt.Errorf("bench: TableI BDSM: %w", err)
	}
	if _, err := core.Reduce(sys2, core.Options{Moments: l, Workers: cfg.Workers, Stats: &bdsmStats2}); err != nil {
		return nil, err
	}
	q, _, _ := bdsmROM.Dims()
	_, gnnz, _, _ := bdsmROM.NNZ()
	mm, err := CountMatchedMoments(sys, bdsmROM.ToDense(), s0, l, 1e-5)
	if err != nil {
		return nil, err
	}
	re, err := reuseErr(bdsmROM)
	if err != nil {
		return nil, err
	}
	ru, err := reusable(bdsmROM, re)
	if err != nil {
		return nil, err
	}
	growth := float64(bdsmStats2.PeakBasisBytes) / float64(bdsmStats.PeakBasisBytes)
	res.Rows = append(res.Rows, Table1Row{
		Scheme:         "BDSM",
		ROMSize:        q,
		Pattern:        "block-diagonal",
		GrDensityPct:   100 * float64(gnnz) / float64(q*q),
		MatchedMoments: mm,
		ReuseError:     re,
		Reusable:       ru,
		MemGrowth:      growth,
		Scalable:       growth < 1.5,
	})

	// --- PRIMA ---
	primaRes, primaROM := runPRIMA(sys, l, -1)
	if primaRes.Err != nil {
		return nil, primaRes.Err
	}
	mm, err = CountMatchedMoments(sys, primaROM, s0, l, 1e-5)
	if err != nil {
		return nil, err
	}
	re, err = reuseErr(primaROM)
	if err != nil {
		return nil, err
	}
	ru, err = reusable(primaROM, re)
	if err != nil {
		return nil, err
	}
	n, _, _ := sys.Dims()
	growth = float64(basisBytesModel(n, 2*m*l)) / float64(basisBytesModel(n, m*l))
	res.Rows = append(res.Rows, Table1Row{
		Scheme:         "PRIMA",
		ROMSize:        primaRes.ROMSize,
		Pattern:        "full dense",
		GrDensityPct:   primaRes.GrNNZPct,
		MatchedMoments: mm,
		ReuseError:     re,
		Reusable:       ru,
		MemGrowth:      growth,
		Scalable:       growth < 1.5,
	})

	// --- SVDMOR ---
	svdRes, svdROM := runSVDMOR(sys, l, -1)
	if svdRes.Err != nil {
		return nil, svdRes.Err
	}
	// Moment matching of the wrapped ROM: count via transfer comparison is
	// not applicable (ports are compressed); the true moments are not
	// matched, which we verify by checking the zeroth moment error is
	// nonzero.
	re, err = reuseErr(svdROM)
	if err != nil {
		return nil, err
	}
	ru, err = reusable(svdROM, re)
	if err != nil {
		return nil, err
	}
	mmSVD := 0
	if e0, err := relTransferError(sys, svdROM, 1); err == nil && e0 < 1e-20 {
		mmSVD = 1 // degenerate case: compression happened to be exact
	}
	res.Rows = append(res.Rows, Table1Row{
		Scheme:         "SVDMOR",
		ROMSize:        svdRes.ROMSize,
		Pattern:        "full dense, compressed ports",
		GrDensityPct:   100,
		MatchedMoments: mmSVD,
		ReuseError:     re,
		Reusable:       ru,
		MemGrowth:      2,
		Scalable:       false,
	})

	// --- EKS ---
	eksRes, eksROM := runEKS(sys, l)
	if eksRes.Err != nil {
		return nil, eksRes.Err
	}
	re, err = reuseErr(eksROM)
	if err != nil {
		return nil, err
	}
	ru, err = reusable(eksROM, re)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Scheme:         "EKS",
		ROMSize:        eksRes.ROMSize,
		Pattern:        "full dense (single input)",
		GrDensityPct:   100,
		MatchedMoments: 0, // response moments, not transfer moments
		ReuseError:     re,
		Reusable:       ru,
		MemGrowth:      1,
		Scalable:       false,
	})
	return res, nil
}

// basisBytesModel mirrors baseline.basisBudgetBytes for growth estimation.
func basisBytesModel(n, q int) int64 {
	return int64(n)*int64(q)*8*2 + int64(q)*int64(q)*8*3
}

// Render prints the measured Table I.
func (t *Table1Result) Render(w io.Writer) {
	line(w, "Table I (measured) — multi-port MOR scheme comparison, l = %d", t.L)
	line(w, "%-8s %8s  %-28s %8s  %7s  %10s  %8s  %8s",
		"scheme", "ROM size", "ROM pattern", "Gr nnz%", "moments", "reuse err", "reusable", "scalable")
	for _, r := range t.Rows {
		line(w, "%-8s %8d  %-28s %8.1f  %7d  %10.2e  %8v  %8v",
			r.Scheme, r.ROMSize, r.Pattern, r.GrDensityPct, r.MatchedMoments,
			r.ReuseError, r.Reusable, r.Scalable)
	}
}
