package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestObsRecord runs the instrumentation-overhead harness at a small scale
// and checks the record carries the acceptance signal: the warm modal sweep
// kernel stays allocation-free with metrics recording enabled.
func TestObsRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-benchmarks")
	}
	res, err := Obs(Config{Scale: 0.1, Workers: 2})
	if err != nil {
		t.Fatalf("Obs: %v", err)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("got %d pairs, want 3: %+v", len(res.Pairs), res.Pairs)
	}
	byName := map[string]ObsPair{}
	for _, p := range res.Pairs {
		if p.Baseline.NsPerOp <= 0 || p.Instrumented.NsPerOp <= 0 {
			t.Fatalf("empty measurement in pair %q: %+v", p.Name, p)
		}
		byName[p.Name] = p
	}
	for _, want := range []string{"sweep_kernel", "sweep_serving", "session_advance"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing pair %q", want)
		}
	}

	// The headline contract: instrumenting the warm modal sweep kernel adds
	// no allocations. (The ns/op overhead bound is asserted loosely here —
	// CI machines are noisy — and precisely by the committed BENCH_obs.json.)
	k := byName["sweep_kernel"]
	if k.Instrumented.AllocsPerOp != 0 {
		t.Errorf("instrumented sweep kernel allocates: %d allocs/op", k.Instrumented.AllocsPerOp)
	}
	if res.KernelAllocsInstrumented != 0 {
		t.Errorf("KernelAllocsInstrumented = %d, want 0", res.KernelAllocsInstrumented)
	}
	if k.OverheadPct > 50 {
		t.Errorf("sweep kernel overhead %.1f%% is far beyond the ≤5%% target", k.OverheadPct)
	}
	if byName["session_advance"].Instrumented.AllocsPerOp != byName["session_advance"].Baseline.AllocsPerOp {
		t.Errorf("session advance instrumentation changed allocs: base %d, instr %d",
			byName["session_advance"].Baseline.AllocsPerOp,
			byName["session_advance"].Instrumented.AllocsPerOp)
	}

	path := filepath.Join(t.TempDir(), "BENCH_obs.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ObsResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if len(back.Pairs) != len(res.Pairs) {
		t.Fatal("record round-trip lost pairs")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("Render produced nothing")
	}
}
