package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/grid"
	"repro/internal/serve"
	"repro/internal/sim"
)

// BatchResult is the machine-readable record pgbench emits as
// BENCH_batch.json: what fused multi-tenant evaluation buys over per-request
// dispatch. Three contracts in one record:
//
//   - group advance: aggregate steps/sec of N same-model sessions advanced
//     through one fused StepperGroup pass versus independent per-session
//     Advance calls (the ≥3× criterion);
//   - sweep coalescing: aggregate sweep throughput of N concurrent clients
//     merged by the SweepCoalescer into batched packed-kernel calls versus
//     the same clients issuing direct per-request evaluations (the ≥2×
//     criterion);
//   - single-request guard: an uncontended single-entry sweep through the
//     coalescer versus the plain Evaluator — the batching layer must cost
//     nothing when there is nothing to batch (≤5% ns/op, kernel stays at
//     0 allocs/op).
type BatchResult struct {
	Name        string  `json:"name"`
	Benchmark   string  `json:"benchmark"`
	Scale       float64 `json:"scale"`
	Order       int     `json:"order"`
	Blocks      int     `json:"blocks"`
	ModalBlocks int     `json:"modal_blocks"`
	Ports       int     `json:"ports"`
	Outputs     int     `json:"outputs"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	GoVersion   string  `json:"go_version"`

	// Fused group advance vs independent per-session advance.
	GroupSessions          int     `json:"group_sessions"`
	GroupChunk             int     `json:"group_chunk"`
	IndependentStepsPerSec float64 `json:"independent_steps_per_sec"`
	FusedStepsPerSec       float64 `json:"fused_steps_per_sec"`
	GroupSpeedup           float64 `json:"group_speedup"`

	// Coalesced vs direct concurrent sweeps.
	SweepClients          int     `json:"sweep_clients"`
	SweepPoints           int     `json:"sweep_points"`
	DirectSweepsPerSec    float64 `json:"direct_sweeps_per_sec"`
	CoalescedSweepsPerSec float64 `json:"coalesced_sweeps_per_sec"`
	SweepSpeedup          float64 `json:"sweep_speedup"`

	// Uncontended single-request path through the coalescer.
	SingleDirectNs    float64 `json:"single_direct_ns"`
	SingleCoalescedNs float64 `json:"single_coalesced_ns"`
	SingleOverheadPct float64 `json:"single_overhead_pct"`
	// KernelAllocsPerOp is the warm single-entry modal sweep kernel's
	// allocs/op — the 0 allocs/op contract restated under the batching layer.
	KernelAllocsPerOp int64 `json:"kernel_allocs_per_op"`
}

// batchSessions, batchChunk, and batchClients shape the experiment; variables
// so the test harness can shrink them.
var (
	batchSessions = 256
	batchChunk    = 64
	batchClients  = 64
)

// Batch measures the fused multi-tenant evaluation paths on one reduced
// model: StepperGroup advance fusion across many same-model sessions, and
// SweepCoalescer request batching across many concurrent sweep clients.
func Batch(cfg Config) (*BatchResult, error) {
	cfg.defaults()
	const name = grid.Ckt1
	sys, _, err := buildSystem(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	sr, rom := runBDSM(sys, grid.MatchedMoments(name), cfg.Workers)
	if sr.Err != nil {
		return nil, sr.Err
	}
	ms, err := rom.Modalize()
	if err != nil {
		return nil, fmt.Errorf("bench: modalize: %w", err)
	}
	modalBlocks, _ := ms.ModalCount()
	order, m, p := rom.Dims()

	out := &BatchResult{
		Name:        "batch",
		Benchmark:   name,
		Scale:       cfg.Scale,
		Order:       order,
		Blocks:      len(rom.Blocks),
		ModalBlocks: modalBlocks,
		Ports:       m,
		Outputs:     p,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),

		GroupSessions: batchSessions,
		GroupChunk:    batchChunk,
		SweepClients:  batchClients,
		SweepPoints:   300,
	}

	// ---- fused group advance vs independent per-session advance ----

	const dt = 1e-11
	input := sim.Sine{Amplitude: 1e-3, Freq: 1e9}
	mkSessions := func() ([]*sim.Stepper, []sim.Input, error) {
		sts := make([]*sim.Stepper, batchSessions)
		inputs := make([]sim.Input, batchSessions)
		for i := range sts {
			st, err := sim.NewStepper(ms, sim.StepperOptions{Dt: dt})
			if err != nil {
				return nil, nil, err
			}
			sts[i] = st
			inputs[i] = sim.UniformInput(input)
		}
		return sts, inputs, nil
	}

	sts, inputs, err := mkSessions()
	if err != nil {
		return nil, err
	}
	indep := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := range sts {
				if _, err := sts[s].Advance(batchChunk, inputs[s]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	if secs := indep.T.Seconds(); secs > 0 {
		out.IndependentStepsPerSec = float64(batchSessions*batchChunk*indep.N) / secs
	}

	sts, inputs, err = mkSessions()
	if err != nil {
		return nil, err
	}
	g, err := sim.NewStepperGroup(sts, sim.GroupOptions{})
	if err != nil {
		return nil, err
	}
	fused := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Advance(batchChunk, inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
	if secs := fused.T.Seconds(); secs > 0 {
		out.FusedStepsPerSec = float64(batchSessions*batchChunk*fused.N) / secs
	}
	if out.IndependentStepsPerSec > 0 {
		out.GroupSpeedup = out.FusedStepsPerSec / out.IndependentStepsPerSec
	}

	// ---- coalesced vs direct concurrent sweeps ----

	nodes, _, _ := sys.Dims()
	model := &serve.Model{
		ID: "batchbench", Nodes: nodes, Ports: m, Outputs: p,
		Order: order, Blocks: len(rom.Blocks), ModalBlocks: modalBlocks,
		ROM: rom, Modal: ms, Packed: ms.Pack(),
	}
	eng := serve.NewEngine(cfg.Workers)
	defer eng.Close()
	ev := serve.NewEvaluator(eng, serve.NewFactorCache(0), true)
	coal := serve.NewSweepCoalescer(ev)
	ctx := context.Background()

	// Every client polls its own transfer-function entry on the shared
	// default grid — the multi-tenant dashboard shape. Entries are assigned
	// round-robin so the coalesced union is (up to) Outputs×Ports distinct
	// entries per batch, not one deduplicated entry; the speedup measured is
	// kernel batching, not request dedup.
	entryFor := func(i int) serve.Entry {
		return serve.Entry{Row: i % p, Col: (i / p) % m}
	}
	const wMin, wMax = 1e5, 1e15
	points := out.SweepPoints

	concurrent := func(sweep func(e serve.Entry) error) *testing.BenchmarkResult {
		var next atomic.Int64
		res := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism((batchClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			b.RunParallel(func(pb *testing.PB) {
				e := entryFor(int(next.Add(1) - 1))
				for pb.Next() {
					if err := sweep(e); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		return &res
	}

	direct := concurrent(func(e serve.Entry) error {
		_, err := ev.SweepEntries(ctx, model, []serve.Entry{e}, wMin, wMax, points)
		return err
	})
	if secs := direct.T.Seconds(); secs > 0 {
		out.DirectSweepsPerSec = float64(direct.N) / secs
	}
	coalesced := concurrent(func(e serve.Entry) error {
		_, err := coal.SweepEntries(ctx, model, []serve.Entry{e}, wMin, wMax, points)
		return err
	})
	if secs := coalesced.T.Seconds(); secs > 0 {
		out.CoalescedSweepsPerSec = float64(coalesced.N) / secs
	}
	if out.DirectSweepsPerSec > 0 {
		out.SweepSpeedup = out.CoalescedSweepsPerSec / out.DirectSweepsPerSec
	}

	// ---- uncontended single-request guard ----

	single := obsPair("single_sweep",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ev.SweepEntries(ctx, model, []serve.Entry{{Row: 0, Col: 0}}, wMin, wMax, points); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coal.SweepEntries(ctx, model, []serve.Entry{{Row: 0, Col: 0}}, wMin, wMax, points); err != nil {
					b.Fatal(err)
				}
			}
		})
	out.SingleDirectNs = single.Baseline.NsPerOp
	out.SingleCoalescedNs = single.Instrumented.NsPerOp
	out.SingleOverheadPct = single.OverheadPct

	omegas, err := sim.LogGrid(wMin, wMax, points)
	if err != nil {
		return nil, err
	}
	dst := make([]complex128, points)
	kernel := runObsBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ms.SweepEntryInto(dst, 0, 0, omegas); err != nil {
				b.Fatal(err)
			}
		}
	})
	out.KernelAllocsPerOp = kernel.AllocsPerOp

	return out, nil
}

// Render prints the batched-evaluation table.
func (r *BatchResult) Render(w io.Writer) {
	line(w, "%s @ scale %g: order %d, %d blocks (%d modal), %d ports × %d outputs, GOMAXPROCS %d",
		r.Benchmark, r.Scale, r.Order, r.Blocks, r.ModalBlocks, r.Ports, r.Outputs, r.GoMaxProcs)
	line(w, "group advance, %d sessions × %d-step chunks:", r.GroupSessions, r.GroupChunk)
	line(w, "  independent %10.0f steps/s", r.IndependentStepsPerSec)
	line(w, "  fused       %10.0f steps/s   %.2f×", r.FusedStepsPerSec, r.GroupSpeedup)
	line(w, "concurrent sweeps, %d clients × %d-point grids:", r.SweepClients, r.SweepPoints)
	line(w, "  direct      %10.1f sweeps/s", r.DirectSweepsPerSec)
	line(w, "  coalesced   %10.1f sweeps/s   %.2f×", r.CoalescedSweepsPerSec, r.SweepSpeedup)
	line(w, "uncontended single sweep: direct %.0f ns, coalesced %.0f ns (%+.2f%%); kernel %d allocs/op",
		r.SingleDirectNs, r.SingleCoalescedNs, r.SingleOverheadPct, r.KernelAllocsPerOp)
}

// WriteJSON writes the machine-readable record (BENCH_batch.json).
func (r *BatchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
