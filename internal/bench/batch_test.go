package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBatchRecord runs the fused-evaluation benchmark harness at a small
// scale and checks the record carries the acceptance signals: fused group
// advance beats independent per-session advance, coalesced sweeps beat
// direct per-request sweeps, and the single-request path stays allocation
// free.
func TestBatchRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-benchmarks")
	}
	defer func(s, c, cl int) { batchSessions, batchChunk, batchClients = s, c, cl }(batchSessions, batchChunk, batchClients)
	batchSessions = 32
	batchChunk = 32
	batchClients = 8

	res, err := Batch(Config{Scale: 0.1})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if res.IndependentStepsPerSec <= 0 || res.FusedStepsPerSec <= 0 {
		t.Fatalf("empty group-advance measurement: %+v", res)
	}
	if res.GroupSpeedup <= 1 {
		t.Errorf("fused group advance %.2f× independent, want >1×", res.GroupSpeedup)
	}
	if res.DirectSweepsPerSec <= 0 || res.CoalescedSweepsPerSec <= 0 {
		t.Fatalf("empty sweep measurement: %+v", res)
	}
	if res.SweepSpeedup <= 1 {
		t.Errorf("coalesced sweeps %.2f× direct, want >1×", res.SweepSpeedup)
	}
	if res.KernelAllocsPerOp != 0 {
		t.Errorf("warm sweep kernel allocates %d/op, want 0", res.KernelAllocsPerOp)
	}

	path := filepath.Join(t.TempDir(), "BENCH_batch.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BatchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if back.GroupSpeedup != res.GroupSpeedup {
		t.Fatal("record round-trip lost the group speedup")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("Render produced nothing")
	}
}
