package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationOrthoCostMatchesTheory(t *testing.T) {
	res, err := AblationOrthoCost(Config{Scale: 0.1}, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Measured counts equal the closed-form expressions exactly when no
		// deflation occurs (generic grids).
		if r.BDSMDots != r.TheoryBDSMDots {
			t.Errorf("m=%d: BDSM dots %d != theory %d", r.Ports, r.BDSMDots, r.TheoryBDSMDots)
		}
		if r.PRIMADots != r.TheoryPRIMA {
			t.Errorf("m=%d: PRIMA dots %d != theory %d", r.Ports, r.PRIMADots, r.TheoryPRIMA)
		}
		if r.BDSMDots >= r.PRIMADots {
			t.Errorf("m=%d: BDSM not cheaper", r.Ports)
		}
	}
	// The PRIMA/BDSM ratio must grow with the port count.
	r0 := float64(res.Rows[0].PRIMADots) / float64(res.Rows[0].BDSMDots)
	r1 := float64(res.Rows[1].PRIMADots) / float64(res.Rows[1].BDSMDots)
	if r1 <= r0 {
		t.Errorf("dot ratio did not grow with m: %.1f → %.1f", r0, r1)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "dot ratio") {
		t.Error("render missing header")
	}
}
