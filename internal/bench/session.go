package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
)

// SessionPoint compares, at one elapsed session length, what a streaming
// session pays to advance one more chunk against what a poll-by-/transient
// client pays to recompute the whole waveform from t = 0.
type SessionPoint struct {
	// ElapsedSteps is how far the session had already integrated.
	ElapsedSteps int `json:"elapsed_steps"`
	// AdvanceSteps is the chunk the client asks for next.
	AdvanceSteps int `json:"advance_steps"`
	// SessionNs is the cost of Stepper.Advance(AdvanceSteps) from the
	// elapsed state; RecomputeNs the cost of SimulateModal over the full
	// Elapsed+Advance horizon — the /transient-recompute baseline.
	SessionNs   float64 `json:"session_ns"`
	RecomputeNs float64 `json:"recompute_ns"`
	Speedup     float64 `json:"speedup"`
}

// SessionResult is the machine-readable record pgbench emits as
// BENCH_session.json: steady-state step throughput plus the per-advance
// latency trajectory that shows session advances are O(chunk) while
// recompute-from-zero polling is O(elapsed).
type SessionResult struct {
	Name        string  `json:"name"`
	Benchmark   string  `json:"benchmark"`
	Scale       float64 `json:"scale"`
	Order       int     `json:"order"`
	Blocks      int     `json:"blocks"`
	ModalBlocks int     `json:"modal_blocks"`
	Ports       int     `json:"ports"`
	Outputs     int     `json:"outputs"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	GoVersion   string  `json:"go_version"`

	// StepsPerSec is the steady-state modal integration throughput of one
	// session (single worker).
	StepsPerSec float64 `json:"steady_steps_per_sec"`

	Points []SessionPoint `json:"points"`

	// SessionLatencyGrowth is the last advance latency over the first —
	// ≈1 when per-advance cost is independent of elapsed session time.
	// RecomputeLatencyGrowth is the same ratio for the recompute baseline —
	// ≈(last horizon)/(first horizon) when recompute is O(t).
	SessionLatencyGrowth   float64 `json:"session_latency_growth"`
	RecomputeLatencyGrowth float64 `json:"recompute_latency_growth"`
}

// sessionChunk and sessionElapsed shape the session experiment: a fixed
// per-advance chunk measured from ever-longer elapsed states. Variables so
// the test harness can shrink them.
var (
	sessionChunk   = 256
	sessionElapsed = []int{0, 4096, 16384, 65536}
)

// Session measures the streaming-session economics on one reduced model:
// a resumable modal Stepper advancing a fixed chunk from ever-longer elapsed
// states, against SimulateModal recomputing each horizon from t = 0.
func Session(cfg Config) (*SessionResult, error) {
	cfg.defaults()
	const name = grid.Ckt1
	sys, _, err := buildSystem(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	sr, rom := runBDSM(sys, grid.MatchedMoments(name), cfg.Workers)
	if sr.Err != nil {
		return nil, sr.Err
	}
	ms, err := rom.Modalize()
	if err != nil {
		return nil, fmt.Errorf("bench: modalize: %w", err)
	}
	modalBlocks, _ := ms.ModalCount()
	order, m, p := rom.Dims()

	const dt = 1e-11
	chunk := sessionChunk
	input := sim.UniformInput(sim.Sine{Amplitude: 1e-3, Freq: 1e9})

	out := &SessionResult{
		Name:        "session",
		Benchmark:   name,
		Scale:       cfg.Scale,
		Order:       order,
		Blocks:      len(rom.Blocks),
		ModalBlocks: modalBlocks,
		Ports:       m,
		Outputs:     p,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}

	// Steady-state throughput: one long advance, steps/second.
	thr := testing.Benchmark(func(b *testing.B) {
		st, err := sim.NewStepper(ms, sim.StepperOptions{Dt: dt})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Advance(chunk, input); err != nil {
				b.Fatal(err)
			}
		}
	})
	if ns := float64(thr.T.Nanoseconds()) / float64(thr.N); ns > 0 {
		out.StepsPerSec = float64(chunk) / (ns / 1e9)
	}

	for _, elapsed := range sessionElapsed {
		// Session: restore the elapsed state before each timed advance, so
		// every iteration measures exactly "advance chunk steps from step
		// `elapsed`".
		st, err := sim.NewStepper(ms, sim.StepperOptions{Dt: dt})
		if err != nil {
			return nil, err
		}
		if _, err := st.Advance(elapsed, input); err != nil {
			return nil, err
		}
		snap := st.Snapshot()
		adv := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := st.Restore(snap); err != nil {
					b.Fatal(err)
				}
				if _, err := st.Advance(chunk, input); err != nil {
					b.Fatal(err)
				}
			}
		})

		// Baseline: a /transient-polling client recomputes the whole horizon.
		horizon := elapsed + chunk
		rec := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.SimulateModal(ms, sim.TransientOptions{
					Dt: dt, T: dt * float64(horizon), Input: input,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})

		pt := SessionPoint{
			ElapsedSteps: elapsed,
			AdvanceSteps: chunk,
			SessionNs:    float64(adv.T.Nanoseconds()) / float64(adv.N),
			RecomputeNs:  float64(rec.T.Nanoseconds()) / float64(rec.N),
		}
		if pt.SessionNs > 0 {
			pt.Speedup = pt.RecomputeNs / pt.SessionNs
		}
		out.Points = append(out.Points, pt)
	}

	if first, last := out.Points[0], out.Points[len(out.Points)-1]; first.SessionNs > 0 && first.RecomputeNs > 0 {
		out.SessionLatencyGrowth = last.SessionNs / first.SessionNs
		out.RecomputeLatencyGrowth = last.RecomputeNs / first.RecomputeNs
	}
	return out, nil
}

// Render prints the session benchmark table.
func (r *SessionResult) Render(w io.Writer) {
	line(w, "%s @ scale %g: order %d, %d blocks (%d modal), dt-steady %.2fM steps/s, GOMAXPROCS %d",
		r.Benchmark, r.Scale, r.Order, r.Blocks, r.ModalBlocks, r.StepsPerSec/1e6, r.GoMaxProcs)
	line(w, "%-14s %-14s %14s %14s %10s", "elapsed steps", "advance steps", "session ns", "recompute ns", "speedup")
	for _, pt := range r.Points {
		line(w, "%-14d %-14d %14.0f %14.0f %9.1f×", pt.ElapsedSteps, pt.AdvanceSteps, pt.SessionNs, pt.RecomputeNs, pt.Speedup)
	}
	line(w, "per-advance latency growth from 0 to %d elapsed steps: session %.2f× (flat), recompute %.1f× (O(t))",
		r.Points[len(r.Points)-1].ElapsedSteps, r.SessionLatencyGrowth, r.RecomputeLatencyGrowth)
}

// WriteJSON writes the machine-readable record (BENCH_session.json).
func (r *SessionResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
