package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestPerfRecord runs the evaluation-path benchmark harness at a small scale
// and checks the machine-readable record carries the fields the benchmark
// trajectory (and the acceptance criteria) depend on.
func TestPerfRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-benchmarks")
	}
	res, err := Perf(Config{Scale: 0.1})
	if err != nil {
		t.Fatalf("Perf: %v", err)
	}
	if res.ModalBlocks != res.Blocks {
		t.Fatalf("perf model not fully modal: %d/%d", res.ModalBlocks, res.Blocks)
	}
	want := map[string]bool{
		"EvalColdFactorization": false, "EvalCachedLU": false, "EvalModal": false,
		"EvalColumnCachedLU": false, "EvalColumnModal": false,
		"SweepCachedLU": false, "SweepModal": false,
	}
	for _, r := range res.Results {
		if _, ok := want[r.Name]; !ok {
			t.Errorf("unexpected benchmark %q", r.Name)
			continue
		}
		want[r.Name] = true
		if r.NsPerOp <= 0 || r.N <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Name, r)
		}
		switch r.Name {
		case "EvalColdFactorization":
			if r.FactorizationsPerOp == 0 {
				t.Errorf("cold eval reports no factorizations")
			}
		case "EvalColumnModal", "SweepModal":
			if r.AllocsPerOp != 0 {
				t.Errorf("%s allocates %d/op, want 0", r.Name, r.AllocsPerOp)
			}
			if r.FactorizationsPerOp != 0 || r.ModalEvalsPerOp == 0 {
				t.Errorf("%s telemetry wrong: %+v", r.Name, r)
			}
		case "EvalColumnCachedLU", "SweepCachedLU":
			if r.AllocsPerOp != 0 {
				t.Errorf("%s allocates %d/op, want 0", r.Name, r.AllocsPerOp)
			}
			if r.FactoredEvalsPerOp == 0 {
				t.Errorf("%s telemetry wrong: %+v", r.Name, r)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("benchmark %q missing from record", name)
		}
	}
	// The acceptance ratio: a warm sweep must beat the factor-cache path by
	// ≥5× (one vectorized residue pass vs 60 cached LU applications).
	if res.SpeedupSweepModalVsCached < 5 {
		t.Errorf("sweep speedup %.1f× < 5×", res.SpeedupSweepModalVsCached)
	}

	path := filepath.Join(t.TempDir(), "BENCH_modal.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PerfResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if len(back.Results) != len(res.Results) {
		t.Fatalf("record round-trip lost results")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("Render produced nothing")
	}
}
