package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSessionRecord runs the streaming-session benchmark harness at a small
// scale and checks the record carries the acceptance signal: per-advance
// session latency independent of elapsed time, recompute latency O(t).
func TestSessionRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("runs micro-benchmarks")
	}
	defer func(c int, e []int) { sessionChunk, sessionElapsed = c, e }(sessionChunk, sessionElapsed)
	sessionChunk = 64
	sessionElapsed = []int{0, 2048}

	res, err := Session(Config{Scale: 0.1})
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	if res.StepsPerSec <= 0 {
		t.Fatalf("no steady-state throughput: %+v", res)
	}
	for _, pt := range res.Points {
		if pt.SessionNs <= 0 || pt.RecomputeNs <= 0 {
			t.Fatalf("empty measurement: %+v", pt)
		}
	}
	// 2048 elapsed steps = 32 chunks: recompute must have grown far more
	// than the session advance (which should stay within noise of flat).
	if res.RecomputeLatencyGrowth < 4 {
		t.Errorf("recompute latency growth %.2f×, want ≥4× over 32× longer horizon", res.RecomputeLatencyGrowth)
	}
	if res.SessionLatencyGrowth > res.RecomputeLatencyGrowth/2 {
		t.Errorf("session latency growth %.2f× is not clearly flat vs recompute %.2f×",
			res.SessionLatencyGrowth, res.RecomputeLatencyGrowth)
	}

	path := filepath.Join(t.TempDir(), "BENCH_session.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SessionResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if len(back.Points) != len(res.Points) {
		t.Fatal("record round-trip lost points")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("Render produced nothing")
	}
}
