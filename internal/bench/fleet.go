package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/store"
)

// FleetPoint is one measured router-tier configuration: a fixed request load
// pushed through pgrouter at a given fleet size and health.
type FleetPoint struct {
	Replicas int `json:"replicas"`
	// Requests completed and client-visible Errors (non-200 after all router
	// retries — the router's whole job is keeping this at zero).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// ReqPerSec is end-to-end /eval throughput through the router.
	ReqPerSec float64 `json:"req_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// FleetResult is the machine-readable record pgbench emits as
// BENCH_fleet.json: how /eval throughput scales with fleet size when models
// spread over the consistent-hash ring, and what a flapping replica costs in
// tail latency when the router routes around it (the contract: zero
// client-visible errors, bounded p99 inflation, no lost throughput scaling).
type FleetResult struct {
	Name      string  `json:"name"`
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	// Models is how many distinct reduced models the load spreads across the
	// ring; Concurrency the number of closed-loop clients.
	Models      int    `json:"models"`
	Concurrency int    `json:"concurrency"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	GoVersion   string `json:"go_version"`

	// Scaling holds healthy-fleet points at increasing replica counts.
	Scaling []FleetPoint `json:"scaling"`
	// ScalingX is the largest healthy fleet's throughput over the
	// single-replica baseline.
	ScalingX float64 `json:"scaling_x"`

	// Healthy and Degraded compare the same fleet size with all replicas up
	// versus one replica flapping (alternating 503 windows): the router's
	// breakers and retries absorb the flapping.
	Healthy  FleetPoint `json:"healthy"`
	Degraded FleetPoint `json:"degraded"`
	// DegradedRetries, DegradedBreakerTrips, and DegradedP99X quantify the
	// absorption: upstream retries the router performed, circuit-breaker
	// trips that kept traffic off the flapping replica (probe-driven trips
	// avoid retries entirely), and the degraded p99 over the healthy p99.
	DegradedRetries      int64   `json:"degraded_retries"`
	DegradedBreakerTrips int64   `json:"degraded_breaker_trips"`
	DegradedP99X         float64 `json:"degraded_p99_x"`
}

// Fleet experiment shape; variables so the test harness can shrink them.
var (
	fleetRequests    = 1200
	fleetConcurrency = 8
	fleetSizes       = []int{1, 2, 4}
	fleetDegradedN   = 3
	fleetFlapPeriod  = 60 * time.Millisecond
	fleetModelScales = []float64{0.10, 0.12, 0.14, 0.16, 0.18, 0.20, 0.22, 0.24}
)

// flapper makes one replica alternate between serving and answering 503 —
// the "sick but not dead" failure mode that stresses breakers hardest.
type flapper struct {
	down atomic.Bool
	h    http.Handler
}

func (f *flapper) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "flapping", http.StatusServiceUnavailable)
		return
	}
	f.h.ServeHTTP(w, r)
}

// fleet is one running setup: n pgserve replicas over a shared store
// directory behind one pgrouter.
type fleet struct {
	routerURL string
	flap      *flapper // on the first replica; nil unless requested
	rt        *router.Router
	closers   []func()
}

func (f *fleet) close() {
	for i := len(f.closers) - 1; i >= 0; i-- {
		f.closers[i]()
	}
}

// startFleet brings up n replicas sharing dir and a router in front. The
// replicas rely on the store read-through for model lookup, so any replica
// can serve any stored model id regardless of which one reduced it.
func startFleet(n int, dir string, withFlapper bool) (*fleet, error) {
	f := &fleet{}
	var urls []string
	for i := 0; i < n; i++ {
		st, err := store.Open(dir)
		if err != nil {
			f.close()
			return nil, err
		}
		srv := serve.New(serve.Config{Workers: 2, Store: st, SnapshotEvery: 1})
		var h http.Handler = srv.Handler()
		if withFlapper && i == 0 {
			f.flap = &flapper{h: h}
			h = f.flap
		}
		ts := httptest.NewServer(h)
		f.closers = append(f.closers, ts.Close, srv.Close)
		urls = append(urls, ts.URL)
	}
	rt, err := router.New(router.Config{
		Replicas:      urls,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		RetryBackoff:  time.Millisecond,
		Breaker:       router.BreakerConfig{FailThreshold: 3, OpenFor: 50 * time.Millisecond},
	})
	if err != nil {
		f.close()
		return nil, err
	}
	f.rt = rt
	ts := httptest.NewServer(rt.Handler())
	f.closers = append(f.closers, ts.Close, rt.Close)
	f.routerURL = ts.URL
	return f, nil
}

// fleetPost sends one JSON POST through the router and drains the response.
func fleetPost(client *http.Client, url string, req any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, err
}

// fleetLoad drives the closed-loop /eval workload: `fleetConcurrency`
// clients, `requests` total, round-robining over the stored model ids so the
// load spreads across the ring.
func fleetLoad(routerURL string, ids []string, requests int) FleetPoint {
	omegas := []float64{1e8, 1e9, 1e10}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      int
		next      atomic.Int64
	)
	client := &http.Client{Timeout: 30 * time.Second}
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < fleetConcurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(requests) {
					return
				}
				req := map[string]any{"model": ids[i%int64(len(ids))], "omegas": omegas}
				r0 := time.Now()
				status, err := fleetPost(client, routerURL+"/eval", req)
				d := time.Since(r0)
				mu.Lock()
				latencies = append(latencies, d)
				if err != nil || status != http.StatusOK {
					errs++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(len(latencies)))) - 1
		return float64(latencies[max(0, min(i, len(latencies)-1))].Nanoseconds()) / 1e6
	}
	return FleetPoint{
		Requests:  requests,
		Errors:    errs,
		ReqPerSec: float64(requests) / elapsed.Seconds(),
		P50Ms:     q(0.50),
		P99Ms:     q(0.99),
	}
}

// fleetCounter scrapes one pgrouter counter from the router's /metrics.
func fleetCounter(routerURL, name string) int64 {
	resp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	scrape, err := obs.ParseText(resp.Body)
	if err != nil {
		return 0
	}
	v, _ := scrape.Value(name)
	return int64(v)
}

// Fleet measures the router tier end to end: /eval throughput through
// pgrouter at increasing fleet sizes (healthy), then a fixed-size fleet with
// one replica flapping 503s, where the router's breakers, probes, and
// retries must hold client-visible errors at zero while bounding the p99.
func Fleet(cfg Config) (*FleetResult, error) {
	cfg.defaults()
	dir, err := os.MkdirTemp("", "pgbench-fleet-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	out := &FleetResult{
		Name:        "fleet",
		Benchmark:   grid.Ckt1,
		Scale:       fleetModelScales[len(fleetModelScales)-1],
		Models:      len(fleetModelScales),
		Concurrency: fleetConcurrency,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}

	// Populate the shared store once; later fleets warm-load from disk. The
	// model ids come back from /reduce.
	ids := make([]string, 0, len(fleetModelScales))
	{
		f, err := startFleet(1, dir, false)
		if err != nil {
			return nil, err
		}
		client := &http.Client{Timeout: 10 * time.Minute}
		for _, s := range fleetModelScales {
			body, _ := json.Marshal(serve.ModelKey{Benchmark: grid.Ckt1, Scale: s})
			resp, err := client.Post(f.routerURL+"/reduce", "application/json", bytes.NewReader(body))
			if err != nil {
				f.close()
				return nil, fmt.Errorf("bench: reducing ckt1@%g: %w", s, err)
			}
			var info struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK || info.ID == "" {
				f.close()
				return nil, fmt.Errorf("bench: reducing ckt1@%g: status %d, %v", s, resp.StatusCode, err)
			}
			ids = append(ids, info.ID)
		}
		f.close()
	}

	// Healthy scaling: same load, growing fleet.
	for _, n := range fleetSizes {
		f, err := startFleet(n, dir, false)
		if err != nil {
			return nil, err
		}
		pt := fleetLoad(f.routerURL, ids, fleetRequests)
		pt.Replicas = n
		f.close()
		out.Scaling = append(out.Scaling, pt)
	}
	if first := out.Scaling[0]; first.ReqPerSec > 0 {
		out.ScalingX = out.Scaling[len(out.Scaling)-1].ReqPerSec / first.ReqPerSec
	}

	// Degraded: fleetDegradedN replicas, one flapping. Healthy baseline first
	// on an identical fleet.
	f, err := startFleet(fleetDegradedN, dir, true)
	if err != nil {
		return nil, err
	}
	out.Healthy = fleetLoad(f.routerURL, ids, fleetRequests)
	out.Healthy.Replicas = fleetDegradedN

	retries0 := fleetCounter(f.routerURL, "pgrouter_retries_total")
	trips0 := fleetCounter(f.routerURL, "pgrouter_breaker_trips_total")
	stop := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		tick := time.NewTicker(fleetFlapPeriod)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				f.flap.down.Store(false)
				return
			case <-tick.C:
				f.flap.down.Store(!f.flap.down.Load())
			}
		}
	}()
	out.Degraded = fleetLoad(f.routerURL, ids, fleetRequests)
	out.Degraded.Replicas = fleetDegradedN
	close(stop)
	flapWG.Wait()
	out.DegradedRetries = fleetCounter(f.routerURL, "pgrouter_retries_total") - retries0
	out.DegradedBreakerTrips = fleetCounter(f.routerURL, "pgrouter_breaker_trips_total") - trips0
	f.close()

	if out.Healthy.P99Ms > 0 {
		out.DegradedP99X = out.Degraded.P99Ms / out.Healthy.P99Ms
	}
	return out, nil
}

// Render prints the fleet benchmark tables.
func (r *FleetResult) Render(w io.Writer) {
	line(w, "%s: %d models over the ring, %d closed-loop clients, %d requests/point, GOMAXPROCS %d",
		r.Benchmark, r.Models, r.Concurrency, r.Scaling[0].Requests, r.GoMaxProcs)
	line(w, "%-10s %12s %10s %10s %8s", "replicas", "req/s", "p50 ms", "p99 ms", "errors")
	for _, pt := range r.Scaling {
		line(w, "%-10d %12.0f %10.2f %10.2f %8d", pt.Replicas, pt.ReqPerSec, pt.P50Ms, pt.P99Ms, pt.Errors)
	}
	line(w, "throughput scaling ×%d replicas: %.2f×", r.Scaling[len(r.Scaling)-1].Replicas, r.ScalingX)
	line(w, "")
	line(w, "%-22s %12s %10s %10s %8s", fmt.Sprintf("fleet of %d", r.Healthy.Replicas), "req/s", "p50 ms", "p99 ms", "errors")
	line(w, "%-22s %12.0f %10.2f %10.2f %8d", "healthy", r.Healthy.ReqPerSec, r.Healthy.P50Ms, r.Healthy.P99Ms, r.Healthy.Errors)
	line(w, "%-22s %12.0f %10.2f %10.2f %8d", "one replica flapping", r.Degraded.ReqPerSec, r.Degraded.P50Ms, r.Degraded.P99Ms, r.Degraded.Errors)
	line(w, "flapping absorbed by %d breaker trips and %d router retries; p99 inflation %.2f×, client-visible errors %d",
		r.DegradedBreakerTrips, r.DegradedRetries, r.DegradedP99X, r.Degraded.Errors)
}

// WriteJSON writes the machine-readable record (BENCH_fleet.json).
func (r *FleetResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
