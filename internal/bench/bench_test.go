package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dense"
)

func tinyConfig() Config {
	return Config{Scale: 0.12, SweepPoints: 13}
}

// TestTableIQualitativeClaims asserts the paper's Table I row by row on
// measured data.
func TestTableIQualitativeClaims(t *testing.T) {
	res, err := TableI(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) *Table1Row {
		for i := range res.Rows {
			if res.Rows[i].Scheme == name {
				return &res.Rows[i]
			}
		}
		t.Fatalf("missing scheme %s", name)
		return nil
	}
	bdsm, prima, svdmor, eks := get("BDSM"), get("PRIMA"), get("SVDMOR"), get("EKS")

	// ROM size: BDSM = PRIMA = m·l; SVDMOR ≈ α·m·l; EKS = l.
	if bdsm.ROMSize != prima.ROMSize {
		t.Errorf("BDSM size %d != PRIMA size %d", bdsm.ROMSize, prima.ROMSize)
	}
	if svdmor.ROMSize >= prima.ROMSize {
		t.Errorf("SVDMOR size %d not below PRIMA %d", svdmor.ROMSize, prima.ROMSize)
	}
	if eks.ROMSize != res.L {
		t.Errorf("EKS size %d, want l = %d", eks.ROMSize, res.L)
	}
	// Matched moments: BDSM and PRIMA match all l; SVDMOR/EKS match none.
	if bdsm.MatchedMoments != res.L {
		t.Errorf("BDSM matched %d moments, want %d", bdsm.MatchedMoments, res.L)
	}
	if prima.MatchedMoments != res.L {
		t.Errorf("PRIMA matched %d moments, want %d", prima.MatchedMoments, res.L)
	}
	if svdmor.MatchedMoments != 0 {
		t.Errorf("SVDMOR matched %d true moments, want 0", svdmor.MatchedMoments)
	}
	// Reusability: all but EKS.
	if !bdsm.Reusable || !prima.Reusable || !svdmor.Reusable {
		t.Errorf("reusability flags: bdsm=%v prima=%v svdmor=%v",
			bdsm.Reusable, prima.Reusable, svdmor.Reusable)
	}
	if eks.Reusable {
		t.Errorf("EKS reported reusable (reuse err %.3e)", eks.ReuseError)
	}
	// Pattern: block-diagonal sparsity for BDSM only.
	if bdsm.GrDensityPct >= 50 {
		t.Errorf("BDSM Gr density %.1f%% not sparse", bdsm.GrDensityPct)
	}
	if prima.GrDensityPct < 90 {
		t.Errorf("PRIMA Gr density %.1f%% not dense", prima.GrDensityPct)
	}
	// Scalability: BDSM streaming memory flat in m, PRIMA grows ~2×.
	if !bdsm.Scalable {
		t.Errorf("BDSM memory growth %.2f not scalable", bdsm.MemGrowth)
	}
	if prima.Scalable {
		t.Errorf("PRIMA memory growth %.2f reported scalable", prima.MemGrowth)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "BDSM") {
		t.Error("render missing BDSM row")
	}
}

func TestTableIIShape(t *testing.T) {
	cfg := tinyConfig()
	res, err := TableII(cfg, []string{"ckt1", "ckt2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		bdsm := row.Scheme("BDSM")
		prima := row.Scheme("PRIMA")
		eks := row.Scheme("EKS")
		if bdsm == nil || prima == nil || eks == nil {
			t.Fatal("missing scheme result")
		}
		// Same ROM size for BDSM and PRIMA; EKS is tiny (Table II).
		if !prima.BrokeDown && bdsm.ROMSize != prima.ROMSize {
			t.Errorf("%s: BDSM %d vs PRIMA %d", row.Ckt, bdsm.ROMSize, prima.ROMSize)
		}
		if eks.ROMSize != row.Moments {
			t.Errorf("%s: EKS size %d, want %d", row.Ckt, eks.ROMSize, row.Moments)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "ckt1") {
		t.Error("render missing ckt1")
	}
}

func TestTableIIBreakdownUnderTinyBudget(t *testing.T) {
	cfg := tinyConfig()
	cfg.MemoryBudget = 32 << 10 // 32 KiB: every dense-basis scheme must break down
	res, err := TableII(cfg, []string{"ckt1"})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if !row.Scheme("PRIMA").BrokeDown || !row.Scheme("SVDMOR").BrokeDown {
		t.Error("PRIMA/SVDMOR did not break down under tiny budget")
	}
	if row.Scheme("BDSM").Err != nil {
		t.Error("BDSM must survive tiny dense budget (streaming)")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "break down") {
		t.Error("render missing break down marker")
	}
}

func TestFig4Densities(t *testing.T) {
	res, err := Fig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PRIMAGrPct < 90 {
		t.Errorf("PRIMA Gr density %.1f%%, want ≈100%%", res.PRIMAGrPct)
	}
	if res.BDSMGrPct >= res.PRIMAGrPct/2 {
		t.Errorf("BDSM Gr density %.1f%% not much sparser than PRIMA %.1f%%",
			res.BDSMGrPct, res.PRIMAGrPct)
	}
	// Br on the square canvas must be ≈ Gr/l (paper: 1.9% vs 0.3% at l=6).
	if res.BDSMBrPctSquare >= res.BDSMGrPct {
		t.Errorf("Br square density %.2f%% not below Gr density %.2f%%",
			res.BDSMBrPctSquare, res.BDSMGrPct)
	}
	if !strings.Contains(res.BDSMSpy, "#") || !strings.Contains(res.BDSMSpy, ".") {
		t.Error("BDSM spy plot should mix nonzeros and zeros")
	}
	if strings.Contains(res.PRIMASpy, ".") {
		t.Error("PRIMA spy plot should be fully dense")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "spy") {
		t.Error("render missing spy plots")
	}
}

func TestFig5AccuracyOrdering(t *testing.T) {
	// Scale 0.3: below that the tiny grid couples all ports through a single
	// pad, which makes EKS's rank-one reconstruction accidentally accurate
	// and inverts the EKS/SVDMOR ordering; from 0.3 up the paper's ordering
	// is stable.
	res, err := Fig5(Config{Scale: 0.3, SweepPoints: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Paper's panel (b): BDSM and PRIMA tiny error below 1e10 rad/s; SVDMOR
	// orders of magnitude worse; EKS worst.
	limit := 1e10
	bdsm, err := res.MaxRelErrBelow("BDSM", limit)
	if err != nil {
		t.Fatal(err)
	}
	prima, err := res.MaxRelErrBelow("PRIMA", limit)
	if err != nil {
		t.Fatal(err)
	}
	svdmor, err := res.MaxRelErrBelow("SVDMOR", limit)
	if err != nil {
		t.Fatal(err)
	}
	eks, err := res.MaxRelErrBelow("EKS-6", limit)
	if err != nil {
		t.Fatal(err)
	}
	if bdsm > 1e-6 {
		t.Errorf("BDSM max rel err %.3e > 1e-6 below 1e10 rad/s", bdsm)
	}
	if prima > 1e-6 {
		t.Errorf("PRIMA max rel err %.3e > 1e-6", prima)
	}
	if svdmor < 10*bdsm {
		t.Errorf("SVDMOR err %.3e not ≫ BDSM err %.3e", svdmor, bdsm)
	}
	if eks < svdmor {
		t.Errorf("EKS err %.3e below SVDMOR err %.3e", eks, svdmor)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "omega,exact") {
		t.Error("render missing CSV header")
	}
}

func TestSpyRendering(t *testing.T) {
	m := dense.NewMat[float64](4, 4)
	m.Set(0, 0, 1)
	m.Set(3, 3, 1)
	spy := Spy(m, 4)
	want := "#...\n....\n....\n...#\n"
	if spy != want {
		t.Errorf("spy =\n%s\nwant\n%s", spy, want)
	}
	if Spy(dense.NewMat[float64](0, 0), 4) != "(empty)\n" {
		t.Error("empty spy")
	}
}

func TestCountMatchedMomentsStopsAtMismatch(t *testing.T) {
	sys, _, err := buildSystem("ckt1", 0.08)
	if err != nil {
		t.Fatal(err)
	}
	_, rom := runPRIMA(sys, 3, -1)
	count, err := CountMatchedMoments(sys, rom, 1e9, 6, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if count < 3 {
		t.Errorf("matched %d moments, want ≥ 3", count)
	}
	if count == 6 {
		t.Log("note: all 6 moments matched; Krylov space may be rich")
	}
}
