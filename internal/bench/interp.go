package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lti"
	"repro/internal/param"
	"repro/internal/sim"
)

// InterpCase is one head-to-head sample: interpolating a Δ-scale ROM from
// two stored anchors versus reducing it from scratch.
type InterpCase struct {
	Benchmark string  `json:"benchmark"`
	RCOnly    bool    `json:"rc_only"`
	ScaleLo   float64 `json:"scale_lo"`
	ScaleHi   float64 `json:"scale_hi"`
	Target    float64 `json:"target"`

	// ReduceNS is the cold path the interpolation replaces (grid build +
	// BDSM reduction + diagonalization at the target scale); InterpNS is the
	// interpolation operator itself (pole matching + blending + realization).
	ReduceNS int64   `json:"reduce_ns"`
	InterpNS int64   `json:"interp_ns"`
	Speedup  float64 `json:"speedup"`

	// MaxRelErr is the worst relative transfer error of the interpolant
	// against the direct reduction over the standard sweep band, and
	// MaxPoleShift the largest relative pole movement between the anchors.
	MaxRelErr    float64 `json:"max_rel_err"`
	MaxPoleShift float64 `json:"max_pole_shift"`
	Budget       float64 `json:"budget"`
	WithinBudget bool    `json:"within_budget"`
}

// InterpResult is the machine-readable record pgbench -exp interp emits as
// BENCH_interp.json: interpolation-vs-reduction speed and accuracy across
// the benchmark family.
// The anchor/target scales are fixed per case (plateau-bound), so unlike
// BENCH_modal.json there is no record-wide scale field — each case carries
// its own operating point.
type InterpResult struct {
	Name       string `json:"name"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	Cases []InterpCase `json:"cases"`

	// MinSpeedup and MaxErr summarize the headline claims: every case beats
	// cold reduction by at least MinSpeedup and stays within MaxErr of it.
	MinSpeedup float64 `json:"min_speedup"`
	MaxErr     float64 `json:"max_err"`
}

// interpBudget is the accuracy bar the record asserts against — the serving
// layer's default admission budget.
const interpBudget = 0.05

// interpModal reduces one instance and returns its modal ROM plus the cold
// build+reduce+diagonalize time — the full latency a Δ-scale cache miss
// would pay without interpolation.
func interpModal(name string, scale float64, rcOnly bool, workers int) (*lti.ModalSystem, time.Duration, error) {
	t0 := time.Now()
	cfg, err := grid.Benchmark(name, scale)
	if err != nil {
		return nil, 0, err
	}
	cfg.RCOnly = rcOnly
	gm, err := cfg.Build()
	if err != nil {
		return nil, 0, err
	}
	sys, err := lti.NewSparseSystem(gm.C, gm.G, gm.B, gm.L)
	if err != nil {
		return nil, 0, err
	}
	rom, err := core.Reduce(sys, core.Options{Moments: grid.MatchedMoments(name), Workers: workers})
	if err != nil {
		return nil, 0, err
	}
	ms, err := rom.Modalize()
	if err != nil {
		return nil, 0, err
	}
	return ms, time.Since(t0), nil
}

// Interp measures Δ-scale interpolation against direct reduction on ckt1
// and ckt2, RLC and RC-only, using fixed anchor triples inside one
// geometric plateau near the standard 0.25 operating point (cfg.Scale does
// not apply — anchors must stay plateau-bound to be interpolable). It is
// the quantitative record behind the serving layer's /interp endpoint: how
// much latency interpolation removes and how much accuracy it costs.
func Interp(cfg Config) (*InterpResult, error) {
	cfg.defaults()
	// Anchor triples inside one (NX, ports) plateau per benchmark; the
	// middle scale is the interpolation target. Chosen near the standard
	// -scale 0.25 operating point.
	cases := []struct {
		name           string
		lo, target, hi float64
	}{
		{grid.Ckt1, 0.236, 0.241, 0.246},
		{grid.Ckt2, 0.241, 0.2435, 0.246},
	}
	out := &InterpResult{
		Name:       "interp",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		MinSpeedup: math.Inf(1),
	}
	omegas, err := sim.LogGrid(1e5, 1e15, 40)
	if err != nil {
		return nil, err
	}
	for _, tc := range cases {
		for _, rcOnly := range []bool{false, true} {
			a, _, err := interpModal(tc.name, tc.lo, rcOnly, cfg.Workers)
			if err != nil {
				return nil, err
			}
			b, _, err := interpModal(tc.name, tc.hi, rcOnly, cfg.Workers)
			if err != nil {
				return nil, err
			}
			direct, reduceTime, err := interpModal(tc.name, tc.target, rcOnly, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			ms, rep, err := param.Interpolate(
				param.Anchor{Scale: tc.lo, Modal: a},
				param.Anchor{Scale: tc.hi, Modal: b},
				tc.target, param.Config{})
			interpTime := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("bench: interpolating %s@%g: %w", tc.name, tc.target, err)
			}
			relErr, err := param.MaxRelTransferErr(ms, direct, omegas)
			if err != nil {
				return nil, err
			}
			c := InterpCase{
				Benchmark: tc.name, RCOnly: rcOnly,
				ScaleLo: tc.lo, ScaleHi: tc.hi, Target: tc.target,
				ReduceNS: reduceTime.Nanoseconds(), InterpNS: interpTime.Nanoseconds(),
				Speedup:      float64(reduceTime) / float64(interpTime),
				MaxRelErr:    relErr,
				MaxPoleShift: rep.MaxPoleShift,
				Budget:       interpBudget,
				WithinBudget: relErr <= interpBudget,
			}
			out.Cases = append(out.Cases, c)
			if c.Speedup < out.MinSpeedup {
				out.MinSpeedup = c.Speedup
			}
			if c.MaxRelErr > out.MaxErr {
				out.MaxErr = c.MaxRelErr
			}
		}
	}
	return out, nil
}

// Render prints the comparison table.
func (r *InterpResult) Render(w io.Writer) {
	line(w, "Δ-scale interpolation vs direct reduction (GOMAXPROCS %d)", r.GoMaxProcs)
	line(w, "%-6s %-4s %-22s %12s %12s %9s %11s %7s", "bench", "rc", "anchors→target", "reduce", "interp", "speedup", "max rel err", "budget")
	for _, c := range r.Cases {
		rc := "rlc"
		if c.RCOnly {
			rc = "rc"
		}
		ok := "ok"
		if !c.WithinBudget {
			ok = "OVER"
		}
		line(w, "%-6s %-4s %g,%g→%g %12s %12s %8.0f× %11.2e %7s",
			c.Benchmark, rc, c.ScaleLo, c.ScaleHi, c.Target,
			time.Duration(c.ReduceNS).Round(time.Microsecond),
			time.Duration(c.InterpNS).Round(time.Microsecond),
			c.Speedup, c.MaxRelErr, ok)
	}
	line(w, "min speedup %.0f×, worst rel err %.2e (budget %g)", r.MinSpeedup, r.MaxErr, interpBudget)
}

// WriteJSON writes the machine-readable record (BENCH_interp.json).
func (r *InterpResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
