package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/lti"
	"repro/internal/ward"
)

// ScaleRung is one instance of the scale ladder: a multiscale grid of
// roughly Nodes states reduced end-to-end through the sparse-first pipeline
// (Ward pre-reduction + BDSM), with the per-phase wall clock split out.
type ScaleRung struct {
	Nodes int `json:"nodes"`
	NNZ   int `json:"nnz"` // G + C nonzeros of the assembled system
	Ports int `json:"ports"`
	// Ward partition shape: External states eliminated exactly, Boundary
	// kept states carrying the Schur correction.
	External int `json:"external"`
	Boundary int `json:"boundary"`
	Kept     int `json:"kept"`
	// Order is the final ROM order (Σ block sizes).
	Order int `json:"order"`

	BuildSeconds     float64 `json:"build_seconds"`
	PartitionSeconds float64 `json:"partition_seconds"`
	SchurSeconds     float64 `json:"schur_seconds"`
	FactorSeconds    float64 `json:"factor_seconds"`
	KrylovSeconds    float64 `json:"krylov_seconds"`
	// ReduceSeconds is the total core.Reduce wall clock (all phases).
	ReduceSeconds float64 `json:"reduce_seconds"`
}

// ScaleResult is the machine-readable record of `pgbench -exp scale`
// (BENCH_scale.json) — the reduction-time-vs-n trajectory every scaling
// change is measured against.
type ScaleResult struct {
	Name       string `json:"name"`
	MaxNodes   int    `json:"max_nodes"`
	Moments    int    `json:"moments"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	Rungs []ScaleRung `json:"rungs"`

	// FitExponent is the least-squares slope of log(reduce_seconds) against
	// log(nnz) across the rungs: ≈1 means reduction cost scales with nnz,
	// ≈2 would mean the dense-era n² behavior has crept back in.
	FitExponent float64 `json:"fit_exponent"`

	// WardMaxError is the worst relative transfer-function deviation of the
	// Ward-reduced system vs the full system at the load ports, measured on
	// the smallest rung (full-system evaluation is O(n) LU solves, so only
	// the smallest rung is checked). The elimination is exact; anything
	// above 1e-8 fails the run.
	WardMaxError        float64 `json:"ward_max_error"`
	WardErrorCheckNodes int     `json:"ward_error_check_nodes"`
}

// WardTolerance is the acceptance bar for the Ward equivalence check: the
// Schur elimination is exact in exact arithmetic, so anything beyond solver
// roundoff signals a defect.
const WardTolerance = 1e-8

// Scale runs the scale ladder: multiscale grids of maxNodes, maxNodes/2,
// maxNodes/4 and maxNodes/8 states, each assembled sparsely and reduced
// end-to-end with Ward pre-reduction enabled. The smallest rung additionally
// verifies Ward exactness against the unreduced system.
func Scale(cfg Config, maxNodes int) (*ScaleResult, error) {
	cfg.defaults()
	if maxNodes < 1000 {
		return nil, fmt.Errorf("bench: scale ladder needs maxNodes ≥ 1000, got %d", maxNodes)
	}
	const moments = 4
	res := &ScaleResult{
		Name:       "scale",
		MaxNodes:   maxNodes,
		Moments:    moments,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	var sizes []int
	for d := 8; d >= 1; d /= 2 {
		sizes = append(sizes, maxNodes/d)
	}
	for _, nodes := range sizes {
		mcfg, err := grid.MultiscaleBenchmark(nodes)
		if err != nil {
			return nil, err
		}
		tBuild := time.Now()
		model, err := mcfg.Build()
		if err != nil {
			return nil, err
		}
		buildSec := time.Since(tBuild).Seconds()
		sys, err := lti.NewSparseSystem(model.C, model.G, model.B, model.L)
		if err != nil {
			return nil, err
		}

		rung := ScaleRung{
			Nodes:        model.N,
			NNZ:          sys.G.NNZ() + sys.C.NNZ(),
			Ports:        mcfg.NumPorts(),
			BuildSeconds: buildSec,
		}
		var stats core.Stats
		phases := map[string]time.Duration{}
		tReduce := time.Now()
		rom, err := core.Reduce(sys, core.Options{
			Moments:    moments,
			Backend:    krylov.BackendAuto,
			Workers:    cfg.Workers,
			WardReduce: true,
			Stats:      &stats,
			OnPhase:    func(ph string, d time.Duration) { phases[ph] += d },
		})
		if err != nil {
			return nil, fmt.Errorf("bench: scale rung %d nodes: %w", model.N, err)
		}
		rung.ReduceSeconds = time.Since(tReduce).Seconds()
		rung.PartitionSeconds = phases["partition"].Seconds()
		rung.SchurSeconds = phases["schur"].Seconds()
		rung.FactorSeconds = phases["factor"].Seconds()
		rung.KrylovSeconds = phases["krylov"].Seconds()
		rung.External = stats.Ward.External
		rung.Boundary = stats.Ward.Boundary
		rung.Kept = stats.Ward.Internal + stats.Ward.Boundary
		romN, _, _ := rom.Dims()
		rung.Order = romN
		res.Rungs = append(res.Rungs, rung)
	}

	// Ward exactness on the smallest rung: reduce with ward alone and
	// compare full transfer matrices.
	small, err := grid.MultiscaleBenchmark(sizes[0])
	if err != nil {
		return nil, err
	}
	model, err := small.Build()
	if err != nil {
		return nil, err
	}
	sys, err := lti.NewSparseSystem(model.C, model.G, model.B, model.L)
	if err != nil {
		return nil, err
	}
	wres, err := ward.Reduce(sys, ward.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	if wres.Stats.External == 0 {
		return nil, fmt.Errorf("bench: multiscale rung eliminated no states; backbone is not static")
	}
	res.WardErrorCheckNodes = model.N
	for _, w := range []float64{1e5, 1e8, 1e11} {
		s := complex(0, w)
		hFull, err := sys.Eval(s)
		if err != nil {
			return nil, err
		}
		hWard, err := wres.Sys.Eval(s)
		if err != nil {
			return nil, err
		}
		_, m, p := sys.Dims()
		for i := 0; i < p; i++ {
			for j := 0; j < m; j++ {
				d := cmplx.Abs(hFull.At(i, j)-hWard.At(i, j)) / (1 + cmplx.Abs(hFull.At(i, j)))
				if d > res.WardMaxError {
					res.WardMaxError = d
				}
			}
		}
	}
	if res.WardMaxError > WardTolerance {
		return nil, fmt.Errorf("bench: ward-reduced transfer function deviates by %.3g (> %g) on the %d-node rung",
			res.WardMaxError, WardTolerance, model.N)
	}

	res.FitExponent = fitLogLogSlope(res.Rungs)
	return res, nil
}

// fitLogLogSlope returns the least-squares slope of log(reduce_seconds)
// vs log(nnz) over the rungs; 0 when degenerate (too few rungs or
// unmeasurably fast runs).
func fitLogLogSlope(rungs []ScaleRung) float64 {
	var xs, ys []float64
	for _, r := range rungs {
		if r.NNZ <= 0 || r.ReduceSeconds <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(r.NNZ)))
		ys = append(ys, math.Log(r.ReduceSeconds))
	}
	if len(xs) < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(len(xs))
	my /= float64(len(ys))
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Render prints the ladder as a table.
func (r *ScaleResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Sparse-first scale ladder (moments=%d, %d workers)\n", r.Moments, r.GoMaxProcs)
	fmt.Fprintf(w, "%10s %10s %9s %9s %6s %8s %8s %8s %8s %8s %8s\n",
		"nodes", "nnz", "external", "kept", "order", "build", "part", "schur", "factor", "krylov", "reduce")
	for _, rg := range r.Rungs {
		fmt.Fprintf(w, "%10d %10d %9d %9d %6d %7.2fs %7.3fs %7.3fs %7.2fs %7.2fs %7.2fs\n",
			rg.Nodes, rg.NNZ, rg.External, rg.Kept, rg.Order,
			rg.BuildSeconds, rg.PartitionSeconds, rg.SchurSeconds,
			rg.FactorSeconds, rg.KrylovSeconds, rg.ReduceSeconds)
	}
	fmt.Fprintf(w, "log-log fit: reduce_seconds ∝ nnz^%.2f\n", r.FitExponent)
	fmt.Fprintf(w, "ward exactness: max relative deviation %.3g on %d nodes (bar %g)\n",
		r.WardMaxError, r.WardErrorCheckNodes, WardTolerance)
}

// WriteJSON writes the machine-readable record (BENCH_scale.json).
func (r *ScaleResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
