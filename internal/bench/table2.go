package bench

import (
	"fmt"
	"io"

	"repro/internal/grid"
)

// Table2Row is one benchmark circuit's outcome across schemes.
type Table2Row struct {
	Ckt     string
	Nodes   int
	Ports   int
	Moments int
	// Results per scheme in the paper's column order:
	// PRIMA, SVDMOR, EKS, BDSM.
	Results []SchemeResult
}

// Table2Result is the full Table II reproduction.
type Table2Result struct {
	Rows  []Table2Row
	Scale float64
}

// TableII reruns the paper's CPU-time comparison on the scaled ckt1–ckt5
// analogues. The memory budget reproduces the "break down" failures of
// PRIMA/SVDMOR on the larger cases: at Scale = 1 and a 4 GiB budget, ckt4
// and ckt5 exceed the dense-basis budget exactly as on the paper's
// workstation. Skip ckt5 at scales above ~0.5 unless you have patience:
// it is a 1.7M-node factorization.
func TableII(cfg Config, ckts []string) (*Table2Result, error) {
	cfg.defaults()
	if len(ckts) == 0 {
		ckts = grid.Names()
	}
	budget := cfg.MemoryBudget
	res := &Table2Result{Scale: cfg.Scale}
	for _, name := range ckts {
		sys, gcfg, err := buildSystem(name, cfg.Scale)
		if err != nil {
			return nil, fmt.Errorf("bench: TableII %s: %w", name, err)
		}
		l := grid.MatchedMoments(name)
		n, m, _ := sys.Dims()
		row := Table2Row{Ckt: name, Nodes: n, Ports: m, Moments: l}

		pr, _ := runPRIMA(sys, l, budget)
		if pr.Err != nil && !pr.BrokeDown {
			return nil, pr.Err
		}
		sv, _ := runSVDMOR(sys, l, budget)
		if sv.Err != nil && !sv.BrokeDown {
			return nil, sv.Err
		}
		ek, _ := runEKS(sys, l)
		if ek.Err != nil {
			return nil, ek.Err
		}
		bd, _ := runBDSM(sys, l, cfg.Workers)
		if bd.Err != nil {
			return nil, bd.Err
		}
		row.Results = []SchemeResult{pr, sv, ek, bd}
		res.Rows = append(res.Rows, row)
		_ = gcfg
	}
	return res, nil
}

// Scheme returns the named scheme's result in a row, or nil.
func (r *Table2Row) Scheme(name string) *SchemeResult {
	for i := range r.Results {
		if r.Results[i].Scheme == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Render prints the Table II reproduction.
func (t *Table2Result) Render(w io.Writer) {
	line(w, "Table II (measured) — MOR CPU times, scale = %.2f", t.Scale)
	line(w, "%-6s %8s %6s | %12s %9s | %12s %9s | %12s %9s | %12s %9s | %7s",
		"ckt", "nodes", "ports",
		"PRIMA time", "ROM", "SVDMOR time", "ROM", "EKS time", "ROM", "BDSM time", "ROM", "moments")
	for _, row := range t.Rows {
		cells := make([]string, 0, 8)
		for _, sc := range row.Results {
			if sc.BrokeDown {
				cells = append(cells, "break down", "N/A")
			} else {
				cells = append(cells, fmtDuration(sc.MORTime), fmt.Sprintf("%d", sc.ROMSize))
			}
		}
		line(w, "%-6s %8d %6d | %12s %9s | %12s %9s | %12s %9s | %12s %9s | %7d",
			row.Ckt, row.Nodes, row.Ports,
			cells[0], cells[1], cells[2], cells[3], cells[4], cells[5], cells[6], cells[7],
			row.Moments)
	}
	line(w, "note: EKS ROMs are not reusable (rebuilt per input pattern).")
}
