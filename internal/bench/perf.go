package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/grid"
	"repro/internal/lti"
	"repro/internal/serve"
	"repro/internal/sim"
)

// PerfBench is one micro-benchmark sample with the evaluation telemetry that
// ns/op alone cannot show: how many pencil factorizations and which
// evaluation path each operation used.
type PerfBench struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Per-op lti telemetry: pencil LU factorizations, evaluations through
	// LU factors, evaluations through pole–residue forms.
	FactorizationsPerOp float64 `json:"factorizations_per_op"`
	FactoredEvalsPerOp  float64 `json:"factored_evals_per_op"`
	ModalEvalsPerOp     float64 `json:"modal_evals_per_op"`
}

// PerfResult is the machine-readable benchmark record pgbench emits as
// BENCH_<name>.json — the start of the repo's benchmark trajectory.
type PerfResult struct {
	Name        string  `json:"name"`
	Benchmark   string  `json:"benchmark"`
	Scale       float64 `json:"scale"`
	Order       int     `json:"order"`
	Blocks      int     `json:"blocks"`
	ModalBlocks int     `json:"modal_blocks"`
	Ports       int     `json:"ports"`
	Outputs     int     `json:"outputs"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	GoVersion   string  `json:"go_version"`

	Results []PerfBench `json:"results"`

	// SpeedupEvalModalVsCached and SpeedupSweepModalVsCached summarize the
	// headline ratios (cached-LU ns/op ÷ modal ns/op).
	SpeedupEvalModalVsCached  float64 `json:"speedup_eval_modal_vs_cached"`
	SpeedupSweepModalVsCached float64 `json:"speedup_sweep_modal_vs_cached"`
}

// runPerfBench runs one benchmark closure under testing.Benchmark and folds
// the lti counters into per-op telemetry.
func runPerfBench(name string, fn func(b *testing.B)) PerfBench {
	var counters lti.EvalCounters
	var n int
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		lti.ResetCounters()
		fn(b)
		// testing.Benchmark reruns the closure with growing b.N; the last
		// (largest) run's counters win, matching res.N below.
		counters = lti.Counters()
		n = b.N
	})
	pb := PerfBench{
		Name:        name,
		N:           res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if n > 0 {
		pb.FactorizationsPerOp = float64(counters.Factorizations) / float64(n)
		pb.FactoredEvalsPerOp = float64(counters.FactoredEvals) / float64(n)
		pb.ModalEvalsPerOp = float64(counters.ModalEvals) / float64(n)
	}
	return pb
}

// Perf measures the evaluation paths head to head on one reduced model:
// cold factorization, cached-LU, and modal, for full-matrix evaluations,
// single-column evaluations, and 60-point sweeps. It is the quantitative
// record of what "diagonalize blocks once, evaluate in O(q)" buys.
func Perf(cfg Config) (*PerfResult, error) {
	cfg.defaults()
	const name = grid.Ckt1
	sys, _, err := buildSystem(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	sr, rom := runBDSM(sys, grid.MatchedMoments(name), cfg.Workers)
	if sr.Err != nil {
		return nil, sr.Err
	}
	ms, err := rom.Modalize()
	if err != nil {
		return nil, fmt.Errorf("bench: modalize: %w", err)
	}
	modalBlocks, _ := ms.ModalCount()
	order, m, p := rom.Dims()

	s := complex(0, 1e9)
	cache := serve.NewFactorCache(0)
	const modelID = "perf"
	omegas, err := sim.LogGrid(1e5, 1e15, 60)
	if err != nil {
		return nil, err
	}

	out := &PerfResult{
		Name:        "modal",
		Benchmark:   name,
		Scale:       cfg.Scale,
		Order:       order,
		Blocks:      len(rom.Blocks),
		ModalBlocks: modalBlocks,
		Ports:       m,
		Outputs:     p,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}

	out.Results = append(out.Results, runPerfBench("EvalColdFactorization", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rom.Eval(s); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if _, _, err := cache.GetOrFactor(modelID, rom, s); err != nil {
		return nil, err
	}
	out.Results = append(out.Results, runPerfBench("EvalCachedLU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, _, err := cache.GetOrFactor(modelID, rom, s)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.Eval(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	out.Results = append(out.Results, runPerfBench("EvalModal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ms.Eval(s); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Single-column hot path with caller-pooled buffers (the per-point cost
	// inside a sweep): both allocation-free, only one factorization-free.
	dst := make([]complex128, p)
	fcol, _, err := cache.GetOrFactorColumn(modelID, rom, s, 0)
	if err != nil {
		return nil, err
	}
	scratch := make([]complex128, fcol.ScratchLen())
	out.Results = append(out.Results, runPerfBench("EvalColumnCachedLU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, _, err := cache.GetOrFactorColumn(modelID, rom, s, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := f.EvalColumnInto(dst, scratch, 0); err != nil {
				b.Fatal(err)
			}
		}
	}))
	out.Results = append(out.Results, runPerfBench("EvalColumnModal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ms.EvalColumnInto(dst, s, 0); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Warm 60-point single-entry sweep: the serving steady state. The
	// factored variant hits the cache at every point; the modal variant is
	// one vectorized residue pass.
	for _, w := range omegas {
		if _, _, err := cache.GetOrFactorColumn(modelID, rom, complex(0, w), 0); err != nil {
			return nil, err
		}
	}
	out.Results = append(out.Results, runPerfBench("SweepCachedLU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range omegas {
				f, _, err := cache.GetOrFactorColumn(modelID, rom, complex(0, w), 0)
				if err != nil {
					b.Fatal(err)
				}
				if err := f.EvalColumnInto(dst, scratch, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	}))
	sweepDst := make([]complex128, len(omegas))
	out.Results = append(out.Results, runPerfBench("SweepModal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ms.SweepEntryInto(sweepDst, 0, 0, omegas); err != nil {
				b.Fatal(err)
			}
		}
	}))

	byName := map[string]PerfBench{}
	for _, r := range out.Results {
		byName[r.Name] = r
	}
	if a, b := byName["EvalCachedLU"], byName["EvalModal"]; b.NsPerOp > 0 {
		out.SpeedupEvalModalVsCached = a.NsPerOp / b.NsPerOp
	}
	if a, b := byName["SweepCachedLU"], byName["SweepModal"]; b.NsPerOp > 0 {
		out.SpeedupSweepModalVsCached = a.NsPerOp / b.NsPerOp
	}
	return out, nil
}

// Render prints the benchmark table.
func (p *PerfResult) Render(w io.Writer) {
	line(w, "%s @ scale %g: order %d, %d blocks (%d modal), %d ports × %d outputs, GOMAXPROCS %d",
		p.Benchmark, p.Scale, p.Order, p.Blocks, p.ModalBlocks, p.Ports, p.Outputs, p.GoMaxProcs)
	line(w, "%-24s %12s %10s %12s %10s %10s %10s", "benchmark", "ns/op", "allocs/op", "B/op", "factor/op", "lu-ev/op", "modal-ev/op")
	for _, r := range p.Results {
		line(w, "%-24s %12.0f %10d %12d %10.2f %10.2f %10.2f",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp,
			r.FactorizationsPerOp, r.FactoredEvalsPerOp, r.ModalEvalsPerOp)
	}
	line(w, "speedup (eval, modal vs cached-LU):  %.1f×", p.SpeedupEvalModalVsCached)
	line(w, "speedup (sweep, modal vs cached-LU): %.1f×", p.SpeedupSweepModalVsCached)
}

// WriteJSON writes the machine-readable record (BENCH_<name>.json).
func (p *PerfResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
