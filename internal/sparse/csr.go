package sparse

import "fmt"

// CSR is a compressed sparse row matrix. Row i occupies the half-open range
// [RowPtr[i], RowPtr[i+1]) of ColIdx/Val; column indices within a row are
// strictly increasing.
type CSR[T Scalar] struct {
	rows, cols int
	RowPtr     []int
	ColIdx     []int
	Val        []T
}

// NewCSR assembles a CSR matrix from raw compressed arrays. The arrays are
// used directly (not copied); callers must ensure they satisfy the format
// invariants.
func NewCSR[T Scalar](rows, cols int, rowPtr, colIdx []int, val []T) *CSR[T] {
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("sparse: CSR rowPtr length %d, want %d", len(rowPtr), rows+1))
	}
	if len(colIdx) != len(val) || len(colIdx) != rowPtr[rows] {
		panic("sparse: CSR colIdx/val length mismatch")
	}
	return &CSR[T]{rows: rows, cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// Dims returns the matrix dimensions.
func (a *CSR[T]) Dims() (rows, cols int) { return a.rows, a.cols }

// NNZ returns the number of stored entries.
func (a *CSR[T]) NNZ() int { return len(a.Val) }

// Clone returns a deep copy of the matrix.
func (a *CSR[T]) Clone() *CSR[T] {
	b := &CSR[T]{
		rows:   a.rows,
		cols:   a.cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]T(nil), a.Val...),
	}
	return b
}

// At returns the value at (i, j), zero if the entry is not stored. Lookup is
// a binary search within the row; use iteration for bulk access.
func (a *CSR[T]) At(i, j int) T {
	if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
		panic(fmt.Sprintf("sparse: CSR index (%d,%d) out of range %d×%d", i, j, a.rows, a.cols))
	}
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case a.ColIdx[mid] < j:
			lo = mid + 1
		case a.ColIdx[mid] > j:
			hi = mid
		default:
			return a.Val[mid]
		}
	}
	var zero T
	return zero
}

// MatVec computes dst = A*x. dst must have length rows and x length cols;
// dst and x must not alias.
func (a *CSR[T]) MatVec(dst, x []T) {
	if len(dst) != a.rows || len(x) != a.cols {
		panic("sparse: CSR MatVec dimension mismatch")
	}
	for i := 0; i < a.rows; i++ {
		var sum T
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] = sum
	}
}

// MatVecAdd computes dst += alpha * A*x.
func (a *CSR[T]) MatVecAdd(dst []T, alpha T, x []T) {
	if len(dst) != a.rows || len(x) != a.cols {
		panic("sparse: CSR MatVecAdd dimension mismatch")
	}
	for i := 0; i < a.rows; i++ {
		var sum T
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] += alpha * sum
	}
}

// MatVecT computes dst = Aᵀ*x (no conjugation). dst must have length cols
// and x length rows.
func (a *CSR[T]) MatVecT(dst, x []T) {
	if len(dst) != a.cols || len(x) != a.rows {
		panic("sparse: CSR MatVecT dimension mismatch")
	}
	for j := range dst {
		var zero T
		dst[j] = zero
	}
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if IsZero(xi) {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			dst[a.ColIdx[k]] += a.Val[k] * xi
		}
	}
}

// MatMat computes the dense product dst = A*X where X is a cols×nx dense
// matrix stored column-major as nx contiguous columns, and dst is rows×nx in
// the same layout. Columns are independent, so callers may shard the work.
func (a *CSR[T]) MatMat(dst, x [][]T) {
	if len(dst) != len(x) {
		panic("sparse: CSR MatMat column count mismatch")
	}
	for c := range x {
		a.MatVec(dst[c], x[c])
	}
}

// Transpose returns Aᵀ as a new CSR matrix.
func (a *CSR[T]) Transpose() *CSR[T] {
	ptr := make([]int, a.cols+1)
	for _, j := range a.ColIdx {
		ptr[j+1]++
	}
	for j := 0; j < a.cols; j++ {
		ptr[j+1] += ptr[j]
	}
	idx := make([]int, len(a.ColIdx))
	val := make([]T, len(a.Val))
	next := append([]int(nil), ptr[:a.cols]...)
	for i := 0; i < a.rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			p := next[j]
			idx[p] = i
			val[p] = a.Val[k]
			next[j]++
		}
	}
	return &CSR[T]{rows: a.cols, cols: a.rows, RowPtr: ptr, ColIdx: idx, Val: val}
}

// ToCSC converts the matrix to CSC format.
func (a *CSR[T]) ToCSC() *CSC[T] {
	t := a.Transpose()
	return &CSC[T]{rows: a.rows, cols: a.cols, ColPtr: t.RowPtr, RowIdx: t.ColIdx, Val: t.Val}
}

// Scale multiplies every stored entry by alpha in place.
func (a *CSR[T]) Scale(alpha T) {
	for i := range a.Val {
		a.Val[i] *= alpha
	}
}

// Add returns alpha*A + beta*B as a new CSR matrix. A and B must have equal
// dimensions. The result pattern is the union of both patterns with exact
// zeros retained (keeps symbolic structure stable across expansion points).
func (a *CSR[T]) Add(alpha T, b *CSR[T], beta T) *CSR[T] {
	if a.rows != b.rows || a.cols != b.cols {
		panic("sparse: CSR Add dimension mismatch")
	}
	ptr := make([]int, a.rows+1)
	idx := make([]int, 0, a.NNZ()+b.NNZ())
	val := make([]T, 0, a.NNZ()+b.NNZ())
	for i := 0; i < a.rows; i++ {
		ka, ea := a.RowPtr[i], a.RowPtr[i+1]
		kb, eb := b.RowPtr[i], b.RowPtr[i+1]
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && a.ColIdx[ka] < b.ColIdx[kb]):
				idx = append(idx, a.ColIdx[ka])
				val = append(val, alpha*a.Val[ka])
				ka++
			case ka >= ea || b.ColIdx[kb] < a.ColIdx[ka]:
				idx = append(idx, b.ColIdx[kb])
				val = append(val, beta*b.Val[kb])
				kb++
			default:
				idx = append(idx, a.ColIdx[ka])
				val = append(val, alpha*a.Val[ka]+beta*b.Val[kb])
				ka++
				kb++
			}
		}
		ptr[i+1] = len(idx)
	}
	return &CSR[T]{rows: a.rows, cols: a.cols, RowPtr: ptr, ColIdx: idx, Val: val}
}

// ToDense expands the matrix into a dense row-major [][]T.
func (a *CSR[T]) ToDense() [][]T {
	d := make([][]T, a.rows)
	buf := make([]T, a.rows*a.cols)
	for i := range d {
		d[i] = buf[i*a.cols : (i+1)*a.cols]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i][a.ColIdx[k]] = a.Val[k]
		}
	}
	return d
}

// ToComplex widens a real CSR matrix to complex128 with the same pattern.
func ToComplex(a *CSR[float64]) *CSR[complex128] {
	val := make([]complex128, len(a.Val))
	for i, v := range a.Val {
		val[i] = complex(v, 0)
	}
	return &CSR[complex128]{
		rows:   a.rows,
		cols:   a.cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    val,
	}
}

// IsStructurallySymmetric reports whether the nonzero pattern of A equals
// the pattern of Aᵀ.
func (a *CSR[T]) IsStructurallySymmetric() bool {
	if a.rows != a.cols {
		return false
	}
	t := a.Transpose()
	for i := range a.RowPtr {
		if a.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != t.ColIdx[k] {
			return false
		}
	}
	return true
}
