package sparse

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Solver abstracts "apply A⁻¹" so that model reduction code can run either
// on a direct LU factorization (fast, memory-hungry) or on an iterative
// Krylov solver (slow, streaming) — mirroring the paper's note that the
// sparse LU "is skipped in ckts3-5 to save memory, at the cost of more
// simulation time".
type Solver[T Scalar] interface {
	// Solve stores A⁻¹ b in dst; dst and b may alias.
	Solve(dst, b []T) error
	// N returns the system dimension.
	N() int
}

// ErrNoConvergence is returned when an iterative solver fails to reach the
// requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("sparse: iterative solver did not converge")

// IterOptions configures the iterative solvers.
type IterOptions struct {
	// Tol is the relative residual tolerance ‖b - Ax‖/‖b‖. Default 1e-12.
	Tol float64
	// MaxIter bounds the iteration count. Default 4·n.
	MaxIter int
}

func (o *IterOptions) defaults(n int) {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 4 * n
	}
}

// CG is a Jacobi-preconditioned conjugate-gradient solver for symmetric
// positive definite systems, such as (s0·C - G) of an RC power grid at a
// real expansion point s0 ≥ 0 in the paper's sign convention.
type CG struct {
	a    *CSR[float64]
	dinv []float64
	opts IterOptions
	// iterations accumulates the total iteration count across Solve calls.
	iterations atomic.Int64
}

// Iterations reports the total iteration count across all Solve calls.
func (s *CG) Iterations() int { return int(s.iterations.Load()) }

// NewCG builds a CG solver for the SPD matrix a.
func NewCG(a *CSR[float64], opts IterOptions) (*CG, error) {
	n, m := a.Dims()
	if n != m {
		return nil, fmt.Errorf("sparse: CG requires a square matrix, got %d×%d", n, m)
	}
	opts.defaults(n)
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("sparse: CG requires nonzero diagonal (row %d)", i)
		}
		dinv[i] = 1 / d
	}
	return &CG{a: a, dinv: dinv, opts: opts}, nil
}

// N returns the system dimension.
func (s *CG) N() int { n, _ := s.a.Dims(); return n }

// Solve runs preconditioned CG from a zero initial guess.
func (s *CG) Solve(dst, b []float64) error {
	n := s.N()
	if len(dst) != n || len(b) != n {
		return fmt.Errorf("sparse: CG Solve length mismatch (n=%d)", n)
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	bnorm := Nrm2(r)
	if bnorm == 0 {
		ZeroVec(dst)
		return nil
	}
	for i := range z {
		z[i] = s.dinv[i] * r[i]
	}
	copy(p, z)
	rz := Dot(r, z)
	for it := 0; it < s.opts.MaxIter; it++ {
		s.a.MatVec(ap, p)
		alpha := rz / Dot(p, ap)
		Axpy(x, alpha, p)
		Axpy(r, -alpha, ap)
		s.iterations.Add(1)
		if Nrm2(r)/bnorm <= s.opts.Tol {
			copy(dst, x)
			return nil
		}
		for i := range z {
			z[i] = s.dinv[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	copy(dst, x)
	return fmt.Errorf("%w: CG after %d iterations (rel res %.3e)",
		ErrNoConvergence, s.opts.MaxIter, Nrm2(r)/bnorm)
}

// BiCGStab is a Jacobi-preconditioned stabilized bi-conjugate gradient
// solver for general (unsymmetric) systems, such as the RLC MNA pencil that
// couples node voltages and inductor currents.
type BiCGStab[T Scalar] struct {
	a    *CSR[T]
	dinv []T
	opts IterOptions
	// iterations accumulates the total iteration count across Solve calls.
	iterations atomic.Int64
}

// Iterations reports the total iteration count across all Solve calls.
func (s *BiCGStab[T]) Iterations() int { return int(s.iterations.Load()) }

// NewBiCGStab builds a BiCGStab solver for the square matrix a.
func NewBiCGStab[T Scalar](a *CSR[T], opts IterOptions) (*BiCGStab[T], error) {
	n, m := a.Dims()
	if n != m {
		return nil, fmt.Errorf("sparse: BiCGStab requires a square matrix, got %d×%d", n, m)
	}
	opts.defaults(n)
	dinv := make([]T, n)
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if IsZero(d) {
			// Zero diagonal (e.g. inductor-current rows): fall back to the
			// identity for that row of the preconditioner.
			dinv[i] = FromFloat[T](1)
			continue
		}
		dinv[i] = FromFloat[T](1) / d
	}
	return &BiCGStab[T]{a: a, dinv: dinv, opts: opts}, nil
}

// N returns the system dimension.
func (s *BiCGStab[T]) N() int { n, _ := s.a.Dims(); return n }

// Solve runs preconditioned BiCGStab from a zero initial guess.
func (s *BiCGStab[T]) Solve(dst, b []T) error {
	n := s.N()
	if len(dst) != n || len(b) != n {
		return fmt.Errorf("sparse: BiCGStab Solve length mismatch (n=%d)", n)
	}
	x := make([]T, n)
	r := append([]T(nil), b...)
	rhat := append([]T(nil), b...)
	p := make([]T, n)
	v := make([]T, n)
	sv := make([]T, n)
	t := make([]T, n)
	phat := make([]T, n)
	shat := make([]T, n)

	bnorm := Nrm2(b)
	if bnorm == 0 {
		ZeroVec(dst)
		return nil
	}
	var rho, alpha, omega T
	one := FromFloat[T](1)
	rho, alpha, omega = one, one, one
	ZeroVec(p)
	ZeroVec(v)

	for it := 0; it < s.opts.MaxIter; it++ {
		rhoNew := DotConj(rhat, r)
		if IsZero(rhoNew) {
			break
		}
		beta := (rhoNew / rho) * (alpha / omega)
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		rho = rhoNew
		for i := range phat {
			phat[i] = s.dinv[i] * p[i]
		}
		s.a.MatVec(v, phat)
		alpha = rho / DotConj(rhat, v)
		for i := range sv {
			sv[i] = r[i] - alpha*v[i]
		}
		s.iterations.Add(1)
		if Nrm2(sv)/bnorm <= s.opts.Tol {
			Axpy(x, alpha, phat)
			copy(dst, x)
			return nil
		}
		for i := range shat {
			shat[i] = s.dinv[i] * sv[i]
		}
		s.a.MatVec(t, shat)
		tt := DotConj(t, t)
		if IsZero(tt) {
			break
		}
		omega = DotConj(t, sv) / tt
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
		}
		for i := range r {
			r[i] = sv[i] - omega*t[i]
		}
		if Nrm2(r)/bnorm <= s.opts.Tol {
			copy(dst, x)
			return nil
		}
		if IsZero(omega) {
			break
		}
	}
	copy(dst, x)
	return fmt.Errorf("%w: BiCGStab (rel res %.3e)", ErrNoConvergence, Nrm2(r)/bnorm)
}
