package sparse

import (
	"fmt"
)

// COO is a coordinate-format (triplet) sparse matrix builder. Entries may be
// added in any order; duplicates are summed when the matrix is compiled to
// CSR or CSC. COO is the natural target of MNA stamping, where several
// circuit elements contribute to the same matrix position.
type COO[T Scalar] struct {
	rows, cols int
	ri, ci     []int
	v          []T
}

// NewCOO returns an empty rows×cols triplet builder.
func NewCOO[T Scalar](rows, cols int) *COO[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative COO dimensions %d×%d", rows, cols))
	}
	return &COO[T]{rows: rows, cols: cols}
}

// Dims returns the matrix dimensions.
func (a *COO[T]) Dims() (rows, cols int) { return a.rows, a.cols }

// Reserve grows the triplet storage to hold at least n entries without
// further reallocation. Assembly code that knows its stamp count up front
// (grid generators, Schur accumulation) uses it to avoid append growth on
// million-entry builds.
func (a *COO[T]) Reserve(n int) {
	if n <= cap(a.v) {
		return
	}
	ri := make([]int, len(a.ri), n)
	copy(ri, a.ri)
	a.ri = ri
	ci := make([]int, len(a.ci), n)
	copy(ci, a.ci)
	a.ci = ci
	v := make([]T, len(a.v), n)
	copy(v, a.v)
	a.v = v
}

// NNZ returns the number of stored triplets (duplicates counted separately).
func (a *COO[T]) NNZ() int { return len(a.v) }

// Add appends the triplet (i, j, v). Zero values are kept so that stamping
// code does not need to special-case cancelling contributions; they are
// dropped during compilation.
func (a *COO[T]) Add(i, j int, v T) {
	if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
		panic(fmt.Sprintf("sparse: COO index (%d,%d) out of range %d×%d", i, j, a.rows, a.cols))
	}
	a.ri = append(a.ri, i)
	a.ci = append(a.ci, j)
	a.v = append(a.v, v)
}

// compile orders triplets by (major, minor), sums duplicates and drops exact
// zeros, returning the compressed arrays. major selects row-major (CSR) or
// column-major (CSC) compilation.
//
// Ordering is a two-pass stable counting sort — O(nnz + rows + cols) instead
// of the O(nnz·log nnz) of a comparison sort, which matters when assembling
// million-node grids — and its stability makes duplicate summation follow
// insertion (stamping) order, so compiled values are reproducible
// bit-for-bit from the stamping sequence alone.
func (a *COO[T]) compile(rowMajor bool) (ptr []int, idx []int, val []T) {
	n := len(a.v)
	maj, min := a.ri, a.ci
	majDim, minDim := a.rows, a.cols
	if !rowMajor {
		maj, min = a.ci, a.ri
		majDim, minDim = a.cols, a.rows
	}

	// Pass 1: stable counting sort by minor index.
	count := make([]int, max(majDim, minDim)+1)
	for _, j := range min {
		count[j+1]++
	}
	for j := 0; j < minDim; j++ {
		count[j+1] += count[j]
	}
	byMinor := make([]int, n)
	for t := 0; t < n; t++ {
		j := min[t]
		byMinor[count[j]] = t
		count[j]++
	}

	// Pass 2: stable counting sort by major index over the minor-sorted
	// sequence, yielding (major, minor, insertion)-ordered triplets.
	clear(count)
	for _, i := range maj {
		count[i+1]++
	}
	for i := 0; i < majDim; i++ {
		count[i+1] += count[i]
	}
	order := make([]int, n)
	for _, t := range byMinor {
		i := maj[t]
		order[count[i]] = t
		count[i]++
	}

	ptr = make([]int, majDim+1)
	idx = make([]int, 0, n)
	val = make([]T, 0, n)
	for k := 0; k < n; {
		t := order[k]
		m, mi := maj[t], min[t]
		var sum T
		for k < n {
			t = order[k]
			if maj[t] != m || min[t] != mi {
				break
			}
			sum += a.v[t]
			k++
		}
		if !IsZero(sum) {
			idx = append(idx, mi)
			val = append(val, sum)
			ptr[m+1]++
		}
	}
	for i := 0; i < majDim; i++ {
		ptr[i+1] += ptr[i]
	}
	return ptr, idx, val
}

// ToCSR compiles the triplets into a CSR matrix, summing duplicates.
func (a *COO[T]) ToCSR() *CSR[T] {
	ptr, idx, val := a.compile(true)
	return &CSR[T]{rows: a.rows, cols: a.cols, RowPtr: ptr, ColIdx: idx, Val: val}
}

// ToCSC compiles the triplets into a CSC matrix, summing duplicates.
func (a *COO[T]) ToCSC() *CSC[T] {
	ptr, idx, val := a.compile(false)
	return &CSC[T]{rows: a.rows, cols: a.cols, ColPtr: ptr, RowIdx: idx, Val: val}
}
