package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format (triplet) sparse matrix builder. Entries may be
// added in any order; duplicates are summed when the matrix is compiled to
// CSR or CSC. COO is the natural target of MNA stamping, where several
// circuit elements contribute to the same matrix position.
type COO[T Scalar] struct {
	rows, cols int
	ri, ci     []int
	v          []T
}

// NewCOO returns an empty rows×cols triplet builder.
func NewCOO[T Scalar](rows, cols int) *COO[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative COO dimensions %d×%d", rows, cols))
	}
	return &COO[T]{rows: rows, cols: cols}
}

// Dims returns the matrix dimensions.
func (a *COO[T]) Dims() (rows, cols int) { return a.rows, a.cols }

// NNZ returns the number of stored triplets (duplicates counted separately).
func (a *COO[T]) NNZ() int { return len(a.v) }

// Add appends the triplet (i, j, v). Zero values are kept so that stamping
// code does not need to special-case cancelling contributions; they are
// dropped during compilation.
func (a *COO[T]) Add(i, j int, v T) {
	if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
		panic(fmt.Sprintf("sparse: COO index (%d,%d) out of range %d×%d", i, j, a.rows, a.cols))
	}
	a.ri = append(a.ri, i)
	a.ci = append(a.ci, j)
	a.v = append(a.v, v)
}

// compile sorts triplets by (major, minor), sums duplicates and drops exact
// zeros, returning the compressed arrays. major selects row-major (CSR) or
// column-major (CSC) compilation.
func (a *COO[T]) compile(rowMajor bool) (ptr []int, idx []int, val []T) {
	n := len(a.v)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	maj, min := a.ri, a.ci
	majDim := a.rows
	if !rowMajor {
		maj, min = a.ci, a.ri
		majDim = a.cols
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		if maj[i] != maj[j] {
			return maj[i] < maj[j]
		}
		return min[i] < min[j]
	})

	ptr = make([]int, majDim+1)
	idx = make([]int, 0, n)
	val = make([]T, 0, n)
	for k := 0; k < n; {
		t := order[k]
		m, mi := maj[t], min[t]
		var sum T
		for k < n {
			t = order[k]
			if maj[t] != m || min[t] != mi {
				break
			}
			sum += a.v[t]
			k++
		}
		if !IsZero(sum) {
			idx = append(idx, mi)
			val = append(val, sum)
			ptr[m+1]++
		}
	}
	for i := 0; i < majDim; i++ {
		ptr[i+1] += ptr[i]
	}
	return ptr, idx, val
}

// ToCSR compiles the triplets into a CSR matrix, summing duplicates.
func (a *COO[T]) ToCSR() *CSR[T] {
	ptr, idx, val := a.compile(true)
	return &CSR[T]{rows: a.rows, cols: a.cols, RowPtr: ptr, ColIdx: idx, Val: val}
}

// ToCSC compiles the triplets into a CSC matrix, summing duplicates.
func (a *COO[T]) ToCSC() *CSC[T] {
	ptr, idx, val := a.compile(false)
	return &CSC[T]{rows: a.rows, cols: a.cols, ColPtr: ptr, RowIdx: idx, Val: val}
}
