package sparse

import "sort"

// Ordering selects the fill-reducing ordering used to permute a matrix
// before sparse LU factorization.
type Ordering int

const (
	// OrderNatural factors the matrix as given.
	OrderNatural Ordering = iota
	// OrderRCM applies reverse Cuthill–McKee bandwidth reduction. Cheap and
	// effective for mesh-like power grids at moderate sizes.
	OrderRCM
	// OrderAMD applies a minimum-degree ordering on the symmetrized pattern
	// (quotient-graph implementation with element absorption). Best fill
	// behaviour for large grids; the library default.
	OrderAMD
)

func (o Ordering) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderAMD:
		return "amd"
	}
	return "unknown"
}

// symmetrizedAdjacency builds the adjacency structure of the undirected
// graph of A + Aᵀ without self loops, as slice-of-neighbour-lists.
func symmetrizedAdjacency[T Scalar](a *CSC[T]) [][]int32 {
	n, _ := a.Dims()
	deg := make([]int, n)
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			if i != j {
				deg[i]++
				deg[j]++
			}
		}
	}
	adj := make([][]int32, n)
	buf := make([]int32, 0)
	total := 0
	for i := 0; i < n; i++ {
		total += deg[i]
	}
	buf = make([]int32, total)
	pos := 0
	for i := 0; i < n; i++ {
		adj[i] = buf[pos : pos : pos+deg[i]]
		pos += deg[i]
	}
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			if i != j {
				adj[i] = append(adj[i], int32(j))
				adj[j] = append(adj[j], int32(i))
			}
		}
	}
	// Deduplicate neighbour lists (A and Aᵀ overlap on symmetric entries).
	for i := range adj {
		lst := adj[i]
		sort.Slice(lst, func(x, y int) bool { return lst[x] < lst[y] })
		w := 0
		for r := 0; r < len(lst); r++ {
			if w == 0 || lst[r] != lst[w-1] {
				lst[w] = lst[r]
				w++
			}
		}
		adj[i] = lst[:w]
	}
	return adj
}

// RCM computes a reverse Cuthill–McKee ordering of the symmetrized pattern
// of A. The returned permutation maps new index to old index.
func RCM[T Scalar](a *CSC[T]) Perm {
	n, _ := a.Dims()
	adj := symmetrizedAdjacency(a)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	// Process each connected component from a pseudo-peripheral start node.
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(adj, start)
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			// Neighbours in increasing-degree order per Cuthill–McKee.
			nbrs := make([]int, 0, len(adj[v]))
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, int(w))
				}
			}
			sort.Slice(nbrs, func(x, y int) bool { return len(adj[nbrs[x]]) < len(adj[nbrs[y]]) })
			queue = append(queue, nbrs...)
		}
	}
	// Reverse for RCM.
	p := make(Perm, n)
	for i, v := range order {
		p[n-1-i] = v
	}
	return p
}

// pseudoPeripheral locates an approximately peripheral node of the component
// containing start by repeated BFS to the farthest level.
func pseudoPeripheral(adj [][]int32, start int) int {
	level := make([]int, len(adj))
	cur := start
	bestEcc := -1
	for iter := 0; iter < 8; iter++ {
		for i := range level {
			level[i] = -1
		}
		level[cur] = 0
		q := []int{cur}
		last := cur
		ecc := 0
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range adj[v] {
				if level[w] < 0 {
					level[w] = level[v] + 1
					if level[w] > ecc {
						ecc = level[w]
						last = int(w)
					}
					q = append(q, int(w))
				}
			}
		}
		if ecc <= bestEcc {
			break
		}
		bestEcc = ecc
		cur = last
	}
	return cur
}
