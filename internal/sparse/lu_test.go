package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian2D builds the 5-point grounded Laplacian of an nx×ny grid plus a
// diagonal shift — the archetypal power-grid conductance structure.
func laplacian2D(nx, ny int, shift float64) *CSC[float64] {
	n := nx * ny
	c := NewCOO[float64](n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			deg := 0.0
			if x > 0 {
				c.Add(i, id(x-1, y), -1)
				deg++
			}
			if x < nx-1 {
				c.Add(i, id(x+1, y), -1)
				deg++
			}
			if y > 0 {
				c.Add(i, id(x, y-1), -1)
				deg++
			}
			if y < ny-1 {
				c.Add(i, id(x, y+1), -1)
				deg++
			}
			c.Add(i, i, deg+shift)
		}
	}
	return c.ToCSC()
}

func randomSquareCSC(rng *rand.Rand, n int, density float64) *CSC[float64] {
	c := NewCOO[float64](n, n)
	// Diagonally dominant to guarantee nonsingularity.
	for i := 0; i < n; i++ {
		c.Add(i, i, 4+rng.Float64())
	}
	extra := int(density * float64(n*n))
	for k := 0; k < extra; k++ {
		c.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	return c.ToCSC()
}

func solveResidual(t *testing.T, a *CSC[float64], lu *LU[float64], rng *rand.Rand) float64 {
	t.Helper()
	n, _ := a.Dims()
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MatVec(b, want)
	got := make([]float64, n)
	if err := lu.Solve(got, b); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	maxErr := 0.0
	for i := range got {
		if e := math.Abs(got[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestLUSolveIdentity(t *testing.T) {
	c := NewCOO[float64](3, 3)
	for i := 0; i < 3; i++ {
		c.Add(i, i, 1)
	}
	lu, err := FactorLU(c.ToCSC(), LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := make([]float64, 3)
	if err := lu.Solve(x, b); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-15 {
			t.Fatalf("identity solve x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestLUSolveKnown2x2(t *testing.T) {
	// [2 1; 1 3] x = [3; 5]  =>  x = [4/5, 7/5].
	c := NewCOO[float64](2, 2)
	c.Add(0, 0, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(1, 1, 3)
	lu, err := FactorLU(c.ToCSC(), LUOptions{Ordering: OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	if err := lu.Solve(x, []float64{3, 5}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-14 || math.Abs(x[1]-1.4) > 1e-14 {
		t.Fatalf("x = %v, want [0.8 1.4]", x)
	}
	if d := lu.Det(); math.Abs(d-5) > 1e-12 {
		t.Errorf("Det = %g, want 5", d)
	}
}

func TestLURequiresPivoting(t *testing.T) {
	// Zero diagonal head forces a row interchange.
	c := NewCOO[float64](2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(1, 1, 1)
	lu, err := FactorLU(c.ToCSC(), LUOptions{Ordering: OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	if err := lu.Solve(x, []float64{2, 5}); err != nil {
		t.Fatal(err)
	}
	// x1 = 2, x0 = 5 - x1 = 3.
	if math.Abs(x[0]-3) > 1e-14 || math.Abs(x[1]-2) > 1e-14 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestLUSingularDetected(t *testing.T) {
	c := NewCOO[float64](3, 3)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	// Row/column 2 entirely zero.
	c.Add(2, 2, 0)
	_, err := FactorLU(c.ToCSC(), LUOptions{})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquareRejected(t *testing.T) {
	c := NewCOO[float64](2, 3)
	c.Add(0, 0, 1)
	if _, err := FactorLU(c.ToCSC(), LUOptions{}); err == nil {
		t.Fatal("non-square factorization must fail")
	}
}

func TestLUSolveRandomAllOrderings(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
		for trial := 0; trial < 10; trial++ {
			n := 5 + rng.Intn(60)
			a := randomSquareCSC(rng, n, 0.1)
			lu, err := FactorLU(a, LUOptions{Ordering: ord})
			if err != nil {
				t.Fatalf("%v n=%d: %v", ord, n, err)
			}
			if e := solveResidual(t, a, lu, rng); e > 1e-8 {
				t.Fatalf("%v n=%d: solve error %.3e", ord, n, e)
			}
		}
	}
}

func TestLUSolveLaplacian(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := laplacian2D(20, 17, 0.05)
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
		lu, err := FactorLU(a, LUOptions{Ordering: ord})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if e := solveResidual(t, a, lu, rng); e > 1e-8 {
			t.Fatalf("%v: solve error %.3e", ord, e)
		}
	}
}

func TestLUOrderingReducesFill(t *testing.T) {
	a := laplacian2D(40, 40, 0.05)
	nat, err := FactorLU(a, LUOptions{Ordering: OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	amd, err := FactorLU(a, LUOptions{Ordering: OrderAMD})
	if err != nil {
		t.Fatal(err)
	}
	if amd.NNZ() >= nat.NNZ() {
		t.Errorf("AMD fill %d not below natural fill %d on 40×40 grid", amd.NNZ(), nat.NNZ())
	}
}

func TestLUSolveManyMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomSquareCSC(rng, 30, 0.1)
	lu, err := FactorLU(a, LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cols := make([][]float64, 4)
	want := make([][]float64, 4)
	for c := range cols {
		cols[c] = mustVec(rng, 30)
		want[c] = make([]float64, 30)
		if err := lu.Solve(want[c], cols[c]); err != nil {
			t.Fatal(err)
		}
	}
	if err := lu.SolveMany(cols); err != nil {
		t.Fatal(err)
	}
	for c := range cols {
		for i := range cols[c] {
			if math.Abs(cols[c][i]-want[c][i]) > 1e-13 {
				t.Fatalf("SolveMany col %d row %d differs", c, i)
			}
		}
	}
}

func TestLUReconstructionProperty(t *testing.T) {
	// Verify A x = b round trip via residual ‖Ax - b‖/‖b‖ for random SPD-ish
	// systems under quick.Check.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		a := randomSquareCSC(rng, n, 0.15)
		lu, err := FactorLU(a, LUOptions{Ordering: OrderAMD})
		if err != nil {
			return false
		}
		b := mustVec(rng, n)
		x := make([]float64, n)
		if err := lu.Solve(x, b); err != nil {
			return false
		}
		r := make([]float64, n)
		a.MatVec(r, x)
		Axpy(r, -1, b)
		return Nrm2(r) <= 1e-8*(1+Nrm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLUComplexSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 25
	c := NewCOO[complex128](n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, complex(4+rng.Float64(), 1+rng.Float64()))
	}
	for k := 0; k < 3*n; k++ {
		c.Add(rng.Intn(n), rng.Intn(n), complex(rng.NormFloat64(), rng.NormFloat64()))
	}
	a := c.ToCSC()
	lu, err := FactorLU(a, LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	for i := range want {
		want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := make([]complex128, n)
	a.MatVec(b, want)
	got := make([]complex128, n)
	if err := lu.Solve(got, b); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("complex solve error at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestLUSolveAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomSquareCSC(rng, 20, 0.15)
	lu, err := FactorLU(a, LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := mustVec(rng, 20)
	want := make([]float64, 20)
	if err := lu.Solve(want, b); err != nil {
		t.Fatal(err)
	}
	// In-place: dst aliases b.
	if err := lu.Solve(b, b); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("aliased solve differs at %d", i)
		}
	}
}
