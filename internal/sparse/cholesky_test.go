package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskySolvesLaplacian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
		a := laplacian2D(17, 13, 0.3)
		ch, err := FactorCholesky(a, LUOptions{Ordering: ord})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		n, _ := a.Dims()
		want := mustVec(rng, n)
		b := make([]float64, n)
		a.MatVec(b, want)
		got := make([]float64, n)
		if err := ch.Solve(got, b); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("%v: error at %d: %g vs %g", ord, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskyMatchesLU(t *testing.T) {
	a := laplacian2D(12, 12, 0.5)
	n, _ := a.Dims()
	ch, err := FactorCholesky(a, LUOptions{Ordering: OrderAMD})
	if err != nil {
		t.Fatal(err)
	}
	lu, err := FactorLU(a, LUOptions{Ordering: OrderAMD})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b := mustVec(rng, n)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	if err := ch.Solve(x1, b); err != nil {
		t.Fatal(err)
	}
	if err := lu.Solve(x2, b); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-9*(1+math.Abs(x2[i])) {
			t.Fatalf("Cholesky/LU disagree at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
	// Cholesky stores roughly half of LU's fill on the same ordering.
	if ch.NNZ() >= lu.NNZ() {
		t.Errorf("Cholesky fill %d not below LU fill %d", ch.NNZ(), lu.NNZ())
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	c := NewCOO[float64](2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1) // indefinite
	if _, err := FactorCholesky(c.ToCSC(), LUOptions{}); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	// Positive semidefinite singular: [1 1; 1 1].
	s := NewCOO[float64](2, 2)
	s.Add(0, 0, 1)
	s.Add(0, 1, 1)
	s.Add(1, 0, 1)
	s.Add(1, 1, 1)
	if _, err := FactorCholesky(s.ToCSC(), LUOptions{}); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("singular PSD: err = %v, want ErrNotSPD", err)
	}
	if _, err := FactorCholesky(NewCOO[float64](2, 3).ToCSC(), LUOptions{}); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestCholeskyRandomSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		// SPD via AᵀA + shift on a random sparse A, symmetrized exactly.
		c := NewCOO[float64](n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, float64(n))
		}
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			v := rng.NormFloat64() * 0.5
			c.Add(i, j, v)
			c.Add(j, i, v)
		}
		a := c.ToCSC()
		ch, err := FactorCholesky(a, LUOptions{Ordering: OrderAMD})
		if err != nil {
			return false
		}
		want := mustVec(rng, n)
		b := make([]float64, n)
		a.MatVec(b, want)
		got := make([]float64, n)
		if err := ch.Solve(got, b); err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsSymmetric(t *testing.T) {
	c := NewCOO[float64](2, 2)
	c.Add(0, 1, 2)
	c.Add(1, 0, 2)
	c.Add(0, 0, 1)
	if !IsSymmetric(c.ToCSR(), 1e-12) {
		t.Error("symmetric matrix rejected")
	}
	c2 := NewCOO[float64](2, 2)
	c2.Add(0, 1, 2)
	c2.Add(1, 0, 2.5)
	if IsSymmetric(c2.ToCSR(), 1e-12) {
		t.Error("value-asymmetric matrix accepted")
	}
	c3 := NewCOO[float64](2, 2)
	c3.Add(0, 1, 2)
	if IsSymmetric(c3.ToCSR(), 1e-12) {
		t.Error("pattern-asymmetric matrix accepted")
	}
	if IsSymmetric(NewCOO[float64](2, 3).ToCSR(), 1e-12) {
		t.Error("non-square accepted")
	}
}

func TestCholeskySolverInterface(t *testing.T) {
	var _ Solver[float64] = (*Cholesky)(nil)
}
