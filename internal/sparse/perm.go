package sparse

// Perm is a permutation vector mapping new index to old index: a permuted
// vector y relates to the original x by y[i] = x[p[i]].
type Perm []int

// IdentityPerm returns the identity permutation of length n.
func IdentityPerm(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Inverse returns the inverse permutation q with q[p[i]] = i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, pi := range p {
		q[pi] = i
	}
	return q
}

// IsValid reports whether p is a bijection on [0, len(p)).
func (p Perm) IsValid() bool {
	seen := make([]bool, len(p))
	for _, pi := range p {
		if pi < 0 || pi >= len(p) || seen[pi] {
			return false
		}
		seen[pi] = true
	}
	return true
}

// ApplyVec stores x permuted by p into dst: dst[i] = x[p[i]].
func ApplyVec[T Scalar](dst []T, p Perm, x []T) {
	if len(dst) != len(p) || len(x) != len(p) {
		panic("sparse: ApplyVec length mismatch")
	}
	for i, pi := range p {
		dst[i] = x[pi]
	}
}

// ApplyVecInv stores x permuted by p⁻¹ into dst: dst[p[i]] = x[i].
func ApplyVecInv[T Scalar](dst []T, p Perm, x []T) {
	if len(dst) != len(p) || len(x) != len(p) {
		panic("sparse: ApplyVecInv length mismatch")
	}
	for i, pi := range p {
		dst[pi] = x[i]
	}
}
