package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRCMIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a := randomSquareCSC(rng, n, 0.1)
		return RCM(a).IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAMDIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a := randomSquareCSC(rng, n, 0.1)
		return AMD(a).IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAMDEmptyAndSingleton(t *testing.T) {
	if p := AMD(NewCOO[float64](0, 0).ToCSC()); len(p) != 0 {
		t.Errorf("AMD of empty matrix = %v", p)
	}
	c := NewCOO[float64](1, 1)
	c.Add(0, 0, 1)
	if p := AMD(c.ToCSC()); len(p) != 1 || p[0] != 0 {
		t.Errorf("AMD of singleton = %v", p)
	}
}

func TestRCMDisconnectedComponents(t *testing.T) {
	// Two disjoint 2-cliques plus an isolated node.
	c := NewCOO[float64](5, 5)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(2, 3, 1)
	c.Add(3, 2, 1)
	for i := 0; i < 5; i++ {
		c.Add(i, i, 1)
	}
	p := RCM(c.ToCSC())
	if !p.IsValid() {
		t.Fatalf("RCM on disconnected graph invalid: %v", p)
	}
}

func TestRCMReducesBandwidthOnGrid(t *testing.T) {
	a := laplacian2D(30, 30, 0.1)
	band := func(m *CSC[float64]) int {
		b := 0
		for j := 0; j < 900; j++ {
			for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
				d := m.RowIdx[k] - j
				if d < 0 {
					d = -d
				}
				if d > b {
					b = d
				}
			}
		}
		return b
	}
	// Scramble the natural order first, then check RCM restores locality.
	rng := rand.New(rand.NewSource(3))
	scramble := Perm(rng.Perm(900))
	scrambled := a.PermuteSym(scramble)
	after := band(scrambled.PermuteSym(RCM(scrambled)))
	if before := band(scrambled); after >= before {
		t.Errorf("RCM bandwidth %d not below scrambled bandwidth %d", after, before)
	}
	if after > 120 {
		t.Errorf("RCM bandwidth %d too large for a 30×30 grid (want ≲ 4·30)", after)
	}
}

func TestAMDBeatsNaturalFillOnGrid(t *testing.T) {
	a := laplacian2D(32, 32, 0.1)
	luAMD, err := FactorLU(a, LUOptions{Ordering: OrderAMD})
	if err != nil {
		t.Fatal(err)
	}
	luRCM, err := FactorLU(a, LUOptions{Ordering: OrderRCM})
	if err != nil {
		t.Fatal(err)
	}
	luNat, err := FactorLU(a, LUOptions{Ordering: OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fill: natural=%d rcm=%d amd=%d", luNat.NNZ(), luRCM.NNZ(), luAMD.NNZ())
	if luAMD.NNZ() >= luNat.NNZ() {
		t.Errorf("AMD fill %d not below natural %d", luAMD.NNZ(), luNat.NNZ())
	}
}

func TestOrderingString(t *testing.T) {
	cases := map[Ordering]string{OrderNatural: "natural", OrderRCM: "rcm", OrderAMD: "amd", Ordering(99): "unknown"}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Ordering(%d).String() = %q, want %q", o, got, want)
		}
	}
}
