package sparse

// AMD computes a minimum-degree ordering of the symmetrized pattern of A
// using a quotient-graph formulation with element absorption (the classical
// basis of the AMD family of orderings). The returned permutation maps new
// index to old index; factoring P A Pᵀ instead of A typically reduces LU
// fill dramatically on mesh-structured power-grid matrices.
//
// Degrees are exact external degrees computed by set union with an epoch
// mark array; absorbed elements are removed lazily from adjacency lists.
func AMD[T Scalar](a *CSC[T]) Perm {
	n, _ := a.Dims()
	if n == 0 {
		return Perm{}
	}
	adj := symmetrizedAdjacency(a)

	// Quotient graph state. A node index i < n is a variable until it is
	// eliminated, after which the same index denotes the element created by
	// its elimination.
	vars := make([][]int32, n)  // variable→adjacent variables
	elems := make([][]int32, n) // variable→adjacent elements
	bound := make([][]int32, n) // element→boundary variables
	for i := range adj {
		vars[i] = adj[i]
	}
	const (
		stateVar = iota
		stateElem
		stateDead // absorbed element or eliminated-and-absorbed variable
	)
	state := make([]int8, n)

	degree := make([]int32, n)
	for i := range degree {
		degree[i] = int32(len(vars[i]))
	}

	// Degree buckets: doubly-linked lists threaded through next/prev.
	head := make([]int32, n+1)
	next := make([]int32, n)
	prev := make([]int32, n)
	for d := range head {
		head[d] = -1
	}
	addBucket := func(i int32) {
		d := degree[i]
		next[i] = head[d]
		prev[i] = -1
		if head[d] >= 0 {
			prev[head[d]] = i
		}
		head[d] = i
	}
	delBucket := func(i int32) {
		d := degree[i]
		if prev[i] >= 0 {
			next[prev[i]] = next[i]
		} else {
			head[d] = next[i]
		}
		if next[i] >= 0 {
			prev[next[i]] = prev[i]
		}
	}
	for i := int32(0); i < int32(n); i++ {
		addBucket(i)
	}

	mark := make([]int32, n)
	epoch := int32(0)
	newEpoch := func() int32 {
		epoch++
		if epoch == 1<<30 {
			for i := range mark {
				mark[i] = 0
			}
			epoch = 1
		}
		return epoch
	}

	order := make(Perm, 0, n)
	mindeg := 0
	lp := make([]int32, 0, 256) // pivot element boundary workspace

	for len(order) < n {
		// Locate minimum-degree live variable.
		for mindeg <= n && head[mindeg] < 0 {
			mindeg++
		}
		p := head[mindeg]
		delBucket(p)
		order = append(order, int(p))

		// Form the pivot element boundary Lp = (vars[p] ∪ ⋃ bound[e]) \ {p},
		// restricted to live variables.
		ep := newEpoch()
		mark[p] = ep
		lp = lp[:0]
		for _, v := range vars[p] {
			if state[v] == stateVar && mark[v] != ep {
				mark[v] = ep
				lp = append(lp, v)
			}
		}
		for _, e := range elems[p] {
			if state[e] != stateElem {
				continue
			}
			for _, v := range bound[e] {
				if state[v] == stateVar && mark[v] != ep {
					mark[v] = ep
					lp = append(lp, v)
				}
			}
			state[e] = stateDead // absorbed into the new element p
			bound[e] = nil
		}
		state[p] = stateElem
		bound[p] = append([]int32(nil), lp...)
		vars[p] = nil
		elems[p] = nil

		// Update every boundary variable: rebuild its adjacency against the
		// new element and recompute its exact external degree.
		for _, i := range lp {
			// Compress vars[i]: drop p, dead variables, and any variable in
			// Lp (now reachable through element p).
			vl := vars[i]
			w := 0
			for _, v := range vl {
				if v == p || state[v] != stateVar || mark[v] == ep {
					continue
				}
				vl[w] = v
				w++
			}
			vars[i] = vl[:w]
			// Compress elems[i]: drop absorbed elements, append p.
			el := elems[i]
			w = 0
			for _, e := range el {
				if state[e] == stateElem {
					el[w] = e
					w++
				}
			}
			elems[i] = append(el[:w], p)

			// Exact external degree via a fresh epoch union.
			me := newEpoch()
			mark[i] = me
			d := 0
			for _, v := range vars[i] {
				if mark[v] != me {
					mark[v] = me
					d++
				}
			}
			for _, e := range elems[i] {
				for _, v := range bound[e] {
					if state[v] == stateVar && mark[v] != me {
						mark[v] = me
						d++
					}
				}
			}
			delBucket(i)
			degree[i] = int32(d)
			addBucket(i)
			if d < mindeg {
				mindeg = d
			}
		}
	}
	return order
}
