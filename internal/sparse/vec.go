package sparse

import "math"

// Dot returns the unconjugated dot product xᵀy.
func Dot[T Scalar](x, y []T) T {
	if len(x) != len(y) {
		panic("sparse: Dot length mismatch")
	}
	var sum T
	for i := range x {
		sum += x[i] * y[i]
	}
	return sum
}

// DotConj returns the conjugated inner product xᴴy (equals xᵀy for real T).
func DotConj[T Scalar](x, y []T) T {
	if len(x) != len(y) {
		panic("sparse: DotConj length mismatch")
	}
	var sum T
	for i := range x {
		sum += Conj(x[i]) * y[i]
	}
	return sum
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2[T Scalar](x []T) float64 {
	var sum float64
	for i := range x {
		a := Abs(x[i])
		sum += a * a
	}
	return math.Sqrt(sum)
}

// Axpy computes y += alpha*x.
func Axpy[T Scalar](y []T, alpha T, x []T) {
	if len(x) != len(y) {
		panic("sparse: Axpy length mismatch")
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// ScaleVec multiplies x by alpha in place.
func ScaleVec[T Scalar](x []T, alpha T) {
	for i := range x {
		x[i] *= alpha
	}
}

// CopyVec copies src into dst.
func CopyVec[T Scalar](dst, src []T) {
	if len(dst) != len(src) {
		panic("sparse: CopyVec length mismatch")
	}
	copy(dst, src)
}

// ZeroVec sets x to zero.
func ZeroVec[T Scalar](x []T) {
	var zero T
	for i := range x {
		x[i] = zero
	}
}

// InfNorm returns the maximum absolute entry of x (0 for empty x).
func InfNorm[T Scalar](x []T) float64 {
	m := 0.0
	for i := range x {
		if a := Abs(x[i]); a > m {
			m = a
		}
	}
	return m
}
