package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when Cholesky factorization encounters a
// non-positive pivot, i.e. the matrix is not symmetric positive definite.
var ErrNotSPD = errors.New("sparse: matrix is not symmetric positive definite")

// Cholesky holds a sparse factorization P·A·Pᵀ = L·Lᵀ of a symmetric
// positive definite matrix, such as the pencil (s0·C - G) of an RC-only
// power grid at a real expansion point. Roughly half the work and fill of
// LU on the same matrix. Implements the Solver interface.
type Cholesky struct {
	n int
	l *CSC[float64] // lower triangular, diagonal first per column
	q Perm          // fill-reducing ordering (new→old)
}

// IsSymmetric reports whether A equals Aᵀ within the given relative
// tolerance on each entry.
func IsSymmetric(a *CSR[float64], tol float64) bool {
	n, m := a.Dims()
	if n != m {
		return false
	}
	t := a.Transpose()
	if len(t.ColIdx) != len(a.ColIdx) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != t.ColIdx[k] {
			return false
		}
		if math.Abs(a.Val[k]-t.Val[k]) > tol*(math.Abs(a.Val[k])+math.Abs(t.Val[k]))/2+1e-300 {
			return false
		}
	}
	return true
}

// FactorCholesky computes the up-looking sparse Cholesky factorization of
// the SPD matrix a with the selected fill-reducing ordering (OrderAMD is a
// good default). Returns ErrNotSPD for indefinite or unsymmetric-beyond-
// roundoff inputs (only the lower triangle of the permuted matrix is read,
// so structural symmetry is the caller's responsibility; use IsSymmetric).
func FactorCholesky(a *CSC[float64], opts LUOptions) (*Cholesky, error) {
	opts.defaults()
	n, m := a.Dims()
	if n != m {
		return nil, fmt.Errorf("sparse: cannot Cholesky-factor non-square %d×%d matrix", n, m)
	}
	q := IdentityPerm(n)
	switch opts.Ordering {
	case OrderRCM:
		q = RCM(a)
	case OrderAMD:
		q = AMD(a)
	}
	aq := a
	if opts.Ordering != OrderNatural {
		aq = a.PermuteSym(q)
	}

	// Elimination tree and an ereach-based up-looking factorization
	// (Davis, "Direct Methods for Sparse Linear Systems", ch. 4).
	parent := etree(aq)
	lp := make([]int, n+1)
	li := make([]int, 0, 4*aq.NNZ())
	lx := make([]float64, 0, 4*aq.NNZ())
	// Column pattern lists are built row by row: colEntries[j] accumulates
	// (row, value) pairs below the diagonal of column j.
	diag := make([]float64, n)
	colRows := make([][]int32, n)
	colVals := make([][]float64, n)

	x := make([]float64, n)    // dense scratch for row k
	pattern := make([]int, n)  // ereach stack
	marked := make([]int32, n) // epoch marks
	epoch := int32(0)

	for k := 0; k < n; k++ {
		// Scatter row k of the lower triangle of A (= column k of upper).
		epoch++
		top := n
		akk := 0.0
		for p := aq.ColPtr[k]; p < aq.ColPtr[k+1]; p++ {
			i := aq.RowIdx[p]
			if i > k {
				continue // lower part handled when its row is reached
			}
			if i == k {
				akk = aq.Val[p]
				continue
			}
			x[i] = aq.Val[p]
			// Walk up the elimination tree to collect the reach.
			len0 := 0
			for t := i; t != -1 && t < k && marked[t] != epoch; t = parent[t] {
				pattern[len0] = t
				len0++
				marked[t] = epoch
			}
			for len0 > 0 {
				len0--
				top--
				pattern[top] = pattern[len0]
			}
		}
		// Up-looking triangular solve across the reach in topological order.
		d := akk
		for t := top; t < n; t++ {
			j := pattern[t]
			lkj := x[j] / diag[j]
			x[j] = 0
			// x -= L(:,j)·lkj for rows in (j, k).
			rows := colRows[j]
			vals := colVals[j]
			for idx, r := range rows {
				if int(r) < k {
					x[r] -= vals[idx] * lkj
				}
			}
			d -= lkj * lkj
			// Record L[k][j].
			colRows[j] = append(colRows[j], int32(k))
			colVals[j] = append(colVals[j], lkj)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %g at column %d", ErrNotSPD, d, k)
		}
		diag[k] = math.Sqrt(d)
	}
	// Assemble CSC L with the diagonal first in each column.
	for j := 0; j < n; j++ {
		lp[j+1] = lp[j] + 1 + len(colRows[j])
	}
	li = li[:0]
	lx = lx[:0]
	for j := 0; j < n; j++ {
		li = append(li, j)
		lx = append(lx, diag[j])
		for idx, r := range colRows[j] {
			li = append(li, int(r))
			lx = append(lx, colVals[j][idx])
		}
	}
	return &Cholesky{
		n: n,
		l: &CSC[float64]{rows: n, cols: n, ColPtr: lp, RowIdx: li, Val: lx},
		q: q,
	}, nil
}

// etree computes the elimination tree of a symmetric matrix given in CSC
// form (both triangles may be present; only the upper triangle per column,
// i.e. entries with row < col, drive the tree).
func etree(a *CSC[float64]) []int {
	n, _ := a.Dims()
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			i := a.RowIdx[p]
			for i < k && i != -1 {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	return parent
}

// N returns the system dimension.
func (c *Cholesky) N() int { return c.n }

// NNZ returns the stored entry count of L.
func (c *Cholesky) NNZ() int { return c.l.NNZ() }

// Solve solves A x = b into dst; dst and b may alias.
func (c *Cholesky) Solve(dst, b []float64) error {
	if len(dst) != c.n || len(b) != c.n {
		return fmt.Errorf("sparse: Cholesky Solve length mismatch (n=%d)", c.n)
	}
	w := make([]float64, c.n)
	c.SolveBuf(dst, b, w)
	return nil
}

// SolveBuf is Solve with a caller-provided scratch buffer.
func (c *Cholesky) SolveBuf(dst, b, w []float64) {
	n := c.n
	for i := 0; i < n; i++ {
		w[i] = b[c.q[i]]
	}
	l := c.l
	// Forward solve L z = w.
	for j := 0; j < n; j++ {
		dp := l.ColPtr[j]
		zj := w[j] / l.Val[dp]
		w[j] = zj
		if zj == 0 {
			continue
		}
		for p := dp + 1; p < l.ColPtr[j+1]; p++ {
			w[l.RowIdx[p]] -= l.Val[p] * zj
		}
	}
	// Back solve Lᵀ y = z.
	for j := n - 1; j >= 0; j-- {
		dp := l.ColPtr[j]
		sum := w[j]
		for p := dp + 1; p < l.ColPtr[j+1]; p++ {
			sum -= l.Val[p] * w[l.RowIdx[p]]
		}
		w[j] = sum / l.Val[dp]
	}
	for i := 0; i < n; i++ {
		dst[c.q[i]] = w[i]
	}
}
