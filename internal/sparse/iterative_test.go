package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestCGSolvesLaplacian(t *testing.T) {
	a := laplacian2D(15, 15, 0.2).ToCSR()
	n, _ := a.Dims()
	cg, err := NewCG(a, IterOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	want := mustVec(rng, n)
	b := make([]float64, n)
	a.MatVec(b, want)
	got := make([]float64, n)
	if err := cg.Solve(got, b); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("CG error at %d: %g vs %g", i, got[i], want[i])
		}
	}
	if cg.Iterations() == 0 {
		t.Error("CG iteration counter not incremented")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian2D(5, 5, 0.2).ToCSR()
	cg, err := NewCG(a, IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 25)
	if err := cg.Solve(x, make([]float64, 25)); err != nil {
		t.Fatal(err)
	}
	if Nrm2(x) != 0 {
		t.Error("CG with zero RHS must return zero")
	}
}

func TestCGNoConvergenceReported(t *testing.T) {
	a := laplacian2D(12, 12, 1e-8).ToCSR()
	cg, err := NewCG(a, IterOptions{Tol: 1e-15, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 144)
	b[0] = 1
	x := make([]float64, 144)
	if err := cg.Solve(x, b); !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestCGRejectsZeroDiagonal(t *testing.T) {
	c := NewCOO[float64](2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	if _, err := NewCG(c.ToCSR(), IterOptions{}); err == nil {
		t.Fatal("zero diagonal must be rejected")
	}
}

func TestBiCGStabUnsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 60
	a := randomSquareCSC(rng, n, 0.05).ToCSR()
	s, err := NewBiCGStab(a, IterOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := mustVec(rng, n)
	b := make([]float64, n)
	a.MatVec(b, want)
	got := make([]float64, n)
	if err := s.Solve(got, b); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("BiCGStab error at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestBiCGStabComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 40
	c := NewCOO[complex128](n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, complex(5+rng.Float64(), 2))
	}
	for k := 0; k < 2*n; k++ {
		c.Add(rng.Intn(n), rng.Intn(n), complex(rng.NormFloat64(), rng.NormFloat64())*0.3)
	}
	a := c.ToCSR()
	s, err := NewBiCGStab(a, IterOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	for i := range want {
		want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := make([]complex128, n)
	a.MatVec(b, want)
	got := make([]complex128, n)
	if err := s.Solve(got, b); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("complex BiCGStab error at %d", i)
		}
	}
}

func TestBiCGStabZeroDiagonalFallback(t *testing.T) {
	// MNA inductor rows have structurally zero diagonals; the Jacobi
	// preconditioner must degrade gracefully rather than fail.
	c := NewCOO[float64](3, 3)
	c.Add(0, 0, 2)
	c.Add(0, 2, 1)
	c.Add(1, 1, 3)
	c.Add(2, 0, -1)
	// (2,2) left structurally zero.
	a := c.ToCSR()
	s, err := NewBiCGStab(a, IterOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	b := make([]float64, 3)
	a.MatVec(b, want)
	got := make([]float64, 3)
	if err := s.Solve(got, b); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSolverInterfaceSatisfied(t *testing.T) {
	var _ Solver[float64] = (*LU[float64])(nil)
	var _ Solver[complex128] = (*LU[complex128])(nil)
	var _ Solver[float64] = (*CG)(nil)
	var _ Solver[float64] = (*BiCGStab[float64])(nil)
	var _ Solver[complex128] = (*BiCGStab[complex128])(nil)
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Nrm2(x) != 5 {
		t.Errorf("Nrm2 = %g, want 5", Nrm2(x))
	}
	if InfNorm(x) != 4 {
		t.Errorf("InfNorm = %g, want 4", InfNorm(x))
	}
	y := []float64{1, 1}
	Axpy(y, 2, x)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v, want [7 9]", y)
	}
	if Dot(x, x) != 25 {
		t.Errorf("Dot = %g, want 25", Dot(x, x))
	}
	z := []complex128{1 + 2i}
	if DotConj(z, z) != 5 {
		t.Errorf("DotConj = %v, want 5", DotConj(z, z))
	}
	ScaleVec(x, 2)
	if x[0] != 6 || x[1] != 8 {
		t.Errorf("ScaleVec = %v", x)
	}
	ZeroVec(x)
	if x[0] != 0 || x[1] != 0 {
		t.Errorf("ZeroVec = %v", x)
	}
}

func TestScalarHelpers(t *testing.T) {
	if Abs(-2.5) != 2.5 {
		t.Error("Abs float")
	}
	if Abs(3+4i) != 5 {
		t.Error("Abs complex")
	}
	if Conj(2.0) != 2.0 {
		t.Error("Conj float identity")
	}
	if Conj(1+2i) != 1-2i {
		t.Error("Conj complex")
	}
	if FromFloat[complex128](2) != 2+0i {
		t.Error("FromFloat complex")
	}
	if !IsZero(0.0) || IsZero(1.0) {
		t.Error("IsZero")
	}
}
