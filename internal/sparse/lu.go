package sparse

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when LU factorization encounters a column with no
// admissible nonzero pivot, i.e. the matrix (or matrix pencil evaluated at
// the chosen expansion point) is numerically singular.
var ErrSingular = errors.New("sparse: matrix is numerically singular")

// LUOptions configures sparse LU factorization.
type LUOptions struct {
	// Ordering selects the fill-reducing pre-ordering applied symmetrically
	// to rows and columns before factorization. Default: OrderAMD.
	Ordering Ordering
	// PivotTol is the threshold-partial-pivoting relative tolerance in
	// (0, 1]: the diagonal entry is kept as pivot whenever its magnitude is
	// at least PivotTol times the column maximum, which preserves the
	// fill-reducing ordering on the nearly-symmetric MNA matrices of power
	// grids. Default: 0.1.
	PivotTol float64
}

func (o *LUOptions) defaults() {
	if o.PivotTol <= 0 || o.PivotTol > 1 {
		o.PivotTol = 0.1
	}
}

// LU holds a sparse factorization Pr · A(q,q) = L·U with unit lower
// triangular L and upper triangular U, where q is the fill-reducing
// pre-ordering and Pr the partial-pivoting row permutation. It implements
// the Solver interface.
type LU[T Scalar] struct {
	n    int
	l    *CSC[T] // unit lower triangular, diagonal stored first per column
	u    *CSC[T] // upper triangular, diagonal stored last per column
	q    Perm    // symmetric pre-ordering (new→old)
	pinv []int   // row i of A(q,q) becomes pivot row pinv[i]
}

// FactorLU computes a sparse LU factorization of the square matrix a.
func FactorLU[T Scalar](a *CSC[T], opts LUOptions) (*LU[T], error) {
	opts.defaults()
	n, m := a.Dims()
	if n != m {
		return nil, fmt.Errorf("sparse: cannot LU-factor non-square %d×%d matrix", n, m)
	}
	q := IdentityPerm(n)
	switch opts.Ordering {
	case OrderRCM:
		q = RCM(a)
	case OrderAMD:
		q = AMD(a)
	}
	aq := a
	if opts.Ordering != OrderNatural {
		aq = a.PermuteSym(q)
	}

	nnzEst := 4*a.NNZ() + n
	lp := make([]int, n+1)
	li := make([]int, 0, nnzEst)
	lx := make([]T, 0, nnzEst)
	up := make([]int, n+1)
	ui := make([]int, 0, nnzEst)
	ux := make([]T, 0, nnzEst)

	pinv := make([]int, n)
	for i := range pinv {
		pinv[i] = -1
	}
	x := make([]T, n)      // numeric workspace
	xi := make([]int, 2*n) // reach output + DFS stack
	pstack := make([]int, n)
	marked := make([]bool, n)

	for j := 0; j < n; j++ {
		// Symbolic: reach of A(q,q)(:,j) in the graph of current L.
		top := n
		for p := aq.ColPtr[j]; p < aq.ColPtr[j+1]; p++ {
			i := aq.RowIdx[p]
			if marked[i] {
				continue
			}
			top = luDFS(i, lp, li, pinv, marked, xi, pstack, top)
		}
		// Numeric: scatter column j and eliminate in topological order.
		for p := top; p < n; p++ {
			var zero T
			x[xi[p]] = zero
		}
		for p := aq.ColPtr[j]; p < aq.ColPtr[j+1]; p++ {
			x[aq.RowIdx[p]] = aq.Val[p]
		}
		for p := top; p < n; p++ {
			i := xi[p]
			col := pinv[i]
			if col < 0 {
				continue
			}
			xiVal := x[i]
			if IsZero(xiVal) {
				continue
			}
			// Skip the unit diagonal stored first in column col.
			for k := lp[col] + 1; k < lp[col+1]; k++ {
				x[li[k]] -= lx[k] * xiVal
			}
		}
		// Pivot selection among not-yet-pivoted rows with threshold
		// preference for the diagonal (row index j in pre-ordered space).
		ipiv := -1
		maxAbs := 0.0
		var diagAbs float64
		diagFound := false
		for p := top; p < n; p++ {
			i := xi[p]
			if pinv[i] >= 0 {
				continue
			}
			av := Abs(x[i])
			if av > maxAbs {
				maxAbs = av
				ipiv = i
			}
			if i == j {
				diagAbs = av
				diagFound = true
			}
		}
		if ipiv < 0 || maxAbs == 0 {
			return nil, fmt.Errorf("%w: zero pivot column %d", ErrSingular, j)
		}
		if diagFound && diagAbs >= opts.PivotTol*maxAbs {
			ipiv = j
		}
		pivot := x[ipiv]
		pinv[ipiv] = j

		// Emit U column j (rows already pivoted, plus the pivot last) and
		// L column j (unit diagonal first, then subdiagonal entries).
		li = append(li, ipiv)
		lx = append(lx, FromFloat[T](1))
		for p := top; p < n; p++ {
			i := xi[p]
			marked[i] = false // reset for next column
			switch {
			case pinv[i] >= 0 && i != ipiv:
				ui = append(ui, pinv[i])
				ux = append(ux, x[i])
			case pinv[i] < 0:
				if !IsZero(x[i]) {
					li = append(li, i)
					lx = append(lx, x[i]/pivot)
				}
			}
		}
		ui = append(ui, j)
		ux = append(ux, pivot)
		lp[j+1] = len(li)
		up[j+1] = len(ui)
	}

	// Remap L row indices into pivot coordinates so L is truly lower
	// triangular; U rows are already in pivot coordinates.
	for k := range li {
		li[k] = pinv[li[k]]
	}
	return &LU[T]{
		n:    n,
		l:    &CSC[T]{rows: n, cols: n, ColPtr: lp, RowIdx: li, Val: lx},
		u:    &CSC[T]{rows: n, cols: n, ColPtr: up, RowIdx: ui, Val: ux},
		q:    q,
		pinv: pinv,
	}, nil
}

// luDFS performs the depth-first search of the Gilbert–Peierls symbolic
// step from row index i, pushing the reach in reverse topological order into
// xi[top-1:...]. Returns the new top.
func luDFS(i int, lp []int, li []int, pinv []int, marked []bool, xi, pstack []int, top int) int {
	head := 0
	xi[head] = i
	for head >= 0 {
		i = xi[head]
		jcol := pinv[i]
		if !marked[i] {
			marked[i] = true
			if jcol < 0 {
				pstack[head] = 0
			} else {
				pstack[head] = lp[jcol] + 1 // skip unit diagonal
			}
		}
		done := true
		if jcol >= 0 {
			for p := pstack[head]; p < lp[jcol+1]; p++ {
				row := li[p]
				if !marked[row] {
					pstack[head] = p + 1
					head++
					xi[head] = row
					done = false
					break
				}
			}
		}
		if done {
			head--
			top--
			xi[top] = i
		}
	}
	return top
}

// N returns the dimension of the factored matrix.
func (lu *LU[T]) N() int { return lu.n }

// NNZ returns the total number of stored entries in L and U.
func (lu *LU[T]) NNZ() int { return lu.l.NNZ() + lu.u.NNZ() }

// Solve solves A x = b, storing the result in dst. dst and b must have
// length N and may alias each other.
func (lu *LU[T]) Solve(dst, b []T) error {
	if len(dst) != lu.n || len(b) != lu.n {
		return fmt.Errorf("sparse: LU Solve length mismatch (n=%d)", lu.n)
	}
	w := make([]T, lu.n)
	lu.SolveBuf(dst, b, w)
	return nil
}

// SolveBuf is Solve with a caller-provided scratch buffer of length N,
// avoiding per-solve allocation in Krylov loops.
func (lu *LU[T]) SolveBuf(dst, b, w []T) {
	n := lu.n
	// w = Pr · b(q): row i of the pre-ordered system is b[q[i]] and lands
	// in pivot position pinv[i].
	for i := 0; i < n; i++ {
		w[lu.pinv[i]] = b[lu.q[i]]
	}
	// Forward solve L z = w (unit diagonal first per column).
	l := lu.l
	for j := 0; j < n; j++ {
		zj := w[j]
		if IsZero(zj) {
			continue
		}
		for p := l.ColPtr[j] + 1; p < l.ColPtr[j+1]; p++ {
			w[l.RowIdx[p]] -= l.Val[p] * zj
		}
	}
	// Back solve U y = z (diagonal last per column).
	u := lu.u
	for j := n - 1; j >= 0; j-- {
		dp := u.ColPtr[j+1] - 1
		yj := w[j] / u.Val[dp]
		w[j] = yj
		if IsZero(yj) {
			continue
		}
		for p := u.ColPtr[j]; p < dp; p++ {
			w[u.RowIdx[p]] -= u.Val[p] * yj
		}
	}
	// Undo the symmetric pre-ordering: x[q[i]] = y[i].
	for i := 0; i < n; i++ {
		dst[lu.q[i]] = w[i]
	}
}

// SolveMany solves A X = B column-by-column in place: each element of x is
// overwritten with the corresponding solution.
func (lu *LU[T]) SolveMany(x [][]T) error {
	w := make([]T, lu.n)
	for c := range x {
		if len(x[c]) != lu.n {
			return fmt.Errorf("sparse: LU SolveMany column %d length mismatch", c)
		}
		lu.SolveBuf(x[c], x[c], w)
	}
	return nil
}

// Det returns the determinant of A computed from the U diagonal and the
// permutation signs. Intended for small systems and tests; overflows for
// large matrices.
func (lu *LU[T]) Det() T {
	det := FromFloat[T](permSign(lu.q) * permSignPinv(lu.pinv))
	u := lu.u
	for j := 0; j < lu.n; j++ {
		det *= u.Val[u.ColPtr[j+1]-1]
	}
	return det
}

func permSign(p Perm) float64 {
	seen := make([]bool, len(p))
	sign := 1.0
	for i := range p {
		if seen[i] {
			continue
		}
		cycleLen := 0
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			cycleLen++
		}
		if cycleLen%2 == 0 {
			sign = -sign
		}
	}
	return sign
}

func permSignPinv(pinv []int) float64 {
	return permSign(Perm(pinv))
}
