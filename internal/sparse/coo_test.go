package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOOToCSRBasic(t *testing.T) {
	c := NewCOO[float64](3, 4)
	c.Add(0, 1, 2)
	c.Add(2, 3, 5)
	c.Add(0, 1, 3) // duplicate, summed
	c.Add(1, 0, -1)
	c.Add(1, 2, 4)
	a := c.ToCSR()
	if r, cols := a.Dims(); r != 3 || cols != 4 {
		t.Fatalf("dims = %d×%d, want 3×4", r, cols)
	}
	if got := a.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5 (duplicates summed)", got)
	}
	if got := a.At(1, 0); got != -1 {
		t.Errorf("At(1,0) = %v, want -1", got)
	}
	if got := a.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %v, want 0 (absent entry)", got)
	}
	if a.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", a.NNZ())
	}
}

func TestCOODropsCancellingDuplicates(t *testing.T) {
	c := NewCOO[float64](2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, -1)
	c.Add(1, 1, 3)
	a := c.ToCSR()
	if a.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1: cancelled duplicate must be dropped", a.NNZ())
	}
	if a.At(1, 1) != 3 {
		t.Errorf("At(1,1) = %v, want 3", a.At(1, 1))
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	NewCOO[float64](2, 2).Add(2, 0, 1)
}

// randomCOO builds a random sparse matrix with roughly density*rows*cols
// entries, including deliberate duplicates.
func randomCOO(rng *rand.Rand, rows, cols int, density float64) *COO[float64] {
	c := NewCOO[float64](rows, cols)
	n := int(density * float64(rows*cols))
	for k := 0; k < n; k++ {
		c.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	return c
}

func TestCOORoundTripCSRvsCSCProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		c := randomCOO(rng, rows, cols, 0.3)
		dr := c.ToCSR().ToDense()
		dc := c.ToCSC().ToCSR().ToDense()
		for i := range dr {
			for j := range dr[i] {
				if math.Abs(dr[i][j]-dc[i][j]) > 1e-14 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSRTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		a := randomCOO(rng, rows, cols, 0.4).ToCSR()
		at := a.Transpose()
		d, dt := a.ToDense(), at.ToDense()
		for i := range d {
			for j := range d[i] {
				if d[i][j] != dt[j][i] {
					return false
				}
			}
		}
		// Double transpose is the identity.
		att := at.Transpose().ToDense()
		for i := range d {
			for j := range d[i] {
				if d[i][j] != att[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSRMatVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randomCOO(rng, rows, cols, 0.3).ToCSR()
		d := a.ToDense()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, rows)
		a.MatVec(got, x)
		for i := 0; i < rows; i++ {
			want := 0.0
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("trial %d: MatVec[%d] = %g, want %g", trial, i, got[i], want)
			}
		}
		// MatVecT agrees with the transpose's MatVec.
		gt := make([]float64, cols)
		a.MatVecT(gt, mustVec(rng, rows))
		_ = gt
	}
}

func mustVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestCSRMatVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randomCOO(rng, rows, cols, 0.3).ToCSR()
		x := mustVec(rng, rows)
		got := make([]float64, cols)
		a.MatVecT(got, x)
		want := make([]float64, cols)
		a.Transpose().MatVec(want, x)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-12*(1+math.Abs(want[j])) {
				t.Fatalf("trial %d: MatVecT[%d] = %g, want %g", trial, j, got[j], want[j])
			}
		}
	}
}

func TestCSRAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		a := randomCOO(rng, rows, cols, 0.3).ToCSR()
		b := randomCOO(rng, rows, cols, 0.3).ToCSR()
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		s := a.Add(alpha, b, beta)
		da, db, ds := a.ToDense(), b.ToDense(), s.ToDense()
		for i := range ds {
			for j := range ds[i] {
				want := alpha*da[i][j] + beta*db[i][j]
				if math.Abs(ds[i][j]-want) > 1e-12*(1+math.Abs(want)) {
					t.Fatalf("Add mismatch at (%d,%d): %g want %g", i, j, ds[i][j], want)
				}
			}
		}
	}
}

func TestCSRAddKeepsUnionPattern(t *testing.T) {
	// Exact zeros arising from alpha=0 must be retained so that the pencil
	// (s0·C - G) has a stable symbolic structure across expansion points.
	c := NewCOO[float64](2, 2)
	c.Add(0, 0, 1)
	a := c.ToCSR()
	c2 := NewCOO[float64](2, 2)
	c2.Add(1, 1, 2)
	b := c2.ToCSR()
	s := a.Add(0, b, 1)
	if s.NNZ() != 2 {
		t.Fatalf("union pattern NNZ = %d, want 2", s.NNZ())
	}
}

func TestPermuteSym(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 8
	a := randomCOO(rng, n, n, 0.4).ToCSC()
	p := Perm(rng.Perm(n))
	b := a.PermuteSym(p)
	da, db := a.ToCSR().ToDense(), b.ToCSR().ToDense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if db[i][j] != da[p[i]][p[j]] {
				t.Fatalf("PermuteSym mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		p := Perm(rng.Perm(n))
		if !p.IsValid() {
			return false
		}
		q := p.Inverse()
		for i := range p {
			if q[p[i]] != i || p[q[i]] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestToComplexPreservesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randomCOO(rng, 6, 6, 0.5).ToCSR()
	z := ToComplex(a)
	da, dz := a.ToDense(), z.ToDense()
	for i := range da {
		for j := range da[i] {
			if complex(da[i][j], 0) != dz[i][j] {
				t.Fatalf("ToComplex mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestIsStructurallySymmetric(t *testing.T) {
	c := NewCOO[float64](3, 3)
	c.Add(0, 1, 2)
	c.Add(1, 0, 3)
	c.Add(2, 2, 1)
	if !c.ToCSR().IsStructurallySymmetric() {
		t.Error("symmetric pattern reported asymmetric")
	}
	c.Add(0, 2, 1)
	if c.ToCSR().IsStructurallySymmetric() {
		t.Error("asymmetric pattern reported symmetric")
	}
}
