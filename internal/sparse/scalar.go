// Package sparse implements the sparse linear algebra kernel used by the
// power-grid model order reduction library: triplet (COO), CSR and CSC
// storage, sparse matrix-vector and matrix-matrix products, symmetric
// permutations, fill-reducing orderings (RCM and minimum degree), a
// left-looking Gilbert–Peierls sparse LU factorization with partial
// pivoting, and Krylov iterative solvers (CG, BiCGStab).
//
// All matrix types are generic over the Scalar constraint so the same
// factorization code serves both the real expansions (s0 real) used during
// model reduction and the complex evaluations (s = jw) used for exact
// frequency-response references.
package sparse

import "math/cmplx"

// Scalar is the element type of all matrices and vectors in this package:
// float64 for real-valued systems, complex128 for frequency-domain work.
type Scalar interface {
	~float64 | ~complex128
}

// Abs returns the absolute value (modulus) of x as a float64.
func Abs[T Scalar](x T) float64 {
	switch v := any(x).(type) {
	case float64:
		if v < 0 {
			return -v
		}
		return v
	case complex128:
		return cmplx.Abs(v)
	}
	panic("sparse: unreachable scalar type")
}

// Conj returns the complex conjugate of x (identity for float64).
func Conj[T Scalar](x T) T {
	switch v := any(x).(type) {
	case float64:
		return x
	case complex128:
		return any(cmplx.Conj(v)).(T)
	}
	panic("sparse: unreachable scalar type")
}

// FromFloat converts a float64 into the scalar type T.
func FromFloat[T Scalar](x float64) T {
	var zero T
	switch any(zero).(type) {
	case float64:
		return any(x).(T)
	case complex128:
		return any(complex(x, 0)).(T)
	}
	panic("sparse: unreachable scalar type")
}

// IsZero reports whether x is exactly zero.
func IsZero[T Scalar](x T) bool {
	var zero T
	return x == zero
}
