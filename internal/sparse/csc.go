package sparse

import "fmt"

// CSC is a compressed sparse column matrix. Column j occupies the half-open
// range [ColPtr[j], ColPtr[j+1]) of RowIdx/Val; row indices within a column
// are strictly increasing. CSC is the working format of the sparse LU
// factorization.
type CSC[T Scalar] struct {
	rows, cols int
	ColPtr     []int
	RowIdx     []int
	Val        []T
}

// NewCSC assembles a CSC matrix from raw compressed arrays (not copied).
func NewCSC[T Scalar](rows, cols int, colPtr, rowIdx []int, val []T) *CSC[T] {
	if len(colPtr) != cols+1 {
		panic(fmt.Sprintf("sparse: CSC colPtr length %d, want %d", len(colPtr), cols+1))
	}
	if len(rowIdx) != len(val) || len(rowIdx) != colPtr[cols] {
		panic("sparse: CSC rowIdx/val length mismatch")
	}
	return &CSC[T]{rows: rows, cols: cols, ColPtr: colPtr, RowIdx: rowIdx, Val: val}
}

// Dims returns the matrix dimensions.
func (a *CSC[T]) Dims() (rows, cols int) { return a.rows, a.cols }

// NNZ returns the number of stored entries.
func (a *CSC[T]) NNZ() int { return len(a.Val) }

// Clone returns a deep copy of the matrix.
func (a *CSC[T]) Clone() *CSC[T] {
	return &CSC[T]{
		rows:   a.rows,
		cols:   a.cols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowIdx: append([]int(nil), a.RowIdx...),
		Val:    append([]T(nil), a.Val...),
	}
}

// ToCSR converts the matrix to CSR format.
func (a *CSC[T]) ToCSR() *CSR[T] {
	// CSC of A viewed column-major equals CSR of Aᵀ viewed row-major;
	// transposing that CSR yields CSR of A.
	t := &CSR[T]{rows: a.cols, cols: a.rows, RowPtr: a.ColPtr, ColIdx: a.RowIdx, Val: a.Val}
	return t.Transpose()
}

// MatVec computes dst = A*x with column-major accumulation.
func (a *CSC[T]) MatVec(dst, x []T) {
	if len(dst) != a.rows || len(x) != a.cols {
		panic("sparse: CSC MatVec dimension mismatch")
	}
	for i := range dst {
		var zero T
		dst[i] = zero
	}
	for j := 0; j < a.cols; j++ {
		xj := x[j]
		if IsZero(xj) {
			continue
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			dst[a.RowIdx[k]] += a.Val[k] * xj
		}
	}
}

// PermuteSym returns P A Pᵀ where the permutation p maps new index to old
// index: (P A Pᵀ)[i][j] = A[p[i]][p[j]]. A must be square and p a valid
// permutation of its dimension.
func (a *CSC[T]) PermuteSym(p Perm) *CSC[T] {
	if a.rows != a.cols {
		panic("sparse: PermuteSym requires a square matrix")
	}
	if len(p) != a.cols {
		panic("sparse: PermuteSym permutation length mismatch")
	}
	inv := p.Inverse()
	coo := NewCOO[T](a.rows, a.cols)
	for j := 0; j < a.cols; j++ {
		nj := inv[j]
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			coo.Add(inv[a.RowIdx[k]], nj, a.Val[k])
		}
	}
	return coo.ToCSC()
}

// ColNNZ returns the number of stored entries in column j.
func (a *CSC[T]) ColNNZ(j int) int { return a.ColPtr[j+1] - a.ColPtr[j] }
