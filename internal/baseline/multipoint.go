package baseline

import (
	"fmt"
	"time"

	"repro/internal/dense"
	"repro/internal/krylov"
	"repro/internal/lti"
)

// PRIMAMultipoint runs PRIMA with rational (multi-point) Krylov projection:
// the basis is the union of the block Krylov spaces at each expansion point
// (Elfadel & Ling's block rational Arnoldi, ref. [15] of the paper), giving
// wideband accuracy at the cost of one factorization per point. The ROM
// matches opts.Moments block moments at every point in points.
func PRIMAMultipoint(sys *lti.SparseSystem, points []float64, opts Options) (*lti.DenseSystem, error) {
	opts.defaults()
	if len(points) == 0 {
		points = []float64{opts.S0}
	}
	n, m, _ := sys.Dims()
	q := m * opts.Moments * len(points)
	if opts.MemoryBudget > 0 {
		if need := basisBudgetBytes(n, q); need > opts.MemoryBudget {
			return nil, fmt.Errorf("%w: multipoint PRIMA needs ≈%d MiB (n=%d, q=%d), budget %d MiB",
				ErrBudgetExceeded, need>>20, n, q, opts.MemoryBudget>>20)
		}
	}
	var ortho *dense.OrthoStats
	if opts.Stats != nil {
		ortho = &opts.Stats.Ortho
	}
	basis := dense.NewBasis[float64](n, ortho)
	tr := time.Now()
	for _, s0 := range points {
		tf := time.Now()
		op, err := krylov.NewOperator(sys, s0, krylov.OperatorOptions{
			Backend: opts.Backend, LU: opts.LU, Iter: opts.Iter,
		})
		if err != nil {
			return nil, fmt.Errorf("baseline: multipoint PRIMA at s0=%g: %w", s0, err)
		}
		if opts.Stats != nil {
			opts.Stats.FactorTime += time.Since(tf)
			opts.Stats.FactorNNZ += op.FactorNNZ
		}
		r, err := op.StartBlock()
		if err != nil {
			return nil, err
		}
		// Grow the shared basis with this point's block Krylov chain: the
		// per-point recurrence iterates on this point's accepted columns.
		var cur []int
		for _, col := range r {
			if basis.Append(col) {
				cur = append(cur, basis.Len()-1)
			}
		}
		w := make([]float64, n)
		for j := 1; j < opts.Moments && len(cur) > 0; j++ {
			var next []int
			for _, idx := range cur {
				if err := op.Apply(w, basis.Col(idx)); err != nil {
					return nil, err
				}
				if basis.Append(w) {
					next = append(next, basis.Len()-1)
				}
			}
			cur = next
		}
		if opts.Stats != nil {
			opts.Stats.PencilSolves += op.Solves()
		}
	}
	if basis.Len() == 0 {
		return nil, krylov.ErrEmptyBasis
	}
	rom := krylov.Congruence(sys, basis)
	if opts.Stats != nil {
		opts.Stats.ReduceTime += time.Since(tr)
		opts.Stats.BasisColumns += basis.Len()
		opts.Stats.PeakBasisBytes = basisBudgetBytes(n, basis.Len())
	}
	return rom, nil
}
