package baseline

import (
	"errors"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/grid"
	"repro/internal/lti"
)

func testGrid(t testing.TB, nx, ny, layers, ports int) *lti.SparseSystem {
	t.Helper()
	cfg := grid.Config{Name: "t", NX: nx, NY: ny, Layers: layers, Ports: ports,
		Pads: 2, SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 3,
		NodeC: 50e-15, PadR: 0.1, PadL: 0.5e-9, Variation: 0.2, Seed: 11}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func relErr(hx, hr *dense.Mat[complex128]) float64 {
	num, den := 0.0, 0.0
	for i := range hx.Data {
		num += cmplx.Abs(hx.Data[i]-hr.Data[i]) * cmplx.Abs(hx.Data[i]-hr.Data[i])
		den += cmplx.Abs(hx.Data[i]) * cmplx.Abs(hx.Data[i])
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestPRIMAMomentMatching(t *testing.T) {
	sys := testGrid(t, 8, 8, 2, 5)
	s0, l := 1e9, 4
	var st Stats
	rom, err := PRIMA(sys, Options{S0: s0, Moments: l, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	q, m, p := rom.Dims()
	_, ms, ps := sys.Dims()
	if m != ms || p != ps || q != ms*l {
		t.Fatalf("ROM dims %d/%d/%d", q, m, p)
	}
	mo, err := sys.Moments(s0, l)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := rom.Moments(s0, l)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < l; k++ {
		scale := mo[k].MaxAbs()
		if diff := mo[k].Sub(mr[k]).MaxAbs(); diff > 1e-6*scale {
			t.Fatalf("moment %d rel err %.3e", k, diff/scale)
		}
	}
	// PRIMA's ROM is fully dense: nnz(Gr) = q².
	_, gnnz, _, _ := rom.NNZ()
	if gnnz < q*q*9/10 {
		t.Errorf("PRIMA Gr unexpectedly sparse: %d of %d", gnnz, q*q)
	}
	if st.PencilSolves == 0 || st.BasisColumns != q {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestPRIMABudgetBreakdown(t *testing.T) {
	sys := testGrid(t, 10, 10, 2, 8)
	// A deliberately tiny budget triggers the Table II "break down" path.
	_, err := PRIMA(sys, Options{Moments: 6, MemoryBudget: 1 << 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// Unlimited budget succeeds.
	if _, err := PRIMA(sys, Options{Moments: 6, MemoryBudget: -1}); err != nil {
		t.Fatal(err)
	}
}

func TestEKSMatchesFullResponseUnderBakedInput(t *testing.T) {
	sys := testGrid(t, 8, 8, 2, 5)
	_, m, p := sys.Dims()
	rom, err := EKS(sys, nil, Options{S0: 1e9, Moments: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rom.Order() != 8 {
		t.Fatalf("EKS order %d, want 8 (size-l ROM, Table II)", rom.Order())
	}
	// Under the baked-in all-ones excitation the EKS ROM is accurate.
	s := complex(0, 5e8)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]complex128, m)
	for i := range u {
		u[i] = 1
	}
	yx := hx.MulVec(u)
	yr, err := rom.ResponseEval(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		if cmplx.Abs(yx[i]-yr[i]) > 1e-3*(1+cmplx.Abs(yx[i])) {
			t.Fatalf("EKS baked response output %d: %v vs %v", i, yr[i], yx[i])
		}
	}
}

func TestEKSNotReusable(t *testing.T) {
	// Under a different excitation pattern the same EKS ROM must show large
	// error, while a BDSM ROM of comparable build cost stays accurate —
	// Table I's "reusable" row and the Fig. 5 finding.
	sys := testGrid(t, 8, 8, 2, 5)
	_, m, _ := sys.Dims()
	eks, err := EKS(sys, nil, Options{S0: 1e9, Moments: 8})
	if err != nil {
		t.Fatal(err)
	}
	bdsm, err := core.Reduce(sys, core.Options{S0: 1e9, Moments: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 5e8)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	// New pattern: only port 2 excited.
	u := make([]complex128, m)
	u[2] = 1
	yx := hx.MulVec(u)

	he, err := eks.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	ye := he.MulVec(u)
	hb, err := bdsm.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	yb := hb.MulVec(u)

	eksErr, bdsmErr := 0.0, 0.0
	scale := 0.0
	for i := range yx {
		eksErr += cmplx.Abs(yx[i] - ye[i])
		bdsmErr += cmplx.Abs(yx[i] - yb[i])
		scale += cmplx.Abs(yx[i])
	}
	if bdsmErr/scale > 1e-4 {
		t.Fatalf("BDSM error %.3e under new pattern", bdsmErr/scale)
	}
	if eksErr < 100*bdsmErr {
		t.Fatalf("EKS error %.3e not ≫ BDSM error %.3e under new pattern", eksErr/scale, bdsmErr/scale)
	}
}

func TestEKSRejectsWrongPatternLength(t *testing.T) {
	sys := testGrid(t, 6, 6, 1, 3)
	if _, err := EKS(sys, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("wrong excitation length accepted")
	}
}

func TestSVDMORSizeAndAccuracyOrdering(t *testing.T) {
	sys := testGrid(t, 8, 8, 2, 6)
	_, m, _ := sys.Dims()
	alpha := 0.6
	l := 4
	svd, err := SVDMOR(sys, alpha, Options{S0: 1e9, Moments: l})
	if err != nil {
		t.Fatal(err)
	}
	wantR := int(alpha*float64(m) + 0.999999)
	if svd.Order() != wantR*l {
		t.Fatalf("SVDMOR order %d, want α·m·l = %d", svd.Order(), wantR*l)
	}
	bdsm, err := core.Reduce(sys, core.Options{S0: 1e9, Moments: l})
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 3e8)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := svd.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := bdsm.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	es, eb := relErr(hx, hs), relErr(hx, hb)
	// Terminal reduction is error-prone (paper Sec. II-B): SVDMOR error must
	// exceed BDSM's exact-moment-matching error.
	if es <= eb {
		t.Fatalf("SVDMOR error %.3e not above BDSM error %.3e", es, eb)
	}
}

func TestSVDMORFullAlphaStillWorks(t *testing.T) {
	sys := testGrid(t, 7, 7, 1, 4)
	rom, err := SVDMOR(sys, 1.0, Options{S0: 1e9, Moments: 3})
	if err != nil {
		t.Fatal(err)
	}
	// α = 1 keeps all ports: accuracy should be PRIMA-like.
	s := complex(0, 1e8)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := rom.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(hx, hr); e > 1e-6 {
		t.Fatalf("α=1 SVDMOR error %.3e", e)
	}
}

func TestSVDMORInvalidAlpha(t *testing.T) {
	sys := testGrid(t, 6, 6, 1, 3)
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := SVDMOR(sys, a, Options{}); err == nil {
			t.Errorf("alpha %g accepted", a)
		}
	}
}

func TestSVDMORBudgetBreakdown(t *testing.T) {
	sys := testGrid(t, 10, 10, 2, 8)
	_, err := SVDMOR(sys, 0.6, Options{Moments: 6, MemoryBudget: 1 << 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
