package baseline

import (
	"fmt"
	"time"

	"repro/internal/dense"
	"repro/internal/krylov"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// EKSROM is the reduced model produced by the extended Krylov subspace
// method of Wang & Nguyen (DAC 2000). It is a single-input system capturing
// moments of the response y(s) = H(s)·u₀(s) under the predefined excitation
// pattern u₀ — not moments of H(s) itself — and is therefore NOT reusable
// under different input patterns (Table I). The paper's experiments excite
// all ports with unit impulses, which this implementation reproduces.
type EKSROM struct {
	// Inner is the reduced single-input descriptor system with input vector
	// B·u₀ projected onto the Krylov basis.
	Inner *lti.DenseSystem
	// U0 is the excitation pattern baked into the ROM.
	U0 []float64
}

// Dims reports the ROM as an m-input system for interface compatibility;
// internally every input column is approximated by the same baked-in
// response (weighted by the corresponding entry of U0), which is exactly
// the EKS limitation the paper demonstrates in Fig. 5.
func (e *EKSROM) Dims() (n, m, p int) {
	q, _, pp := e.Inner.Dims()
	return q, len(e.U0), pp
}

// Order returns the reduced state dimension.
func (e *EKSROM) Order() int { q, _, _ := e.Inner.Dims(); return q }

// ResponseEval returns Y(s) = Lr (sCr - Gr)⁻¹ br — the ROM's approximation
// of the full response under the baked-in excitation.
func (e *EKSROM) ResponseEval(s complex128) ([]complex128, error) {
	h, err := e.Inner.Eval(s)
	if err != nil {
		return nil, err
	}
	_, _, p := e.Dims()
	y := make([]complex128, p)
	for i := 0; i < p; i++ {
		y[i] = h.At(i, 0)
	}
	return y, nil
}

// Eval approximates the transfer matrix from the single baked-in response
// as the minimum-norm rank-one reconstruction H ≈ y(s)·u₀ᵀ/(u₀ᵀu₀): the
// smallest H consistent with the observed response. It is exact when the
// system is excited by exactly u₀ and generally far off otherwise — the EKS
// limitation the Fig. 5 comparison demonstrates.
func (e *EKSROM) Eval(s complex128) (*dense.Mat[complex128], error) {
	y, err := e.ResponseEval(s)
	if err != nil {
		return nil, err
	}
	_, m, p := e.Dims()
	norm2 := 0.0
	for _, v := range e.U0 {
		norm2 += v * v
	}
	h := dense.NewMat[complex128](p, m)
	if norm2 == 0 {
		return h, nil
	}
	for j := 0; j < m; j++ {
		if e.U0[j] == 0 {
			continue
		}
		w := complex(e.U0[j]/norm2, 0)
		for i := 0; i < p; i++ {
			h.Set(i, j, y[i]*w)
		}
	}
	return h, nil
}

var _ lti.System = (*EKSROM)(nil)

// EKS reduces the system for the fixed excitation pattern u0 (nil means all
// ports excited by unit impulses, as in the paper's experimental setup). The
// Krylov subspace is built on the combined input vector b = B·u0, so the
// ROM order equals the number of matched response moments — far smaller than
// PRIMA's m·l, and far less informative.
func EKS(sys *lti.SparseSystem, u0 []float64, opts Options) (*EKSROM, error) {
	opts.defaults()
	n, m, _ := sys.Dims()
	if u0 == nil {
		u0 = make([]float64, m)
		for i := range u0 {
			u0[i] = 1
		}
	}
	if len(u0) != m {
		return nil, fmt.Errorf("baseline: EKS excitation has %d entries, want %d", len(u0), m)
	}
	tf := time.Now()
	op, err := krylov.NewOperator(sys, opts.S0, krylov.OperatorOptions{
		Backend: opts.Backend, LU: opts.LU, Iter: opts.Iter,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: EKS: %w", err)
	}
	factorTime := time.Since(tf)

	tr := time.Now()
	// b = B·u0 assembled column-by-column from the sparse input matrix.
	b := make([]float64, n)
	for j := 0; j < m; j++ {
		if u0[j] == 0 {
			continue
		}
		col := sys.BColumn(j)
		sparse.Axpy(b, u0[j], col)
	}
	if err := op.SolvePencil(b, b); err != nil {
		return nil, fmt.Errorf("baseline: EKS start vector: %w", err)
	}
	var ortho *dense.OrthoStats
	if opts.Stats != nil {
		ortho = &opts.Stats.Ortho
	}
	basis, err := krylov.BlockArnoldi(op, [][]float64{b}, opts.Moments, ortho)
	if err != nil {
		return nil, fmt.Errorf("baseline: EKS: %w", err)
	}
	full := krylov.Congruence(sys, basis)
	// Collapse the input side onto the combined vector: br = Vᵀ(B·u0).
	q := basis.Len()
	br := dense.NewMat[float64](q, 1)
	for i := 0; i < q; i++ {
		v := 0.0
		for j := 0; j < m; j++ {
			v += full.B.At(i, j) * u0[j]
		}
		br.Set(i, 0, v)
	}
	inner, err := lti.NewDenseSystem(full.C, full.G, br, full.L)
	if err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		st := opts.Stats
		st.PencilSolves += op.Solves()
		st.FactorNNZ += op.FactorNNZ
		st.FactorTime += factorTime
		st.ReduceTime += time.Since(tr)
		st.BasisColumns += q
		st.PeakBasisBytes = basisBudgetBytes(n, q)
	}
	return &EKSROM{Inner: inner, U0: append([]float64(nil), u0...)}, nil
}
