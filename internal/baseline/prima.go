// Package baseline implements the competing multi-port reduction schemes the
// paper evaluates BDSM against (Table I, Table II, Fig. 5): PRIMA (standard
// block Krylov congruence), EKS (input-dependent extended Krylov subspace),
// and SVDMOR (SVD-based terminal reduction). The implementations share the
// krylov substrate with BDSM so cost comparisons are apples-to-apples.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dense"
	"repro/internal/krylov"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// ErrBudgetExceeded is returned when a scheme's projected dense working set
// exceeds Options.MemoryBudget. This reproduces the "break down" entries of
// Table II: PRIMA and SVDMOR hold an n×(m·l) dense basis plus a dense ROM,
// which no longer fits on the paper's 4 GB workstation for ckt4 and ckt5.
var ErrBudgetExceeded = errors.New("baseline: projected memory exceeds budget (scheme breaks down)")

// DefaultMemoryBudget mirrors the paper's 4 GB analysis workstation.
const DefaultMemoryBudget = int64(4) << 30

// Options configures the baseline reductions.
type Options struct {
	// S0 is the real expansion point (default core.DefaultS0 = 1e9).
	S0 float64
	// Moments is the matched moment count l (default 6).
	Moments int
	// Backend, LU, Iter configure pencil solves as in package core.
	Backend krylov.Backend
	LU      sparse.LUOptions
	Iter    sparse.IterOptions
	// MemoryBudget bounds the dense working set in bytes; 0 means
	// DefaultMemoryBudget, negative means unlimited.
	MemoryBudget int64
	// Stats, when non-nil, receives cost accounting.
	Stats *Stats
}

// Stats mirrors core.Stats for the baseline schemes.
type Stats struct {
	Ortho          dense.OrthoStats
	PencilSolves   int
	FactorNNZ      int
	FactorTime     time.Duration
	ReduceTime     time.Duration
	BasisColumns   int
	PeakBasisBytes int64
}

func (o *Options) defaults() {
	if o.S0 == 0 {
		o.S0 = 1e9
	}
	if o.Moments == 0 {
		o.Moments = 6
	}
	if o.MemoryBudget == 0 {
		o.MemoryBudget = DefaultMemoryBudget
	}
}

// basisBudgetBytes estimates the dense working set of a full-basis scheme:
// the n×q orthonormal basis, the n×q congruence workspace (C·V and G·V
// panels), and the dense q×q ROM matrices.
func basisBudgetBytes(n, q int) int64 {
	return int64(n)*int64(q)*8*2 + int64(q)*int64(q)*8*3
}

// PRIMA reduces the system with the standard block Arnoldi congruence
// projection of Odabasioglu et al., matching l block moments (eq. 4–5).
// The result is a dense size-(m·l) descriptor ROM.
func PRIMA(sys *lti.SparseSystem, opts Options) (*lti.DenseSystem, error) {
	opts.defaults()
	n, m, _ := sys.Dims()
	q := m * opts.Moments
	if opts.MemoryBudget > 0 {
		if need := basisBudgetBytes(n, q); need > opts.MemoryBudget {
			return nil, fmt.Errorf("%w: PRIMA needs ≈%d MiB for an n=%d, q=%d basis, budget %d MiB",
				ErrBudgetExceeded, need>>20, n, q, opts.MemoryBudget>>20)
		}
	}
	tf := time.Now()
	op, err := krylov.NewOperator(sys, opts.S0, krylov.OperatorOptions{
		Backend: opts.Backend, LU: opts.LU, Iter: opts.Iter,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: PRIMA: %w", err)
	}
	factorTime := time.Since(tf)

	tr := time.Now()
	r, err := op.StartBlock()
	if err != nil {
		return nil, fmt.Errorf("baseline: PRIMA: %w", err)
	}
	var ortho *dense.OrthoStats
	if opts.Stats != nil {
		ortho = &opts.Stats.Ortho
	}
	basis, err := krylov.BlockArnoldi(op, r, opts.Moments, ortho)
	if err != nil {
		return nil, fmt.Errorf("baseline: PRIMA: %w", err)
	}
	rom := krylov.Congruence(sys, basis)
	if opts.Stats != nil {
		st := opts.Stats
		st.PencilSolves += op.Solves()
		st.FactorNNZ += op.FactorNNZ
		st.FactorTime += factorTime
		st.ReduceTime += time.Since(tr)
		st.BasisColumns += basis.Len()
		st.PeakBasisBytes = basisBudgetBytes(n, basis.Len())
	}
	return rom, nil
}
