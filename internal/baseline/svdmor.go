package baseline

import (
	"fmt"
	"time"

	"repro/internal/dense"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// SVDMORROM is the reduced model produced by SVD-based terminal reduction
// (Feldmann, DATE 2004): H(s) ≈ U_r · Ĥ(s) · V_rᵀ where Ĥ is a PRIMA ROM of
// the port-compressed system. Because the compression truncates the port
// space before moment matching, the "true" moments of H(s) are not captured
// (Table I) — terminal reduction trades accuracy for compactness.
type SVDMORROM struct {
	// Inner is the PRIMA ROM of the compressed system (r inputs/outputs).
	Inner *lti.DenseSystem
	// UOut (p×r) and VIn (m×r) are the port compression factors.
	UOut, VIn *dense.Mat[float64]
}

// Dims reports the ROM with the original port counts.
func (s *SVDMORROM) Dims() (n, m, p int) {
	q, _, _ := s.Inner.Dims()
	return q, s.VIn.Rows, s.UOut.Rows
}

// Order returns the reduced state dimension α·m·l.
func (s *SVDMORROM) Order() int { q, _, _ := s.Inner.Dims(); return q }

// Eval computes U_r · Ĥ(s) · V_rᵀ.
func (s *SVDMORROM) Eval(z complex128) (*dense.Mat[complex128], error) {
	h, err := s.Inner.Eval(z)
	if err != nil {
		return nil, err
	}
	return dense.ToComplex(s.UOut).Mul(h).Mul(dense.ToComplex(s.VIn).H()), nil
}

var _ lti.System = (*SVDMORROM)(nil)

// SVDMOR reduces the system with SVD-based terminal reduction followed by
// PRIMA. The port compression ratio alpha ∈ (0, 1] keeps r = ⌈alpha·m⌉
// virtual ports (the paper uses α ≈ 0.6). The correlation matrix is the
// zeroth moment M₀ = L(s0·C - G)⁻¹B, whose SVD identifies the dominant
// input/output port combinations.
func SVDMOR(sys *lti.SparseSystem, alpha float64, opts Options) (*SVDMORROM, error) {
	opts.defaults()
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("baseline: SVDMOR compression ratio must be in (0,1], got %g", alpha)
	}
	n, m, p := sys.Dims()
	minPorts := m
	if p < m {
		minPorts = p
	}
	r := int(alpha*float64(minPorts) + 0.999999)
	if r < 1 {
		r = 1
	}
	q := r * opts.Moments
	if opts.MemoryBudget > 0 {
		// SVDMOR's working set: the thin dense B̂/L̂ (2·n·r) plus the PRIMA
		// basis on the compressed system.
		need := basisBudgetBytes(n, q) + int64(n)*int64(r)*8*2
		if need > opts.MemoryBudget {
			return nil, fmt.Errorf("%w: SVDMOR needs ≈%d MiB for n=%d, r=%d, q=%d, budget %d MiB",
				ErrBudgetExceeded, need>>20, n, r, q, opts.MemoryBudget>>20)
		}
	}

	tf := time.Now()
	// Zeroth moment for the port-correlation SVD.
	moments, err := sys.Moments(opts.S0, 1)
	if err != nil {
		return nil, fmt.Errorf("baseline: SVDMOR moment: %w", err)
	}
	m0 := moments[0]
	u, _, v := dense.SVD(m0)
	uo := dense.NewMat[float64](p, r)
	vi := dense.NewMat[float64](m, r)
	for i := 0; i < p; i++ {
		for j := 0; j < r; j++ {
			uo.Set(i, j, u.At(i, j))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < r; j++ {
			vi.Set(i, j, v.At(i, j))
		}
	}
	factorTime := time.Since(tf)

	tr := time.Now()
	// Compressed system: B̂ = B·V_r (n×r), L̂ = U_rᵀ·L (r×n), kept sparse by
	// building them as triplets (B and L are extremely sparse selections).
	bhat := sparse.NewCOO[float64](n, r)
	bcsr := sys.B.ToCSR()
	for i := 0; i < n; i++ {
		for k := bcsr.RowPtr[i]; k < bcsr.RowPtr[i+1]; k++ {
			j := bcsr.ColIdx[k]
			val := bcsr.Val[k]
			for c := 0; c < r; c++ {
				bhat.Add(i, c, val*vi.At(j, c))
			}
		}
	}
	lhat := sparse.NewCOO[float64](r, n)
	for i := 0; i < p; i++ {
		for k := sys.L.RowPtr[i]; k < sys.L.RowPtr[i+1]; k++ {
			j := sys.L.ColIdx[k]
			val := sys.L.Val[k]
			for c := 0; c < r; c++ {
				lhat.Add(c, j, uo.At(i, c)*val)
			}
		}
	}
	thin, err := lti.NewSparseSystem(sys.C, sys.G, bhat.ToCSR(), lhat.ToCSR())
	if err != nil {
		return nil, err
	}
	compressTime := time.Since(tr)
	primaOpts := opts
	primaOpts.MemoryBudget = -1          // already accounted above
	inner, err := PRIMA(thin, primaOpts) // adds its own factor/reduce stats
	if err != nil {
		return nil, fmt.Errorf("baseline: SVDMOR inner PRIMA: %w", err)
	}
	if opts.Stats != nil {
		opts.Stats.FactorTime += factorTime
		opts.Stats.ReduceTime += compressTime
		opts.Stats.PeakBasisBytes += int64(n) * int64(r) * 8 * 2
	}
	return &SVDMORROM{Inner: inner, UOut: uo, VIn: vi}, nil
}
