package baseline

import (
	"errors"
	"math/cmplx"
	"testing"
)

func TestPRIMAMultipointMatchesMomentsAtEachPoint(t *testing.T) {
	sys := testGrid(t, 8, 8, 2, 4)
	points := []float64{1e8, 1e10}
	l := 3
	var st Stats
	rom, err := PRIMAMultipoint(sys, points, Options{Moments: l, MemoryBudget: -1, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	_, m, _ := sys.Dims()
	q, _, _ := rom.Dims()
	if q > m*l*len(points) {
		t.Fatalf("ROM order %d exceeds m·l·points = %d", q, m*l*len(points))
	}
	for _, s0 := range points {
		mo, err := sys.Moments(s0, l)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := rom.Moments(s0, l)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < l; k++ {
			scale := mo[k].MaxAbs()
			if diff := mo[k].Sub(mr[k]).MaxAbs(); diff > 1e-6*scale {
				t.Fatalf("s0=%g moment %d rel err %.3e", s0, k, diff/scale)
			}
		}
	}
	if st.PencilSolves == 0 || st.BasisColumns != q {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestPRIMAMultipointWidebandBeatsSinglePoint(t *testing.T) {
	sys := testGrid(t, 8, 8, 2, 4)
	single, err := PRIMA(sys, Options{S0: 1e9, Moments: 3, MemoryBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := PRIMAMultipoint(sys, []float64{1e8, 1e10, 1e12}, Options{Moments: 3, MemoryBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0, 3e11)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := single.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := multi.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	es, em := 0.0, 0.0
	for i := range hx.Data {
		if d := cmplx.Abs(hx.Data[i] - hs.Data[i]); d > es {
			es = d
		}
		if d := cmplx.Abs(hx.Data[i] - hm.Data[i]); d > em {
			em = d
		}
	}
	if em > es {
		t.Errorf("multipoint error %.3e worse than single-point %.3e far from s0", em, es)
	}
}

func TestPRIMAMultipointBudget(t *testing.T) {
	sys := testGrid(t, 8, 8, 2, 6)
	_, err := PRIMAMultipoint(sys, []float64{1e8, 1e10}, Options{Moments: 6, MemoryBudget: 1 << 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestPRIMAMultipointDefaultsToSinglePoint(t *testing.T) {
	sys := testGrid(t, 7, 7, 1, 3)
	a, err := PRIMAMultipoint(sys, nil, Options{S0: 1e9, Moments: 3, MemoryBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PRIMA(sys, Options{S0: 1e9, Moments: 3, MemoryBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	qa, _, _ := a.Dims()
	qb, _, _ := b.Dims()
	if qa != qb {
		t.Fatalf("nil points ROM order %d != single point PRIMA %d", qa, qb)
	}
}

func TestSVDMORDims(t *testing.T) {
	sys := testGrid(t, 7, 7, 1, 4)
	rom, err := SVDMOR(sys, 0.5, Options{Moments: 3, MemoryBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, m, p := rom.Dims()
	_, ms, ps := sys.Dims()
	if m != ms || p != ps {
		t.Fatalf("SVDMOR Dims %d/%d, want original ports %d/%d", m, p, ms, ps)
	}
}
