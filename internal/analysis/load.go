package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	SFiles     []string
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// LoadModule enumerates patterns (typically "./...") with the go tool,
// type-checks the full dependency closure — module packages with bodies and
// retained syntax, dependencies declarations-only — and returns the module
// view analyzers run over.
//
// The loader shells out to `go list` only for enumeration; all parsing and
// type checking happens in-process with go/parser and go/types, so the whole
// suite needs nothing beyond the standard toolchain.
func LoadModule(rootDir string, patterns []string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,Standard,GoFiles,SFiles,Module,Error", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = rootDir
	// CGO off keeps the file sets pure Go, matching what the analyzers can
	// type-check; the repo itself is cgo-free.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var specs []PkgSpec
	modPath, modDir := "", rootDir
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		inModule := p.Module != nil
		if inModule {
			modPath, modDir = p.Module.Path, p.Module.Dir
		}
		spec := PkgSpec{Path: p.ImportPath, Dir: p.Dir, InModule: inModule}
		for _, f := range p.GoFiles {
			spec.Files = append(spec.Files, filepath.Join(p.Dir, f))
		}
		for _, f := range p.SFiles {
			spec.SFiles = append(spec.SFiles, filepath.Join(p.Dir, f))
		}
		specs = append(specs, spec)
	}

	fset := token.NewFileSet()
	m, err := TypeCheck(fset, specs, nil)
	if err != nil {
		return nil, err
	}
	m.RootDir = modDir
	m.Path = modPath
	return m, nil
}

// TypeCheck parses and type-checks specs in order (dependencies must precede
// dependents, as `go list -deps` emits them). base, if non-nil, resolves
// import paths not covered by specs — the test harness uses it to satisfy
// stdlib imports of fixture packages.
func TypeCheck(fset *token.FileSet, specs []PkgSpec, base types.Importer) (*Module, error) {
	m := &Module{Fset: fset, ByPath: make(map[string]*Package)}
	imp := &moduleImporter{pkgs: make(map[string]*types.Package), base: base}
	sizes := types.SizesFor("gc", runtime.GOARCH)

	for _, spec := range specs {
		if spec.Path == "unsafe" {
			imp.pkgs["unsafe"] = types.Unsafe
			continue
		}
		var files []*ast.File
		mode := parser.SkipObjectResolution
		if spec.InModule {
			mode |= parser.ParseComments
		}
		for _, fname := range spec.Files {
			f, err := parser.ParseFile(fset, fname, nil, mode)
			if err != nil {
				if !spec.InModule {
					continue // tolerate exotic dependency files
				}
				return nil, fmt.Errorf("parse %s: %w", fname, err)
			}
			files = append(files, f)
		}

		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		var firstErr error
		conf := types.Config{
			Importer:         imp,
			IgnoreFuncBodies: !spec.InModule,
			FakeImportC:      true,
			Sizes:            sizes,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tpkg, _ := conf.Check(spec.Path, fset, files, info)
		if spec.InModule && firstErr != nil {
			return nil, fmt.Errorf("type checking %s: %w", spec.Path, firstErr)
		}
		// Dependency packages may have residual soft errors (build-tag
		// corners); their exported declarations are still usable.
		imp.pkgs[spec.Path] = tpkg

		if spec.InModule {
			pkg := &Package{Spec: spec, Files: files, Types: tpkg, Info: info}
			m.Packages = append(m.Packages, pkg)
			m.ByPath[spec.Path] = pkg
		}
	}
	return m, nil
}

// moduleImporter resolves imports from already-checked packages, falling
// back to an optional base importer.
type moduleImporter struct {
	pkgs map[string]*types.Package
	base types.Importer
}

func (i *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := i.pkgs[path]; ok && p != nil {
		return p, nil
	}
	if i.base != nil {
		return i.base.Import(path)
	}
	return nil, fmt.Errorf("analysis: import %q not loaded (dependency order?)", path)
}

// StdlibImporter returns an importer for standard-library packages that
// type-checks them from $GOROOT source. Used by the analysistest harness,
// where fixture packages import only a handful of stdlib packages.
func StdlibImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
