// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixtures themselves — the
// golden-file idiom of golang.org/x/tools/go/analysis/analysistest, rebuilt
// on this repo's dependency-free analysis framework.
//
// Fixtures live under testdata/src/<importpath>/ next to the test. Any line
// of a fixture (.go or .s) may carry an expectation comment:
//
//	_ = make([]int, 4) // want "make allocates"
//
// Each double-quoted string is a regexp that must match a diagnostic
// reported on that line. Matching is bidirectional: a diagnostic with no
// matching expectation fails the test, and an expectation with no matching
// diagnostic fails the test, so fixtures cannot silently stop covering what
// they were written to cover.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Load parses and type-checks fixture packages rooted at testdata/src, in
// the given order (dependencies first). Standard-library imports are
// resolved from GOROOT source.
func Load(t *testing.T, testdata string, pkgPaths ...string) *analysis.Module {
	t.Helper()
	fset := token.NewFileSet()
	var specs []analysis.PkgSpec
	for _, path := range pkgPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("fixture package %s: %v", path, err)
		}
		spec := analysis.PkgSpec{Path: path, Dir: dir, InModule: true}
		for _, e := range entries {
			switch {
			case strings.HasSuffix(e.Name(), ".go"):
				spec.Files = append(spec.Files, filepath.Join(dir, e.Name()))
			case strings.HasSuffix(e.Name(), ".s"):
				spec.SFiles = append(spec.SFiles, filepath.Join(dir, e.Name()))
			}
		}
		specs = append(specs, spec)
	}
	m, err := analysis.TypeCheck(fset, specs, analysis.StdlibImporter(fset))
	if err != nil {
		t.Fatalf("type-checking fixtures: %v", err)
	}
	return m
}

// Run loads the fixture packages, runs one analyzer, and matches its
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	m := Load(t, testdata, pkgPaths...)
	diags, err := analysis.Run(m, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	CheckDiagnostics(t, m, diags)
}

// CheckDiagnostics matches diagnostics against the want comments of every
// file in the module, bidirectionally.
func CheckDiagnostics(t *testing.T, m *analysis.Module, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, pkg := range m.Packages {
		for _, fname := range append(append([]string(nil), pkg.Spec.Files...), pkg.Spec.SFiles...) {
			content, err := os.ReadFile(fname)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(content), "\n") {
				for _, e := range parseWants(t, fname, i+1, line) {
					wants[key{fname, i + 1}] = append(wants[key{fname, i + 1}], e)
				}
			}
		}
	}

	for _, d := range diags {
		posn := d.Position(m.Fset)
		k := key{posn.Filename, posn.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", rel(posn.Filename), posn.Line, d.Message)
		}
	}

	var missed []string
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", rel(k.file), k.line, w.re))
			}
		}
	}
	sort.Strings(missed)
	for _, msg := range missed {
		t.Error(msg)
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts the expectations of one source line.
func parseWants(t *testing.T, fname string, lineNo int, line string) []*expectation {
	m := wantRE.FindStringSubmatch(line)
	if m == nil {
		return nil
	}
	var out []*expectation
	for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
		re, err := regexp.Compile(strings.ReplaceAll(q[1], `\"`, `"`))
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", rel(fname), lineNo, q[1], err)
		}
		out = append(out, &expectation{re: re})
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted regexps", rel(fname), lineNo)
	}
	return out
}

func rel(p string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return p
}
