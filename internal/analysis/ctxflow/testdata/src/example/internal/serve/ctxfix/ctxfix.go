// Package ctxfix lives on an enforced import path (internal/serve) so every
// root-context constructor needs a //pgmor:detach reason.
package ctxfix

import "context"

var bg context.Context

func plain() {
	bg = context.Background() // want "context.Background"
}

func todo() {
	bg = context.TODO() // want "context.TODO"
}

func uncancel(ctx context.Context) {
	bg = context.WithoutCancel(ctx) // want "context.WithoutCancel"
}

//pgmor:detach fixture prober owns its own schedule
func funcAnnotated() {
	bg = context.Background() // function-level detach: no diagnostic
}

func lineAnnotated() {
	//pgmor:detach this one call deliberately outlives the request
	bg = context.Background() // line-level detach: no diagnostic
}

//pgmor:detach
func bare() { // want "needs a reason"
	bg = context.Background() // want "context.Background"
}
