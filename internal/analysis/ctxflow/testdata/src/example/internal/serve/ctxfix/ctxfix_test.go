package ctxfix

import "context"

// Test files are exempt: a test drives the handler from outside any request,
// so a fresh root context is expected, not a detachment. No wants here.
func testHarnessRoot() context.Context {
	return context.Background()
}

var _ = testHarnessRoot
