// Package free is outside the enforced request path: root contexts are fine.
package free

import "context"

var bg context.Context

func anywhere() {
	bg = context.Background() // not an enforced package: no diagnostic
}
