// Package ctxflow enforces context threading in the request path. Inside
// internal/serve and internal/router, creating a fresh root context —
// context.Background(), context.TODO(), or context.WithoutCancel(...) —
// silently detaches work from request cancellation: deadlines stop
// propagating, shutdown stops draining, and goroutines outlive the requests
// that spawned them.
//
// A handful of detachments are deliberate (a health prober owns its own
// schedule; a single-flight leader must outlive the first caller so late
// joiners can still be served). Those sites carry //pgmor:detach <reason>,
// either on the enclosing function's doc comment or on the call's line, and
// the reason is mandatory — an unexplained detach is indistinguishable from
// a forgotten ctx parameter.
package ctxflow

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background/TODO/WithoutCancel in request-path packages require //pgmor:detach <reason>",
	Run:  run,
}

// rootContextFuncs are the context constructors that sever cancellation.
var rootContextFuncs = map[string]bool{
	"Background": true, "TODO": true, "WithoutCancel": true,
}

// enforced reports whether the package path is in the request path.
func enforced(path string) bool {
	return strings.Contains(path, "internal/serve") || strings.Contains(path, "internal/router")
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	if pkg == nil || !enforced(pkg.Path()) {
		return nil
	}
	for _, file := range pkg.Files {
		// Tests drive handlers from outside any request, so a fresh root
		// context is the norm there, not a detachment. (Standalone mode never
		// loads _test.go files; vettool mode does.)
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		lines := analysis.CollectLineDirectives(pass.Fset, file, "detach")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			reason, funcDetach := analysis.Directive(fd.Doc, "detach")
			if funcDetach && reason == "" {
				pass.Reportf(fd.Pos(), "ctxflow: //pgmor:detach needs a reason (//pgmor:detach <why this work must outlive the request>)")
				funcDetach = false
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := contextRootCall(pass, call)
				if name == "" {
					return true
				}
				if funcDetach {
					return true
				}
				if arg, ok := lines.At(pass.Fset, call.Pos()); ok {
					if arg == "" {
						pass.Reportf(call.Pos(), "ctxflow: //pgmor:detach needs a reason (//pgmor:detach <why this work must outlive the request>)")
					}
					return true
				}
				pass.Reportf(call.Pos(),
					"ctxflow: context.%s() detaches from request cancellation in %s; thread the caller's ctx or annotate //pgmor:detach <reason>",
					name, pkg.Path())
				return true
			})
		}
	}
	return nil
}

// contextRootCall returns the constructor name if call is
// context.Background/TODO/WithoutCancel, else "".
func contextRootCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !rootContextFuncs[sel.Sel.Name] {
		return ""
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	return sel.Sel.Name
}
