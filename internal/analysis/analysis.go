// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis shape, built so the repo can machine-enforce
// its load-bearing invariants (zero-alloc kernels, atomic-field discipline,
// context threading, assembly policy, metric hygiene) without taking any
// module dependency — the product and its tooling both stay pure stdlib.
//
// The model mirrors go/analysis where it matters: an Analyzer has a name,
// documentation, and a Run function over a Pass that reports Diagnostics at
// token positions. It deliberately diverges in one way that makes the
// repo-specific checkers simpler and stronger: a Pass always carries a
// *Module holding the type-checked syntax of every package in the module, so
// whole-program checks (transitive allocation analysis, cross-package atomic
// field usage, global metric-name uniqueness) need no fact serialization.
//
// Analyzers run in two granularities:
//
//   - per-package (the default): Run is invoked once per module package in
//     dependency order, with Pass.Pkg set;
//   - module-wide (ModuleWide: true): Run is invoked exactly once with
//     Pass.Pkg == nil, and the analyzer walks Pass.Module itself.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string

	// Doc is the help text: first line is a one-line summary.
	Doc string

	// ModuleWide selects whole-module granularity: Run is called once with
	// Pass.Pkg == nil instead of once per package.
	ModuleWide bool

	// Run executes the check, reporting findings via Pass.Report. A non-nil
	// error aborts the whole pglint run — it means the analyzer itself
	// failed, not that the code has findings.
	Run func(*Pass) error
}

// Pass carries the inputs and the report sink for one Run invocation.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet

	// Pkg is the package under analysis; nil for ModuleWide analyzers.
	Pkg *Package

	// Module is the whole-module view, always non-nil.
	Module *Module

	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at a token position inside a parsed Go or
// assembly file registered with the pass's FileSet.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportAtf reports a diagnostic at an explicit file position — the escape
// hatch for findings anchored in files the FileSet does not hold, such as
// README tables or CI require lists.
func (p *Pass) ReportAtf(posn token.Position, format string, args ...any) {
	p.Report(Diagnostic{FilePos: &posn, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. Exactly one of Pos (a position in the pass
// FileSet) or FilePos (a literal file/line) locates it.
type Diagnostic struct {
	Pos     token.Pos
	FilePos *token.Position
	Message string
}

// Position resolves the diagnostic's location against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	if d.FilePos != nil {
		return *d.FilePos
	}
	return fset.Position(d.Pos)
}

// PkgSpec names one package to type-check: its import path, directory, and
// the files selected by the build context.
type PkgSpec struct {
	Path   string
	Dir    string
	Files  []string // Go files, absolute paths
	SFiles []string // assembly files, absolute paths

	// InModule marks packages under analysis: their function bodies are
	// type-checked and their syntax retained. Dependency packages are
	// checked declarations-only.
	InModule bool
}

// Package is one type-checked package.
type Package struct {
	Spec  PkgSpec
	Files []*ast.File // parsed syntax, same order as Spec.Files; module packages only
	Types *types.Package
	Info  *types.Info
}

// Path returns the package import path.
func (p *Package) Path() string { return p.Spec.Path }

// Module is the whole-program view handed to every pass.
type Module struct {
	// RootDir is the module root (where go.mod lives) — the anchor for
	// checks against non-Go files such as README.md and CI require lists.
	RootDir string

	// Path is the module path ("repro" here); empty for synthetic test
	// modules.
	Path string

	Fset *token.FileSet

	// Packages holds the module's packages in dependency order.
	Packages []*Package

	// ByPath indexes Packages by import path.
	ByPath map[string]*Package

	// memo lets module-wide analyzers cache derived structures (call
	// graphs, atomic-field sets) across per-package passes.
	memo map[string]any
}

// Memo returns the cached value for key, computing and caching it on first
// use. Passes run sequentially, so no locking is needed.
func (m *Module) Memo(key string, compute func() any) any {
	if m.memo == nil {
		m.memo = make(map[string]any)
	}
	v, ok := m.memo[key]
	if !ok {
		v = compute()
		m.memo[key] = v
	}
	return v
}

// Run executes the analyzers over the module and returns their findings
// sorted by position.
func Run(m *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.ModuleWide {
			pass := &Pass{Analyzer: a, Fset: m.Fset, Module: m, Report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range m.Packages {
			pass := &Pass{Analyzer: a, Fset: m.Fset, Pkg: pkg, Module: m, Report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s: %s: %w", a.Name, pkg.Path(), err)
			}
		}
	}
	SortDiagnostics(m.Fset, diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, then message.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := diags[i].Position(fset), diags[j].Position(fset)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
