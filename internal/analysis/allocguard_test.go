package analysis_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestAllocGuard is the bridge between the static and dynamic halves of the
// no-allocation contract: every //pgmor:noalloc function must be pinned by a
// testing.AllocsPerRun test carrying a //pgmor:alloctest <Name> marker in
// the same package, and every marker must still name an annotated function.
// The static analyzer proves the absence of allocating constructs; the
// AllocsPerRun suite catches what escapes static proof (compiler-inserted
// escapes, stdlib behavior changes); this test keeps the two sets equal.
func TestAllocGuard(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()

	type marker struct {
		pos       token.Position
		testFunc  string
		hasAllocs bool
	}
	annotated := make(map[string]map[string]token.Position) // pkg dir -> func -> pos
	markers := make(map[string]map[string][]marker)         // pkg dir -> target -> markers

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dir := filepath.Dir(path)
		isTest := strings.HasSuffix(path, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if !isTest {
				if _, ok := analysis.Directive(fd.Doc, "noalloc"); ok {
					if annotated[dir] == nil {
						annotated[dir] = make(map[string]token.Position)
					}
					annotated[dir][declName(fd)] = fset.Position(fd.Pos())
				}
				continue
			}
			if fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := strings.CutPrefix(c.Text, "//pgmor:alloctest")
				if !ok {
					continue
				}
				target := strings.TrimSpace(rest)
				if target == "" {
					t.Errorf("%s: //pgmor:alloctest needs a target function name", fset.Position(c.Pos()))
					continue
				}
				if markers[dir] == nil {
					markers[dir] = make(map[string][]marker)
				}
				markers[dir][target] = append(markers[dir][target], marker{
					pos:       fset.Position(c.Pos()),
					testFunc:  fd.Name.Name,
					hasAllocs: callsAllocsPerRun(fd),
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(annotated) == 0 {
		t.Fatal("found no //pgmor:noalloc functions; the scanner is broken")
	}

	for dir, funcs := range annotated {
		for name, pos := range funcs {
			ms := markers[dir][name]
			if len(ms) == 0 {
				t.Errorf("%s: //pgmor:noalloc %s has no //pgmor:alloctest %s marker on an AllocsPerRun test in %s",
					pos, name, name, relDir(root, dir))
				continue
			}
			for _, m := range ms {
				if !m.hasAllocs {
					t.Errorf("%s: //pgmor:alloctest %s marks %s, which never calls testing.AllocsPerRun",
						m.pos, name, m.testFunc)
				}
			}
		}
	}
	for dir, targets := range markers {
		for name, ms := range targets {
			if _, ok := annotated[dir][name]; !ok {
				for _, m := range ms {
					t.Errorf("%s: stale //pgmor:alloctest %s: no //pgmor:noalloc function %s in %s",
						m.pos, name, name, relDir(root, dir))
				}
			}
		}
	}
}

// declName is the marker-facing name of a function: Name for package
// functions, Recv.Name for methods (pointer and type parameters stripped).
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	switch it := t.(type) {
	case *ast.IndexExpr:
		t = it.X
	case *ast.IndexListExpr:
		t = it.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func callsAllocsPerRun(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
			found = true
		}
		return !found
	})
	return found
}

func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

func relDir(root, dir string) string {
	if r, err := filepath.Rel(root, dir); err == nil {
		return r
	}
	return dir
}
