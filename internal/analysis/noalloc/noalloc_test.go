package noalloc_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noalloc.Analyzer, "a")
}

// TestBareMarker covers the one diagnostic a want comment cannot sit next
// to: a //pgmor:alloc with no reason (trailing text would become the reason).
func TestBareMarker(t *testing.T) {
	m := analysistest.Load(t, analysistest.TestData(t), "b")
	diags, err := analysis.Run(m, []*analysis.Analyzer{noalloc.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("want exactly one needs-a-reason diagnostic, got %v", diags)
	}
}
