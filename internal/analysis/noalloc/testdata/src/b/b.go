// Package b holds the one case the want-comment syntax cannot express: a
// bare //pgmor:alloc marker, whose line cannot also carry a want comment
// because any trailing text would become the marker's reason.
package b

var sink int

//pgmor:noalloc
func bareMarker() {
	//pgmor:alloc
	sink = len(make([]byte, 8))
}
