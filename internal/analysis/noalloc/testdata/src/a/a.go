// Package a exercises every construct the noalloc analyzer classifies, plus
// the exemptions (returns, panics, self-append, markers) it must not flag.
package a

import "fmt"

type point struct{ x, y int }

type iface interface{ M() int }

var (
	sink     int
	sinkAnyV any
	leaked   []int
)

//pgmor:noalloc
func useMake(n int) {
	s := make([]int, n) // want "make allocates"
	sink = len(s)
}

//pgmor:noalloc
func useNew() {
	p := new(point) // want "new allocates"
	sink = p.x
}

//pgmor:noalloc
func appendGrow(dst, src []int) {
	dst = append(dst, 1)  // self-append reuses the backing array: no diagnostic
	out := append(src, 2) // want "append without reuse"
	sink = dst[0] + out[0]
}

//pgmor:noalloc
func closures() {
	f := func() int { return 1 } // want "closure literal allocates"
	sink = f()                   // want "dynamic call cannot be proven allocation-free"
}

//pgmor:noalloc
func spawn() {
	go useNew() // want "go statement allocates a goroutine"
}

//pgmor:noalloc
func literals() {
	_ = []int{1, 2}            // want "slice literal allocates"
	_ = map[string]int{"a": 1} // want "map literal allocates"
	_ = &point{1, 2}           // want "address of composite literal allocates"
}

//pgmor:noalloc
func concat(a, b string) {
	s := a + b // want "string concatenation allocates"
	sink = len(s)
}

//pgmor:noalloc
func mapWrite(m map[string]int) {
	m["k"] = 1 // want "map write may allocate"
}

//pgmor:noalloc
func convert(b []byte) {
	s := string(b) // want "string conversion allocates"
	sink = len(s)
}

//pgmor:noalloc
func boxAssign(v int) {
	sinkAnyV = v // want "value boxed into interface assignment"
}

func sinkAny(v any) { sinkAnyV = v }

//pgmor:noalloc
func boxArg(v int) {
	sinkAny(v) // want "argument boxed into interface parameter"
}

//pgmor:noalloc
func format(x int) {
	s := fmt.Sprintf("%d", x) // want "call to fmt.Sprintf allocates"
	sink = len(s)
}

func fillLeaked() {
	leaked = make([]int, 8)
}

func indirect() {
	fillLeaked()
}

//pgmor:noalloc
func transitive() {
	indirect() // want "call to a.indirect allocates"
}

//pgmor:noalloc
func callIface(v iface) {
	sink = v.M() // want "dynamic call cannot be proven allocation-free"
}

//pgmor:noalloc
func returnsFresh(n int) []int {
	return make([]int, n) // escaping result: the caller's budget, no diagnostic
}

//pgmor:noalloc
func guard(ok bool) {
	if !ok {
		panic(fmt.Errorf("guard tripped")) // panic arguments are exempt
	}
}

//pgmor:noalloc
func coldPath(ok bool) {
	if !ok {
		buf := make([]byte, 64) //pgmor:alloc cold failure path, runs at most once per incident
		sink = len(buf)
	}
}

//pgmor:noalloc
func tidy() {
	//pgmor:alloc claims an allocation that is not there // want "stale pgmor:alloc marker"
	sink++
}

func unannotated() {
	_ = make([]int, 4) // unannotated function: allocation is fine, no diagnostic
}
